module scalegnn

go 1.22
