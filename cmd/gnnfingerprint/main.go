// Command gnnfingerprint trains every model family on a fixed synthetic
// task and prints an FNV-1a fingerprint of each model's full-graph
// predictions plus its accuracy report. The output is bitwise-stable for a
// given seed, so diffing two runs (before/after a refactor, across
// machines) proves training-path equivalence without eyeballing floats.
//
// Usage:
//
//	gnnfingerprint            # all models, default task
//	gnnfingerprint -model sgc # one model
//
// Refactors that must not change numerics (workspace pooling, the
// internal/train engine migration) are gated on this harness reporting
// identical hashes before and after.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
)

func main() {
	var (
		only     = flag.String("model", "", "fingerprint a single model (default: all)")
		nodes    = flag.Int("nodes", 600, "synthetic node count")
		seed     = flag.Uint64("seed", 7, "dataset + training seed")
		epochs   = flag.Int("epochs", 30, "training epochs")
		ckptDir  = flag.String("checkpoint-dir", "", "snapshot each model under this directory (per-model subdirs)")
		ckptEvry = flag.Int("checkpoint-every", 1, "snapshot every N epochs")
		resume   = flag.Bool("resume", false, "resume each model from its newest snapshot")
	)
	flag.Parse()

	ds, err := dataset.Generate(dataset.Config{
		Nodes: *nodes, Classes: 3, AvgDegree: 10, Homophily: 0.85,
		FeatureDim: 16, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: *seed,
	})
	if err != nil {
		fatal("dataset: %v", err)
	}

	cfg := models.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Patience = 10
	cfg.BatchSize = 64
	cfg.Seed = *seed

	type entry struct {
		name string
		make func() (models.Trainer, error)
	}
	entries := []entry{
		{"gcn", func() (models.Trainer, error) { return models.NewGCN(2) }},
		{"sage", func() (models.Trainer, error) { return models.NewGraphSAGE(2, 5) }},
		{"clustergcn", func() (models.Trainer, error) { return models.NewClusterGCN(2, 4) }},
		{"sgc", func() (models.Trainer, error) { return models.NewSGC(2) }},
		{"appnp", func() (models.Trainer, error) { return models.NewAPPNP(8, 0.15) }},
		{"sign", func() (models.Trainer, error) { return models.NewSIGN(3) }},
		{"gamlp", func() (models.Trainer, error) { return models.NewGAMLP(3) }},
		{"ld2", func() (models.Trainer, error) { return models.NewLD2(2) }},
		{"implicit", func() (models.Trainer, error) { return models.NewImplicitNet(0.8, nil) }},
		{"transformer", func() (models.Trainer, error) { return models.NewGraphTransformer(6) }},
	}

	for _, e := range entries {
		if *only != "" && e.name != *only {
			continue
		}
		m, err := e.make()
		if err != nil {
			fatal("%s: %v", e.name, err)
		}
		// Each model gets its own subdirectory: run fingerprints differ per
		// family, so sharing one directory would reject every resume.
		if *ckptDir != "" {
			cfg.Checkpoint.Dir = filepath.Join(*ckptDir, e.name)
			cfg.Checkpoint.Every = *ckptEvry
			cfg.Checkpoint.Resume = *resume
		}
		rep, err := m.Fit(ds, cfg)
		if err != nil {
			fatal("%s: fit: %v", e.name, err)
		}
		pred, err := m.Predict(ds)
		if err != nil {
			fatal("%s: predict: %v", e.name, err)
		}
		fmt.Printf("%-12s pred=%016x epochs=%d train=%.17g val=%.17g test=%.17g f1=%.17g\n",
			e.name, models.PredictionFingerprint(pred), rep.Epochs, rep.TrainAcc, rep.ValAcc, rep.TestAcc, rep.TestF1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gnnfingerprint: "+format+"\n", args...)
	os.Exit(1)
}
