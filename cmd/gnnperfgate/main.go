// Command gnnperfgate compares a BENCH_kernels.json report against the
// checked-in allocs/op baseline and fails if any gated kernel regressed.
//
// The gate tracks steady-state pool discipline, not raw speed: the *Into
// kernels are pool-backed and allocation-free per element, so a pooling
// regression (a per-row buffer, a FromSlice in the hot loop) shows up as
// tens-to-thousands of allocs/op — far beyond the scheduling slack the gate
// tolerates. ns/op is machine-dependent and deliberately not gated.
//
// Usage:
//
//	gnnbench -quick -kernels-out /tmp/kernels.json
//	gnnperfgate -report /tmp/kernels.json -baseline scripts/kernel_allocs_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"scalegnn/internal/bench"
)

func main() {
	var (
		report   = flag.String("report", "", "BENCH_kernels.json produced by gnnbench -kernels-out")
		baseline = flag.String("baseline", "scripts/kernel_allocs_baseline.json", "kernel family -> max allocs/op baseline")
		slack    = flag.Int64("slack", 8, "allocs/op headroom over the baseline (absorbs goroutine scheduling noise)")
	)
	flag.Parse()
	if *report == "" {
		fatal("need -report")
	}

	var rep bench.KernelBenchReport
	if err := readJSON(*report, &rep); err != nil {
		fatal("%v", err)
	}
	base := map[string]int64{}
	if err := readJSON(*baseline, &base); err != nil {
		fatal("%v", err)
	}

	// Index report rows by family: the benchmark name minus its trailing
	// size segment, so quick and full runs check against the same baseline.
	got := map[string]*bench.KernelResult{}
	for _, r := range rep.Results {
		got[family(r.Name)] = r
	}

	families := make([]string, 0, len(base))
	for f := range base {
		families = append(families, f)
	}
	sort.Strings(families)

	failed := 0
	for _, f := range families {
		limit := base[f] + *slack
		r, ok := got[f]
		if !ok {
			// A missing family means a rename silently disabled the gate.
			fmt.Printf("FAIL %-28s missing from report\n", f)
			failed++
			continue
		}
		if r.AllocsOp > limit {
			fmt.Printf("FAIL %-28s %d allocs/op > %d (baseline %d + slack %d)\n",
				f, r.AllocsOp, limit, base[f], *slack)
			failed++
			continue
		}
		fmt.Printf("ok   %-28s %d allocs/op (limit %d)\n", f, r.AllocsOp, limit)
	}
	if failed > 0 {
		fatal("%d kernel allocation regression(s)", failed)
	}
}

// family strips the trailing size segment: "matmul_into/float32/128x96x64"
// -> "matmul_into/float32".
func family(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[:i]
	}
	return name
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gnnperfgate: "+format+"\n", args...)
	os.Exit(1)
}
