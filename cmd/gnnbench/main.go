// Command gnnbench runs the reproduction experiments (F1, E1–E21 from
// DESIGN.md) and prints their tables.
//
// Usage:
//
//	gnnbench                  # run everything at full scale
//	gnnbench -run E5,E12      # run selected experiments
//	gnnbench -quick           # shrunken workloads (~seconds each)
//	gnnbench -list            # list experiments
//	gnnbench -kernels-out BENCH_kernels.json   # kernel microbench report only
//	gnnbench -dist-out BENCH_dist.json         # distributed-exchange scaling report only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scalegnn/internal/bench"
	"scalegnn/internal/obs"
	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

func main() {
	var (
		runList     = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick       = flag.Bool("quick", false, "run shrunken workloads")
		list        = flag.Bool("list", false, "list experiments and exit")
		seed        = flag.Uint64("seed", 42, "base random seed")
		kernelsOut  = flag.String("kernels-out", "", "run the kernel microbenchmarks, write BENCH_kernels.json-style report here, and exit")
		distOut     = flag.String("dist-out", "", "run the distributed-exchange scaling bench, write BENCH_dist.json-style report here, and exit")
		traceOut    = flag.String("trace-out", "", "write the span timeline to this file as JSONL")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar metrics, /metrics (Prometheus), and pprof on this address (e.g. localhost:6060)")
		pprofOut    = flag.String("pprof", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s §%-6s %s\n", e.ID, e.Anchor, e.Title)
		}
		return
	}

	sess, err := obs.StartSession(obs.Options{
		TraceOut: *traceOut, MetricsAddr: *metricsAddr, CPUProfile: *pprofOut,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: observability teardown: %v\n", err)
		}
	}()
	if sess.Registry != nil {
		tensor.EnablePoolMetrics(sess.Registry)
		par.EnableMetrics(sess.Registry)
		train.EnableMetrics(sess.Registry)
	}
	if addr := sess.Addr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics  expvar: http://%s/debug/vars  pprof: http://%s/debug/pprof/\n", addr, addr, addr)
	}

	if *kernelsOut != "" {
		results, err := bench.RunKernelBench(*quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: kernels: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-42s %14.0f ns/op %6d allocs/op %10d B/op\n",
				r.Name, r.NsPerOp, r.AllocsOp, r.BytesOp)
		}
		if err := bench.WriteKernelBenchJSON(*kernelsOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: kernels: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kernel report: %s\n", *kernelsOut)
		return
	}

	if *distOut != "" {
		results, err := bench.RunDistBench(*quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: dist: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-34s %8.3f s/epoch %12d wire B %6d stale %6d rounds\n",
				r.Name, r.EpochSeconds, r.WireBytes, r.StaleHits, r.Rounds)
		}
		if err := bench.WriteDistBenchJSON(*distOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: dist: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dist report: %s\n", *distOut)
		return
	}

	var selected []bench.Experiment
	if *runList == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "gnnbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		// One span per experiment, labeled by ID, so a traced benchmark run
		// shows which experiment owns each stretch of the timeline.
		sp := obs.Start("bench.experiment")
		sp.SetLabel(e.ID)
		tbl, err := e.Run(cfg)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: writing %s table: %v\n", e.ID, err)
			failed++
			break
		}
		fmt.Printf("  (%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		// os.Exit skips the deferred teardown; flush the trace first.
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: observability teardown: %v\n", err)
		}
		os.Exit(1)
	}
}
