// Command gnnbench runs the reproduction experiments (F1, E1–E13 from
// DESIGN.md) and prints their tables.
//
// Usage:
//
//	gnnbench                  # run everything at full scale
//	gnnbench -run E5,E12      # run selected experiments
//	gnnbench -quick           # shrunken workloads (~seconds each)
//	gnnbench -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scalegnn/internal/bench"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "run shrunken workloads")
		list    = flag.Bool("list", false, "list experiments and exit")
		seed    = flag.Uint64("seed", 42, "base random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s §%-6s %s\n", e.ID, e.Anchor, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *runList == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "gnnbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "gnnbench: writing %s table: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("  (%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
