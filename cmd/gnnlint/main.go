// Command gnnlint is scalegnn's project-specific static analyzer. It
// enforces the kernel, concurrency, and determinism invariants the
// zero-allocation training hot path depends on — see DESIGN.md "Enforced
// invariants" for the full list and internal/lint for the implementation.
//
// Usage:
//
//	gnnlint ./...                      # run every check over the module
//	gnnlint ./internal/tensor          # one package
//	gnnlint -checks naked-go,global-rand ./...
//	gnnlint -tags nofault ./...        # analyze under a custom build-tag set
//	gnnlint -json ./...                # one JSON object per finding, per line
//	gnnlint -list                      # describe the checks
//
// Exit status is 1 when findings are reported, 2 on usage or load errors.
// Suppress a single finding with `//lint:ignore <check> <reason>` on the
// offending line or the line above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"scalegnn/internal/lint"
)

func main() {
	var (
		checks  = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list    = flag.Bool("list", false, "list available checks and exit")
		tags    = flag.String("tags", "", "comma-separated build tags (as with go build -tags)")
		jsonOut = flag.Bool("json", false, "emit findings as one JSON object per line")
	)
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal("%v", err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal("%v", err)
	}
	if *tags != "" {
		var ts []string
		for _, tag := range strings.Split(*tags, ",") {
			if tag = strings.TrimSpace(tag); tag != "" {
				ts = append(ts, tag)
			}
		}
		loader.SetTags(ts...)
	}

	if *list {
		for _, c := range lint.Checks(loader.ModPath) {
			fmt.Printf("%-16s %s\n", c.Name, c.Doc)
		}
		return
	}

	dirs, err := loader.ExpandPatterns(flag.Args())
	if err != nil {
		fatal("%v", err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			fatal("%v", err)
		}
		pkgs = append(pkgs, p)
	}

	var names []string
	if *checks != "" {
		for _, n := range strings.Split(*checks, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	diags, err := lint.RunChecks(loader, pkgs, names)
	if err != nil {
		fatal("%v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(d); err != nil {
				fatal("%v", err)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gnnlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gnnlint: "+format+"\n", args...)
	os.Exit(2)
}
