// Command graphgen generates synthetic graphs to edge-list files.
//
// Usage:
//
//	graphgen -kind ba -n 100000 -deg 8 -out graph.el
//	graphgen -kind sbm -n 50000 -blocks 8 -deg 12 -homophily 0.8 -out sbm.el
//	graphgen -kind er -n 10000 -edges 50000 -out er.el
//	graphgen -kind grid -rows 100 -cols 100 -out grid.el
//
// For SBM graphs, block labels are written alongside as <out>.labels (one
// integer per line).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func main() {
	var (
		kind      = flag.String("kind", "ba", "graph kind: ba | er | sbm | grid | path")
		n         = flag.Int("n", 10000, "node count (ba, er, sbm, path)")
		deg       = flag.Int("deg", 8, "attachment degree (ba) / average degree (sbm)")
		edges     = flag.Int("edges", 0, "edge count (er); default 4n")
		blocks    = flag.Int("blocks", 4, "community count (sbm)")
		homophily = flag.Float64("homophily", 0.8, "intra-community edge fraction (sbm)")
		rows      = flag.Int("rows", 100, "grid rows")
		cols      = flag.Int("cols", 100, "grid cols")
		seed      = flag.Uint64("seed", 42, "random seed")
		out       = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	rng := tensor.NewRand(*seed)
	var g *graph.CSR
	var labels []int
	switch *kind {
	case "ba":
		g = graph.BarabasiAlbert(*n, *deg, rng)
	case "er":
		m := *edges
		if m == 0 {
			m = 4 * *n
		}
		g = graph.ErdosRenyi(*n, m, rng)
	case "sbm":
		var err error
		g, labels, err = graph.SBM(graph.SBMConfig{
			Nodes: *n, Blocks: *blocks, AvgDegree: float64(*deg), Homophily: *homophily,
		}, rng)
		if err != nil {
			fatal("sbm: %v", err)
		}
	case "grid":
		g = graph.Grid(*rows, *cols)
	case "path":
		g = graph.Path(*n)
	default:
		fatal("unknown kind %q", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create %s: %v", *out, err)
		}
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fatal("write: %v", err)
	}
	// These files were written to, so a failed Close can mean lost data —
	// check it instead of deferring it away.
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			fatal("close %s: %v", *out, err)
		}
	}
	if labels != nil && *out != "" {
		lf, err := os.Create(*out + ".labels")
		if err != nil {
			fatal("create labels: %v", err)
		}
		bw := bufio.NewWriter(lf)
		for _, y := range labels {
			//lint:ignore unchecked-error bufio latches the first write error; the Flush below reports it
			fmt.Fprintln(bw, y)
		}
		if err := bw.Flush(); err != nil {
			fatal("write labels: %v", err)
		}
		if err := lf.Close(); err != nil {
			fatal("close labels: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "graphgen: %s graph, n=%d arcs=%d\n", *kind, g.N, g.NumEdges())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
