// Command gnnserve serves per-node predictions from a trained decoupled
// model (sgc | sign | appnp | gamlp | ld2) over HTTP. It rebuilds the
// dataset and the graph-side precompute from the same flags the model was
// trained with, loads the head weights from a checkpoint snapshot (the
// fingerprint guards against mismatched flags), and serves:
//
//	GET/POST /predict     — predictions (and logits) for node ids
//	GET      /healthz     — served model, generation, fingerprint
//	GET      /stats       — QPS counters and latency quantiles
//	POST     /admin/swap  — hot-swap to a new snapshot, zero downtime
//
// Usage:
//
//	gnntrain -model sgc -nodes 20000 -checkpoint-dir ckpts
//	gnnserve -model sgc -nodes 20000 -checkpoint-dir ckpts -addr :8080
//	curl 'localhost:8080/predict?nodes=17,42'
//	curl -X POST -d '{"source":"ckpts"}' localhost:8080/admin/swap
//
//	gnnserve -selftest -bench-out BENCH_serve.json   # offline correctness + load benchmark
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
	"scalegnn/internal/obs"
	"scalegnn/internal/serve"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

func main() {
	var (
		model     = flag.String("model", "sgc", "decoupled model name: sgc | sign | appnp | gamlp | ld2")
		hops      = flag.Int("hops", 2, "propagation hops")
		nodes     = flag.Int("nodes", 5000, "synthetic node count")
		classes   = flag.Int("classes", 5, "class count")
		degree    = flag.Float64("deg", 10, "average degree")
		homophily = flag.Float64("homophily", 0.8, "edge homophily")
		noise     = flag.Float64("noise", 1.2, "feature noise std")
		dim       = flag.Int("dim", 32, "feature dimension")
		graphPath = flag.String("graph", "", "optional edge-list file (overrides synthetic graph)")
		labelPath = flag.String("labels", "", "optional label file (one class per line)")
		seed      = flag.Uint64("seed", 42, "random seed (must match training)")
		dtype     = flag.String("dtype", "float64", "numeric tier used in training: float64 | float32")

		lr          = flag.Float64("lr", 0.01, "learning rate used in training")
		weightDecay = flag.Float64("weight-decay", 5e-4, "L2 weight decay used in training")
		dropout     = flag.Float64("dropout", 0.5, "dropout used in training")
		hidden      = flag.Int("hidden", 64, "hidden width used in training")
		batch       = flag.Int("batch", 512, "mini-batch size used in training")

		ckptDir  = flag.String("checkpoint-dir", "", "serve the newest matching snapshot from this directory")
		snapshot = flag.String("snapshot", "", "serve this one snapshot file")

		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		window      = flag.Duration("window", 0, "fixed request-coalescing window; 0 (default) drains queued requests per batch without waiting, which E21 measures as the best closed-loop policy")
		maxBatch    = flag.Int("max-batch", 256, "max node rows per coalesced forward")
		cacheSize   = flag.Int("cache", 4096, "hot-node logit LRU size (0 disables)")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar metrics and pprof on this address")

		selftest    = flag.Bool("selftest", false, "train, snapshot, restore, verify parity, then load-test in-process")
		benchOut    = flag.String("bench-out", "BENCH_serve.json", "selftest: write the load-test report here")
		duration    = flag.Duration("duration", 2*time.Second, "selftest: load-generation duration")
		concurrency = flag.Int("concurrency", 8, "selftest: closed-loop load workers")
		slo         = flag.Duration("slo", 25*time.Millisecond, "selftest: p99 latency SLO (informational)")
		epochs      = flag.Int("epochs", 20, "selftest: training epochs")
	)
	flag.Parse()

	// The root context is signal-bound from the start so that shutdown
	// during warm-up (selftest probes included) cancels cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obs.StartSession(obs.Options{MetricsAddr: *metricsAddr})
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gnnserve: observability teardown: %v\n", err)
		}
	}()
	if sess.Registry != nil {
		tensor.EnablePoolMetrics(sess.Registry)
	}
	if a := sess.Addr(); a != "" {
		fmt.Printf("metrics: http://%s/debug/vars  pprof: http://%s/debug/pprof/\n", a, a)
	}

	ds, err := dataset.Load(*graphPath, *labelPath, dataset.Config{
		Nodes: *nodes, Classes: *classes, AvgDegree: *degree, Homophily: *homophily,
		FeatureDim: *dim, NoiseStd: *noise, TrainFrac: 0.5, ValFrac: 0.2, Seed: *seed,
	})
	if err != nil {
		fatal("dataset: %v", err)
	}

	cfg := models.DefaultTrainConfig()
	cfg.LR = *lr
	cfg.WeightDecay = *weightDecay
	cfg.Dropout = *dropout
	cfg.Hidden = *hidden
	cfg.BatchSize = *batch
	cfg.Seed = *seed
	cfg.Epochs = *epochs
	cfg.DType = *dtype

	engCfg := serve.Config{
		Window: *window, MaxBatch: *maxBatch, CacheSize: *cacheSize, Registry: sess.Registry,
	}

	if *selftest {
		if err := runSelftest(ctx, ds, *model, *hops, cfg, engCfg, *benchOut, *duration, *concurrency, *slo); err != nil {
			fatal("selftest: %v", err)
		}
		return
	}

	if (*ckptDir == "") == (*snapshot == "") {
		fatal("need exactly one of -checkpoint-dir or -snapshot")
	}
	source := *ckptDir
	if source == "" {
		source = *snapshot
	}
	loader := snapshotLoader(ds, *model, *hops, cfg)
	m, info, err := loader(source)
	if err != nil {
		fatal("%v", err)
	}

	eng := serve.NewEngine(engCfg)
	defer eng.Close()
	eng.Swap(m, info)
	srv := serve.NewServer(eng, loader)
	if err := srv.Start(*addr); err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gnnserve: server close: %v\n", err)
		}
	}()
	fmt.Printf("serving %s (fingerprint %016x, %d nodes, %d classes) on http://%s\n",
		m.Name(), info.Fingerprint, m.Nodes(), m.Classes(), srv.Addr())

	<-ctx.Done()
	fmt.Println("gnnserve: shutting down")
}

// servable is what serving needs from a model family: trainable (for
// -selftest), restorable from a snapshot, and batch-scorable.
type servable interface {
	models.Trainer
	models.NodeScorer
	models.Restorer
}

func makeModel(name string, hops int) (servable, error) {
	switch name {
	case "sgc":
		return models.NewSGC(hops)
	case "sign":
		return models.NewSIGN(hops)
	case "appnp":
		return models.NewAPPNP(10, 0.15)
	case "gamlp":
		return models.NewGAMLP(hops)
	case "ld2":
		return models.NewLD2(hops)
	default:
		return nil, fmt.Errorf("gnnserve: model %q is not a servable decoupled family", name)
	}
}

// snapshotLoader builds the serve.Loader used both at startup and by
// /admin/swap: every load constructs a fresh model instance, so a swap
// never mutates the one currently serving.
func snapshotLoader(ds *dataset.Dataset, name string, hops int, cfg models.TrainConfig) serve.Loader {
	return func(source string) (serve.Model, serve.SwapInfo, error) {
		m, err := makeModel(name, hops)
		if err != nil {
			return nil, serve.SwapInfo{}, err
		}
		// The fingerprint hashes the model's own Name() ("SGC-K2"), not the
		// CLI flag spelling ("sgc").
		snap, err := readSnapshot(source, m.Name(), ds, cfg)
		if err != nil {
			return nil, serve.SwapInfo{}, err
		}
		if err := m.Restore(ds, cfg, snap); err != nil {
			return nil, serve.SwapInfo{}, err
		}
		if err := warm(m); err != nil {
			return nil, serve.SwapInfo{}, err
		}
		return m, serve.SwapInfo{Fingerprint: snap.Fingerprint, Source: source}, nil
	}
}

// readSnapshot loads a snapshot from a file path or, for a directory, the
// newest snapshot matching the run fingerprint.
func readSnapshot(source, name string, ds *dataset.Dataset, cfg models.TrainConfig) (*ckpt.Snapshot, error) {
	fi, err := os.Stat(source)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		mgr, err := ckpt.NewManager(source, 0)
		if err != nil {
			return nil, err
		}
		snap, path, err := mgr.Latest(models.RunFingerprint(name, ds, cfg))
		if err != nil {
			return nil, err
		}
		if snap == nil {
			return nil, fmt.Errorf("gnnserve: no snapshots in %s", source)
		}
		fmt.Printf("loading %s\n", path)
		return snap, nil
	}
	data, err := os.ReadFile(source)
	if err != nil {
		return nil, err
	}
	return ckpt.Decode(data)
}

// warm forces any lazy per-model caches (APPNP's diffused logits, the
// GAMLP attention combine) to materialize before the first request hits.
func warm(m models.NodeScorer) error {
	out := tensor.New(1, m.Classes())
	return m.Score([]int{0}, out)
}

// runSelftest is the offline gate behind scripts/check.sh's serve smoke
// test: train → snapshot → restore → verify the served path is byte-equal
// to offline Predict → serve over HTTP → hot-swap once → load-test and
// write the benchmark report. It fails on any correctness violation or
// request errors; missing the latency SLO is reported, not fatal.
func runSelftest(ctx context.Context, ds *dataset.Dataset, model string, hops int, cfg models.TrainConfig, engCfg serve.Config,
	benchOut string, duration time.Duration, concurrency int, slo time.Duration) error {
	dir, err := os.MkdirTemp("", "gnnserve-selftest-*")
	if err != nil {
		return err
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			fmt.Fprintf(os.Stderr, "gnnserve: selftest cleanup: %v\n", err)
		}
	}()

	cfg.Checkpoint = train.CheckpointConfig{Dir: dir, Every: 1, KeepLast: 2}
	trained, err := makeModel(model, hops)
	if err != nil {
		return err
	}
	fmt.Printf("selftest: training %s on %d nodes\n", trained.Name(), ds.G.N)
	if _, err := trained.Fit(ds, cfg); err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	want, err := trained.Predict(ds)
	if err != nil {
		return err
	}

	loader := snapshotLoader(ds, model, hops, cfg)
	m, info, err := loader(dir)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}

	// Byte-equal parity: the restored, served model must score every node
	// to the same class as the offline Predict of the model just trained.
	got := make([]int, 0, ds.G.N)
	out := tensor.New(ds.G.N, ds.NumClasses)
	idx := make([]int, ds.G.N)
	for i := range idx {
		idx[i] = i
	}
	if err := m.Score(idx, out); err != nil {
		return err
	}
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		got = append(got, best)
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("parity: node %d served class %d, offline Predict %d", i, got[i], want[i])
		}
	}
	fmt.Printf("selftest: restored snapshot serves all %d nodes identically to offline Predict\n", ds.G.N)

	eng := serve.NewEngine(engCfg)
	defer eng.Close()
	eng.Swap(m, info)
	srv := serve.NewServer(eng, loader)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gnnserve: server close: %v\n", err)
		}
	}()

	res, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:     "http://" + srv.Addr(),
		Nodes:       ds.G.N,
		Concurrency: concurrency,
		Duration:    duration,
		SLO:         slo,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	res.Label = "selftest"
	res.WindowMicros = float64(engCfg.Window.Nanoseconds()) / 1e3
	res.MaxBatch = engCfg.MaxBatch
	res.CacheSize = engCfg.CacheSize
	st := eng.Stats()
	if st.CacheHits+st.CacheMisses > 0 {
		res.CacheHitRate = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	if res.Errors > 0 {
		return fmt.Errorf("loadgen: %d request errors", res.Errors)
	}

	// Exercise the swap path end-to-end: reload the same snapshot; the
	// generation must advance and serving must continue.
	m2, info2, err := loader(dir)
	if err != nil {
		return fmt.Errorf("swap restore: %w", err)
	}
	if gen := eng.Swap(m2, info2); gen != 2 {
		return fmt.Errorf("swap generation = %d, want 2", gen)
	}
	probe, err := eng.Predict(ctx, []int{0})
	if err != nil || probe.Predictions[0] != want[0] {
		return fmt.Errorf("post-swap probe: pred=%v err=%v", probe, err)
	}
	fmt.Println("selftest: hot swap to generation 2 verified")

	if err := serve.WriteBenchJSON(benchOut, []*serve.LoadResult{res}); err != nil {
		return err
	}
	verdict := "met"
	if !res.SLOMet {
		verdict = "MISSED (informational)"
	}
	fmt.Printf("selftest: %d requests, %.0f QPS, p50 %.2fms p99 %.2fms (SLO %.0fms %s), cache hit rate %.0f%%\n",
		res.Requests, res.QPS, res.P50Ms, res.P99Ms, res.SLOMs, verdict, res.CacheHitRate*100)
	fmt.Printf("selftest: wrote %s\n", benchOut)
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gnnserve: "+format+"\n", args...)
	os.Exit(1)
}
