// Command gnnserve serves per-node predictions from a trained decoupled
// model (sgc | sign | appnp | gamlp | ld2) over HTTP. It rebuilds the
// dataset and the graph-side precompute from the same flags the model was
// trained with, loads the head weights from a checkpoint snapshot (the
// fingerprint guards against mismatched flags), and serves:
//
//	GET/POST /predict     — predictions (and logits) for node ids
//	GET      /healthz     — served model, generation, SLO burn status
//	GET      /stats       — QPS counters and latency quantiles
//	GET      /metrics     — Prometheus text exposition
//	POST     /admin/swap  — hot-swap to a new snapshot, zero downtime
//
// Usage:
//
//	gnntrain -model sgc -nodes 20000 -checkpoint-dir ckpts
//	gnnserve -model sgc -nodes 20000 -checkpoint-dir ckpts -addr :8080
//	curl 'localhost:8080/predict?nodes=17,42'
//	curl -X POST -d '{"source":"ckpts"}' localhost:8080/admin/swap
//
//	gnnserve -selftest -bench-out BENCH_serve.json   # offline correctness + load benchmark
//
// Requests are traced end-to-end when -trace-out is set: /predict ingests
// W3C traceparent headers, every request span links to the batch-forward
// span that scored it, and the JSONL timeline lands on disk at shutdown
// (SIGTERM included — the signal cancels the root context and the obs
// session is flushed before exit).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
	"scalegnn/internal/obs"
	"scalegnn/internal/serve"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// logger is the process-wide structured logger, installed in main before
// any other code runs.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		model     = flag.String("model", "sgc", "decoupled model name: sgc | sign | appnp | gamlp | ld2")
		hops      = flag.Int("hops", 2, "propagation hops")
		nodes     = flag.Int("nodes", 5000, "synthetic node count")
		classes   = flag.Int("classes", 5, "class count")
		degree    = flag.Float64("deg", 10, "average degree")
		homophily = flag.Float64("homophily", 0.8, "edge homophily")
		noise     = flag.Float64("noise", 1.2, "feature noise std")
		dim       = flag.Int("dim", 32, "feature dimension")
		graphPath = flag.String("graph", "", "optional edge-list file (overrides synthetic graph)")
		labelPath = flag.String("labels", "", "optional label file (one class per line)")
		seed      = flag.Uint64("seed", 42, "random seed (must match training)")
		dtype     = flag.String("dtype", "float64", "numeric tier used in training: float64 | float32")

		lr          = flag.Float64("lr", 0.01, "learning rate used in training")
		weightDecay = flag.Float64("weight-decay", 5e-4, "L2 weight decay used in training")
		dropout     = flag.Float64("dropout", 0.5, "dropout used in training")
		hidden      = flag.Int("hidden", 64, "hidden width used in training")
		batch       = flag.Int("batch", 512, "mini-batch size used in training")

		ckptDir  = flag.String("checkpoint-dir", "", "serve the newest matching snapshot from this directory")
		snapshot = flag.String("snapshot", "", "serve this one snapshot file")

		window      = flag.Duration("window", 0, "fixed request-coalescing window; 0 (default) drains queued requests per batch without waiting, which E21 measures as the best closed-loop policy")
		maxBatch    = flag.Int("max-batch", 256, "max node rows per coalesced forward")
		cacheSize   = flag.Int("cache", 4096, "hot-node logit LRU size (0 disables)")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar metrics, /metrics, and pprof on this address")
		traceOut    = flag.String("trace-out", "", "write the request/batch span timeline as JSONL here on exit")
		cpuProfile  = flag.String("pprof", "", "write a CPU profile of the run here")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON (default: human-readable text)")
		accessLog   = flag.Bool("access-log", false, "log one structured line per /predict request, correlated by trace_id")

		slo           = flag.Duration("slo", 25*time.Millisecond, "per-request latency SLO target; drives the /healthz burn-rate degradation and the selftest load report")
		sloObjective  = flag.Float64("slo-objective", 0.99, "fraction of requests that must meet -slo (error budget = 1 - objective)")
		sloWindow     = flag.Duration("slo-window", 60*time.Second, "rolling window the SLO burn rate is computed over")
		sloBurn       = flag.Float64("slo-burn-threshold", 1.0, "burn rate at or above which /healthz reports degraded")
		selftest      = flag.Bool("selftest", false, "train, snapshot, restore, verify parity, then load-test in-process")
		benchOut      = flag.String("bench-out", "BENCH_serve.json", "selftest: write the load-test report here")
		metricsOut    = flag.String("metrics-out", "", "selftest: scrape /metrics after the load run and write the exposition here")
		duration      = flag.Duration("duration", 2*time.Second, "selftest: load-generation duration")
		concurrency   = flag.Int("concurrency", 8, "selftest: closed-loop load workers")
		epochs        = flag.Int("epochs", 20, "selftest: training epochs")
		listenAddrStr = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	)
	flag.Parse()
	logger = obs.NewLogger(os.Stderr, *logJSON, nil)

	// The root context is signal-bound from the start so that shutdown
	// during warm-up (selftest probes included) cancels cleanly; the same
	// cancellation path unwinds main, which is what flushes the obs session
	// (trace JSONL + CPU profile) on SIGTERM.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obs.StartSession(obs.Options{
		TraceOut: *traceOut, MetricsAddr: *metricsAddr, CPUProfile: *cpuProfile,
	})
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			logger.Error("observability teardown", "err", err)
		}
	}()
	// The serving registry: the obs session's when any output is enabled
	// (its runtime sampler is already feeding it), otherwise a private one
	// with its own sampler so /metrics always carries runtime health.
	reg := sess.Registry
	if reg == nil {
		reg = obs.NewRegistry()
		stopSampler := obs.StartRuntimeSampler(reg, 10*time.Second)
		defer stopSampler()
	}
	tensor.EnablePoolMetrics(reg)
	if a := sess.Addr(); a != "" {
		logger.Info("debug listener up", "metrics", "http://"+a+"/metrics", "pprof", "http://"+a+"/debug/pprof/")
	}

	ds, err := dataset.Load(*graphPath, *labelPath, dataset.Config{
		Nodes: *nodes, Classes: *classes, AvgDegree: *degree, Homophily: *homophily,
		FeatureDim: *dim, NoiseStd: *noise, TrainFrac: 0.5, ValFrac: 0.2, Seed: *seed,
	})
	if err != nil {
		fatal("dataset: %v", err)
	}

	cfg := models.DefaultTrainConfig()
	cfg.LR = *lr
	cfg.WeightDecay = *weightDecay
	cfg.Dropout = *dropout
	cfg.Hidden = *hidden
	cfg.BatchSize = *batch
	cfg.Seed = *seed
	cfg.Epochs = *epochs
	cfg.DType = *dtype

	engCfg := serve.Config{
		Window: *window, MaxBatch: *maxBatch, CacheSize: *cacheSize, Registry: reg,
		SLO: serve.SLOConfig{
			Target: *slo, Objective: *sloObjective,
			Window: *sloWindow, BurnThreshold: *sloBurn,
		},
	}

	if *selftest {
		opts := selftestOpts{
			benchOut: *benchOut, metricsOut: *metricsOut,
			duration: *duration, concurrency: *concurrency, slo: *slo,
		}
		if err := runSelftest(ctx, ds, *model, *hops, cfg, engCfg, opts); err != nil {
			fatal("selftest: %v", err)
		}
		return
	}

	if (*ckptDir == "") == (*snapshot == "") {
		fatal("need exactly one of -checkpoint-dir or -snapshot")
	}
	source := *ckptDir
	if source == "" {
		source = *snapshot
	}
	loader := snapshotLoader(ds, *model, *hops, cfg)
	m, info, err := loader(source)
	if err != nil {
		fatal("%v", err)
	}

	eng := serve.NewEngine(engCfg)
	defer eng.Close()
	eng.Swap(m, info)
	srv := serve.NewServer(eng, loader)
	if *accessLog {
		srv.SetAccessLog(logger)
	}
	if err := srv.Start(*listenAddrStr); err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			logger.Error("server close", "err", err)
		}
	}()
	logger.Info("serving",
		"model", m.Name(),
		"fingerprint", fmt.Sprintf("%016x", info.Fingerprint),
		"nodes", m.Nodes(),
		"classes", m.Classes(),
		"addr", srv.Addr(),
		"slo_target", slo.String(),
	)

	<-ctx.Done()
	logger.Info("shutting down", "reason", "signal")
}

// servable is what serving needs from a model family: trainable (for
// -selftest), restorable from a snapshot, and batch-scorable.
type servable interface {
	models.Trainer
	models.NodeScorer
	models.Restorer
}

func makeModel(name string, hops int) (servable, error) {
	switch name {
	case "sgc":
		return models.NewSGC(hops)
	case "sign":
		return models.NewSIGN(hops)
	case "appnp":
		return models.NewAPPNP(10, 0.15)
	case "gamlp":
		return models.NewGAMLP(hops)
	case "ld2":
		return models.NewLD2(hops)
	default:
		return nil, fmt.Errorf("gnnserve: model %q is not a servable decoupled family", name)
	}
}

// snapshotLoader builds the serve.Loader used both at startup and by
// /admin/swap: every load constructs a fresh model instance, so a swap
// never mutates the one currently serving.
func snapshotLoader(ds *dataset.Dataset, name string, hops int, cfg models.TrainConfig) serve.Loader {
	return func(source string) (serve.Model, serve.SwapInfo, error) {
		m, err := makeModel(name, hops)
		if err != nil {
			return nil, serve.SwapInfo{}, err
		}
		// The fingerprint hashes the model's own Name() ("SGC-K2"), not the
		// CLI flag spelling ("sgc").
		snap, err := readSnapshot(source, m.Name(), ds, cfg)
		if err != nil {
			return nil, serve.SwapInfo{}, err
		}
		if err := m.Restore(ds, cfg, snap); err != nil {
			return nil, serve.SwapInfo{}, err
		}
		if err := warm(m); err != nil {
			return nil, serve.SwapInfo{}, err
		}
		return m, serve.SwapInfo{Fingerprint: snap.Fingerprint, Source: source}, nil
	}
}

// readSnapshot loads a snapshot from a file path or, for a directory, the
// newest snapshot matching the run fingerprint.
func readSnapshot(source, name string, ds *dataset.Dataset, cfg models.TrainConfig) (*ckpt.Snapshot, error) {
	fi, err := os.Stat(source)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		mgr, err := ckpt.NewManager(source, 0)
		if err != nil {
			return nil, err
		}
		snap, path, err := mgr.Latest(models.RunFingerprint(name, ds, cfg))
		if err != nil {
			return nil, err
		}
		if snap == nil {
			return nil, fmt.Errorf("gnnserve: no snapshots in %s", source)
		}
		logger.Info("loading snapshot", "path", path)
		return snap, nil
	}
	data, err := os.ReadFile(source)
	if err != nil {
		return nil, err
	}
	return ckpt.Decode(data)
}

// warm forces any lazy per-model caches (APPNP's diffused logits, the
// GAMLP attention combine) to materialize before the first request hits.
func warm(m models.NodeScorer) error {
	out := tensor.New(1, m.Classes())
	return m.Score([]int{0}, out)
}

// selftestOpts bundles the selftest-only knobs.
type selftestOpts struct {
	benchOut    string
	metricsOut  string
	duration    time.Duration
	concurrency int
	slo         time.Duration
}

// runSelftest is the offline gate behind scripts/check.sh's serve smoke
// test: train → snapshot → restore → verify the served path is byte-equal
// to offline Predict → serve over HTTP → hot-swap once → load-test and
// write the benchmark report. It then exercises the telemetry surface:
// /metrics must parse as strict Prometheus text with serve.request_seconds
// buckets, an inbound traceparent must be honored end-to-end, the span
// timeline must carry trace ids and request↔batch links (when tracing is
// on), and /healthz must flip to degraded under injected latency. It fails
// on any correctness violation or request errors; missing the latency SLO
// in the load run is reported, not fatal.
func runSelftest(ctx context.Context, ds *dataset.Dataset, model string, hops int, cfg models.TrainConfig, engCfg serve.Config,
	opts selftestOpts) error {
	dir, err := os.MkdirTemp("", "gnnserve-selftest-*")
	if err != nil {
		return err
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			logger.Error("selftest cleanup", "err", err)
		}
	}()

	cfg.Checkpoint = train.CheckpointConfig{Dir: dir, Every: 1, KeepLast: 2}
	trained, err := makeModel(model, hops)
	if err != nil {
		return err
	}
	logger.Info("selftest: training", "model", trained.Name(), "nodes", ds.G.N)
	if _, err := trained.Fit(ds, cfg); err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	want, err := trained.Predict(ds)
	if err != nil {
		return err
	}

	loader := snapshotLoader(ds, model, hops, cfg)
	m, info, err := loader(dir)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}

	// Byte-equal parity: the restored, served model must score every node
	// to the same class as the offline Predict of the model just trained.
	got := make([]int, 0, ds.G.N)
	out := tensor.New(ds.G.N, ds.NumClasses)
	idx := make([]int, ds.G.N)
	for i := range idx {
		idx[i] = i
	}
	if err := m.Score(idx, out); err != nil {
		return err
	}
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		got = append(got, best)
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("parity: node %d served class %d, offline Predict %d", i, got[i], want[i])
		}
	}
	logger.Info("selftest: parity verified", "nodes", ds.G.N)

	eng := serve.NewEngine(engCfg)
	defer eng.Close()
	eng.Swap(m, info)
	srv := serve.NewServer(eng, loader)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer func() {
		if err := srv.Close(); err != nil {
			logger.Error("server close", "err", err)
		}
	}()
	base := "http://" + srv.Addr()

	res, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:     base,
		Nodes:       ds.G.N,
		Concurrency: opts.concurrency,
		Duration:    opts.duration,
		SLO:         opts.slo,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	res.Label = "selftest"
	res.WindowMicros = float64(engCfg.Window.Nanoseconds()) / 1e3
	res.MaxBatch = engCfg.MaxBatch
	res.CacheSize = engCfg.CacheSize
	st := eng.Stats()
	if st.CacheHits+st.CacheMisses > 0 {
		res.CacheHitRate = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	if res.Errors > 0 {
		return fmt.Errorf("loadgen: %d request errors", res.Errors)
	}

	// Exercise the swap path end-to-end: reload the same snapshot; the
	// generation must advance and serving must continue.
	m2, info2, err := loader(dir)
	if err != nil {
		return fmt.Errorf("swap restore: %w", err)
	}
	if gen := eng.Swap(m2, info2); gen != 2 {
		return fmt.Errorf("swap generation = %d, want 2", gen)
	}
	probe, err := eng.Predict(ctx, []int{0})
	if err != nil || probe.Predictions[0] != want[0] {
		return fmt.Errorf("post-swap probe: pred=%v err=%v", probe, err)
	}
	logger.Info("selftest: hot swap verified", "generation", 2)

	if err := checkMetricsExposition(ctx, base, opts.metricsOut); err != nil {
		return err
	}
	if err := checkTraceparentEcho(ctx, base); err != nil {
		return err
	}
	if err := checkSpanLinks(); err != nil {
		return err
	}
	if err := checkSLODegradation(ctx, m2, info2); err != nil {
		return err
	}

	if err := serve.WriteBenchJSON(opts.benchOut, []*serve.LoadResult{res}); err != nil {
		return err
	}
	verdict := "met"
	if !res.SLOMet {
		verdict = "MISSED (informational)"
	}
	logger.Info("selftest: load run",
		"requests", res.Requests, "qps", fmt.Sprintf("%.0f", res.QPS),
		"p50_ms", fmt.Sprintf("%.2f", res.P50Ms), "p99_ms", fmt.Sprintf("%.2f", res.P99Ms),
		"slo_ms", fmt.Sprintf("%.0f", res.SLOMs), "slo", verdict,
		"cache_hit_rate", fmt.Sprintf("%.0f%%", res.CacheHitRate*100),
	)
	logger.Info("selftest: report written", "path", opts.benchOut)
	return nil
}

// checkMetricsExposition scrapes /metrics, validates it with the strict
// hand-rolled Prometheus parser, requires the serve.request_seconds
// cumulative buckets, and optionally writes the exposition to disk.
func checkMetricsExposition(ctx context.Context, base, metricsOut string) error {
	body, _, err := httpGet(ctx, base+"/metrics", "")
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	if err := obs.ValidateExposition(body); err != nil {
		return fmt.Errorf("metrics exposition: %w", err)
	}
	for _, needle := range []string{
		`serve_request_seconds_bucket{le="+Inf"}`,
		"serve_request_seconds_sum",
		"serve_request_seconds_count",
		"serve_requests_total",
	} {
		if !strings.Contains(string(body), needle) {
			return fmt.Errorf("metrics exposition missing %q", needle)
		}
	}
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, body, 0o644); err != nil {
			return fmt.Errorf("metrics out: %w", err)
		}
	}
	logger.Info("selftest: /metrics exposition valid", "bytes", len(body))
	return nil
}

// checkTraceparentEcho sends a /predict with a fixed inbound traceparent
// and requires the response header to continue the same trace (when
// tracing is enabled; with no tracer the header is absent by design).
func checkTraceparentEcho(ctx context.Context, base string) error {
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	_, hdr, err := httpGet(ctx, base+"/predict?nodes=0", inbound)
	if err != nil {
		return fmt.Errorf("traceparent probe: %w", err)
	}
	echo := hdr.Get("Traceparent")
	if !obs.Enabled() {
		if echo != "" {
			return fmt.Errorf("traceparent echoed %q with tracing off", echo)
		}
		return nil
	}
	tc, ok := obs.ParseTraceparent(echo)
	if !ok {
		return fmt.Errorf("response traceparent %q does not parse", echo)
	}
	want, _ := obs.ParseTraceparent(inbound)
	if tc.Trace != want.Trace {
		return fmt.Errorf("response trace id %s, want %s (inbound not honored)", tc.Trace, want.Trace)
	}
	logger.Info("selftest: inbound traceparent honored", "trace_id", tc.Trace.String())
	return nil
}

// checkSpanLinks verifies the live tracer's timeline: every serve.request
// span carries a trace id, at least one links into a serve.batch_forward
// span, and every link from a request span targets a batch span. No-op
// when tracing is off.
func checkSpanLinks() error {
	t := obs.ActiveTracer()
	if t == nil {
		return nil
	}
	snap := t.Snapshot()
	batchIDs := make(map[uint64]bool)
	for _, r := range snap {
		if r.Name == "serve.batch_forward" {
			batchIDs[r.ID] = true
		}
	}
	var reqSpans, linked int
	for _, r := range snap {
		if r.Name != "serve.request" {
			continue
		}
		reqSpans++
		if r.Trace == "" {
			return fmt.Errorf("trace check: request span %d has no trace_id", r.ID)
		}
		for _, l := range r.Links {
			if !batchIDs[l] {
				return fmt.Errorf("trace check: request span %d links %d, which is not a batch-forward span", r.ID, l)
			}
			linked++
		}
	}
	if reqSpans == 0 {
		return fmt.Errorf("trace check: no serve.request spans recorded")
	}
	if linked == 0 {
		return fmt.Errorf("trace check: no request span links a batch-forward span")
	}
	logger.Info("selftest: span links verified", "request_spans", reqSpans, "batch_links", linked)
	return nil
}

// checkSLODegradation stands up a second engine around the same model with
// artificial scoring latency and an aggressive SLO target, then requires
// /healthz over real HTTP to report degraded once the burn rate crosses
// threshold.
func checkSLODegradation(ctx context.Context, m serve.Model, info serve.SwapInfo) error {
	slow := slowModel{Model: m, delay: 2 * time.Millisecond}
	eng := serve.NewEngine(serve.Config{
		CacheSize: 0, // every request must reach the (slow) scorer
		SLO: serve.SLOConfig{
			Target: 100 * time.Microsecond, Objective: 0.99,
			Window: 10 * time.Second, BurnThreshold: 1.0,
		},
	})
	defer eng.Close()
	eng.Swap(slow, info)
	srv := serve.NewServer(eng, nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer func() {
		if err := srv.Close(); err != nil {
			logger.Error("slo drill server close", "err", err)
		}
	}()
	base := "http://" + srv.Addr()
	for i := 0; i < 10; i++ {
		if _, _, err := httpGet(ctx, fmt.Sprintf("%s/predict?nodes=%d", base, i), ""); err != nil {
			return fmt.Errorf("slo drill request: %w", err)
		}
	}
	body, _, err := httpGet(ctx, base+"/healthz", "")
	if err != nil {
		return fmt.Errorf("slo drill healthz: %w", err)
	}
	var health struct {
		Status string `json:"status"`
		SLO    *serve.SLOStatus
	}
	if err := json.Unmarshal(body, &health); err != nil {
		return fmt.Errorf("slo drill healthz decode: %w", err)
	}
	if health.Status != "degraded" {
		return fmt.Errorf("slo drill: healthz status %q, want degraded (%s)", health.Status, body)
	}
	logger.Info("selftest: healthz degraded under injected latency", "status", health.Status)
	return nil
}

// slowModel injects fixed latency ahead of every Score — the selftest's
// SLO-degradation stand-in for an overloaded model.
type slowModel struct {
	serve.Model
	delay time.Duration
}

// Score delays, then delegates to the wrapped model.
// lint:confine score-path
func (s slowModel) Score(idx []int, out *tensor.Matrix) error {
	time.Sleep(s.delay)
	return s.Model.Score(idx, out)
}

// httpGet issues one GET with the request bound to ctx, optionally setting
// an inbound traceparent, and returns the body and response headers.
func httpGet(ctx context.Context, url, traceparent string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET %s: status %d (%s)", url, resp.StatusCode, body)
	}
	return body, resp.Header, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gnnserve: "+format+"\n", args...)
	os.Exit(1)
}
