// Command gnntrain trains any registered model on a synthetic dataset (or
// a graph loaded from an edge-list file with synthetic features) and prints
// the training report.
//
// Usage:
//
//	gnntrain -model sgc -nodes 20000 -homophily 0.8
//	gnntrain -model ld2 -nodes 5000 -homophily 0.1 -epochs 150
//	gnntrain -model gcn -graph graph.el -labels graph.el.labels
//	gnntrain -model gcn -checkpoint-dir ckpts          # durable snapshots
//	gnntrain -model gcn -checkpoint-dir ckpts -resume  # continue after a crash
//
// Models: gcn | sage | clustergcn | sgc | appnp | sign | gamlp | ld2 | implicit | transformer
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/dataset"
	"scalegnn/internal/distnet"
	"scalegnn/internal/models"
	"scalegnn/internal/obs"
	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

func main() {
	var (
		model       = flag.String("model", "sgc", "model name")
		nodes       = flag.Int("nodes", 5000, "synthetic node count")
		classes     = flag.Int("classes", 5, "class count")
		degree      = flag.Float64("deg", 10, "average degree")
		homophily   = flag.Float64("homophily", 0.8, "edge homophily")
		noise       = flag.Float64("noise", 1.2, "feature noise std")
		dim         = flag.Int("dim", 32, "feature dimension")
		graphPath   = flag.String("graph", "", "optional edge-list file (overrides synthetic graph)")
		labelPath   = flag.String("labels", "", "optional label file (one class per line)")
		epochs      = flag.Int("epochs", 100, "training epochs")
		lr          = flag.Float64("lr", 0.01, "learning rate")
		weightDecay = flag.Float64("weight-decay", 5e-4, "L2 weight decay")
		dropout     = flag.Float64("dropout", 0.5, "dropout probability")
		hidden      = flag.Int("hidden", 64, "hidden width")
		batch       = flag.Int("batch", 512, "mini-batch size")
		hops        = flag.Int("hops", 2, "propagation hops / layers")
		patience    = flag.Int("patience", 30, "early-stopping patience in epochs (0 disables)")
		restoreBest = flag.Bool("restore-best", false, "restore best-validation weights after training")
		verbose     = flag.Bool("verbose", false, "print per-epoch validation accuracy")
		seed        = flag.Uint64("seed", 42, "random seed")
		dtype       = flag.String("dtype", "float64", "numeric tier: float64 (reference) or float32 (raw speed)")
		ckptDir     = flag.String("checkpoint-dir", "", "write durable training snapshots to this directory")
		ckptEvery   = flag.Int("checkpoint-every", 1, "snapshot every N epochs (final epoch and cancellation always snapshot)")
		ckptKeep    = flag.Int("checkpoint-keep", 2, "retain the newest N snapshots")
		resume      = flag.Bool("resume", false, "resume from the newest usable snapshot in -checkpoint-dir")
		traceOut    = flag.String("trace-out", "", "write the span timeline to this file as JSONL")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar metrics, /metrics, and pprof on this address (e.g. localhost:6060)")
		pprofOut    = flag.String("pprof", "", "write a CPU profile of the run to this file")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON (default: human-readable text)")
	)
	flag.Parse()
	logger = obs.NewLogger(os.Stderr, *logJSON, nil)

	sess, err := obs.StartSession(obs.Options{
		TraceOut: *traceOut, MetricsAddr: *metricsAddr, CPUProfile: *pprofOut,
	})
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			logger.Error("observability teardown", "err", err)
		}
	}()
	if sess.Registry != nil {
		tensor.EnablePoolMetrics(sess.Registry)
		par.EnableMetrics(sess.Registry)
		train.EnableMetrics(sess.Registry)
		ckpt.EnableMetrics(sess.Registry)
	}
	if addr := sess.Addr(); addr != "" {
		logger.Info("debug listener up", "metrics", "http://"+addr+"/metrics", "pprof", "http://"+addr+"/debug/pprof/")
	}

	ds, err := dataset.Load(*graphPath, *labelPath, dataset.Config{
		Nodes: *nodes, Classes: *classes, AvgDegree: *degree, Homophily: *homophily,
		FeatureDim: *dim, NoiseStd: *noise, TrainFrac: 0.5, ValFrac: 0.2, Seed: *seed,
	})
	if err != nil {
		fatal("dataset: %v", err)
	}
	logger.Info("dataset",
		"n", ds.G.N, "arcs", ds.G.NumEdges(), "classes", ds.NumClasses,
		"homophily", fmt.Sprintf("%.3f", dataset.EdgeHomophily(ds.G, ds.Labels)))

	m, err := makeModel(*model, *hops)
	if err != nil {
		fatal("%v", err)
	}
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.LR = *lr
	cfg.WeightDecay = *weightDecay
	cfg.Dropout = *dropout
	cfg.Hidden = *hidden
	cfg.BatchSize = *batch
	cfg.Seed = *seed
	cfg.Patience = *patience
	cfg.RestoreBest = *restoreBest
	cfg.DType = *dtype
	if *resume && *ckptDir == "" {
		fatal("-resume needs -checkpoint-dir")
	}
	if *ckptDir != "" {
		cfg.Checkpoint = train.CheckpointConfig{
			Dir: *ckptDir, Every: *ckptEvery, KeepLast: *ckptKeep, Resume: *resume,
		}
	}

	// Ctrl-C cancels between batches: the engine returns the partial report
	// instead of killing the run mid-step.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Ctx = ctx
	if sess.Registry != nil {
		cfg.Hooks = append(cfg.Hooks, obs.NewTrainHook(sess.Registry))
	}
	if *verbose {
		cfg.Hooks = append(cfg.Hooks, epochLogger{})
	}

	// -shard turns this process into one member of a distnet cluster; see
	// dist.go and DESIGN.md "Distributed training".
	var cluster *distnet.Cluster
	if *distFlags.shard != "" {
		if sess.Registry != nil {
			distnet.EnableMetrics(sess.Registry)
		}
		cluster, err = setupDist(ctx, ds, &cfg, *model, *hops, *ckptEvery)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if err := cluster.Close(); err != nil {
				logger.Error("cluster teardown", "err", err)
			}
		}()
	}

	rep, err := fitModel(m, ds, cfg)
	if err != nil {
		fatal("fit: %v", err)
	}
	// The report stays on stdout as the run's machine-consumable result
	// (the crash-recovery and distributed smoke gates grep it); everything
	// else is structured logging on stderr.
	fmt.Println(rep)
	if *distFlags.printFP {
		pred, err := predictModel(m, ds)
		if err != nil {
			fatal("predict: %v", err)
		}
		fmt.Printf("fingerprint=%016x\n", models.PredictionFingerprint(pred))
	}
	if cluster != nil {
		s := cluster.Stats()
		fmt.Printf("dist rounds=%d stale_hits=%d reconnects=%d replays=%d frames_corrupt=%d\n",
			s.Rounds, s.StaleHits, s.Reconnects, s.Replays, s.FramesCorrupt)
	}
}

// logger is the process-wide structured logger, installed in main before
// any other code runs.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// epochLogger is a train.Hook that logs each epoch's validation accuracy,
// correlated with the run's span timeline by trace_id when tracing is on.
type epochLogger struct{}

func (epochLogger) OnBatch(train.BatchEnd) {}

func (epochLogger) OnEpoch(e train.EpochEnd) {
	logger.Info("epoch",
		slog.Int("epoch", e.Epoch),
		slog.Float64("val", e.ValAcc),
		slog.Float64("best", e.Best),
		slog.Bool("improved", e.Improved),
		slog.Duration("elapsed", e.Elapsed.Round(1e6)),
		obs.TraceAttr(obs.TraceContext{Trace: e.Trace}),
	)
}

func makeModel(name string, hops int) (models.Trainer, error) {
	switch name {
	case "gcn":
		return models.NewGCN(hops)
	case "sage":
		return models.NewGraphSAGE(hops, 5)
	case "clustergcn":
		return models.NewClusterGCN(hops, 16)
	case "sgc":
		return models.NewSGC(hops)
	case "appnp":
		return models.NewAPPNP(10, 0.15)
	case "sign":
		return models.NewSIGN(hops)
	case "gamlp":
		return models.NewGAMLP(hops)
	case "ld2":
		return models.NewLD2(hops)
	case "implicit":
		return models.NewImplicitNet(0.8, nil)
	case "transformer":
		return models.NewGraphTransformer(6)
	default:
		return nil, fmt.Errorf("gnntrain: unknown model %q", name)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gnntrain: "+format+"\n", args...)
	os.Exit(1)
}
