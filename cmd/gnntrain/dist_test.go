// Distributed crash-matrix test: two real gnntrain processes train one
// model over unix sockets, one is SIGKILLed mid-epoch, rejoins via
// -resume, and the cluster's final predictions must be bitwise identical
// to a single-process run that was never interrupted.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fingerprintLine extracts the "fingerprint=%016x" value from a run's
// stdout.
func fingerprintLine(t *testing.T, out string) string {
	t.Helper()
	m := regexp.MustCompile(`(?m)^fingerprint=([0-9a-f]{16})$`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no fingerprint line in output:\n%s", out)
	}
	return m[1]
}

// distStat extracts one counter from the "dist rounds=... stale_hits=..."
// stats line of a shard's stdout.
func distStat(t *testing.T, out, name string) int {
	t.Helper()
	m := regexp.MustCompile(`(?m)^dist .*\b` + name + `=(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no dist %s stat in output:\n%s", name, out)
	}
	v, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// asyncRun starts bin in the background and returns a wait function
// yielding its stdout; the process runs to completion on its own.
func asyncRun(t *testing.T, bin string, env []string, args ...string) func() string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = env
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	//lint:ignore naked-go reaps the background shard process, joined via the returned wait func
	go func() { done <- cmd.Wait() }()
	return func() string {
		t.Helper()
		if err := <-done; err != nil {
			t.Fatalf("%s %v: %v\nstderr:\n%s", filepath.Base(bin), args, err, stderr.String())
		}
		return stdout.String()
	}
}

// distSockets returns two unix-socket addresses in a freshly created short
// temp path (sun_path caps at ~100 bytes, so t.TempDir is too deep when the
// test binary's own path is long).
func distSockets(t *testing.T) (peers string) {
	t.Helper()
	dir, err := os.MkdirTemp("", "dn")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.RemoveAll(dir) })
	return fmt.Sprintf("unix:%s/s0.sock,unix:%s/s1.sock", dir, dir)
}

// TestCrashDistShardKill9Resume is the distributed acceptance gate: a
// 2-shard synchronous cluster where shard 1 is killed -9 while parked
// mid-epoch, restarted with -resume from its durable snapshots, and the
// surviving shard — which spent the outage blocked inside an exchange
// round — is fed the missing rounds from the send-log replay. Both shards'
// prediction fingerprints must equal the uninterrupted single-process
// run's, with zero stale substitutions.
func TestCrashDistShardKill9Resume(t *testing.T) {
	buildBinaries(t)
	base := []string{
		"-model", "gcn", "-nodes", "300", "-epochs", "6", "-seed", "11",
		"-patience", "0", "-fingerprint",
	}
	want := fingerprintLine(t, runToCompletion(t, gnntrainBin, os.Environ(), base...))

	peers := distSockets(t)
	dir0, dir1 := t.TempDir(), t.TempDir()
	shardArgs := func(shard int, ckptDir string) []string {
		return append(append([]string(nil), base...),
			"-shard", fmt.Sprintf("%d/2", shard), "-peers", peers,
			"-checkpoint-dir", ckptDir, "-checkpoint-every", "1",
			"-peer-timeout", "120s",
		)
	}
	wait0 := asyncRun(t, gnntrainBin, os.Environ(), shardArgs(0, dir0)...)
	// Shard 1 parks inside its 4th batch step (mid-epoch, after several
	// durable snapshots) and dies there by kill -9.
	killAtMarker(t, gnntrainBin, faultEnv("train.batch=sleep:60000@4"), shardArgs(1, dir1)...)
	if bins, _ := snapshotFiles(t, dir1); len(bins) == 0 {
		t.Fatal("killed shard left no durable snapshot to resume from")
	}
	// Hold the outage open long enough for the survivor to reach its next
	// exchange round and transmit it into the dead connection: those are
	// the frames the rejoining shard's resumeAt must rewind and re-send,
	// which is what the replay assertion below counts. An instant restart
	// can win the race to the round and make replay legitimately a no-op.
	time.Sleep(750 * time.Millisecond)
	out1 := runToCompletion(t, gnntrainBin, os.Environ(), append(shardArgs(1, dir1), "-resume")...)
	out0 := wait0()

	for shard, out := range map[int]string{0: out0, 1: out1} {
		if got := fingerprintLine(t, out); got != want {
			t.Errorf("shard %d fingerprint %s, want %s (diverged from single-process run)", shard, got, want)
		}
		if stale := distStat(t, out, "stale_hits"); stale != 0 {
			t.Errorf("shard %d substituted %d stale rounds in strict synchronous mode", shard, stale)
		}
	}
	// The survivor must have seen the churn: the dead shard's connection
	// was re-established and the missing rounds re-sent from its log.
	if rec := distStat(t, out0, "reconnects"); rec < 1 {
		t.Error("surviving shard recorded no reconnect for the killed peer")
	}
	if rep := distStat(t, out0, "replays"); rep < 1 {
		t.Error("surviving shard replayed no rounds for the resumed peer")
	}
}

// TestCrashDistStaleModeStillCompletes: the same kill-9 matrix under
// bounded staleness (-max-staleness 1): the surviving shard coasts on
// cached rows through the outage, hits the staleness wall, blocks, and is
// unblocked by the resumed shard's fresh rounds. Stale substitutions are
// allowed here — the point of the mode — so completion and counters are
// asserted, not bitwise parity. The run is long enough (8 epochs, bound 1)
// that the survivor cannot finish on the cache alone and strand the
// resumed shard against a closed mesh.
func TestCrashDistStaleModeStillCompletes(t *testing.T) {
	buildBinaries(t)
	peers := distSockets(t)
	dir0, dir1 := t.TempDir(), t.TempDir()
	args := func(shard int, dir string) []string {
		return []string{
			"-model", "gcn", "-nodes", "200", "-epochs", "8", "-seed", "3",
			"-patience", "0",
			"-shard", fmt.Sprintf("%d/2", shard), "-peers", peers,
			"-checkpoint-dir", dir, "-checkpoint-every", "1",
			"-max-staleness", "1", "-exchange-timeout", "200ms",
			"-peer-timeout", "120s", "-retain-epochs", "4",
		}
	}
	wait0 := asyncRun(t, gnntrainBin, os.Environ(), args(0, dir0)...)
	killAtMarker(t, gnntrainBin, faultEnv("train.batch=sleep:60000@3"), args(1, dir1)...)
	// A real outage window: long enough past the 200ms exchange timeout
	// that the survivor must coast on the stale cache before the rejoin.
	time.Sleep(1500 * time.Millisecond)
	out1 := runToCompletion(t, gnntrainBin, os.Environ(), append(args(1, dir1), "-resume")...)
	out0 := wait0()
	for shard, out := range map[int]string{0: out0, 1: out1} {
		if !strings.Contains(out, "test=") {
			t.Errorf("shard %d produced no report:\n%s", shard, out)
		}
		if rounds := distStat(t, out, "rounds"); rounds == 0 {
			t.Errorf("shard %d completed no exchange rounds", shard)
		}
	}
	if stale := distStat(t, out0, "stale_hits"); stale < 1 {
		t.Error("surviving shard never used the stale cache during the outage")
	}
}
