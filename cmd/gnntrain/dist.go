package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/dataset"
	"scalegnn/internal/distnet"
	"scalegnn/internal/models"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// Distributed-training flags. A run becomes distributed when -shard is set:
// N processes each open the same flag set (only -shard differs), partition
// the graph identically with a shared deterministic RNG, and exchange
// boundary rows through internal/distnet. In strict synchronous mode
// (-max-staleness 0, the default) the cluster's predictions are bitwise
// identical to a single-process run — provable with -fingerprint.
var distFlags = struct {
	shard    *string
	peers    *string
	part     *string
	maxStale *int
	xTimeout *time.Duration
	pTimeout *time.Duration
	retain   *int
	printFP  *bool
}{
	shard:    flag.String("shard", "", `distributed shard id as "i/N" (requires -peers with N addresses)`),
	peers:    flag.String("peers", "", "comma-separated shard addresses, one per shard (unix:/path or tcp:host:port)"),
	part:     flag.String("partitioner", "ldg", "graph partitioner for distributed runs: ldg | fennel | metis-style | hash"),
	maxStale: flag.Int("max-staleness", 0, "bounded-staleness window in epochs (0 = strict synchronous, bitwise-reproducible)"),
	xTimeout: flag.Duration("exchange-timeout", distnet.DefaultExchangeTimeout, "wait before substituting stale rows (-max-staleness > 0 only)"),
	pTimeout: flag.Duration("peer-timeout", distnet.DefaultPeerTimeout, "hard bound before an exchange round fails loudly"),
	retain:   flag.Int("retain-epochs", 0, "exchange replay window in epochs (0 = -checkpoint-every + 1)"),
	printFP:  flag.Bool("fingerprint", false, "print the FNV-1a fingerprint of full-graph predictions after training"),
}

// setupDist turns this process into one shard of a cluster: it opens the
// distnet mesh, partitions the graph deterministically (every shard derives
// the same assignment from the seed), installs the propagation hook on the
// dataset's CSR, and registers the epoch hook that advances the staleness
// clock. The cluster's cursor rides inside training checkpoints via
// Checkpoint.Aux, so a SIGKILLed shard resumes mid-sequence.
func setupDist(ctx context.Context, ds *dataset.Dataset, cfg *models.TrainConfig, model string, hops, ckptEvery int) (*distnet.Cluster, error) {
	shard, n, err := parseShard(*distFlags.shard)
	if err != nil {
		return nil, err
	}
	addrs := strings.Split(*distFlags.peers, ",")
	if *distFlags.peers == "" || len(addrs) != n {
		return nil, fmt.Errorf("-peers lists %d addresses for %d shards", len(addrs), n)
	}
	assign, err := buildPartition(ds, *distFlags.part, n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	runFP := runFingerprint(model, ds, *cfg, hops, n, *distFlags.maxStale, *distFlags.part)
	retain := *distFlags.retain
	if retain <= 0 {
		retain = ckptEvery + 1
	}
	cluster, err := distnet.Open(distnet.Config{
		Shard: shard, N: n, Addrs: addrs, Fingerprint: runFP,
		MaxStaleness:    *distFlags.maxStale,
		ExchangeTimeout: *distFlags.xTimeout,
		PeerTimeout:     *distFlags.pTimeout,
		RetainEpochs:    retain,
		Ctx:             ctx,
	})
	if err != nil {
		return nil, err
	}
	hook, err := distnet.NewHook(cluster, assign)
	if err != nil {
		_ = cluster.Close()
		return nil, err
	}
	hook.Attach(ds.G)
	logger.Info("distributed shard up",
		"shard", shard, "n", n, "owned", len(hook.Owned()),
		"partitioner", *distFlags.part, "max_staleness", *distFlags.maxStale)
	cfg.Hooks = append(cfg.Hooks, distEpochHook{cluster})
	if cfg.Checkpoint.Dir != "" {
		cfg.Checkpoint.Aux = cluster
	}
	return cluster, nil
}

// parseShard splits "i/N" into the shard id and cluster size.
func parseShard(s string) (shard, n int, err error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("-shard %q is not of the form i/N", s)
	}
	shard, err1 := strconv.Atoi(s[:i])
	n, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || n < 1 || shard < 0 || shard >= n {
		return 0, 0, fmt.Errorf("-shard %q is not a valid i/N with 0 <= i < N", s)
	}
	return shard, n, nil
}

// buildPartition derives the shard assignment every process must agree on.
// The RNG is seeded from the training seed alone (never the shard id), so
// lockstep shards compute identical assignments without communicating.
func buildPartition(ds *dataset.Dataset, name string, k int, seed uint64) (*partition.Assignment, error) {
	rng := tensor.NewRand(seed ^ 0xd157_9a27)
	switch name {
	case "ldg":
		return partition.LDG(ds.G, k, 1.05, rng)
	case "fennel":
		return partition.Fennel(ds.G, k, rng)
	case "metis-style":
		return partition.Multilevel(ds.G, k, maxInt(ds.G.N/10, k), 8, rng)
	case "hash":
		return partition.Hash(ds.G, k, rng)
	default:
		return nil, fmt.Errorf("unknown partitioner %q (want ldg | fennel | metis-style | hash)", name)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runFingerprint hashes every shard-invariant setting that must agree
// across the cluster (and across a resume). It doubles as the checkpoint
// run identity's distributed extension: a shard from a different command
// line is rejected at the handshake instead of corrupting the run.
func runFingerprint(model string, ds *dataset.Dataset, cfg models.TrainConfig, hops, n, maxStale int, partitioner string) uint64 {
	return ckpt.NewFingerprint().
		String("gnntrain.dist").String(model).String(cfg.DType).String(partitioner).
		U64(uint64(ds.G.N)).U64(uint64(ds.G.NumEdges())).U64(uint64(ds.NumClasses)).
		U64(cfg.Seed).U64(uint64(hops)).U64(uint64(cfg.Hidden)).U64(uint64(cfg.BatchSize)).
		U64(uint64(n)).U64(uint64(maxStale)).
		Sum()
}

// distEpochHook advances the cluster's staleness epoch in lockstep with
// training. It runs on every shard at the same point of the same epoch, so
// the deterministic exchange-site counter stays aligned across processes.
type distEpochHook struct{ c *distnet.Cluster }

func (distEpochHook) OnBatch(train.BatchEnd) {}

func (h distEpochHook) OnEpoch(e train.EpochEnd) { h.c.SetEpoch(e.Epoch + 1) }

// fitModel runs Fit, converting the propagation hook's typed panic (the
// only way an exchange failure can escape the void ApplyInto seam) back
// into an ordinary error at the process boundary.
func fitModel(m models.Trainer, ds *dataset.Dataset, cfg models.TrainConfig) (rep *models.Report, err error) {
	defer recoverExchange(&err)
	return m.Fit(ds, cfg)
}

// predictModel is Predict with the same exchange-failure recovery.
func predictModel(m models.Trainer, ds *dataset.Dataset) (pred []int, err error) {
	defer recoverExchange(&err)
	return m.Predict(ds)
}

func recoverExchange(err *error) {
	if r := recover(); r != nil {
		xe, ok := r.(*distnet.ExchangeError)
		if !ok {
			panic(r)
		}
		*err = xe
	}
}
