// Subprocess crash/recovery tests: a real training binary is SIGKILLed in
// the middle of a checkpoint write (a sleep failpoint parks it at the
// vulnerable instant, the test kills it on the fired marker), and the
// resumed process must recover from the last durable snapshot — torn temp
// files ignored, corrupted checksums skipped, output bitwise identical to
// a run that was never interrupted.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"scalegnn/internal/fault"
)

// faultEnv builds the child environment with the given failpoint bindings.
func faultEnv(bindings string) []string {
	env := append([]string(nil), os.Environ()...)
	return append(env, fault.EnvVar+"="+bindings)
}

var (
	buildOnce               sync.Once
	buildErr                error
	binDir                  string
	gnntrainBin, gnnfingBin string
)

// buildBinaries compiles gnntrain and gnnfingerprint once per test binary,
// into a directory removed by TestMain after all tests finish. The
// children run un-instrumented even when this test runs under -race: the
// race detector watches the supervising process; the child's torn state is
// what the assertions cover.
func buildBinaries(t *testing.T) {
	t.Helper()
	buildOnce.Do(func() {
		gnntrainBin = filepath.Join(binDir, "gnntrain")
		gnnfingBin = filepath.Join(binDir, "gnnfingerprint")
		for dir, out := range map[string]string{".": gnntrainBin, "../gnnfingerprint": gnnfingBin} {
			cmd := exec.Command("go", "build", "-o", out, ".")
			cmd.Dir = dir
			if b, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", dir, err, b)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
}

func TestMain(m *testing.M) {
	os.Exit(runTestMain(m))
}

// runTestMain owns the shared scratch directory the crash tests compile
// their child binaries into; a plain TestMain defer would be skipped by
// os.Exit, hence the wrapper.
func runTestMain(m *testing.M) int {
	var err error
	binDir, err = os.MkdirTemp("", "scalegnn-crash-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	//lint:ignore unchecked-error best-effort scratch cleanup at process end
	defer os.RemoveAll(binDir)
	return m.Run()
}

// runToCompletion runs bin and returns its stdout, failing the test on a
// non-zero exit.
func runToCompletion(t *testing.T, bin string, env []string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = env
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", filepath.Base(bin), args, err, stderr.String())
	}
	return stdout.String()
}

// killAtMarker starts bin with the given failpoint environment, reads its
// stderr until the fault registry prints its "fault: fired" marker (the
// process is then parked inside the armed sleep), and SIGKILLs it — a real
// kill -9 at the exact vulnerable instant. Fails the test if the marker
// never appears (the process exiting first closes the pipe).
func killAtMarker(t *testing.T, bin string, env []string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = env
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	fired := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "fault: fired") {
			fired = true
			break
		}
	}
	if !fired {
		//lint:ignore unchecked-error the process is already dead or dying; Wait below reports the real failure
		cmd.Process.Kill()
		//lint:ignore unchecked-error collecting the zombie; the test fails on the missing marker either way
		cmd.Wait()
		t.Fatalf("%s %v exited before the failpoint fired", filepath.Base(bin), args)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// Drain the pipe so the child can't block on a full buffer while dying.
	//lint:ignore unchecked-error the pipe is closing because we killed the writer
	io.Copy(io.Discard, stderr)
	err = cmd.Wait()
	if err == nil {
		t.Fatal("killed process reported clean exit")
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("wait: %v", err)
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() != syscall.SIGKILL {
		t.Fatalf("process died from %v, want SIGKILL", ws.Signal())
	}
}

// snapshotFiles returns the durable snapshots and torn temp files in dir.
func snapshotFiles(t *testing.T, dir string) (bins, tmps []string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".bin"):
			bins = append(bins, filepath.Join(dir, e.Name()))
		case strings.HasSuffix(e.Name(), ".tmp"):
			tmps = append(tmps, filepath.Join(dir, e.Name()))
		}
	}
	return bins, tmps
}

// TestCrashRecoveryKill9 is the tentpole crash test: gnntrain is killed -9
// while parked between writing a snapshot's temp file and renaming it into
// place. The checkpoint directory is then left with durable snapshots plus
// one torn temp file; the newest durable snapshot is additionally
// corrupted with a bit flip. Resume must ignore the temp file, reject the
// corrupt snapshot on its checksum, fall back to the previous one, and
// finish the run cleanly.
func TestCrashRecoveryKill9(t *testing.T) {
	buildBinaries(t)
	dir := t.TempDir()
	args := []string{
		"-model", "gcn", "-nodes", "300", "-epochs", "6", "-seed", "11",
		"-checkpoint-dir", dir, "-checkpoint-every", "1", "-checkpoint-keep", "4",
	}
	// The third snapshot write stalls after its temp file is durable but
	// before the rename — the classic torn-write instant.
	killAtMarker(t, gnntrainBin, faultEnv("ckpt.after-tmp-write=sleep:60000@3"), args...)

	bins, tmps := snapshotFiles(t, dir)
	if len(bins) < 2 {
		t.Fatalf("expected >= 2 durable snapshots before the kill, found %d", len(bins))
	}
	if len(tmps) != 1 {
		t.Fatalf("expected exactly 1 torn temp file after the kill, found %d", len(tmps))
	}

	// Flip a byte in the newest durable snapshot: resume must reject it on
	// checksum and fall back to the one before it.
	newest := bins[len(bins)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out := runToCompletion(t, gnntrainBin, os.Environ(), append(args, "-resume")...)
	if !strings.Contains(out, "test=") {
		t.Fatalf("resumed run produced no report:\n%s", out)
	}
	if _, tmps := snapshotFiles(t, dir); len(tmps) != 1 {
		t.Fatalf("torn temp file count changed to %d; resume must leave it alone", len(tmps))
	}
}

// TestCrashResumeFingerprintIdentical is the acceptance-criteria check:
// for three fingerprinted model families — full-batch GCN, sampled
// GraphSAGE, and the SGC decoupled head — a run killed -9 mid-training and
// resumed from its durable snapshots must print a prediction fingerprint
// and accuracy report bitwise identical to a never-interrupted run, as
// verified by the cmd/gnnfingerprint harness.
func TestCrashResumeFingerprintIdentical(t *testing.T) {
	buildBinaries(t)
	for _, model := range []string{"gcn", "sage", "sgc"} {
		t.Run(model, func(t *testing.T) {
			base := []string{"-model", model, "-nodes", "250", "-epochs", "6", "-seed", "7"}
			want := runToCompletion(t, gnnfingBin, os.Environ(), base...)

			dir := t.TempDir()
			ckptArgs := append(base, "-checkpoint-dir", dir, "-checkpoint-every", "1")
			// Park the fifth batch step and kill -9 there: mid-epoch, with
			// several durable boundary snapshots already on disk.
			killAtMarker(t, gnnfingBin, faultEnv("train.batch=sleep:60000@5"), ckptArgs...)
			if bins, _ := snapshotFiles(t, filepath.Join(dir, model)); len(bins) == 0 {
				t.Fatal("kill left no durable snapshot to resume from")
			}

			got := runToCompletion(t, gnnfingBin, os.Environ(), append(ckptArgs, "-resume")...)
			if got != want {
				t.Fatalf("resumed fingerprint differs from uninterrupted run\nwant: %s got:  %s", want, got)
			}
		})
	}
}
