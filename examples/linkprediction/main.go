// Linkprediction: predict held-out edges with SUREL-style stored-walk
// features (§3.3.3). The walk store is the only component that touches the
// graph; per-pair features are assembled by joining two stored walk sets,
// and a small MLP ranks true pairs above sampled non-edges.
//
//	go run ./examples/linkprediction
package main

import (
	"fmt"
	"log"

	"scalegnn/internal/graph"
	"scalegnn/internal/linkpred"
	"scalegnn/internal/metrics"
	"scalegnn/internal/tensor"
)

func main() {
	// A community-structured graph: communities create the triadic closure
	// that makes missing links predictable.
	g, _, err := graph.SBM(graph.SBMConfig{
		Nodes: 3000, Blocks: 8, AvgDegree: 16, Homophily: 0.9,
	}, tensor.NewRand(42))
	if err != nil {
		log.Fatal(err)
	}
	// Hide 15% of edges for testing and 30% as training supervision; both
	// are invisible to the walk store (no direct-edge shortcut).
	task, err := linkpred.NewTask(g, 0.15, 0.3, tensor.NewRand(43))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d, observed edges %d, train pairs %d, test pairs %d\n",
		g.N, task.Observed.NumEdges()/2, len(task.TrainPairs), len(task.TestPairs))

	// Heuristic baseline.
	cn := metrics.AUC(linkpred.CommonNeighbors(task.Observed, task.TestPairs), task.TestLabels)
	fmt.Printf("common neighbors:  test AUC %.4f\n", cn)

	// SUREL-style walk-join model.
	cfg := linkpred.DefaultConfig()
	model, err := linkpred.NewWalkFeatureModel(task, cfg)
	if err != nil {
		log.Fatal(err)
	}
	trainAUC, err := model.Fit(task, cfg)
	if err != nil {
		log.Fatal(err)
	}
	testAUC, err := model.Evaluate(task, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("walk-join + MLP:   test AUC %.4f (train %.4f)\n", testAUC, trainAUC)
	fmt.Println("\nevery query reuses the endpoints' stored walk sets; the graph is")
	fmt.Println("never re-traversed per pair — the SUREL storage/compute trade.")
}
