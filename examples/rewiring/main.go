// Rewiring: make a heterophilous graph fit a low-pass GNN (DHGR, §3.2.2).
// Similar 2-hop pairs get new edges, dissimilar existing edges are pruned;
// edge homophily rises and the same SGC model recovers accuracy.
//
//	go run ./examples/rewiring
package main

import (
	"fmt"
	"log"

	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
	"scalegnn/internal/rewire"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 3000, Classes: 4, AvgDegree: 10, Homophily: 0.1, // heterophilous
		FeatureDim: 24, NoiseStd: 0.8, TrainFrac: 0.5, ValFrac: 0.2, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 60

	trainSGC := func(d *dataset.Dataset) float64 {
		m, err := models.NewSGC(2)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := m.Fit(d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep.TestAcc
	}

	h0 := dataset.EdgeHomophily(ds.G, ds.Labels)
	fmt.Printf("original graph:  %6d edges, homophily %.3f, SGC acc %.4f\n",
		ds.G.NumEdges()/2, h0, trainSGC(ds))

	sim := rewire.NewCosineSimilarity(ds.G, ds.X)
	res, err := rewire.Rewire(ds.G, sim, rewire.Config{AddK: 3, PruneBelow: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	ds2 := *ds
	ds2.G = res.G
	_, h1 := rewire.HomophilyGain(ds.G, res.G, ds.Labels)
	fmt.Printf("rewired graph:   %6d edges, homophily %.3f, SGC acc %.4f\n",
		res.G.NumEdges()/2, h1, trainSGC(&ds2))
	fmt.Printf("(added %d similar edges, pruned %d dissimilar ones)\n", res.Added, res.Pruned)
	fmt.Println("\nthe GNN itself is unchanged — the data-management step made the")
	fmt.Println("graph fit the model, the central move of tutorial §3.3.")
}
