// Heterophily: sweep the graph's homophily level and watch the pure
// low-pass model (SGC) collapse while the multi-filter model (LD2-style,
// §3.2.1) holds — the motivating scenario for spectral embeddings in
// scalable GNNs.
//
//	go run ./examples/heterophily
package main

import (
	"fmt"
	"log"

	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
)

func main() {
	fmt.Println("homophily  SGC(low-pass)  LD2(multi-filter)")
	for _, h := range []float64{0.05, 0.25, 0.50, 0.75, 0.95} {
		ds, err := dataset.Generate(dataset.Config{
			Nodes: 3000, Classes: 3, AvgDegree: 16, Homophily: h,
			FeatureDim: 24, NoiseStd: 1.5, // noisy features force reliance on structure
			TrainFrac: 0.5, ValFrac: 0.2, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := models.DefaultTrainConfig()
		cfg.Epochs = 80

		sgc, err := models.NewSGC(2)
		if err != nil {
			log.Fatal(err)
		}
		sgcRep, err := sgc.Fit(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}

		ld2, err := models.NewLD2(2)
		if err != nil {
			log.Fatal(err)
		}
		ld2Rep, err := ld2.Fit(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}

		marker := ""
		if ld2Rep.TestAcc > sgcRep.TestAcc+0.05 {
			marker = "  <- multi-filter wins"
		}
		fmt.Printf("   %.2f       %.4f          %.4f%s\n", h, sgcRep.TestAcc, ld2Rep.TestAcc, marker)
	}
	fmt.Println("\nLD2's high-pass channel carries the heterophilous signal that")
	fmt.Println("low-pass smoothing destroys; both models remain mini-batch trainable.")
}
