// Condense: shrink the training graph two ways (§3.3.4) — multilevel
// coarsening at 2-8x, and GDEM-style spectral condensation — train a GCN
// on the small graph, and lift predictions back, with honest evaluation on
// the original graph via the core.Pipeline API.
//
//	go run ./examples/condense
package main

import (
	"fmt"
	"log"

	"scalegnn/internal/coarsen"
	"scalegnn/internal/core"
	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
	"scalegnn/internal/tensor"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 10000, Classes: 5, AvgDegree: 12, Homophily: 0.85,
		FeatureDim: 32, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 60

	// Baseline: GCN on the full graph.
	full, err := models.NewGCN(2)
	if err != nil {
		log.Fatal(err)
	}
	fullRep, err := full.Fit(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full graph:  n=%d  acc=%.4f  train=%v\n",
		ds.G.N, fullRep.TestAcc, fullRep.TrainTime)

	// Pipeline: coarsen (spectral-aware) -> GCN -> lift -> evaluate on the
	// ORIGINAL graph's test split.
	for _, ratio := range []float64{2, 4, 8} {
		m, err := models.NewGCN(2)
		if err != nil {
			log.Fatal(err)
		}
		p := &core.Pipeline{
			Transforms: []core.Transform{
				&core.CoarsenTransform{Ratio: ratio, Strategy: coarsen.NormalizedHeavyEdge},
			},
			Model: m,
		}
		rep, err := p.Run(ds, cfg, tensor.NewRand(uint64(ratio)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coarsen %2.0fx: n=%d  acc=%.4f  train=%v  (%.1fx faster)\n",
			ratio, rep.NodesAfter, rep.OrigTestAcc,
			rep.Fit.TrainTime,
			float64(fullRep.TrainTime)/float64(rep.Fit.TrainTime))
	}
	// Spectral condensation (GDEM-style): cluster in the bottom-k
	// eigenbasis instead of contracting matched pairs.
	m, err := models.NewGCN(2)
	if err != nil {
		log.Fatal(err)
	}
	p := &core.Pipeline{
		Transforms: []core.Transform{&core.CondenseTransform{Ratio: 4}},
		Model:      m,
	}
	rep, err := p.Run(ds, cfg, tensor.NewRand(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("condense 4x: n=%d  acc=%.4f  train=%v  (spectral, GDEM-style)\n",
		rep.NodesAfter, rep.OrigTestAcc, rep.Fit.TrainTime)

	fmt.Println("\ncoarse supervision uses train labels only; test accuracy is measured")
	fmt.Println("on the original nodes through the prediction lift. On modular graphs")
	fmt.Println("the eigenbasis-matched condensation preserves nearly full accuracy.")
}
