// Streaming: keep walk-based subgraph indexes fresh on a dynamic graph
// (GENTI, §3.3.3/§3.4.2). Edges arrive and depart; only the walks passing
// through changed endpoints are resampled, so maintenance cost stays tiny
// compared with rebuilding the index per event.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"scalegnn/internal/dynamic"
	"scalegnn/internal/graph"
	"scalegnn/internal/subgraph"
	"scalegnn/internal/tensor"
)

func main() {
	rng := tensor.NewRand(42)
	static := graph.BarabasiAlbert(50000, 5, rng)
	g, err := dynamic.FromCSR(static)
	if err != nil {
		log.Fatal(err)
	}
	seeds := make([]int, 200)
	for i := range seeds {
		seeds[i] = (i * 211) % g.N()
	}
	m, err := dynamic.NewWalkMaintainer(g, seeds, 50, 4, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d; tracking %d seeds x 50 walks\n",
		g.N(), g.NumEdges(), len(seeds))

	const events = 1000
	start := time.Now()
	resampled := 0
	for e := 0; e < events; e++ {
		u, v := rng.IntN(g.N()), rng.IntN(g.N())
		if g.AddEdge(u, v) {
			resampled += m.OnEdgeEvent(u, v)
		}
	}
	incremental := time.Since(start)
	fmt.Printf("\n%d edge events: %v total (%v/event), %.1f walks resampled/event\n",
		events, incremental.Round(time.Millisecond),
		(incremental / events).Round(time.Microsecond),
		float64(resampled)/events)

	// What a naive system would pay: rebuild all walk sets per event.
	snap := g.Snapshot()
	ws, err := subgraph.NewWalkStore(snap, subgraph.WalkStoreConfig{Walks: 50, Length: 4})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := ws.Preprocess(seeds, rng); err != nil {
		log.Fatal(err)
	}
	rebuild := time.Since(start)
	fmt.Printf("full index rebuild: %v — a per-event rebuild policy would be %.0fx slower\n",
		rebuild.Round(time.Millisecond),
		float64(rebuild)*events/float64(incremental))
	fmt.Printf("resample fraction per event: %.4f of all walks\n", m.ResampleFraction())
}
