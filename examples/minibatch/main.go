// Minibatch: demonstrate neighborhood explosion (§3.1.3) on a large
// power-law graph and how neighbor sampling caps it, then train GraphSAGE
// with sampled mini-batches and compare against full-batch GCN memory.
//
//	go run ./examples/minibatch
package main

import (
	"fmt"
	"log"

	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
	"scalegnn/internal/sampling"
	"scalegnn/internal/tensor"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 20000, Classes: 5, AvgDegree: 12, Homophily: 0.8,
		FeatureDim: 32, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: the explosion. How many nodes does a 256-node batch touch?
	batch := make([]int32, 256)
	for i := range batch {
		batch[i] = int32(i * (ds.G.N / len(batch)))
	}
	rng := tensor.NewRand(3)
	sampler, err := sampling.NewNeighborSampler(ds.G, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layers  full receptive field  sampled (fanout 5)")
	for l := 1; l <= 4; l++ {
		full := sampling.ReceptiveField(ds.G, batch, l)
		samp := sampling.SampledFieldSize(sampler, batch, l, rng)
		fmt.Printf("  %d        %6d (%4.1f%%)         %6d\n",
			l, full, 100*float64(full)/float64(ds.G.N), samp)
	}

	// Part 2: sampled training vs full-batch training.
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 40
	cfg.BatchSize = 512

	sage, err := models.NewGraphSAGE(2, 5)
	if err != nil {
		log.Fatal(err)
	}
	sageRep, err := sage.Fit(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	gcn, err := models.NewGCN(2)
	if err != nil {
		log.Fatal(err)
	}
	gcnRep, err := gcn.Fit(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s acc=%.4f  peak resident floats=%.1fM\n",
		gcnRep.Model, gcnRep.TestAcc, float64(gcnRep.PeakFloats)/1e6)
	fmt.Printf("%-14s acc=%.4f  peak resident floats=%.1fM  (%.0fx smaller)\n",
		sageRep.Model, sageRep.TestAcc, float64(sageRep.PeakFloats)/1e6,
		float64(gcnRep.PeakFloats)/float64(sageRep.PeakFloats))
	fmt.Println("\nsampling bounds the computation graph per batch, so memory no longer")
	fmt.Println("scales with the graph — the GPU-memory fix of §3.1.2.")
}
