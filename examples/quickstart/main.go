// Quickstart: generate a synthetic node-classification task, train the
// decoupled SGC model, and evaluate — the minimal end-to-end path through
// the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
)

func main() {
	// 1. A graph learning task: stochastic block model graph with
	//    class-conditional features, 50/20/30 train/val/test split.
	ds, err := dataset.Generate(dataset.Config{
		Nodes:      5000,
		Classes:    5,
		AvgDegree:  10,
		Homophily:  0.8, // homophilous: neighbors tend to share labels
		FeatureDim: 32,
		NoiseStd:   1.2,
		TrainFrac:  0.5,
		ValFrac:    0.2,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task: %d nodes, %d arcs, %d classes, measured homophily %.2f\n",
		ds.G.N, ds.G.NumEdges(), ds.NumClasses, dataset.EdgeHomophily(ds.G, ds.Labels))

	// 2. A scalable model: SGC precomputes Â²X once, then trains a linear
	//    head with mini-batches — no graph access during training.
	model, err := models.NewSGC(2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 100

	// 3. Train and report.
	rep, err := model.Fit(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Printf("graph precompute: %v, then %d epochs at %v/epoch\n",
		rep.Precompute, rep.Epochs, rep.EpochTime)

	// 4. Predictions for downstream use.
	pred, err := model.Predict(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first 10 predictions: %v\n", pred[:10])
}
