// PPRQuery: compare the three Personalized PageRank estimators (§3.1.2's
// decoupled-propagation substrate) on a large power-law graph, then show a
// top-k proximity query — the building block of APPNP/SCARA-style models.
//
//	go run ./examples/pprquery
package main

import (
	"fmt"
	"log"
	"time"

	"scalegnn/internal/graph"
	"scalegnn/internal/ppr"
	"scalegnn/internal/tensor"
)

func main() {
	rng := tensor.NewRand(42)
	g := graph.BarabasiAlbert(200000, 6, rng)
	fmt.Printf("graph: n=%d arcs=%d\n\n", g.N, g.NumEdges())
	src := 12345

	// Exact (tightly converged power iteration) — O(m) per round.
	start := time.Now()
	exact, iters, converged, err := ppr.PowerIteration(g, src, ppr.Config{Alpha: 0.15, MaxIter: 200, Tol: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	if !converged {
		log.Printf("warning: power iteration truncated at %d rounds", iters)
	}
	fmt.Printf("power iteration: %v (%d rounds over all %d arcs)\n",
		time.Since(start).Round(time.Millisecond), iters, g.NumEdges())

	// Forward push — local, touches only high-residual nodes.
	start = time.Now()
	res, err := ppr.ForwardPush(g, src, ppr.Config{Alpha: 0.15, Epsilon: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	nonzero := 0
	var worst float64
	for v, p := range res.Estimate {
		if p > 0 {
			nonzero++
		}
		if d := exact[v] - p; d > worst {
			worst = d
		}
	}
	fmt.Printf("forward push:    %v (%d pushes, %d/%d nodes touched, max err %.2g)\n",
		time.Since(start).Round(time.Millisecond), res.Pushes, nonzero, g.N, worst)

	// Monte Carlo — unbiased, O(1/√w) error.
	start = time.Now()
	mc, err := ppr.MonteCarlo(g, src, 20000, 0.15, rng)
	if err != nil {
		log.Fatal(err)
	}
	worst = 0
	for v := range mc {
		if d := exact[v] - mc[v]; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	fmt.Printf("monte carlo:     %v (20000 walks, max err %.2g)\n\n",
		time.Since(start).Round(time.Millisecond), worst)

	// The query a PPR-based GNN issues: which nodes matter most to src?
	top := ppr.TopK(res.Estimate, 8)
	fmt.Printf("top-8 PPR neighbors of node %d:\n", src)
	for _, e := range top {
		fmt.Printf("  node %-8d score %.5f  degree %d\n", e.Node, e.Score, g.Degree(e.Node))
	}
	fmt.Println("\nforward push gives APPNP/SCARA-class models their scalability: the")
	fmt.Println("work is proportional to pushed mass, independent of graph size.")
}
