// Package scalegnn's root benchmark suite: one testing.B benchmark per
// experiment table in DESIGN.md (F1, E1–E20), each exercising that
// experiment's computational kernel at a fixed mid scale. The full
// parameter sweeps and comparison tables are produced by cmd/gnnbench;
// these benchmarks give stable per-kernel numbers for regression tracking.
package scalegnn

import (
	"testing"

	"scalegnn/internal/coarsen"
	"scalegnn/internal/core"
	"scalegnn/internal/dataset"
	"scalegnn/internal/dynamic"
	"scalegnn/internal/graph"
	"scalegnn/internal/hublabel"
	"scalegnn/internal/implicit"
	"scalegnn/internal/models"
	"scalegnn/internal/partition"
	"scalegnn/internal/ppr"
	"scalegnn/internal/rewire"
	"scalegnn/internal/sampling"
	"scalegnn/internal/simrank"
	"scalegnn/internal/sparsify"
	"scalegnn/internal/spectral"
	"scalegnn/internal/subgraph"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// benchGraph returns the shared BA benchmark graph (memoized).
func benchGraph() *graph.CSR {
	benchOnce.g = graph.BarabasiAlbert(20000, 8, tensor.NewRand(1))
	return benchOnce.g
}

var benchOnce struct{ g *graph.CSR }

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 5000, Classes: 5, AvgDegree: 10, Homophily: 0.8,
		FeatureDim: 32, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func quickTrain() models.TrainConfig {
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 10
	cfg.Patience = 0
	return cfg
}

// BenchmarkF1RegistryVerify covers table F1: taxonomy self-check.
func BenchmarkF1RegistryVerify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := core.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1ReceptiveField covers E1: 3-hop exact receptive field.
func BenchmarkE1ReceptiveField(b *testing.B) {
	g := benchGraph()
	batch := make([]int32, 256)
	for i := range batch {
		batch[i] = int32(i * 70)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampling.ReceptiveField(g, batch, 3)
	}
}

// BenchmarkE2GCNEpoch and BenchmarkE2SGCEpoch cover E2: per-epoch cost of
// full-batch iterative vs decoupled training.
func BenchmarkE2GCNEpoch(b *testing.B) {
	ds := benchDataset(b)
	cfg := quickTrain()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := models.NewGCN(2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Fit(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2SGCEpoch(b *testing.B) {
	ds := benchDataset(b)
	cfg := quickTrain()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := models.NewSGC(2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Fit(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Fennel covers E3: streaming partitioning throughput.
func BenchmarkE3Fennel(b *testing.B) {
	g := benchGraph()
	rng := tensor.NewRand(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Fennel(g, 8, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4LaborBlock covers E4: dependent-sampling block construction.
func BenchmarkE4LaborBlock(b *testing.B) {
	g := benchGraph()
	s, err := sampling.NewLaborSampler(g, 5)
	if err != nil {
		b.Fatal(err)
	}
	dsts := make([]int32, 512)
	for i := range dsts {
		dsts[i] = int32(i * 39)
	}
	rng := tensor.NewRand(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleBlock(dsts, rng)
	}
}

// BenchmarkE5MultiFilter covers E5: the three-channel spectral embedding.
func BenchmarkE5MultiFilter(b *testing.B) {
	g := benchGraph()
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	x := tensor.RandNormal(g.N, 32, 1, tensor.NewRand(4))
	channels := []spectral.ChannelSpec{
		{Kind: spectral.ChannelIdentity},
		{Kind: spectral.ChannelAdjPower, Hops: 2},
		{Kind: spectral.ChannelLapPower, Hops: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.MultiFilter(op, x, channels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6SimrankTopK covers E6: Monte Carlo top-k similarity queries.
func BenchmarkE6SimrankTopK(b *testing.B) {
	g := benchGraph()
	rng := tensor.NewRand(5)
	ix, err := simrank.BuildIndex(g, simrank.DefaultIndexConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.TopK(i%g.N, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7HubLabelQuery covers E7: SPD queries over the hub-label index.
func BenchmarkE7HubLabelQuery(b *testing.B) {
	g := benchGraph()
	ix, err := hublabel.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(i%g.N, (i*7919+13)%g.N); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8PicardSolve covers E8: the implicit-GNN equilibrium solve.
func BenchmarkE8PicardSolve(b *testing.B) {
	g := benchGraph()
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	rng := tensor.NewRand(6)
	bm := tensor.RandNormal(g.N, 16, 1, rng)
	w := tensor.RandNormal(16, 16, 0.1, rng)
	wt := w.T()
	w.Add(wt)
	w.Scale(0.5)
	implicit.ProjectSpectralNorm(w, 0.9)
	s, err := implicit.NewSolver(op, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(bm, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9EffectiveResistance covers E9: spectral sparsification.
func BenchmarkE9EffectiveResistance(b *testing.B) {
	g := benchGraph()
	rng := tensor.NewRand(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparsify.EffectiveResistance(g, 4*g.N, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10WalkJoin covers E10: pair-query assembly from stored walks.
func BenchmarkE10WalkJoin(b *testing.B) {
	g := benchGraph()
	rng := tensor.NewRand(8)
	ws, err := subgraph.NewWalkStore(g, subgraph.WalkStoreConfig{Walks: 50, Length: 4})
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]int, 256)
	for i := range seeds {
		seeds[i] = i * 78
	}
	if err := ws.Preprocess(seeds, rng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.Join(seeds[i%256], seeds[(i+13)%256]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Coarsen covers E11: multilevel coarsening to 1/8 size.
func BenchmarkE11Coarsen(b *testing.B) {
	g := benchGraph()
	rng := tensor.NewRand(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coarsen.Coarsen(g, g.N/8, coarsen.NormalizedHeavyEdge, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12SGCFit covers E12: one full decoupled model fit (10 epochs).
func BenchmarkE12SGCFit(b *testing.B) {
	ds := benchDataset(b)
	cfg := quickTrain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := models.NewSGC(2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Fit(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13ForwardPush covers E13: the local PPR estimator.
func BenchmarkE13ForwardPush(b *testing.B) {
	g := benchGraph()
	cfg := ppr.Config{Alpha: 0.15, Epsilon: 1e-5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ppr.ForwardPush(g, i%g.N, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14CosineRewire covers E14: similarity rewiring throughput.
func BenchmarkE14CosineRewire(b *testing.B) {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 3000, Classes: 4, AvgDegree: 10, Homophily: 0.1,
		FeatureDim: 24, NoiseStd: 0.8, TrainFrac: 0.5, ValFrac: 0.2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sim := rewire.NewCosineSimilarity(ds.G, ds.X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewire.Rewire(ds.G, sim, rewire.Config{AddK: 3, PruneBelow: 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15EdgeEvent covers E15: incremental walk maintenance per event.
func BenchmarkE15EdgeEvent(b *testing.B) {
	rng := tensor.NewRand(1)
	d, err := dynamic.FromCSR(benchGraph())
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]int, 100)
	for i := range seeds {
		seeds[i] = i * 199
	}
	m, err := dynamic.NewWalkMaintainer(d, seeds, 50, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.IntN(d.N()), rng.IntN(d.N())
		if d.AddEdge(u, v) {
			m.OnEdgeEvent(u, v)
		}
	}
}

// BenchmarkE16NAIPredict covers E16: node-adaptive inference over 4 hops.
func BenchmarkE16NAIPredict(b *testing.B) {
	ds := benchDataset(b)
	m, err := models.NewSGC(4)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Fit(ds, quickTrain()); err != nil {
		b.Fatal(err)
	}
	hops := models.HopEmbeddings(ds, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := models.NAIPredict(m, hops, 0.9, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP1ApplyInto covers the propagation hot path: one round of
// message passing into a preallocated destination buffer. With pooled
// workspaces this should run at zero allocs/op.
func BenchmarkP1ApplyInto(b *testing.B) {
	g := benchGraph()
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	x := tensor.RandNormal(g.N, 64, 1, tensor.NewRand(10))
	dst := tensor.New(g.N, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.ApplyInto(x, dst)
	}
}

// BenchmarkP1MatMul covers the dense-transform hot path (allocating form).
func BenchmarkP1MatMul(b *testing.B) {
	rng := tensor.NewRand(11)
	x := tensor.RandNormal(5000, 64, 1, rng)
	w := tensor.RandNormal(64, 64, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, w)
	}
}

// BenchmarkP1MatMulInto covers the in-place dense-transform kernel.
func BenchmarkP1MatMulInto(b *testing.B) {
	rng := tensor.NewRand(11)
	x := tensor.RandNormal(5000, 64, 1, rng)
	w := tensor.RandNormal(64, 64, 1, rng)
	dst := tensor.New(5000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(x, w, dst)
	}
}

// BenchmarkP1GCNTrainEpoch covers one full GCN training epoch (forward,
// masked loss, backward, Adam step, validation forward): a single Fit runs
// exactly b.N epochs with early stopping disabled, so ns/op and allocs/op
// are the amortized per-epoch cost — the allocs/op regression target for
// the pooled-workspace hot path. One-time model construction (operator
// normalization, weight init) is inside the timed region but amortizes to
// zero as b.N grows.
func BenchmarkP1GCNTrainEpoch(b *testing.B) {
	ds := benchDataset(b)
	cfg := quickTrain()
	cfg.Epochs = b.N
	cfg.Patience = 0 // run exactly b.N epochs
	m, err := models.NewGCN(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := m.Fit(ds, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkP2LoopOverhead measures the training engine's per-batch framing
// cost in isolation: train.Run driving index mini-batches through a no-op
// step. The difference against a model benchmark is all model; anything
// that grows here is pure engine overhead on the hot path.
func BenchmarkP2LoopOverhead(b *testing.B) {
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = i
	}
	src := train.NewIndexBatches(idx, 512)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := train.Run(train.Config{Epochs: b.N, RNG: tensor.NewRand(1)}, train.Spec{
		Source: src,
		Step: func(batch train.Batch) error {
			_ = batch.Indices
			return nil
		},
		Validate: func() (float64, error) { return 0, nil },
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE17TransformerFit covers E17: SPD-biased attention training
// (small task, few epochs).
func BenchmarkE17TransformerFit(b *testing.B) {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 600, Classes: 3, AvgDegree: 10, Homophily: 0.85,
		FeatureDim: 16, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := quickTrain()
	cfg.Epochs = 5
	cfg.Hidden = 32
	cfg.BatchSize = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := models.NewGraphTransformer(6)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Fit(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
