#!/usr/bin/env bash
# Repo-wide correctness gate: build, vet, gnnlint, full tests, and a
# race-detector pass over the packages with concurrent kernels (the shared
# partitioner's consumers: dense tensor ops, sparse propagation, samplers,
# the nn/models training stack, and the partitioner itself).
#
# The race pass runs in -short mode so it stays fast enough for CI and
# pre-commit use; the full (non-race) suite runs unabridged.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gnnlint ./..."
go run ./cmd/gnnlint ./...

echo "== go test ./..."
go test ./...

RACE_PKGS=(
  ./internal/tensor
  ./internal/graph
  ./internal/sampling
  ./internal/nn
  ./internal/models
  ./internal/train
  ./internal/par
)
echo "== go test -race -short ${RACE_PKGS[*]}"
go test -race -short "${RACE_PKGS[@]}"

echo "All checks passed."
