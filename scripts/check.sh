#!/usr/bin/env bash
# Repo-wide correctness gate: build, vet, gnnlint, full tests, and a
# race-detector pass over the packages with concurrent kernels (the shared
# partitioner's consumers: dense tensor ops, sparse propagation, samplers,
# the nn/models training stack, and the partitioner itself).
#
# The race pass runs in -short mode so it stays fast enough for CI and
# pre-commit use; the full (non-race) suite runs unabridged.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

# Both sides of the failpoint build tag must always compile: the default
# build carries the armed registry (so crash tests can fire it), and the
# nofault build proves the production-oriented variant hasn't rotted.
echo "== go build -tags nofault ./..."
go build -tags nofault ./...

echo "== go vet ./..."
go vet ./...

echo "== gnnlint ./..."
go run ./cmd/gnnlint ./...

echo "== go test ./..."
go test ./...

RACE_PKGS=(
  ./internal/tensor
  ./internal/graph
  ./internal/sampling
  ./internal/nn
  ./internal/models
  ./internal/train
  ./internal/par
  ./internal/obs
  ./internal/ckpt
  ./internal/fault
  ./internal/distsim
  ./internal/distnet
  ./internal/serve
  ./internal/bench
)
# Race-list sync gate: any internal/ package that spawns goroutines
# directly carries a //lint:ignore naked-go suppression per allowed site;
# every such package must be in RACE_PKGS (along with internal/par, the
# partitioner itself) or the race pass silently stops covering new
# concurrency as it lands.
echo "== race-list sync (naked-go suppressions vs RACE_PKGS)"
GOROUTINE_PKGS=$(grep -rlE '^[[:space:]]*//[[:space:]]*lint:ignore naked-go ' internal --include='*.go' \
  | grep -v '/testdata/' | xargs -rn1 dirname | sort -u)
for pkg in $GOROUTINE_PKGS internal/par; do
  found=0
  for rp in "${RACE_PKGS[@]}"; do
    [ "${rp#./}" = "$pkg" ] && found=1
  done
  if [ "$found" -eq 0 ]; then
    echo "race-list sync failed: $pkg spawns goroutines (naked-go suppression)"
    echo "but is missing from RACE_PKGS in scripts/check.sh"
    exit 1
  fi
done

echo "== go test -race -short ${RACE_PKGS[*]}"
go test -race -short "${RACE_PKGS[@]}"

# Crash-recovery gate: SIGKILL a real training subprocess in the middle of
# a checkpoint write and require a clean, bitwise-identical resume (torn
# temps ignored, corrupt snapshots rejected, previous snapshot used). Runs
# under -race per the fault-tolerance acceptance contract. TestCrashDist*
# additionally SIGKILLs one shard of a two-process cluster mid-epoch and
# requires the -resume rejoin to reach the same final fingerprint.
echo "== crash recovery (go test -race -run 'TestCrash' ./cmd/gnntrain)"
go test -race -count=1 -run 'TestCrash' ./cmd/gnntrain

# Distributed smoke gate: two real gnntrain processes over unix sockets
# must produce prediction fingerprints bitwise identical to the
# single-process run, with zero stale substitutions (strict sync mode).
echo "== distributed smoke (2-shard gnntrain vs single-process fingerprint)"
DIST_TMP=$(mktemp -d)
trap 'rm -rf "$DIST_TMP"' EXIT
go build -o "$DIST_TMP/gnntrain" ./cmd/gnntrain
DIST_ARGS=(-model gcn -nodes 300 -epochs 4 -patience 0 -seed 9 -fingerprint)
"$DIST_TMP/gnntrain" "${DIST_ARGS[@]}" 2>/dev/null > "$DIST_TMP/single.out"
PEERS="unix:$DIST_TMP/s0.sock,unix:$DIST_TMP/s1.sock"
"$DIST_TMP/gnntrain" "${DIST_ARGS[@]}" -shard 0/2 -peers "$PEERS" \
  2>/dev/null > "$DIST_TMP/shard0.out" &
DIST_PID=$!
"$DIST_TMP/gnntrain" "${DIST_ARGS[@]}" -shard 1/2 -peers "$PEERS" \
  2>/dev/null > "$DIST_TMP/shard1.out"
wait "$DIST_PID"
FP_SINGLE=$(grep -o 'fingerprint=[0-9a-f]*' "$DIST_TMP/single.out")
FP_S0=$(grep -o 'fingerprint=[0-9a-f]*' "$DIST_TMP/shard0.out")
FP_S1=$(grep -o 'fingerprint=[0-9a-f]*' "$DIST_TMP/shard1.out")
[ -n "$FP_SINGLE" ] && [ "$FP_S0" = "$FP_SINGLE" ] && [ "$FP_S1" = "$FP_SINGLE" ] || {
  echo "distributed smoke failed: fingerprints diverge"
  echo "  single: $FP_SINGLE  shard0: $FP_S0  shard1: $FP_S1"; exit 1; }
grep -q 'stale_hits=0' "$DIST_TMP/shard0.out" && grep -q 'stale_hits=0' "$DIST_TMP/shard1.out" || {
  echo "distributed smoke failed: sync mode reported stale substitutions"; exit 1; }
echo "   fingerprints match: $FP_SINGLE (2 shards, sync, 0 stale)"

# Serving smoke gate: gnnserve -selftest trains, snapshots, restores,
# verifies the served path answers byte-equal to offline Predict, hot-swaps
# once, scrapes and validates /metrics, round-trips an inbound traceparent,
# verifies request-span/batch-span links, degrades /healthz under injected
# latency, and load-tests over real HTTP. The report must land non-empty —
# a served-prediction mismatch or any request error fails the run — and the
# trace timeline and Prometheus scrape must carry the request-scoped fields.
echo "== serve smoke (gnnserve -selftest)"
SERVE_TMP=$(mktemp -d)
trap 'rm -rf "$DIST_TMP" "$SERVE_TMP"' EXIT
go run ./cmd/gnnserve -selftest -nodes 2000 -epochs 5 -duration 500ms \
  -bench-out "$SERVE_TMP/BENCH_serve.json" \
  -trace-out "$SERVE_TMP/trace.jsonl" \
  -metrics-out "$SERVE_TMP/metrics.prom"
[ -s "$SERVE_TMP/BENCH_serve.json" ] || {
  echo "serve smoke failed: BENCH_serve.json missing or empty"; exit 1; }
grep -q '"trace_id"' "$SERVE_TMP/trace.jsonl" || {
  echo "serve smoke failed: trace.jsonl has no trace_id fields"; exit 1; }
grep -q '"links"' "$SERVE_TMP/trace.jsonl" || {
  echo "serve smoke failed: trace.jsonl has no span links"; exit 1; }
grep -q 'serve.batch_forward' "$SERVE_TMP/trace.jsonl" || {
  echo "serve smoke failed: trace.jsonl has no batch-forward spans"; exit 1; }
grep -q 'serve_request_seconds_bucket{le="+Inf"}' "$SERVE_TMP/metrics.prom" || {
  echo "serve smoke failed: metrics.prom missing request latency histogram"; exit 1; }

# Kernel perf-regression gate: run the kernel microbench suite at quick
# scale and compare allocs/op against the checked-in baseline. The *Into
# kernels are pool-backed — a pooling regression (per-row buffer, FromSlice
# in the hot loop) shows up as tens-to-thousands of allocs/op and fails
# here; ns/op is machine-dependent and intentionally not gated.
echo "== kernel perf gate (gnnbench -kernels-out + gnnperfgate)"
KERNELS_TMP=$(mktemp -d)
trap 'rm -rf "$DIST_TMP" "$SERVE_TMP" "$KERNELS_TMP"' EXIT
go run ./cmd/gnnbench -quick -kernels-out "$KERNELS_TMP/kernels.json" > /dev/null
go run ./cmd/gnnperfgate -report "$KERNELS_TMP/kernels.json" \
  -baseline scripts/kernel_allocs_baseline.json

# Trace-overhead guard: the disabled tracer's fast path must stay free of
# allocations (DESIGN.md "Observability", overhead contract). Any allocation
# on a disabled span or unbound counter ref means every instrumentation
# point in the hot path pays it — fail loudly.
echo "== trace-overhead guard (BenchmarkSpanDisabled*, BenchmarkRequestSpanDisabled, BenchmarkCounterRefDisabled)"
BENCH_OUT=$(go test ./internal/obs -run '^$' \
  -bench 'BenchmarkSpanDisabled|BenchmarkCounterRefDisabled|BenchmarkRequestSpanDisabled' -benchmem -benchtime 100000x)
echo "$BENCH_OUT"
echo "$BENCH_OUT" | awk '
  /^Benchmark/ {
    allocs = $(NF-1)
    if (allocs + 0 != 0) { bad = 1; print "FAIL: " $1 " allocates (" allocs " allocs/op)" }
  }
  END { exit bad }
' || { echo "trace-overhead guard failed: disabled observability must be allocation-free"; exit 1; }

echo "All checks passed."
