#!/usr/bin/env bash
# Repo-wide correctness gate: build, vet, full tests, and a race-detector
# pass over the packages with concurrent kernels (the shared partitioner's
# consumers: dense tensor ops, sparse propagation, samplers).
#
# The race pass runs in -short mode so it stays fast enough for CI and
# pre-commit use; the full (non-race) suite runs unabridged.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race -short ./internal/tensor ./internal/graph ./internal/sampling"
go test -race -short ./internal/tensor ./internal/graph ./internal/sampling

echo "All checks passed."
