package dynamic

import (
	"testing"
	"testing/quick"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func TestGraphAddRemove(t *testing.T) {
	g := NewGraph(5)
	if !g.AddEdge(0, 1) || !g.AddEdge(1, 2) {
		t.Fatal("AddEdge failed")
	}
	if g.NumEdges() != 2 || g.Degree(1) != 2 {
		t.Fatalf("m=%d deg(1)=%d", g.NumEdges(), g.Degree(1))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should exist in both directions")
	}
	// Duplicates, self-loops, out of range all rejected.
	if g.AddEdge(0, 1) || g.AddEdge(2, 2) || g.AddEdge(0, 9) || g.AddEdge(-1, 0) {
		t.Error("invalid AddEdge accepted")
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge failed")
	}
	if g.HasEdge(0, 1) || g.NumEdges() != 1 {
		t.Error("edge not removed")
	}
	if g.RemoveEdge(0, 1) || g.RemoveEdge(0, 9) {
		t.Error("removing absent edge should fail")
	}
}

func TestNeighborsSortedInvariant(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRand(uint64(seed))
		g := NewGraph(30)
		for i := 0; i < 100; i++ {
			u, v := rng.IntN(30), rng.IntN(30)
			if rng.Float64() < 0.7 {
				g.AddEdge(u, v)
			} else {
				g.RemoveEdge(u, v)
			}
		}
		for u := 0; u < 30; u++ {
			ns := g.Neighbors(u)
			for i := 1; i < len(ns); i++ {
				if ns[i] <= ns[i-1] {
					return false
				}
			}
			// Symmetry.
			for _, v := range ns {
				if !g.HasEdge(int(v), u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := tensor.NewRand(3)
	static := graph.BarabasiAlbert(100, 3, rng)
	d, err := FromCSR(static)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumEdges()*2 != static.NumEdges() {
		t.Fatalf("edge count mismatch: %d vs %d arcs", d.NumEdges()*2, static.NumEdges())
	}
	snap := d.Snapshot()
	if snap.NumEdges() != static.NumEdges() {
		t.Error("snapshot changed edge count")
	}
	for u := 0; u < 100; u++ {
		a, b := static.Neighbors(u), snap.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("neighbor mismatch")
			}
		}
	}
}

func TestFromCSRRejectsDirected(t *testing.T) {
	b := graph.NewBuilder(3)
	b.Directed = true
	b.AddEdge(0, 1)
	if _, err := FromCSR(b.MustBuild()); err == nil {
		t.Error("directed graph should be rejected")
	}
}

func TestWalkMaintainerInitialWalks(t *testing.T) {
	rng := tensor.NewRand(5)
	static := graph.BarabasiAlbert(200, 3, rng)
	d, err := FromCSR(static)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWalkMaintainer(d, []int{0, 5, 9}, 20, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := m.Walks(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 20 {
		t.Fatalf("got %d walks", len(ws))
	}
	for _, path := range ws {
		if path[0] != 5 {
			t.Fatal("walk must start at seed")
		}
		if len(path) > 5 {
			t.Fatal("walk too long")
		}
		for i := 1; i < len(path); i++ {
			if !d.HasEdge(int(path[i-1]), int(path[i])) {
				t.Fatal("walk uses a non-edge")
			}
		}
	}
	if _, err := m.Walks(99); err == nil {
		t.Error("untracked seed should error")
	}
}

func TestWalkMaintainerLocality(t *testing.T) {
	rng := tensor.NewRand(7)
	static := graph.BarabasiAlbert(2000, 4, rng)
	d, err := FromCSR(static)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int{1, 100, 500, 900, 1500}
	m, err := NewWalkMaintainer(d, seeds, 30, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Random edge insertions far from most seeds: only a small fraction of
	// walks should need resampling.
	events := 50
	for i := 0; i < events; i++ {
		u, v := rng.IntN(d.N()), rng.IntN(d.N())
		if d.AddEdge(u, v) {
			m.OnEdgeEvent(u, v)
		} else {
			m.stats.Events++ // count skipped event for fraction math
		}
	}
	frac := m.ResampleFraction()
	if frac >= 0.5 {
		t.Errorf("resample fraction %v; incremental maintenance not local", frac)
	}
	// Walks must remain valid on the mutated graph.
	for _, s := range seeds {
		ws, err := m.Walks(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range ws {
			for i := 1; i < len(path); i++ {
				if !d.HasEdge(int(path[i-1]), int(path[i])) {
					t.Fatal("stale walk after events")
				}
			}
		}
	}
}

func TestWalkMaintainerRemovalInvalidation(t *testing.T) {
	// Build a path graph so walks from node 0 must traverse edge (0,1).
	d := NewGraph(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	rng := tensor.NewRand(9)
	m, err := NewWalkMaintainer(d, []int{0}, 10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the only edge out of the seed: every walk visits node 0, so
	// all 10 walks must be resampled, and new walks must be stuck at 0.
	d.RemoveEdge(0, 1)
	resampled := m.OnEdgeEvent(0, 1)
	if resampled != 10 {
		t.Errorf("resampled %d of 10 walks", resampled)
	}
	ws, _ := m.Walks(0)
	for _, path := range ws {
		if len(path) != 1 || path[0] != 0 {
			t.Fatalf("walk %v should be stuck at isolated seed", path)
		}
	}
	set, err := m.NodeSet(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 0 {
		t.Errorf("node set = %v", set)
	}
}

func TestWalkMaintainerValidation(t *testing.T) {
	d := NewGraph(3)
	rng := tensor.NewRand(1)
	if _, err := NewWalkMaintainer(d, []int{0}, 0, 3, rng); err == nil {
		t.Error("zero walks should error")
	}
	if _, err := NewWalkMaintainer(d, []int{7}, 5, 3, rng); err == nil {
		t.Error("out-of-range seed should error")
	}
}

func BenchmarkEdgeEventMaintenance(b *testing.B) {
	rng := tensor.NewRand(1)
	static := graph.BarabasiAlbert(20000, 5, rng)
	d, err := FromCSR(static)
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]int, 100)
	for i := range seeds {
		seeds[i] = i * 199
	}
	m, err := NewWalkMaintainer(d, seeds, 50, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.IntN(d.N()), rng.IntN(d.N())
		if d.AddEdge(u, v) {
			m.OnEdgeEvent(u, v)
		}
	}
}
