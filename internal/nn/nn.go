// Package nn is the neural-network substrate of scalegnn: layers with
// hand-written backward passes, losses, and optimizers. The scalable GNN
// designs surveyed by the tutorial all reduce the learnable part of the
// model to MLP-class transformations (the graph part is handled by
// dedicated data-management algorithms), so this package provides exactly
// that: Linear / ReLU / Dropout layers composed into Sequential networks,
// softmax cross-entropy, and SGD/Adam.
//
// Gradients are exact; every layer's backward pass is unit-tested against
// finite differences.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"scalegnn/internal/tensor"
)

// Param is a learnable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam allocates a parameter and its zero gradient.
func NewParam(name string, value *tensor.Matrix) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Rows, value.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumValues returns the number of scalar parameters.
func (p *Param) NumValues() int { return len(p.Value.Data) }

// Layer is a differentiable module. Forward consumes a batch (rows =
// samples) and must retain whatever it needs for Backward; Backward
// consumes ∂L/∂output and returns ∂L/∂input, accumulating parameter
// gradients along the way. Layers are stateful across a single
// forward/backward pair and must not be shared between concurrent batches.
//
// Buffer lifetime: layers return matrices drawn from the shared tensor
// workspace and recycle them on the layer's next pass, so a Forward or
// Backward result is valid only until that layer runs again. Training loops
// (forward → loss → backward → step, then the next pass) satisfy this
// naturally; clone any output that must outlive the next pass, and run
// Backward before any intervening Forward on the same network.
type Layer interface {
	Forward(x *tensor.Matrix, training bool) *tensor.Matrix
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	Params() []*Param
}

// Linear is a fully-connected layer y = xW + b.
//
// Forward/backward outputs live in pooled workspace buffers that are
// recycled on the next call (see tensor.Buf): a result is valid until the
// layer's next pass, which is exactly the lifetime training loops need.
// Clone anything that must survive longer.
type Linear struct {
	W, B  *Param
	InF   int
	OutF  int
	hasB  bool
	lastX *tensor.Matrix

	y, gx, wg tensor.Buf // pooled output / input-grad / weight-grad buffers
}

// NewLinear constructs a Linear layer with Glorot-uniform weights and zero
// bias. If bias is false the layer is purely linear.
func NewLinear(inF, outF int, bias bool, rng *rand.Rand) *Linear {
	l := &Linear{
		W:    NewParam(fmt.Sprintf("linear_%dx%d.W", inF, outF), tensor.GlorotUniform(inF, outF, rng)),
		InF:  inF,
		OutF: outF,
		hasB: bias,
	}
	if bias {
		l.B = NewParam(fmt.Sprintf("linear_%dx%d.b", inF, outF), tensor.New(1, outF))
	}
	return l
}

// Forward computes xW (+ b).
func (l *Linear) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	if x.Cols != l.InF {
		panic(fmt.Sprintf("nn: Linear input cols %d != inF %d", x.Cols, l.InF))
	}
	if training {
		l.lastX = x
	}
	y := l.y.Next(x.Rows, l.OutF)
	tensor.MatMulInto(x, l.W.Value, y)
	if l.hasB {
		y.AddRowVector(l.B.Value.Row(0))
	}
	return y
}

// Backward accumulates ∂L/∂W = xᵀ g and ∂L/∂b = Σ rows(g), returning
// ∂L/∂x = g Wᵀ.
func (l *Linear) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if l.lastX == nil {
		panic("nn: Linear.Backward before Forward(training=true)")
	}
	wg := l.wg.Next(l.InF, l.OutF)
	tensor.TMatMulInto(l.lastX, gradOut, wg)
	l.W.Grad.Add(wg)
	if l.hasB {
		brow := l.B.Grad.Row(0)
		for i := 0; i < gradOut.Rows; i++ {
			for j, v := range gradOut.Row(i) {
				brow[j] += v
			}
		}
	}
	gx := l.gx.Next(gradOut.Rows, l.InF)
	tensor.MatMulTInto(gradOut, l.W.Value, gx)
	return gx
}

// Params returns the layer's learnables.
func (l *Linear) Params() []*Param {
	if l.hasB {
		return []*Param{l.W, l.B}
	}
	return []*Param{l.W}
}

// ReLU is the rectified-linear activation. Outputs live in pooled buffers
// recycled on the next call, like Linear's.
type ReLU struct {
	mask []bool
	y, g tensor.Buf
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative entries.
func (r *ReLU) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	y := r.y.Next(x.Rows, x.Cols)
	copy(y.Data, x.Data)
	if training {
		if cap(r.mask) < len(y.Data) {
			r.mask = make([]bool, len(y.Data))
		}
		r.mask = r.mask[:len(y.Data)]
	}
	for i, v := range y.Data {
		pos := v > 0
		if !pos {
			y.Data[i] = 0
		}
		if training {
			r.mask[i] = pos
		}
	}
	return y
}

// Backward zeroes the gradient where the input was negative.
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g := r.g.Next(gradOut.Rows, gradOut.Cols)
	copy(g.Data, gradOut.Data)
	for i := range g.Data {
		if !r.mask[i] {
			g.Data[i] = 0
		}
	}
	return g
}

// Params returns nil; ReLU has no learnables.
func (r *ReLU) Params() []*Param { return nil }

// Dropout randomly zeroes entries during training with probability P,
// scaling survivors by 1/(1-P) (inverted dropout). At inference it is the
// identity.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	keep []bool
	y, g tensor.Buf
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout p=%v outside [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward applies inverted dropout when training.
func (d *Dropout) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	if !training || d.P == 0 {
		return x
	}
	y := d.y.Next(x.Rows, x.Cols)
	copy(y.Data, x.Data)
	if cap(d.keep) < len(y.Data) {
		d.keep = make([]bool, len(y.Data))
	}
	d.keep = d.keep[:len(y.Data)]
	scale := 1 / (1 - d.P)
	for i := range y.Data {
		if d.rng.Float64() < d.P {
			y.Data[i] = 0
			d.keep[i] = false
		} else {
			y.Data[i] *= scale
			d.keep[i] = true
		}
	}
	return y
}

// Backward routes gradient only through kept entries.
func (d *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.P == 0 {
		return gradOut
	}
	g := d.g.Next(gradOut.Rows, gradOut.Cols)
	copy(g.Data, gradOut.Data)
	scale := 1 / (1 - d.P)
	for i := range g.Data {
		if d.keep[i] {
			g.Data[i] *= scale
		} else {
			g.Data[i] = 0
		}
	}
	return g
}

// Params returns nil; Dropout has no learnables.
func (d *Dropout) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, training)
	}
	return x
}

// Backward runs all layers in reverse.
func (s *Sequential) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params concatenates all layer parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total scalar parameter count of the network.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.NumValues()
	}
	return n
}

// MLPConfig describes a multi-layer perceptron.
type MLPConfig struct {
	In      int
	Hidden  []int // hidden widths; empty means a single linear layer
	Out     int
	Dropout float64
	Bias    bool
}

// NewMLP builds In -> Hidden... -> Out with ReLU between layers and dropout
// before each linear layer (the standard decoupled-GNN classifier shape).
func NewMLP(cfg MLPConfig, rng *rand.Rand) *Sequential {
	var layers []Layer
	dims := append([]int{cfg.In}, cfg.Hidden...)
	dims = append(dims, cfg.Out)
	for i := 0; i+1 < len(dims); i++ {
		if cfg.Dropout > 0 {
			layers = append(layers, NewDropout(cfg.Dropout, rng))
		}
		layers = append(layers, NewLinear(dims[i], dims[i+1], cfg.Bias, rng))
		if i+2 < len(dims) {
			layers = append(layers, NewReLU())
		}
	}
	return NewSequential(layers...)
}

// SoftmaxCrossEntropy computes mean cross-entropy over rows of logits
// against integer labels, returning the scalar loss and ∂L/∂logits.
// Rows are softmax-normalized with the max-subtraction trick for stability.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	grad := tensor.New(logits.Rows, logits.Cols)
	return SoftmaxCrossEntropyInto(logits, labels, grad), grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing ∂L/∂logits into
// grad (same shape as logits, fully overwritten) — the zero-allocation form
// for pooled training loops. grad may not alias logits.
func SoftmaxCrossEntropyInto(logits *tensor.Matrix, labels []int, grad *tensor.Matrix) float64 {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: %d logit rows vs %d labels", logits.Rows, len(labels)))
	}
	if grad.Rows != logits.Rows || grad.Cols != logits.Cols {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyInto grad %dx%d, want %dx%d", grad.Rows, grad.Cols, logits.Rows, logits.Cols))
	}
	if logits.Rows == 0 {
		return 0
	}
	if tensor.Overlaps(grad.Data, logits.Data) {
		panic("nn: SoftmaxCrossEntropyInto grad aliases logits")
	}
	var loss float64
	invN := 1 / float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		grow := grad.Row(i)
		for j, v := range row {
			e := math.Exp(v - max)
			grow[j] = e
			sum += e
		}
		y := labels[i]
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, logits.Cols))
		}
		loss += -(row[y] - max - math.Log(sum))
		for j := range grow {
			grow[j] = grow[j] / sum * invN
		}
		grow[y] -= invN
	}
	return loss * invN
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax(logits *tensor.Matrix) *tensor.Matrix {
	out := logits.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}

// Argmax returns the index of the largest entry in each row.
func Argmax(m *tensor.Matrix) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies learnable per-feature gain and bias — the normalization used by
// Transformer-style graph models to keep attention activations in range.
type LayerNorm struct {
	Gain *Param
	Bias *Param
	Eps  float64

	lastX    *tensor.Matrix
	lastNorm *tensor.Matrix // normalized (pre-gain) activations
	invStd   []float64

	y, norm, gx tensor.Buf // pooled buffers, recycled per pass
}

// NewLayerNorm constructs a LayerNorm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	gain := tensor.New(1, dim)
	gain.Fill(1)
	return &LayerNorm{
		Gain: NewParam(fmt.Sprintf("layernorm_%d.gain", dim), gain),
		Bias: NewParam(fmt.Sprintf("layernorm_%d.bias", dim), tensor.New(1, dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes rows and applies gain/bias.
func (l *LayerNorm) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	d := float64(x.Cols)
	y := l.y.Next(x.Rows, x.Cols)
	grow := l.Gain.Value.Row(0)
	brow := l.Bias.Value.Row(0)
	// Training retains the normalized activations and inverse stddevs for
	// Backward; inference computes the output directly so it never touches
	// (or recycles) the retained training state.
	var norm *tensor.Matrix
	var invStd []float64
	if training {
		norm = l.norm.Next(x.Rows, x.Cols)
		if cap(l.invStd) < x.Rows {
			l.invStd = make([]float64, x.Rows)
		}
		invStd = l.invStd[:x.Rows]
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= d
		var varSum float64
		for _, v := range row {
			dv := v - mean
			varSum += dv * dv
		}
		inv := 1 / math.Sqrt(varSum/d+l.Eps)
		yrow := y.Row(i)
		if training {
			invStd[i] = inv
			nrow := norm.Row(i)
			for j, v := range row {
				nrow[j] = (v - mean) * inv
				yrow[j] = nrow[j]*grow[j] + brow[j]
			}
		} else {
			for j, v := range row {
				yrow[j] = (v-mean)*inv*grow[j] + brow[j]
			}
		}
	}
	if training {
		l.lastX = x
		l.lastNorm = norm
		l.invStd = invStd
	}
	return y
}

// Backward accumulates gain/bias gradients and returns ∂L/∂x using the
// standard layer-norm backward formula.
func (l *LayerNorm) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if l.lastNorm == nil {
		panic("nn: LayerNorm.Backward before Forward(training=true)")
	}
	d := float64(gradOut.Cols)
	gx := l.gx.Next(gradOut.Rows, gradOut.Cols)
	grow := l.Gain.Value.Row(0)
	ggain := l.Gain.Grad.Row(0)
	gbias := l.Bias.Grad.Row(0)
	for i := 0; i < gradOut.Rows; i++ {
		gout := gradOut.Row(i)
		nrow := l.lastNorm.Row(i)
		// Parameter gradients.
		for j, g := range gout {
			ggain[j] += g * nrow[j]
			gbias[j] += g
		}
		// dL/dnorm = gout * gain; then the norm backward:
		// dx = invStd * (dnorm - mean(dnorm) - norm * mean(dnorm*norm)).
		var meanDn, meanDnN float64
		for j, g := range gout {
			dn := g * grow[j]
			meanDn += dn
			meanDnN += dn * nrow[j]
		}
		meanDn /= d
		meanDnN /= d
		gxrow := gx.Row(i)
		inv := l.invStd[i]
		for j, g := range gout {
			dn := g * grow[j]
			gxrow[j] = inv * (dn - meanDn - nrow[j]*meanDnN)
		}
	}
	return gx
}

// Params returns the gain and bias.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gain, l.Bias} }
