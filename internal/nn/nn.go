// Package nn is the neural-network substrate of scalegnn: layers with
// hand-written backward passes, losses, and optimizers. The scalable GNN
// designs surveyed by the tutorial all reduce the learnable part of the
// model to MLP-class transformations (the graph part is handled by
// dedicated data-management algorithms), so this package provides exactly
// that: Linear / ReLU / Dropout layers composed into Sequential networks,
// softmax cross-entropy, and SGD/Adam.
//
// Every module is generic over tensor.Elem: the float64 instantiations
// (exposed under the historical names Param, Layer, Linear, ...) are the
// bitwise-reproducible reference path, and the float32 instantiations form
// the raw-speed tier. Transcendentals (exp, log, sqrt) and loss/stat
// accumulations always run in float64 regardless of T, so the float32 tier
// loses precision only where values are stored, not where they are reduced.
//
// Gradients are exact; every layer's backward pass is unit-tested against
// finite differences.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"scalegnn/internal/tensor"
)

// ParamOf is a learnable parameter with its accumulated gradient.
type ParamOf[T tensor.Elem] struct {
	Name  string
	Value *tensor.Mat[T]
	Grad  *tensor.Mat[T]
}

// Param is the float64 instantiation of ParamOf.
type Param = ParamOf[float64]

// NewParam allocates a parameter and its zero gradient. The element type is
// inferred from value.
func NewParam[T tensor.Elem](name string, value *tensor.Mat[T]) *ParamOf[T] {
	return &ParamOf[T]{Name: name, Value: value, Grad: tensor.NewOf[T](value.Rows, value.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *ParamOf[T]) ZeroGrad() { p.Grad.Zero() }

// NumValues returns the number of scalar parameters.
func (p *ParamOf[T]) NumValues() int { return len(p.Value.Data) }

// LayerOf is a differentiable module. Forward consumes a batch (rows =
// samples) and must retain whatever it needs for Backward; Backward
// consumes ∂L/∂output and returns ∂L/∂input, accumulating parameter
// gradients along the way. Layers are stateful across a single
// forward/backward pair and must not be shared between concurrent batches.
//
// Buffer lifetime: layers return matrices drawn from the shared tensor
// workspace and recycle them on the layer's next pass, so a Forward or
// Backward result is valid only until that layer runs again. Training loops
// (forward → loss → backward → step, then the next pass) satisfy this
// naturally; clone any output that must outlive the next pass, and run
// Backward before any intervening Forward on the same network.
type LayerOf[T tensor.Elem] interface {
	Forward(x *tensor.Mat[T], training bool) *tensor.Mat[T]
	Backward(gradOut *tensor.Mat[T]) *tensor.Mat[T]
	Params() []*ParamOf[T]
}

// Layer is the float64 instantiation of LayerOf.
type Layer = LayerOf[float64]

// LinearOf is a fully-connected layer y = xW + b.
//
// Forward/backward outputs live in pooled workspace buffers that are
// recycled on the next call (see tensor.Buf): a result is valid until the
// layer's next pass, which is exactly the lifetime training loops need.
// Clone anything that must survive longer.
type LinearOf[T tensor.Elem] struct {
	W, B  *ParamOf[T]
	InF   int
	OutF  int
	hasB  bool
	lastX *tensor.Mat[T]

	y, gx, wg tensor.BufOf[T] // pooled output / input-grad / weight-grad buffers
}

// Linear is the float64 instantiation of LinearOf.
type Linear = LinearOf[float64]

// NewLinear constructs a float64 Linear layer with Glorot-uniform weights
// and zero bias. If bias is false the layer is purely linear.
func NewLinear(inF, outF int, bias bool, rng *rand.Rand) *Linear {
	return NewLinearOf[float64](inF, outF, bias, rng)
}

// NewLinearOf is NewLinear for any element type. Weight initialization
// draws from rng in float64 and narrows, so a float32 layer consumes the
// RNG stream exactly like its float64 twin.
func NewLinearOf[T tensor.Elem](inF, outF int, bias bool, rng *rand.Rand) *LinearOf[T] {
	l := &LinearOf[T]{
		W:    NewParam(fmt.Sprintf("linear_%dx%d.W", inF, outF), tensor.GlorotUniformOf[T](inF, outF, rng)),
		InF:  inF,
		OutF: outF,
		hasB: bias,
	}
	if bias {
		l.B = NewParam(fmt.Sprintf("linear_%dx%d.b", inF, outF), tensor.NewOf[T](1, outF))
	}
	return l
}

// Forward computes xW (+ b).
func (l *LinearOf[T]) Forward(x *tensor.Mat[T], training bool) *tensor.Mat[T] {
	if x.Cols != l.InF {
		panic(fmt.Sprintf("nn: Linear input cols %d != inF %d", x.Cols, l.InF))
	}
	if training {
		l.lastX = x
	}
	y := l.y.Next(x.Rows, l.OutF)
	tensor.MatMulInto(x, l.W.Value, y)
	if l.hasB {
		y.AddRowVector(l.B.Value.Row(0))
	}
	return y
}

// Backward accumulates ∂L/∂W = xᵀ g and ∂L/∂b = Σ rows(g), returning
// ∂L/∂x = g Wᵀ.
func (l *LinearOf[T]) Backward(gradOut *tensor.Mat[T]) *tensor.Mat[T] {
	if l.lastX == nil {
		panic("nn: Linear.Backward before Forward(training=true)")
	}
	wg := l.wg.Next(l.InF, l.OutF)
	tensor.TMatMulInto(l.lastX, gradOut, wg)
	l.W.Grad.Add(wg)
	if l.hasB {
		brow := l.B.Grad.Row(0)
		for i := 0; i < gradOut.Rows; i++ {
			for j, v := range gradOut.Row(i) {
				brow[j] += v
			}
		}
	}
	gx := l.gx.Next(gradOut.Rows, l.InF)
	tensor.MatMulTInto(gradOut, l.W.Value, gx)
	return gx
}

// Params returns the layer's learnables.
func (l *LinearOf[T]) Params() []*ParamOf[T] {
	if l.hasB {
		return []*ParamOf[T]{l.W, l.B}
	}
	return []*ParamOf[T]{l.W}
}

// ReLUOf is the rectified-linear activation. Outputs live in pooled buffers
// recycled on the next call, like Linear's.
type ReLUOf[T tensor.Elem] struct {
	mask []bool
	y, g tensor.BufOf[T]
}

// ReLU is the float64 instantiation of ReLUOf.
type ReLU = ReLUOf[float64]

// NewReLU returns a float64 ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// NewReLUOf returns a ReLU layer for any element type.
func NewReLUOf[T tensor.Elem]() *ReLUOf[T] { return &ReLUOf[T]{} }

// Forward zeroes negative entries.
func (r *ReLUOf[T]) Forward(x *tensor.Mat[T], training bool) *tensor.Mat[T] {
	y := r.y.Next(x.Rows, x.Cols)
	copy(y.Data, x.Data)
	if training {
		if cap(r.mask) < len(y.Data) {
			r.mask = make([]bool, len(y.Data))
		}
		r.mask = r.mask[:len(y.Data)]
	}
	for i, v := range y.Data {
		pos := v > 0
		if !pos {
			y.Data[i] = 0
		}
		if training {
			r.mask[i] = pos
		}
	}
	return y
}

// Backward zeroes the gradient where the input was negative.
func (r *ReLUOf[T]) Backward(gradOut *tensor.Mat[T]) *tensor.Mat[T] {
	g := r.g.Next(gradOut.Rows, gradOut.Cols)
	copy(g.Data, gradOut.Data)
	for i := range g.Data {
		if !r.mask[i] {
			g.Data[i] = 0
		}
	}
	return g
}

// Params returns nil; ReLU has no learnables.
func (r *ReLUOf[T]) Params() []*ParamOf[T] { return nil }

// DropoutOf randomly zeroes entries during training with probability P,
// scaling survivors by 1/(1-P) (inverted dropout). At inference it is the
// identity.
type DropoutOf[T tensor.Elem] struct {
	P    float64
	rng  *rand.Rand
	keep []bool
	y, g tensor.BufOf[T]
}

// Dropout is the float64 instantiation of DropoutOf.
type Dropout = DropoutOf[float64]

// NewDropout constructs a float64 dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return NewDropoutOf[float64](p, rng)
}

// NewDropoutOf constructs a dropout layer for any element type. Mask draws
// happen in float64 so the RNG stream is dtype-independent.
func NewDropoutOf[T tensor.Elem](p float64, rng *rand.Rand) *DropoutOf[T] {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout p=%v outside [0,1)", p))
	}
	return &DropoutOf[T]{P: p, rng: rng}
}

// Forward applies inverted dropout when training.
func (d *DropoutOf[T]) Forward(x *tensor.Mat[T], training bool) *tensor.Mat[T] {
	if !training || d.P == 0 {
		return x
	}
	y := d.y.Next(x.Rows, x.Cols)
	copy(y.Data, x.Data)
	if cap(d.keep) < len(y.Data) {
		d.keep = make([]bool, len(y.Data))
	}
	d.keep = d.keep[:len(y.Data)]
	scale := T(1 / (1 - d.P))
	for i := range y.Data {
		if d.rng.Float64() < d.P {
			y.Data[i] = 0
			d.keep[i] = false
		} else {
			y.Data[i] *= scale
			d.keep[i] = true
		}
	}
	return y
}

// Backward routes gradient only through kept entries.
func (d *DropoutOf[T]) Backward(gradOut *tensor.Mat[T]) *tensor.Mat[T] {
	if d.P == 0 {
		return gradOut
	}
	g := d.g.Next(gradOut.Rows, gradOut.Cols)
	copy(g.Data, gradOut.Data)
	scale := T(1 / (1 - d.P))
	for i := range g.Data {
		if d.keep[i] {
			g.Data[i] *= scale
		} else {
			g.Data[i] = 0
		}
	}
	return g
}

// Params returns nil; Dropout has no learnables.
func (d *DropoutOf[T]) Params() []*ParamOf[T] { return nil }

// SequentialOf chains layers.
type SequentialOf[T tensor.Elem] struct {
	Layers []LayerOf[T]
}

// Sequential is the float64 instantiation of SequentialOf.
type Sequential = SequentialOf[float64]

// NewSequential builds a float64 sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// NewSequentialOf builds a sequential container for any element type.
func NewSequentialOf[T tensor.Elem](layers ...LayerOf[T]) *SequentialOf[T] {
	return &SequentialOf[T]{Layers: layers}
}

// Forward runs all layers in order.
func (s *SequentialOf[T]) Forward(x *tensor.Mat[T], training bool) *tensor.Mat[T] {
	for _, l := range s.Layers {
		x = l.Forward(x, training)
	}
	return x
}

// Backward runs all layers in reverse.
func (s *SequentialOf[T]) Backward(gradOut *tensor.Mat[T]) *tensor.Mat[T] {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params concatenates all layer parameters.
func (s *SequentialOf[T]) Params() []*ParamOf[T] {
	var ps []*ParamOf[T]
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total scalar parameter count of the network.
func (s *SequentialOf[T]) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.NumValues()
	}
	return n
}

// MLPConfig describes a multi-layer perceptron.
type MLPConfig struct {
	In      int
	Hidden  []int // hidden widths; empty means a single linear layer
	Out     int
	Dropout float64
	Bias    bool
}

// NewMLP builds a float64 In -> Hidden... -> Out network with ReLU between
// layers and dropout before each linear layer (the standard decoupled-GNN
// classifier shape).
func NewMLP(cfg MLPConfig, rng *rand.Rand) *Sequential {
	return NewMLPOf[float64](cfg, rng)
}

// NewMLPOf is NewMLP for any element type; layer construction consumes rng
// identically across dtypes.
func NewMLPOf[T tensor.Elem](cfg MLPConfig, rng *rand.Rand) *SequentialOf[T] {
	var layers []LayerOf[T]
	dims := append([]int{cfg.In}, cfg.Hidden...)
	dims = append(dims, cfg.Out)
	for i := 0; i+1 < len(dims); i++ {
		if cfg.Dropout > 0 {
			layers = append(layers, NewDropoutOf[T](cfg.Dropout, rng))
		}
		layers = append(layers, NewLinearOf[T](dims[i], dims[i+1], cfg.Bias, rng))
		if i+2 < len(dims) {
			layers = append(layers, NewReLUOf[T]())
		}
	}
	return NewSequentialOf(layers...)
}

// SoftmaxCrossEntropy computes mean cross-entropy over rows of logits
// against integer labels, returning the scalar loss and ∂L/∂logits.
// Rows are softmax-normalized with the max-subtraction trick for stability.
func SoftmaxCrossEntropy[T tensor.Elem](logits *tensor.Mat[T], labels []int) (float64, *tensor.Mat[T]) {
	grad := tensor.NewOf[T](logits.Rows, logits.Cols)
	return SoftmaxCrossEntropyInto(logits, labels, grad), grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing ∂L/∂logits into
// grad (same shape as logits, fully overwritten) — the zero-allocation form
// for pooled training loops. grad may not alias logits. Exponentials, the
// normalizer, and the loss accumulate in float64 for every element type.
func SoftmaxCrossEntropyInto[T tensor.Elem](logits *tensor.Mat[T], labels []int, grad *tensor.Mat[T]) float64 {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: %d logit rows vs %d labels", logits.Rows, len(labels)))
	}
	if grad.Rows != logits.Rows || grad.Cols != logits.Cols {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyInto grad %dx%d, want %dx%d", grad.Rows, grad.Cols, logits.Rows, logits.Cols))
	}
	if logits.Rows == 0 {
		return 0
	}
	if tensor.Overlaps(grad.Data, logits.Data) {
		panic("nn: SoftmaxCrossEntropyInto grad aliases logits")
	}
	var loss float64
	invN := 1 / float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		max := float64(row[0])
		for _, v := range row[1:] {
			if float64(v) > max {
				max = float64(v)
			}
		}
		var sum float64
		grow := grad.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v) - max)
			grow[j] = T(e)
			sum += e
		}
		y := labels[i]
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, logits.Cols))
		}
		loss += -(float64(row[y]) - max - math.Log(sum))
		for j := range grow {
			grow[j] = T(float64(grow[j]) / sum * invN)
		}
		grow[y] -= T(invN)
	}
	return loss * invN
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax[T tensor.Elem](logits *tensor.Mat[T]) *tensor.Mat[T] {
	out := logits.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		max := float64(row[0])
		for _, v := range row[1:] {
			if float64(v) > max {
				max = float64(v)
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v) - max)
			row[j] = T(e)
			sum += e
		}
		for j := range row {
			row[j] = T(float64(row[j]) / sum)
		}
	}
	return out
}

// Argmax returns the index of the largest entry in each row.
func Argmax[T tensor.Elem](m *tensor.Mat[T]) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// LayerNormOf normalizes each row to zero mean and unit variance, then
// applies learnable per-feature gain and bias — the normalization used by
// Transformer-style graph models to keep attention activations in range.
// Row statistics accumulate in float64 for every element type.
type LayerNormOf[T tensor.Elem] struct {
	Gain *ParamOf[T]
	Bias *ParamOf[T]
	Eps  float64

	lastX    *tensor.Mat[T]
	lastNorm *tensor.Mat[T] // normalized (pre-gain) activations
	invStd   []float64

	y, norm, gx tensor.BufOf[T] // pooled buffers, recycled per pass
}

// LayerNorm is the float64 instantiation of LayerNormOf.
type LayerNorm = LayerNormOf[float64]

// NewLayerNorm constructs a float64 LayerNorm over dim features.
func NewLayerNorm(dim int) *LayerNorm { return NewLayerNormOf[float64](dim) }

// NewLayerNormOf constructs a LayerNorm for any element type.
func NewLayerNormOf[T tensor.Elem](dim int) *LayerNormOf[T] {
	gain := tensor.NewOf[T](1, dim)
	gain.Fill(1)
	return &LayerNormOf[T]{
		Gain: NewParam(fmt.Sprintf("layernorm_%d.gain", dim), gain),
		Bias: NewParam(fmt.Sprintf("layernorm_%d.bias", dim), tensor.NewOf[T](1, dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes rows and applies gain/bias.
func (l *LayerNormOf[T]) Forward(x *tensor.Mat[T], training bool) *tensor.Mat[T] {
	d := float64(x.Cols)
	y := l.y.Next(x.Rows, x.Cols)
	grow := l.Gain.Value.Row(0)
	brow := l.Bias.Value.Row(0)
	// Training retains the normalized activations and inverse stddevs for
	// Backward; inference computes the output directly so it never touches
	// (or recycles) the retained training state.
	var norm *tensor.Mat[T]
	var invStd []float64
	if training {
		norm = l.norm.Next(x.Rows, x.Cols)
		if cap(l.invStd) < x.Rows {
			l.invStd = make([]float64, x.Rows)
		}
		invStd = l.invStd[:x.Rows]
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= d
		var varSum float64
		for _, v := range row {
			dv := float64(v) - mean
			varSum += dv * dv
		}
		inv := 1 / math.Sqrt(varSum/d+l.Eps)
		yrow := y.Row(i)
		if training {
			invStd[i] = inv
			nrow := norm.Row(i)
			for j, v := range row {
				nrow[j] = T((float64(v) - mean) * inv)
				yrow[j] = nrow[j]*grow[j] + brow[j]
			}
		} else {
			for j, v := range row {
				yrow[j] = T((float64(v)-mean)*inv)*grow[j] + brow[j]
			}
		}
	}
	if training {
		l.lastX = x
		l.lastNorm = norm
		l.invStd = invStd
	}
	return y
}

// Backward accumulates gain/bias gradients and returns ∂L/∂x using the
// standard layer-norm backward formula.
func (l *LayerNormOf[T]) Backward(gradOut *tensor.Mat[T]) *tensor.Mat[T] {
	if l.lastNorm == nil {
		panic("nn: LayerNorm.Backward before Forward(training=true)")
	}
	d := float64(gradOut.Cols)
	gx := l.gx.Next(gradOut.Rows, gradOut.Cols)
	grow := l.Gain.Value.Row(0)
	ggain := l.Gain.Grad.Row(0)
	gbias := l.Bias.Grad.Row(0)
	for i := 0; i < gradOut.Rows; i++ {
		gout := gradOut.Row(i)
		nrow := l.lastNorm.Row(i)
		// Parameter gradients.
		for j, g := range gout {
			ggain[j] += g * nrow[j]
			gbias[j] += g
		}
		// dL/dnorm = gout * gain; then the norm backward:
		// dx = invStd * (dnorm - mean(dnorm) - norm * mean(dnorm*norm)).
		var meanDn, meanDnN float64
		for j, g := range gout {
			dn := float64(g) * float64(grow[j])
			meanDn += dn
			meanDnN += dn * float64(nrow[j])
		}
		meanDn /= d
		meanDnN /= d
		gxrow := gx.Row(i)
		inv := l.invStd[i]
		for j, g := range gout {
			dn := float64(g) * float64(grow[j])
			gxrow[j] = T(inv * (dn - meanDn - float64(nrow[j])*meanDnN))
		}
	}
	return gx
}

// Params returns the gain and bias.
func (l *LayerNormOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{l.Gain, l.Bias} }
