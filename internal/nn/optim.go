package nn

import (
	"fmt"
	"math"

	"scalegnn/internal/tensor"
)

// OptimizerOf updates parameters from their accumulated gradients and clears
// the gradients afterwards. Update arithmetic runs in float64 for every
// element type, so the float32 tier rounds each parameter exactly once per
// step rather than compounding low-precision intermediates.
type OptimizerOf[T tensor.Elem] interface {
	Step(params []*ParamOf[T])
}

// Optimizer is the float64 instantiation of OptimizerOf.
type Optimizer = OptimizerOf[float64]

// SGDOf is stochastic gradient descent with optional L2 weight decay.
type SGDOf[T tensor.Elem] struct {
	LR          float64
	WeightDecay float64
}

// SGD is the float64 instantiation of SGDOf.
type SGD = SGDOf[float64]

// NewSGD constructs a float64 SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewSGDOf constructs an SGD optimizer for any element type.
func NewSGDOf[T tensor.Elem](lr float64) *SGDOf[T] { return &SGDOf[T]{LR: lr} }

// Step applies one descent update and zeroes gradients.
func (o *SGDOf[T]) Step(params []*ParamOf[T]) {
	for _, p := range params {
		for i, g := range p.Grad.Data {
			g64 := float64(g)
			if o.WeightDecay != 0 {
				g64 += o.WeightDecay * float64(p.Value.Data[i])
			}
			p.Value.Data[i] -= T(o.LR * g64)
		}
		p.ZeroGrad()
	}
}

// AdamOf implements the Adam optimizer (Kingma & Ba) with bias correction and
// optional decoupled L2 weight decay, the default trainer for every model in
// this library. Moment state is stored in T (halving optimizer memory on the
// float32 tier) while each per-element update computes in float64.
type AdamOf[T tensor.Elem] struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*ParamOf[T]]*tensor.Mat[T]
	v map[*ParamOf[T]]*tensor.Mat[T]
}

// Adam is the float64 instantiation of AdamOf.
type Adam = AdamOf[float64]

// NewAdam constructs float64 Adam with the standard hyperparameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam { return NewAdamOf[float64](lr) }

// NewAdamOf is NewAdam for any element type.
func NewAdamOf[T tensor.Elem](lr float64) *AdamOf[T] {
	return &AdamOf[T]{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*ParamOf[T]]*tensor.Mat[T]),
		v: make(map[*ParamOf[T]]*tensor.Mat[T]),
	}
}

// Step applies one Adam update and zeroes gradients.
func (o *AdamOf[T]) Step(params []*ParamOf[T]) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, v := o.moments(p)
		for i, g := range p.Grad.Data {
			g64 := float64(g)
			if o.WeightDecay != 0 {
				g64 += o.WeightDecay * float64(p.Value.Data[i])
			}
			m64 := o.Beta1*float64(m.Data[i]) + (1-o.Beta1)*g64
			v64 := o.Beta2*float64(v.Data[i]) + (1-o.Beta2)*g64*g64
			m.Data[i] = T(m64)
			v.Data[i] = T(v64)
			mhat := m64 / bc1
			vhat := v64 / bc2
			p.Value.Data[i] -= T(o.LR * mhat / (math.Sqrt(vhat) + o.Eps))
		}
		p.ZeroGrad()
	}
}

// moments returns p's first/second moment buffers, lazily creating
// zero-initialized state (the Adam definition for an unseen parameter).
func (o *AdamOf[T]) moments(p *ParamOf[T]) (m, v *tensor.Mat[T]) {
	m, ok := o.m[p]
	if !ok {
		m = tensor.GetZeroBufOf[T](p.Value.Rows, p.Value.Cols)
		o.m[p] = m
		o.v[p] = tensor.GetZeroBufOf[T](p.Value.Rows, p.Value.Cols)
	}
	return m, o.v[p]
}

// ExportMoments returns the optimizer's step counter and, for each
// parameter in order, its first then second moment matrix (2*len(params)
// entries). Unseen parameters export freshly created zero moments, so the
// result is always complete. The matrices alias live optimizer state:
// serialize them before the next Step and do not retain them.
func (o *AdamOf[T]) ExportMoments(params []*ParamOf[T]) (step int, moments []*tensor.Mat[T]) {
	moments = make([]*tensor.Mat[T], 0, 2*len(params))
	for _, p := range params {
		m, v := o.moments(p)
		moments = append(moments, m, v)
	}
	return o.t, moments
}

// ImportMoments restores state previously captured by ExportMoments
// (checkpoint resume): moments holds m then v per parameter, shapes must
// match, and step becomes the bias-correction counter. Values are copied
// into the optimizer's own (pooled) buffers.
func (o *AdamOf[T]) ImportMoments(params []*ParamOf[T], step int, moments []*tensor.Mat[T]) error {
	if len(moments) != 2*len(params) {
		return fmt.Errorf("nn: ImportMoments got %d matrices for %d params (want %d)",
			len(moments), len(params), 2*len(params))
	}
	if step < 0 {
		return fmt.Errorf("nn: ImportMoments negative step %d", step)
	}
	for i, p := range params {
		sm, sv := moments[2*i], moments[2*i+1]
		if !sm.SameShape(p.Value) || !sv.SameShape(p.Value) {
			return fmt.Errorf("nn: ImportMoments param %d is %dx%d, moments %dx%d/%dx%d",
				i, p.Value.Rows, p.Value.Cols, sm.Rows, sm.Cols, sv.Rows, sv.Cols)
		}
	}
	for i, p := range params {
		m, v := o.moments(p)
		copy(m.Data, moments[2*i].Data)
		copy(v.Data, moments[2*i+1].Data)
	}
	o.t = step
	return nil
}

// Reset drops all accumulated moment state and the step counter, returning
// the state buffers to the shared tensor workspace. Moment state is keyed
// by *Param and would otherwise accumulate forever in a long-lived process
// whose trainers rebuild their models (and hence their Params) between
// fits: every rebuilt Param is a fresh key, and the old entries can never
// be hit again. Trainers call Reset when training completes (or before
// reusing an optimizer with a reconstructed parameter set).
func (o *AdamOf[T]) Reset() {
	for p, m := range o.m {
		tensor.PutBufOf(m)
		delete(o.m, p)
	}
	for p, v := range o.v {
		tensor.PutBufOf(v)
		delete(o.v, p)
	}
	o.t = 0
}

// Prune drops moment state for any parameter not in keep, releasing the
// buffers to the shared workspace. Use it instead of Reset when only part
// of the model was rebuilt and the surviving parameters should keep their
// moments (and the step counter should keep its bias correction).
func (o *AdamOf[T]) Prune(keep []*ParamOf[T]) {
	live := make(map[*ParamOf[T]]bool, len(keep))
	for _, p := range keep {
		live[p] = true
	}
	for p, m := range o.m {
		if !live[p] {
			tensor.PutBufOf(m)
			delete(o.m, p)
		}
	}
	for p, v := range o.v {
		if !live[p] {
			tensor.PutBufOf(v)
			delete(o.v, p)
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. It guards the implicit-GNN training
// loops where fixed-point gradients can spike. The norm accumulates in
// float64 for every element type.
func ClipGradNorm[T tensor.Elem](params []*ParamOf[T], maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(T(scale))
		}
	}
	return norm
}

// GradCheck compares a layer's analytic input gradient against central
// finite differences of a scalar loss. Used by tests; exported so model
// packages can reuse it on composite modules.
//
// loss must be a deterministic function of the layer output. Returns the
// max absolute element-wise error between analytic and numeric ∂L/∂x.
func GradCheck[T tensor.Elem](layer LayerOf[T], x *tensor.Mat[T], loss func(y *tensor.Mat[T]) (float64, *tensor.Mat[T]), eps float64) (float64, error) {
	y := layer.Forward(x, true)
	_, gy := loss(y)
	gx := layer.Backward(gy)
	if !gx.SameShape(x) {
		return 0, fmt.Errorf("nn: GradCheck gradient shape %dx%d != input %dx%d", gx.Rows, gx.Cols, x.Rows, x.Cols)
	}
	var maxErr float64
	for i := range x.Data {
		orig := float64(x.Data[i])
		x.Data[i] = T(orig + eps)
		lp, _ := loss(layer.Forward(x, false))
		x.Data[i] = T(orig - eps)
		lm, _ := loss(layer.Forward(x, false))
		x.Data[i] = T(orig)
		numeric := (lp - lm) / (2 * eps)
		if e := math.Abs(numeric - float64(gx.Data[i])); e > maxErr {
			maxErr = e
		}
	}
	return maxErr, nil
}
