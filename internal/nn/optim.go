package nn

import (
	"fmt"
	"math"

	"scalegnn/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and clears
// the gradients afterwards.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one descent update and zeroes gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i, g := range p.Grad.Data {
			if o.WeightDecay != 0 {
				g += o.WeightDecay * p.Value.Data[i]
			}
			p.Value.Data[i] -= o.LR * g
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction and
// optional decoupled L2 weight decay, the default trainer for every model in
// this library.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam constructs Adam with the standard hyperparameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// Step applies one Adam update and zeroes gradients.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, v := o.moments(p)
		for i, g := range p.Grad.Data {
			if o.WeightDecay != 0 {
				g += o.WeightDecay * p.Value.Data[i]
			}
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.Value.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// moments returns p's first/second moment buffers, lazily creating
// zero-initialized state (the Adam definition for an unseen parameter).
func (o *Adam) moments(p *Param) (m, v *tensor.Matrix) {
	m, ok := o.m[p]
	if !ok {
		m = tensor.GetZeroBuf(p.Value.Rows, p.Value.Cols)
		o.m[p] = m
		o.v[p] = tensor.GetZeroBuf(p.Value.Rows, p.Value.Cols)
	}
	return m, o.v[p]
}

// ExportMoments returns the optimizer's step counter and, for each
// parameter in order, its first then second moment matrix (2*len(params)
// entries). Unseen parameters export freshly created zero moments, so the
// result is always complete. The matrices alias live optimizer state:
// serialize them before the next Step and do not retain them.
func (o *Adam) ExportMoments(params []*Param) (step int, moments []*tensor.Matrix) {
	moments = make([]*tensor.Matrix, 0, 2*len(params))
	for _, p := range params {
		m, v := o.moments(p)
		moments = append(moments, m, v)
	}
	return o.t, moments
}

// ImportMoments restores state previously captured by ExportMoments
// (checkpoint resume): moments holds m then v per parameter, shapes must
// match, and step becomes the bias-correction counter. Values are copied
// into the optimizer's own (pooled) buffers.
func (o *Adam) ImportMoments(params []*Param, step int, moments []*tensor.Matrix) error {
	if len(moments) != 2*len(params) {
		return fmt.Errorf("nn: ImportMoments got %d matrices for %d params (want %d)",
			len(moments), len(params), 2*len(params))
	}
	if step < 0 {
		return fmt.Errorf("nn: ImportMoments negative step %d", step)
	}
	for i, p := range params {
		sm, sv := moments[2*i], moments[2*i+1]
		if !sm.SameShape(p.Value) || !sv.SameShape(p.Value) {
			return fmt.Errorf("nn: ImportMoments param %d is %dx%d, moments %dx%d/%dx%d",
				i, p.Value.Rows, p.Value.Cols, sm.Rows, sm.Cols, sv.Rows, sv.Cols)
		}
	}
	for i, p := range params {
		m, v := o.moments(p)
		copy(m.Data, moments[2*i].Data)
		copy(v.Data, moments[2*i+1].Data)
	}
	o.t = step
	return nil
}

// Reset drops all accumulated moment state and the step counter, returning
// the state buffers to the shared tensor workspace. Moment state is keyed
// by *Param and would otherwise accumulate forever in a long-lived process
// whose trainers rebuild their models (and hence their Params) between
// fits: every rebuilt Param is a fresh key, and the old entries can never
// be hit again. Trainers call Reset when training completes (or before
// reusing an optimizer with a reconstructed parameter set).
func (o *Adam) Reset() {
	for p, m := range o.m {
		tensor.PutBuf(m)
		delete(o.m, p)
	}
	for p, v := range o.v {
		tensor.PutBuf(v)
		delete(o.v, p)
	}
	o.t = 0
}

// Prune drops moment state for any parameter not in keep, releasing the
// buffers to the shared workspace. Use it instead of Reset when only part
// of the model was rebuilt and the surviving parameters should keep their
// moments (and the step counter should keep its bias correction).
func (o *Adam) Prune(keep []*Param) {
	live := make(map[*Param]bool, len(keep))
	for _, p := range keep {
		live[p] = true
	}
	for p, m := range o.m {
		if !live[p] {
			tensor.PutBuf(m)
			delete(o.m, p)
		}
	}
	for p, v := range o.v {
		if !live[p] {
			tensor.PutBuf(v)
			delete(o.v, p)
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. It guards the implicit-GNN training
// loops where fixed-point gradients can spike.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// GradCheck compares a layer's analytic input gradient against central
// finite differences of a scalar loss. Used by tests; exported so model
// packages can reuse it on composite modules.
//
// loss must be a deterministic function of the layer output. Returns the
// max absolute element-wise error between analytic and numeric ∂L/∂x.
func GradCheck(layer Layer, x *tensor.Matrix, loss func(y *tensor.Matrix) (float64, *tensor.Matrix), eps float64) (float64, error) {
	y := layer.Forward(x, true)
	_, gy := loss(y)
	gx := layer.Backward(gy)
	if !gx.SameShape(x) {
		return 0, fmt.Errorf("nn: GradCheck gradient shape %dx%d != input %dx%d", gx.Rows, gx.Cols, x.Rows, x.Cols)
	}
	var maxErr float64
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _ := loss(layer.Forward(x, false))
		x.Data[i] = orig - eps
		lm, _ := loss(layer.Forward(x, false))
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if e := math.Abs(numeric - gx.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr, nil
}
