package nn

import (
	"math"
	"testing"

	"scalegnn/internal/tensor"
)

// sumSquares is a simple deterministic loss L = 0.5 Σ y², with gradient y.
func sumSquares(y *tensor.Matrix) (float64, *tensor.Matrix) {
	var l float64
	for _, v := range y.Data {
		l += 0.5 * v * v
	}
	return l, y.Clone()
}

func TestLinearForward(t *testing.T) {
	rng := tensor.NewRand(1)
	l := NewLinear(2, 3, true, rng)
	l.W.Value = tensor.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	l.B.Value = tensor.FromSlice(1, 3, []float64{0.5, 0.5, 0.5})
	x := tensor.FromSlice(1, 2, []float64{1, 1})
	y := l.Forward(x, false)
	want := []float64{5.5, 7.5, 9.5}
	for j, w := range want {
		if math.Abs(y.At(0, j)-w) > 1e-12 {
			t.Errorf("y[%d] = %v, want %v", j, y.At(0, j), w)
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRand(2)
	l := NewLinear(4, 3, true, rng)
	x := tensor.RandNormal(5, 4, 1, rng)
	maxErr, err := GradCheck(l, x, sumSquares, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-5 {
		t.Errorf("Linear input grad error %v", maxErr)
	}
}

func TestLinearWeightGradFiniteDiff(t *testing.T) {
	rng := tensor.NewRand(3)
	l := NewLinear(3, 2, true, rng)
	x := tensor.RandNormal(4, 3, 1, rng)
	lossAt := func() float64 {
		v, _ := sumSquares(l.Forward(x, false))
		return v
	}
	// Analytic gradients.
	y := l.Forward(x, true)
	_, gy := sumSquares(y)
	l.Backward(gy)
	const eps = 1e-6
	for _, p := range l.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossAt()
			p.Value.Data[i] = orig - eps
			lm := lossAt()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if e := math.Abs(numeric - p.Grad.Data[i]); e > 1e-4 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data[i], numeric)
			}
		}
	}
}

func TestReLUGradCheck(t *testing.T) {
	rng := tensor.NewRand(4)
	r := NewReLU()
	x := tensor.RandNormal(6, 5, 1, rng)
	// Avoid kink at exactly 0.
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 1e-3 {
			x.Data[i] = 0.1
		}
	}
	maxErr, err := GradCheck(r, x, sumSquares, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-5 {
		t.Errorf("ReLU grad error %v", maxErr)
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := tensor.NewRand(5)
	mlp := NewMLP(MLPConfig{In: 4, Hidden: []int{8}, Out: 3, Bias: true}, rng)
	x := tensor.RandNormal(5, 4, 1, rng)
	maxErr, err := GradCheck(mlp, x, sumSquares, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-4 {
		t.Errorf("MLP grad error %v", maxErr)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := tensor.NewRand(6)
	d := NewDropout(0.5, rng)
	x := tensor.New(100, 10)
	x.Fill(1)
	yEval := d.Forward(x, false)
	if !yEval.Equal(x, 0) {
		t.Error("dropout at eval must be identity")
	}
	yTrain := d.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Data {
		switch v {
		case 0:
			zeros++
		case 2:
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	frac := float64(zeros) / float64(len(yTrain.Data))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("dropout rate %v far from 0.5", frac)
	}
	// Backward routes only through kept units with the same scaling.
	g := tensor.New(100, 10)
	g.Fill(1)
	gx := d.Backward(g)
	for i, v := range yTrain.Data {
		want := 0.0
		if v != 0 {
			want = 2
		}
		if gx.Data[i] != want {
			t.Fatal("dropout backward inconsistent with forward mask")
		}
	}
}

func TestDropoutPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDropout(1.0) should panic")
		}
	}()
	NewDropout(1.0, tensor.NewRand(1))
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over k classes: loss = log k, grad = (1/k - onehot)/n.
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Errorf("loss = %v, want log 4", loss)
	}
	if math.Abs(grad.At(0, 0)-(0.25-1)/2) > 1e-12 {
		t.Errorf("grad[0,0] = %v", grad.At(0, 0))
	}
	if math.Abs(grad.At(0, 1)-0.25/2) > 1e-12 {
		t.Errorf("grad[0,1] = %v", grad.At(0, 1))
	}
}

func TestSoftmaxCrossEntropyGradFiniteDiff(t *testing.T) {
	rng := tensor.NewRand(7)
	logits := tensor.RandNormal(6, 5, 1, rng)
	labels := []int{0, 1, 2, 3, 4, 2}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-grad.Data[i]) > 1e-5 {
			t.Fatalf("CE grad[%d]: analytic %v vs numeric %v", i, grad.Data[i], numeric)
		}
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := tensor.FromSlice(1, 2, []float64{1000, -1000})
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	if loss > 1e-9 {
		t.Errorf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	for _, v := range grad.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRand(8)
	p := Softmax(tensor.RandNormal(10, 7, 3, rng))
	for i := 0; i < p.Rows; i++ {
		var s float64
		for _, v := range p.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestArgmax(t *testing.T) {
	m := tensor.FromSlice(2, 3, []float64{1, 5, 2, 7, 0, 3})
	got := Argmax(m)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("Argmax = %v", got)
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 2, []float64{1, 2}))
	p.Grad.Data[0], p.Grad.Data[1] = 0.5, -0.5
	NewSGD(0.1).Step([]*Param{p})
	if math.Abs(p.Value.Data[0]-0.95) > 1e-12 || math.Abs(p.Value.Data[1]-2.05) > 1e-12 {
		t.Errorf("after SGD: %v", p.Value.Data)
	}
	if p.Grad.Data[0] != 0 {
		t.Error("Step must zero gradients")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = Σ (w - target)².
	target := []float64{3, -2, 0.5}
	p := NewParam("w", tensor.New(1, 3))
	opt := NewAdam(0.05)
	for step := 0; step < 2000; step++ {
		for i := range target {
			p.Grad.Data[i] = 2 * (p.Value.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i, tv := range target {
		if math.Abs(p.Value.Data[i]-tv) > 1e-3 {
			t.Errorf("w[%d] = %v, want %v", i, p.Value.Data[i], tv)
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := tensor.NewRand(9)
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	labels := []int{0, 1, 1, 0}
	mlp := NewMLP(MLPConfig{In: 2, Hidden: []int{16}, Out: 2, Bias: true}, rng)
	opt := NewAdam(0.01)
	var loss float64
	//lint:ignore epoch-loop plain-SGD convergence unit test, not a model training schedule
	for epoch := 0; epoch < 800; epoch++ {
		y := mlp.Forward(x, true)
		var grad *tensor.Matrix
		loss, grad = SoftmaxCrossEntropy(y, labels)
		mlp.Backward(grad)
		opt.Step(mlp.Params())
	}
	if loss > 0.05 {
		t.Fatalf("XOR loss %v after training", loss)
	}
	pred := Argmax(mlp.Forward(x, false))
	for i, want := range labels {
		if pred[i] != want {
			t.Errorf("XOR pred[%d] = %d, want %d", i, pred[i], want)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(1, 2))
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4
	norm := ClipGradNorm([]*Param{p}, 1)
	if norm != 5 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	if math.Abs(p.Grad.Data[0]-0.6) > 1e-12 || math.Abs(p.Grad.Data[1]-0.8) > 1e-12 {
		t.Errorf("clipped grads = %v", p.Grad.Data)
	}
	// Below threshold: unchanged.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Error("grads below maxNorm should be untouched")
	}
}

func TestNumParams(t *testing.T) {
	rng := tensor.NewRand(10)
	mlp := NewMLP(MLPConfig{In: 4, Hidden: []int{8}, Out: 3, Bias: true}, rng)
	want := 4*8 + 8 + 8*3 + 3
	if got := mlp.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestLayerNormForward(t *testing.T) {
	ln := NewLayerNorm(4)
	x := tensor.FromRows([][]float64{{1, 2, 3, 4}, {10, 10, 10, 10}})
	y := ln.Forward(x, false)
	// Row 0: zero mean, unit variance (default gain 1, bias 0).
	var mean, varSum float64
	for _, v := range y.Row(0) {
		mean += v
	}
	mean /= 4
	for _, v := range y.Row(0) {
		varSum += (v - mean) * (v - mean)
	}
	if math.Abs(mean) > 1e-10 || math.Abs(varSum/4-1) > 1e-3 {
		t.Errorf("normalized row mean=%v var=%v", mean, varSum/4)
	}
	// Constant row: normalized to ~0 (eps guards the division).
	for _, v := range y.Row(1) {
		if math.Abs(v) > 1e-3 {
			t.Errorf("constant row output %v, want ~0", v)
		}
	}
}

func TestLayerNormGradCheck(t *testing.T) {
	rng := tensor.NewRand(83)
	ln := NewLayerNorm(5)
	// Random gain/bias so gradients are nontrivial.
	ln.Gain.Value = tensor.RandUniform(1, 5, 0.5, 1.5, rng)
	ln.Bias.Value = tensor.RandNormal(1, 5, 0.2, rng)
	x := tensor.RandNormal(4, 5, 1, rng)
	maxErr, err := GradCheck(ln, x, sumSquares, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-4 {
		t.Errorf("LayerNorm input grad error %v", maxErr)
	}
}

func TestLayerNormParamGradFiniteDiff(t *testing.T) {
	rng := tensor.NewRand(89)
	ln := NewLayerNorm(3)
	ln.Gain.Value = tensor.RandUniform(1, 3, 0.5, 1.5, rng)
	x := tensor.RandNormal(5, 3, 1, rng)
	y := ln.Forward(x, true)
	_, gy := sumSquares(y)
	ln.Backward(gy)
	lossAt := func() float64 {
		v, _ := sumSquares(ln.Forward(x, false))
		return v
	}
	const eps = 1e-6
	for _, p := range ln.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossAt()
			p.Value.Data[i] = orig - eps
			lm := lossAt()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-p.Grad.Data[i]) > 1e-4 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data[i], numeric)
			}
		}
	}
}

func TestLayerNormInSequential(t *testing.T) {
	rng := tensor.NewRand(97)
	net := NewSequential(
		NewLinear(4, 8, true, rng),
		NewLayerNorm(8),
		NewReLU(),
		NewLinear(8, 2, true, rng),
	)
	x := tensor.RandNormal(6, 4, 1, rng)
	maxErr, err := GradCheck(net, x, sumSquares, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-4 {
		t.Errorf("Sequential-with-LayerNorm grad error %v", maxErr)
	}
	if len(net.Params()) != 6 {
		t.Errorf("params = %d, want 6", len(net.Params()))
	}
}

func TestAdamResetClearsState(t *testing.T) {
	opt := NewAdam(0.1)
	p := NewParam("w", tensor.New(2, 2))
	p.Grad.Fill(1)
	opt.Step([]*Param{p})
	if opt.t != 1 || len(opt.m) != 1 || len(opt.v) != 1 {
		t.Fatalf("after one step: t=%d, |m|=%d, |v|=%d", opt.t, len(opt.m), len(opt.v))
	}
	opt.Reset()
	if opt.t != 0 || len(opt.m) != 0 || len(opt.v) != 0 {
		t.Fatalf("after Reset: t=%d, |m|=%d, |v|=%d", opt.t, len(opt.m), len(opt.v))
	}
	// A fresh step after Reset must behave exactly like the first step of a
	// fresh optimizer (bias correction restarts, moments start at zero).
	q := NewParam("w2", tensor.New(2, 2))
	q.Value.Fill(1)
	q.Grad.Fill(1)
	opt.Step([]*Param{q})
	fresh := NewAdam(0.1)
	r := NewParam("w3", tensor.New(2, 2))
	r.Value.Fill(1)
	r.Grad.Fill(1)
	fresh.Step([]*Param{r})
	for i := range q.Value.Data {
		if q.Value.Data[i] != r.Value.Data[i] {
			t.Fatalf("post-Reset step differs from fresh optimizer at %d: %v vs %v",
				i, q.Value.Data[i], r.Value.Data[i])
		}
	}
}

func TestAdamPruneKeepsSurvivors(t *testing.T) {
	opt := NewAdam(0.1)
	keep := NewParam("keep", tensor.New(1, 2))
	dead := NewParam("dead", tensor.New(1, 2))
	keep.Grad.Fill(1)
	dead.Grad.Fill(1)
	opt.Step([]*Param{keep, dead})
	mKeep := opt.m[keep]
	opt.Prune([]*Param{keep})
	if _, ok := opt.m[dead]; ok {
		t.Fatal("Prune left state for dropped param")
	}
	if opt.m[keep] != mKeep {
		t.Fatal("Prune must not disturb surviving state")
	}
	if opt.t != 1 {
		t.Fatalf("Prune must keep the step counter, got t=%d", opt.t)
	}
}
