package implicit

import (
	"math"
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func setup(t *testing.T, n int) (*graph.Operator, *tensor.Matrix, *tensor.Matrix) {
	t.Helper()
	rng := tensor.NewRand(uint64(n))
	g := graph.ErdosRenyi(n, n*3, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	b := tensor.RandNormal(n, 4, 1, rng)
	w := tensor.RandNormal(4, 4, 0.2, rng)
	// Symmetrize and shrink inside the contraction region.
	wt := w.T()
	w.Add(wt)
	w.Scale(0.5)
	ProjectSpectralNorm(w, 0.9)
	return op, b, w
}

func TestSolveReachesFixedPoint(t *testing.T) {
	op, b, w := setup(t, 40)
	s, err := NewSolver(op, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	z, iters, err := s.Solve(b, w)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 || iters == s.MaxIter {
		t.Errorf("suspicious iteration count %d", iters)
	}
	// Verify residual: Z - (γ P Z W + B) ≈ 0.
	pz := op.Apply(z)
	rhs := tensor.MatMul(pz, w)
	rhs.Scale(0.8)
	rhs.Add(b)
	rhs.Sub(z)
	if res := rhs.FrobeniusNorm(); res > 1e-6 {
		t.Errorf("fixed-point residual %v", res)
	}
}

func TestSolveEigMatchesPicard(t *testing.T) {
	op, b, w := setup(t, 30)
	s, err := NewSolver(op, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	s.Tol = 1e-11
	zp, _, err := s.Solve(b, w)
	if err != nil {
		t.Fatal(err)
	}
	ze, cgIters, err := s.SolveEig(b, w)
	if err != nil {
		t.Fatal(err)
	}
	if cgIters == 0 {
		t.Error("CG did no work")
	}
	if !zp.Equal(ze, 1e-6) {
		d := zp.Clone()
		d.Sub(ze)
		t.Errorf("Picard and eigen solve disagree (max diff %v)", d.MaxAbs())
	}
}

func TestSolveEigRejectsAsymmetric(t *testing.T) {
	op, b, _ := setup(t, 10)
	s, _ := NewSolver(op, 0.5)
	w := tensor.FromSlice(4, 4, []float64{
		0.1, 0.5, 0, 0,
		0, 0.1, 0, 0,
		0, 0, 0.1, 0,
		0, 0, 0, 0.1,
	})
	if _, _, err := s.SolveEig(b, w); err == nil {
		t.Error("asymmetric W should be rejected")
	}
}

func TestAdjointIsExactGradient(t *testing.T) {
	// Finite-difference check: L = 0.5‖Z‖²; ∂L/∂B must equal the adjoint
	// solution with G = Z.
	op, b, w := setup(t, 15)
	s, err := NewSolver(op, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	s.Tol = 1e-12
	loss := func(bm *tensor.Matrix) float64 {
		z, _, err := s.Solve(bm, w)
		if err != nil {
			t.Fatal(err)
		}
		var l float64
		for _, v := range z.Data {
			l += 0.5 * v * v
		}
		return l
	}
	z, _, err := s.Solve(b, w)
	if err != nil {
		t.Fatal(err)
	}
	gradB, _, err := s.SolveAdjoint(z, w)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for _, i := range []int{0, 7, 23, 41, 59} {
		orig := b.Data[i]
		b.Data[i] = orig + eps
		lp := loss(b)
		b.Data[i] = orig - eps
		lm := loss(b)
		b.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-gradB.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("∂L/∂B[%d]: adjoint %v vs numeric %v", i, gradB.Data[i], numeric)
		}
	}
}

func TestGradWIsExact(t *testing.T) {
	op, b, w := setup(t, 12)
	s, err := NewSolver(op, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	s.Tol = 1e-12
	loss := func() float64 {
		z, _, err := s.Solve(b, w)
		if err != nil {
			t.Fatal(err)
		}
		var l float64
		for _, v := range z.Data {
			l += 0.5 * v * v
		}
		return l
	}
	z, _, err := s.Solve(b, w)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := s.SolveAdjoint(z, w)
	if err != nil {
		t.Fatal(err)
	}
	gradW := s.GradW(z, u)
	const eps = 1e-6
	for i := range w.Data {
		orig := w.Data[i]
		w.Data[i] = orig + eps
		lp := loss()
		w.Data[i] = orig - eps
		lm := loss()
		w.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-gradW.Data[i]) > 1e-3*(1+math.Abs(numeric)) {
			t.Fatalf("∂L/∂W[%d]: analytic %v vs numeric %v", i, gradW.Data[i], numeric)
		}
	}
}

func TestLongRangePropagation(t *testing.T) {
	// On a path graph, an implicit layer must carry signal end to end —
	// the receptive-field claim of §3.2.3. Inject mass at node 0 only and
	// check the far end receives a nonzero state.
	n := 50
	g := graph.Path(n)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	s, err := NewSolver(op, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxIter = 3000
	s.Tol = 1e-13
	b := tensor.New(n, 1)
	b.Set(0, 0, 1)
	w := tensor.FromSlice(1, 1, []float64{0.999})
	z, _, err := s.Solve(b, w)
	if err != nil {
		t.Fatal(err)
	}
	if z.At(n-1, 0) <= 0 {
		t.Errorf("far-end state = %v; implicit layer failed to propagate", z.At(n-1, 0))
	}
	// A 3-hop explicit propagation reaches nothing past hop 3.
	p3 := op.PowerApply(b, 3)
	if p3.At(10, 0) != 0 {
		t.Error("sanity: 3-hop propagation should not reach node 10")
	}
}

func TestMultiscaleSolve(t *testing.T) {
	op, b, w := setup(t, 25)
	w2 := w.Clone()
	w2.Scale(0.5)
	out, iters, err := MultiscaleSolve(op, 0.7, b, []int{1, 2}, []*tensor.Matrix{w, w2})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 2 || iters[0] == 0 || iters[1] == 0 {
		t.Errorf("iters = %v", iters)
	}
	if out.Rows != b.Rows || out.Cols != b.Cols {
		t.Error("shape mismatch")
	}
	// Must equal the average of the two single-scale solutions.
	s1, _ := NewSolver(op, 0.7)
	z1, _, _ := s1.Solve(b, w)
	s2, _ := NewSolver(op, 0.7)
	s2.Scale = 2
	z2, _, _ := s2.Solve(b, w2)
	want := tensor.New(b.Rows, b.Cols)
	want.AddScaled(0.5, z1)
	want.AddScaled(0.5, z2)
	if !out.Equal(want, 1e-9) {
		t.Error("multiscale output != average of per-scale equilibria")
	}
}

func TestMultiscaleValidation(t *testing.T) {
	op, b, w := setup(t, 10)
	if _, _, err := MultiscaleSolve(op, 0.7, b, nil, nil); err == nil {
		t.Error("empty scales should error")
	}
	if _, _, err := MultiscaleSolve(op, 0.7, b, []int{0}, []*tensor.Matrix{w}); err == nil {
		t.Error("scale 0 should error")
	}
}

func TestNewSolverValidation(t *testing.T) {
	op, _, _ := setup(t, 5)
	if _, err := NewSolver(op, 0); err == nil {
		t.Error("gamma=0 should error")
	}
	if _, err := NewSolver(op, 1); err == nil {
		t.Error("gamma=1 should error")
	}
}

func TestSpectralNorm(t *testing.T) {
	// Diagonal matrix: spectral norm is the max |diagonal|.
	w := tensor.New(3, 3)
	w.Set(0, 0, 2)
	w.Set(1, 1, -5)
	w.Set(2, 2, 1)
	if got := SpectralNorm(w, 50); math.Abs(got-5) > 1e-6 {
		t.Errorf("σ = %v, want 5", got)
	}
	if SpectralNorm(tensor.New(0, 0), 5) != 0 {
		t.Error("empty matrix norm should be 0")
	}
}

func TestProjectSpectralNorm(t *testing.T) {
	rng := tensor.NewRand(99)
	w := tensor.RandNormal(6, 6, 2, rng)
	pre := ProjectSpectralNorm(w, 0.5)
	if pre <= 0.5 {
		t.Skip("random matrix unexpectedly small")
	}
	post := SpectralNorm(w, 50)
	if post > 0.5+1e-6 {
		t.Errorf("post-projection σ = %v > 0.5", post)
	}
	// Already-small matrices are untouched.
	w2 := tensor.New(2, 2)
	w2.Set(0, 0, 0.1)
	before := w2.Clone()
	ProjectSpectralNorm(w2, 1)
	if !w2.Equal(before, 0) {
		t.Error("projection modified an already-feasible matrix")
	}
}

func TestSolveDetectsDivergence(t *testing.T) {
	op, b, _ := setup(t, 10)
	s, _ := NewSolver(op, 0.99)
	// ‖W‖ far above 1/γ: Picard must diverge and report it.
	w := tensor.New(4, 4)
	for i := 0; i < 4; i++ {
		w.Set(i, i, 50)
	}
	if _, _, err := s.Solve(b, w); err == nil {
		t.Error("expected divergence error")
	}
}

func BenchmarkPicardSolve(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(2000, 5, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	bm := tensor.RandNormal(g.N, 16, 1, rng)
	w := tensor.RandNormal(16, 16, 0.1, rng)
	wt := w.T()
	w.Add(wt)
	w.Scale(0.5)
	ProjectSpectralNorm(w, 0.9)
	s, _ := NewSolver(op, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(bm, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSolve(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(2000, 5, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	bm := tensor.RandNormal(g.N, 16, 1, rng)
	w := tensor.RandNormal(16, 16, 0.1, rng)
	wt := w.T()
	w.Add(wt)
	w.Scale(0.5)
	ProjectSpectralNorm(w, 0.9)
	s, _ := NewSolver(op, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveEig(bm, w); err != nil {
			b.Fatal(err)
		}
	}
}
