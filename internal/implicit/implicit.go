// Package implicit implements implicit (fixed-point) graph neural network
// layers — tutorial §3.2.3 "Graph Algebras". Instead of stacking K
// message-passing layers, an implicit GNN defines node states as the
// equilibrium of
//
//	Z = γ · P Z W + B(X)
//
// where P is the (symmetric-normalized) propagation operator, W a learnable
// channel-mixing matrix, and B(X) the input injection. Solving the
// equilibrium captures full-graph information in a single "layer",
// bypassing the limited receptive field of a K-layer convolution.
//
// Three solution strategies from the surveyed systems are implemented:
//
//   - Picard iteration (IGNN): contract to the fixed point; convergence is
//     guaranteed when γ·‖W‖₂ < 1.
//   - Eigen-decoupled solve (EIGNN): diagonalize a symmetric W = QΛQᵀ and
//     solve each transformed column (I − γλ_j P) z = b independently with
//     conjugate gradients — no joint iteration, better conditioning.
//   - Multiscale operators (MGNNI): replace P by P^s at several scales s and
//     combine equilibria, expanding the effective receptive field without
//     extra solver cost per scale.
//
// Training uses exact implicit differentiation: gradients of the
// equilibrium are themselves fixed points of the adjoint equation, solved
// by the same machinery (SolveAdjoint).
package implicit

import (
	"fmt"
	"math"

	"scalegnn/internal/graph"
	"scalegnn/internal/spectral"
	"scalegnn/internal/tensor"
)

// Solver solves implicit-GNN equilibria on a fixed propagation operator.
type Solver struct {
	Op      *graph.Operator
	Gamma   float64 // contraction factor γ in (0, 1)
	Tol     float64 // Frobenius-norm convergence tolerance
	MaxIter int     // Picard/CG iteration cap
	Scale   int     // propagation scale s: the operator used is P^s (>= 1)
}

// NewSolver returns a Solver with the defaults used across the library:
// tol 1e-8, 300 iterations, scale 1.
func NewSolver(op *graph.Operator, gamma float64) (*Solver, error) {
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("implicit: gamma %v outside (0,1)", gamma)
	}
	return &Solver{Op: op, Gamma: gamma, Tol: 1e-8, MaxIter: 300, Scale: 1}, nil
}

// propagate applies P^Scale to x.
func (s *Solver) propagate(x *tensor.Matrix) *tensor.Matrix {
	out := s.Op.Apply(x)
	for i := 1; i < s.Scale; i++ {
		out = s.Op.Apply(out)
	}
	return out
}

// Solve finds Z with Z = γ P^s Z W + B via Picard iteration, returning the
// equilibrium and the iterations used. W must satisfy γ‖W‖₂ < 1 for
// guaranteed convergence; the solver detects divergence and errors out.
func (s *Solver) Solve(b, w *tensor.Matrix) (*tensor.Matrix, int, error) {
	if b.Cols != w.Rows || w.Rows != w.Cols {
		return nil, 0, fmt.Errorf("implicit: shape mismatch B %dx%d, W %dx%d", b.Rows, b.Cols, w.Rows, w.Cols)
	}
	z := b.Clone()
	prevDiff := math.Inf(1)
	for it := 1; it <= s.MaxIter; it++ {
		pz := s.propagate(z)
		next := tensor.MatMul(pz, w)
		next.Scale(s.Gamma)
		next.Add(b)
		next.Sub(z)
		diff := next.FrobeniusNorm()
		next.Add(z)
		z = next
		if diff < s.Tol {
			return z, it, nil
		}
		if diff > 10*prevDiff && diff > 1e6 {
			return nil, it, fmt.Errorf("implicit: Picard diverging (residual %g); is γ·‖W‖ < 1?", diff)
		}
		if diff < prevDiff {
			prevDiff = diff
		}
	}
	return z, s.MaxIter, nil
}

// SolveAdjoint finds U with U = γ (P^s)ᵀ U Wᵀ + G — the adjoint equilibrium
// whose solution is exactly ∂L/∂B given G = ∂L/∂Z. For symmetric operators
// (undirected graphs) (P^s)ᵀ = P^s.
func (s *Solver) SolveAdjoint(g, w *tensor.Matrix) (*tensor.Matrix, int, error) {
	wt := w.T()
	u := g.Clone()
	for it := 1; it <= s.MaxIter; it++ {
		pu := s.propagate(u)
		next := tensor.MatMul(pu, wt)
		next.Scale(s.Gamma)
		next.Add(g)
		next.Sub(u)
		diff := next.FrobeniusNorm()
		next.Add(u)
		u = next
		if diff < s.Tol {
			return u, it, nil
		}
	}
	return u, s.MaxIter, nil
}

// GradW computes ∂L/∂W = γ (P^s Z)ᵀ U from the equilibrium Z and the
// adjoint solution U.
func (s *Solver) GradW(z, u *tensor.Matrix) *tensor.Matrix {
	pz := s.propagate(z)
	g := tensor.TMatMul(pz, u)
	g.Scale(s.Gamma)
	return g
}

// SolveEig solves the equilibrium for a symmetric W by the EIGNN
// decoupling: with W = QΛQᵀ, setting Z̃ = ZQ gives independent per-column
// systems (I − γλ_j P^s) z̃_j = b̃_j, each solved by conjugate gradients.
// Returns the equilibrium and the total CG iterations across columns.
func (s *Solver) SolveEig(b, w *tensor.Matrix) (*tensor.Matrix, int, error) {
	if w.Rows != w.Cols || b.Cols != w.Rows {
		return nil, 0, fmt.Errorf("implicit: shape mismatch B %dx%d, W %dx%d", b.Rows, b.Cols, w.Rows, w.Cols)
	}
	// Verify symmetry: the decoupling requires it.
	for i := 0; i < w.Rows; i++ {
		for j := i + 1; j < w.Cols; j++ {
			if math.Abs(w.At(i, j)-w.At(j, i)) > 1e-10 {
				return nil, 0, fmt.Errorf("implicit: SolveEig requires symmetric W (asymmetry at %d,%d)", i, j)
			}
		}
	}
	vals, q := spectral.JacobiEigen(w, 100)
	btilde := tensor.MatMul(b, q)
	ztilde := tensor.New(b.Rows, b.Cols)
	totalIters := 0
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = btilde.At(i, j)
		}
		sol, iters, err := s.cgSolve(col, s.Gamma*vals[j])
		if err != nil {
			return nil, totalIters, fmt.Errorf("implicit: column %d: %w", j, err)
		}
		totalIters += iters
		for i := 0; i < b.Rows; i++ {
			ztilde.Set(i, j, sol[i])
		}
	}
	return tensor.MatMulT(ztilde, q), totalIters, nil
}

// cgSolve solves (I − μ P^s) x = rhs with conjugate gradients. The system
// is SPD whenever |μ| < 1 and P is symmetric with spectrum in [−1, 1].
func (s *Solver) cgSolve(rhs []float64, mu float64) ([]float64, int, error) {
	if math.Abs(mu) >= 1 {
		return nil, 0, fmt.Errorf("implicit: CG system not PD (|μ|=%v >= 1)", math.Abs(mu))
	}
	n := len(rhs)
	apply := func(x []float64) []float64 {
		px := s.Op.ApplyVec(x)
		for i := 1; i < s.Scale; i++ {
			px = s.Op.ApplyVec(px)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = x[i] - mu*px[i]
		}
		return out
	}
	x := make([]float64, n)
	r := append([]float64(nil), rhs...)
	p := append([]float64(nil), rhs...)
	rs := tensor.Dot(r, r)
	if math.Sqrt(rs) < s.Tol {
		return x, 0, nil
	}
	for it := 1; it <= s.MaxIter; it++ {
		ap := apply(p)
		alpha := rs / tensor.Dot(p, ap)
		tensor.Axpy(alpha, p, x)
		tensor.Axpy(-alpha, ap, r)
		rsNew := tensor.Dot(r, r)
		if math.Sqrt(rsNew) < s.Tol {
			return x, it, nil
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, s.MaxIter, nil
}

// MultiscaleSolve computes equilibria at each scale (MGNNI): scale s uses
// operator P^s with its own weight matrix ws[i], and the results are
// averaged. Returns the combined embedding and the per-scale Picard
// iteration counts.
func MultiscaleSolve(op *graph.Operator, gamma float64, b *tensor.Matrix, scales []int, ws []*tensor.Matrix) (*tensor.Matrix, []int, error) {
	if len(scales) == 0 || len(scales) != len(ws) {
		return nil, nil, fmt.Errorf("implicit: %d scales but %d weight matrices", len(scales), len(ws))
	}
	out := tensor.New(b.Rows, b.Cols)
	iters := make([]int, len(scales))
	for i, sc := range scales {
		if sc < 1 {
			return nil, nil, fmt.Errorf("implicit: scale %d < 1", sc)
		}
		solver, err := NewSolver(op, gamma)
		if err != nil {
			return nil, nil, err
		}
		solver.Scale = sc
		z, it, err := solver.Solve(b, ws[i])
		if err != nil {
			return nil, nil, fmt.Errorf("implicit: scale %d: %w", sc, err)
		}
		iters[i] = it
		out.AddScaled(1/float64(len(scales)), z)
	}
	return out, iters, nil
}

// SpectralNorm estimates ‖W‖₂ by power iteration — used to project the
// learnable W back inside the contraction region after optimizer steps.
func SpectralNorm(w *tensor.Matrix, iters int) float64 {
	if w.Rows == 0 || w.Cols == 0 {
		return 0
	}
	v := make([]float64, w.Cols)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(len(v)))
	}
	var sigma float64
	for it := 0; it < iters; it++ {
		// u = W v; v = Wᵀ u.
		u := make([]float64, w.Rows)
		for i := 0; i < w.Rows; i++ {
			u[i] = tensor.Dot(w.Row(i), v)
		}
		sigma = tensor.Norm2(u)
		if sigma == 0 {
			return 0
		}
		tensor.ScaleVec(1/sigma, u)
		for j := range v {
			var s float64
			for i := 0; i < w.Rows; i++ {
				s += w.At(i, j) * u[i]
			}
			v[j] = s
		}
		tensor.Normalize(v)
	}
	return sigma
}

// ProjectSpectralNorm rescales W in place so ‖W‖₂ ≤ maxNorm, returning the
// pre-projection norm. The projected-gradient step that keeps implicit GNN
// training inside the well-posed (contractive) region.
func ProjectSpectralNorm(w *tensor.Matrix, maxNorm float64) float64 {
	sigma := SpectralNorm(w, 30)
	if sigma > maxNorm && sigma > 0 {
		w.Scale(maxNorm / sigma)
	}
	return sigma
}
