package subgraph

import (
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func testGraph(t *testing.T, seed uint64) *graph.CSR {
	t.Helper()
	return graph.BarabasiAlbert(300, 4, tensor.NewRand(seed))
}

func TestEgoNetRadius(t *testing.T) {
	g := graph.Path(10)
	sub, ids, err := EgoNet(g, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 3..7.
	if sub.N != 5 {
		t.Fatalf("2-hop ego of path center: %d nodes, want 5", sub.N)
	}
	if ids[0] != 5 {
		t.Error("center must be first")
	}
	want := map[int]bool{3: true, 4: true, 5: true, 6: true, 7: true}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected node %d", id)
		}
	}
}

func TestEgoNetCap(t *testing.T) {
	g := testGraph(t, 1)
	sub, ids, err := EgoNet(g, 0, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N > 20 || len(ids) > 20 {
		t.Errorf("cap violated: %d nodes", sub.N)
	}
}

func TestEgoNetZeroHops(t *testing.T) {
	g := testGraph(t, 2)
	sub, ids, err := EgoNet(g, 7, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N != 1 || ids[0] != 7 {
		t.Errorf("0-hop ego: n=%d ids=%v", sub.N, ids)
	}
}

func TestEgoNetValidation(t *testing.T) {
	g := testGraph(t, 3)
	if _, _, err := EgoNet(g, -1, 2, 0); err == nil {
		t.Error("bad center should error")
	}
	if _, _, err := EgoNet(g, 0, -1, 0); err == nil {
		t.Error("negative hops should error")
	}
}

func TestWalkStorePreprocessAndNodeSets(t *testing.T) {
	g := testGraph(t, 4)
	rng := tensor.NewRand(5)
	ws, err := NewWalkStore(g, WalkStoreConfig{Walks: 20, Length: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Preprocess([]int{0, 1, 2}, rng); err != nil {
		t.Fatal(err)
	}
	if !ws.Has(0) || ws.Has(99) {
		t.Error("Has wrong")
	}
	ns, err := ws.NodeSet(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) == 0 {
		t.Fatal("empty node set")
	}
	// Sorted and unique.
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Fatal("node set not sorted unique")
		}
	}
	// Seed must be in its own set.
	found := false
	for _, v := range ns {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Error("seed missing from its node set")
	}
	// Every set node must be reachable within Length hops.
	dist := g.BFSDistances(0)
	for _, v := range ns {
		if dist[v] > 4 || dist[v] == -1 {
			t.Errorf("node %d at distance %d in a 4-step walk set", v, dist[v])
		}
	}
}

func TestWalkStoreIncrementalPreprocess(t *testing.T) {
	g := testGraph(t, 6)
	rng := tensor.NewRand(7)
	ws, _ := NewWalkStore(g, WalkStoreConfig{Walks: 10, Length: 3})
	if err := ws.Preprocess([]int{0}, rng); err != nil {
		t.Fatal(err)
	}
	before, _ := ws.NodeSet(0)
	// Re-preprocessing the same seed must be a no-op (stored set reused).
	if err := ws.Preprocess([]int{0, 5}, rng); err != nil {
		t.Fatal(err)
	}
	after, _ := ws.NodeSet(0)
	if len(before) != len(after) {
		t.Error("stored set was recomputed")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("stored set changed")
		}
	}
}

func TestJoinFeatures(t *testing.T) {
	g := testGraph(t, 8)
	rng := tensor.NewRand(9)
	const L = 4
	ws, _ := NewWalkStore(g, WalkStoreConfig{Walks: 30, Length: L})
	if err := ws.Preprocess([]int{0, 1}, rng); err != nil {
		t.Fatal(err)
	}
	jr, err := ws.Join(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Features.Rows != len(jr.Nodes) || jr.Features.Cols != 2*(L+1) {
		t.Fatalf("features shape %dx%d", jr.Features.Rows, jr.Features.Cols)
	}
	// The seed u=0 must have profile[0] == 1 in the u-half (every walk
	// starts there) — find its row.
	for i, v := range jr.Nodes {
		if v == 0 {
			if jr.Features.At(i, 0) != 1 {
				t.Errorf("seed landing prob at step 0 = %v, want 1", jr.Features.At(i, 0))
			}
		}
		if v == 1 {
			if jr.Features.At(i, L+1) != 1 {
				t.Errorf("second seed profile = %v, want 1", jr.Features.At(i, L+1))
			}
		}
	}
	// Union sorted.
	for i := 1; i < len(jr.Nodes); i++ {
		if jr.Nodes[i] <= jr.Nodes[i-1] {
			t.Fatal("join union not sorted unique")
		}
	}
}

func TestJoinRequiresPreprocess(t *testing.T) {
	g := testGraph(t, 10)
	ws, _ := NewWalkStore(g, WalkStoreConfig{Walks: 5, Length: 2})
	if _, err := ws.Join(0, 1); err == nil {
		t.Error("join of unpreprocessed seeds should error")
	}
}

func TestInducedQuerySubgraph(t *testing.T) {
	g := testGraph(t, 11)
	rng := tensor.NewRand(12)
	ws, _ := NewWalkStore(g, WalkStoreConfig{Walks: 15, Length: 3})
	if err := ws.Preprocess([]int{3, 4}, rng); err != nil {
		t.Fatal(err)
	}
	jr, err := ws.Join(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub, ids := ws.InducedQuerySubgraph(jr)
	if sub.N != len(jr.Nodes) {
		t.Fatalf("induced n %d != union %d", sub.N, len(jr.Nodes))
	}
	for _, e := range sub.UndirectedEdges() {
		if !g.HasEdge(ids[e.U], ids[e.V]) {
			t.Fatal("induced subgraph has a non-edge")
		}
	}
}

func TestStorageBytesGrowsWithSeeds(t *testing.T) {
	g := testGraph(t, 13)
	rng := tensor.NewRand(14)
	ws, _ := NewWalkStore(g, WalkStoreConfig{Walks: 10, Length: 3})
	if err := ws.Preprocess([]int{0}, rng); err != nil {
		t.Fatal(err)
	}
	b1 := ws.StorageBytes()
	if err := ws.Preprocess([]int{1, 2, 3}, rng); err != nil {
		t.Fatal(err)
	}
	if ws.StorageBytes() <= b1 {
		t.Error("storage should grow with more seeds")
	}
}

func TestWalkStoreValidation(t *testing.T) {
	g := testGraph(t, 15)
	if _, err := NewWalkStore(g, WalkStoreConfig{Walks: 0, Length: 3}); err == nil {
		t.Error("zero walks should error")
	}
	ws, _ := NewWalkStore(g, WalkStoreConfig{Walks: 2, Length: 2})
	if err := ws.Preprocess([]int{-1}, tensor.NewRand(1)); err == nil {
		t.Error("bad seed should error")
	}
	if _, err := ws.NodeSet(42); err == nil {
		t.Error("unpreprocessed NodeSet should error")
	}
}

func TestReuseRatio(t *testing.T) {
	queries := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	// Nothing stored: first touches miss, repeats hit.
	r := ReuseRatio(queries, nil)
	// Fetches: 0(miss) 1(miss) 1(hit) 2(miss) 0(hit) 2(hit) = 3/6.
	if r != 0.5 {
		t.Errorf("reuse ratio = %v, want 0.5", r)
	}
	// All endpoints pre-stored: ratio 1.
	pre := map[int]bool{0: true, 1: true, 2: true}
	if r := ReuseRatio(queries, pre); r != 1 {
		t.Errorf("pre-stored reuse = %v, want 1", r)
	}
	if ReuseRatio(nil, nil) != 0 {
		t.Error("empty queries should be 0")
	}
}

func BenchmarkJoinVsEgoNet(b *testing.B) {
	g := graph.BarabasiAlbert(20000, 6, tensor.NewRand(1))
	rng := tensor.NewRand(2)
	ws, _ := NewWalkStore(g, WalkStoreConfig{Walks: 50, Length: 4})
	seeds := make([]int, 200)
	for i := range seeds {
		seeds[i] = i * 97 % g.N
	}
	if err := ws.Preprocess(seeds, rng); err != nil {
		b.Fatal(err)
	}
	b.Run("join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u, v := seeds[i%200], seeds[(i+7)%200]
			if _, err := ws.Join(u, v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("egonet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := EgoNet(g, seeds[i%200], 3, 200); err != nil {
				b.Fatal(err)
			}
		}
	})
}
