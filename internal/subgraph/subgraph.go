// Package subgraph implements subgraph extraction and storage — tutorial
// §3.3.3. Subgraph-based representation learning (link prediction, relation
// reasoning) needs a subgraph around each queried node or node pair;
// extracting one per query is the throughput bottleneck, so SUREL-style
// systems decompose subgraphs into reusable per-node random-walk sets,
// store them once in a compact sparse form, and assemble query subgraphs by
// joining stored sets.
//
// This package provides:
//
//   - EgoNet: classic k-hop ego-network extraction (the one-shot baseline).
//   - WalkStore: per-seed walk sets with deduplicated node lists and
//     relative positional encodings (landing counts per step), plus the
//     pair-join operation that replaces fresh extraction.
package subgraph

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"scalegnn/internal/graph"
	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
)

// EgoNet extracts the induced subgraph of all nodes within `hops` of
// center, capped at maxNodes nodes (BFS order decides which survive the
// cap; 0 means no cap). Returns the subgraph and original node IDs, center
// first.
func EgoNet(g *graph.CSR, center, hops, maxNodes int) (*graph.CSR, []int, error) {
	if center < 0 || center >= g.N {
		return nil, nil, fmt.Errorf("subgraph: center %d out of range [0,%d)", center, g.N)
	}
	if hops < 0 {
		return nil, nil, fmt.Errorf("subgraph: negative hops %d", hops)
	}
	visited := map[int32]struct{}{int32(center): {}}
	order := []int{center}
	frontier := []int32{int32(center)}
	for h := 0; h < hops; h++ {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Neighbors(int(u)) {
				if _, ok := visited[v]; ok {
					continue
				}
				visited[v] = struct{}{}
				order = append(order, int(v))
				next = append(next, v)
				if maxNodes > 0 && len(order) >= maxNodes {
					sub, ids := g.InducedSubgraph(order)
					return sub, ids, nil
				}
			}
		}
		frontier = next
	}
	sub, ids := g.InducedSubgraph(order)
	return sub, ids, nil
}

// WalkStoreConfig configures preprocessing.
type WalkStoreConfig struct {
	Walks  int // walks per seed (R)
	Length int // steps per walk (L)
}

// WalkStore holds preprocessed walk sets for a set of seed nodes.
type WalkStore struct {
	g   *graph.CSR
	cfg WalkStoreConfig

	// walks[seed] is the flat R×(L+1) walk matrix (node IDs).
	walks map[int32][]int32
	// nodeSet[seed] is the sorted deduplicated node list of all walks.
	nodeSet map[int32][]int32
	// rpe[seed][node] is the landing-count profile: entry t counts how many
	// of the seed's walks are at `node` at step t, normalized by R — the
	// SUREL relative positional encoding.
	rpe map[int32]map[int32][]float32
}

// NewWalkStore validates the configuration.
func NewWalkStore(g *graph.CSR, cfg WalkStoreConfig) (*WalkStore, error) {
	if cfg.Walks < 1 || cfg.Length < 1 {
		return nil, fmt.Errorf("subgraph: need positive Walks and Length, got %d/%d", cfg.Walks, cfg.Length)
	}
	return &WalkStore{
		g:       g,
		cfg:     cfg,
		walks:   make(map[int32][]int32),
		nodeSet: make(map[int32][]int32),
		rpe:     make(map[int32]map[int32][]float32),
	}, nil
}

// Preprocess samples and stores walk sets for the given seeds. Seeds
// already stored are skipped (incremental preprocessing for streaming
// workloads, the GENTI concern). Intentionally sequential: the walks all
// draw from one caller-provided RNG stream, and splitting that stream
// across workers would change which numbers each walk sees.
func (ws *WalkStore) Preprocess(seeds []int, rng *rand.Rand) error {
	for _, s := range seeds {
		if s < 0 || s >= ws.g.N {
			return fmt.Errorf("subgraph: seed %d out of range [0,%d)", s, ws.g.N)
		}
		seed := int32(s)
		if _, ok := ws.walks[seed]; ok {
			continue
		}
		r, l := ws.cfg.Walks, ws.cfg.Length
		flat := make([]int32, r*(l+1))
		prof := make(map[int32][]float32)
		touch := func(node int32, step int) {
			p, ok := prof[node]
			if !ok {
				p = make([]float32, l+1)
				prof[node] = p
			}
			p[step]++
		}
		for w := 0; w < r; w++ {
			cur := seed
			flat[w*(l+1)] = cur
			touch(cur, 0)
			for t := 1; t <= l; t++ {
				ns := ws.g.Neighbors(int(cur))
				if len(ns) > 0 {
					cur = ns[rng.IntN(len(ns))]
				}
				flat[w*(l+1)+t] = cur
				touch(cur, t)
			}
		}
		invR := float32(1) / float32(r)
		nodes := make([]int32, 0, len(prof))
		for node, p := range prof {
			for t := range p {
				p[t] *= invR
			}
			nodes = append(nodes, node)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		ws.walks[seed] = flat
		ws.nodeSet[seed] = nodes
		ws.rpe[seed] = prof
	}
	return nil
}

// Has reports whether a seed's walk set is stored.
func (ws *WalkStore) Has(seed int) bool {
	_, ok := ws.walks[int32(seed)]
	return ok
}

// NodeSet returns the stored deduplicated node set of a seed (sorted).
func (ws *WalkStore) NodeSet(seed int) ([]int32, error) {
	ns, ok := ws.nodeSet[int32(seed)]
	if !ok {
		return nil, fmt.Errorf("subgraph: seed %d not preprocessed", seed)
	}
	return ns, nil
}

// StorageBytes estimates resident index size: walk matrices plus node sets
// plus RPE profiles.
func (ws *WalkStore) StorageBytes() int {
	bytes := 0
	for _, f := range ws.walks {
		bytes += 4 * len(f)
	}
	for _, ns := range ws.nodeSet {
		bytes += 4 * len(ns)
	}
	for _, prof := range ws.rpe {
		for _, p := range prof {
			bytes += 4*len(p) + 16
		}
	}
	return bytes
}

// JoinResult is the assembled query subgraph for a node pair.
type JoinResult struct {
	// Nodes is the union of the two walk node sets (sorted, original IDs).
	Nodes []int32
	// Features is the SUREL joint encoding: for node i, the concatenated
	// landing profiles relative to u and to v (2·(L+1) columns). Nodes never
	// visited from one endpoint have zeros in that half — exactly the
	// signal subgraph models use to tell "close to u only" from "between
	// u and v".
	Features *tensor.Matrix
}

// Join assembles the query structure for the pair (u, v) from stored sets.
// Both endpoints must have been preprocessed.
func (ws *WalkStore) Join(u, v int) (*JoinResult, error) {
	su, ok := ws.nodeSet[int32(u)]
	if !ok {
		return nil, fmt.Errorf("subgraph: seed %d not preprocessed", u)
	}
	sv, ok := ws.nodeSet[int32(v)]
	if !ok {
		return nil, fmt.Errorf("subgraph: seed %d not preprocessed", v)
	}
	union := mergeSorted(su, sv)
	l := ws.cfg.Length
	feats := tensor.New(len(union), 2*(l+1))
	pu, pv := ws.rpe[int32(u)], ws.rpe[int32(v)]
	// Feature assembly reads the two (immutable) RPE profile maps and
	// writes disjoint rows of feats — chunk it over internal/par; output is
	// bitwise identical to the sequential loop.
	par.Range(len(union), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			node := union[i]
			row := feats.Row(i)
			if p, ok := pu[node]; ok {
				for t, c := range p {
					row[t] = float64(c)
				}
			}
			if p, ok := pv[node]; ok {
				for t, c := range p {
					row[l+1+t] = float64(c)
				}
			}
		}
	})
	return &JoinResult{Nodes: union, Features: feats}, nil
}

func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// InducedQuerySubgraph materializes the induced subgraph over a join's
// node union — for models that also need the edges, not just the RPE
// features.
func (ws *WalkStore) InducedQuerySubgraph(jr *JoinResult) (*graph.CSR, []int) {
	nodes := make([]int, len(jr.Nodes))
	for i, v := range jr.Nodes {
		nodes[i] = int(v)
	}
	return ws.g.InducedSubgraph(nodes)
}

// ReuseRatio reports, for a batch of preprocessed pair queries, the
// fraction of walk-set fetches served from storage versus total fetches —
// 1.0 means every query reused existing sets. With fresh extraction this
// would be 0; the gap is SUREL's throughput claim.
func ReuseRatio(pairQueries [][2]int, preprocessedBefore map[int]bool) float64 {
	if len(pairQueries) == 0 {
		return 0
	}
	hits, total := 0, 0
	seen := make(map[int]bool, len(preprocessedBefore))
	for k, v := range preprocessedBefore {
		seen[k] = v
	}
	for _, pq := range pairQueries {
		for _, endpoint := range pq {
			total++
			if seen[endpoint] {
				hits++
			}
			seen[endpoint] = true
		}
	}
	return float64(hits) / float64(total)
}
