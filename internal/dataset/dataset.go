// Package dataset generates synthetic node-classification benchmarks with
// directly controllable difficulty knobs. The tutorial's evaluation
// workloads (Papers100M-class citation graphs, heterophilous social graphs)
// are not available offline, so every experiment runs on stochastic block
// model graphs with class-conditional Gaussian features where the
// controlling variable — size, degree, homophily, feature noise — can be
// swept exactly. See DESIGN.md "Substitutions" for why this preserves the
// claims under test.
package dataset

import (
	"fmt"
	"math/rand/v2"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

// Dataset is a node-classification task.
type Dataset struct {
	G          *graph.CSR
	X          *tensor.Matrix // node features, n x d
	Labels     []int          // class per node
	NumClasses int

	TrainIdx, ValIdx, TestIdx []int
}

// Config controls generation.
type Config struct {
	Nodes      int
	Classes    int
	AvgDegree  float64
	Homophily  float64 // fraction of edges inside a class, in [0,1]
	FeatureDim int
	// NoiseStd scales the Gaussian noise added to the unit-separated class
	// means; higher values force models to rely on graph structure.
	NoiseStd float64
	// TrainFrac/ValFrac split nodes (remainder is test).
	TrainFrac, ValFrac float64
	Seed               uint64
}

// DefaultConfig returns a mid-sized homophilous task.
func DefaultConfig() Config {
	return Config{
		Nodes: 3000, Classes: 5, AvgDegree: 10, Homophily: 0.8,
		FeatureDim: 32, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 42,
	}
}

// Generate builds the graph, features, labels, and splits.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("dataset: need >= 2 classes, got %d", cfg.Classes)
	}
	if cfg.FeatureDim < 1 {
		return nil, fmt.Errorf("dataset: need >= 1 feature dim, got %d", cfg.FeatureDim)
	}
	if cfg.TrainFrac < 0 || cfg.ValFrac < 0 || cfg.TrainFrac+cfg.ValFrac > 1 {
		return nil, fmt.Errorf("dataset: bad split fractions %v/%v", cfg.TrainFrac, cfg.ValFrac)
	}
	rng := tensor.NewRand(cfg.Seed)
	g, labels, err := graph.SBM(graph.SBMConfig{
		Nodes: cfg.Nodes, Blocks: cfg.Classes,
		AvgDegree: cfg.AvgDegree, Homophily: cfg.Homophily,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("dataset: graph generation: %w", err)
	}
	x := classFeatures(labels, cfg.Classes, cfg.FeatureDim, cfg.NoiseStd, rng)
	ds := &Dataset{G: g, X: x, Labels: labels, NumClasses: cfg.Classes}
	ds.TrainIdx, ds.ValIdx, ds.TestIdx = Split(cfg.Nodes, cfg.TrainFrac, cfg.ValFrac, rng)
	return ds, nil
}

// classFeatures draws per-class unit-norm random means and adds N(0, std²)
// noise per node.
func classFeatures(labels []int, classes, dim int, std float64, rng *rand.Rand) *tensor.Matrix {
	means := tensor.RandNormal(classes, dim, 1, rng)
	for c := 0; c < classes; c++ {
		tensor.Normalize(means.Row(c))
	}
	x := tensor.RandNormal(len(labels), dim, std, rng)
	for i, c := range labels {
		row := x.Row(i)
		for j, m := range means.Row(c) {
			row[j] += m
		}
	}
	return x
}

// Split partitions [0, n) into train/val/test index sets by shuffled
// assignment.
func Split(n int, trainFrac, valFrac float64, rng *rand.Rand) (train, val, test []int) {
	perm := tensor.Perm(n, rng)
	nTrain := int(trainFrac * float64(n))
	nVal := int(valFrac * float64(n))
	train = append([]int(nil), perm[:nTrain]...)
	val = append([]int(nil), perm[nTrain:nTrain+nVal]...)
	test = append([]int(nil), perm[nTrain+nVal:]...)
	return train, val, test
}

// EdgeHomophily measures the fraction of undirected edges joining
// same-label endpoints — the empirical homophily h of the generated graph.
func EdgeHomophily(g *graph.CSR, labels []int) float64 {
	edges := g.UndirectedEdges()
	if len(edges) == 0 {
		return 0
	}
	same := 0
	for _, e := range edges {
		if labels[e.U] == labels[e.V] {
			same++
		}
	}
	return float64(same) / float64(len(edges))
}

// LabelsAt gathers labels at the given node indices.
func LabelsAt(labels []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = labels[v]
	}
	return out
}
