package dataset

import (
	"math"
	"testing"

	"scalegnn/internal/tensor"
)

func TestGenerateBasics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 500
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.G.N != 500 || ds.X.Rows != 500 || ds.X.Cols != cfg.FeatureDim {
		t.Fatalf("shapes: n=%d x=%dx%d", ds.G.N, ds.X.Rows, ds.X.Cols)
	}
	if len(ds.Labels) != 500 {
		t.Fatal("labels length")
	}
	for _, y := range ds.Labels {
		if y < 0 || y >= cfg.Classes {
			t.Fatalf("label %d out of range", y)
		}
	}
	// Splits partition all nodes.
	total := len(ds.TrainIdx) + len(ds.ValIdx) + len(ds.TestIdx)
	if total != 500 {
		t.Errorf("splits cover %d of 500", total)
	}
	seen := make(map[int]bool)
	for _, set := range [][]int{ds.TrainIdx, ds.ValIdx, ds.TestIdx} {
		for _, v := range set {
			if seen[v] {
				t.Fatalf("node %d in two splits", v)
			}
			seen[v] = true
		}
	}
}

func TestGenerateHomophilyControl(t *testing.T) {
	for _, h := range []float64{0.1, 0.9} {
		cfg := DefaultConfig()
		cfg.Nodes = 2000
		cfg.Homophily = h
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		measured := EdgeHomophily(ds.G, ds.Labels)
		if math.Abs(measured-h) > 0.2 {
			t.Errorf("requested h=%v, measured %v", h, measured)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 300
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Error("same seed produced different graphs")
	}
	if !a.X.Equal(b.X, 0) {
		t.Error("same seed produced different features")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Classes = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("1 class should error")
	}
	cfg = DefaultConfig()
	cfg.FeatureDim = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("0 features should error")
	}
	cfg = DefaultConfig()
	cfg.TrainFrac = 0.8
	cfg.ValFrac = 0.5
	if _, err := Generate(cfg); err == nil {
		t.Error("overlapping splits should error")
	}
}

func TestFeaturesClassSeparated(t *testing.T) {
	// With low noise, per-class feature means must be far apart relative to
	// within-class scatter.
	cfg := DefaultConfig()
	cfg.Nodes = 1000
	cfg.NoiseStd = 0.1
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	means := make([][]float64, cfg.Classes)
	counts := make([]float64, cfg.Classes)
	for i := range means {
		means[i] = make([]float64, cfg.FeatureDim)
	}
	for i, c := range ds.Labels {
		counts[c]++
		for j, v := range ds.X.Row(i) {
			means[c][j] += v
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= counts[c]
		}
	}
	// Any two class means should differ by ~sqrt(2) for random unit means.
	var d float64
	for j := range means[0] {
		diff := means[0][j] - means[1][j]
		d += diff * diff
	}
	if math.Sqrt(d) < 0.5 {
		t.Errorf("class means too close: %v", math.Sqrt(d))
	}
}

func TestSplitFractions(t *testing.T) {
	rng := tensor.NewRand(1)
	train, val, test := Split(100, 0.6, 0.2, rng)
	if len(train) != 60 || len(val) != 20 || len(test) != 20 {
		t.Errorf("split sizes %d/%d/%d", len(train), len(val), len(test))
	}
}

func TestLabelsAt(t *testing.T) {
	labels := []int{5, 6, 7, 8}
	got := LabelsAt(labels, []int{2, 0})
	if got[0] != 7 || got[1] != 5 {
		t.Errorf("LabelsAt = %v", got)
	}
}
