package dataset

import (
	"bufio"
	"fmt"
	"os"
	"strconv"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

// Load builds a dataset from an edge-list file (plus an optional label
// file, one class id per line) with synthetic class-conditional features,
// or generates a fully synthetic task when graphPath is empty. It is the
// shared dataset path of the CLIs: gnntrain and gnnserve must construct
// bit-identical datasets from the same flags, or the training-run
// fingerprint that guards snapshot restore would never match.
func Load(graphPath, labelPath string, cfg Config) (*Dataset, error) {
	if graphPath == "" {
		return Generate(cfg)
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return nil, err
	}
	//lint:ignore unchecked-error file is open read-only; Close cannot lose data
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return nil, err
	}
	var labels []int
	numClasses := cfg.Classes
	if labelPath != "" {
		labels, numClasses, err = readLabels(labelPath, g.N)
		if err != nil {
			return nil, err
		}
	} else {
		// No labels: synthesize block labels by round-robin (toy fallback).
		labels = make([]int, g.N)
		for i := range labels {
			labels[i] = i % numClasses
		}
	}
	rng := tensor.NewRand(cfg.Seed)
	x := tensor.RandNormal(g.N, cfg.FeatureDim, cfg.NoiseStd, rng)
	means := tensor.RandNormal(numClasses, cfg.FeatureDim, 1, rng)
	for i, y := range labels {
		row := x.Row(i)
		for j, m := range means.Row(y) {
			row[j] += m
		}
	}
	train, val, test := Split(g.N, cfg.TrainFrac, cfg.ValFrac, rng)
	return &Dataset{
		G: g, X: x, Labels: labels, NumClasses: numClasses,
		TrainIdx: train, ValIdx: val, TestIdx: test,
	}, nil
}

// readLabels parses one integer class per line; class count is
// max(label)+1.
func readLabels(path string, n int) ([]int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	//lint:ignore unchecked-error file is open read-only; Close cannot lose data
	defer f.Close()
	sc := bufio.NewScanner(f)
	labels := make([]int, 0, n)
	maxLabel := 0
	for sc.Scan() {
		y, err := strconv.Atoi(sc.Text())
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: %w", len(labels)+1, err)
		}
		labels = append(labels, y)
		if y > maxLabel {
			maxLabel = y
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(labels) != n {
		return nil, 0, fmt.Errorf("%d labels for %d nodes", len(labels), n)
	}
	return labels, maxLabel + 1, nil
}
