package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllRegisteredAndOrdered(t *testing.T) {
	all := All()
	if len(all) != 22 { // F1 + E1..E21
		t.Fatalf("registered %d experiments, want 22", len(all))
	}
	if all[0].ID != "F1" {
		t.Errorf("first experiment = %s, want F1", all[0].ID)
	}
	want := []string{"F1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21"}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("position %d: %s, want %s", i, e.ID, want[i])
		}
		if e.Anchor == "" || e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("E1"); !ok {
		t.Error("E1 should exist")
	}
	if _, ok := Get("E99"); ok {
		t.Error("E99 should not exist")
	}
}

// TestEveryExperimentRunsQuick executes all experiments in quick mode and
// sanity-checks their tables. This is the integration test of the whole
// reproduction: every claim's harness must produce a well-formed result.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes ~minutes")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("%s row %d: %d cells for %d columns", e.ID, i, len(row), len(tbl.Header))
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatalf("%s: render: %v", e.ID, err)
			}
			if !strings.Contains(buf.String(), tbl.ID) {
				t.Errorf("%s: render missing ID", e.ID)
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "X1", Title: "test", Claim: "c",
		Header:  []string{"a", "bb"},
		Notes:   []string{"a note"},
		Verdict: "fine",
	}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"X1", "claim: c", "a note", "verdict: fine", "bb"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestFnum(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1234:   "1.23e+03",
		2.5:    "2.500",
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := fnum(in); got != want {
			t.Errorf("fnum(%v) = %q, want %q", in, got, want)
		}
	}
}
