package bench

import (
	"fmt"
	"strings"
	"time"

	"scalegnn/internal/core"
	"scalegnn/internal/graph"
	"scalegnn/internal/hublabel"
	"scalegnn/internal/ppr"
	"scalegnn/internal/sampling"
	"scalegnn/internal/tensor"
)

func init() {
	register(Experiment{ID: "F1", Anchor: "Figure 1", Title: "Taxonomy completeness", Run: runF1})
	register(Experiment{ID: "E1", Anchor: "3.1.3", Title: "Neighborhood explosion vs sampled receptive field", Run: runE1})
	register(Experiment{ID: "E7", Anchor: "3.2.2", Title: "Hub labeling: SPD query vs BFS", Run: runE7})
	register(Experiment{ID: "E13", Anchor: "3.1.2", Title: "PPR estimators: push vs power iteration vs Monte Carlo", Run: runE13})
}

// runF1 prints the Figure 1 inventory and asserts completeness.
func runF1(cfg Config) (*Table, error) {
	if err := core.Verify(); err != nil {
		return nil, err
	}
	t := &Table{
		ID: "F1", Title: "Figure 1 taxonomy → implementation inventory",
		Claim:  "every taxonomy leaf of the tutorial's Figure 1 is implemented",
		Header: []string{"section", "branch", "leaf", "package", "symbols", "models"},
	}
	for _, tech := range core.Registry() {
		t.AddRow(tech.Section, tech.Branch, tech.Leaf, tech.Package,
			strings.Join(tech.Symbols, ","), tech.Representative)
	}
	t.Verdict = fmt.Sprintf("%d/%d leaves implemented", len(core.Registry()), len(core.Registry()))
	return t, nil
}

// runE1 measures the exact L-hop computation-graph size against sampled
// fan-out sizes — the neighborhood-explosion curve.
func runE1(cfg Config) (*Table, error) {
	n := 500000
	if cfg.Quick {
		n = 20000
	}
	rng := tensor.NewRand(cfg.Seed)
	g := graph.BarabasiAlbert(n, 4, rng)
	batch := make([]int32, 256)
	for i := range batch {
		batch[i] = int32(i * (n / len(batch)))
	}
	s5, err := sampling.NewNeighborSampler(g, 5)
	if err != nil {
		return nil, err
	}
	s10, err := sampling.NewNeighborSampler(g, 10)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E1", Title: fmt.Sprintf("Receptive field of a 256-node batch (BA graph, n=%d, m̄=4)", n),
		Claim:  "full L-layer receptive field explodes toward n; fan-out sampling caps it",
		Header: []string{"layers", "full field", "frac of n", "sampled f=5", "sampled f=10"},
	}
	var full3, samp3 int
	for l := 1; l <= 4; l++ {
		full := sampling.ReceptiveField(g, batch, l)
		samp5 := sampling.SampledFieldSize(s5, batch, l, rng)
		samp10 := sampling.SampledFieldSize(s10, batch, l, rng)
		t.AddRow(fmt.Sprintf("%d", l), fmt.Sprintf("%d", full),
			fnum(float64(full)/float64(n)), fmt.Sprintf("%d", samp5), fmt.Sprintf("%d", samp10))
		if l == 3 {
			full3, samp3 = full, samp5
		}
	}
	t.Verdict = fmt.Sprintf("at L=3 the full field already covers %.0f%% of the graph; f=5 sampling visits %.1fx fewer nodes",
		100*float64(full3)/float64(n), float64(full3)/float64(samp3))
	return t, nil
}

// runE7 compares hub-label queries against per-query BFS.
func runE7(cfg Config) (*Table, error) {
	// Pruned-landmark-labeling build cost grows superlinearly (~n^1.7 on BA
	// graphs); n=10000 keeps the full run in tens of seconds while leaving
	// the query-vs-BFS gap unmistakable.
	n := 10000
	queries := 20000
	if cfg.Quick {
		n, queries = 3000, 2000
	}
	rng := tensor.NewRand(cfg.Seed)
	t := &Table{
		ID: "E7", Title: "Hub labeling (pruned landmark labeling) vs BFS distance queries",
		Claim:  "hub-label SPD queries run orders of magnitude faster than BFS at modest index cost (DHIL-GT)",
		Header: []string{"graph", "build", "avg label", "index MB", "query/op", "bfs/op", "speedup"},
	}
	sbm, _, err := graph.SBM(graph.SBMConfig{Nodes: n, Blocks: 8, AvgDegree: 10, Homophily: 0.8}, rng)
	if err != nil {
		return nil, err
	}
	graphs := []struct {
		name string
		g    *graph.CSR
	}{
		{"BA", graph.BarabasiAlbert(n, 5, rng)},
		{"SBM", sbm},
	}
	for _, tc := range graphs {
		buildStart := time.Now()
		ix, err := hublabel.Build(tc.g)
		if err != nil {
			return nil, err
		}
		buildTime := time.Since(buildStart)

		qStart := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := ix.Query(i%tc.g.N, (i*7919+13)%tc.g.N); err != nil {
				return nil, err
			}
		}
		perQuery := time.Since(qStart) / time.Duration(queries)

		bfsRuns := 30
		bStart := time.Now()
		for i := 0; i < bfsRuns; i++ {
			tc.g.BFSDistances(i % tc.g.N)
		}
		perBFS := time.Since(bStart) / time.Duration(bfsRuns)

		speedup := float64(perBFS) / float64(perQuery)
		t.AddRow(tc.name, buildTime.Round(time.Millisecond).String(),
			fnum(ix.AvgLabelSize()),
			fnum(float64(ix.TotalEntries()*8)/1e6),
			perQuery.String(), perBFS.String(), fnum(speedup))
	}
	t.Notes = append(t.Notes,
		"degree-ordered PLL favors small-world/power-law graphs; on meshes (grids, road networks) "+
			"all degrees tie and labels blow up — those need highway-style orderings (out of scope)")
	t.Verdict = "hub-label queries are microsecond-scale; BFS is millisecond-scale per query"
	return t, nil
}

// runE13 compares the three PPR estimators on time and accuracy.
func runE13(cfg Config) (*Table, error) {
	n := 100000
	sources := 20
	if cfg.Quick {
		n, sources = 10000, 5
	}
	rng := tensor.NewRand(cfg.Seed)
	g := graph.BarabasiAlbert(n, 5, rng)
	alpha := 0.15
	exactCfg := ppr.Config{Alpha: alpha, MaxIter: 200, Tol: 1e-10}

	type row struct {
		name string
		dur  time.Duration
		l1   float64
		prec float64
		work string
	}
	var rows []row
	// Reference: tight power iteration.
	var exact [][]float64
	var exactTop []map[int]bool
	const topK = 10
	refStart := time.Now()
	for s := 0; s < sources; s++ {
		p, _, converged, err := ppr.PowerIteration(g, s, exactCfg)
		if err != nil {
			return nil, err
		}
		if !converged {
			return nil, fmt.Errorf("bench: reference PPR for source %d did not converge", s)
		}
		exact = append(exact, p)
	}
	refDur := time.Since(refStart) / time.Duration(sources)
	for s := 0; s < sources; s++ {
		truth := make(map[int]bool, topK)
		for _, e := range ppr.TopK(exact[s], topK) {
			truth[e.Node] = true
		}
		exactTop = append(exactTop, truth)
	}
	rows = append(rows, row{"power(1e-10)", refDur, 0, 1, fmt.Sprintf("%d edges/iter", g.NumEdges())})

	l1err := func(est []float64, s int) float64 {
		var e float64
		for i := range est {
			d := est[i] - exact[s][i]
			if d < 0 {
				d = -d
			}
			e += d
		}
		return e
	}
	// precision@topK against the exact top set — the query a PPR-based
	// decoupled GNN actually issues.
	precAt := func(est []float64, s int) float64 {
		hits := 0
		for _, e := range ppr.TopK(est, topK) {
			if exactTop[s][e.Node] {
				hits++
			}
		}
		return float64(hits) / float64(topK)
	}
	for _, eps := range []float64{1e-5, 1e-6, 1e-7} {
		pushCfg := ppr.Config{Alpha: alpha, Epsilon: eps}
		start := time.Now()
		var worst, prec float64
		var pushes int
		for s := 0; s < sources; s++ {
			res, err := ppr.ForwardPush(g, s, pushCfg)
			if err != nil {
				return nil, err
			}
			pushes += res.Pushes
			if e := l1err(res.Estimate, s); e > worst {
				worst = e
			}
			prec += precAt(res.Estimate, s)
		}
		rows = append(rows, row{fmt.Sprintf("push(ε=%.0e)", eps),
			time.Since(start) / time.Duration(sources), worst, prec / float64(sources),
			fmt.Sprintf("%d pushes", pushes/sources)})
	}
	for _, walks := range []int{1000, 10000} {
		start := time.Now()
		var worst, prec float64
		for s := 0; s < sources; s++ {
			est, err := ppr.MonteCarlo(g, s, walks, alpha, rng)
			if err != nil {
				return nil, err
			}
			if e := l1err(est, s); e > worst {
				worst = e
			}
			prec += precAt(est, s)
		}
		rows = append(rows, row{fmt.Sprintf("mc(w=%d)", walks),
			time.Since(start) / time.Duration(sources), worst, prec / float64(sources),
			fmt.Sprintf("%d walks", walks)})
	}
	t := &Table{
		ID: "E13", Title: fmt.Sprintf("Single-source PPR on BA graph (n=%d, α=%.2f), mean over %d sources", n, alpha, sources),
		Claim:  "forward push reaches ε-accuracy locally, far cheaper than O(m)-per-iteration power iteration; MC error ~ 1/√w",
		Header: []string{"method", "time/source", "worst L1 err", "prec@10", "work"},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.dur.Round(time.Microsecond).String(), fnum(r.l1), fnum(r.prec), r.work)
	}
	t.Verdict = "push is output-sensitive: 40x faster at loose ε for local mass, but per-node error grows " +
		"as ε·deg, so ranking hubs on heavy-tailed graphs needs tight ε where costs converge with power iteration"
	return t, nil
}
