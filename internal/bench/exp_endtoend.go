package bench

import (
	"fmt"
	"time"

	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
)

func init() {
	register(Experiment{ID: "E2", Anchor: "3.1.2", Title: "Decoupled vs iterative training cost", Run: runE2})
	register(Experiment{ID: "E12", Anchor: "3.1.3", Title: "End-to-end model family comparison", Run: runE12})
}

// runE2 isolates the decoupling claim: per-epoch cost and peak memory of
// full-batch GCN vs decoupled SGC/SIGN at matched accuracy.
func runE2(cfg Config) (*Table, error) {
	nodes, epochs := 50000, 40
	if cfg.Quick {
		nodes, epochs = 5000, 15
	}
	ds, err := dataset.Generate(dataset.Config{
		Nodes: nodes, Classes: 5, AvgDegree: 10, Homophily: 0.8,
		FeatureDim: 32, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Patience = 0 // fixed epochs for a fair per-epoch comparison
	tcfg.BatchSize = 1024

	t := &Table{
		ID: "E2", Title: fmt.Sprintf("Decoupled propagation vs full-batch GCN (SBM n=%d, %d epochs)", nodes, epochs),
		Claim:  "decoupling shifts graph work to a one-time precompute; per-epoch cost and resident memory drop by orders of magnitude at equal accuracy",
		Header: []string{"model", "precompute", "epoch time", "peak MFloats", "test acc"},
	}
	var gcnEpoch, bestDecoupledEpoch time.Duration
	add := func(m models.Trainer) error {
		rep, err := m.Fit(ds, tcfg)
		if err != nil {
			return err
		}
		t.AddRow(rep.Model, rep.Precompute.Round(time.Millisecond).String(),
			rep.EpochTime.Round(time.Microsecond).String(),
			fnum(float64(rep.PeakFloats)/1e6), fnum(rep.TestAcc))
		switch m.(type) {
		case *models.GCN:
			gcnEpoch = rep.EpochTime
		default:
			if bestDecoupledEpoch == 0 || rep.EpochTime < bestDecoupledEpoch {
				bestDecoupledEpoch = rep.EpochTime
			}
		}
		return nil
	}
	gcn, err := models.NewGCN(2)
	if err != nil {
		return nil, err
	}
	if err := add(gcn); err != nil {
		return nil, err
	}
	sgc, err := models.NewSGC(2)
	if err != nil {
		return nil, err
	}
	if err := add(sgc); err != nil {
		return nil, err
	}
	sign, err := models.NewSIGN(3)
	if err != nil {
		return nil, err
	}
	if err := add(sign); err != nil {
		return nil, err
	}
	if bestDecoupledEpoch > 0 {
		t.Verdict = fmt.Sprintf("decoupled epoch is %.1fx faster than full-batch GCN",
			float64(gcnEpoch)/float64(bestDecoupledEpoch))
	}
	return t, nil
}

// runE12 runs every model family on one mid-sized task.
func runE12(cfg Config) (*Table, error) {
	nodes, epochs := 20000, 60
	if cfg.Quick {
		nodes, epochs = 3000, 25
	}
	ds, err := dataset.Generate(dataset.Config{
		Nodes: nodes, Classes: 5, AvgDegree: 12, Homophily: 0.8,
		FeatureDim: 32, NoiseStd: 1.2, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Patience = 20
	tcfg.BatchSize = 1024

	t := &Table{
		ID: "E12", Title: fmt.Sprintf("Model family comparison (SBM n=%d, h=0.8)", nodes),
		Claim:  "scalable families trade precompute for per-epoch cost; decoupled models dominate the time-at-accuracy frontier on homophilous graphs",
		Header: []string{"model", "family", "test acc", "macro F1", "precompute", "epoch", "peak MFloats"},
	}
	type entry struct {
		family string
		make   func() (models.Trainer, error)
	}
	entries := []entry{
		{"full-batch", func() (models.Trainer, error) { return models.NewGCN(2) }},
		{"node sampling", func() (models.Trainer, error) { return models.NewGraphSAGE(2, 5) }},
		{"partition", func() (models.Trainer, error) { return models.NewClusterGCN(2, 8) }},
		{"decoupled", func() (models.Trainer, error) { return models.NewSGC(2) }},
		{"decoupled-PPR", func() (models.Trainer, error) { return models.NewAPPNP(10, 0.15) }},
		{"decoupled-multihop", func() (models.Trainer, error) { return models.NewSIGN(3) }},
		{"decoupled-attention", func() (models.Trainer, error) { return models.NewGAMLP(3) }},
		{"multi-filter", func() (models.Trainer, error) { return models.NewLD2(2) }},
	}
	if !cfg.Quick {
		entries = append(entries, entry{"implicit", func() (models.Trainer, error) { return models.NewImplicitNet(0.8, nil) }})
	}
	for _, e := range entries {
		m, err := e.make()
		if err != nil {
			return nil, err
		}
		mcfg := tcfg
		if e.family == "implicit" {
			// Each implicit epoch needs multiple equilibrium solves over the
			// full graph; cap its epochs so E12 completes in minutes.
			mcfg.Epochs = min(tcfg.Epochs, 15)
		}
		rep, err := m.Fit(ds, mcfg)
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", m.Name(), err)
		}
		t.AddRow(rep.Model, e.family, fnum(rep.TestAcc), fnum(rep.TestF1),
			rep.Precompute.Round(time.Millisecond).String(),
			rep.EpochTime.Round(time.Microsecond).String(),
			fnum(float64(rep.PeakFloats)/1e6))
	}
	t.Verdict = "decoupled variants reach full-batch accuracy at a fraction of per-epoch time and memory"
	return t, nil
}
