package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestDistBenchQuick runs the smallest shard matrix end to end: every
// configuration must complete, shard counts above 1 must move real frame
// bytes, and strict sync mode must never substitute a stale row.
func TestDistBenchQuick(t *testing.T) {
	// No -short skip: this is the only test exercising the bench package's
	// shard goroutines, so the check.sh race pass must cover it.
	results, err := RunDistBench(true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5 (1 shard sync + {2,4} shards × {sync,stale})", len(results))
	}
	for _, r := range results {
		if r.EpochSeconds <= 0 {
			t.Errorf("%s: epoch_seconds %v", r.Name, r.EpochSeconds)
		}
		if r.Shards > 1 && r.WireBytes == 0 {
			t.Errorf("%s: no wire traffic across %d shards", r.Name, r.Shards)
		}
		if r.Mode == "sync" && r.StaleHits != 0 {
			t.Errorf("%s: %d stale hits in strict sync mode", r.Name, r.StaleHits)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_dist.json")
	if err := WriteDistBenchJSON(path, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep DistBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Bench != "dist" || len(rep.Results) != len(results) {
		t.Fatalf("report bench=%q results=%d, want dist/%d", rep.Bench, len(rep.Results), len(results))
	}
}
