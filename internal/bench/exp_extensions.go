package bench

import (
	"fmt"
	"time"

	"scalegnn/internal/dataset"
	"scalegnn/internal/dynamic"
	"scalegnn/internal/graph"
	"scalegnn/internal/linkpred"
	"scalegnn/internal/metrics"
	"scalegnn/internal/models"
	"scalegnn/internal/rewire"
	"scalegnn/internal/subgraph"
	"scalegnn/internal/tensor"
)

func init() {
	register(Experiment{ID: "E14", Anchor: "3.2.2", Title: "Similarity rewiring under heterophily (DHGR)", Run: runE14})
	register(Experiment{ID: "E15", Anchor: "3.4.2", Title: "Incremental walk maintenance on dynamic graphs (GENTI)", Run: runE15})
	register(Experiment{ID: "E16", Anchor: "3.3.1", Title: "Node-adaptive inference: threshold sweep (NAI)", Run: runE16})
	register(Experiment{ID: "E17", Anchor: "3.4.1", Title: "Graph Transformer: SPD-bias ablation (DHIL-GT)", Run: runE17})
	register(Experiment{ID: "E18", Anchor: "3.3.3", Title: "Link prediction from stored walk joins (SUREL)", Run: runE18})
}

// runE14 measures homophily gain and downstream accuracy of rewiring.
func runE14(cfg Config) (*Table, error) {
	nodes, epochs := 3000, 60
	if cfg.Quick {
		nodes, epochs = 800, 30
	}
	ds, err := dataset.Generate(dataset.Config{
		Nodes: nodes, Classes: 4, AvgDegree: 10, Homophily: 0.1,
		FeatureDim: 24, NoiseStd: 0.8, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Patience = 15

	t := &Table{
		ID: "E14", Title: fmt.Sprintf("Cosine rewiring on a heterophilous SBM (n=%d, h=0.1)", nodes),
		Claim:  "adding attribute-similar edges and pruning dissimilar ones raises effective homophily and recovers low-pass model accuracy (DHGR)",
		Header: []string{"config", "edges", "edge homophily", "SGC test acc"},
	}
	run := func(name string, g2 *graph.CSR) error {
		ds2 := *ds
		ds2.G = g2
		m, err := models.NewSGC(2)
		if err != nil {
			return err
		}
		rep, err := m.Fit(&ds2, tcfg)
		if err != nil {
			return err
		}
		t.AddRow(name, fmt.Sprintf("%d", g2.NumEdges()/2),
			fnum(dataset.EdgeHomophily(g2, ds.Labels)), fnum(rep.TestAcc))
		return nil
	}
	if err := run("original", ds.G); err != nil {
		return nil, err
	}
	sim := rewire.NewCosineSimilarity(ds.G, ds.X)
	for _, rc := range []rewire.Config{
		{AddK: 3},
		{PruneBelow: 0.2},
		{AddK: 3, PruneBelow: 0.2},
	} {
		res, err := rewire.Rewire(ds.G, sim, rc)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("add%d prune%.1f", rc.AddK, rc.PruneBelow)
		if err := run(name, res.G); err != nil {
			return nil, err
		}
	}
	t.Verdict = "add+prune gives the largest homophily and accuracy gain"
	return t, nil
}

// runE15 measures incremental walk maintenance against full rebuilds.
func runE15(cfg Config) (*Table, error) {
	n, seeds, events := 50000, 200, 500
	if cfg.Quick {
		n, seeds, events = 8000, 50, 100
	}
	rng := tensor.NewRand(cfg.Seed)
	static := graph.BarabasiAlbert(n, 5, rng)
	d, err := dynamic.FromCSR(static)
	if err != nil {
		return nil, err
	}
	seedIDs := make([]int, seeds)
	for i := range seedIDs {
		seedIDs[i] = (i * 211) % n
	}
	const walksPerSeed, length = 50, 4
	m, err := dynamic.NewWalkMaintainer(d, seedIDs, walksPerSeed, length, rng)
	if err != nil {
		return nil, err
	}
	incStart := time.Now()
	for e := 0; e < events; e++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if e%5 == 0 && d.Degree(u) > 1 {
			ns := d.Neighbors(u)
			w := int(ns[rng.IntN(len(ns))])
			if d.RemoveEdge(u, w) {
				m.OnEdgeEvent(u, w)
			}
		} else if d.AddEdge(u, v) {
			m.OnEdgeEvent(u, v)
		}
	}
	incTime := time.Since(incStart)

	// Full-rebuild baseline: recompute every walk set per event (measured
	// once and extrapolated).
	snap := d.Snapshot()
	ws, err := subgraph.NewWalkStore(snap, subgraph.WalkStoreConfig{Walks: walksPerSeed, Length: length})
	if err != nil {
		return nil, err
	}
	rebuildStart := time.Now()
	if err := ws.Preprocess(seedIDs, rng); err != nil {
		return nil, err
	}
	rebuildOnce := time.Since(rebuildStart)

	st := m.Stats()
	t := &Table{
		ID: "E15", Title: fmt.Sprintf("Walk maintenance over %d edge events (BA n=%d, %d seeds x %d walks)", events, n, seeds, walksPerSeed),
		Claim:  "resampling only walks through changed endpoints keeps walk indexes fresh at a tiny fraction of rebuild cost (GENTI)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("events processed", fmt.Sprintf("%d", st.Events))
	t.AddRow("walks maintained", fmt.Sprintf("%d", st.WalksTotal))
	t.AddRow("walks resampled/event", fnum(float64(st.WalksResampled)/float64(max(1, st.Events))))
	t.AddRow("resample fraction", fnum(m.ResampleFraction()))
	t.AddRow("incremental time/event", (incTime / time.Duration(max(1, st.Events))).String())
	t.AddRow("full rebuild (per event if naive)", rebuildOnce.String())
	speed := float64(rebuildOnce) * float64(st.Events) / float64(incTime)
	t.AddRow("speedup vs rebuild-per-event", fnum(speed))
	t.Verdict = "each event touches a small constant set of walks; naive rebuilds would be orders of magnitude slower"
	return t, nil
}

// runE16 sweeps the NAI confidence threshold.
func runE16(cfg Config) (*Table, error) {
	nodes, epochs := 8000, 60
	if cfg.Quick {
		nodes, epochs = 2000, 30
	}
	ds, err := dataset.Generate(dataset.Config{
		Nodes: nodes, Classes: 5, AvgDegree: 12, Homophily: 0.8,
		FeatureDim: 32, NoiseStd: 1.2, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	const K = 4
	m, err := models.NewSGC(K)
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	rep, err := m.Fit(ds, tcfg)
	if err != nil {
		return nil, err
	}
	hops := models.HopEmbeddings(ds, K)
	t := &Table{
		ID: "E16", Title: fmt.Sprintf("Node-adaptive inference on SGC-K%d (SBM n=%d)", K, nodes),
		Claim:  "confident nodes exit propagation early, cutting inference propagation with bounded accuracy loss (NAI)",
		Header: []string{"threshold", "avg hops", "prop speedup", "test acc"},
	}
	t.AddRow("full (no gate)", fmt.Sprintf("%d", K), "1.000", fnum(rep.TestAcc))
	testLabels := dataset.LabelsAt(ds.Labels, ds.TestIdx)
	for _, thr := range []float64{0.99, 0.9, 0.7, 0.5} {
		res, err := models.NAIPredict(m, hops, thr, 1)
		if err != nil {
			return nil, err
		}
		correct := 0
		for i, v := range ds.TestIdx {
			if res.Pred[v] == testLabels[i] {
				correct++
			}
		}
		acc := float64(correct) / float64(len(ds.TestIdx))
		t.AddRow(fnum(thr), fnum(res.AvgHops), fnum(res.Speedup()), fnum(acc))
	}
	t.Verdict = "lower thresholds trade accuracy for propagation savings; θ≈0.9 keeps accuracy within a point at real savings"
	return t, nil
}

// runE17 ablates the SPD bias of the graph transformer.
func runE17(cfg Config) (*Table, error) {
	nodes, epochs := 2000, 60
	if cfg.Quick {
		nodes, epochs = 600, 30
	}
	ds, err := dataset.Generate(dataset.Config{
		Nodes: nodes, Classes: 3, AvgDegree: 10, Homophily: 0.85,
		FeatureDim: 16, NoiseStd: 1.5, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Hidden = 32
	tcfg.BatchSize = 64
	tcfg.Patience = 20

	t := &Table{
		ID: "E17", Title: fmt.Sprintf("SPD-biased attention (SBM n=%d, noisy features)", nodes),
		Claim:  "hub-label SPD bias lets batch attention favor nearby (same-community) nodes; without it attention is distance-blind (DHIL-GT)",
		Header: []string{"model", "test acc", "hub-label precompute", "epoch"},
	}
	gt, err := models.NewGraphTransformer(6)
	if err != nil {
		return nil, err
	}
	rep, err := gt.Fit(ds, tcfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("transformer + SPD bias", fnum(rep.TestAcc),
		rep.Precompute.Round(time.Millisecond).String(),
		rep.EpochTime.Round(time.Microsecond).String())
	bias := gt.SPDBias()
	t.Notes = append(t.Notes, fmt.Sprintf("learned SPD bias by distance bucket: %v", fmtFloats(bias)))

	// Ablation: 2 buckets (self vs everything) ≈ distance-blind attention.
	blind, err := models.NewGraphTransformer(2)
	if err != nil {
		return nil, err
	}
	repB, err := blind.Fit(ds, tcfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("transformer, distance-blind", fnum(repB.TestAcc),
		repB.Precompute.Round(time.Millisecond).String(),
		repB.EpochTime.Round(time.Microsecond).String())

	// Reference decoupled model.
	sgc, err := models.NewSGC(2)
	if err != nil {
		return nil, err
	}
	repS, err := sgc.Fit(ds, tcfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("SGC-K2 (reference)", fnum(repS.TestAcc),
		repS.Precompute.Round(time.Millisecond).String(),
		repS.EpochTime.Round(time.Microsecond).String())
	t.Verdict = "SPD bias closes most of the gap between distance-blind attention and graph-aware models"
	return t, nil
}

func fmtFloats(xs []float64) string {
	out := "["
	for i, v := range xs {
		if i > 0 {
			out += " "
		}
		out += fnum(v)
	}
	return out + "]"
}

// runE18 evaluates link prediction over stored walk joins against the
// common-neighbors heuristic, with query-throughput accounting.
func runE18(cfg Config) (*Table, error) {
	nodes := 3000
	if cfg.Quick {
		nodes = 800
	}
	g, _, err := graph.SBM(graph.SBMConfig{
		Nodes: nodes, Blocks: 8, AvgDegree: 16, Homophily: 0.9,
	}, tensor.NewRand(cfg.Seed))
	if err != nil {
		return nil, err
	}
	task, err := linkpred.NewTask(g, 0.15, 0.3, tensor.NewRand(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E18", Title: fmt.Sprintf("Link prediction on a modular SBM (n=%d, h=0.9): walk-join features vs heuristic", nodes),
		Claim:  "subgraph features assembled from stored walk sets predict held-out links better than the common-neighbors heuristic, at index-backed query throughput (SUREL)",
		Header: []string{"predictor", "test AUC", "notes"},
	}
	cnAUC := metrics.AUC(linkpred.CommonNeighbors(task.Observed, task.TestPairs), task.TestLabels)
	t.AddRow("common neighbors", fnum(cnAUC), "heuristic, no training")

	lcfg := linkpred.DefaultConfig()
	lcfg.Seed = cfg.Seed
	m, err := linkpred.NewWalkFeatureModel(task, lcfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	trainAUC, err := m.Fit(task, lcfg)
	if err != nil {
		return nil, err
	}
	fitTime := time.Since(start)
	testAUC, err := m.Evaluate(task, lcfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("walk-join + MLP", fnum(testAUC),
		fmt.Sprintf("train AUC %.3f, fit %v (%d train pairs)", trainAUC, fitTime.Round(time.Millisecond), len(task.TrainPairs)))
	t.Verdict = "walk-join features beat the heuristic on held-out links"
	return t, nil
}
