// Package bench implements the experiment harness: one runner per
// experiment in DESIGN.md's index (F1, E1–E21), each reproducing the
// scalability claim of one tutorial section on synthetic workloads and
// printing a table. cmd/gnnbench drives it from the command line and the
// root-level benchmarks reuse its kernels.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the tutorial claim the table tests
	Header  []string
	Rows    [][]string
	Notes   []string
	Verdict string // one-line "does the shape hold" summary
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render pretty-prints the table. The table is formatted into memory and
// written with a single call, so the only error that can surface is the
// writer's.
func (t *Table) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\n=== %s: %s ===\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(&sb, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	if t.Verdict != "" {
		fmt.Fprintf(&sb, "  verdict: %s\n", t.Verdict)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Config controls experiment scale.
type Config struct {
	// Quick shrinks workloads for CI/tests; full scale is the default.
	Quick bool
	Seed  uint64
}

// Experiment is one reproducible claim test.
type Experiment struct {
	ID     string
	Anchor string // tutorial section
	Title  string
	Run    func(cfg Config) (*Table, error)
}

// registry of experiments, populated by init() in per-experiment files.
var experiments = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := experiments[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	experiments[e.ID] = e
}

// All returns experiments sorted by ID (F1 first, then E1..E13 in numeric
// order).
func All() []Experiment {
	out := make([]Experiment, 0, len(experiments))
	for _, e := range experiments {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return expLess(out[i].ID, out[j].ID) })
	return out
}

// Get returns one experiment by ID.
func Get(id string) (Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// expLess orders F* before E*, and E-numbers numerically. Non-numeric
// suffixes sort as 0; IDs are register-time constants so this never trips.
func expLess(a, b string) bool {
	pa, pb := a[0], b[0]
	if pa != pb {
		return pa == 'F'
	}
	na, _ := strconv.Atoi(a[1:])
	nb, _ := strconv.Atoi(b[1:])
	return na < nb
}

// fnum formats a float compactly for tables.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.3g", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
