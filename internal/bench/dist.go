package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"scalegnn/internal/distnet"
	"scalegnn/internal/graph"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

// dist.go benchmarks the multi-process boundary-exchange protocol in a
// single process: k in-memory shards over real unix sockets, each running
// the partitioned 2-hop propagation that dominates a distributed GNN
// epoch. Reported per configuration: wall-clock per epoch, wire volume,
// and stale substitutions — epoch time vs shard count, synchronous vs
// stale-bounded, which is the §4 scaling story in one table.

// DistResult is one row of the BENCH_dist.json report.
type DistResult struct {
	Name         string  `json:"name"`
	Shards       int     `json:"shards"`
	Mode         string  `json:"mode"` // "sync" or "stale"
	Epochs       int     `json:"epochs"`
	EpochSeconds float64 `json:"epoch_seconds"`
	WireBytes    int64   `json:"wire_bytes"` // frame bytes sent, all shards
	StaleHits    int64   `json:"stale_hits"`
	Rounds       int64   `json:"rounds"`
}

// DistBenchReport is the BENCH_dist.json document.
type DistBenchReport struct {
	Bench   string        `json:"bench"`
	Results []*DistResult `json:"results"`
}

// WriteDistBenchJSON writes the machine-readable distributed-exchange
// report.
func WriteDistBenchJSON(path string, results []*DistResult) error {
	data, err := json.MarshalIndent(DistBenchReport{Bench: "dist", Results: results}, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: dist report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: dist report: %w", err)
	}
	return nil
}

// RunDistBench runs the shard-count × staleness-mode matrix.
func RunDistBench(quick bool, seed uint64) ([]*DistResult, error) {
	nodes, dim, epochs := 20000, 32, 5
	if quick {
		nodes, dim, epochs = 3000, 16, 2
	}
	var results []*DistResult
	for _, shards := range []int{1, 2, 4} {
		for _, mode := range []string{"sync", "stale"} {
			if shards == 1 && mode == "stale" {
				continue // staleness is meaningless without peers
			}
			r, err := runDistConfig(shards, mode, nodes, dim, epochs, seed)
			if err != nil {
				return nil, fmt.Errorf("bench: dist %d-shard %s: %w", shards, mode, err)
			}
			results = append(results, r)
		}
	}
	return results, nil
}

func runDistConfig(shards int, mode string, nodes, dim, epochs int, seed uint64) (*DistResult, error) {
	addrs := make([]string, shards)
	if shards > 1 {
		dir, err := os.MkdirTemp("", "dnbench")
		if err != nil {
			return nil, err
		}
		//lint:ignore unchecked-error best-effort socket-dir cleanup
		defer os.RemoveAll(dir)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("unix:%s/s%d.sock", dir, i)
		}
	}
	clusters := make([]*distnet.Cluster, shards)
	for i := 0; i < shards; i++ {
		cfg := distnet.Config{
			Shard: i, N: shards, Addrs: addrs, Fingerprint: seed,
			PeerTimeout: 60 * time.Second,
		}
		if mode == "stale" {
			cfg.MaxStaleness = 2
			cfg.ExchangeTimeout = 100 * time.Millisecond
		}
		c, err := distnet.Open(cfg)
		if err != nil {
			for _, open := range clusters[:i] {
				//lint:ignore unchecked-error teardown on the error path
				open.Close()
			}
			return nil, err
		}
		clusters[i] = c
	}
	defer func() {
		for _, c := range clusters {
			//lint:ignore unchecked-error bench teardown
			c.Close()
		}
	}()

	sentBefore, _ := distnet.WireBytes()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i, c := range clusters {
		wg.Add(1)
		//lint:ignore naked-go each goroutine simulates one shard process, joined via wg
		go func(i int, c *distnet.Cluster) {
			defer wg.Done()
			errs[i] = runDistShard(c, nodes, dim, epochs, seed)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	sentAfter, _ := distnet.WireBytes()

	res := &DistResult{
		Name:         fmt.Sprintf("dist/2hop-propagate/%dshard/%s", shards, mode),
		Shards:       shards,
		Mode:         mode,
		Epochs:       epochs,
		EpochSeconds: elapsed.Seconds() / float64(epochs),
		WireBytes:    sentAfter - sentBefore,
	}
	for _, c := range clusters {
		s := c.Stats()
		res.StaleHits += s.StaleHits
		res.Rounds += s.Rounds
	}
	return res, nil
}

// runDistShard is one simulated shard process: it derives the shared
// deterministic dataset and partition from the seed (exactly as real
// lockstep shards do), then runs the per-epoch 2-hop halo-exchange
// propagation.
func runDistShard(c *distnet.Cluster, nodes, dim, epochs int, seed uint64) error {
	rng := tensor.NewRand(seed)
	g := graph.ErdosRenyi(nodes, 10*nodes, rng)
	parts, err := partition.LDG(g, c.N(), 1.05, tensor.NewRand(seed^0xbe_ac4))
	if err != nil {
		return err
	}
	x := tensor.RandNormal(nodes, dim, 1.0, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	plan, err := distnet.PlanBoundary(g, parts, c.Shard())
	if err != nil {
		return err
	}
	for e := 0; e < epochs; e++ {
		c.SetEpoch(e)
		if _, err := distnet.Propagate(c, op, plan, x, 2); err != nil {
			return err
		}
	}
	return nil
}
