package bench

import (
	"fmt"
	"time"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/implicit"
	"scalegnn/internal/models"
	"scalegnn/internal/simrank"
	"scalegnn/internal/tensor"
)

func init() {
	register(Experiment{ID: "E5", Anchor: "3.2.1", Title: "Spectral filters across the homophily spectrum", Run: runE5})
	register(Experiment{ID: "E6", Anchor: "3.2.2", Title: "SimRank: Monte Carlo index vs exact; heterophily aggregation signal", Run: runE6})
	register(Experiment{ID: "E8", Anchor: "3.2.3", Title: "Implicit GNN: long-range dependency and solver comparison", Run: runE8})
}

// runE5 sweeps homophily and compares the pure low-pass model (SGC) against
// the multi-filter model (LD2) and the adaptive-hop model (GAMLP).
func runE5(cfg Config) (*Table, error) {
	nodes, epochs := 4000, 80
	if cfg.Quick {
		nodes, epochs = 1200, 40
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Patience = 20

	t := &Table{
		ID: "E5", Title: fmt.Sprintf("Test accuracy vs homophily h (SBM n=%d, noisy features)", nodes),
		Claim:  "low-pass-only models collapse under heterophily; multi-filter embeddings (LD2/UniFilter) stay strong across the whole h range",
		Header: []string{"h", "MLP (no graph)", "SGC (low-pass)", "LD2 (multi-filter)", "GAMLP (adaptive)"},
	}
	var worstGapLow, worstGapHigh float64
	for _, h := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		ds, err := dataset.Generate(dataset.Config{
			Nodes: nodes, Classes: 3, AvgDegree: 16, Homophily: h,
			FeatureDim: 24, NoiseStd: 1.5, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		mlpAcc, err := mlpBaseline(ds, tcfg)
		if err != nil {
			return nil, err
		}
		accOf := func(m models.Trainer) (float64, error) {
			rep, err := m.Fit(ds, tcfg)
			if err != nil {
				return 0, err
			}
			return rep.TestAcc, nil
		}
		sgc, err := models.NewSGC(2)
		if err != nil {
			return nil, err
		}
		sgcAcc, err := accOf(sgc)
		if err != nil {
			return nil, err
		}
		ld2, err := models.NewLD2(2)
		if err != nil {
			return nil, err
		}
		ld2Acc, err := accOf(ld2)
		if err != nil {
			return nil, err
		}
		gamlp, err := models.NewGAMLP(3)
		if err != nil {
			return nil, err
		}
		gamlpAcc, err := accOf(gamlp)
		if err != nil {
			return nil, err
		}
		t.AddRow(fnum(h), fnum(mlpAcc), fnum(sgcAcc), fnum(ld2Acc), fnum(gamlpAcc))
		if h < 0.3 && ld2Acc-sgcAcc > worstGapLow {
			worstGapLow = ld2Acc - sgcAcc
		}
		if h > 0.7 {
			worstGapHigh = ld2Acc - sgcAcc
		}
	}
	t.Verdict = fmt.Sprintf("LD2 beats SGC by up to %.0f points at low h and matches it at high h (gap %.0f pts)",
		100*worstGapLow, 100*worstGapHigh)
	return t, nil
}

// mlpBaseline trains a graph-free classifier on raw features: SGC on an
// edgeless copy of the graph, where Â = I and the decoupled head sees only
// the node's own attributes.
func mlpBaseline(ds *dataset.Dataset, tcfg models.TrainConfig) (float64, error) {
	edgeless, err := graph.FromEdges(ds.G.N, nil)
	if err != nil {
		return 0, err
	}
	ds2 := *ds
	ds2.G = edgeless
	sgc, err := models.NewSGC(1)
	if err != nil {
		return 0, err
	}
	rep, err := sgc.Fit(&ds2, tcfg)
	if err != nil {
		return 0, err
	}
	return rep.TestAcc, nil
}

// runE6 benchmarks the SimRank index and demonstrates the heterophily
// aggregation signal.
func runE6(cfg Config) (*Table, error) {
	nExact, nBig := 400, 5000
	if cfg.Quick {
		nExact, nBig = 200, 1500
	}
	rng := tensor.NewRand(cfg.Seed)

	t := &Table{
		ID: "E6", Title: "SimRank computation and the global-similarity signal (SIMGA)",
		Claim:  "MC top-k SimRank matches exact ordering at sublinear query cost, and same-class pairs score higher even on heterophilous graphs",
		Header: []string{"metric", "value"},
	}
	// Part 1: precision of MC top-k vs exact on a graph small enough for
	// the exact O(n²) iteration.
	gs, labels, err := graph.SBM(graph.SBMConfig{Nodes: nExact, Blocks: 4, AvgDegree: 10, Homophily: 0.15}, rng)
	if err != nil {
		return nil, err
	}
	exact, err := simrank.AllPairs(gs, 0.6, 12)
	if err != nil {
		return nil, err
	}
	ix, err := simrank.BuildIndex(gs, simrank.IndexConfig{C: 0.6, Walks: 3000, Length: 7}, rng)
	if err != nil {
		return nil, err
	}
	const k = 10
	var precSum float64
	queries := 50
	for q := 0; q < queries; q++ {
		a := (q * 7) % gs.N
		approx, err := ix.TopK(a, k)
		if err != nil {
			return nil, err
		}
		// Exact top-k by score.
		type pair struct {
			v int
			s float64
		}
		var all []pair
		for v := 0; v < gs.N; v++ {
			if v != a {
				all = append(all, pair{v, exact.At(a, v)})
			}
		}
		// partial selection
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(all); j++ {
				if all[j].s > all[best].s {
					best = j
				}
			}
			all[i], all[best] = all[best], all[i]
		}
		truth := map[int]bool{}
		for i := 0; i < k; i++ {
			truth[all[i].v] = true
		}
		hits := 0
		for _, e := range approx {
			if truth[e.Node] {
				hits++
			}
		}
		precSum += float64(hits) / float64(k)
	}
	t.AddRow(fmt.Sprintf("MC precision@%d vs exact (n=%d)", k, nExact), fnum(precSum/float64(queries)))

	// Same-class vs cross-class mean similarity on the heterophilous graph.
	var intra, inter float64
	var ni, nx int
	// Stride 3 is coprime with the 4-block round-robin assignment, so both
	// same-class and cross-class pairs are sampled.
	for a := 0; a < gs.N; a += 3 {
		for b := a + 1; b < gs.N; b += 3 {
			if labels[a] == labels[b] {
				intra += exact.At(a, b)
				ni++
			} else {
				inter += exact.At(a, b)
				nx++
			}
		}
	}
	t.AddRow("mean s(same class) @ h=0.15", fnum(intra/float64(ni)))
	t.AddRow("mean s(cross class) @ h=0.15", fnum(inter/float64(nx)))

	// Part 2: index scalability on a larger graph.
	gb := graph.BarabasiAlbert(nBig, 6, rng)
	buildStart := time.Now()
	ixBig, err := simrank.BuildIndex(gb, simrank.DefaultIndexConfig(), rng)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(buildStart)
	qStart := time.Now()
	const bigQ = 200
	for i := 0; i < bigQ; i++ {
		if _, err := ixBig.TopK(i%gb.N, 16); err != nil {
			return nil, err
		}
	}
	t.AddRow(fmt.Sprintf("index build (n=%d)", nBig), buildTime.Round(time.Millisecond).String())
	t.AddRow("index memory", fmt.Sprintf("%.1f MB", float64(ixBig.MemoryFootprint())/1e6))
	t.AddRow("top-16 query", (time.Since(qStart) / bigQ).String())
	t.Verdict = "same-class similarity exceeds cross-class even at h=0.15 — the global signal SIMGA aggregates"
	return t, nil
}

// runE8 builds the long-range chain task and compares implicit vs finite
// GCNs, plus Picard vs eigen-decoupled solver cost.
func runE8(cfg Config) (*Table, error) {
	chains, chainLen := 30, 30
	epochs := 80
	if cfg.Quick {
		chains, chainLen, epochs = 12, 25, 30
	}
	ds, err := longRangeTask(chains, chainLen, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Patience = 0
	tcfg.Hidden = 16
	tcfg.Dropout = 0

	t := &Table{
		ID: "E8", Title: fmt.Sprintf("Long-range chain task (%d chains x %d nodes): class signal only at chain heads", chains, chainLen),
		Claim:  "an implicit (equilibrium) layer propagates signal beyond any fixed K-layer receptive field (EIGNN); multiscale operators reach further per iteration (MGNNI)",
		Header: []string{"model", "test acc", "epochs", "train time"},
	}
	addModel := func(m models.Trainer) error {
		mcfg := tcfg
		if _, ok := m.(*models.ImplicitNet); ok {
			// Equilibrium models train through a γ≈1 fixed point; they need
			// a higher LR and more epochs to pull signal across 20+ hops.
			mcfg.LR = 0.03
		}
		rep, err := m.Fit(ds, mcfg)
		if err != nil {
			return err
		}
		t.AddRow(m.Name(), fnum(rep.TestAcc), fmt.Sprintf("%d", rep.Epochs),
			rep.TrainTime.Round(time.Millisecond).String())
		return nil
	}
	gcn2, err := models.NewGCN(2)
	if err != nil {
		return nil, err
	}
	if err := addModel(gcn2); err != nil {
		return nil, err
	}
	sgc8, err := models.NewSGC(8)
	if err != nil {
		return nil, err
	}
	if err := addModel(sgc8); err != nil {
		return nil, err
	}
	// γ close to 1 keeps long-range signal alive: per-hop decay is ~γ·‖W‖,
	// and the chain task needs signal to survive ~chainLen/2 hops.
	imp, err := models.NewImplicitNet(0.95, nil)
	if err != nil {
		return nil, err
	}
	if err := addModel(imp); err != nil {
		return nil, err
	}
	impMS, err := models.NewImplicitNet(0.95, []int{1, 2})
	if err != nil {
		return nil, err
	}
	if err := addModel(impMS); err != nil {
		return nil, err
	}

	// Solver comparison on a fixed equilibrium problem.
	rng := tensor.NewRand(cfg.Seed)
	g := graph.BarabasiAlbert(3000, 5, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	b := tensor.RandNormal(g.N, 16, 1, rng)
	w := tensor.RandNormal(16, 16, 0.1, rng)
	wt := w.T()
	w.Add(wt)
	w.Scale(0.5)
	implicit.ProjectSpectralNorm(w, 0.9)
	solver, err := implicit.NewSolver(op, 0.9)
	if err != nil {
		return nil, err
	}
	pStart := time.Now()
	_, pIters, err := solver.Solve(b, w)
	if err != nil {
		return nil, err
	}
	pTime := time.Since(pStart)
	eStart := time.Now()
	_, cgIters, err := solver.SolveEig(b, w)
	if err != nil {
		return nil, err
	}
	eTime := time.Since(eStart)
	t.Notes = append(t.Notes,
		fmt.Sprintf("solver comparison (n=3000, h=16, γ=0.9): Picard %v (%d iters) vs eigen-decoupled CG %v (%d total CG iters)",
			pTime.Round(time.Millisecond), pIters, eTime.Round(time.Millisecond), cgIters))
	t.Verdict = "accuracy orders by receptive-field reach: GCN-2L < implicit/SGC-K8 < multiscale implicit"
	return t, nil
}

// longRangeTask builds the chain dataset: each chain's head carries the
// class signature; every other node has pure noise features and must rely
// on propagation to be classified.
func longRangeTask(chains, chainLen int, seed uint64) (*dataset.Dataset, error) {
	rng := tensor.NewRand(seed)
	n := chains * chainLen
	b := graph.NewBuilder(n)
	labels := make([]int, n)
	numClasses := 3
	for c := 0; c < chains; c++ {
		base := c * chainLen
		for i := 0; i+1 < chainLen; i++ {
			b.AddEdge(base+i, base+i+1)
		}
		cls := c % numClasses
		for i := 0; i < chainLen; i++ {
			labels[base+i] = cls
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	dim := 8
	x := tensor.RandNormal(n, dim, 0.3, rng)
	// Head signature: strong one-hot-ish signal in the first numClasses dims.
	for c := 0; c < chains; c++ {
		head := c * chainLen
		x.Set(head, labels[head], x.At(head, labels[head])+4)
	}
	train, val, test := dataset.Split(n, 0.4, 0.2, rng)
	return &dataset.Dataset{
		G: g, X: x, Labels: labels, NumClasses: numClasses,
		TrainIdx: train, ValIdx: val, TestIdx: test,
	}, nil
}
