// Kernel microbenchmarks: the machine-readable BENCH_kernels.json report
// covering the dense matmul family, the CSR SpMM propagation path, and the
// end-to-end GCN training epoch at both numeric tiers. The float64 entries
// are the reference; the float32 twins quantify the raw-speed tier (the
// headline number is gcn_epoch float32 vs float64 throughput). The
// allocs/op column feeds the perf-regression gate in scripts/check.sh: the
// *Into kernels are pool-backed and must stay allocation-free at steady
// state.
package bench

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"testing"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/models"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
)

// KernelResult is one row of BENCH_kernels.json — the same shape as the
// serving load-test entries (name / ns_op / allocs_op / bytes_op / qps).
type KernelResult struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
	QPS      float64 `json:"qps"`
}

// KernelBenchReport is the BENCH_kernels.json document.
type KernelBenchReport struct {
	Bench   string          `json:"bench"`
	Results []*KernelResult `json:"results"`
}

// WriteKernelBenchJSON writes the machine-readable kernel benchmark report.
func WriteKernelBenchJSON(path string, results []*KernelResult) error {
	data, err := json.MarshalIndent(KernelBenchReport{Bench: "kernels", Results: results}, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: kernel report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: kernel report: %w", err)
	}
	return nil
}

// record converts a testing.Benchmark result into a report row.
func record(name string, r testing.BenchmarkResult) *KernelResult {
	ns := float64(r.NsPerOp())
	qps := 0.0
	if ns > 0 {
		qps = 1e9 / ns
	}
	return &KernelResult{
		Name:     name,
		NsPerOp:  ns,
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
		QPS:      qps,
	}
}

// kernelSizes returns (m, k, n, graphNodes, featDim, hidden) for the dense
// and sparse workloads at the requested scale.
func kernelSizes(quick bool) (int, int, int, int, int, int) {
	if quick {
		return 128, 96, 64, 3000, 32, 32
	}
	return 512, 256, 128, 20000, 64, 64
}

// benchMatMuls measures the three dense *Into kernels at tier T. All
// operands are preallocated: steady-state allocs/op must be zero.
func benchMatMuls[T tensor.Elem](dt string, m, k, n int, rng *rand.Rand, out *[]*KernelResult) {
	a := tensor.NewOf[T](m, k)  // left operand
	b := tensor.NewOf[T](k, n)  // right operand, classic layout
	bt := tensor.NewOf[T](n, k) // right operand, transposed layout
	b2 := tensor.NewOf[T](m, n) // right operand for the aᵀ·b kernel
	dst := tensor.NewOf[T](m, n)
	dstT := tensor.NewOf[T](k, n)
	fill := func(x *tensor.Mat[T]) {
		for i := range x.Data {
			x.Data[i] = T(rng.Float64() - 0.5)
		}
	}
	fill(a)
	fill(b)
	fill(bt)
	fill(b2)
	*out = append(*out,
		record(fmt.Sprintf("matmul_into/%s/%dx%dx%d", dt, m, k, n), testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.MatMulInto(a, b, dst)
			}
		})),
		record(fmt.Sprintf("matmul_t_into/%s/%dx%dx%d", dt, m, k, n), testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.MatMulTInto(a, bt, dst)
			}
		})),
		record(fmt.Sprintf("t_matmul_into/%s/%dx%dx%d", dt, k, m, n), testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				tensor.TMatMulInto(a, b2, dstT)
			}
		})),
	)
}

// benchSpMM measures the CSR×dense propagation ApplyInto at tier T over a
// synthetic homophilous graph.
func benchSpMM[T tensor.Elem](dt string, ds *dataset.Dataset, dim int, rng *rand.Rand, out *[]*KernelResult) {
	op := graph.NewOperatorOf[T](ds.G, graph.NormSymmetric, true)
	x := tensor.NewOf[T](ds.G.N, dim)
	for i := range x.Data {
		x.Data[i] = T(rng.Float64() - 0.5)
	}
	dst := tensor.NewOf[T](ds.G.N, dim)
	*out = append(*out, record(
		fmt.Sprintf("spmm_apply_into/%s/n%d_d%d", dt, ds.G.N, dim),
		testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				op.ApplyInto(x, dst)
			}
		})))
}

// benchGCNEpoch measures one full-batch GCN training epoch (forward,
// masked loss, backward, Adam step) at tier T — the tentpole number: the
// float32 tier targets >= 2x the float64 epoch throughput.
func benchGCNEpoch[T tensor.Elem](dt string, ds *dataset.Dataset, hidden int, seed uint64, out *[]*KernelResult) {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	op := graph.NewOperatorOf[T](ds.G, graph.NormSymmetric, true)
	x := tensor.FromFloat64[T](ds.X)
	net := nn.NewSequentialOf[T](
		&models.GCNConvOf[T]{Op: op, Lin: nn.NewLinearOf[T](ds.X.Cols, hidden, true, rng)},
		nn.NewReLUOf[T](),
		&models.GCNConvOf[T]{Op: op, Lin: nn.NewLinearOf[T](hidden, ds.NumClasses, true, rng)},
	)
	opt := nn.NewAdamOf[T](0.01)
	defer opt.Reset()
	*out = append(*out, record(
		fmt.Sprintf("gcn_epoch/%s/n%d_h%d", dt, ds.G.N, hidden),
		testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				logits := net.Forward(x, true)
				grad := tensor.GetBufOf[T](logits.Rows, logits.Cols)
				nn.SoftmaxCrossEntropyInto(logits, ds.Labels, grad)
				net.Backward(grad)
				tensor.PutBufOf(grad)
				opt.Step(net.Params())
			}
		})))
}

// RunKernelBench runs the kernel suite at both tiers and returns the
// report rows, float64 first so diffing runs is stable.
func RunKernelBench(quick bool, seed uint64) ([]*KernelResult, error) {
	m, k, n, nodes, dim, hidden := kernelSizes(quick)
	ds, err := dataset.Load("", "", dataset.Config{
		Nodes: nodes, Classes: 5, AvgDegree: 10, Homophily: 0.8,
		FeatureDim: dim, NoiseStd: 1.2, TrainFrac: 0.5, ValFrac: 0.2, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: kernel dataset: %w", err)
	}
	var results []*KernelResult
	for _, dt := range []string{"float64", "float32"} {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		if dt == "float32" {
			benchMatMuls[float32](dt, m, k, n, rng, &results)
			benchSpMM[float32](dt, ds, dim, rng, &results)
			benchGCNEpoch[float32](dt, ds, hidden, seed, &results)
		} else {
			benchMatMuls[float64](dt, m, k, n, rng, &results)
			benchSpMM[float64](dt, ds, dim, rng, &results)
			benchGCNEpoch[float64](dt, ds, hidden, seed, &results)
		}
	}
	return results, nil
}
