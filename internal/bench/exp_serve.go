package bench

import (
	"fmt"
	"time"

	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
	"scalegnn/internal/serve"
)

func init() {
	register(Experiment{ID: "E21", Anchor: "3.1.2", Title: "Online serving: batching window x logit cache vs QPS and p99", Run: runE21})
}

// runE21 measures the serving stack end-to-end over real HTTP: a trained
// SGC behind the coalescing engine, swept across batching windows and
// with/without the hot-node logit LRU, load-generated closed-loop.
func runE21(cfg Config) (*Table, error) {
	n, epochs, dur, workers := 20000, 20, 2*time.Second, 8
	if cfg.Quick {
		n, epochs, dur, workers = 2000, 4, 150*time.Millisecond, 4
	}
	ds, err := dataset.Generate(dataset.Config{
		Nodes: n, Classes: 5, AvgDegree: 10, Homophily: 0.8,
		FeatureDim: 32, NoiseStd: 1.2, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	m, err := models.NewSGC(2)
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs, tcfg.Patience, tcfg.Seed = epochs, 0, cfg.Seed
	if _, err := m.Fit(ds, tcfg); err != nil {
		return nil, err
	}

	const slo = 25 * time.Millisecond
	t := &Table{
		ID: "E21", Title: fmt.Sprintf("Online inference serving (SGC-K2, n=%d, %d closed-loop clients, %v/run)", n, workers, dur),
		Claim:  "decoupled models serve per-node predictions as a row gather + small MLP forward, so an in-process engine sustains thousands of QPS at millisecond p99; coalescing adapts batch size to load (§3.1.2)",
		Header: []string{"engine config", "QPS", "rq/batch", "p50", "p99", "max", "hit%", fmt.Sprintf("p99<=%v", slo), "health"},
	}

	configs := []struct {
		label  string
		window time.Duration
		cache  int
	}{
		{"drain coalescing", 0, 0},
		{"window 250us", 250 * time.Microsecond, 0},
		{"window 1ms", time.Millisecond, 0},
		{"drain + LRU", 0, n},
	}
	var qpsDrain, qpsWindowed, p99Drain float64
	for _, c := range configs {
		res, rqPerBatch, health, err := serveOnce(m, n, c.window, c.cache, workers, dur, slo, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.label, err)
		}
		met := "yes"
		if !res.SLOMet {
			met = "NO"
		}
		t.AddRow(c.label,
			fmt.Sprintf("%.0f", res.QPS),
			fmt.Sprintf("%.1f", rqPerBatch),
			fmt.Sprintf("%.2fms", res.P50Ms),
			fmt.Sprintf("%.2fms", res.P99Ms),
			fmt.Sprintf("%.2fms", res.MaxMs),
			fmt.Sprintf("%.0f", res.CacheHitRate*100),
			met, health)
		switch c.label {
		case "drain coalescing":
			qpsDrain, p99Drain = res.QPS, res.P99Ms
		case "window 1ms":
			qpsWindowed = res.QPS
		}
	}
	t.Notes = append(t.Notes,
		"closed-loop load: each client waits for its reply, so a fixed window charges its full delay to every request, while drain coalescing batches whatever queued during the previous forward — batch size grows with load at no added latency",
		"every configuration serves byte-identical predictions; only the scheduling changes")
	t.Verdict = fmt.Sprintf("drain coalescing sustains %.0f QPS at p99 %.2fms (%.1fx the 1ms fixed window), meeting the %v SLO",
		qpsDrain, p99Drain, qpsDrain/qpsWindowed, slo)
	return t, nil
}

// serveOnce runs one engine configuration behind a real HTTP listener,
// load-generates against it, and reports the result, the mean dispatcher
// batch size (cache-missing requests per scored batch), and the engine's
// SLO-aware health verdict after the run — "ok" unless the rolling-window
// burn rate says the p99 budget is being spent faster than sustainable.
func serveOnce(m serve.Model, n int, window time.Duration, cache, workers int,
	dur, slo time.Duration, seed uint64) (*serve.LoadResult, float64, string, error) {
	eng := serve.NewEngine(serve.Config{
		Window: window, MaxBatch: 256, CacheSize: cache,
		SLO: serve.SLOConfig{Target: slo, Objective: 0.99, Window: dur},
	})
	defer eng.Close()
	eng.Swap(m, serve.SwapInfo{Source: "fit"})
	srv := serve.NewServer(eng, nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, 0, "", err
	}
	defer func() {
		//lint:ignore unchecked-error benchmark teardown; the listener dies with the process anyway
		srv.Close()
	}()
	res, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:     "http://" + srv.Addr(),
		Nodes:       n,
		Concurrency: workers,
		Duration:    dur,
		SLO:         slo,
		Seed:        seed,
	})
	if err != nil {
		return nil, 0, "", err
	}
	if res.Errors > 0 {
		return nil, 0, "", fmt.Errorf("load run saw %d request errors", res.Errors)
	}
	res.WindowMicros = float64(window.Nanoseconds()) / 1e3
	res.MaxBatch = 256
	res.CacheSize = cache
	st := eng.Stats()
	if st.CacheHits+st.CacheMisses > 0 {
		res.CacheHitRate = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	var rqPerBatch float64
	if st.Batches > 0 {
		rqPerBatch = float64(st.CacheMisses) / float64(st.Batches)
	}
	return res, rqPerBatch, eng.Health().Status, nil
}
