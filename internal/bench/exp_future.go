package bench

import (
	"fmt"

	"scalegnn/internal/dataset"
	"scalegnn/internal/distsim"
	"scalegnn/internal/graph"
	"scalegnn/internal/models"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

func init() {
	register(Experiment{ID: "E19", Anchor: "3.4.3", Title: "Simulated distributed training: partitioner x workers", Run: runE19})
	register(Experiment{ID: "E20", Anchor: "3.4.2", Title: "Label efficiency across model families", Run: runE20})
}

// runE19 sweeps partitioners and worker counts through the distributed
// cost model.
func runE19(cfg Config) (*Table, error) {
	n := 50000
	if cfg.Quick {
		n = 8000
	}
	g, _, err := graph.SBM(graph.SBMConfig{Nodes: n, Blocks: 16, AvgDegree: 12, Homophily: 0.85}, tensor.NewRand(cfg.Seed))
	if err != nil {
		return nil, err
	}
	dcfg := distsim.DefaultConfig(64)
	t := &Table{
		ID: "E19", Title: fmt.Sprintf("Simulated synchronous data-parallel epoch (SBM n=%d, 64-dim features, 100 GbE model)", n),
		Claim:  "partition quality decides whether adding workers helps: low-cut partitions keep communication off the critical path; hash partitions saturate on the network (§3.1.4/§3.4.3)",
		Header: []string{"partitioner", "workers", "makespan", "compute", "comm", "speedup", "imbalance"},
	}
	type method struct {
		name string
		run  func(k int) (*partition.Assignment, error)
	}
	methods := []method{
		{"hash", func(k int) (*partition.Assignment, error) { return partition.Hash(g, k, tensor.NewRand(cfg.Seed)) }},
		{"fennel", func(k int) (*partition.Assignment, error) { return partition.Fennel(g, k, tensor.NewRand(cfg.Seed)) }},
		{"multilevel", func(k int) (*partition.Assignment, error) {
			return partition.Multilevel(g, k, n/10, 8, tensor.NewRand(cfg.Seed))
		}},
	}
	var hashSpeed16, bestSpeed16 float64
	for _, m := range methods {
		for _, k := range []int{4, 16} {
			a, err := m.run(k)
			if err != nil {
				return nil, fmt.Errorf("%s k=%d: %w", m.name, k, err)
			}
			rep, err := distsim.Simulate(g, a, dcfg)
			if err != nil {
				return nil, err
			}
			sp, err := distsim.Speedup(g, a, dcfg)
			if err != nil {
				return nil, err
			}
			if k == 16 {
				if m.name == "hash" {
					hashSpeed16 = sp
				}
				if sp > bestSpeed16 {
					bestSpeed16 = sp
				}
			}
			t.AddRow(m.name, fmt.Sprintf("%d", k),
				fmt.Sprintf("%.1fms", rep.MakespanSec*1e3),
				fmt.Sprintf("%.1fms", rep.ComputeSec*1e3),
				fmt.Sprintf("%.1fms", rep.CommSec*1e3),
				fnum(sp), fnum(rep.Imbalance))
		}
	}
	t.Verdict = fmt.Sprintf("at 16 workers the best partitioner reaches %.1fx simulated speedup vs %.1fx for hash",
		bestSpeed16, hashSpeed16)
	return t, nil
}

// runE20 sweeps the labeled fraction and compares how model families
// degrade — the §3.4.2 "insufficient labels" concern: graph propagation
// substitutes for labels by spreading the few that exist.
func runE20(cfg Config) (*Table, error) {
	nodes, epochs := 6000, 60
	if cfg.Quick {
		nodes, epochs = 1500, 30
	}
	t := &Table{
		ID: "E20", Title: fmt.Sprintf("Test accuracy vs labeled fraction (SBM n=%d, h=0.8)", nodes),
		Claim:  "graph propagation compensates for scarce labels: GNN accuracy degrades far slower than the graph-free baseline as labels shrink (§3.4.2)",
		Header: []string{"train frac", "MLP (no graph)", "SGC-K2", "APPNP-K10"},
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Patience = 20
	var gapAt1pct float64
	for _, frac := range []float64{0.5, 0.1, 0.02, 0.005} {
		ds, err := dataset.Generate(dataset.Config{
			Nodes: nodes, Classes: 5, AvgDegree: 12, Homophily: 0.8,
			FeatureDim: 32, NoiseStd: 1.5, TrainFrac: frac, ValFrac: 0.1, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		mlpAcc, err := mlpBaseline(ds, tcfg)
		if err != nil {
			return nil, err
		}
		sgc, err := models.NewSGC(2)
		if err != nil {
			return nil, err
		}
		sgcRep, err := sgc.Fit(ds, tcfg)
		if err != nil {
			return nil, err
		}
		appnp, err := models.NewAPPNP(10, 0.15)
		if err != nil {
			return nil, err
		}
		appnpRep, err := appnp.Fit(ds, tcfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fnum(frac), fnum(mlpAcc), fnum(sgcRep.TestAcc), fnum(appnpRep.TestAcc))
		if frac <= 0.01 {
			gapAt1pct = sgcRep.TestAcc - mlpAcc
		}
	}
	t.Verdict = fmt.Sprintf("at <=1%% labels the propagation models hold a %.0f-point lead over the graph-free baseline",
		100*gapAt1pct)
	return t, nil
}
