package bench

import (
	"fmt"
	"time"

	"scalegnn/internal/coarsen"
	"scalegnn/internal/core"
	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/models"
	"scalegnn/internal/partition"
	"scalegnn/internal/sampling"
	"scalegnn/internal/sparsify"
	"scalegnn/internal/subgraph"
	"scalegnn/internal/tensor"
)

func init() {
	register(Experiment{ID: "E3", Anchor: "3.1.2", Title: "Graph partitioning: cut/balance/communication", Run: runE3})
	register(Experiment{ID: "E4", Anchor: "3.3.2", Title: "Sampler variance and cost", Run: runE4})
	register(Experiment{ID: "E9", Anchor: "3.3.1", Title: "Sparsification: accuracy vs kept edges", Run: runE9})
	register(Experiment{ID: "E10", Anchor: "3.3.3", Title: "Walk-set storage vs fresh extraction", Run: runE10})
	register(Experiment{ID: "E11", Anchor: "3.3.4", Title: "Coarsened training: ratio sweep and strategy ablation", Run: runE11})
}

// runE3 compares partitioners on a modular SBM and a BA graph.
func runE3(cfg Config) (*Table, error) {
	n := 20000
	if cfg.Quick {
		n = 4000
	}
	k := 8
	rng := tensor.NewRand(cfg.Seed)
	sbm, _, err := graph.SBM(graph.SBMConfig{Nodes: n, Blocks: k, AvgDegree: 12, Homophily: 0.85}, rng)
	if err != nil {
		return nil, err
	}
	ba := graph.BarabasiAlbert(n, 6, rng)

	t := &Table{
		ID: "E3", Title: fmt.Sprintf("k=%d partitioning (n=%d)", k, n),
		Claim:  "streaming (LDG/Fennel) and multilevel partitioners cut far fewer edges than hash at comparable balance",
		Header: []string{"graph", "method", "cut frac", "balance", "comm volume", "time"},
	}
	type method struct {
		name string
		run  func(g *graph.CSR) (*partition.Assignment, error)
	}
	methods := []method{
		{"hash", func(g *graph.CSR) (*partition.Assignment, error) {
			return partition.Hash(g, k, tensor.NewRand(cfg.Seed))
		}},
		{"ldg", func(g *graph.CSR) (*partition.Assignment, error) {
			return partition.LDG(g, k, 1.1, tensor.NewRand(cfg.Seed))
		}},
		{"fennel", func(g *graph.CSR) (*partition.Assignment, error) {
			return partition.Fennel(g, k, tensor.NewRand(cfg.Seed))
		}},
		{"multilevel", func(g *graph.CSR) (*partition.Assignment, error) {
			return partition.Multilevel(g, k, n/10, 12, tensor.NewRand(cfg.Seed))
		}},
	}
	hashCut := map[string]float64{}
	bestCut := map[string]float64{"sbm": 1, "ba": 1}
	for _, tc := range []struct {
		name string
		g    *graph.CSR
	}{{"sbm", sbm}, {"ba", ba}} {
		for _, m := range methods {
			start := time.Now()
			a, err := m.run(tc.g)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", m.name, tc.name, err)
			}
			dur := time.Since(start)
			q := partition.Evaluate(tc.g, a)
			if m.name == "hash" {
				hashCut[tc.name] = q.CutFrac
			}
			if q.CutFrac < bestCut[tc.name] {
				bestCut[tc.name] = q.CutFrac
			}
			t.AddRow(tc.name, m.name, fnum(q.CutFrac), fnum(q.Balance),
				fmt.Sprintf("%d", q.CommVolume), dur.Round(time.Millisecond).String())
		}
	}
	t.Verdict = fmt.Sprintf("best cut vs hash: %.2fx lower on SBM, %.2fx on BA",
		hashCut["sbm"]/bestCut["sbm"], hashCut["ba"]/bestCut["ba"])
	return t, nil
}

// runE4 measures estimator variance and unique-source cost per sampler.
func runE4(cfg Config) (*Table, error) {
	n, trials := 5000, 400
	if cfg.Quick {
		n, trials = 1500, 150
	}
	rng := tensor.NewRand(cfg.Seed)
	g := graph.BarabasiAlbert(n, 10, rng)
	x := tensor.RandNormal(g.N, 8, 1, rng)
	dsts := make([]int32, 128)
	for i := range dsts {
		dsts[i] = int32(i * (n / len(dsts)))
	}
	t := &Table{
		ID: "E4", Title: fmt.Sprintf("Mean-aggregation estimators (BA n=%d, batch 128, %d trials)", n, trials),
		Claim:  "all samplers are unbiased; LABOR matches Poisson variance with fewer unique sources; larger budgets shrink layer-wise variance (LABOR/ADGNN)",
		Header: []string{"sampler", "MSE", "bias", "avg unique srcs"},
	}
	add := func(name string, s sampling.BlockSampler) {
		rep := sampling.MeasureVariance(g, x, s, dsts, trials, tensor.NewRand(cfg.Seed+7))
		t.AddRow(name, fnum(rep.MeanSquaredError), fnum(rep.MeanBias), fnum(rep.AvgUniqueSrcs))
	}
	ns, err := sampling.NewNeighborSampler(g, 5)
	if err != nil {
		return nil, err
	}
	add("node f=5 (SAGE)", ns)
	ps, err := sampling.NewPoissonSampler(g, 5)
	if err != nil {
		return nil, err
	}
	add("poisson f=5 (indep)", ps)
	ls, err := sampling.NewLaborSampler(g, 5)
	if err != nil {
		return nil, err
	}
	add("labor f=5 (dependent)", ls)
	for _, budget := range []int{256, 2048} {
		fs, err := sampling.NewFastGCNSampler(g, budget)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("fastgcn t=%d (layer)", budget), fs)
	}
	lad, err := sampling.NewLadiesSampler(g, 256)
	if err != nil {
		return nil, err
	}
	add("ladies t=256 (layer-dep)", lad)
	t.Verdict = "biases ~0 for all; LABOR's unique-source count sits below Poisson at equal fanout"
	return t, nil
}

// runE9 sweeps the kept-edge fraction and measures downstream accuracy.
func runE9(cfg Config) (*Table, error) {
	nodes := 8000
	epochs := 60
	if cfg.Quick {
		nodes, epochs = 2000, 30
	}
	ds, err := dataset.Generate(dataset.Config{
		Nodes: nodes, Classes: 5, AvgDegree: 14, Homophily: 0.8,
		FeatureDim: 32, NoiseStd: 1.2, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Patience = 15

	t := &Table{
		ID: "E9", Title: fmt.Sprintf("Uniform + top-k sparsification before SGC (SBM n=%d)", nodes),
		Claim:  "accuracy degrades gracefully down to ~20-30%% kept edges while propagation cost falls linearly (Unifews/SCARA)",
		Header: []string{"scheme", "kept frac", "prop speedup", "spectral err", "test acc"},
	}
	run := func(name string, g2 *graph.CSR) error {
		ds2 := *ds
		ds2.G = g2
		m, err := models.NewSGC(2)
		if err != nil {
			return err
		}
		rep, err := m.Fit(&ds2, tcfg)
		if err != nil {
			return err
		}
		kept := float64(g2.NumEdges()) / float64(ds.G.NumEdges())
		t.AddRow(name, fnum(kept), fnum(sparsify.PropagationSpeedup(ds.G, g2)),
			fnum(sparsify.QuadraticFormError(ds.G, g2, 10, tensor.NewRand(cfg.Seed))),
			fnum(rep.TestAcc))
		return nil
	}
	if err := run("full graph", ds.G); err != nil {
		return nil, err
	}
	for _, keep := range []float64{0.6, 0.3, 0.1} {
		g2, err := sparsify.Uniform(ds.G, keep, tensor.NewRand(cfg.Seed+uint64(keep*100)))
		if err != nil {
			return nil, err
		}
		if err := run(fmt.Sprintf("uniform p=%.1f", keep), g2); err != nil {
			return nil, err
		}
	}
	for _, k := range []int{6, 3} {
		g2, err := sparsify.TopKPerNode(ds.G, k)
		if err != nil {
			return nil, err
		}
		if err := run(fmt.Sprintf("top-%d/node", k), g2); err != nil {
			return nil, err
		}
	}
	t.Verdict = "accuracy stays within a few points until the keep fraction drops below ~0.3, then falls"
	return t, nil
}

// runE10 compares SUREL-style walk-store joins against fresh ego-net
// extraction for pair queries.
func runE10(cfg Config) (*Table, error) {
	n, seeds, queries := 50000, 500, 3000
	if cfg.Quick {
		n, seeds, queries = 8000, 100, 500
	}
	rng := tensor.NewRand(cfg.Seed)
	g := graph.BarabasiAlbert(n, 6, rng)
	ws, err := subgraph.NewWalkStore(g, subgraph.WalkStoreConfig{Walks: 50, Length: 4})
	if err != nil {
		return nil, err
	}
	seedIDs := make([]int, seeds)
	for i := range seedIDs {
		seedIDs[i] = (i * 131) % n
	}
	preStart := time.Now()
	if err := ws.Preprocess(seedIDs, rng); err != nil {
		return nil, err
	}
	preTime := time.Since(preStart)

	pairs := make([][2]int, queries)
	for i := range pairs {
		pairs[i] = [2]int{seedIDs[i%seeds], seedIDs[(i*7+3)%seeds]}
	}
	joinStart := time.Now()
	for _, p := range pairs {
		if _, err := ws.Join(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	joinPer := time.Since(joinStart) / time.Duration(queries)

	egoStart := time.Now()
	egoRuns := queries / 10
	for i := 0; i < egoRuns; i++ {
		if _, _, err := subgraph.EgoNet(g, pairs[i%len(pairs)][0], 3, 400); err != nil {
			return nil, err
		}
	}
	egoPer := time.Since(egoStart) / time.Duration(egoRuns)

	pre := map[int]bool{}
	for _, s := range seedIDs {
		pre[s] = true
	}
	t := &Table{
		ID: "E10", Title: fmt.Sprintf("Pair-query subgraph assembly (BA n=%d, %d seeds, %d queries)", n, seeds, queries),
		Claim:  "stored walk sets make per-query assembly much cheaper than re-extraction, at bounded storage (SUREL)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("preprocess (one-time)", preTime.Round(time.Millisecond).String())
	t.AddRow("storage", fmt.Sprintf("%.2f MB", float64(ws.StorageBytes())/1e6))
	t.AddRow("join / query", joinPer.String())
	t.AddRow("fresh 3-hop ego / query", egoPer.String())
	t.AddRow("speedup", fnum(float64(egoPer)/float64(joinPer)))
	t.AddRow("reuse ratio", fnum(subgraph.ReuseRatio(pairs, pre)))
	t.Verdict = "joins over stored walk sets beat fresh extraction by the speedup factor above with 100% reuse"
	return t, nil
}

// runE11 trains on coarsened graphs at several ratios and compares
// matching strategies.
func runE11(cfg Config) (*Table, error) {
	nodes, epochs := 8000, 60
	if cfg.Quick {
		nodes, epochs = 2000, 30
	}
	ds, err := dataset.Generate(dataset.Config{
		Nodes: nodes, Classes: 5, AvgDegree: 12, Homophily: 0.85,
		FeatureDim: 32, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tcfg := models.DefaultTrainConfig()
	tcfg.Epochs = epochs
	tcfg.Patience = 15

	t := &Table{
		ID: "E11", Title: fmt.Sprintf("GCN on coarsened graphs (SBM n=%d)", nodes),
		Claim:  "training on an r-times-smaller coarse graph is ~r-times cheaper with bounded accuracy loss; spectral-aware matching preserves accuracy best",
		Header: []string{"config", "coarse n", "train+pre time", "orig test acc"},
	}
	baseline := func() (time.Duration, float64, error) {
		m, err := models.NewGCN(2)
		if err != nil {
			return 0, 0, err
		}
		rep, err := m.Fit(ds, tcfg)
		if err != nil {
			return 0, 0, err
		}
		return rep.TrainTime, rep.TestAcc, nil
	}
	bTime, bAcc, err := baseline()
	if err != nil {
		return nil, err
	}
	t.AddRow("full graph GCN", fmt.Sprintf("%d", ds.G.N), bTime.Round(time.Millisecond).String(), fnum(bAcc))

	run := func(ratio float64, strat coarsen.Strategy) error {
		m, err := models.NewGCN(2)
		if err != nil {
			return err
		}
		p := &core.Pipeline{
			Transforms: []core.Transform{&core.CoarsenTransform{Ratio: ratio, Strategy: strat}},
			Model:      m,
		}
		rep, err := p.Run(ds, tcfg, tensor.NewRand(cfg.Seed+uint64(ratio)))
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("coarsen %.0fx %s", ratio, strat),
			fmt.Sprintf("%d", rep.NodesAfter),
			(rep.TransformTime + rep.Fit.TrainTime).Round(time.Millisecond).String(),
			fnum(rep.OrigTestAcc))
		return nil
	}
	for _, ratio := range []float64{2, 4, 8} {
		if err := run(ratio, coarsen.NormalizedHeavyEdge); err != nil {
			return nil, err
		}
	}
	// Strategy ablation at the middle ratio.
	for _, strat := range []coarsen.Strategy{coarsen.RandomMatching, coarsen.HeavyEdge} {
		if err := run(4, strat); err != nil {
			return nil, err
		}
	}
	// Spectral condensation (GDEM-style) at the same ratio.
	{
		m, err := models.NewGCN(2)
		if err != nil {
			return nil, err
		}
		p := &core.Pipeline{
			Transforms: []core.Transform{&core.CondenseTransform{Ratio: 4}},
			Model:      m,
		}
		rep, err := p.Run(ds, tcfg, tensor.NewRand(cfg.Seed+99))
		if err != nil {
			return nil, err
		}
		t.AddRow("condense 4x spectral", fmt.Sprintf("%d", rep.NodesAfter),
			(rep.TransformTime + rep.Fit.TrainTime).Round(time.Millisecond).String(),
			fnum(rep.OrigTestAcc))
	}
	t.Verdict = "coarse training time falls with ratio while original-graph accuracy degrades gradually"
	return t, nil
}
