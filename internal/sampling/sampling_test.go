package sampling

import (
	"math"
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func testGraph(t *testing.T, n, deg int) *graph.CSR {
	t.Helper()
	rng := tensor.NewRand(uint64(n*31 + deg))
	return graph.BarabasiAlbert(n, deg, rng)
}

func batchOf(n, k int) []int32 {
	b := make([]int32, k)
	for i := range b {
		b[i] = int32(i * (n / k))
	}
	return b
}

func TestExactBlockMatchesOperator(t *testing.T) {
	g := testGraph(t, 100, 3)
	rng := tensor.NewRand(1)
	x := tensor.RandNormal(g.N, 4, 1, rng)
	op := graph.NewOperator(g, graph.NormRandomWalk, false)
	full := op.Apply(x)
	dsts := batchOf(g.N, 10)
	blk := ExactBlock(g, dsts)
	est := blk.Aggregate(x.SelectRows(toInts(blk.Srcs)))
	for i, d := range dsts {
		for j := 0; j < 4; j++ {
			if math.Abs(est.At(i, j)-full.At(int(d), j)) > 1e-12 {
				t.Fatalf("exact block disagrees with operator at (%d,%d)", i, j)
			}
		}
	}
}

func toInts(ids []int32) []int {
	out := make([]int, len(ids))
	for i, v := range ids {
		out[i] = int(v)
	}
	return out
}

func TestNeighborSamplerUnbiased(t *testing.T) {
	g := testGraph(t, 120, 4)
	rng := tensor.NewRand(2)
	x := tensor.RandNormal(g.N, 3, 1, rng)
	s, err := NewNeighborSampler(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := MeasureVariance(g, x, s, batchOf(g.N, 20), 3000, rng)
	if math.Abs(rep.MeanBias) > 0.01 {
		t.Errorf("node-level sampler bias %v", rep.MeanBias)
	}
	if rep.MeanSquaredError == 0 {
		t.Error("expected nonzero variance with fanout < degree")
	}
}

func TestNeighborSamplerFullFanoutExact(t *testing.T) {
	g := testGraph(t, 60, 3)
	rng := tensor.NewRand(3)
	x := tensor.RandNormal(g.N, 3, 1, rng)
	s, err := NewNeighborSampler(g, g.MaxDegree())
	if err != nil {
		t.Fatal(err)
	}
	rep := MeasureVariance(g, x, s, batchOf(g.N, 10), 5, rng)
	if rep.MeanSquaredError > 1e-20 {
		t.Errorf("fanout >= max degree should be exact, MSE = %v", rep.MeanSquaredError)
	}
}

func TestNeighborSamplerRespectsFanout(t *testing.T) {
	g := testGraph(t, 200, 6)
	rng := tensor.NewRand(4)
	s, _ := NewNeighborSampler(g, 2)
	blk := s.SampleBlock(batchOf(g.N, 30), rng)
	for i, ns := range blk.Neigh {
		if len(ns) > 2 {
			t.Fatalf("dst %d got %d > 2 neighbors", i, len(ns))
		}
	}
	// Sampled blocks must keep dsts as the leading srcs (self features).
	for i, d := range blk.Dsts {
		if blk.Srcs[i] != d {
			t.Fatal("Srcs must start with Dsts")
		}
	}
}

func TestSampleLayersDepth(t *testing.T) {
	g := testGraph(t, 150, 4)
	rng := tensor.NewRand(5)
	s, _ := NewNeighborSampler(g, 3)
	blocks := s.SampleLayers(batchOf(g.N, 5), 3, rng)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	// Each deeper block's dsts are the previous block's srcs.
	for l := 1; l < 3; l++ {
		prev := blocks[l-1].Srcs
		cur := blocks[l].Dsts
		if len(prev) != len(cur) {
			t.Fatal("layer wiring broken")
		}
		for i := range prev {
			if prev[i] != cur[i] {
				t.Fatal("layer wiring broken")
			}
		}
	}
}

func TestLaborUnbiasedAndFewerUniques(t *testing.T) {
	g := testGraph(t, 400, 8)
	rng := tensor.NewRand(6)
	x := tensor.RandNormal(g.N, 3, 1, rng)
	dsts := batchOf(g.N, 80)

	labor, err := NewLaborSampler(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := NewPoissonSampler(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	repL := MeasureVariance(g, x, labor, dsts, 1500, rng)
	repP := MeasureVariance(g, x, poisson, dsts, 1500, rng)

	if math.Abs(repL.MeanBias) > 0.02 {
		t.Errorf("LABOR bias %v", repL.MeanBias)
	}
	if math.Abs(repP.MeanBias) > 0.02 {
		t.Errorf("Poisson bias %v", repP.MeanBias)
	}
	// The LABOR claim: same marginal inclusion → comparable variance, but
	// shared variates → strictly fewer unique sampled sources.
	if repL.AvgUniqueSrcs >= repP.AvgUniqueSrcs {
		t.Errorf("LABOR uniques %.1f not below Poisson %.1f", repL.AvgUniqueSrcs, repP.AvgUniqueSrcs)
	}
	if repL.MeanSquaredError > repP.MeanSquaredError*2.5 {
		t.Errorf("LABOR variance %v far above Poisson %v", repL.MeanSquaredError, repP.MeanSquaredError)
	}
}

func TestFastGCNUnbiased(t *testing.T) {
	g := testGraph(t, 150, 4)
	rng := tensor.NewRand(7)
	x := tensor.RandNormal(g.N, 3, 1, rng)
	s, err := NewFastGCNSampler(g, 60)
	if err != nil {
		t.Fatal(err)
	}
	rep := MeasureVariance(g, x, s, batchOf(g.N, 25), 4000, rng)
	if math.Abs(rep.MeanBias) > 0.02 {
		t.Errorf("FastGCN bias %v", rep.MeanBias)
	}
}

func TestFastGCNBudgetReducesVariance(t *testing.T) {
	g := testGraph(t, 200, 5)
	rng := tensor.NewRand(8)
	x := tensor.RandNormal(g.N, 3, 1, rng)
	dsts := batchOf(g.N, 30)
	small, _ := NewFastGCNSampler(g, 20)
	large, _ := NewFastGCNSampler(g, 400)
	repS := MeasureVariance(g, x, small, dsts, 800, rng)
	repB := MeasureVariance(g, x, large, dsts, 800, rng)
	if repB.MeanSquaredError >= repS.MeanSquaredError {
		t.Errorf("larger budget should shrink variance: %v vs %v",
			repB.MeanSquaredError, repS.MeanSquaredError)
	}
}

func TestSamplerValidation(t *testing.T) {
	g := testGraph(t, 20, 2)
	if _, err := NewNeighborSampler(g, 0); err == nil {
		t.Error("fanout 0 should error")
	}
	if _, err := NewLaborSampler(g, 0); err == nil {
		t.Error("labor fanout 0 should error")
	}
	if _, err := NewPoissonSampler(g, -1); err == nil {
		t.Error("poisson fanout < 1 should error")
	}
	if _, err := NewFastGCNSampler(g, 0); err == nil {
		t.Error("budget 0 should error")
	}
	empty, _ := graph.FromEdges(3, nil)
	if _, err := NewFastGCNSampler(empty, 5); err == nil {
		t.Error("empty graph should error")
	}
}

func TestAliasTableDistribution(t *testing.T) {
	probs := []float64{0.5, 0.3, 0.2}
	at := newAliasTable(probs)
	rng := tensor.NewRand(9)
	counts := make([]float64, 3)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[at.draw(rng)]++
	}
	for i, p := range probs {
		got := counts[i] / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("alias p[%d] = %v, want %v", i, got, p)
		}
	}
}

func TestReceptiveFieldGrowth(t *testing.T) {
	g := testGraph(t, 3000, 6)
	batch := batchOf(g.N, 4)
	prev := 0
	for l := 1; l <= 4; l++ {
		rf := ReceptiveField(g, batch, l)
		if rf < prev || (rf == prev && prev < g.N) {
			t.Fatalf("receptive field not growing at layer %d: %d <= %d", l, rf, prev)
		}
		prev = rf
	}
	// Neighborhood explosion: 4 hops on a BA graph should reach most of it.
	if prev < g.N/3 {
		t.Errorf("4-hop field only %d of %d; BA graph should explode", prev, g.N)
	}
	// Sampled field must be much smaller.
	rng := tensor.NewRand(10)
	s, _ := NewNeighborSampler(g, 3)
	sampled := SampledFieldSize(s, batch, 4, rng)
	if sampled >= prev/2 {
		t.Errorf("sampling did not cap the field: %d vs full %d", sampled, prev)
	}
}

func TestRandomWalkSamplerBasics(t *testing.T) {
	g := testGraph(t, 500, 4)
	rng := tensor.NewRand(11)
	s, err := NewRandomWalkSampler(g, 20, 4, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Sample(rng)
	if sub.Sub.N == 0 || sub.Sub.N > 20*5 {
		t.Fatalf("subgraph size %d out of range", sub.Sub.N)
	}
	if len(sub.NodeIDs) != sub.Sub.N || len(sub.NodeWeight) != sub.Sub.N {
		t.Fatal("parallel slices inconsistent")
	}
	// Every edge of the sample must exist in the original graph.
	for _, e := range sub.Sub.UndirectedEdges() {
		if !g.HasEdge(sub.NodeIDs[e.U], sub.NodeIDs[e.V]) {
			t.Fatal("subgraph contains a non-edge")
		}
	}
	// Frequent nodes get smaller weights.
	for i, w := range sub.NodeWeight {
		if w <= 0 {
			t.Fatalf("node %d weight %v", i, w)
		}
	}
}

func TestRandomWalkSamplerValidation(t *testing.T) {
	g := testGraph(t, 50, 2)
	rng := tensor.NewRand(12)
	if _, err := NewRandomWalkSampler(g, 0, 3, 0, rng); err == nil {
		t.Error("roots 0 should error")
	}
	if _, err := NewRandomWalkSampler(g, 5, -1, 0, rng); err == nil {
		t.Error("negative walk length should error")
	}
}

func TestEdgeSamplerBasics(t *testing.T) {
	g := testGraph(t, 300, 4)
	rng := tensor.NewRand(13)
	s, err := NewEdgeSampler(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Sample(rng)
	if sub.Sub.N == 0 || sub.Sub.N > 100 {
		t.Fatalf("edge-induced subgraph size %d", sub.Sub.N)
	}
	// Node set must equal endpoints of sampled edges (all have degree >= 1
	// within the subgraph, since the inducing edge is present).
	for i := 0; i < sub.Sub.N; i++ {
		if sub.Sub.Degree(i) == 0 {
			t.Fatalf("isolated node %d in edge-induced subgraph", i)
		}
	}
}

func TestEdgeSamplerValidation(t *testing.T) {
	g := testGraph(t, 30, 2)
	if _, err := NewEdgeSampler(g, 0); err == nil {
		t.Error("budget 0 should error")
	}
	b := graph.NewBuilder(3)
	b.Directed = true
	b.AddEdge(0, 1)
	dg := b.MustBuild()
	if _, err := NewEdgeSampler(dg, 5); err == nil {
		t.Error("directed graph should error")
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int32{5, 1, 3}
	out := SortedCopy(in)
	if out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("SortedCopy = %v", out)
	}
	if in[0] != 5 {
		t.Error("input mutated")
	}
}

func BenchmarkNeighborSampler(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(50000, 8, rng)
	s, _ := NewNeighborSampler(g, 5)
	batch := batchOf(g.N, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleLayers(batch, 2, rng)
	}
}

func BenchmarkRandomWalkSampler(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(50000, 8, rng)
	s, err := NewRandomWalkSampler(g, 200, 4, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}

func TestLadiesUnbiasedAndRestricted(t *testing.T) {
	g := testGraph(t, 250, 5)
	rng := tensor.NewRand(21)
	x := tensor.RandNormal(g.N, 3, 1, rng)
	dsts := batchOf(g.N, 25)
	s, err := NewLadiesSampler(g, 80)
	if err != nil {
		t.Fatal(err)
	}
	rep := MeasureVariance(g, x, s, dsts, 3000, rng)
	if math.Abs(rep.MeanBias) > 0.02 {
		t.Errorf("LADIES bias %v", rep.MeanBias)
	}
	// Restriction: every sampled source beyond the dsts themselves must be
	// a neighbor of some dst.
	blk := s.SampleBlock(dsts, rng)
	isDst := make(map[int32]bool, len(dsts))
	for _, d := range dsts {
		isDst[d] = true
	}
	inNeighborhood := make(map[int32]bool)
	for _, d := range dsts {
		for _, v := range g.Neighbors(int(d)) {
			inNeighborhood[v] = true
		}
	}
	for _, src := range blk.Srcs {
		if !isDst[src] && !inNeighborhood[src] {
			t.Fatalf("source %d outside the neighborhood union", src)
		}
	}
}

func TestLadiesBeatsFastGCNEfficiency(t *testing.T) {
	// At equal budget, LADIES wastes no draws on unreachable nodes, so its
	// variance should not exceed FastGCN's by much and typically improves.
	g := testGraph(t, 400, 5)
	rng := tensor.NewRand(22)
	x := tensor.RandNormal(g.N, 3, 1, rng)
	dsts := batchOf(g.N, 20)
	lad, err := NewLadiesSampler(g, 60)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewFastGCNSampler(g, 60)
	if err != nil {
		t.Fatal(err)
	}
	repL := MeasureVariance(g, x, lad, dsts, 1200, rng)
	repF := MeasureVariance(g, x, fast, dsts, 1200, rng)
	if repL.MeanSquaredError > repF.MeanSquaredError {
		t.Errorf("LADIES MSE %v above FastGCN %v at equal budget",
			repL.MeanSquaredError, repF.MeanSquaredError)
	}
}

func TestLadiesValidation(t *testing.T) {
	g := testGraph(t, 30, 2)
	if _, err := NewLadiesSampler(g, 0); err == nil {
		t.Error("budget 0 should error")
	}
	// Isolated dsts: block must be empty but well-formed.
	empty, _ := graph.FromEdges(5, nil)
	s, err := NewLadiesSampler(empty, 10)
	if err != nil {
		t.Fatal(err)
	}
	blk := s.SampleBlock([]int32{0, 1}, tensor.NewRand(1))
	if blk.NumUniqueSrcs() != 2 { // just the dsts themselves
		t.Errorf("unique srcs = %d", blk.NumUniqueSrcs())
	}
}

// TestAggregateBackwardIsAdjoint checks <Aggregate(x), g> == <x, AggregateBackward(g)>
// — the defining property the SAGE trainer's gradients rely on.
func TestAggregateBackwardIsAdjoint(t *testing.T) {
	g := testGraph(t, 80, 4)
	rng := tensor.NewRand(33)
	s, err := NewNeighborSampler(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	blk := s.SampleBlock(batchOf(g.N, 15), rng)
	x := tensor.RandNormal(blk.NumUniqueSrcs(), 4, 1, rng)
	gy := tensor.RandNormal(len(blk.Dsts), 4, 1, rng)
	y := blk.Aggregate(x)
	gx := blk.AggregateBackward(gy)
	var lhs, rhs float64
	for i := range y.Data {
		lhs += y.Data[i] * gy.Data[i]
	}
	for i := range x.Data {
		rhs += x.Data[i] * gx.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Errorf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}
