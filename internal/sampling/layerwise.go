package sampling

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

// FastGCNSampler implements layer-level importance sampling: each layer
// draws a fixed budget of source nodes from the whole graph with
// probability proportional to degree (the FastGCN importance
// q(v) ∝ ‖P(:,v)‖², which for the mean-aggregation operator is
// degree-dominated), independent of the destination set. The estimator is
// the Horvitz-Thompson correction of the restricted aggregation.
type FastGCNSampler struct {
	G      *graph.CSR
	Budget int // source nodes per layer

	probs []float64 // q(v), degree-proportional
	alias aliasTable
}

// NewFastGCNSampler precomputes the importance distribution.
func NewFastGCNSampler(g *graph.CSR, budget int) (*FastGCNSampler, error) {
	if budget < 1 {
		return nil, fmt.Errorf("sampling: budget %d < 1", budget)
	}
	total := float64(g.NumEdges())
	if total == 0 {
		return nil, fmt.Errorf("sampling: FastGCN on empty graph")
	}
	probs := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		probs[v] = float64(g.Degree(v)) / total
	}
	return &FastGCNSampler{G: g, Budget: budget, probs: probs, alias: newAliasTable(probs)}, nil
}

// SampleBlock draws `Budget` sources i.i.d. from q (with replacement, as in
// FastGCN) and wires every destination to its sampled neighbors with
// Horvitz-Thompson weights 1/(deg(u) · t · q(v)) per draw.
func (s *FastGCNSampler) SampleBlock(dsts []int32, rng *rand.Rand) *Block {
	um := newUniqueMap(dsts)
	b := &Block{
		Dsts:   dsts,
		Neigh:  make([][]int32, len(dsts)),
		Weight: make([][]float64, len(dsts)),
	}
	// Draw the layer-wide sample and count multiplicity.
	mult := make(map[int32]int, s.Budget)
	for i := 0; i < s.Budget; i++ {
		mult[int32(s.alias.draw(rng))]++
	}
	t := float64(s.Budget)
	for i, d := range dsts {
		ns := s.G.Neighbors(int(d))
		deg := float64(len(ns))
		if deg == 0 {
			continue
		}
		for _, v := range ns {
			m, ok := mult[v]
			if !ok {
				continue
			}
			w := float64(m) / (deg * t * s.probs[v])
			b.Neigh[i] = append(b.Neigh[i], um.add(v))
			b.Weight[i] = append(b.Weight[i], w)
		}
	}
	b.Srcs = um.srcs
	return b
}

var _ BlockSampler = (*FastGCNSampler)(nil)

// aliasTable supports O(1) sampling from a discrete distribution
// (Vose's alias method) — the data structure behind every
// degree-proportional draw in this package.
type aliasTable struct {
	prob  []float64
	alias []int
}

func newAliasTable(probs []float64) aliasTable {
	n := len(probs)
	t := aliasTable{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range probs {
		scaled[i] = p * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

func (t aliasTable) draw(rng *rand.Rand) int {
	i := rng.IntN(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// DegreeDistribution exposes the normalized degree-proportional
// probabilities used by the layer-wise samplers (also used by sparsifiers).
func DegreeDistribution(g *graph.CSR) []float64 {
	total := float64(g.NumEdges())
	probs := make([]float64, g.N)
	if total == 0 {
		return probs
	}
	for v := 0; v < g.N; v++ {
		probs[v] = float64(g.Degree(v)) / total
	}
	return probs
}

// ReceptiveField returns the number of distinct nodes reachable within L
// hops of the batch — the exact size of the computation graph a full
// (unsampled) L-layer GNN must materialize for this batch. E1's
// neighborhood-explosion curve is this quantity as a function of L.
func ReceptiveField(g *graph.CSR, batch []int32, layers int) int {
	seen := make(map[int32]struct{}, len(batch)*4)
	frontier := make([]int32, 0, len(batch))
	for _, v := range batch {
		seen[v] = struct{}{}
		frontier = append(frontier, v)
	}
	for l := 0; l < layers; l++ {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Neighbors(int(u)) {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return len(seen)
}

// SampledFieldSize measures the total unique sources across the sampled
// multi-layer computation graph drawn by a NeighborSampler — the quantity
// that stays bounded when sampling caps the explosion.
func SampledFieldSize(s *NeighborSampler, batch []int32, layers int, rng *rand.Rand) int {
	blocks := s.SampleLayers(batch, layers, rng)
	return blocks[len(blocks)-1].NumUniqueSrcs()
}

// EstimateAggregationError runs the sampler and reports the relative
// Frobenius error of its aggregation estimate against the exact operator —
// convenience wrapper over MeasureVariance used in benchmarks.
func EstimateAggregationError(g *graph.CSR, x *tensor.Matrix, s BlockSampler, dsts []int32, rng *rand.Rand) float64 {
	blk := s.SampleBlock(dsts, rng)
	est := blk.Aggregate(selectRows(x, blk.Srcs))
	exactBlk := ExactBlock(g, dsts)
	exact := exactBlk.Aggregate(selectRows(x, exactBlk.Srcs))
	est.Sub(exact)
	denom := exact.FrobeniusNorm()
	if denom == 0 {
		return 0
	}
	return est.FrobeniusNorm() / denom
}

// LadiesSampler is the layer-dependent variant of importance sampling:
// like FastGCN it draws a fixed per-layer budget, but candidates are
// restricted to the union of the destinations' neighborhoods, so no draw
// is wasted on nodes that cannot contribute (the LADIES refinement).
type LadiesSampler struct {
	G      *graph.CSR
	Budget int
}

// NewLadiesSampler validates and constructs the sampler.
func NewLadiesSampler(g *graph.CSR, budget int) (*LadiesSampler, error) {
	if budget < 1 {
		return nil, fmt.Errorf("sampling: budget %d < 1", budget)
	}
	return &LadiesSampler{G: g, Budget: budget}, nil
}

// SampleBlock draws Budget sources from the dsts' neighborhood union with
// probability proportional to degree (restricted), wiring edges with
// Horvitz-Thompson weights.
func (s *LadiesSampler) SampleBlock(dsts []int32, rng *rand.Rand) *Block {
	um := newUniqueMap(dsts)
	b := &Block{
		Dsts:   dsts,
		Neigh:  make([][]int32, len(dsts)),
		Weight: make([][]float64, len(dsts)),
	}
	// Candidate set: union of neighborhoods.
	candSet := make(map[int32]struct{})
	for _, d := range dsts {
		for _, v := range s.G.Neighbors(int(d)) {
			candSet[v] = struct{}{}
		}
	}
	if len(candSet) == 0 {
		b.Srcs = um.srcs
		return b
	}
	cands := make([]int32, 0, len(candSet))
	for v := range candSet {
		cands = append(cands, v)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	probs := make([]float64, len(cands))
	var total float64
	for i, v := range cands {
		probs[i] = float64(s.G.Degree(int(v)))
		total += probs[i]
	}
	q := make(map[int32]float64, len(cands))
	for i := range probs {
		probs[i] /= total
		q[cands[i]] = probs[i]
	}
	at := newAliasTable(probs)
	mult := make(map[int32]int, s.Budget)
	for i := 0; i < s.Budget; i++ {
		mult[cands[at.draw(rng)]]++
	}
	t := float64(s.Budget)
	for i, d := range dsts {
		ns := s.G.Neighbors(int(d))
		deg := float64(len(ns))
		if deg == 0 {
			continue
		}
		for _, v := range ns {
			m, ok := mult[v]
			if !ok {
				continue
			}
			w := float64(m) / (deg * t * q[v])
			b.Neigh[i] = append(b.Neigh[i], um.add(v))
			b.Weight[i] = append(b.Weight[i], w)
		}
	}
	b.Srcs = um.srcs
	return b
}

var _ BlockSampler = (*LadiesSampler)(nil)
