package sampling

import (
	"fmt"
	"math/rand/v2"

	"scalegnn/internal/graph"
	"scalegnn/internal/obs"
)

// SubgraphSample is one subgraph-level training batch: an induced subgraph,
// the original IDs of its nodes, and loss-normalization weights that keep
// subgraph-trained gradients unbiased (the GraphSAINT correction).
type SubgraphSample struct {
	Sub *graph.CSR
	// NodeIDs[i] is the original ID of subgraph node i.
	NodeIDs []int
	// NodeWeight[i] is the inverse inclusion-frequency normalizer for
	// subgraph node i (estimated from pre-sampling); multiply per-node loss
	// terms by it to debias the batch loss.
	NodeWeight []float64
}

// RandomWalkSampler extracts GraphSAINT-RW subgraphs: Roots random roots
// each start a walk of WalkLength steps; the union of visited nodes induces
// the batch subgraph.
type RandomWalkSampler struct {
	G          *graph.CSR
	Roots      int
	WalkLength int

	nodeFreq []float64 // estimated inclusion probability per node
}

// NewRandomWalkSampler validates the configuration and estimates node
// inclusion frequencies with preTrials pre-sampled batches (GraphSAINT's
// normalization pre-pass). preTrials = 0 skips estimation and uses uniform
// weights.
func NewRandomWalkSampler(g *graph.CSR, roots, walkLength, preTrials int, rng *rand.Rand) (*RandomWalkSampler, error) {
	if roots < 1 || walkLength < 0 {
		return nil, fmt.Errorf("sampling: invalid roots %d / walk length %d", roots, walkLength)
	}
	s := &RandomWalkSampler{G: g, Roots: roots, WalkLength: walkLength}
	if preTrials > 0 {
		counts := make([]float64, g.N)
		for t := 0; t < preTrials; t++ {
			for _, v := range s.sampleNodeSet(rng) {
				counts[v]++
			}
		}
		s.nodeFreq = counts
		for i := range s.nodeFreq {
			s.nodeFreq[i] /= float64(preTrials)
		}
	}
	return s, nil
}

// sampleNodeSet runs the walks and returns the distinct visited nodes.
func (s *RandomWalkSampler) sampleNodeSet(rng *rand.Rand) []int {
	seen := make(map[int32]struct{}, s.Roots*(s.WalkLength+1))
	order := make([]int, 0, s.Roots*(s.WalkLength+1))
	visit := func(v int32) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			order = append(order, int(v))
		}
	}
	for r := 0; r < s.Roots; r++ {
		u := int32(rng.IntN(s.G.N))
		visit(u)
		for step := 0; step < s.WalkLength; step++ {
			ns := s.G.Neighbors(int(u))
			if len(ns) == 0 {
				break
			}
			u = ns[rng.IntN(len(ns))]
			visit(u)
		}
	}
	return order
}

// Sample draws one subgraph batch.
func (s *RandomWalkSampler) Sample(rng *rand.Rand) *SubgraphSample {
	sp := obs.Start("sampling.saint_rw")
	defer sp.End()
	nodes := s.sampleNodeSet(rng)
	sp.SetCount(int64(len(nodes)))
	sub, ids := s.G.InducedSubgraph(nodes)
	w := make([]float64, len(ids))
	for i, orig := range ids {
		if s.nodeFreq != nil && s.nodeFreq[orig] > 0 {
			w[i] = 1 / s.nodeFreq[orig]
		} else {
			w[i] = 1
		}
	}
	return &SubgraphSample{Sub: sub, NodeIDs: ids, NodeWeight: w}
}

// EdgeSampler extracts subgraphs by sampling edges with probability
// proportional to 1/deg(u) + 1/deg(v) (the variance-minimizing edge
// distribution from GraphSAINT) and inducing on their endpoints.
type EdgeSampler struct {
	G      *graph.CSR
	Budget int // number of edges per batch

	edges []graph.Edge
	alias aliasTable
}

// NewEdgeSampler precomputes the edge distribution.
func NewEdgeSampler(g *graph.CSR, budget int) (*EdgeSampler, error) {
	if budget < 1 {
		return nil, fmt.Errorf("sampling: edge budget %d < 1", budget)
	}
	if !g.Undirected() {
		return nil, fmt.Errorf("sampling: EdgeSampler requires an undirected graph")
	}
	edges := g.UndirectedEdges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("sampling: EdgeSampler on empty graph")
	}
	probs := make([]float64, len(edges))
	var total float64
	for i, e := range edges {
		p := 1/float64(g.Degree(e.U)) + 1/float64(g.Degree(e.V))
		probs[i] = p
		total += p
	}
	for i := range probs {
		probs[i] /= total
	}
	return &EdgeSampler{G: g, Budget: budget, edges: edges, alias: newAliasTable(probs)}, nil
}

// Sample draws one edge-induced subgraph batch.
func (s *EdgeSampler) Sample(rng *rand.Rand) *SubgraphSample {
	sp := obs.Start("sampling.saint_edge")
	defer sp.End()
	seen := make(map[int]struct{}, s.Budget*2)
	order := make([]int, 0, s.Budget*2)
	visit := func(v int) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			order = append(order, v)
		}
	}
	for i := 0; i < s.Budget; i++ {
		e := s.edges[s.alias.draw(rng)]
		visit(e.U)
		visit(e.V)
	}
	sp.SetCount(int64(len(order)))
	sub, ids := s.G.InducedSubgraph(order)
	w := make([]float64, len(ids))
	for i := range w {
		w[i] = 1
	}
	return &SubgraphSample{Sub: sub, NodeIDs: ids, NodeWeight: w}
}
