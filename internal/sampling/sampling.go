// Package sampling implements the graph sampling strategies of tutorial
// §3.3.2, organized by the scope of sample selection exactly as the
// tutorial categorizes them:
//
//   - Node-level: GraphSAGE-style uniform neighbor fan-out per target node.
//   - Layer-level: FastGCN-style importance sampling of a fixed node budget
//     per layer, and LABOR-style dependent sampling that couples the random
//     choices of overlapping neighborhoods to cut the number of unique
//     sampled nodes at equal per-node variance.
//   - Subgraph-level: GraphSAINT-style random-walk and edge samplers that
//     extract a training subgraph per batch.
//
// Every estimator targets the mean-aggregation operator
// (P_rw X)_u = (1/deg u) Σ_{v∈N(u)} X_v and is unbiased; the package also
// ships the variance-measurement harness used by experiment E4.
package sampling

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"scalegnn/internal/graph"
	"scalegnn/internal/obs"
	"scalegnn/internal/tensor"
)

// Block is one layer of a sampled computation graph: for each destination
// node, the sampled source neighbors (by position in Srcs) with importance
// weights. Blocks are consumed innermost-first by mini-batch GNN trainers.
type Block struct {
	// Dsts are the global IDs of the nodes whose aggregation this block
	// estimates.
	Dsts []int32
	// Srcs are the global IDs feeding the aggregation. By construction
	// Srcs always begins with Dsts (self features are needed by SAGE-style
	// concatenation).
	Srcs []int32
	// Neigh[i] lists the sampled in-neighbors of Dsts[i] as indices into
	// Srcs; Weight[i][j] is the importance weight of that edge in the
	// unbiased mean estimate.
	Neigh  [][]int32
	Weight [][]float64
}

// NumUniqueSrcs returns the number of distinct source nodes the block
// touches — the memory/compute cost measure the LABOR comparison uses.
func (b *Block) NumUniqueSrcs() int { return len(b.Srcs) }

// Aggregate computes the estimated mean aggregation for every dst given
// the feature rows of Srcs (row i of srcFeats corresponds to Srcs[i]).
func (b *Block) Aggregate(srcFeats *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(len(b.Dsts), srcFeats.Cols)
	for i := range b.Dsts {
		row := out.Row(i)
		for j, s := range b.Neigh[i] {
			w := b.Weight[i][j]
			for c, v := range srcFeats.Row(int(s)) {
				row[c] += w * v
			}
		}
	}
	return out
}

// uniqueMap builds the Srcs slice: dsts first, then newly discovered nodes
// in first-seen order, returning the global->local index map.
type uniqueMap struct {
	srcs  []int32
	index map[int32]int32
}

func newUniqueMap(dsts []int32) *uniqueMap {
	m := &uniqueMap{index: make(map[int32]int32, len(dsts)*4)}
	for _, d := range dsts {
		m.add(d)
	}
	return m
}

func (m *uniqueMap) add(v int32) int32 {
	if i, ok := m.index[v]; ok {
		return i
	}
	i := int32(len(m.srcs))
	m.srcs = append(m.srcs, v)
	m.index[v] = i
	return i
}

// NeighborSampler is the node-level (GraphSAGE) strategy: every target node
// independently draws up to Fanout neighbors uniformly without replacement.
type NeighborSampler struct {
	G      *graph.CSR
	Fanout int
}

// NewNeighborSampler validates and constructs a node-level sampler.
func NewNeighborSampler(g *graph.CSR, fanout int) (*NeighborSampler, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("sampling: fanout %d < 1", fanout)
	}
	return &NeighborSampler{G: g, Fanout: fanout}, nil
}

// SampleBlock draws one block for the given destination nodes.
func (s *NeighborSampler) SampleBlock(dsts []int32, rng *rand.Rand) *Block {
	um := newUniqueMap(dsts)
	b := &Block{
		Dsts:   dsts,
		Neigh:  make([][]int32, len(dsts)),
		Weight: make([][]float64, len(dsts)),
	}
	var scratch []int32
	for i, d := range dsts {
		ns := s.G.Neighbors(int(d))
		deg := len(ns)
		if deg == 0 {
			continue
		}
		k := s.Fanout
		if k >= deg {
			// Take all neighbors exactly: zero sampling variance.
			b.Neigh[i] = make([]int32, deg)
			b.Weight[i] = make([]float64, deg)
			for j, v := range ns {
				b.Neigh[i][j] = um.add(v)
				b.Weight[i][j] = 1 / float64(deg)
			}
			continue
		}
		// Partial Fisher-Yates for k draws without replacement.
		if cap(scratch) < deg {
			scratch = make([]int32, deg)
		}
		scratch = scratch[:deg]
		copy(scratch, ns)
		b.Neigh[i] = make([]int32, k)
		b.Weight[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			pick := j + rng.IntN(deg-j)
			scratch[j], scratch[pick] = scratch[pick], scratch[j]
			b.Neigh[i][j] = um.add(scratch[j])
			b.Weight[i][j] = 1 / float64(k)
		}
	}
	b.Srcs = um.srcs
	return b
}

// SampleLayers draws a multi-layer computation graph for a batch: blocks[0]
// is the outermost layer (aggregating into the batch nodes); each deeper
// block aggregates into the previous block's sources — the recursive
// expansion whose cost growth is the "neighborhood explosion" of §3.1.3.
func (s *NeighborSampler) SampleLayers(batch []int32, layers int, rng *rand.Rand) []*Block {
	// The span's count is the innermost frontier size — the per-batch cost
	// figure the neighborhood-explosion curves plot.
	sp := obs.Start("sampling.layers")
	blocks := make([]*Block, layers)
	dsts := batch
	for l := 0; l < layers; l++ {
		blocks[l] = s.SampleBlock(dsts, rng)
		dsts = blocks[l].Srcs
	}
	sp.SetCount(int64(len(dsts)))
	sp.End()
	return blocks
}

// LaborSampler is the layer-level dependent sampler modeled on LABOR: all
// destination nodes of a layer share one uniform variate r_v per source
// node, and destination u includes neighbor v iff r_v ≤ k/deg(u). Inclusion
// probabilities (and hence per-node variance) match independent Poisson
// sampling with the same budget, but shared variates make overlapping
// neighborhoods select the same sources, shrinking the union of sampled
// nodes — the claim tested in E4.
type LaborSampler struct {
	G      *graph.CSR
	Fanout int
}

// NewLaborSampler validates and constructs a LABOR-style sampler.
func NewLaborSampler(g *graph.CSR, fanout int) (*LaborSampler, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("sampling: fanout %d < 1", fanout)
	}
	return &LaborSampler{G: g, Fanout: fanout}, nil
}

// SampleBlock draws one dependent-sampled block for the destinations.
func (s *LaborSampler) SampleBlock(dsts []int32, rng *rand.Rand) *Block {
	um := newUniqueMap(dsts)
	b := &Block{
		Dsts:   dsts,
		Neigh:  make([][]int32, len(dsts)),
		Weight: make([][]float64, len(dsts)),
	}
	// Shared variates, drawn lazily per source node.
	variates := make(map[int32]float64)
	rOf := func(v int32) float64 {
		if r, ok := variates[v]; ok {
			return r
		}
		r := rng.Float64()
		variates[v] = r
		return r
	}
	for i, d := range dsts {
		ns := s.G.Neighbors(int(d))
		deg := len(ns)
		if deg == 0 {
			continue
		}
		pi := float64(s.Fanout) / float64(deg)
		if pi > 1 {
			pi = 1
		}
		invDeg := 1 / float64(deg)
		for _, v := range ns {
			if rOf(v) <= pi {
				b.Neigh[i] = append(b.Neigh[i], um.add(v))
				// Horvitz-Thompson weight: (1/deg)·(1/π).
				b.Weight[i] = append(b.Weight[i], invDeg/pi)
			}
		}
	}
	b.Srcs = um.srcs
	return b
}

// PoissonSampler is the independent-variate baseline for LaborSampler: the
// same per-edge inclusion probability min(1, k/deg(u)), but with a fresh
// uniform draw per (dst, src) pair. Identical marginal estimator variance;
// strictly more unique sources.
type PoissonSampler struct {
	G      *graph.CSR
	Fanout int
}

// NewPoissonSampler validates and constructs the independent baseline.
func NewPoissonSampler(g *graph.CSR, fanout int) (*PoissonSampler, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("sampling: fanout %d < 1", fanout)
	}
	return &PoissonSampler{G: g, Fanout: fanout}, nil
}

// SampleBlock draws one independently-sampled block.
func (s *PoissonSampler) SampleBlock(dsts []int32, rng *rand.Rand) *Block {
	um := newUniqueMap(dsts)
	b := &Block{
		Dsts:   dsts,
		Neigh:  make([][]int32, len(dsts)),
		Weight: make([][]float64, len(dsts)),
	}
	for i, d := range dsts {
		ns := s.G.Neighbors(int(d))
		deg := len(ns)
		if deg == 0 {
			continue
		}
		pi := float64(s.Fanout) / float64(deg)
		if pi > 1 {
			pi = 1
		}
		invDeg := 1 / float64(deg)
		for _, v := range ns {
			if rng.Float64() <= pi {
				b.Neigh[i] = append(b.Neigh[i], um.add(v))
				b.Weight[i] = append(b.Weight[i], invDeg/pi)
			}
		}
	}
	b.Srcs = um.srcs
	return b
}

// BlockSampler is implemented by all per-layer samplers in this package.
type BlockSampler interface {
	SampleBlock(dsts []int32, rng *rand.Rand) *Block
}

var (
	_ BlockSampler = (*NeighborSampler)(nil)
	_ BlockSampler = (*LaborSampler)(nil)
	_ BlockSampler = (*PoissonSampler)(nil)
)

// ExactBlock returns the no-sampling block (all neighbors, exact weights) —
// the full-graph baseline against which estimator variance is measured.
func ExactBlock(g *graph.CSR, dsts []int32) *Block {
	um := newUniqueMap(dsts)
	b := &Block{
		Dsts:   dsts,
		Neigh:  make([][]int32, len(dsts)),
		Weight: make([][]float64, len(dsts)),
	}
	for i, d := range dsts {
		ns := g.Neighbors(int(d))
		if len(ns) == 0 {
			continue
		}
		w := 1 / float64(len(ns))
		b.Neigh[i] = make([]int32, len(ns))
		b.Weight[i] = make([]float64, len(ns))
		for j, v := range ns {
			b.Neigh[i][j] = um.add(v)
			b.Weight[i][j] = w
		}
	}
	b.Srcs = um.srcs
	return b
}

// VarianceReport summarizes an estimator-quality measurement.
type VarianceReport struct {
	MeanSquaredError float64 // average squared deviation from the exact aggregation
	MeanBias         float64 // average signed deviation (≈0 for unbiased samplers)
	AvgUniqueSrcs    float64 // average unique sources per trial (cost proxy)
}

// MeasureVariance runs `trials` independent samples of the given sampler on
// the destination set and compares the estimated aggregation of features x
// against the exact mean aggregation.
func MeasureVariance(g *graph.CSR, x *tensor.Matrix, s BlockSampler, dsts []int32, trials int, rng *rand.Rand) VarianceReport {
	exactBlk := ExactBlock(g, dsts)
	exact := exactBlk.Aggregate(selectRows(x, exactBlk.Srcs))
	var sse, bias, uniq float64
	count := 0
	for t := 0; t < trials; t++ {
		blk := s.SampleBlock(dsts, rng)
		est := blk.Aggregate(selectRows(x, blk.Srcs))
		uniq += float64(blk.NumUniqueSrcs())
		for i := 0; i < est.Rows; i++ {
			for j := 0; j < est.Cols; j++ {
				d := est.At(i, j) - exact.At(i, j)
				sse += d * d
				bias += d
				count++
			}
		}
	}
	return VarianceReport{
		MeanSquaredError: sse / float64(count),
		MeanBias:         bias / float64(count),
		AvgUniqueSrcs:    uniq / float64(trials),
	}
}

func selectRows(x *tensor.Matrix, ids []int32) *tensor.Matrix {
	idx := make([]int, len(ids))
	for i, v := range ids {
		idx[i] = int(v)
	}
	return x.SelectRows(idx)
}

// SortedCopy returns a sorted copy of node IDs; helper shared by tests and
// subgraph extraction.
func SortedCopy(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AggregateBackward is the adjoint of Aggregate: given ∂L/∂(aggregated
// output) it returns ∂L/∂(source features), scattering each weighted
// contribution back to the source rows. Used by mini-batch GNN trainers.
func (b *Block) AggregateBackward(gradOut *tensor.Matrix) *tensor.Matrix {
	gradSrc := tensor.New(len(b.Srcs), gradOut.Cols)
	for i := range b.Dsts {
		grow := gradOut.Row(i)
		for j, s := range b.Neigh[i] {
			w := b.Weight[i][j]
			dst := gradSrc.Row(int(s))
			for c, v := range grow {
				dst[c] += w * v
			}
		}
	}
	return gradSrc
}
