package par

import (
	"sync"
	"testing"
)

// TestRangeCoversAll verifies every index is visited exactly once for a
// spread of sizes, including edge cases around the inline threshold.
func TestRangeCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000, 4096, 100001} {
		seen := make([]int32, n)
		var mu sync.Mutex
		Range(n, DefaultMinChunk, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// TestRangeDeterministicSplit verifies two runs with the same inputs produce
// identical chunk boundaries.
func TestRangeDeterministicSplit(t *testing.T) {
	collect := func() [][2]int {
		var mu sync.Mutex
		var chunks [][2]int
		Range(10000, 64, func(lo, hi int) {
			mu.Lock()
			chunks = append(chunks, [2]int{lo, hi})
			mu.Unlock()
		})
		return chunks
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	inA := make(map[[2]int]bool, len(a))
	for _, c := range a {
		inA[c] = true
	}
	for _, c := range b {
		if !inA[c] {
			t.Fatalf("chunk %v only in second run", c)
		}
	}
}

// TestSetMaxWorkers verifies the cap is honored and restorable.
func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if got := MaxWorkers(); got != 1 {
		t.Fatalf("MaxWorkers() = %d after SetMaxWorkers(1)", got)
	}
	if got := Workers(1_000_000, 1); got != 1 {
		t.Fatalf("Workers = %d with cap 1", got)
	}
	calls := 0
	Range(10000, 1, func(lo, hi int) { calls++ }) // cap 1 => inline, no races
	if calls != 1 {
		t.Fatalf("expected 1 inline call with cap 1, got %d", calls)
	}
	SetMaxWorkers(0)
	if MaxWorkers() < 1 {
		t.Fatalf("MaxWorkers() < 1 after reset")
	}
}
