// Package par provides the shared deterministic work partitioner used by
// every parallel kernel in scalegnn (dense tensor kernels, sparse graph
// propagation, samplers). Centralizing the split logic guarantees that all
// kernels chunk work identically — same chunk boundaries for the same n —
// which keeps parallel reductions deterministic, and gives one place to
// tune parallelism (e.g. capping workers for benchmarking or co-tenancy).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"scalegnn/internal/obs"
)

// DefaultMinChunk is the minimum rows-per-worker below which Range runs
// inline. Kernels with cheaper per-row work should pass a larger minChunk.
const DefaultMinChunk = 64

// maxWorkers caps the number of concurrent workers; 0 means GOMAXPROCS.
var maxWorkers atomic.Int64

// SetMaxWorkers caps the worker count used by Range and returns the
// previous cap. n <= 0 restores the default (GOMAXPROCS at call time).
// Safe for concurrent use; intended for benchmarks and co-tenant tuning.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers returns the current worker cap (GOMAXPROCS if unset).
func MaxWorkers() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the number of chunks Range will use for n items with the
// given minimum chunk size. It is exported so callers can pre-size
// per-worker scratch space to match the split exactly.
func Workers(n, minChunk int) int {
	if minChunk < 1 {
		minChunk = 1
	}
	w := MaxWorkers()
	if w > n/minChunk {
		w = n / minChunk
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Range splits [0, n) into contiguous chunks, one per worker, and runs
// fn(lo, hi) concurrently on each. The split is deterministic: for a given
// (n, minChunk, worker cap) every call produces identical chunk boundaries,
// so floating-point reductions partitioned this way are reproducible.
// When the work is too small to amortize goroutine overhead (fewer than
// 2*minChunk items, or a cap of 1), fn runs inline on the calling
// goroutine. fn must not panic across goroutines.
func Range(n, minChunk int, fn func(lo, hi int)) {
	workers := Workers(n, minChunk)
	if workers <= 1 {
		if n > 0 {
			inlineRanges.Add(1)
			fn(0, n)
		}
		return
	}
	parallelRanges.Add(1)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	spawned := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		spawned++
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	tasksSpawned.Add(int64(spawned))
	wg.Wait()
}

// Partitioner metric refs, disabled until EnableMetrics binds them: with no
// registry each Range pays one atomic pointer load, nothing more.
var (
	inlineRanges   obs.CounterRef
	parallelRanges obs.CounterRef
	tasksSpawned   obs.CounterRef
)

// EnableMetrics binds the partitioner's metrics to reg:
//
//	par.ranges_inline    counter  Range calls run inline (work too small)
//	par.ranges_parallel  counter  Range calls that fanned out
//	par.tasks            counter  worker chunks spawned across all Ranges
//
// A high inline share on large inputs points at minChunk tuning; tasks per
// parallel range shows the effective fan-out. Pass nil to unbind.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		inlineRanges.Bind(nil)
		parallelRanges.Bind(nil)
		tasksSpawned.Bind(nil)
		return
	}
	inlineRanges.Bind(reg.Counter("par.ranges_inline"))
	parallelRanges.Bind(reg.Counter("par.ranges_parallel"))
	tasksSpawned.Bind(reg.Counter("par.tasks"))
}
