// Package simrank implements SimRank node-pair similarity — the structural
// metric SIMGA (tutorial §3.2.2) uses to discover global, long-distance
// relevance for heterophilous GNN aggregation.
//
// Two computation paths are provided, mirroring the exact/approximate split
// in the literature:
//
//   - AllPairs: the classic Jeh-Widom iteration S ← C·WᵀSW with unit
//     diagonal, exact up to truncation. O(n²) memory; small graphs and tests.
//   - Index: Fogaras-Rácz walk fingerprints with an inverted occurrence
//     index, supporting single-source and top-k queries in time proportional
//     to walk collisions — sublinear in n for sparse graphs, which is what
//     makes SimRank usable inside a scalable GNN pipeline.
//
// SimRank here follows the random-surfer-pair model: s(a,b) = E[C^τ] where τ
// is the first meeting time of two independent √C-decayed walks. On
// undirected graphs walks step to uniform neighbors.
package simrank

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"scalegnn/internal/graph"
	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
)

// AllPairs computes the SimRank matrix by the Jeh-Widom fixed-point
// iteration with decay c, running iters rounds. The returned matrix is
// symmetric with unit diagonal. O(n²·d) per round via sparse-dense products;
// intended for graphs small enough to hold an n×n dense matrix.
func AllPairs(g *graph.CSR, c float64, iters int) (*tensor.Matrix, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("simrank: decay c=%v outside (0,1)", c)
	}
	if iters < 1 {
		return nil, fmt.Errorf("simrank: iters=%d < 1", iters)
	}
	n := g.N
	s := tensor.New(n, n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1)
	}
	// One iteration: S' = c · Wᵀ S W (W = A·D^{-1} column-normalized, i.e.
	// averaging over neighbors), then diag(S') = 1.
	// Each destination row a reads only src and writes only dst.Row(a), and
	// its neighbor sum is accumulated in a fixed order within one worker —
	// chunking rows over internal/par keeps the result bitwise identical to
	// the sequential loop.
	avgNeighbors := func(src *tensor.Matrix) *tensor.Matrix {
		// dst[a][j] = (1/deg(a)) Σ_{i ∈ N(a)} src[i][j]
		dst := tensor.New(n, n)
		par.Range(n, 8, func(lo, hi int) {
			for a := lo; a < hi; a++ {
				ns := g.Neighbors(a)
				if len(ns) == 0 {
					continue
				}
				inv := 1 / float64(len(ns))
				drow := dst.Row(a)
				for _, i := range ns {
					srow := src.Row(int(i))
					for j := range drow {
						drow[j] += srow[j]
					}
				}
				for j := range drow {
					drow[j] *= inv
				}
			}
		})
		return dst
	}
	for it := 0; it < iters; it++ {
		half := avgNeighbors(s)        // rows averaged
		s = avgNeighbors(half.T()).T() // columns averaged (via transpose)
		s.Scale(c)
		for i := 0; i < n; i++ {
			s.Set(i, i, 1)
		}
	}
	return s, nil
}

// Index is a precomputed walk-fingerprint index for Monte Carlo SimRank
// queries. Building costs O(n·R·L) walk steps and memory; queries then cost
// time proportional to actual walk collisions.
type Index struct {
	g     *graph.CSR
	c     float64
	r     int     // walks per node
	l     int     // walk length
	walks []int32 // walks[(rw*(l+1)+t)*n + v] = position of v's rw-th walk at step t
	// occ[(rw*l + (t-1))] maps node -> sources whose rw-th walk visits it at
	// step t. Built lazily as sorted (pos, src) pairs for cache efficiency.
	occ []map[int32][]int32
}

// IndexConfig configures BuildIndex.
type IndexConfig struct {
	C      float64 // SimRank decay, in (0,1); 0.6 is the usual choice
	Walks  int     // walks per node (R); error shrinks as O(1/√R)
	Length int     // walk length (L); truncates C^L tail mass
}

// DefaultIndexConfig returns C=0.6, 64 walks of length 5 — enough for the
// top-k ordering experiments while keeping index memory at ~n·R·L int32s.
func DefaultIndexConfig() IndexConfig { return IndexConfig{C: 0.6, Walks: 64, Length: 5} }

// BuildIndex samples R √c-continuing walks of length L from every node and
// builds the inverted occurrence index.
//
// Walk semantics: the pair-walk model decays by c per simultaneous step, so
// each single walk continues with probability √c per step (two walks
// stepping together contribute c). A walk that stops is marked absent (-1)
// from then on.
func BuildIndex(g *graph.CSR, cfg IndexConfig, rng *rand.Rand) (*Index, error) {
	if cfg.C <= 0 || cfg.C >= 1 {
		return nil, fmt.Errorf("simrank: decay c=%v outside (0,1)", cfg.C)
	}
	if cfg.Walks < 1 || cfg.Length < 1 {
		return nil, fmt.Errorf("simrank: need positive Walks and Length, got %d/%d", cfg.Walks, cfg.Length)
	}
	n := g.N
	idx := &Index{g: g, c: cfg.C, r: cfg.Walks, l: cfg.Length}
	idx.walks = make([]int32, cfg.Walks*(cfg.Length+1)*n)
	idx.occ = make([]map[int32][]int32, cfg.Walks*cfg.Length)
	sqrtC := math.Sqrt(cfg.C)
	for rw := 0; rw < cfg.Walks; rw++ {
		for t := 1; t <= cfg.Length; t++ {
			idx.occ[rw*cfg.Length+t-1] = make(map[int32][]int32)
		}
		for v := 0; v < n; v++ {
			idx.walks[(rw*(cfg.Length+1))*n+v] = int32(v)
			cur := int32(v)
			alive := true
			for t := 1; t <= cfg.Length; t++ {
				if alive {
					if rng.Float64() >= sqrtC {
						alive = false
					} else {
						ns := g.Neighbors(int(cur))
						if len(ns) == 0 {
							alive = false
						} else {
							cur = ns[rng.IntN(len(ns))]
						}
					}
				}
				slot := (rw*(cfg.Length+1) + t) * n
				if alive {
					idx.walks[slot+v] = cur
					m := idx.occ[rw*cfg.Length+t-1]
					m[cur] = append(m[cur], int32(v))
				} else {
					idx.walks[slot+v] = -1
				}
			}
		}
	}
	return idx, nil
}

// MemoryFootprint returns the approximate index size in bytes (walk array
// plus occurrence lists), the quantity the §3.3.3 storage experiments track.
func (ix *Index) MemoryFootprint() int {
	bytes := len(ix.walks) * 4
	for _, m := range ix.occ {
		for _, lst := range m {
			bytes += 4*len(lst) + 16
		}
	}
	return bytes
}

// SingleSource estimates s(a, b) for all b, returning a dense score slice.
// First-meeting semantics: for each walk pair r, only the earliest collision
// between a's walk and b's walk counts.
func (ix *Index) SingleSource(a int) ([]float64, error) {
	if a < 0 || a >= ix.g.N {
		return nil, fmt.Errorf("simrank: source %d out of range [0,%d)", a, ix.g.N)
	}
	scores := make([]float64, ix.g.N)
	met := make(map[int32]bool, 64)
	invR := 1 / float64(ix.r)
	for rw := 0; rw < ix.r; rw++ {
		clear(met)
		for t := 1; t <= ix.l; t++ {
			pos := ix.walks[(rw*(ix.l+1)+t)*ix.g.N+a]
			if pos < 0 {
				break // a's walk stopped; no further meetings possible
			}
			// All sources whose rw-th walk is at pos at step t collide here.
			for _, b := range ix.occ[rw*ix.l+t-1][pos] {
				if int(b) == a || met[b] {
					continue
				}
				met[b] = true
				scores[b] += invR // decay already encoded in √c walk survival
			}
		}
	}
	scores[a] = 1
	return scores, nil
}

// Pair estimates s(a, b) from the index.
func (ix *Index) Pair(a, b int) (float64, error) {
	if a < 0 || a >= ix.g.N || b < 0 || b >= ix.g.N {
		return 0, fmt.Errorf("simrank: pair (%d,%d) out of range", a, b)
	}
	if a == b {
		return 1, nil
	}
	var hits float64
	n := ix.g.N
	for rw := 0; rw < ix.r; rw++ {
		for t := 1; t <= ix.l; t++ {
			pa := ix.walks[(rw*(ix.l+1)+t)*n+a]
			if pa < 0 {
				break
			}
			pb := ix.walks[(rw*(ix.l+1)+t)*n+b]
			if pb < 0 {
				break
			}
			if pa == pb {
				hits++
				break // first meeting only
			}
		}
	}
	return hits / float64(ix.r), nil
}

// Entry is a scored node.
type Entry struct {
	Node  int
	Score float64
}

// TopK returns the k most similar nodes to a (excluding a itself), sorted
// descending by score with ties broken by node ID — the query SIMGA issues
// per node to assemble its global-aggregation neighborhood.
func (ix *Index) TopK(a, k int) ([]Entry, error) {
	scores, err := ix.SingleSource(a)
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, 64)
	for v, s := range scores {
		if v != a && s > 0 {
			entries = append(entries, Entry{Node: v, Score: s})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].Node < entries[j].Node
	})
	if k < len(entries) {
		entries = entries[:k]
	}
	return entries, nil
}
