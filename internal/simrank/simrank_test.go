package simrank

import (
	"math"
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func TestAllPairsBasicProperties(t *testing.T) {
	rng := tensor.NewRand(1)
	g := graph.ErdosRenyi(20, 50, rng)
	s, err := AllPairs(g, 0.6, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		if s.At(i, i) != 1 {
			t.Fatalf("s(%d,%d) = %v, want 1", i, i, s.At(i, i))
		}
		for j := 0; j < g.N; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("s(%d,%d) = %v outside [0,1]", i, j, v)
			}
			if math.Abs(v-s.At(j, i)) > 1e-12 {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestAllPairsStarClosedForm(t *testing.T) {
	// In a star, two leaves both have the hub as their only neighbor, so
	// s(leaf_i, leaf_j) = c · s(hub, hub) = c.
	g := graph.Star(5)
	c := 0.6
	s, err := AllPairs(g, c, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.At(1, 2)-c) > 1e-10 {
		t.Errorf("s(leaf,leaf) = %v, want %v", s.At(1, 2), c)
	}
	// Hub vs leaf: neighbors are {leaves} vs {hub}; s(hub, leaf) =
	// c · mean_i s(leaf_i, hub) — fixed point where s(hub,leaf)=x satisfies
	// x = c·x, so x = 0.
	if s.At(0, 1) > 1e-10 {
		t.Errorf("s(hub,leaf) = %v, want 0", s.At(0, 1))
	}
}

func TestAllPairsValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := AllPairs(g, 0, 5); err == nil {
		t.Error("c=0 should error")
	}
	if _, err := AllPairs(g, 1, 5); err == nil {
		t.Error("c=1 should error")
	}
	if _, err := AllPairs(g, 0.5, 0); err == nil {
		t.Error("iters=0 should error")
	}
}

func TestAllPairsDisconnectedZero(t *testing.T) {
	// Nodes in different components never meet: similarity 0.
	g, err := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := AllPairs(g, 0.6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 2) != 0 || s.At(1, 3) != 0 {
		t.Errorf("cross-component similarity nonzero: %v, %v", s.At(0, 2), s.At(1, 3))
	}
}

func TestIndexMatchesExact(t *testing.T) {
	rng := tensor.NewRand(2)
	g := graph.ErdosRenyi(30, 80, rng)
	exact, err := AllPairs(g, 0.6, 12)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(g, IndexConfig{C: 0.6, Walks: 3000, Length: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for a := 0; a < 5; a++ {
		scores, err := ix.SingleSource(a)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < g.N; b++ {
			if e := math.Abs(scores[b] - exact.At(a, b)); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 0.05 {
		t.Errorf("MC index max error %v vs exact (3000 walks)", maxErr)
	}
}

func TestIndexPairConsistentWithSingleSource(t *testing.T) {
	rng := tensor.NewRand(3)
	g := graph.BarabasiAlbert(50, 3, rng)
	ix, err := BuildIndex(g, IndexConfig{C: 0.6, Walks: 200, Length: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := ix.SingleSource(7)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < g.N; b += 5 {
		p, err := ix.Pair(7, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-scores[b]) > 1e-12 {
			t.Fatalf("Pair(7,%d)=%v != SingleSource %v", b, p, scores[b])
		}
	}
}

func TestIndexSelfSimilarityOne(t *testing.T) {
	rng := tensor.NewRand(4)
	g := graph.Cycle(10)
	ix, err := BuildIndex(g, DefaultIndexConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.Pair(3, 3)
	if err != nil || s != 1 {
		t.Errorf("self similarity = %v, err %v", s, err)
	}
	ss, _ := ix.SingleSource(3)
	if ss[3] != 1 {
		t.Errorf("SingleSource self = %v", ss[3])
	}
}

func TestTopKOrderingAndExclusion(t *testing.T) {
	rng := tensor.NewRand(5)
	g := graph.BarabasiAlbert(80, 3, rng)
	ix, err := BuildIndex(g, IndexConfig{C: 0.6, Walks: 400, Length: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	top, err := ix.TopK(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || len(top) > 10 {
		t.Fatalf("TopK size %d", len(top))
	}
	for i, e := range top {
		if e.Node == 0 {
			t.Error("TopK must exclude the query node")
		}
		if i > 0 && e.Score > top[i-1].Score {
			t.Error("TopK not sorted descending")
		}
	}
}

func TestIndexValidation(t *testing.T) {
	g := graph.Path(4)
	rng := tensor.NewRand(6)
	if _, err := BuildIndex(g, IndexConfig{C: 1.2, Walks: 10, Length: 3}, rng); err == nil {
		t.Error("bad C should error")
	}
	if _, err := BuildIndex(g, IndexConfig{C: 0.6, Walks: 0, Length: 3}, rng); err == nil {
		t.Error("zero walks should error")
	}
	ix, err := BuildIndex(g, IndexConfig{C: 0.6, Walks: 4, Length: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SingleSource(-1); err == nil {
		t.Error("bad source should error")
	}
	if _, err := ix.Pair(0, 99); err == nil {
		t.Error("bad pair should error")
	}
}

func TestIndexMemoryFootprintPositive(t *testing.T) {
	rng := tensor.NewRand(7)
	g := graph.BarabasiAlbert(100, 3, rng)
	ix, err := BuildIndex(g, DefaultIndexConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if ix.MemoryFootprint() <= 0 {
		t.Error("MemoryFootprint should be positive")
	}
}

func TestSimRankHomophilyStructure(t *testing.T) {
	// On a strongly modular SBM, intra-block SimRank should on average
	// exceed inter-block SimRank — the property SIMGA exploits.
	rng := tensor.NewRand(8)
	g, labels, err := graph.SBM(graph.SBMConfig{Nodes: 60, Blocks: 2, AvgDegree: 8, Homophily: 0.9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := AllPairs(g, 0.6, 10)
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var nIntra, nInter int
	for a := 0; a < g.N; a++ {
		for b := a + 1; b < g.N; b++ {
			if labels[a] == labels[b] {
				intra += s.At(a, b)
				nIntra++
			} else {
				inter += s.At(a, b)
				nInter++
			}
		}
	}
	if intra/float64(nIntra) <= inter/float64(nInter) {
		t.Errorf("intra-block SimRank %.4f not above inter-block %.4f",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(2000, 5, rng)
	cfg := DefaultIndexConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(g, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKQuery(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(2000, 5, rng)
	ix, err := BuildIndex(g, DefaultIndexConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.TopK(i%g.N, 16); err != nil {
			b.Fatal(err)
		}
	}
}
