// Package nakedgo is a gnnlint test fixture for the naked-go check.
package nakedgo

import "sync"

func spawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine spawned"
		defer wg.Done()
	}()
	wg.Wait()
}

func suppressed() {
	done := make(chan struct{})
	//lint:ignore naked-go single watchdog goroutine, not a parallel kernel
	go func() {
		close(done)
	}()
	<-done
}

func reasonless() {
	done := make(chan struct{})
	//lint:ignore naked-go
	go func() { // want "goroutine spawned"
		close(done)
	}()
	<-done
}
