// Package confine is a gnnlint test fixture for the goroutine-confine
// check: lint:confine-marked functions reachable from at most one
// goroutine-spawning site per label, and implementations of confined
// interface methods must carry the marker.
package confine

// Scorer is a confined contract: implementations reuse unsynchronized
// scratch state, so exactly one goroutine may drive Score.
type Scorer interface {
	// Score computes a value using pooled scratch.
	// lint:confine fixture-score
	Score(n int) int
}

// marked carries the marker its interface demands — clean.
type marked struct{ scratch []int }

// Score implements Scorer.
// lint:confine fixture-score
func (m *marked) Score(n int) int {
	if len(m.scratch) < n {
		m.scratch = make([]int, n)
	}
	return len(m.scratch)
}

// unmarked silently opts out of the confinement contract.
type unmarked struct{}

// Score implements Scorer without the marker.
func (unmarked) Score(n int) int { return n } // want "lacks the marker"

// confined is a plain confined function.
// lint:confine pump
func confined(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// startPump is the one legitimate spawn site for the pump label.
func startPump(ch chan int) {
	go confined(ch)
}

// worker reaches confined code indirectly.
func worker(ch chan int) {
	confined(ch)
}

// startSecondPump adds a second goroutine driving the same label.
func startSecondPump(ch chan int) {
	go worker(ch) // want "already driven by the goroutine spawned at"
}

// startSuppressedPump would be a third site, but the directive (with its
// mandatory reason) silences it.
func startSuppressedPump(ch chan int) {
	//lint:ignore goroutine-confine test-only drain, never runs concurrently
	go confined(ch)
}
