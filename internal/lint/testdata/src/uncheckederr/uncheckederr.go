// Package uncheckederr is a gnnlint test fixture for the unchecked-error
// check.
package uncheckederr

import (
	"fmt"
	"os"
	"strings"
)

// dropped ignores error results as bare statements.
func dropped(path string) {
	os.Remove(path) // want "drops its error result"
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close() // want "deferred call drops its error result"
}

// handled checks or explicitly discards every error.
func handled(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	_ = os.Remove(path) // visible decision: allowed
	return nil
}

// infallible writes don't need checking.
func infallible(n int) string {
	fmt.Println("count:", n)
	fmt.Fprintf(os.Stderr, "count: %d\n", n)
	var sb strings.Builder
	fmt.Fprintf(&sb, "count: %d", n)
	return sb.String()
}

// suppressed documents an intentional drop.
func suppressed(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	//lint:ignore unchecked-error file is open read-only; Close cannot lose data
	defer f.Close()
	fmt.Println(f.Name())
}
