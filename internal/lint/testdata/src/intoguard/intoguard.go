// Package intoguard is a gnnlint test fixture for the into-guard check.
package intoguard

import "scalegnn/internal/tensor"

// BadInto writes into dst without any validation.
func BadInto(src, dst *tensor.Matrix) { // want "destination shape" "aliasing"
	for i := range dst.Data {
		dst.Data[i] = src.Data[i%len(src.Data)] * 2
	}
}

// NoAliasCheckInto validates shape but not aliasing.
func NoAliasCheckInto(src, dst *tensor.Matrix) { // want "aliasing"
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("intoguard: shape mismatch")
	}
	copy(dst.Data, src.Data)
}

// GoodInto has both guards.
func GoodInto(src, dst *tensor.Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("intoguard: shape mismatch")
	}
	if tensor.Overlaps(src.Data, dst.Data) {
		panic("intoguard: dst aliases src")
	}
	copy(dst.Data, src.Data)
}

// ErrorInto guards by returning errors instead of panicking.
func ErrorInto(src []float64, dst []float64) error {
	if len(dst) != len(src) {
		return errMismatch
	}
	if tensor.Overlaps(src, dst) {
		return errAlias
	}
	copy(dst, src)
	return nil
}

// scalarInto is unexported: the convention applies to the public kernel
// surface only.
func scalarInto(v float64, dst []float64) {
	for i := range dst {
		dst[i] = v
	}
}

// NothingInto takes no tensor storage, so the convention does not apply.
func NothingInto(n int) int { return n + 1 }

var (
	errMismatch = tensorError("shape mismatch")
	errAlias    = tensorError("aliasing")
)

type tensorError string

func (e tensorError) Error() string { return string(e) }

// BadGenericInto writes into generic tensor storage without guards: the
// check must see through Mat[T] the same as the float64 Matrix alias.
func BadGenericInto[T tensor.Elem](src, dst *tensor.Mat[T]) { // want "destination shape" "aliasing"
	for i := range dst.Data {
		dst.Data[i] = src.Data[i%len(src.Data)]
	}
}

// GoodGenericInto carries both guards at any element type.
func GoodGenericInto[T tensor.Elem](src, dst *tensor.Mat[T]) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("intoguard: shape mismatch")
	}
	if tensor.Overlaps(src.Data, dst.Data) {
		panic("intoguard: dst aliases src")
	}
	copy(dst.Data, src.Data)
}

// SliceElemInto writes into []T for an Elem-constrained parameter; shape is
// validated but aliasing is not.
func SliceElemInto[T tensor.Elem](src, dst []T) { // want "aliasing"
	if len(dst) != len(src) {
		panic("intoguard: length mismatch")
	}
	copy(dst, src)
}

// Float32Into writes into a raw float32 slice without any validation.
func Float32Into(v float32, dst []float32) { // want "destination shape" "aliasing"
	for i := range dst {
		dst[i] = v
	}
}
