// Package distnet is a gnnlint test fixture for the conn-deadline check:
// every net.Conn Read/Write must be preceded on its dataflow path by a
// SetReadDeadline/SetWriteDeadline (or SetDeadline) on the same
// connection. The directory is named distnet because the check applies
// only to the distributed networking layer.
package distnet

import (
	"net"
	"time"
)

// readArmed is the correct shape: the deadline is armed immediately before
// the blocking read.
func readArmed(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Read(buf)
}

// writeArmed mirrors it for the write side.
func writeArmed(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Write(buf)
}

// combinedDeadline arms both directions at once.
func combinedDeadline(conn net.Conn, buf []byte) error {
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	if _, err := conn.Read(buf); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	return err
}

// nakedRead blocks forever on a dead peer: no failure detector.
func nakedRead(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf) // want "without SetReadDeadline"
}

// nakedWrite hangs when the peer stops draining its socket.
func nakedWrite(conn net.Conn, buf []byte) (int, error) {
	return conn.Write(buf) // want "without SetWriteDeadline"
}

// wrongDirection arms only the write side, then blocks in a read.
func wrongDirection(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Read(buf) // want "without SetReadDeadline"
}

// oneBranchUnarmed is the must-analysis case: the deadline is set on one
// branch only, so the merge point may still be unarmed.
func oneBranchUnarmed(conn net.Conn, buf []byte, fast bool) (int, error) {
	if fast {
		if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
			return 0, err
		}
	}
	return conn.Read(buf) // want "without SetReadDeadline"
}

// rebindResets: a fresh connection value has no deadlines armed, whatever
// the variable's previous state.
func rebindResets(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	var err error
	conn, err = net.Dial("unix", "/tmp/x.sock")
	if err != nil {
		return 0, err
	}
	return conn.Read(buf) // want "without SetReadDeadline"
}

// loopReArmed arms the deadline at the top of every iteration — the
// canonical read-loop shape.
func loopReArmed(conn net.Conn, buf []byte) error {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
			return err
		}
		if _, err := conn.Read(buf); err != nil {
			return err
		}
	}
}

// twoConnsIndependent: arming one connection says nothing about the other.
func twoConnsIndependent(a, b net.Conn, buf []byte) (int, error) {
	if err := a.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	if _, err := a.Read(buf); err != nil {
		return 0, err
	}
	return b.Read(buf) // want "without SetReadDeadline"
}

// suppressed documents the escape hatch: a connection that is known
// non-blocking may opt out with an explicit justification.
func suppressed(conn net.Conn, buf []byte) (int, error) {
	//lint:ignore conn-deadline fixture: exercising the suppression path
	return conn.Read(buf)
}
