// Package serve is a gnnlint test fixture for the state-bind check: a
// request path may Load the hot-swap atomic.Pointer at most once, and
// never bind a snapshot it does not use. The directory is named serve
// because the check applies only to serving packages.
package serve

import "sync/atomic"

// state is one immutable generation of serving state.
type state struct{ gen int }

type engine struct {
	cur atomic.Pointer[state]
}

// predictOnce is the correct shape: one Load, snapshot threaded down.
func (e *engine) predictOnce(n int) int {
	st := e.cur.Load()
	return score(st, n)
}

func score(st *state, n int) int { return st.gen * n }

// doubleLoad takes two snapshots on one path: the response can mix
// generations across a hot swap.
func (e *engine) doubleLoad(n int) int {
	a := e.cur.Load()
	b := e.cur.Load() // want "second Load"
	return a.gen + b.gen + n
}

// current hides a Load behind a helper; the summary attributes it to
// every call site.
func (e *engine) current() *state { return e.cur.Load() }

// transitiveDouble double-loads through the helper.
func (e *engine) transitiveDouble() int {
	st := e.current()
	return st.gen + e.current().gen // want "second Load"
}

// loadInLoop reloads every iteration: the back edge makes each pass after
// the first a second Load on that path.
func (e *engine) loadInLoop(k int) int {
	t := 0
	for i := 0; i < k; i++ {
		t += e.cur.Load().gen // want "second Load"
	}
	return t
}

// deadLoad binds a snapshot and overwrites it before any read — the
// first Load is dead, and the rebind is a second Load.
func (e *engine) deadLoad() int {
	st := e.cur.Load() // want "never used"
	st = e.cur.Load()  // want "second Load"
	return st.gen
}

// refresh intentionally observes two generations; the directive (with its
// mandatory reason) silences the finding.
func (e *engine) refresh() int {
	a := e.cur.Load()
	//lint:ignore state-bind comparing generations across a swap is the point here
	b := e.cur.Load()
	return b.gen - a.gen
}
