// Package bufflow is a gnnlint test fixture for the buf-flow check:
// path-sensitive workspace-buffer lifetimes with call-graph handoff
// summaries.
package bufflow

import (
	"errors"

	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
)

var errTooBig = errors.New("bufflow: too big")

// leakOnError acquires a buffer and forgets it on the error path — the
// classic bug buf-flow exists to catch.
func leakOnError(n int) (float64, error) {
	m := tensor.GetBuf(n, n)
	if n > 1024 {
		return 0, errTooBig // want "may leak"
	}
	v := m.Data[0]
	tensor.PutBuf(m)
	return v, nil
}

// useAfterRelease reads a buffer after returning it to the pool.
func useAfterRelease(n int) float64 {
	m := tensor.GetBuf(n, n)
	tensor.PutBuf(m)
	return m.Data[0] // want "after it was released"
}

// doubleRelease returns the same buffer twice.
func doubleRelease(n int) {
	m := tensor.GetBuf(n, n)
	tensor.PutBuf(m)
	tensor.PutBuf(m) // want "released twice"
}

// maybeReleased releases on one branch only: the final read is a
// use-after-release on that path AND a leak on the other.
func maybeReleased(n int) float64 {
	m := tensor.GetBuf(n, n)
	if n > 2 {
		tensor.PutBuf(m)
	}
	return m.Data[0] // want "after it was released" "may leak"
}

// releaseHelper releases its parameter on every exit: summary RELEASES.
func releaseHelper(m *tensor.Matrix) {
	tensor.PutBuf(m)
}

// helperClean hands its obligation to releaseHelper — no leak.
func helperClean(n int) {
	m := tensor.GetBuf(n, n)
	releaseHelper(m)
}

// helperDoubleRelease releases after the helper already did.
func helperDoubleRelease(n int) {
	m := tensor.GetBuf(n, n)
	releaseHelper(m)
	tensor.PutBuf(m) // want "released twice"
}

// paramUseAfterRelease: parameters carry no leak obligation but misuse
// after release is still misuse.
func paramUseAfterRelease(m *tensor.Matrix) float64 {
	tensor.PutBuf(m)
	return m.Data[0] // want "after it was released"
}

// deferClean is the normal pattern: release scheduled up front.
func deferClean(n int) float64 {
	m := tensor.GetBuf(n, n)
	defer tensor.PutBuf(m)
	return m.Data[0]
}

// deferDouble schedules a release and then also releases eagerly.
func deferDouble(n int) {
	m := tensor.GetBuf(n, n)
	defer tensor.PutBuf(m)
	tensor.PutBuf(m) // want "released twice"
}

// leakInLoop: the continue path skips the release, so the next iteration
// reacquires over a live buffer and the loop exit still owes one.
func leakInLoop(k int) {
	for i := 0; i < k; i++ {
		m := tensor.GetBuf(4, 4) // want "reacquired while a previously acquired" "never released on some path"
		if i%2 == 0 {
			continue
		}
		tensor.PutBuf(m)
	}
}

// handOff returns the buffer: ownership moves to the caller, no leak.
func handOff(n int) *tensor.Matrix {
	m := tensor.GetBuf(n, n)
	return m
}

var sink *tensor.Matrix

// storeGlobal escapes the buffer into package state — silent handoff.
func storeGlobal(n int) {
	m := tensor.GetBuf(n, n)
	sink = m
}

// goroutineHandoff: the spawned goroutine owns what it captures.
func goroutineHandoff(n int) {
	m := tensor.GetBuf(n, n)
	go func() {
		tensor.PutBuf(m)
	}()
}

// parUse: par.Range runs its task to completion before returning, so the
// capture is a synchronous use and the release below is correct.
func parUse(n int) {
	m := tensor.GetBuf(1, n)
	par.Range(len(m.Data), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Data[i] = 0
		}
	})
	tensor.PutBuf(m)
}

// pingPong swaps two buffers each sweep; the permutation moves states so
// both are still owned (once each) at the end.
func pingPong(n, iters int) {
	cur := tensor.GetBuf(n, n)
	next := tensor.GetBuf(n, n)
	for i := 0; i < iters; i++ {
		next.Data[0] = cur.Data[0] + 1
		cur, next = next, cur
	}
	tensor.PutBuf(cur)
	tensor.PutBuf(next)
}

// handleDoubleRelease double-releases a Buf handle.
func handleDoubleRelease(ws *tensor.Workspace) {
	b := tensor.NewBuf(ws)
	b.Release()
	b.Release() // want "released twice"
}

// suppressedLeak shows the escape hatch: the early return would leak, but
// the directive (with its mandatory reason) silences it.
func suppressedLeak(n int) (float64, error) {
	m := tensor.GetBuf(n, n)
	if n > 1024 {
		//lint:ignore buf-flow probe path exits the process immediately
		return 0, errTooBig
	}
	v := m.Data[0]
	tensor.PutBuf(m)
	return v, nil
}
