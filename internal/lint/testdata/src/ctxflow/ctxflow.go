// This file is a gnnlint test fixture for the ctx-flow check. It is
// package main because rule 1 exempts exactly the lexical func main of a
// package main — everything else must borrow its context.
package main

import (
	"context"
	"time"
)

var globalCtx = context.Background() // want "outside func main"

type server struct {
	base context.Context
}

func main() {
	// The process root owns the root context.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	run(ctx, &server{base: ctx})
}

func run(ctx context.Context, s *server) {
	step(ctx)                      // derived: the parameter itself
	step(context.Background())     // want "outside func main"
	step(s.base)                   // want "not derived"
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	step(child) // derived through With*
}

// rebind overwrites its parameter with a foreign context; every use after
// the rebind is foreign on that path.
func rebind(ctx context.Context, s *server) {
	ctx = s.base
	step(ctx) // want "not derived"
}

// branchy only rebinds on one path — the merge is still foreign-possible,
// but derived-on-some-path keeps it quiet (the check flags foreign-ONLY).
func branchy(ctx context.Context, s *server, swap bool) {
	if swap {
		ctx = context.WithoutCancel(ctx) // derived of derived
	}
	step(ctx)
}

// suppressed shows the escape hatch with its mandatory reason.
func suppressed(ctx context.Context, s *server) {
	//lint:ignore ctx-flow detached audit trail must outlive the request
	step(s.base)
}

func step(ctx context.Context) {
	<-ctx.Done()
}
