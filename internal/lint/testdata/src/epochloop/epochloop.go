// Package epochloop is a gnnlint test fixture for the epoch-loop check.
package epochloop

// config mimics a training config with an Epochs schedule knob.
type config struct {
	Epochs int
}

// handRolled is the pattern the check exists to kill: a literal epoch
// counter driving a training schedule.
func handRolled(cfg config) int {
	steps := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ { // want "hand-rolled epoch loop"
		steps += epoch
	}
	return steps
}

// boundedByEpochs hides the counter name but still walks the schedule knob.
func boundedByEpochs(cfg config) int {
	steps := 0
	for i := 0; i < cfg.Epochs; i++ { // want "bounded by .Epochs"
		steps += i
	}
	return steps
}

// camelCased counters are still epoch loops.
func camelCased(n int) int {
	steps := 0
	for curEpoch := 0; curEpoch < n; curEpoch++ { // want "hand-rolled epoch loop"
		steps++
	}
	return steps
}

// suppressed demonstrates the escape hatch: a non-training loop that
// happens to use the name, silenced with a mandatory reason.
func suppressed(n int) int {
	steps := 0
	//lint:ignore epoch-loop simulation timeline, not a training schedule
	for epoch := 0; epoch < n; epoch++ {
		steps++
	}
	return steps
}

// plainLoop is an ordinary counter — not flagged.
func plainLoop(n int) int {
	steps := 0
	for i := 0; i < n; i++ {
		steps++
	}
	return steps
}

// epochsValue uses the field outside a loop condition — not flagged.
func epochsValue(cfg config) int {
	return cfg.Epochs * 2
}
