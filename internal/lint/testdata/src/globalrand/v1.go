package globalrand

import (
	mrand "math/rand" // want "math/rand (v1)"
)

func v1Draw() int {
	return mrand.Int()
}
