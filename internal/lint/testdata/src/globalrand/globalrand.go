// Package globalrand is a gnnlint test fixture for the global-rand check.
package globalrand

import (
	"math/rand/v2"
	"time"
)

var sharedRNG = rand.New(rand.NewPCG(1, 2)) // want "package-level RNG state"

// clockSeeded seeds from the wall clock, destroying reproducibility.
func clockSeeded() *rand.PCG {
	return rand.NewPCG(uint64(time.Now().UnixNano()), 0) // want "time-based RNG seeding"
}

// injected is the approved pattern: the RNG arrives as a parameter.
func injected(rng *rand.Rand) float64 {
	return rng.Float64()
}

// fixedSeed constructs an RNG from a constant — reproducible, allowed.
func fixedSeed() *rand.Rand {
	return rand.New(rand.NewPCG(42, 0))
}

// elapsed uses time for measurement, not seeding — allowed.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func init() {
	_ = sharedRNG
}
