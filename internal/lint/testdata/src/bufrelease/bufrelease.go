// Package bufrelease is a gnnlint test fixture for the buf-release check.
package bufrelease

import "scalegnn/internal/tensor"

// leak acquires a pooled matrix and drops it.
func leak(rows, cols int) {
	m := tensor.GetBuf(rows, cols) // want "never released"
	m.Zero()
}

// deferredRelease is the normal pattern.
func deferredRelease(rows, cols int) float64 {
	m := tensor.GetZeroBuf(rows, cols)
	defer tensor.PutBuf(m)
	return m.Data[0]
}

// explicitRelease releases on the straight-line path.
func explicitRelease(ws *tensor.Workspace, rows, cols int) float64 {
	m := ws.Get(rows, cols)
	v := m.Data[0]
	ws.Put(m)
	return v
}

// handoff transfers ownership to the caller by returning the buffer.
func handoff(rows, cols int) *tensor.Matrix {
	m := tensor.GetBuf(rows, cols)
	return m
}

// stored transfers ownership into a struct field.
type cache struct{ m *tensor.Matrix }

func (c *cache) fill(rows, cols int) {
	m := tensor.GetZeroBuf(rows, cols)
	c.m = m
}

// bufHandle releases through the Buf cursor API.
func bufHandle(ws *tensor.Workspace, rows, cols int) float64 {
	b := tensor.NewBuf(ws)
	m := b.Next(rows, cols)
	v := m.Data[0]
	b.Release()
	return v
}

// suppressed documents an intentional leak (e.g. process-lifetime buffer).
func suppressed(rows, cols int) {
	//lint:ignore buf-release process-lifetime buffer, reclaimed at exit
	m := tensor.GetBuf(rows, cols)
	m.Zero()
}
