// Package ckpt is the durable-write fixture: it mimics the real checkpoint
// package's file handling and must trip on every direct final-path write.
package ckpt

import (
	"os"
	"path/filepath"
)

func badDirectWrites(dir string, data []byte) error {
	path := filepath.Join(dir, "ckpt-0001.bin")
	f, err := os.Create(path) // want "WriteFileDurable"
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil { // want "WriteFileDurable"
		return err
	}
	g, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644) // want "WriteFileDurable"
	if err != nil {
		return err
	}
	return g.Close()
}

func goodTempThenRename(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp") // temp names are invisible to resume
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "ckpt-0001.bin"))
}

func suppressed(dir string) error {
	//lint:ignore durable-write fixture exercises the escape hatch
	f, err := os.Create(filepath.Join(dir, "ckpt-0002.bin"))
	if err != nil {
		return err
	}
	return f.Close()
}

func readsAreFine(dir string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, "ckpt-0001.bin"))
}
