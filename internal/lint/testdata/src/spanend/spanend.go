// Package spanend is a gnnlint test fixture for the obs-span-end check.
package spanend

import "scalegnn/internal/obs"

// leak starts a span and drops it: the section never reaches the tracer.
func leak() {
	sp := obs.Start("work") // want "never ended"
	sp.SetCount(1)
}

// dropped discards the span value outright.
func dropped() {
	obs.Start("work") // want "immediately dropped"
}

// deferredEnd is the normal pattern.
func deferredEnd() {
	sp := obs.Start("work")
	defer sp.End()
}

// explicitEnd ends on the straight-line path.
func explicitEnd() int {
	sp := obs.StartTimed("work")
	n := 1 + 1
	sp.End()
	return n
}

// childLeak: children carry the same obligation as roots.
func childLeak(tr *obs.Tracer) {
	root := tr.Start("outer")
	child := root.Child("inner") // want "never ended"
	child.SetCount(1)
	root.End()
}

// cleanupClosure ends inside a deferred closure (the count-then-end idiom).
func cleanupClosure() (iters int) {
	sp := obs.Start("loop")
	defer func() { sp.SetCount(int64(iters)); sp.End() }()
	iters = 3
	return iters
}

// handoff transfers the End obligation to the caller by returning the span.
func handoff() obs.Span {
	sp := obs.Start("work")
	return sp
}

// stored transfers the obligation into a struct field.
type holder struct{ sp obs.Span }

func (h *holder) begin() {
	sp := obs.Start("work")
	h.sp = sp
}

// suppressed documents an intentional leak (process-lifetime span).
func suppressed() {
	//lint:ignore obs-span-end process-lifetime span, ended at exit
	sp := obs.Start("process")
	sp.SetCount(1)
}

// requestLeak: request-scoped spans carry the same obligation.
func requestLeak() {
	sp := obs.StartRequest("req", obs.TraceContext{}) // want "never ended"
	sp.SetCount(1)
}

// requestEnd is the request-span happy path.
func requestEnd() {
	sp := obs.StartRequest("req", obs.TraceContext{})
	defer sp.End()
}

// requestDropped discards the request span outright.
func requestDropped() {
	obs.StartRequest("req", obs.TraceContext{}) // want "immediately dropped"
}

// channelHandoff sends the span across a channel — the dispatcher-queue
// pattern: the receiving goroutine now owns the End obligation.
func channelHandoff(ch chan obs.Span) {
	sp := obs.StartRequest("req", obs.TraceContext{})
	ch <- sp
}
