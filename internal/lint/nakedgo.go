package lint

import "go/ast"

// runNakedGo reports every go statement. All data-parallel chunking must go
// through internal/par (the one deterministic, race-tested partitioner);
// anything else — pipelines, background work — needs an explicit
// //lint:ignore naked-go <reason>. The check covers test files too: a racy
// helper goroutine in a test corrupts exactly the signal the -race pass is
// supposed to give.
func runNakedGo(p *Package, r *Reporter) {
	for _, f := range p.AllFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				r.Report(g.Pos(), "goroutine spawned outside internal/par; route data-parallel work through par.Range or justify with //lint:ignore naked-go <reason>")
			}
			return true
		})
	}
}
