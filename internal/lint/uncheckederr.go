package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// runUncheckedError flags calls whose error result is silently dropped as a
// bare statement (including deferred calls) in internal/ and cmd/. Dropping
// an error with an explicit `_ =` assignment is a visible decision and is
// not flagged. Writes that cannot fail are excluded: fmt.Print* to stdout,
// fmt.Fprint* to os.Stdout/os.Stderr, and writes to in-memory sinks
// (*strings.Builder, *bytes.Buffer).
func runUncheckedError(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			deferred := false
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
				deferred = true
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil || !returnsError(p, call) || isInfallibleWrite(p, call) {
				return true
			}
			what := "call"
			if deferred {
				what = "deferred call"
			}
			r.Report(call.Pos(), "%s drops its error result; handle it, or discard explicitly with `_ =` / //lint:ignore unchecked-error <reason>", what)
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(tv.Type, errType)
}

// isInfallibleWrite reports whether the call is a print/write that cannot
// meaningfully fail.
func isInfallibleWrite(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	// Methods on in-memory sinks.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if isInMemorySink(sig.Recv().Type()) {
			return true
		}
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	}
	if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		arg := call.Args[0]
		if isStdStream(p, arg) {
			return true
		}
		if tv, ok := p.Info.Types[arg]; ok && tv.Type != nil && isInMemorySink(tv.Type) {
			return true
		}
	}
	return false
}

func isInMemorySink(t types.Type) bool {
	switch t.String() {
	case "*strings.Builder", "strings.Builder", "*bytes.Buffer", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream matches the expressions os.Stdout and os.Stderr.
func isStdStream(p *Package, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "os"
}
