package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// fileNames returns the base names of the files backing fs.
func fileNames(fset *token.FileSet, fs []*ast.File) []string {
	var out []string
	for _, f := range fs {
		out = append(out, filepath.Base(fset.Position(f.Pos()).Filename))
	}
	return out
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestLoadDirDefaultTags: under the default tag set the fault package
// loads registry.go (//go:build !nofault) and excludes its nofault twin —
// otherwise type checking would see every symbol twice.
func TestLoadDirDefaultTags(t *testing.T) {
	l := newTestLoader(t)
	p, err := l.LoadDir(filepath.Join(l.ModDir, "internal", "fault"))
	if err != nil {
		t.Fatal(err)
	}
	names := fileNames(l.Fset, p.Files)
	if !contains(names, "registry.go") {
		t.Errorf("default tags: registry.go missing from %v", names)
	}
	if contains(names, "registry_off.go") {
		t.Errorf("default tags: registry_off.go (//go:build nofault) wrongly included in %v", names)
	}
}

// TestLoadDirNofaultTag: SetTags("nofault") flips the file set to the
// stubbed registry, matching `go build -tags nofault`.
func TestLoadDirNofaultTag(t *testing.T) {
	l := newTestLoader(t)
	l.SetTags("nofault")
	p, err := l.LoadDir(filepath.Join(l.ModDir, "internal", "fault"))
	if err != nil {
		t.Fatal(err)
	}
	names := fileNames(l.Fset, p.Files)
	if !contains(names, "registry_off.go") {
		t.Errorf("-tags nofault: registry_off.go missing from %v", names)
	}
	if contains(names, "registry.go") {
		t.Errorf("-tags nofault: registry.go (//go:build !nofault) wrongly included in %v", names)
	}
	// fault_test.go is gated //go:build !nofault: it must drop out of the
	// syntax-only test-file set as well.
	if tn := fileNames(l.Fset, p.TestFiles); contains(tn, "fault_test.go") {
		t.Errorf("-tags nofault: fault_test.go wrongly included in %v", tn)
	}
}

// parseSnippet parses one file into a fresh FileSet for suppression tests.
func parseSnippet(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// findLine returns the position of the first source line containing sub.
func findLine(t *testing.T, fset *token.FileSet, f *ast.File, src, sub string) token.Pos {
	t.Helper()
	idx := strings.Index(src, sub)
	if idx < 0 {
		t.Fatalf("%q not in test source", sub)
	}
	return fset.File(f.Pos()).Pos(idx)
}

// TestSuppressionsStackOnOneLine: a report line can be covered by two
// directives for different checks at once — a trailing comment on the
// line itself plus a full-line directive just above it.
func TestSuppressionsStackOnOneLine(t *testing.T) {
	src := `package x

//lint:ignore check-a chunking is handled by the caller
var V = loud() //lint:ignore check-b seeded deterministically in main

func loud() int { return 1 }
`
	fset, f := parseSnippet(t, src)
	ignores := collectIgnores(fset, []*ast.File{f})
	pos := findLine(t, fset, f, src, "var V")

	var diags []Diagnostic
	for _, check := range []string{"check-a", "check-b"} {
		r := &Reporter{fset: fset, check: check, diags: &diags, ignores: ignores}
		r.Report(pos, "finding for %s", check)
	}
	if len(diags) != 0 {
		t.Errorf("both directives should suppress their checks at this line, got %v", diags)
	}
	// An unrelated check at the same position still reports.
	r := &Reporter{fset: fset, check: "check-c", diags: &diags, ignores: ignores}
	r.Report(pos, "finding for check-c")
	if len(diags) != 1 {
		t.Errorf("unlisted check must not be suppressed, got %v", diags)
	}
}

// TestSuppressionMissingReasonRejected: a directive without a reason is
// not a directive — the finding it meant to silence stays visible.
func TestSuppressionMissingReasonRejected(t *testing.T) {
	src := `package x

//lint:ignore check-a
var V = 1
`
	fset, f := parseSnippet(t, src)
	ignores := collectIgnores(fset, []*ast.File{f})
	pos := findLine(t, fset, f, src, "var V")

	var diags []Diagnostic
	r := &Reporter{fset: fset, check: "check-a", diags: &diags, ignores: ignores}
	r.Report(pos, "finding that must survive")
	if len(diags) != 1 {
		t.Fatalf("reason-less directive suppressed a finding (got %d diagnostics)", len(diags))
	}
}
