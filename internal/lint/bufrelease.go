package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// runBufRelease enforces the workspace discipline from PR 1: a pooled
// buffer acquired inside a function (tensor.GetBuf/GetZeroBuf, a
// Workspace.Get/GetZero call, or a local tensor.NewBuf handle) must be
// handed back inside that same function — via Put/PutBuf/Release, deferred
// or explicit — or must visibly leave the function (returned, stored in a
// field/map/slice, or captured in a composite literal), which transfers
// ownership to the caller. A buffer that is acquired and simply dropped
// never returns to the pool, silently re-introducing the per-epoch
// allocations the pooling exists to eliminate.
func runBufRelease(p *Package, r *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBufs(p, r, fd)
		}
	}
}

type acquisition struct {
	name string
	pos  ast.Node
}

func checkFuncBufs(p *Package, r *Reporter, fd *ast.FuncDecl) {
	// Pass 1: collect buffer acquisitions bound to local identifiers.
	acquired := make(map[types.Object]*acquisition)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var names []*ast.Ident
		var values []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					names = append(names, id)
					values = append(values, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			names = append(names, n.Names...)
			values = append(values, n.Values...)
		default:
			return true
		}
		for i, id := range names {
			call, ok := values[i].(*ast.CallExpr)
			if !ok || !isBufAcquisition(p, call) {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil {
				acquired[obj] = &acquisition{name: id.Name, pos: id}
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}
	// Pass 2: find a release or an ownership-transferring escape for each.
	resolved := make(map[types.Object]bool)
	usesObj := func(e ast.Expr, want types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == want {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// tensor.Put / tensor.PutBuf / ws.Put with the buffer as argument.
			if isTensorFunc(p, n, "Put", "PutBuf") {
				for _, arg := range n.Args {
					if id, ok := arg.(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; acquired[obj] != nil {
							resolved[obj] = true
						}
					}
				}
			}
			// b.Release() on a local Buf handle.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; acquired[obj] != nil {
						resolved[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for obj := range acquired {
				for _, res := range n.Results {
					if usesObj(res, obj) {
						resolved[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			// Appearing on the right-hand side of any assignment (field,
			// map slot, alias) transfers ownership out of this analysis.
			for obj := range acquired {
				for _, rhs := range n.Rhs {
					if usesObj(rhs, obj) {
						resolved[obj] = true
					}
				}
			}
		case *ast.CompositeLit:
			for obj := range acquired {
				for _, elt := range n.Elts {
					if usesObj(elt, obj) {
						resolved[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj, acq := range acquired {
		if !resolved[obj] {
			r.Report(acq.pos.Pos(), "workspace buffer %q is acquired but never released in this function (add Put/PutBuf/Release, deferred or on every path)", acq.name)
		}
	}
}

// isBufAcquisition reports whether call acquires pooled tensor storage.
func isBufAcquisition(p *Package, call *ast.CallExpr) bool {
	return isTensorFunc(p, call, "Get", "GetZero", "GetBuf", "GetZeroBuf", "NewBuf")
}

// isTensorFunc reports whether call's callee is one of the named functions
// or methods of the tensor package.
func isTensorFunc(p *Package, call *ast.CallExpr, names ...string) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	obj, ok := p.Info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/tensor") {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}
