package lint

import (
	"go/ast"
	"strconv"
)

// runDurableWrite enforces the checkpoint durability contract (DESIGN.md
// "Fault tolerance"): inside the ckpt package, files must reach their
// final path only through the temp-file → fsync → rename → dir-fsync
// helper (WriteFileDurable). Opening a final path for writing directly —
// os.Create, os.OpenFile, os.WriteFile — would let a crash leave a torn
// file under a checkpoint name, which resume would then have to treat as
// corruption instead of never seeing it. os.CreateTemp is the sanctioned
// entry point: a *.tmp name is invisible to Manager.Latest until renamed.
//
// Test files are exempt: corruption tests write torn bytes on purpose.
func runDurableWrite(p *Package, r *Reporter) {
	for _, f := range p.Files {
		osName := osImportName(f)
		if osName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != osName {
				return true
			}
			switch sel.Sel.Name {
			case "Create", "OpenFile", "WriteFile":
				r.Report(call.Pos(),
					"os.%s writes a final path directly; checkpoint files must go through WriteFileDurable (temp+rename) so a crash never leaves a torn file under a checkpoint name",
					sel.Sel.Name)
			}
			return true
		})
	}
}

// osImportName returns the local name under which a file imports "os"
// ("" when not imported).
func osImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		if path, _ := strconv.Unquote(imp.Path.Value); path == "os" {
			return orDefault(importLocalName(imp), "os")
		}
	}
	return ""
}

func importLocalName(imp *ast.ImportSpec) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	return ""
}
