package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// bufflow.go implements buf-flow, the path-sensitive successor to PR 2's
// buf-release: pooled workspace buffers (tensor.GetBuf/GetZeroBuf,
// Workspace.Get/GetZero, tensor.NewBuf handles) are tracked through the
// CFG with a per-object state machine
//
//	Live → Released        (Put/PutBuf/ws.Put/Release, or a callee whose
//	                        summary says it releases that parameter)
//	Live → DeferReleased   (the same calls under defer)
//	Live → Escaped         (returned, stored, captured, sent, handed to a
//	                        callee that may store it — ownership left)
//
// and three bug classes fall out of the fixpoint facts:
//
//   - use-after-release: any read of an object whose incoming state set
//     contains Released on some path;
//   - double-release: a release applied to an object already Released (or
//     already scheduled for release by defer) on some path;
//   - leak: a locally acquired buffer still Live on a normal exit path —
//     reported at the early return that leaks it, or at the acquisition
//     site when the function falls off its end or loops back while the
//     previous buffer is still owed. Paths ending in panic/os.Exit are
//     exempt.
//
// Function parameters of buffer type are tracked for use-after-release and
// double-release but carry no leak obligation (the caller owns them). The
// call-graph summaries close the interprocedural gap buf-release papered
// over with "released somewhere in this function": a helper that releases
// its parameter on every normal exit releases the caller's buffer at the
// call site, and releasing again afterward is a reported double-release
// instead of an invisible pool corruption. Unresolved callees and callees
// that may (but need not) release swallow the obligation — the analysis
// fails toward silence, never toward a false report.

const (
	bufLive flowState = 1 << iota
	bufDeferReleased
	bufReleased
	bufEscaped
)

// bufParamEffect classifies what a callee does with one buffer-typed
// parameter.
type bufParamEffect int

const (
	bufParamUses     bufParamEffect = iota // reads only; caller still owns
	bufParamReleases                       // returns it to the pool on every normal exit
	bufParamEscapes                        // stores/returns/may-release; caller obligation ends
)

// bufSummary is a callee's per-parameter effect vector, indexed by
// flattened parameter position.
type bufSummary struct {
	effects []bufParamEffect
}

// bufSumInProgress marks a summary computation on the stack; a recursive
// lookup gets nil (treated as unknown → escape, silent).
var bufSumInProgress = &bufSummary{}

type acquisition struct {
	name string
	pos  ast.Node
}

func runBufFlow(prog *Program, p *Package, r *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeBufFunc(prog, p, r, fd.Type, fd.Body)
			// Nested literals are separate analysis units with their own CFG.
			forEachFuncLit(fd.Body, func(lit *ast.FuncLit) {
				analyzeBufFunc(prog, p, r, lit.Type, lit.Body)
			})
		}
	}
}

// forEachFuncLit visits every function literal under root, including
// literals nested inside other literals.
func forEachFuncLit(root ast.Node, fn func(*ast.FuncLit)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit)
		}
		return true
	})
}

// isBufType reports whether t is pooled tensor storage: a tensor.Mat
// instantiation (any element type, via the Matrix alias or directly) or a
// tensor.BufOf handle (value or pointer). Aliases are resolved first so the
// float64 spellings Matrix/Buf/Workspace keep matching.
func isBufType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/tensor") {
		return false
	}
	switch named.Obj().Name() {
	case "Matrix", "Buf", "Mat", "BufOf":
		return true
	}
	return false
}

// bufAnalysis is the per-function context shared by the transfer function
// and the reporting pass.
type bufAnalysis struct {
	prog     *Program
	p        *Package
	acquired map[types.Object]*acquisition // acquired here: leak obligation
	tracked  map[types.Object]bool         // acquired + buffer-typed params
	reports  map[string]bool               // dedupe across exit paths
}

func analyzeBufFunc(prog *Program, p *Package, r *Reporter, ftype *ast.FuncType, body *ast.BlockStmt) {
	a := &bufAnalysis{
		prog:     prog,
		p:        p,
		acquired: make(map[types.Object]*acquisition),
		tracked:  make(map[types.Object]bool),
		reports:  make(map[string]bool),
	}
	entry := make(flowFact)
	// Buffer-typed parameters are tracked (for misuse) but not owed.
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, id := range field.Names {
				obj := p.Info.Defs[id]
				if obj != nil && isBufType(obj.Type()) {
					a.tracked[obj] = true
					entry[obj] = bufLive
				}
			}
		}
	}
	// Pre-pass: find acquisitions bound to local identifiers, skipping
	// nested literals (they are their own units).
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		names, values := bindings(n)
		for i, id := range names {
			call, ok := values[i].(*ast.CallExpr)
			if !ok || !isBufAcquisition(p, call) {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil {
				a.acquired[obj] = &acquisition{name: id.Name, pos: id}
				a.tracked[obj] = true
			}
		}
		return true
	})
	if len(a.tracked) == 0 {
		return
	}
	cfg := FuncCFG(body)
	in := forwardFlow(cfg, entry, func(n ast.Node, fact flowFact) {
		a.transfer(n, fact, nil)
	})
	// Reporting pass: re-run transfers from each block's stable entry fact
	// so each site is diagnosed exactly once, then check exit obligations.
	for _, blk := range cfg.Blocks {
		fact, ok := in[blk]
		if !ok || blk == cfg.Exit {
			continue // unreachable
		}
		fact = fact.clone()
		for _, n := range blk.Nodes {
			a.transfer(n, fact, r)
		}
		if !blockExits(blk, cfg) || blk.Terminates {
			continue
		}
		for obj, acq := range a.acquired {
			if fact[obj]&bufLive == 0 {
				continue
			}
			if blk.Return != nil {
				a.reportOnce(r, blk.Return.Pos(), "workspace buffer %q may leak: this return path does not release it (add Put/PutBuf/Release before returning, or defer the release)", acq.name)
			} else {
				a.reportOnce(r, acq.pos.Pos(), "workspace buffer %q is acquired but never released on some path through this function", acq.name)
			}
		}
	}
}

// blockExits reports whether blk flows into the synthetic exit block.
func blockExits(blk *Block, cfg *CFG) bool {
	for _, s := range blk.Succs {
		if s == cfg.Exit {
			return true
		}
	}
	return false
}

func (a *bufAnalysis) reportOnce(r *Reporter, pos token.Pos, format string, args ...any) {
	if r == nil {
		return
	}
	key := fmt.Sprintf("%d:%s", pos, fmt.Sprintf(format, args...))
	if a.reports[key] {
		return
	}
	a.reports[key] = true
	r.Report(pos, format, args...)
}

// identObj resolves e to the object of a plain identifier use, or nil.
func (a *bufAnalysis) identObj(e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return a.p.Info.Uses[id]
	}
	return nil
}

// ---- transfer function ----

// transfer applies one CFG node's effect to fact. With r == nil it only
// computes states (fixpoint phase); with r set it also reports.
func (a *bufAnalysis) transfer(n ast.Node, fact flowFact, r *Reporter) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		a.transferAssign(s, fact, r)
	case *ast.DeclStmt:
		a.transferBindings(s, fact, r)
	case *ast.DeferStmt:
		a.transferDefer(s, fact, r)
	case *ast.GoStmt:
		// The spawned goroutine owns whatever it receives or captures.
		for _, arg := range s.Call.Args {
			a.evalExpr(arg, fact, r, true)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			a.captureObjs(lit, fact, r, true)
		} else {
			a.evalExpr(s.Call.Fun, fact, r, false)
		}
	case *ast.SendStmt:
		a.evalExpr(s.Chan, fact, r, false)
		a.evalExpr(s.Value, fact, r, true)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			a.evalExpr(res, fact, r, true)
		}
	case *ast.ExprStmt:
		a.evalExpr(s.X, fact, r, false)
	case *ast.IncDecStmt:
		a.evalExpr(s.X, fact, r, false)
	case *ast.RangeStmt:
		// Only the range operand evaluates at the loop head; the body is in
		// its own blocks.
		a.evalExpr(s.X, fact, r, false)
	case ast.Expr:
		a.evalExpr(s, fact, r, false)
	}
}

// transferAssign handles acquisitions, the swap idiom, and escapes through
// assignment.
func (a *bufAnalysis) transferAssign(s *ast.AssignStmt, fact flowFact, r *Reporter) {
	if a.applyPermutation(s, fact) {
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		// Multi-value unpack: the RHS call is evaluated normally; a tracked
		// LHS identifier is overwritten (state forgotten — silent).
		for _, rhs := range s.Rhs {
			a.evalExpr(rhs, fact, r, true)
		}
		for _, lhs := range s.Lhs {
			a.killLHS(lhs, fact, r)
		}
		return
	}
	for i := range s.Lhs {
		id, isIdent := s.Lhs[i].(*ast.Ident)
		if isIdent && id.Name != "_" {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isBufAcquisition(a.p, call) {
				a.applyAcquire(id, call, fact, r)
				continue
			}
		}
		a.evalExpr(s.Rhs[i], fact, r, true)
		a.killLHS(s.Lhs[i], fact, r)
	}
}

// transferBindings handles `var x = acquire()` declarations.
func (a *bufAnalysis) transferBindings(n ast.Node, fact flowFact, r *Reporter) {
	names, values := bindings(n)
	for i, id := range names {
		if call, ok := values[i].(*ast.CallExpr); ok && isBufAcquisition(a.p, call) {
			a.applyAcquire(id, call, fact, r)
			continue
		}
		a.evalExpr(values[i], fact, r, true)
	}
}

// applyAcquire processes one `id := acquire(...)` binding.
func (a *bufAnalysis) applyAcquire(id *ast.Ident, call *ast.CallExpr, fact flowFact, r *Reporter) {
	// The acquisition call itself: receiver and size args are plain reads.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		a.evalExpr(sel.X, fact, r, false)
	}
	for _, arg := range call.Args {
		a.evalExpr(arg, fact, r, false)
	}
	obj := a.p.Info.Defs[id]
	if obj == nil {
		obj = a.p.Info.Uses[id]
	}
	if obj == nil || a.acquired[obj] == nil {
		return
	}
	if fact[obj]&bufLive != 0 {
		a.reportOnce(r, id.Pos(), "workspace buffer %q is reacquired while a previously acquired buffer is still live (leaked on a loop or branch path)", id.Name)
	}
	fact[obj] = bufLive
}

// killLHS forgets the state of a tracked identifier overwritten by a
// non-acquisition value, and evaluates compound targets as reads.
func (a *bufAnalysis) killLHS(lhs ast.Expr, fact flowFact, r *Reporter) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := a.p.Info.Defs[id]
		if obj == nil {
			obj = a.p.Info.Uses[id]
		}
		if obj != nil && a.tracked[obj] {
			delete(fact, obj)
		}
		return
	}
	a.evalExpr(lhs, fact, r, false)
}

// applyPermutation recognizes `a, b = b, a`-style swaps over tracked
// buffers (the ping-pong idiom in propagation loops) and moves states
// without treating either side as an escape.
func (a *bufAnalysis) applyPermutation(s *ast.AssignStmt, fact flowFact) bool {
	if s.Tok != token.ASSIGN || len(s.Lhs) < 2 || len(s.Lhs) != len(s.Rhs) {
		return false
	}
	lhsObjs := make([]types.Object, len(s.Lhs))
	rhsObjs := make([]types.Object, len(s.Rhs))
	anyTracked := false
	seen := make(map[types.Object]int)
	for i := range s.Lhs {
		lo := a.identObj(s.Lhs[i])
		ro := a.identObj(s.Rhs[i])
		if lo == nil || ro == nil {
			return false
		}
		lhsObjs[i], rhsObjs[i] = lo, ro
		seen[lo]++
		seen[ro]--
		if a.tracked[lo] || a.tracked[ro] {
			anyTracked = true
		}
	}
	if !anyTracked {
		return false
	}
	for _, d := range seen {
		if d != 0 {
			return false // not a permutation of the same variables
		}
	}
	next := make(map[types.Object]flowState, len(lhsObjs))
	for i := range lhsObjs {
		next[lhsObjs[i]] = fact[rhsObjs[i]]
	}
	for obj, st := range next {
		fact[obj] = st
	}
	return true
}

// transferDefer handles deferred releases: direct (defer PutBuf(b),
// defer b.Release()), closed-over (defer func(){ PutBuf(b) }()), and
// summarized (defer helper(b) where helper RELEASES).
func (a *bufAnalysis) transferDefer(s *ast.DeferStmt, fact flowFact, r *Reporter) {
	call := s.Call
	if isTensorFunc(a.p, call, "Put", "PutBuf") {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			a.evalExpr(sel.X, fact, r, false)
		}
		for _, arg := range call.Args {
			if obj := a.identObj(arg); obj != nil && a.tracked[obj] {
				a.deferRelease(obj, fact, r, arg.Pos(), exprName(arg))
			} else {
				a.evalExpr(arg, fact, r, false)
			}
		}
		return
	}
	if isTensorFunc(a.p, call, "Release") {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := a.identObj(sel.X); obj != nil && a.tracked[obj] {
				a.deferRelease(obj, fact, r, sel.X.Pos(), exprName(sel.X))
				return
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Releases of tracked objects inside a deferred closure count as
		// deferred releases; other captures are exit-time reads (unchecked).
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isTensorFunc(a.p, c, "Put", "PutBuf") {
				for _, arg := range c.Args {
					if obj := a.identObj(arg); obj != nil && a.tracked[obj] {
						a.deferRelease(obj, fact, r, s.Pos(), exprName(arg))
					}
				}
			} else if isTensorFunc(a.p, c, "Release") {
				if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
					if obj := a.identObj(sel.X); obj != nil && a.tracked[obj] {
						a.deferRelease(obj, fact, r, s.Pos(), exprName(sel.X))
					}
				}
			}
			return true
		})
		return
	}
	// defer helper(b): apply the callee summary with deferred releases.
	a.applyCall(call, fact, r, true)
}

func (a *bufAnalysis) deferRelease(obj types.Object, fact flowFact, r *Reporter, pos token.Pos, name string) {
	if fact[obj]&(bufReleased|bufDeferReleased) != 0 {
		a.reportOnce(r, pos, "workspace buffer %q may be released twice (a release is already pending or done on some path)", name)
	}
	fact[obj] = bufDeferReleased
}

func (a *bufAnalysis) release(obj types.Object, fact flowFact, r *Reporter, pos token.Pos, name string) {
	if fact[obj]&(bufReleased|bufDeferReleased) != 0 {
		a.reportOnce(r, pos, "workspace buffer %q may be released twice (a release is already pending or done on some path)", name)
	}
	fact[obj] = bufReleased
}

func exprName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "buffer"
}

// ---- expression evaluation ----

// evalExpr processes one expression for buffer effects. escaping reports
// whether a whole identifier at this exact position transfers ownership
// out of the function (return operand, RHS of an assignment, composite
// element, channel send, goroutine argument).
func (a *bufAnalysis) evalExpr(e ast.Expr, fact flowFact, r *Reporter, escaping bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		obj := a.p.Info.Uses[e]
		if obj == nil || !a.tracked[obj] {
			return
		}
		if fact[obj]&bufReleased != 0 {
			a.reportOnce(r, e.Pos(), "use of workspace buffer %q after it was released on some path", e.Name)
		}
		if escaping {
			fact[obj] = bufEscaped
		}
	case *ast.ParenExpr:
		a.evalExpr(e.X, fact, r, escaping)
	case *ast.UnaryExpr:
		// &b hands out an alias; other unary ops read.
		a.evalExpr(e.X, fact, r, escaping || e.Op == token.AND)
	case *ast.StarExpr:
		a.evalExpr(e.X, fact, r, false)
	case *ast.SelectorExpr:
		a.evalExpr(e.X, fact, r, false) // b.Data, b.Rows: reads
	case *ast.IndexExpr:
		a.evalExpr(e.X, fact, r, false)
		a.evalExpr(e.Index, fact, r, false)
	case *ast.IndexListExpr:
		a.evalExpr(e.X, fact, r, false)
		for _, idx := range e.Indices {
			a.evalExpr(idx, fact, r, false)
		}
	case *ast.SliceExpr:
		a.evalExpr(e.X, fact, r, false)
		a.evalExpr(e.Low, fact, r, false)
		a.evalExpr(e.High, fact, r, false)
		a.evalExpr(e.Max, fact, r, false)
	case *ast.BinaryExpr:
		a.evalExpr(e.X, fact, r, false)
		a.evalExpr(e.Y, fact, r, false)
	case *ast.TypeAssertExpr:
		a.evalExpr(e.X, fact, r, false)
	case *ast.KeyValueExpr:
		a.evalExpr(e.Key, fact, r, false)
		a.evalExpr(e.Value, fact, r, escaping)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.evalExpr(elt, fact, r, true)
		}
	case *ast.FuncLit:
		// A literal used as a value may run later, anywhere: captured
		// tracked buffers escape.
		a.captureObjs(e, fact, r, true)
	case *ast.CallExpr:
		a.applyCall(e, fact, r, false)
	}
}

// captureObjs scans a function literal's body for captured tracked
// objects. escape=true transfers ownership (go statements, stored
// closures); escape=false only use-checks (synchronous par.Range tasks).
func (a *bufAnalysis) captureObjs(lit *ast.FuncLit, fact flowFact, r *Reporter, escape bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.p.Info.Uses[id]
		if obj == nil || !a.tracked[obj] {
			return true
		}
		if fact[obj]&bufReleased != 0 {
			a.reportOnce(r, id.Pos(), "use of workspace buffer %q after it was released on some path", id.Name)
		}
		if escape {
			fact[obj] = bufEscaped
		}
		return true
	})
}
