package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// runSpanEnd enforces the tracing discipline from the observability layer
// (internal/obs): a span acquired inside a function — obs.Start,
// obs.StartTimed, obs.StartRequest, a Tracer.Start call, or a Child of
// another span — must be ended inside that same function (sp.End(),
// directly or deferred) or must visibly leave the function (returned,
// stored through an assignment, captured in a composite literal, or sent
// on a channel — the serving dispatcher's hand-off), which transfers the
// End obligation to the holder. A span that is started and dropped never
// reaches the tracer buffer, so the traced timeline silently loses the
// section — the exact failure mode a timeline exists to prevent. Spans
// acquired as a bare statement are reported unconditionally: the value is
// unrecoverable.
func runSpanEnd(p *Package, r *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncSpans(p, r, fd)
		}
	}
}

func checkFuncSpans(p *Package, r *Reporter, fd *ast.FuncDecl) {
	// Pass 1: collect span acquisitions bound to local identifiers, and
	// report acquisitions whose result is immediately discarded.
	acquired := make(map[types.Object]*acquisition)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var names []*ast.Ident
		var values []ast.Expr
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isSpanAcquisition(p, call) {
				r.Report(n.Pos(), "span is started and immediately dropped; bind it and call End")
			}
			return true
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					names = append(names, id)
					values = append(values, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			names = append(names, n.Names...)
			values = append(values, n.Values...)
		default:
			return true
		}
		for i, id := range names {
			call, ok := values[i].(*ast.CallExpr)
			if !ok || !isSpanAcquisition(p, call) {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil {
				acquired[obj] = &acquisition{name: id.Name, pos: id}
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}
	// Pass 2: find an End call or an obligation-transferring escape for each.
	resolved := make(map[types.Object]bool)
	usesObj := func(e ast.Expr, want types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == want {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// sp.End(), direct or deferred (ast.Inspect descends into the
			// DeferStmt's call and into func literals, so an End inside a
			// `defer func() { ... }()` cleanup resolves too).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; acquired[obj] != nil {
						resolved[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for obj := range acquired {
				for _, res := range n.Results {
					if usesObj(res, obj) {
						resolved[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			// Appearing on the right-hand side of any assignment (field,
			// map slot, alias) transfers the End obligation out of this
			// analysis.
			for obj := range acquired {
				for _, rhs := range n.Rhs {
					if usesObj(rhs, obj) {
						resolved[obj] = true
					}
				}
			}
		case *ast.CompositeLit:
			for obj := range acquired {
				for _, elt := range n.Elts {
					if usesObj(elt, obj) {
						resolved[obj] = true
					}
				}
			}
		case *ast.SendStmt:
			// A channel send is a visible hand-off: the receiver now owns the
			// End obligation (the request-span pattern — a span crossing the
			// serving dispatcher's queue is ended by whoever drains it).
			for obj := range acquired {
				if usesObj(n.Value, obj) {
					resolved[obj] = true
				}
			}
		}
		return true
	})
	for obj, acq := range acquired {
		if !resolved[obj] {
			r.Report(acq.pos.Pos(), "span %q is started but never ended in this function (call End, deferred or on every path)", acq.name)
		}
	}
}

// isSpanAcquisition reports whether call produces a live obs.Span: the
// package functions Start/StartTimed/StartRequest, the Tracer.Start
// method, or the Span.Child method. Detection is by type-checked callee
// identity, so local helpers that merely share a name are not matched.
func isSpanAcquisition(p *Package, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	obj, ok := p.Info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		return false
	}
	switch obj.Name() {
	case "Start", "StartTimed", "StartRequest", "Child":
		return true
	}
	return false
}
