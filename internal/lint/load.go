package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus its parsed test files.
// Test files are parsed (so syntactic checks can cover them) but excluded
// from type checking: external test packages would otherwise drag in a
// second type-check universe for no analysis benefit.
type Package struct {
	Path      string // import path, e.g. scalegnn/internal/tensor
	Dir       string
	Files     []*ast.File // non-test files, type-checked
	TestFiles []*ast.File // _test.go files, syntax only
	Types     *types.Package
	Info      *types.Info
}

// AllFiles returns the package's non-test files followed by its test files.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	return append(out, p.TestFiles...)
}

// Loader parses and type-checks packages of a single module without any
// dependency on golang.org/x/tools: module-internal imports are resolved
// from source directories under the module root, and standard-library
// imports go through the stdlib source importer.
type Loader struct {
	ModDir  string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod

	Fset *token.FileSet

	std      types.Importer
	pkgs     map[string]*Package // memoized by import path
	buildCtx build.Context
}

// SetTags sets the custom build tags (as with `go build -tags`) consulted
// when deciding which files belong to a package. It must be called before
// the first load: packages are memoized by import path, so a tag change
// after loading would silently serve the old file set.
func (l *Loader) SetTags(tags ...string) {
	l.buildCtx.BuildTags = append([]string(nil), tags...)
}

// NewLoader locates the enclosing module of dir and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", modDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModDir:   modDir,
		ModPath:  modPath,
		Fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*Package),
		buildCtx: build.Default,
	}, nil
}

// dirForPath maps an import path inside the module to its directory.
func (l *Loader) dirForPath(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// pathForDir maps a directory under the module root to its import path.
func (l *Loader) pathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModDir)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer so type-checking one repo package can
// pull in other repo packages (and the stdlib) on demand.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirForPath(path); ok {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir loads (and memoizes) the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathForDir(dir)
	if err != nil {
		return nil, err
	}
	abs, _ := filepath.Abs(dir)
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var srcNames, testNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		// Honor build constraints the way the go tool does: a file excluded
		// under the active tag set (e.g. //go:build nofault alternates)
		// must not be parsed into the same package as its enabled twin, or
		// type checking sees every symbol declared twice.
		if match, err := l.buildCtx.MatchFile(dir, name); err != nil || !match {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testNames = append(testNames, name)
		} else {
			srcNames = append(srcNames, name)
		}
	}
	sort.Strings(srcNames)
	sort.Strings(testNames)
	if len(srcNames) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	p := &Package{Path: path, Dir: dir}
	for _, name := range srcNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	for _, name := range testNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// External test packages (package foo_test) would need their own
		// type-check pass; syntactic checks handle both kinds the same way.
		p.TestFiles = append(p.TestFiles, f)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p.Types = tpkg
	l.pkgs[path] = p
	return p, nil
}

// ExpandPatterns resolves package patterns ("./...", "dir/...", plain
// directories) into the list of package directories under the module,
// skipping testdata, vendor, and hidden directories — the same set the go
// tool would build.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = l.ModDir
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
