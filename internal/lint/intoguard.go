package lint

import (
	"go/ast"
	"strings"
)

// runIntoGuard enforces the *Into kernel convention from PR 1: every
// exported function or method whose name ends in "Into" and that writes
// into caller-provided tensor storage — a *Matrix or *Mat[T] parameter, or
// an element slice ([]float64, []float32, or []T for an Elem-constrained
// type parameter) — must, before writing,
//
//   - validate destination shape: an if statement over Rows/Cols/len that
//     panics or returns an error, and
//   - reject aliasing: a call to tensor.Overlaps (directly or via the
//     package-local mustNotAlias helper).
//
// Without the guards, a pooled destination buffer of the wrong shape or one
// overlapping an operand silently corrupts training output instead of
// failing loudly at the call site.
func runIntoGuard(p *Package, r *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || !strings.HasSuffix(fd.Name.Name, "Into") {
				continue
			}
			if !hasTensorParam(fd.Type) {
				continue
			}
			hasAlias, hasShape := false, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					switch name := calleeName(n); name {
					case "Overlaps", "mustNotAlias":
						hasAlias = true
					}
				case *ast.IfStmt:
					if condMentionsShape(n.Cond) && bodyFailsLoudly(n.Body) {
						hasShape = true
					}
				}
				return true
			})
			if !hasShape {
				r.Report(fd.Pos(), "%s writes into a caller-provided tensor but never validates destination shape (if over Rows/Cols/len that panics or returns an error)", fd.Name.Name)
			}
			if !hasAlias {
				r.Report(fd.Pos(), "%s writes into a caller-provided tensor but never checks aliasing (tensor.Overlaps or mustNotAlias)", fd.Name.Name)
			}
		}
	}
}

// hasTensorParam reports whether any parameter type mentions tensor
// storage — the float64 Matrix alias, the generic Mat[...] form, or an
// element slice ([]float64, []float32, or []T for an Elem-constrained type
// parameter of the function). This is what the *Into convention is about.
func hasTensorParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	elemParams := elemTypeParams(ft)
	for _, field := range ft.Params.List {
		found := false
		ast.Inspect(field.Type, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if n.Name == "Matrix" || n.Name == "Mat" {
					found = true
				}
			case *ast.ArrayType:
				if id, ok := n.Elt.(*ast.Ident); ok {
					if id.Name == "float64" || id.Name == "float32" || elemParams[id.Name] {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// elemTypeParams returns the names of the function's type parameters whose
// constraint mentions the tensor Elem interface (tensor.Elem or a local
// alias named Elem). []T over such a parameter is tensor storage.
func elemTypeParams(ft *ast.FuncType) map[string]bool {
	params := map[string]bool{}
	if ft.TypeParams == nil {
		return params
	}
	for _, field := range ft.TypeParams.List {
		isElem := false
		ast.Inspect(field.Type, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "Elem" {
				isElem = true
			}
			return !isElem
		})
		if !isElem {
			continue
		}
		for _, name := range field.Names {
			params[name.Name] = true
		}
	}
	return params
}

// calleeName returns the bare name of a call's callee (x.F and F both give
// "F"), or "".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// condMentionsShape reports whether a condition inspects tensor shape:
// a .Rows/.Cols selector or a len(...) call.
func condMentionsShape(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Rows" || n.Sel.Name == "Cols" {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "len" {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyFailsLoudly reports whether a guard body panics or returns.
func bodyFailsLoudly(body *ast.BlockStmt) bool {
	failed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			failed = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				failed = true
			}
		}
		return !failed
	})
	return failed
}
