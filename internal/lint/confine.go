package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// confine.go implements goroutine-confine: functions annotated
//
//	// lint:confine <label>
//
// in their doc comment form a confinement group. The check walks the
// module call graph from every goroutine-spawning site (naked `go`
// statements and task closures handed to par.Range) and requires that at
// most ONE spawn site per label reaches the group. The serve scoring path
// carries the "score-path" label: pooled output buffers are recycled per
// request with no per-buffer locking, which is only sound while exactly
// one goroutine (the dispatcher) drives Score.
//
// Marking an interface method confines its contract: every module method
// implementing the interface must carry the same marker, so an
// implementation cannot silently opt out of the constraint its callers
// rely on — and deleting the marker from an implementation is itself a
// finding, not a loophole.

var confineRE = regexp.MustCompile(`^//\s*lint:confine\s+(\S+)`)

// confineLabel extracts the label from a comment group, or "".
func confineLabel(groups ...*ast.CommentGroup) string {
	for _, doc := range groups {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if m := confineRE.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// confinedFuncs maps call-graph nodes to their declared label, covering
// declared functions/methods and interface methods (whose marker sits on
// the method field inside the interface type).
func confinedFuncs(prog *Program) map[*CGNode]string {
	cg := prog.CallGraph()
	out := make(map[*CGNode]string)
	for _, p := range prog.AllPackages() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					label := confineLabel(d.Doc)
					if label == "" {
						continue
					}
					if fn, ok := p.Info.Defs[d.Name].(*types.Func); ok {
						if n := cg.byFunc[fn]; n != nil {
							out[n] = label
						}
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						iface, ok := ts.Type.(*ast.InterfaceType)
						if !ok {
							continue
						}
						for _, field := range iface.Methods.List {
							label := confineLabel(field.Doc, field.Comment)
							if label == "" {
								continue
							}
							for _, name := range field.Names {
								if fn, ok := p.Info.Defs[name].(*types.Func); ok {
									if n := cg.byFunc[fn]; n != nil {
										out[n] = label
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

func runConfine(prog *Program, r *Reporter) {
	cg := prog.CallGraph()
	labels := confinedFuncs(prog)
	if len(labels) == 0 {
		return
	}
	// Rule A: implementations of a confined interface method must carry the
	// same marker.
	for n, label := range labels {
		if !n.IsIfaceMethod() {
			continue
		}
		for _, impl := range cg.Implementations(n.Fn) {
			if labels[impl] == label {
				continue
			}
			if impl.Decl == nil || !prog.Requested(impl.Pkg) {
				continue
			}
			r.Report(impl.Decl.Name.Pos(),
				"%s implements %s, which is confined (lint:confine %s), but its doc comment lacks the marker",
				impl.Fn.FullName(), n.Fn.FullName(), label)
		}
	}
	// Rule B: at most one goroutine-spawning site may reach each label.
	fset := prog.Loader.Fset
	byLabel := make(map[string][]*SpawnSite)
	for _, site := range cg.Spawns {
		reach := cg.Reachable(site.Root)
		seen := make(map[string]bool)
		for n := range reach {
			label := labels[n]
			if label == "" || seen[label] {
				continue
			}
			seen[label] = true
			byLabel[label] = append(byLabel[label], site)
		}
	}
	var names []string
	for label := range byLabel {
		names = append(names, label)
	}
	sort.Strings(names)
	for _, label := range names {
		sites := byLabel[label]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool {
			a, b := fset.Position(sites[i].Pos), fset.Position(sites[j].Pos)
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			return a.Offset < b.Offset
		})
		first := fset.Position(sites[0].Pos)
		for _, site := range sites[1:] {
			if !prog.Requested(site.Pkg) {
				continue
			}
			r.Report(site.Pos,
				"this %s reaches lint:confine %q functions already driven by the goroutine spawned at %s:%d; confined code must stay on one goroutine per label",
				site.Via, label, first.Filename, first.Line)
		}
	}
}
