package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// conndeadline.go implements conn-deadline: in the distributed networking
// layer, every net.Conn Read/Write must be preceded — on every dataflow
// path — by a SetReadDeadline/SetWriteDeadline (or SetDeadline) on the
// same connection. The read deadline IS the peer-failure detector and the
// write deadline bounds a stalled flush; an unarmed blocking I/O call
// would hang a shard forever on a dead peer, which is exactly the failure
// the protocol exists to survive. The analysis is a forward must-pass:
// each connection object carries "possibly unarmed" bits that a deadline
// call clears and a fresh conn value (re)sets; union merge keeps the bit
// set if any incoming path left the deadline unarmed.

const (
	cdReadUnarmed flowState = 1 << iota
	cdWriteUnarmed
	cdBothUnarmed = cdReadUnarmed | cdWriteUnarmed
)

// connLike reports whether t is a net connection: a named type (or pointer
// to one) declared in package net that carries SetReadDeadline — net.Conn
// itself and the concrete TCPConn/UnixConn/UDPConn family.
func connLike(t types.Type) bool {
	if t == nil {
		return false
	}
	base := t
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "net" {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, named.Obj().Pkg(), "SetReadDeadline")
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// connCall resolves a call of the form conn.M(...) where conn is connLike
// and M is one of the tracked I/O or deadline methods, returning the
// connection's object and the method name.
func connCall(p *Package, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Read", "Write", "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
	default:
		return nil, ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net" {
		return nil, ""
	}
	if !connLike(p.Info.TypeOf(sel.X)) {
		return nil, ""
	}
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return p.Info.Uses[base], sel.Sel.Name
	case *ast.SelectorExpr:
		return p.Info.Uses[base.Sel], sel.Sel.Name
	}
	return nil, ""
}

func runConnDeadline(_ *Program, p *Package, r *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeConnDeadline(p, r, connEntryFact(p, fd.Type), fd.Body)
			forEachFuncLit(fd.Body, func(lit *ast.FuncLit) {
				analyzeConnDeadline(p, r, connEntryFact(p, lit.Type), lit.Body)
			})
		}
	}
}

// connEntryFact marks every connection-typed parameter as fully unarmed at
// function entry: a callee cannot assume its caller set any deadline.
func connEntryFact(p *Package, ft *ast.FuncType) flowFact {
	entry := make(flowFact)
	if ft == nil || ft.Params == nil {
		return entry
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil && connLike(obj.Type()) {
				entry[obj] = cdBothUnarmed
			}
		}
	}
	return entry
}

func analyzeConnDeadline(p *Package, r *Reporter, entry flowFact, body *ast.BlockStmt) {
	// Quick reject: no blocking conn I/O in this function.
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, m := connCall(p, call); m == "Read" || m == "Write" {
				found = true
			}
		}
		return !found
	})
	if !found {
		return
	}
	cfg := FuncCFG(body)
	transfer := func(n ast.Node, fact flowFact) {
		connDeadlineEvents(p, n, func(obj types.Object, method string, _ *ast.CallExpr) {
			applyConnEvent(fact, obj, method)
		})
	}
	in := forwardFlow(cfg, entry, transfer)
	for _, blk := range cfg.Blocks {
		fact, ok := in[blk]
		if !ok || blk == cfg.Exit {
			continue
		}
		fact = fact.clone()
		for _, n := range blk.Nodes {
			connDeadlineEvents(p, n, func(obj types.Object, method string, call *ast.CallExpr) {
				switch method {
				case "Read":
					if fact[obj]&cdReadUnarmed != 0 {
						r.Report(call.Pos(), "net.Conn Read on %q without SetReadDeadline on this path; an unarmed read blocks forever on a dead peer — the deadline is the failure detector", obj.Name())
					}
				case "Write":
					if fact[obj]&cdWriteUnarmed != 0 {
						r.Report(call.Pos(), "net.Conn Write on %q without SetWriteDeadline on this path; an unarmed write hangs a shard when the peer stops draining", obj.Name())
					}
				}
				applyConnEvent(fact, obj, method)
			})
		}
	}
}

// applyConnEvent updates one connection's armed/unarmed bits for a tracked
// method call or a fresh conn binding ("" method).
func applyConnEvent(fact flowFact, obj types.Object, method string) {
	switch method {
	case "SetDeadline":
		fact[obj] &^= cdBothUnarmed
	case "SetReadDeadline":
		fact[obj] &^= cdReadUnarmed
	case "SetWriteDeadline":
		fact[obj] &^= cdWriteUnarmed
	case "":
		fact[obj] = cdBothUnarmed
	}
}

// connDeadlineEvents invokes fn, in source order, for every tracked event a
// node performs: conn method calls, and assignments binding a fresh
// connection value (which resets its deadline state — a new conn has no
// deadlines armed).
func connDeadlineEvents(p *Package, n ast.Node, fn func(obj types.Object, method string, call *ast.CallExpr)) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		connDeadlineEvents(p, rs.X, fn)
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.CallExpr:
			if obj, method := connCall(p, node); obj != nil {
				fn(obj, method, node)
			}
		case *ast.AssignStmt:
			if node.Tok != token.ASSIGN && node.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range node.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && connLike(obj.Type()) {
					fn(obj, "", nil)
				}
			}
		}
		return true
	})
}
