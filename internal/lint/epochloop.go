package lint

import (
	"go/ast"
	"strings"
)

// runEpochLoop forbids hand-rolled training epoch loops outside
// internal/train. The engine extraction removed eight near-identical copies
// of the permutation/early-stopping/timing scaffolding from the model
// families; this check keeps them from growing back. A for statement is
// flagged when it walks an epoch counter — its init declares or assigns a
// variable named like "epoch", or its condition bounds iteration by an
// .Epochs field (the TrainConfig/train.Config schedule knob). Drive the
// schedule through train.Run with a BatchSource instead, or suppress a
// legitimate non-training loop with
//
//	//lint:ignore epoch-loop <reason>
func runEpochLoop(p *Package, r *Reporter) {
	for _, f := range p.AllFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if name, ok := epochVarInInit(loop.Init); ok {
				r.Report(loop.Pos(), "hand-rolled epoch loop over %q; drive the schedule through internal/train (train.Run + BatchSource)", name)
				return true
			}
			if loop.Cond != nil && boundsByEpochs(loop.Cond) {
				r.Report(loop.Pos(), "loop bounded by .Epochs; drive the schedule through internal/train (train.Run + BatchSource)")
			}
			return true
		})
	}
}

// epochVarInInit reports an epoch-named loop variable declared or assigned
// in a for statement's init clause.
func epochVarInInit(init ast.Stmt) (string, bool) {
	assign, ok := init.(*ast.AssignStmt)
	if !ok {
		return "", false
	}
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if isEpochName(id.Name) {
			return id.Name, true
		}
	}
	return "", false
}

// isEpochName matches the identifiers the legacy loops used for their epoch
// counters: "epoch", "epochs", "ep", and camel/snake variants like
// "numEpoch" or "epoch_i".
func isEpochName(name string) bool {
	lower := strings.ToLower(name)
	return lower == "ep" || strings.Contains(lower, "epoch")
}

// boundsByEpochs reports whether an expression references an .Epochs
// selector (any receiver: cfg.Epochs, c.Epochs, opts.Train.Epochs, ...).
func boundsByEpochs(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Epochs" {
			found = true
		}
		return !found
	})
	return found
}
