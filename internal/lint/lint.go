// Package lint implements gnnlint, scalegnn's project-specific static
// analyzer. It machine-checks the conventions the zero-allocation training
// hot path depends on (see DESIGN.md "Enforced invariants"):
//
//   - naked-go: goroutines are spawned only by internal/par, so every
//     parallel kernel chunks work through the one race-tested partitioner.
//   - into-guard: exported *Into kernels validate shapes and reject
//     aliasing (tensor.Overlaps) before writing.
//   - buf-flow: path-sensitive workspace-buffer lifetimes — no
//     use-after-release, no double-release, no leak on early returns or
//     error paths; ownership handoff to callees is resolved through
//     call-graph summaries.
//   - global-rand: no package-level RNG state or time-based seeding in
//     internal/ and cmd/; randomness is injected as *rand.Rand.
//   - unchecked-error: no error return silently dropped as a bare call
//     statement in internal/ and cmd/.
//   - epoch-loop: no hand-rolled `for epoch := ...` training loops outside
//     internal/train; models drive schedules through train.Run.
//   - obs-span-end: tracing spans (internal/obs) acquired in a function are
//     ended in that function or visibly handed off, so traced timelines
//     never silently lose sections.
//   - durable-write: the ckpt package never opens a final path for writing
//     directly; checkpoint bytes reach disk only through the crash-safe
//     temp+rename helper (ckpt.WriteFileDurable).
//   - goroutine-confine: functions marked `lint:confine <label>` stay
//     reachable from at most one goroutine-spawning site per label (the
//     serve scoring path's pooled buffers depend on it).
//   - ctx-flow: context.Background/TODO only in func main; a ctx parameter
//     must flow to every callee that accepts one.
//   - state-bind: serve request paths Load the hot-swap state pointer at
//     most once, so responses never mix generations.
//   - conn-deadline: in internal/distnet, every net.Conn Read/Write is
//     preceded on its dataflow path by a SetRead/WriteDeadline on the same
//     connection — the deadline is the peer-failure detector.
//
// The analyzer is built only on the stdlib go/parser, go/ast, go/types, and
// go/token packages — the repo has no external dependencies and the linter
// keeps it that way. Dataflow checks run on a basic-block CFG (cfg.go) with
// a union-merge worklist engine (dataflow.go) and a module-wide call graph
// (callgraph.go). Findings are suppressed per site with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line above it; the reason is mandatory (a
// directive without one suppresses nothing).
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// MarshalJSON emits the flat shape the -json mode and the CI problem
// matcher consume: one object per finding.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message})
}

// Check is one named analyzer. Per-package checks set Run; whole-module
// checks (which reason over the call graph across packages) set RunModule
// and are invoked once per RunChecks call.
type Check struct {
	Name string
	Doc  string
	// Applies filters by import path; nil means every package.
	Applies   func(pkgPath string) bool
	Run       func(prog *Program, p *Package, r *Reporter)
	RunModule func(prog *Program, r *Reporter)
}

// pkgCheck adapts the single-package checks that need no whole-module
// context.
func pkgCheck(f func(p *Package, r *Reporter)) func(*Program, *Package, *Reporter) {
	return func(_ *Program, p *Package, r *Reporter) { f(p, r) }
}

// internalOrCmd scopes a check to the packages whose invariants the
// training/serving stack depends on (examples stay demo-grade).
func internalOrCmd(modPath string) func(string) bool {
	return func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, modPath+"/internal/") ||
			strings.HasPrefix(pkgPath, modPath+"/cmd/")
	}
}

// Checks returns the full suite for a module, in stable order.
func Checks(modPath string) []*Check {
	inScope := internalOrCmd(modPath)
	return []*Check{
		{
			Name:    "naked-go",
			Doc:     "go statements are allowed only inside internal/par (and an explicit allowlist)",
			Applies: func(pkgPath string) bool { return pkgPath != modPath+"/internal/par" },
			Run:     pkgCheck(runNakedGo),
		},
		{
			Name: "into-guard",
			Doc:  "exported *Into kernels must validate shapes and check aliasing (tensor.Overlaps) before writing",
			Run:  pkgCheck(runIntoGuard),
		},
		{
			Name: "buf-flow",
			Doc:  "workspace buffers: no use-after-release, no double-release, no leak on any path; handoff via call-graph summaries",
			Run:  runBufFlow,
		},
		{
			Name:    "global-rand",
			Doc:     "no package-level RNG state, math/rand v1, or time-based seeding; inject *rand.Rand",
			Applies: inScope,
			Run:     pkgCheck(runGlobalRand),
		},
		{
			Name: "epoch-loop",
			Doc:  "no hand-rolled `for epoch := ...` training loops outside internal/train; use train.Run",
			Applies: func(pkgPath string) bool {
				return inScope(pkgPath) && pkgPath != modPath+"/internal/train"
			},
			Run: pkgCheck(runEpochLoop),
		},
		{
			Name:    "unchecked-error",
			Doc:     "no error return dropped as a bare call statement",
			Applies: inScope,
			Run:     pkgCheck(runUncheckedError),
		},
		{
			Name: "obs-span-end",
			Doc:  "tracing spans acquired in a function must be ended (End, deferred or on every path) in that function or handed off",
			Run:  pkgCheck(runSpanEnd),
		},
		{
			Name: "durable-write",
			Doc:  "checkpoint files must go through WriteFileDurable (temp+rename); no direct os.Create/OpenFile/WriteFile on final paths in the ckpt package",
			Applies: func(pkgPath string) bool {
				return strings.HasSuffix(pkgPath, "/ckpt")
			},
			Run: pkgCheck(runDurableWrite),
		},
		{
			Name:      "goroutine-confine",
			Doc:       "lint:confine-marked functions are reachable from at most one goroutine-spawning site per label; implementations of confined interface methods carry the marker",
			RunModule: runConfine,
		},
		{
			Name:    "ctx-flow",
			Doc:     "context.Background/TODO only in func main; a ctx parameter must flow, derived, to every callee accepting a context",
			Applies: inScope,
			Run:     runCtxFlow,
		},
		{
			Name: "state-bind",
			Doc:  "serve request paths Load the hot-swap atomic.Pointer at most once (transitively), and never bind a dead snapshot",
			Applies: func(pkgPath string) bool {
				return strings.HasSuffix(pkgPath, "/serve")
			},
			Run: runStateBind,
		},
		{
			Name: "conn-deadline",
			Doc:  "distnet net.Conn Read/Write must be preceded by SetRead/WriteDeadline on every path; the deadline is the failure detector",
			Applies: func(pkgPath string) bool {
				return strings.HasSuffix(pkgPath, "/distnet")
			},
			Run: runConnDeadline,
		},
	}
}

// Reporter collects diagnostics for one package and applies suppressions.
type Reporter struct {
	fset  *token.FileSet
	check string
	diags *[]Diagnostic
	// ignores maps file -> line -> set of suppressed check names.
	ignores map[string]map[int]map[string]bool
}

// Report files a diagnostic at pos unless a matching //lint:ignore directive
// covers that line or the line above.
func (r *Reporter) Report(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	if lines, ok := r.ignores[p.Filename]; ok {
		for _, ln := range [2]int{p.Line, p.Line - 1} {
			if lines[ln][r.check] || lines[ln]["*"] {
				return
			}
		}
	}
	*r.diags = append(*r.diags, Diagnostic{Pos: p, Check: r.check, Message: fmt.Sprintf(format, args...)})
}

var ignoreRE = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+\S`)

// collectIgnores indexes every well-formed //lint:ignore directive of the
// package by file and line. Directives missing a reason do not match and
// therefore suppress nothing — the finding they meant to silence stays
// visible, which is the enforcement.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				lines, ok := out[p.Filename]
				if !ok {
					lines = make(map[int]map[string]bool)
					out[p.Filename] = lines
				}
				if lines[p.Line] == nil {
					lines[p.Line] = make(map[string]bool)
				}
				lines[p.Line][m[1]] = true
			}
		}
	}
	return out
}

// RunChecks runs the selected checks over the loaded packages and returns
// all diagnostics sorted by position. names == nil runs the full suite.
func RunChecks(l *Loader, pkgs []*Package, names []string) ([]Diagnostic, error) {
	suite := Checks(l.ModPath)
	if names != nil {
		byName := make(map[string]*Check, len(suite))
		for _, c := range suite {
			byName[c.Name] = c
		}
		var sel []*Check
		for _, n := range names {
			c, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("lint: unknown check %q", n)
			}
			sel = append(sel, c)
		}
		suite = sel
	}
	prog := newProgram(l, pkgs)
	var diags []Diagnostic
	merged := make(map[string]map[int]map[string]bool)
	for _, p := range pkgs {
		ignores := collectIgnores(l.Fset, p.AllFiles())
		for file, lines := range ignores {
			merged[file] = lines
		}
		for _, c := range suite {
			if c.Run == nil {
				continue
			}
			if c.Applies != nil && !c.Applies(p.Path) {
				continue
			}
			c.Run(prog, p, &Reporter{fset: l.Fset, check: c.Name, diags: &diags, ignores: ignores})
		}
	}
	// Module-wide checks run once, anchored to requested packages, with
	// every requested package's suppressions in scope.
	for _, c := range suite {
		if c.RunModule == nil {
			continue
		}
		c.RunModule(prog, &Reporter{fset: l.Fset, check: c.Name, diags: &diags, ignores: merged})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return diags, nil
}
