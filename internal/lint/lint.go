// Package lint implements gnnlint, scalegnn's project-specific static
// analyzer. It machine-checks the conventions the zero-allocation training
// hot path depends on (see DESIGN.md "Enforced invariants"):
//
//   - naked-go: goroutines are spawned only by internal/par, so every
//     parallel kernel chunks work through the one race-tested partitioner.
//   - into-guard: exported *Into kernels validate shapes and reject
//     aliasing (tensor.Overlaps) before writing.
//   - buf-release: workspace buffers acquired in a function are released
//     in that function (or handed off explicitly).
//   - global-rand: no package-level RNG state or time-based seeding in
//     internal/ and cmd/; randomness is injected as *rand.Rand.
//   - unchecked-error: no error return silently dropped as a bare call
//     statement in internal/ and cmd/.
//   - epoch-loop: no hand-rolled `for epoch := ...` training loops outside
//     internal/train; models drive schedules through train.Run.
//   - obs-span-end: tracing spans (internal/obs) acquired in a function are
//     ended in that function or visibly handed off, so traced timelines
//     never silently lose sections.
//   - durable-write: the ckpt package never opens a final path for writing
//     directly; checkpoint bytes reach disk only through the crash-safe
//     temp+rename helper (ckpt.WriteFileDurable).
//
// The analyzer is built only on the stdlib go/parser, go/ast, go/types, and
// go/token packages — the repo has no external dependencies and the linter
// keeps it that way. Findings are suppressed per site with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line above it; the reason is mandatory (a
// directive without one suppresses nothing).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one named analyzer.
type Check struct {
	Name string
	Doc  string
	// Applies filters by import path; nil means every package.
	Applies func(pkgPath string) bool
	Run     func(p *Package, r *Reporter)
}

// internalOrCmd scopes a check to the packages whose invariants the
// training/serving stack depends on (examples stay demo-grade).
func internalOrCmd(modPath string) func(string) bool {
	return func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, modPath+"/internal/") ||
			strings.HasPrefix(pkgPath, modPath+"/cmd/")
	}
}

// Checks returns the full suite for a module, in stable order.
func Checks(modPath string) []*Check {
	inScope := internalOrCmd(modPath)
	return []*Check{
		{
			Name:    "naked-go",
			Doc:     "go statements are allowed only inside internal/par (and an explicit allowlist)",
			Applies: func(pkgPath string) bool { return pkgPath != modPath+"/internal/par" },
			Run:     runNakedGo,
		},
		{
			Name: "into-guard",
			Doc:  "exported *Into kernels must validate shapes and check aliasing (tensor.Overlaps) before writing",
			Run:  runIntoGuard,
		},
		{
			Name: "buf-release",
			Doc:  "workspace buffers acquired in a function must be released (Put/PutBuf/Release) in that function",
			Run:  runBufRelease,
		},
		{
			Name:    "global-rand",
			Doc:     "no package-level RNG state, math/rand v1, or time-based seeding; inject *rand.Rand",
			Applies: inScope,
			Run:     runGlobalRand,
		},
		{
			Name: "epoch-loop",
			Doc:  "no hand-rolled `for epoch := ...` training loops outside internal/train; use train.Run",
			Applies: func(pkgPath string) bool {
				return inScope(pkgPath) && pkgPath != modPath+"/internal/train"
			},
			Run: runEpochLoop,
		},
		{
			Name:    "unchecked-error",
			Doc:     "no error return dropped as a bare call statement",
			Applies: inScope,
			Run:     runUncheckedError,
		},
		{
			Name: "obs-span-end",
			Doc:  "tracing spans acquired in a function must be ended (End, deferred or on every path) in that function or handed off",
			Run:  runSpanEnd,
		},
		{
			Name: "durable-write",
			Doc:  "checkpoint files must go through WriteFileDurable (temp+rename); no direct os.Create/OpenFile/WriteFile on final paths in the ckpt package",
			Applies: func(pkgPath string) bool {
				return strings.HasSuffix(pkgPath, "/ckpt")
			},
			Run: runDurableWrite,
		},
	}
}

// Reporter collects diagnostics for one package and applies suppressions.
type Reporter struct {
	fset  *token.FileSet
	check string
	diags *[]Diagnostic
	// ignores maps file -> line -> set of suppressed check names.
	ignores map[string]map[int]map[string]bool
}

// Report files a diagnostic at pos unless a matching //lint:ignore directive
// covers that line or the line above.
func (r *Reporter) Report(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	if lines, ok := r.ignores[p.Filename]; ok {
		for _, ln := range [2]int{p.Line, p.Line - 1} {
			if lines[ln][r.check] || lines[ln]["*"] {
				return
			}
		}
	}
	*r.diags = append(*r.diags, Diagnostic{Pos: p, Check: r.check, Message: fmt.Sprintf(format, args...)})
}

var ignoreRE = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+\S`)

// collectIgnores indexes every well-formed //lint:ignore directive of the
// package by file and line. Directives missing a reason do not match and
// therefore suppress nothing — the finding they meant to silence stays
// visible, which is the enforcement.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				lines, ok := out[p.Filename]
				if !ok {
					lines = make(map[int]map[string]bool)
					out[p.Filename] = lines
				}
				if lines[p.Line] == nil {
					lines[p.Line] = make(map[string]bool)
				}
				lines[p.Line][m[1]] = true
			}
		}
	}
	return out
}

// RunChecks runs the selected checks over the loaded packages and returns
// all diagnostics sorted by position. names == nil runs the full suite.
func RunChecks(l *Loader, pkgs []*Package, names []string) ([]Diagnostic, error) {
	suite := Checks(l.ModPath)
	if names != nil {
		byName := make(map[string]*Check, len(suite))
		for _, c := range suite {
			byName[c.Name] = c
		}
		var sel []*Check
		for _, n := range names {
			c, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("lint: unknown check %q", n)
			}
			sel = append(sel, c)
		}
		suite = sel
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		ignores := collectIgnores(l.Fset, p.AllFiles())
		for _, c := range suite {
			if c.Applies != nil && !c.Applies(p.Path) {
				continue
			}
			c.Run(p, &Reporter{fset: l.Fset, check: c.Name, diags: &diags, ignores: ignores})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return diags, nil
}
