package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFuncBody type-checks a single-file package and returns the named
// function's body plus the info needed by the dataflow passes.
func parseFuncBody(t *testing.T, src, name string) (*ast.BlockStmt, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgtest.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	cfg := types.Config{}
	if _, err := cfg.Check("cfgtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body, info, fset
		}
	}
	t.Fatalf("no func %s in test source", name)
	return nil, nil, nil
}

// reachesExit reports whether blk has the synthetic exit as a successor.
func reachesExit(c *CFG, blk *Block) bool {
	for _, s := range blk.Succs {
		if s == c.Exit {
			return true
		}
	}
	return false
}

func TestCFGIfElseShape(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(c bool) int {
	n := 1
	if c {
		n = 2
	} else {
		n = 3
	}
	return n
}`, "f")
	c := FuncCFG(body)
	// Both arms flow into the merge block that holds the return.
	var retBlk *Block
	for _, b := range c.Blocks {
		if b.Return != nil {
			retBlk = b
		}
	}
	if retBlk == nil {
		t.Fatal("no block records the return statement")
	}
	if len(retBlk.Preds) != 2 {
		t.Errorf("merge block has %d preds, want 2 (then + else)", len(retBlk.Preds))
	}
	if !reachesExit(c, retBlk) {
		t.Error("return block does not flow to exit")
	}
	// The condition expression is a node of the branching block, so
	// transfer functions see it exactly once.
	found := false
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if id, ok := n.(*ast.Ident); ok && id.Name == "c" {
				found = true
			}
		}
	}
	if !found {
		t.Error("if condition not recorded as a CFG node")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(k int) int {
	t := 0
	for i := 0; i < k; i++ {
		t += i
	}
	return t
}`, "f")
	c := FuncCFG(body)
	// Some block must have a successor with a lower (earlier) index: the
	// back edge from the post block to the loop head.
	back := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s != c.Exit && s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Error("for loop produced no back edge")
	}
	if len(c.Exit.Preds) == 0 {
		t.Error("exit unreachable: loop exit edge missing")
	}
}

func TestCFGTerminatingCall(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(c bool) int {
	if c {
		panic("boom")
	}
	return 1
}`, "f")
	c := FuncCFG(body)
	var panicBlk *Block
	for _, b := range c.Blocks {
		if b.Terminates {
			panicBlk = b
		}
	}
	if panicBlk == nil {
		t.Fatal("panic block not marked Terminates")
	}
	// It unwinds straight to exit, never to the return.
	for _, s := range panicBlk.Succs {
		if s != c.Exit {
			t.Errorf("terminating block falls through to block %d", s.Index)
		}
	}
}

// TestForwardFlowUnionMerge pins the may-analysis semantics: facts from
// both arms of a branch union at the merge point.
func TestForwardFlowUnionMerge(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(c bool) {
	n := 0
	if c {
		n = 1
	} else {
		n++
	}
	_ = n
}`, "f")
	c := FuncCFG(body)
	probe := types.NewVar(token.NoPos, nil, "probe", types.Typ[types.Int])
	const (
		sawAssign flowState = 1 << iota
		sawIncDec
	)
	transfer := func(n ast.Node, fact flowFact) {
		switch n.(type) {
		case *ast.AssignStmt:
			fact[probe] |= sawAssign
		case *ast.IncDecStmt:
			fact[probe] |= sawIncDec
		}
	}
	in := forwardFlow(c, make(flowFact), transfer)
	var mergeFact flowFact
	for _, b := range c.Blocks {
		if b == c.Exit {
			continue
		}
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					mergeFact = in[b]
				}
			}
		}
	}
	if mergeFact == nil {
		t.Fatal("merge block (holding _ = n) not found")
	}
	if mergeFact[probe]&sawAssign == 0 || mergeFact[probe]&sawIncDec == 0 {
		t.Errorf("merge entry fact = %b, want union of both branch facts", mergeFact[probe])
	}
}

// TestForwardFlowLoopFixpoint: facts generated in a loop body reach the
// loop head on the back edge.
func TestForwardFlowLoopFixpoint(t *testing.T) {
	body, _, _ := parseFuncBody(t, `package x
func f(k int) {
	for i := 0; i < k; i++ {
		_ = i
	}
}`, "f")
	c := FuncCFG(body)
	probe := types.NewVar(token.NoPos, nil, "probe", types.Typ[types.Int])
	transfer := func(n ast.Node, fact flowFact) {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				fact[probe] |= 1
			}
		}
	}
	in := forwardFlow(c, make(flowFact), transfer)
	// The body block itself must (on iterations after the first) carry the
	// fact its own previous iteration generated.
	var bodyFact flowFact
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					bodyFact = in[b]
				}
			}
		}
	}
	if bodyFact == nil {
		t.Fatal("loop body block not found")
	}
	if bodyFact[probe]&1 == 0 {
		t.Error("loop body entry fact missing its own generated bit: back edge not propagated")
	}
}

func TestLiveness(t *testing.T) {
	body, info, _ := parseFuncBody(t, `package x
func f(a, b int) int {
	x := a
	y := a
	if b > 0 {
		x = b
	}
	_ = y
	return x
}`, "f")
	c := FuncCFG(body)
	liveIn := liveVars(c, info)
	var xObj, yObj types.Object
	for id, obj := range info.Defs {
		switch id.Name {
		case "x":
			if xObj == nil {
				xObj = obj
			}
		case "y":
			yObj = obj
		}
	}
	if xObj == nil || yObj == nil {
		t.Fatal("test vars not resolved")
	}
	// x is read by the final return, so it is live into the entry block
	// right after its definition; check via liveAfter at the x := a node.
	entry := c.Entry
	xIdx, yIdx := -1, -1
	for i, n := range entry.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			continue
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			switch id.Name {
			case "x":
				xIdx = i
			case "y":
				yIdx = i
			}
		}
	}
	if xIdx < 0 || yIdx < 0 {
		t.Fatalf("definitions not found in entry block (nodes=%d)", len(entry.Nodes))
	}
	if !liveAfter(c, info, liveIn, entry, xIdx)[xObj] {
		t.Error("x dead after its definition, but the return reads it")
	}
	// y is only ever assigned to _, which is a use — so it IS live; sanity
	// check the direction by asserting a is dead after both defs (nothing
	// reads a afterward).
	var aObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "a" {
			aObj = obj
		}
	}
	if aObj == nil {
		t.Fatal("param a not resolved")
	}
	if liveAfter(c, info, liveIn, entry, yIdx)[aObj] {
		t.Error("a live after the last read, but nothing reads it again")
	}
}
