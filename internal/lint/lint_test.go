package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// newTestLoader returns a loader rooted at the real module (two levels up).
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans a fixture package's files for `// want "substr"...`
// comments and returns the expected (file:line, substring) pairs.
func collectWants(fset *token.FileSet, files []*ast.File) map[string][]string {
	wants := make(map[string][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					wants[key] = append(wants[key], arg[1])
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<dir>, runs exactly one check, and matches
// the diagnostics against the fixture's want comments one-for-one.
func runFixture(t *testing.T, dir, check string) {
	t.Helper()
	l := newTestLoader(t)
	p, err := l.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunChecks(l, []*Package{p}, []string{check})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatalf("check %s reported nothing on its fixture", check)
	}
	wants := collectWants(l.Fset, p.AllFiles())

	got := make(map[string][]string)
	for _, d := range diags {
		if d.Check != check {
			t.Errorf("unexpected check name %q in diagnostic %s", d.Check, d)
		}
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Message)
	}

	for key, subs := range wants {
		msgs := got[key]
		if len(msgs) != len(subs) {
			t.Errorf("%s: want %d diagnostic(s), got %d: %v", key, len(subs), len(msgs), msgs)
			continue
		}
		for _, sub := range subs {
			found := false
			for _, msg := range msgs {
				if strings.Contains(msg, sub) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: no diagnostic containing %q (got %v)", key, sub, msgs)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s) %v", key, msgs)
		}
	}
}

func TestNakedGoFixture(t *testing.T)        { runFixture(t, "nakedgo", "naked-go") }
func TestIntoGuardFixture(t *testing.T)      { runFixture(t, "intoguard", "into-guard") }
func TestBufFlowFixture(t *testing.T)        { runFixture(t, "bufflow", "buf-flow") }
func TestGlobalRandFixture(t *testing.T)     { runFixture(t, "globalrand", "global-rand") }
func TestEpochLoopFixture(t *testing.T)      { runFixture(t, "epochloop", "epoch-loop") }
func TestUncheckedErrorFixture(t *testing.T) { runFixture(t, "uncheckederr", "unchecked-error") }
func TestSpanEndFixture(t *testing.T)        { runFixture(t, "spanend", "obs-span-end") }
func TestDurableWriteFixture(t *testing.T)   { runFixture(t, "ckpt", "durable-write") }
func TestConfineFixture(t *testing.T)        { runFixture(t, "confine", "goroutine-confine") }
func TestCtxFlowFixture(t *testing.T)        { runFixture(t, "ctxflow", "ctx-flow") }
func TestStateBindFixture(t *testing.T)      { runFixture(t, "serve", "state-bind") }
func TestConnDeadlineFixture(t *testing.T)   { runFixture(t, "distnet", "conn-deadline") }

// TestServeScorePathConfined pins the confinement contract of the serving
// hot path at its source: both Score interface contracts (serve.Model and
// models.NodeScorer) must carry `lint:confine score-path`. Deleting the
// marker from an implementation trips goroutine-confine rule A in
// TestRepoIsClean; deleting it from the interfaces themselves would unpin
// the whole group — this test catches that directly, and TestRepoIsClean
// catches any second goroutine-spawning site reaching the label.
func TestServeScorePathConfined(t *testing.T) {
	l := newTestLoader(t)
	var pkgs []*Package
	for _, rel := range []string{"internal/serve", "internal/models"} {
		p, err := l.LoadDir(filepath.Join(l.ModDir, rel))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	prog := newProgram(l, pkgs)
	found := make(map[string]bool)
	for n, label := range confinedFuncs(prog) {
		if label == "score-path" && n.IsIfaceMethod() && n.Fn.Name() == "Score" {
			found[n.Fn.Pkg().Path()] = true
		}
	}
	for _, p := range pkgs {
		if !found[p.Path] {
			t.Errorf("%s: Score interface method lost its lint:confine score-path marker; the single-dispatcher contract is no longer machine-checked", p.Path)
		}
	}
}

// TestRepoIsClean is the self-hosting gate: the full suite must run clean
// over the real repository. A regression anywhere in internal/ or cmd/
// fails this test before it ever reaches CI's gnnlint step.
func TestRepoIsClean(t *testing.T) {
	l := newTestLoader(t)
	dirs, err := l.ExpandPatterns([]string{l.ModDir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole repo, got %d packages", len(pkgs))
	}
	diags, err := RunChecks(l, pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestExpandPatternsSkipsTestdata ensures fixtures with deliberate
// violations never leak into a real ./... run.
func TestExpandPatternsSkipsTestdata(t *testing.T) {
	l := newTestLoader(t)
	dirs, err := l.ExpandPatterns([]string{l.ModDir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("ExpandPatterns returned testdata dir %s", d)
		}
	}
	if !sort.StringsAreSorted(dirs) {
		t.Error("ExpandPatterns output not sorted")
	}
}

// TestUnknownCheckRejected: a typo in -checks must error, not silently run
// nothing.
func TestUnknownCheckRejected(t *testing.T) {
	l := newTestLoader(t)
	if _, err := RunChecks(l, nil, []string{"no-such-check"}); err == nil {
		t.Fatal("unknown check name accepted")
	}
}

// TestIgnoreDirectiveRequiresReason pins the suppression contract at the
// regexp level: a bare directive matches nothing.
func TestIgnoreDirectiveRequiresReason(t *testing.T) {
	if ignoreRE.MatchString("//lint:ignore naked-go") {
		t.Error("directive without reason should not parse")
	}
	if !ignoreRE.MatchString("//lint:ignore naked-go because reasons") {
		t.Error("directive with reason should parse")
	}
	if !ignoreRE.MatchString("// lint:ignore buf-flow handed to caller") {
		t.Error("directive with space after // should parse")
	}
}
