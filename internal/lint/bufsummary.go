package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// bufsummary.go is the interprocedural half of buf-flow: call-site effect
// application and memoized per-callee parameter summaries.

// applyCall evaluates a call expression: direct pool releases, par.Range
// task capture, and summarized module callees. deferred marks releases as
// pending-at-exit instead of done.
func (a *bufAnalysis) applyCall(call *ast.CallExpr, fact flowFact, r *Reporter, deferred bool) {
	// Direct releases: tensor.Put/PutBuf(b) and ws.Put(b).
	if isTensorFunc(a.p, call, "Put", "PutBuf") {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			a.evalExpr(sel.X, fact, r, false)
		}
		for _, arg := range call.Args {
			if obj := a.identObj(arg); obj != nil && a.tracked[obj] {
				if deferred {
					a.deferRelease(obj, fact, r, arg.Pos(), exprName(arg))
				} else {
					a.release(obj, fact, r, arg.Pos(), exprName(arg))
				}
			} else {
				a.evalExpr(arg, fact, r, false)
			}
		}
		return
	}
	// b.Release() on a tracked Buf handle.
	if isTensorFunc(a.p, call, "Release") {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := a.identObj(sel.X); obj != nil && a.tracked[obj] {
				if deferred {
					a.deferRelease(obj, fact, r, sel.X.Pos(), exprName(sel.X))
				} else {
					a.release(obj, fact, r, sel.X.Pos(), exprName(sel.X))
				}
				return
			}
		}
	}
	// par.Range runs its task closure to completion before returning, so a
	// captured buffer is a synchronous use, not a handoff.
	if fn := a.p.calleeFunc(call); fn != nil && fn.Name() == "Range" &&
		fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/par") && len(call.Args) > 0 {
		for _, arg := range call.Args[:len(call.Args)-1] {
			a.evalExpr(arg, fact, r, false)
		}
		if lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit); ok {
			a.captureObjs(lit, fact, r, false)
		} else {
			a.evalExpr(call.Args[len(call.Args)-1], fact, r, true)
		}
		return
	}
	// General call: the function expression itself is a read (method
	// receivers like b.Rows(), func values); each whole-identifier tracked
	// argument gets the callee's summarized effect.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		a.evalExpr(fun.X, fact, r, false)
	case *ast.Ident:
	case *ast.FuncLit:
		// Immediately invoked literal: runs here, but has its own CFG;
		// conservatively, captures escape this function's obligation.
		a.captureObjs(fun, fact, r, true)
	default:
		a.evalExpr(fun, fact, r, false)
	}
	effects := a.calleeEffects(call)
	for i, arg := range call.Args {
		obj := a.identObj(arg)
		if obj == nil || !a.tracked[obj] {
			a.evalExpr(arg, fact, r, false)
			continue
		}
		effect := bufParamEscapes // unknown callee: obligation leaves, silently
		if effects != nil && i < len(effects) {
			effect = effects[i]
		}
		// Reads happen regardless of the effect.
		if fact[obj]&bufReleased != 0 {
			a.reportOnce(r, arg.Pos(), "use of workspace buffer %q after it was released on some path", exprName(arg))
		}
		switch effect {
		case bufParamReleases:
			if deferred {
				a.deferRelease(obj, fact, r, arg.Pos(), exprName(arg))
			} else {
				a.release(obj, fact, r, arg.Pos(), exprName(arg))
			}
		case bufParamEscapes:
			fact[obj] = bufEscaped
		case bufParamUses:
			// caller still owns; nothing to do
		}
	}
}

// calleeEffects resolves the per-argument effect vector for a call, or nil
// if the callee is unknown (func value, variadic mismatch, external).
func (a *bufAnalysis) calleeEffects(call *ast.CallExpr) []bufParamEffect {
	fn := a.p.calleeFunc(call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if !sig.Variadic() && sig.Params().Len() != len(call.Args) {
		return nil
	}
	if sig.Variadic() && (len(call.Args) < sig.Params().Len()-1 || call.Ellipsis.IsValid()) {
		return nil
	}
	// Interface methods follow the Score contract: out-parameters are
	// written into, never retained or released — a plain use.
	if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		effects := make([]bufParamEffect, len(call.Args))
		for i := range effects {
			effects[i] = bufParamUses
		}
		return effects
	}
	node := a.prog.CallGraph().byFunc[fn]
	if node == nil || node.Body() == nil {
		return nil
	}
	sum := a.prog.bufSummaryFor(node)
	if sum == nil {
		return nil
	}
	if !sig.Variadic() {
		return sum.effects
	}
	// Map variadic-tail arguments to the summarized effect of the backing
	// slice parameter (the alias guards take kernels' operands this way).
	fixed := sig.Params().Len() - 1
	if fixed >= len(sum.effects) {
		return nil
	}
	effects := make([]bufParamEffect, len(call.Args))
	for i := range effects {
		if i < fixed {
			effects[i] = sum.effects[i]
		} else {
			effects[i] = sum.effects[fixed]
		}
	}
	return effects
}

// bufSummaryFor memoizes computeBufSummary; a cycle yields nil (unknown).
func (pr *Program) bufSummaryFor(node *CGNode) *bufSummary {
	if pr.bufSums == nil {
		pr.bufSums = make(map[*CGNode]*bufSummary)
	}
	if s, ok := pr.bufSums[node]; ok {
		if s == bufSumInProgress {
			return nil
		}
		return s
	}
	pr.bufSums[node] = bufSumInProgress
	s := computeBufSummary(pr, node)
	pr.bufSums[node] = s
	return s
}

// computeBufSummary classifies every parameter of a declared module
// function by running the buf-flow transfer over its body with each
// buffer-typed parameter tracked, then reading the union of states on
// normal exits:
//
//	escaped anywhere            → ESCAPES
//	live on some exit, released
//	on another (may-release)    → ESCAPES (caller can't rely on either)
//	live on every exit          → USES
//	released on every exit      → RELEASES
func computeBufSummary(pr *Program, node *CGNode) *bufSummary {
	decl := node.Decl
	p := node.Pkg
	flat := flattenParams(decl.Type)
	sum := &bufSummary{effects: make([]bufParamEffect, len(flat))}
	variadic := false
	if fn, ok := p.Info.Defs[decl.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			variadic = sig.Variadic()
		}
	}
	tracked := make(map[types.Object]bool)
	entry := make(flowFact)
	objAt := make([]types.Object, len(flat))
	for i, id := range flat {
		if id == nil || id.Name == "_" {
			// Unnamed parameters cannot be touched by the body.
			sum.effects[i] = bufParamUses
			continue
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			sum.effects[i] = bufParamEscapes
			continue
		}
		t := obj.Type()
		if variadic && i == len(flat)-1 {
			// A variadic buffer parameter arrives as a slice; tracking the
			// slice identifier covers the alias-guard idiom (ranged, read,
			// never retained).
			if sl, ok := t.(*types.Slice); ok {
				t = sl.Elem()
			}
		}
		if !isBufType(t) {
			// A buffer squeezed through any/interface{} could be stored.
			sum.effects[i] = bufParamEscapes
			continue
		}
		tracked[obj] = true
		entry[obj] = bufLive
		objAt[i] = obj
	}
	if len(tracked) == 0 {
		return sum
	}
	a := &bufAnalysis{
		prog:     pr,
		p:        p,
		acquired: make(map[types.Object]*acquisition),
		tracked:  tracked,
		reports:  make(map[string]bool),
	}
	cfg := FuncCFG(decl.Body)
	in := forwardFlow(cfg, entry, func(n ast.Node, fact flowFact) {
		a.transfer(n, fact, nil)
	})
	exitState := make(map[types.Object]flowState)
	sawExit := false
	for _, blk := range cfg.Blocks {
		fact, ok := in[blk]
		if !ok || blk == cfg.Exit {
			continue
		}
		fact = fact.clone()
		for _, n := range blk.Nodes {
			a.transfer(n, fact, nil)
		}
		if !blockExits(blk, cfg) || blk.Terminates {
			continue
		}
		sawExit = true
		for obj := range tracked {
			exitState[obj] |= fact[obj]
		}
	}
	for i := range flat {
		obj := objAt[i]
		if obj == nil {
			continue
		}
		st := exitState[obj]
		switch {
		case !sawExit:
			sum.effects[i] = bufParamUses // never returns normally
		case st&bufEscaped != 0:
			sum.effects[i] = bufParamEscapes
		case st&bufLive != 0:
			if st&(bufReleased|bufDeferReleased) != 0 {
				sum.effects[i] = bufParamEscapes // may-release
			} else {
				sum.effects[i] = bufParamUses
			}
		case st&(bufReleased|bufDeferReleased) != 0:
			sum.effects[i] = bufParamReleases
		default:
			sum.effects[i] = bufParamUses
		}
	}
	return sum
}

// flattenParams returns one entry per parameter position; unnamed
// parameters yield nil.
func flattenParams(ftype *ast.FuncType) []*ast.Ident {
	var flat []*ast.Ident
	if ftype.Params == nil {
		return flat
	}
	for _, field := range ftype.Params.List {
		if len(field.Names) == 0 {
			flat = append(flat, nil)
			continue
		}
		for _, id := range field.Names {
			flat = append(flat, id)
		}
	}
	return flat
}

// bindings extracts id := value pairs from assignments and var specs.
func bindings(n ast.Node) (names []*ast.Ident, values []ast.Expr) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return nil, nil
		}
		for i, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				names = append(names, id)
				values = append(values, n.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		if len(n.Names) != len(n.Values) {
			return nil, nil
		}
		for i, id := range n.Names {
			names = append(names, id)
			values = append(values, n.Values[i])
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					ns, exprs := bindings(vs)
					names = append(names, ns...)
					values = append(values, exprs...)
				}
			}
		}
	}
	return names, values
}

// isBufAcquisition reports whether call acquires pooled tensor storage.
func isBufAcquisition(p *Package, call *ast.CallExpr) bool {
	return isTensorFunc(p, call, "Get", "GetZero", "GetBuf", "GetZeroBuf", "NewBuf")
}

// isTensorFunc reports whether call's callee is one of the named functions
// or methods of the tensor package.
func isTensorFunc(p *Package, call *ast.CallExpr, names ...string) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	obj, ok := p.Info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/tensor") {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}
