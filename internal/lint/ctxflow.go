package lint

import (
	"go/ast"
	"go/types"
)

// ctxflow.go implements ctx-flow, the cancellation-plumbing check:
//
//  1. context.Background() / context.TODO() may appear only inside the
//     lexical func main of a package main (the process root owns the root
//     context). Everywhere else the context must arrive as a parameter —
//     minting a fresh root mid-stack detaches the callee from shutdown.
//  2. In a function that takes a context.Context parameter, every call to
//     a callee that accepts a context must receive a context DERIVED from
//     that parameter (the parameter itself, or a With* / source-call
//     child of it). Passing a context pulled from a struct field or
//     package variable silently rebinds the callee to a different
//     lifetime; the reaching-definitions pass flags exactly those
//     foreign-only arguments.
//
// Test files are not type-checked by the loader, so tests are exempt from
// both rules by construction.

const (
	ctxDerived flowState = 1 << iota
	ctxForeign
)

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// isCtxPkgFunc reports whether call invokes one of the named functions of
// package context.
func isCtxPkgFunc(p *Package, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// calleeSig resolves the signature a call invokes, or nil for conversions
// and builtins.
func calleeSig(p *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	if tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func runCtxFlow(prog *Program, p *Package, r *Reporter) {
	for _, f := range p.Files {
		// Rule 1 at package scope: no root contexts in var initializers.
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok {
				reportRootCtxCalls(p, r, gd)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Rule 1: the lexical func main of a package main (closures
			// included) owns the root context; everyone else borrows.
			if !(p.Types.Name() == "main" && fd.Recv == nil && fd.Name.Name == "main") {
				reportRootCtxCalls(p, r, fd.Body)
			}
			// Rule 2 applies to every function unit with its own ctx param.
			analyzeCtxFunc(p, r, fd.Type, fd.Body)
			forEachFuncLit(fd.Body, func(lit *ast.FuncLit) {
				analyzeCtxFunc(p, r, lit.Type, lit.Body)
			})
		}
	}
}

// reportRootCtxCalls flags every context.Background/TODO call under root.
func reportRootCtxCalls(p *Package, r *Reporter, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCtxPkgFunc(p, call, "Background", "TODO") {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		r.Report(call.Pos(), "context.%s() outside func main detaches this code from cancellation; accept a ctx parameter instead", sel.Sel.Name)
		return true
	})
}

type ctxAnalysis struct {
	p *Package
}

// analyzeCtxFunc runs rule 2 over one function unit (decl or literal)
// that declares a context parameter.
func analyzeCtxFunc(p *Package, r *Reporter, ftype *ast.FuncType, body *ast.BlockStmt) {
	entry := make(flowFact)
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, id := range field.Names {
				obj := p.Info.Defs[id]
				if obj != nil && isCtxType(obj.Type()) {
					entry[obj] = ctxDerived
				}
			}
		}
	}
	if len(entry) == 0 {
		return // no ctx parameter: rule 2 out of scope
	}
	c := &ctxAnalysis{p: p}
	cfg := FuncCFG(body)
	in := forwardFlow(cfg, entry, func(n ast.Node, fact flowFact) {
		c.transfer(n, fact)
	})
	for _, blk := range cfg.Blocks {
		fact, ok := in[blk]
		if !ok || blk == cfg.Exit {
			continue
		}
		fact = fact.clone()
		for _, n := range blk.Nodes {
			c.checkNode(n, fact, r)
			c.transfer(n, fact)
		}
	}
}

// transfer rebinds the abstract state of ctx-typed locals on assignment.
func (c *ctxAnalysis) transfer(n ast.Node, fact flowFact) {
	names, values := bindings(n)
	for i, id := range names {
		obj := c.p.Info.Defs[id]
		if obj == nil {
			obj = c.p.Info.Uses[id]
		}
		if obj == nil || !isCtxType(obj.Type()) {
			continue
		}
		fact[obj] = c.classify(values[i], fact)
	}
	// Multi-value binds (ctx, cancel := context.WithCancel(...)) don't
	// match bindings' len guard; handle them explicitly.
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			st := c.classify(call, fact)
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := c.p.Info.Defs[id]
				if obj == nil {
					obj = c.p.Info.Uses[id]
				}
				if obj != nil && isCtxType(obj.Type()) {
					fact[obj] = st
				}
			}
		}
	}
}

// classify maps a context-valued expression to its abstract state:
// derived from this function's parameter, or foreign.
func (c *ctxAnalysis) classify(e ast.Expr, fact flowFact) flowState {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.p.Info.Uses[e]; obj != nil {
			if st, ok := fact[obj]; ok {
				return st
			}
		}
		return ctxForeign
	case *ast.CallExpr:
		if isCtxPkgFunc(c.p, e, "Background", "TODO") {
			return ctxDerived // rule 1 owns the placement complaint
		}
		// A call that itself takes a context inherits the derivedness of
		// what it was given (context.WithCancel, WithTimeout, helpers).
		if sig := calleeSig(c.p, e); sig != nil && !sig.Variadic() {
			for i := 0; i < sig.Params().Len() && i < len(e.Args); i++ {
				if isCtxType(sig.Params().At(i).Type()) {
					return c.classify(e.Args[i], fact)
				}
			}
		}
		// Fresh from a source object (req.Context() and friends).
		return ctxDerived
	}
	return ctxForeign
}

// checkNode reports calls whose context argument is foreign-only.
func (c *ctxAnalysis) checkNode(n ast.Node, fact flowFact, r *Reporter) {
	// A range statement's body lives in its own blocks; only the operand
	// evaluates at the loop head.
	if rs, ok := n.(*ast.RangeStmt); ok {
		c.checkNode(rs.X, fact, r)
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := calleeSig(c.p, call)
		if sig == nil || sig.Variadic() {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isCtxType(sig.Params().At(i).Type()) {
				continue
			}
			if c.classify(call.Args[i], fact)&ctxDerived == 0 {
				r.Report(call.Args[i].Pos(), "context passed here is not derived from this function's ctx parameter; thread the parameter through so cancellation propagates")
			}
		}
		return true
	})
}
