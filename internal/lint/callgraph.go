package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// callgraph.go builds the module-wide call graph the interprocedural
// checks reason over: goroutine-confine walks it for reachability from
// goroutine-spawning sites, buf-flow consults per-function summaries for
// ownership handoff, and state-bind for transitive state-pointer loads.
//
// Resolution is static: direct calls and method calls resolve through the
// type checker; a call through an interface method edges to the interface
// method's node, and reachability expands it to every module type that
// implements the interface. Calls through stored func values are not
// resolved (the repo convention keeps hot paths direct), which makes the
// graph an under-approximation — fine for the checks built on it, which
// all fail toward silence on unresolved calls.

// Program is the whole-module view handed to every check: the requested
// packages, every module package the loader pulled in as a dependency,
// and lazily built interprocedural indexes.
type Program struct {
	Loader *Loader
	// Pkgs are the packages the run was asked to analyze (diagnostics
	// anchor only here).
	Pkgs []*Package

	requested map[*Package]bool
	all       []*Package
	cg        *CallGraph
	bufSums   map[*CGNode]*bufSummary
	loadSums  map[*CGNode]map[types.Object]bool
}

func newProgram(l *Loader, pkgs []*Package) *Program {
	pr := &Program{Loader: l, Pkgs: pkgs, requested: make(map[*Package]bool, len(pkgs))}
	for _, p := range pkgs {
		pr.requested[p] = true
	}
	return pr
}

// Requested reports whether diagnostics may anchor in p.
func (pr *Program) Requested(p *Package) bool { return pr.requested[p] }

// AllPackages returns every module package currently loaded (the
// requested set plus transitively imported module packages), sorted by
// import path for deterministic analysis order.
func (pr *Program) AllPackages() []*Package {
	if pr.all == nil {
		for _, p := range pr.Loader.pkgs {
			pr.all = append(pr.all, p)
		}
		sort.Slice(pr.all, func(i, j int) bool { return pr.all[i].Path < pr.all[j].Path })
	}
	return pr.all
}

// CGNode is one function in the call graph: a declared function/method, a
// function literal, or an interface method (Decl == nil, Lit == nil).
type CGNode struct {
	Fn    *types.Func  // nil for function literals
	Decl  *ast.FuncDecl // nil for literals and interface methods
	Lit   *ast.FuncLit  // nil for declared functions
	Pkg   *Package
	Calls []CGEdge
}

// Body returns the analyzable body, or nil for interface methods.
func (n *CGNode) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// Name returns a human-readable identity for diagnostics.
func (n *CGNode) Name() string {
	if n.Fn != nil {
		return n.Fn.FullName()
	}
	return "func literal"
}

// IsIfaceMethod reports whether the node is an interface method (no body;
// reachability expands it to implementations).
func (n *CGNode) IsIfaceMethod() bool {
	if n.Fn == nil {
		return false
	}
	sig, ok := n.Fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// CGEdge is one resolved call site.
type CGEdge struct {
	Site   *ast.CallExpr
	Callee *CGNode
}

// SpawnSite is one place a new goroutine can start running module code: a
// `go` statement, or a task closure handed to par.Range (which fans it out
// across workers).
type SpawnSite struct {
	Pos  token.Pos
	Via  string // "go statement" or "par.Range task"
	Root *CGNode
	Pkg  *Package
}

// CallGraph indexes every function of every loaded module package.
type CallGraph struct {
	prog   *Program
	nodes  []*CGNode
	byFunc map[*types.Func]*CGNode
	byLit  map[*ast.FuncLit]*CGNode
	Spawns []*SpawnSite

	implCache map[*types.Func][]*CGNode
	named     []*types.Named // every named non-interface type with methods, sorted
}

// CallGraph builds (once) and returns the module call graph.
func (pr *Program) CallGraph() *CallGraph {
	if pr.cg != nil {
		return pr.cg
	}
	cg := &CallGraph{
		prog:      pr,
		byFunc:    make(map[*types.Func]*CGNode),
		byLit:     make(map[*ast.FuncLit]*CGNode),
		implCache: make(map[*types.Func][]*CGNode),
	}
	pkgs := pr.AllPackages()
	// Pass 1: nodes for declared functions/methods and interface methods,
	// and the named-type index for implements expansion.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &CGNode{Fn: fn, Decl: fd, Pkg: p}
				cg.nodes = append(cg.nodes, n)
				cg.byFunc[fn] = n
			}
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				for i := 0; i < iface.NumExplicitMethods(); i++ {
					m := iface.ExplicitMethod(i)
					if cg.byFunc[m] == nil {
						n := &CGNode{Fn: m, Pkg: p}
						cg.nodes = append(cg.nodes, n)
						cg.byFunc[m] = n
					}
				}
				continue
			}
			if named.NumMethods() > 0 {
				cg.named = append(cg.named, named)
			}
		}
	}
	sort.Slice(cg.named, func(i, j int) bool {
		return cg.named[i].Obj().Pos() < cg.named[j].Obj().Pos()
	})
	// Pass 2: edges and spawn sites. A stack of enclosing nodes attributes
	// calls inside function literals to the literal, not its host.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				host := cg.byFunc[p.Info.Defs[fd.Name].(*types.Func)]
				cg.walkBody(p, host, fd.Body)
			}
		}
	}
	pr.cg = cg
	return cg
}

// walkBody attributes calls/spawns in body to host, recursing into
// literals with a fresh node. A `go` statement's callee is deliberately
// NOT a call edge from the host — the spawned body runs on its own
// goroutine and is reachable only through the recorded SpawnSite, which is
// what keeps goroutine-confine's per-site reachability honest.
func (cg *CallGraph) walkBody(p *Package, host *CGNode, body *ast.BlockStmt) {
	cg.walkNode(p, host, body)
}

func (cg *CallGraph) walkNode(p *Package, host *CGNode, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			cg.litNode(p, n)
			return false
		case *ast.GoStmt:
			if spawned := cg.resolveCallable(p, n.Call.Fun); spawned != nil {
				cg.Spawns = append(cg.Spawns, &SpawnSite{Pos: n.Pos(), Via: "go statement", Root: spawned, Pkg: p})
			}
			// The go call's arguments (and a method receiver) evaluate on
			// the spawning goroutine; the body does not.
			for _, arg := range n.Call.Args {
				cg.walkNode(p, host, arg)
			}
			return false
		case *ast.CallExpr:
			cg.addCall(p, host, n)
			if fn := p.calleeFunc(n); fn != nil && fn.Name() == "Range" &&
				fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/par") && len(n.Args) > 0 {
				if task := cg.resolveCallable(p, n.Args[len(n.Args)-1]); task != nil {
					cg.Spawns = append(cg.Spawns, &SpawnSite{Pos: n.Pos(), Via: "par.Range task", Root: task, Pkg: p})
				}
			}
			return true
		}
		return true
	})
}

// litNode registers (once) a function literal's node and walks its body.
func (cg *CallGraph) litNode(p *Package, lit *ast.FuncLit) *CGNode {
	if n := cg.byLit[lit]; n != nil {
		return n
	}
	n := &CGNode{Lit: lit, Pkg: p}
	cg.nodes = append(cg.nodes, n)
	cg.byLit[lit] = n
	cg.walkBody(p, n, lit.Body)
	return n
}

func (cg *CallGraph) addCall(p *Package, host *CGNode, call *ast.CallExpr) {
	var callee *CGNode
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal.
		callee = cg.litNode(p, lit)
	} else if fn := p.calleeFunc(call); fn != nil {
		callee = cg.byFunc[fn]
	}
	if callee != nil && host != nil {
		host.Calls = append(host.Calls, CGEdge{Site: call, Callee: callee})
	}
}

// resolveCallable maps a spawned expression (`go EXPR(...)`, par.Range's
// task argument) to its node: a literal, or a declared function/method.
func (cg *CallGraph) resolveCallable(p *Package, e ast.Expr) *CGNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return cg.litNode(p, e)
	case *ast.Ident:
		if fn, ok := p.Info.Uses[e].(*types.Func); ok {
			return cg.byFunc[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[e.Sel].(*types.Func); ok {
			return cg.byFunc[fn]
		}
	}
	return nil
}

// calleeFunc resolves a call's target through the type info; nil for
// conversions, builtins, and calls through func values.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Implementations returns the module methods implementing an interface
// method, in declaration order.
func (cg *CallGraph) Implementations(ifaceMethod *types.Func) []*CGNode {
	if impls, ok := cg.implCache[ifaceMethod]; ok {
		return impls
	}
	var impls []*CGNode
	sig, ok := ifaceMethod.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			for _, named := range cg.named {
				ptr := types.NewPointer(named)
				if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, ifaceMethod.Pkg(), ifaceMethod.Name())
				if m, ok := obj.(*types.Func); ok {
					if n := cg.byFunc[m]; n != nil {
						impls = append(impls, n)
					}
				}
			}
		}
	}
	cg.implCache[ifaceMethod] = impls
	return impls
}

// Reachable walks call edges from root, expanding interface methods to
// their module implementations, and returns every node reached.
func (cg *CallGraph) Reachable(root *CGNode) map[*CGNode]bool {
	seen := map[*CGNode]bool{root: true}
	work := []*CGNode{root}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		var nexts []*CGNode
		for _, e := range n.Calls {
			nexts = append(nexts, e.Callee)
		}
		if n.IsIfaceMethod() {
			nexts = append(nexts, cg.Implementations(n.Fn)...)
		}
		for _, next := range nexts {
			if !seen[next] {
				seen[next] = true
				work = append(work, next)
			}
		}
	}
	return seen
}
