package lint

import (
	"go/ast"
	"go/types"
)

// dataflow.go is the generic engine the path-sensitive checks run on top
// of the CFG: a forward union-merge (may) analysis in the style of
// reaching definitions, plus a backward liveness pass. Facts are per
// types.Object bitmask state sets, merged by union, so any monotone
// pointwise transfer converges.

// flowState is a small set of per-object abstract states (check-specific
// bit meanings). The zero value means "no information yet" and is distinct
// from "mapped with zero bits" only in that absent keys are untracked.
type flowState uint16

// flowFact is the dataflow fact at one program point: abstract state per
// tracked object.
type flowFact map[types.Object]flowState

func (f flowFact) clone() flowFact {
	out := make(flowFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// mergeInto unions src into dst and reports whether dst changed.
func (dst flowFact) mergeInto(src flowFact) bool {
	changed := false
	for k, v := range src {
		if old, ok := dst[k]; !ok || old|v != old {
			dst[k] = old | v
			changed = true
		}
	}
	return changed
}

// transferFunc applies one node's effect to fact in place. It must be
// monotone per object state bit (union-distributive) for the fixpoint to
// converge; replacing a state set wholesale (e.g. release: Live→Released)
// is fine because the replacement is a pointwise function of the input
// bits.
type transferFunc func(n ast.Node, fact flowFact)

// forwardFlow runs the worklist algorithm and returns the fixpoint
// entry fact of every reachable block. Reporting passes re-apply the
// transfer over a block's nodes starting from its (stable) entry fact, so
// diagnostics fire exactly once per site.
func forwardFlow(c *CFG, entry flowFact, transfer transferFunc) map[*Block]flowFact {
	in := map[*Block]flowFact{c.Entry: entry.clone()}
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		fact := in[blk].clone()
		for _, n := range blk.Nodes {
			transfer(n, fact)
		}
		for _, succ := range blk.Succs {
			dst, ok := in[succ]
			if !ok {
				dst = make(flowFact)
				in[succ] = dst
			}
			if dst.mergeInto(fact) || !ok {
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}

// inspectShallow walks n without descending into function literals: a
// literal's body executes under its own CFG, not at this program point.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// liveVars is the backward pass: for every block, the set of objects that
// may be read on some path from the block's entry. defUse resolves idents
// through the type info; writes through `=`/`:=` kill, everything else
// (selector bases, index bases, call args, conditions) counts as a use.
func liveVars(c *CFG, info *types.Info) map[*Block]map[types.Object]bool {
	liveIn := make(map[*Block]map[types.Object]bool, len(c.Blocks))
	for _, b := range c.Blocks {
		liveIn[b] = make(map[types.Object]bool)
	}
	changed := true
	for changed {
		changed = false
		// Reverse block order is a decent schedule for a backward pass on a
		// mostly structured CFG; the outer loop handles the rest.
		for i := len(c.Blocks) - 1; i >= 0; i-- {
			b := c.Blocks[i]
			live := make(map[types.Object]bool)
			for _, succ := range b.Succs {
				for o := range liveIn[succ] {
					live[o] = true
				}
			}
			for j := len(b.Nodes) - 1; j >= 0; j-- {
				applyNodeLiveness(b.Nodes[j], info, live)
			}
			for o := range live {
				if !liveIn[b][o] {
					liveIn[b][o] = true
					changed = true
				}
			}
		}
	}
	return liveIn
}

// liveAfter recomputes liveness just past nodeIdx inside blk, from the
// block's successors' fixpoint. Used to ask "is this definition dead?".
func liveAfter(c *CFG, info *types.Info, liveIn map[*Block]map[types.Object]bool, blk *Block, nodeIdx int) map[types.Object]bool {
	live := make(map[types.Object]bool)
	for _, succ := range blk.Succs {
		for o := range liveIn[succ] {
			live[o] = true
		}
	}
	for j := len(blk.Nodes) - 1; j > nodeIdx; j-- {
		applyNodeLiveness(blk.Nodes[j], info, live)
	}
	return live
}

// applyNodeLiveness updates live with one node's kills then uses,
// processed backward (kill before use so `x = x+1` keeps x live).
func applyNodeLiveness(n ast.Node, info *types.Info, live map[types.Object]bool) {
	// Kills: identifiers written by assignment or declaration.
	kills := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			delete(live, obj)
		}
	}
	killed := make(map[*ast.Ident]bool)
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				kills(id)
				killed[id] = true
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						kills(id)
						killed[id] = true
					}
				}
			}
		}
	}
	// Uses: every other identifier that resolves to a variable.
	inspectShallow(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || killed[id] {
			return true
		}
		if obj, ok := info.Uses[id].(*types.Var); ok {
			live[obj] = true
		}
		return true
	})
}
