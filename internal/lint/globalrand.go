package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// runGlobalRand enforces the reproducibility convention: every experiment
// run with the same seed must produce bitwise-identical output (DESIGN.md
// "Determinism"). Three things break that and are banned in internal/ and
// cmd/:
//
//   - importing math/rand (v1): its package-level functions share hidden
//     global state; scalegnn threads explicit math/rand/v2 *rand.Rand
//     values instead.
//   - package-level RNG values: shared mutable state whose consumption
//     order depends on call interleaving.
//   - time-based seeding (time.Now fed into a rand constructor or
//     tensor.NewRand): makes every run unrepeatable by construction.
func runGlobalRand(p *Package, r *Reporter) {
	for _, f := range p.Files {
		randName, timeName, tensorName := importNames(f)
		// Ban the v1 package outright.
		for _, imp := range f.Imports {
			if path, _ := strconv.Unquote(imp.Path.Value); path == "math/rand" {
				r.Report(imp.Pos(), "math/rand (v1) has hidden global state; use math/rand/v2 with an injected *rand.Rand (tensor.NewRand)")
			}
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if ok && gd.Tok.String() == "var" {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if mentionsRand(vs, randName) {
						r.Report(vs.Pos(), "package-level RNG state breaks run-to-run reproducibility; inject a *rand.Rand instead")
					}
				}
			}
		}
		if randName == "" && tensorName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRandConstructor(call, randName, tensorName) {
				return true
			}
			for _, arg := range call.Args {
				if callsTimeNow(arg, timeName) {
					r.Report(call.Pos(), "time-based RNG seeding makes runs unreproducible; use a fixed or flag-provided seed")
				}
			}
			return true
		})
	}
}

// importNames returns the local names under which a file imports
// math/rand[/v2], time, and the tensor package ("" when not imported).
func importNames(f *ast.File) (randName, timeName, tensorName string) {
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch {
		case path == "math/rand" || path == "math/rand/v2":
			randName = orDefault(name, "rand")
		case path == "time":
			timeName = orDefault(name, "time")
		case strings.HasSuffix(path, "internal/tensor"):
			tensorName = orDefault(name, "tensor")
		}
	}
	return
}

func orDefault(name, def string) string {
	if name == "" {
		return def
	}
	return name
}

// mentionsRand reports whether a var spec's type or initializer references
// the rand package.
func mentionsRand(vs *ast.ValueSpec, randName string) bool {
	if randName == "" {
		return false
	}
	found := false
	check := func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == randName {
				found = true
			}
		}
		return !found
	}
	if vs.Type != nil {
		ast.Inspect(vs.Type, check)
	}
	for _, v := range vs.Values {
		ast.Inspect(v, check)
	}
	return found
}

// isRandConstructor matches rand.New/NewPCG/NewChaCha8/NewSource and
// tensor.NewRand calls.
func isRandConstructor(call *ast.CallExpr, randName, tensorName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == randName {
		switch sel.Sel.Name {
		case "New", "NewPCG", "NewChaCha8", "NewSource", "NewZipf":
			return true
		}
	}
	return id.Name == tensorName && tensorName != "" && sel.Sel.Name == "NewRand"
}

// callsTimeNow reports whether expr contains a time.Now() call.
func callsTimeNow(expr ast.Expr, timeName string) bool {
	if timeName == "" {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Now" {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName {
				found = true
			}
		}
		return !found
	})
	return found
}
