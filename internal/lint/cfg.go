package lint

import (
	"go/ast"
	"go/token"
)

// cfg.go builds a basic-block control-flow graph over a go/ast function
// body. The graph is the substrate for the dataflow passes in dataflow.go:
// path-sensitive checks (buf-flow, state-bind) and reaching-definitions
// style analyses (ctx-flow) all run over it. The builder stays on the
// stdlib go/ast only — no ssa, no x/tools — matching the loader's
// zero-dependency contract.
//
// Blocks hold "simple" nodes in execution order: plain statements
// (assignments, expression statements, declarations, defer/go, sends,
// inc/dec) plus the condition/tag expressions of the control statements
// that were decomposed into edges. Compound statements (if/for/switch/
// select) never appear as nodes themselves, so a transfer function can
// walk each node's subtree without re-entering control flow. Function
// literals are *not* descended into — each literal gets its own CFG via
// FuncCFG.

// Block is one basic block.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Return is the explicit return ending this block, if any.
	Return *ast.ReturnStmt
	// Terminates marks a block ending in panic/os.Exit/log.Fatal-style
	// calls: control reaches Exit only by unwinding, so exit-obligation
	// checks (e.g. buffer leaks) skip it.
	Terminates bool
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	Exit  *Block // synthetic; holds no nodes
	Blocks []*Block
}

// FuncCFG builds the CFG for a function body. The body may belong to an
// *ast.FuncDecl or an *ast.FuncLit; literals nested inside are treated as
// opaque values (build their CFGs separately).
func FuncCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{Index: -1}
	b.cur = b.cfg.Entry
	b.stmt(body)
	// Implicit return at the end of the body.
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

type loopFrame struct {
	label          string
	brk, cont      *Block
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block // nil after a terminator until the next block starts
	loops []loopFrame
	// pendingLabel is the label attached to the next loop/switch statement.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// use appends a node to the current block, opening a fresh (unreachable)
// block if control already left.
func (b *cfgBuilder) use(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startBlock begins a new block with an edge from the current one.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) findLoop(label string) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if label == "" || b.loops[i].label == label {
			return &b.loops[i]
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		if s.Init != nil {
			b.use(s.Init)
		}
		b.use(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		if s.Else == nil {
			b.edge(condBlk, join)
		}
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		if elseEnd != nil {
			b.edge(elseEnd, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.use(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.use(s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock() // holds s.Post; continue target
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: post})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.startBlock()
		// The range head both evaluates X and binds key/value; the whole
		// statement is the node so transfers see every identifier.
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)
	case *ast.SelectStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.loops = append(b.loops, loopFrame{label: label, brk: after})
		for _, clause := range s.Body.List {
			c := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if c.Comm != nil {
				b.use(c.Comm)
			}
			for _, st := range c.Body {
				b.stmt(st)
			}
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		if len(s.Body.List) == 0 {
			b.edge(head, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *ast.ReturnStmt:
		b.use(s)
		b.cur.Return = s
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.findLoop(labelName(s.Label)); f != nil && f.brk != nil {
				if b.cur == nil {
					b.cur = b.newBlock()
				}
				b.edge(b.cur, f.brk)
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.findLoop(labelName(s.Label)); f != nil && f.cont != nil {
				if b.cur == nil {
					b.cur = b.newBlock()
				}
				b.edge(b.cur, f.cont)
			}
			b.cur = nil
		case token.GOTO:
			// Approximate: a goto abandons structured flow; route to exit so
			// no spurious fallthrough facts survive. The repo style avoids
			// goto, so precision here buys nothing.
			if b.cur != nil {
				b.cur.Terminates = true
				b.edge(b.cur, b.cfg.Exit)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by switchStmt via clause ordering.
		}
	case *ast.ExprStmt:
		b.use(s)
		if isTerminatingCall(s.X) {
			b.cur.Terminates = true
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}
	case nil:
		// Absent optional statement.
	default:
		// AssignStmt, DeclStmt, DeferStmt, GoStmt, IncDecStmt, SendStmt,
		// EmptyStmt: straight-line nodes.
		b.use(s)
	}
}

// switchStmt lowers expression and type switches: head (init+tag) fans out
// to every case clause; clause bodies converge on the join block, and a
// fallthrough chains one clause body into the next.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	var init, tag ast.Node
	var clauses []*ast.CaseClause
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			init = s.Init
		}
		if s.Tag != nil {
			tag = s.Tag
		}
		for _, c := range s.Body.List {
			clauses = append(clauses, c.(*ast.CaseClause))
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			init = s.Init
		}
		tag = s.Assign
		for _, c := range s.Body.List {
			clauses = append(clauses, c.(*ast.CaseClause))
		}
	}
	if init != nil {
		b.use(init)
	}
	if tag != nil {
		b.use(tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, brk: after})
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, c := range clauses {
		if c.List == nil {
			hasDefault = true
		}
		b.edge(head, bodies[i])
		b.cur = bodies[i]
		for _, e := range c.List {
			b.use(e)
		}
		fallsThrough := false
		for _, st := range c.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st)
		}
		if b.cur != nil {
			if fallsThrough && i+1 < len(clauses) {
				b.edge(b.cur, bodies[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func labelName(l *ast.Ident) string {
	if l == nil {
		return ""
	}
	return l.Name
}

// isTerminatingCall recognizes calls that never return normally: panic,
// os.Exit, runtime.Goexit, log.Fatal*, and the repo's cmd-local fatal
// helpers. Purely syntactic — a CFG has no type info — which is fine for
// its one consumer: skipping exit-obligation reports on dying paths.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic" || fn.Name == "fatal"
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && fn.Sel.Name == "Exit":
				return true
			case x.Name == "runtime" && fn.Sel.Name == "Goexit":
				return true
			case x.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"):
				return true
			}
		}
	}
	return false
}
