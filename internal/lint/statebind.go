package lint

import (
	"go/ast"
	"go/types"
)

// statebind.go implements state-bind: in the serving layer, a request
// path may Load the hot-swap atomic.Pointer at most once. The engine
// swaps whole immutable state generations on reload; a handler that
// Loads twice can serve half a response from generation N and half from
// N+1. The check counts Loads per pointer field along every CFG path,
// following module calls through transitive may-Load summaries (a helper
// like Current() counts as a Load at its call site), and also flags dead
// Loads — a snapshot taken and dropped is a latent second Load waiting
// to be "fixed" by loading again.

const (
	stLoadedOnce flowState = 1 << iota
)

// atomicPointerLoad resolves a call of the form x.f.Load() on a
// sync/atomic Pointer (or Value) to the field/variable object identifying
// the pointer, or nil.
func atomicPointerLoad(p *Package, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" || len(call.Args) != 0 {
		return nil
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	// Only the hot-swap atomic.Pointer matters; plain atomic counters
	// (Int64 etc.) are loaded freely by stats paths.
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	if named, ok := rt.(*types.Named); !ok || named.Obj().Name() != "Pointer" {
		return nil
	}
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return p.Info.Uses[base.Sel]
	case *ast.Ident:
		return p.Info.Uses[base]
	}
	return nil
}

// hotSwapField reports whether field is an atomic.Pointer whose element
// type is declared in the analyzed package — the hot-swap state pointer,
// as opposed to e.g. observability refs that legitimately reload.
func hotSwapField(p *Package, field types.Object) bool {
	named, ok := field.Type().(*types.Named)
	if !ok || named.Obj().Name() != "Pointer" || named.TypeArgs().Len() != 1 {
		return false
	}
	elem := named.TypeArgs().At(0)
	if ptr, ok := elem.(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	en, ok := elem.(*types.Named)
	return ok && en.Obj().Pkg() == p.Types
}

func runStateBind(prog *Program, p *Package, r *Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeStateBind(prog, p, r, fd.Body)
			forEachFuncLit(fd.Body, func(lit *ast.FuncLit) {
				analyzeStateBind(prog, p, r, lit.Body)
			})
		}
	}
}

func analyzeStateBind(prog *Program, p *Package, r *Reporter, body *ast.BlockStmt) {
	// Quick reject: no loads (direct or through module calls) in sight.
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if field := atomicPointerLoad(p, call); field != nil && hotSwapField(p, field) {
			found = true
		} else if fn := p.calleeFunc(call); fn != nil {
			if node := prog.CallGraph().byFunc[fn]; node != nil {
				for field := range prog.mayLoadFor(node) {
					if hotSwapField(p, field) {
						found = true
					}
				}
			}
		}
		return !found
	})
	if !found {
		return
	}
	cfg := FuncCFG(body)
	transfer := func(n ast.Node, fact flowFact) {
		stateBindEvents(prog, p, n, func(field types.Object, pos ast.Node) {
			fact[field] |= stLoadedOnce
		})
	}
	in := forwardFlow(cfg, make(flowFact), transfer)
	liveIn := liveVars(cfg, p.Info)
	for _, blk := range cfg.Blocks {
		fact, ok := in[blk]
		if !ok || blk == cfg.Exit {
			continue
		}
		fact = fact.clone()
		for idx, n := range blk.Nodes {
			// Dead-load: a snapshot bound and never read.
			if obj, call := loadBinding(p, n); obj != nil {
				if !liveAfter(cfg, p.Info, liveIn, blk, idx)[obj] {
					r.Report(call.Pos(), "hot-swap state Load whose result %q is never used; drop it or thread the snapshot", obj.Name())
				}
			}
			stateBindEvents(prog, p, n, func(field types.Object, pos ast.Node) {
				if fact[field]&stLoadedOnce != 0 {
					r.Report(pos.Pos(), "second Load of hot-swap pointer %q on this path; a response could mix state generations — Load once and pass the snapshot down", field.Name())
				}
				fact[field] |= stLoadedOnce
			})
		}
	}
}

// stateBindEvents invokes fn for every Load event a node performs, in
// source order: direct atomic Loads, and module calls that transitively
// may Load (attributed to the call site).
func stateBindEvents(prog *Program, p *Package, n ast.Node, fn func(field types.Object, pos ast.Node)) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		// The body evaluates in its own blocks.
		stateBindEvents(prog, p, rs.X, fn)
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if field := atomicPointerLoad(p, call); field != nil {
			if hotSwapField(p, field) {
				fn(field, call)
			}
			return true
		}
		if callee := p.calleeFunc(call); callee != nil {
			if node := prog.CallGraph().byFunc[callee]; node != nil {
				for field := range prog.mayLoadFor(node) {
					if hotSwapField(p, field) {
						fn(field, call)
					}
				}
			}
		}
		return true
	})
}

// loadBinding matches `id := x.f.Load()` (single binding of a direct
// load) and returns the bound object and the call.
func loadBinding(p *Package, n ast.Node) (types.Object, *ast.CallExpr) {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	if field := atomicPointerLoad(p, call); field == nil || !hotSwapField(p, field) {
		return nil, nil
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	return obj, call
}

// mayLoadFor memoizes the set of atomic-pointer fields a function may
// Load, directly or through module callees. Cycles resolve to the empty
// set (the check under-reports rather than inventing paths).
func (pr *Program) mayLoadFor(node *CGNode) map[types.Object]bool {
	if pr.loadSums == nil {
		pr.loadSums = make(map[*CGNode]map[types.Object]bool)
	}
	if s, ok := pr.loadSums[node]; ok {
		return s
	}
	pr.loadSums[node] = map[types.Object]bool{} // in-progress: cycle-silent
	out := make(map[types.Object]bool)
	body := node.Body()
	if body == nil {
		pr.loadSums[node] = out
		return out
	}
	p := node.Pkg
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if field := atomicPointerLoad(p, call); field != nil {
			out[field] = true
			return true
		}
		if callee := p.calleeFunc(call); callee != nil {
			if sub := pr.CallGraph().byFunc[callee]; sub != nil && sub != node {
				for field := range pr.mayLoadFor(sub) {
					out[field] = true
				}
			}
		}
		return true
	})
	pr.loadSums[node] = out
	return out
}
