// Vectorized float32 fast paths. The generic kernels in tensor.go dispatch
// here via concrete-type assertions (pointer asserts only — no boxing, no
// allocation) when the operands are Mat[float32] and the CPU supports the
// AVX2+FMA kernels. The float64 reference tier never reaches this file, so
// its bitwise accumulation order is untouched.
package tensor

import (
	"fmt"

	"scalegnn/internal/par"
)

// FastF32 reports whether the vectorized float32 kernels are active on this
// machine (amd64 with AVX2+FMA, not disabled via SCALEGNN_NOSIMD=1).
func FastF32() bool { return fastF32 }

// F32Axpy computes y += a*x over equal-length float32 slices, vectorized
// when available. It is exported for sibling packages (the graph SpMM inner
// loop) that run concrete float32 hot loops.
func F32Axpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: F32Axpy length mismatch %d != %d", len(x), len(y)))
	}
	if fastF32 {
		f32AxpyAVX(a, x, y)
		return
	}
	axpyUnrolled(a, x, y)
}

// matMulIntoF32 is the float32 MatMulInto kernel: the same mmBlockK cache
// blocking as the generic path, with the 8-column register tile replaced by
// one YMM accumulator group. The tile kernel keeps 4 k-strided partial sums
// to hide FMA latency, which reassociates the k-sum — allowed on the
// float32 tier (parity with float64 is tolerance-checked, not bitwise).
func matMulIntoF32(a, b, dst *Mat[float32]) {
	n := b.Cols
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for kb := 0; kb < len(arow); kb += mmBlockK {
				kend := kb + mmBlockK
				if kend > len(arow) {
					kend = len(arow)
				}
				ab := arow[kb:kend]
				bb := b.Data[kb*n : kend*n]
				j := 0
				for ; j+8 <= n; j += 8 {
					f32GemmTileAVX(ab, bb[j:], orow[j:j+8], n)
				}
				for ; j < n; j++ {
					s := orow[j]
					bo := j
					for _, av := range ab {
						s += av * bb[bo]
						bo += n
					}
					orow[j] = s
				}
			}
		}
	})
}

// matMulTIntoF32 is the float32 a*bᵀ kernel: one vectorized dot product per
// output element.
func matMulTIntoF32(a, b, dst *Mat[float32]) {
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				orow[j] = f32DotAVX(arow, b.Row(j))
			}
		}
	})
}

// tMatMulIntoF32 is the float32 aᵀ*b kernel: k outermost as in the generic
// path, with the row update vectorized.
func tMatMulIntoF32(a, b, dst *Mat[float32]) {
	dst.Zero()
	par.Range(a.Cols, minChunkDense, func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				if av := arow[i]; av != 0 {
					f32AxpyAVX(av, brow, dst.Row(i))
				}
			}
		}
	})
}

// matVecIntoF32 is the float32 matrix-vector kernel.
func matVecIntoF32(a *Mat[float32], x, dst []float32) {
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = f32DotAVX(a.Row(i), x)
		}
	})
}
