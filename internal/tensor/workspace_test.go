package tensor

import (
	"math"
	"testing"
)

func TestWorkspaceGetPutReuse(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 3)
	if a.Rows != 4 || a.Cols != 3 || len(a.Data) != 12 {
		t.Fatalf("Get(4,3) gave %dx%d len %d", a.Rows, a.Cols, len(a.Data))
	}
	for i := range a.Data {
		a.Data[i] = 1
	}
	ws.Put(a)
	b := ws.GetZero(4, 3)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("GetZero returned dirty data at %d: %v", i, v)
		}
	}
	ws.Put(b)
	// Different shape draws from a different pool and must still be sized
	// correctly even when the flat length matches an earlier buffer.
	c := ws.Get(3, 4)
	if c.Rows != 3 || c.Cols != 4 {
		t.Fatalf("Get(3,4) gave %dx%d", c.Rows, c.Cols)
	}
}

func TestWorkspacePutNilAndEmpty(t *testing.T) {
	ws := NewWorkspace()
	ws.Put(nil)       // must not panic
	ws.Put(New(0, 5)) // empty matrices are not pooled
	ws.Put(New(5, 0)) // must not panic
}

func TestBufNextRecycles(t *testing.T) {
	ws := NewWorkspace()
	b := Buf{}
	b.ws = ws
	m1 := b.Next(2, 2)
	m1.Data[0] = 42
	// Next returns the previous buffer to the pool before acquiring; with a
	// single-threaded workspace the same allocation comes straight back.
	// Under the race detector sync.Pool deliberately drops a fraction of
	// Puts, so allow a few rounds before declaring recycling broken.
	recycled := false
	for i := 0; i < 50 && !recycled; i++ {
		m2 := b.Next(2, 2)
		recycled = m2 == m1
		m1 = m2
	}
	if !recycled {
		t.Fatal("Buf.Next should recycle the previous same-shape buffer")
	}
	z := b.NextZero(2, 2)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("NextZero dirty at %d: %v", i, v)
		}
	}
	b.Release()
	if b.cur != nil {
		t.Fatal("Release should clear the held buffer")
	}
	b.Release() // double release must be a no-op
}

func TestBufZeroValueUsesDefault(t *testing.T) {
	var b Buf
	m := b.Next(3, 3)
	if m.Rows != 3 || m.Cols != 3 {
		t.Fatalf("zero-value Buf Next gave %dx%d", m.Rows, m.Cols)
	}
	b.Release()
}

func TestOverlaps(t *testing.T) {
	backing := make([]float64, 10)
	cases := []struct {
		name string
		a, b []float64
		want bool
	}{
		{"identical", backing[0:5], backing[0:5], true},
		{"partial", backing[0:6], backing[3:9], true},
		{"adjacent", backing[0:5], backing[5:10], false},
		{"disjoint arrays", backing[0:5], make([]float64, 5), false},
		{"empty a", backing[0:0], backing[0:5], false},
		{"empty b", backing[0:5], backing[2:2], false},
		{"contained", backing[0:10], backing[4:6], true},
	}
	for _, c := range cases {
		if got := Overlaps(c.a, c.b); got != c.want {
			t.Errorf("%s: Overlaps = %v, want %v", c.name, got, c.want)
		}
		if got := Overlaps(c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): Overlaps = %v, want %v", c.name, got, c.want)
		}
	}
}

// intoKernelsMatchAllocating verifies every *Into kernel against its
// allocating wrapper on random inputs, with dst pre-filled with garbage to
// prove full overwrite.
func TestIntoKernelsMatchAllocating(t *testing.T) {
	rng := NewRand(5)
	a := RandNormal(17, 9, 1, rng)
	bm := RandNormal(9, 13, 1, rng)
	check := func(name string, want, got *Matrix) {
		t.Helper()
		if want.Rows != got.Rows || want.Cols != got.Cols {
			t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
				t.Fatalf("%s: mismatch at %d: %v vs %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}
	garbage := func(r, c int) *Matrix {
		m := New(r, c)
		for i := range m.Data {
			m.Data[i] = math.NaN()
		}
		return m
	}

	dst := garbage(17, 13)
	MatMulInto(a, bm, dst)
	check("MatMulInto", MatMul(a, bm), dst)

	g := RandNormal(17, 13, 1, rng)
	dst = garbage(17, 9)
	MatMulTInto(g, bm, dst)
	check("MatMulTInto", MatMulT(g, bm), dst)

	dst = garbage(9, 13)
	TMatMulInto(a, g, dst)
	check("TMatMulInto", TMatMul(a, g), dst)

	x := make([]float64, 9)
	for i := range x {
		x[i] = float64(i) - 4
	}
	out := make([]float64, 17)
	for i := range out {
		out[i] = math.NaN()
	}
	MatVecInto(a, x, out)
	want := MatVec(a, x)
	for i := range want {
		if math.Abs(want[i]-out[i]) > 1e-12 {
			t.Fatalf("MatVecInto mismatch at %d", i)
		}
	}

	idx := []int{3, 0, 16, 7}
	sdst := garbage(len(idx), 9)
	a.SelectRowsInto(idx, sdst)
	check("SelectRowsInto", a.SelectRows(idx), sdst)
}

func TestIntoKernelsRejectAliasing(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: aliased dst should panic", name)
			}
		}()
		f()
	}
	mustPanic("MatMulInto dst=a", func() { MatMulInto(a, b, a) })
	mustPanic("MatMulInto dst=b", func() { MatMulInto(a, b, b) })
	mustPanic("MatMulTInto dst=a", func() { MatMulTInto(a, b, a) })
	mustPanic("TMatMulInto dst=b", func() { TMatMulInto(a, b, b) })
	mustPanic("SelectRowsInto dst aliases src", func() {
		view := FromSlice(2, 4, a.Data[:8])
		a.SelectRowsInto([]int{0, 1}, view)
	})
}

func TestIntoKernelsRejectShapeMismatch(t *testing.T) {
	a := New(4, 3)
	b := New(3, 5)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: bad dst shape should panic", name)
			}
		}()
		f()
	}
	mustPanic("MatMulInto wrong dst", func() { MatMulInto(a, b, New(4, 4)) })
	mustPanic("MatVecInto wrong dst", func() { MatVecInto(a, make([]float64, 3), make([]float64, 3)) })
	mustPanic("SelectRowsInto wrong dst", func() { a.SelectRowsInto([]int{0}, New(2, 3)) })
}
