//go:build !amd64

package tensor

// fastF32 is false off amd64: there are no vector kernels, so every tier
// runs the portable scalar loops. Declared as a var (not a const) so the
// dispatch code reads identically on both build variants.
var fastF32 = false

func f32AxpyAVX(a float32, x, y []float32) { panic("tensor: no SIMD on this arch") }
func f32DotAVX(x, y []float32) float32     { panic("tensor: no SIMD on this arch") }
func f32GemmTileAVX(a, b, acc []float32, stride int) {
	panic("tensor: no SIMD on this arch")
}
