package tensor

import (
	"math"
	"math/rand/v2"
)

// NewPCG returns the seeded PCG source underlying NewRand. Callers that
// need to serialize RNG state (checkpoint/resume) hold the concrete *PCG —
// which implements encoding.BinaryMarshaler/Unmarshaler — while sharing
// its stream with model code through rand.New(pcg): the Rand is a
// stateless view, so restoring the PCG restores every alias at once.
func NewPCG(seed uint64) *rand.PCG {
	return rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
}

// NewRand returns a new seeded PRNG. All randomized code in scalegnn threads
// explicit *rand.Rand values so that every experiment is reproducible.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(NewPCG(seed))
}

// RandNormalOf fills a new rows x cols matrix of element type T with
// N(0, std²) entries. The draws happen in float64 and narrow afterwards, so
// a float32 run consumes the RNG stream exactly like its float64 twin —
// dtype never shifts downstream random decisions (shuffles, dropout masks).
func RandNormalOf[T Elem](rows, cols int, std float64, rng *rand.Rand) *Mat[T] {
	m := NewOf[T](rows, cols)
	for i := range m.Data {
		m.Data[i] = T(rng.NormFloat64() * std)
	}
	return m
}

// RandNormal fills a new float64 rows x cols matrix with N(0, std²) entries.
func RandNormal(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	return RandNormalOf[float64](rows, cols, std, rng)
}

// RandUniformOf fills a new rows x cols matrix of element type T with
// Uniform[lo, hi) entries, drawing in float64 (see RandNormalOf).
func RandUniformOf[T Elem](rows, cols int, lo, hi float64, rng *rand.Rand) *Mat[T] {
	m := NewOf[T](rows, cols)
	for i := range m.Data {
		m.Data[i] = T(lo + rng.Float64()*(hi-lo))
	}
	return m
}

// RandUniform fills a new float64 rows x cols matrix with Uniform[lo, hi)
// entries.
func RandUniform(rows, cols int, lo, hi float64, rng *rand.Rand) *Matrix {
	return RandUniformOf[float64](rows, cols, lo, hi, rng)
}

// GlorotUniformOf returns a rows x cols matrix of element type T
// initialized with the Glorot (Xavier) uniform scheme, the standard
// initializer for GNN weight matrices.
func GlorotUniformOf[T Elem](rows, cols int, rng *rand.Rand) *Mat[T] {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	return RandUniformOf[T](rows, cols, -limit, limit, rng)
}

// GlorotUniform returns a float64 Glorot-initialized rows x cols matrix.
func GlorotUniform(rows, cols int, rng *rand.Rand) *Matrix {
	return GlorotUniformOf[float64](rows, cols, rng)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func Perm(n int, rng *rand.Rand) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
