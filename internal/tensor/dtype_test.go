package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randMatPair returns the same random matrix at both tiers: float64
// reference values, narrowed to float32.
func randMatPair(rng *rand.Rand, rows, cols int) (*Matrix, *Mat[float32]) {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64() - 0.5
	}
	return m, FromFloat64[float32](m)
}

// maxRelDiff returns max_i |a32[i] - a64[i]| / max(1, |a64[i]|).
func maxRelDiff(a64 []float64, a32 []float32) float64 {
	worst := 0.0
	for i, v := range a64 {
		scale := math.Abs(v)
		if scale < 1 {
			scale = 1
		}
		if d := math.Abs(float64(a32[i])-v) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// TestKernelParityFloat32 checks every dense kernel at float32 against the
// float64 reference with a per-op tolerance sized to the accumulation
// length: k-long sums (matmuls, dot) accumulate rounding roughly with
// sqrt(k)·eps32, element-wise ops stay within a few ulps. Sizes are odd on
// purpose so the 8-wide tiles, 4-wide unrolls, and scalar tails all run;
// k > mmBlockK exercises the cache-blocking seam.
func TestKernelParityFloat32(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	cases := []struct{ m, k, n int }{
		{37, 101, 53},
		{16, 300, 24}, // k crosses the mmBlockK boundary
		{5, 33, 3},    // n < 8: pure scalar remainder columns
		{1, 1, 1},
	}
	for _, c := range cases {
		a64, a32 := randMatPair(rng, c.m, c.k)
		b64, b32 := randMatPair(rng, c.k, c.n)
		bt64, bt32 := randMatPair(rng, c.n, c.k)
		w64, w32 := randMatPair(rng, c.m, c.n)

		const sumTol = 2e-5 // k-long accumulations
		const elemTol = 1e-6

		got64 := MatMul(a64, b64)
		got32 := MatMul(a32, b32)
		if d := maxRelDiff(got64.Data, got32.Data); d > sumTol {
			t.Errorf("MatMul %dx%dx%d: rel diff %g > %g", c.m, c.k, c.n, d, sumTol)
		}

		gt64 := MatMulT(a64, bt64)
		gt32 := MatMulT(a32, bt32)
		if d := maxRelDiff(gt64.Data, gt32.Data); d > sumTol {
			t.Errorf("MatMulT %dx%dx%d: rel diff %g > %g", c.m, c.k, c.n, d, sumTol)
		}

		tm64 := TMatMul(a64, w64)
		tm32 := TMatMul(a32, w32)
		if d := maxRelDiff(tm64.Data, tm32.Data); d > sumTol {
			t.Errorf("TMatMul %dx%dx%d: rel diff %g > %g", c.m, c.k, c.n, d, sumTol)
		}

		x64 := make([]float64, c.k)
		x32 := make([]float32, c.k)
		for i := range x64 {
			x64[i] = rng.Float64() - 0.5
			x32[i] = float32(x64[i])
		}
		mv64 := MatVec(a64, x64)
		mv32 := MatVec(a32, x32)
		if d := maxRelDiff(mv64, mv32); d > sumTol {
			t.Errorf("MatVec %dx%d: rel diff %g > %g", c.m, c.k, d, sumTol)
		}

		s64 := a64.Clone()
		s32 := a32.Clone()
		s64.AddScaled(0.37, a64)
		s32.AddScaled(0.37, a32)
		if d := maxRelDiff(s64.Data, s32.Data); d > elemTol {
			t.Errorf("AddScaled %dx%d: rel diff %g > %g", c.m, c.k, d, elemTol)
		}
	}
}

// TestSIMDMatchesScalarFloat32 compares the vectorized float32 kernels
// against the portable scalar loops on the same inputs. The vector kernels
// may reassociate k-sums (partial accumulators), so the comparison is
// tolerance-based, but much tighter than the cross-dtype parity: both
// paths compute in float32.
func TestSIMDMatchesScalarFloat32(t *testing.T) {
	if !FastF32() {
		t.Skip("no vectorized float32 kernels on this machine")
	}
	restore := func() { fastF32 = true }
	defer restore()

	rng := rand.New(rand.NewPCG(23, 29))
	for _, c := range []struct{ m, k, n int }{{37, 301, 53}, {8, 8, 8}, {3, 5, 2}} {
		_, a := randMatPair(rng, c.m, c.k)
		_, b := randMatPair(rng, c.k, c.n)
		_, bt := randMatPair(rng, c.n, c.k)
		_, w := randMatPair(rng, c.m, c.n)

		fastF32 = true
		mmV := MatMul(a, b)
		mtV := MatMulT(a, bt)
		tmV := TMatMul(a, w)
		addV := a.Clone()
		addV.AddScaled(1.5, a)

		fastF32 = false
		mmS := MatMul(a, b)
		mtS := MatMulT(a, bt)
		tmS := TMatMul(a, w)
		addS := a.Clone()
		addS.AddScaled(1.5, a)
		restore()

		const tol = 1e-5
		check := func(name string, v, s *Mat[float32]) {
			t.Helper()
			for i := range s.Data {
				ref := float64(s.Data[i])
				scale := math.Abs(ref)
				if scale < 1 {
					scale = 1
				}
				if math.Abs(float64(v.Data[i])-ref)/scale > tol {
					t.Fatalf("%s %dx%dx%d: simd %v != scalar %v at %d",
						name, c.m, c.k, c.n, v.Data[i], s.Data[i], i)
				}
			}
		}
		check("MatMul", mmV, mmS)
		check("MatMulT", mtV, mtS)
		check("TMatMul", tmV, tmS)
		check("AddScaled", addV, addS)
	}
}

// TestF32AxpyTails exercises every unroll width of the axpy kernel
// (16-wide, 8-wide, scalar tail) including the empty slice.
func TestF32AxpyTails(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 15, 16, 17, 31, 33} {
		x := make([]float32, n)
		y := make([]float32, n)
		want := make([]float32, n)
		for i := range x {
			x[i] = float32(i)*0.25 - 1
			y[i] = float32(n - i)
			want[i] = y[i] + 0.5*x[i]
		}
		F32Axpy(0.5, x, y)
		for i := range y {
			if math.Abs(float64(y[i]-want[i])) > 1e-6 {
				t.Fatalf("n=%d: y[%d] = %v, want %v", n, i, y[i], want[i])
			}
		}
	}
}
