package tensor

import (
	"fmt"
	"sync"
	"unsafe"

	"scalegnn/internal/obs"
)

// Workspace is a shape-keyed pool of matrices backing the allocation-free
// training hot path. Get/Put recycle buffers of identical shape through a
// sync.Pool per shape, so steady-state forward/backward passes reuse the
// same memory epoch after epoch instead of reallocating per call. Buffers
// are dropped automatically under GC pressure (sync.Pool semantics), so a
// workspace never pins more memory than the live working set.
//
// A Workspace is safe for concurrent use. The zero value is ready to use.
type Workspace struct {
	pools sync.Map // shapeKey -> *sync.Pool of *Matrix
}

type shapeKey struct{ rows, cols int }

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Default is the process-wide workspace used by the package-level
// GetBuf/GetZeroBuf/PutBuf helpers and, through them, by the nn layers and
// model training loops.
var Default = NewWorkspace()

// Get returns a rows x cols matrix with UNSPECIFIED contents: callers must
// fully overwrite it (the *Into kernels do). Use GetZero when zeros are
// required.
func (w *Workspace) Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: Workspace.Get invalid shape %dx%d", rows, cols))
	}
	p, ok := w.pools.Load(shapeKey{rows, cols})
	if ok {
		if m, _ := p.(*sync.Pool).Get().(*Matrix); m != nil {
			poolHits.Add(1)
			return m
		}
	}
	poolMisses.Add(1)
	return New(rows, cols)
}

// Pool hit/miss refs for every workspace in the process. Unbound (the
// default) they cost one atomic pointer load per Get — nothing is counted
// and nothing allocates; EnablePoolMetrics turns them on.
var (
	poolHits   obs.CounterRef
	poolMisses obs.CounterRef
)

// EnablePoolMetrics binds the workspace pool counters to reg:
//
//	tensor.pool_hits    counter  Get calls served from the pool
//	tensor.pool_misses  counter  Get calls that allocated a fresh matrix
//
// Steady-state training should show a hit rate near 1 (the allocation-free
// hot path); a climbing miss count flags shape churn. Pass nil to unbind.
func EnablePoolMetrics(reg *obs.Registry) {
	if reg == nil {
		poolHits.Bind(nil)
		poolMisses.Bind(nil)
		return
	}
	poolHits.Bind(reg.Counter("tensor.pool_hits"))
	poolMisses.Bind(reg.Counter("tensor.pool_misses"))
}

// GetZero returns a zeroed rows x cols matrix.
func (w *Workspace) GetZero(rows, cols int) *Matrix {
	m := w.Get(rows, cols)
	m.Zero()
	return m
}

// Put returns m to the pool for its exact shape. m must not be used after
// Put. Putting nil or an empty matrix is a no-op.
func (w *Workspace) Put(m *Matrix) {
	if m == nil || len(m.Data) == 0 {
		return
	}
	key := shapeKey{m.Rows, m.Cols}
	p, ok := w.pools.Load(key)
	if !ok {
		p, _ = w.pools.LoadOrStore(key, &sync.Pool{})
	}
	p.(*sync.Pool).Put(m)
}

// GetBuf returns a matrix from the Default workspace (contents unspecified).
func GetBuf(rows, cols int) *Matrix { return Default.Get(rows, cols) }

// GetZeroBuf returns a zeroed matrix from the Default workspace.
func GetZeroBuf(rows, cols int) *Matrix { return Default.GetZero(rows, cols) }

// PutBuf returns a matrix to the Default workspace.
func PutBuf(m *Matrix) { Default.Put(m) }

// Buf is a single-slot recycling handle for the canonical layer-output
// pattern: each call to Next recycles the buffer handed out by the previous
// call and acquires a fresh one from the workspace. Because training loops
// consume a layer's output before the next forward/backward pass, the
// previous-generation buffer is dead by the time Next runs again, so the
// hand-back is safe and the steady state allocates nothing.
//
// Callers that hold a returned matrix across two calls to Next on the same
// Buf will observe it being overwritten — clone anything that must outlive
// the next pass.
type Buf struct {
	ws  *Workspace // nil means Default
	cur *Matrix
}

// NewBuf returns a Buf drawing from ws (nil means the Default workspace).
func NewBuf(ws *Workspace) Buf { return Buf{ws: ws} }

func (b *Buf) workspace() *Workspace {
	if b.ws == nil {
		return Default
	}
	return b.ws
}

// Next recycles the previously returned buffer and hands out a rows x cols
// matrix with unspecified contents.
func (b *Buf) Next(rows, cols int) *Matrix {
	ws := b.workspace()
	if b.cur != nil {
		ws.Put(b.cur)
	}
	b.cur = ws.Get(rows, cols)
	return b.cur
}

// NextZero is Next with zeroed contents.
func (b *Buf) NextZero(rows, cols int) *Matrix {
	m := b.Next(rows, cols)
	m.Zero()
	return m
}

// Release returns the current buffer (if any) to the workspace.
func (b *Buf) Release() {
	if b.cur != nil {
		b.workspace().Put(b.cur)
		b.cur = nil
	}
}

// Overlaps reports whether the backing arrays of a and b share any memory.
// It is the full data-range aliasing check used by the *Into kernels and
// graph propagation: views built with FromSlice over one backing slice
// overlap even when their first elements differ.
func Overlaps(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	aLo := uintptr(unsafe.Pointer(&a[0]))
	aHi := aLo + uintptr(len(a))*unsafe.Sizeof(a[0])
	bLo := uintptr(unsafe.Pointer(&b[0]))
	bHi := bLo + uintptr(len(b))*unsafe.Sizeof(b[0])
	return aLo < bHi && bLo < aHi
}
