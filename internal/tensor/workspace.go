package tensor

import (
	"fmt"
	"sync"
	"unsafe"

	"scalegnn/internal/obs"
)

// Pool is a shape-keyed pool of matrices backing the allocation-free
// training hot path, generic over the element type. Get/Put recycle buffers
// of identical shape through a sync.Pool per shape, so steady-state
// forward/backward passes reuse the same memory epoch after epoch instead
// of reallocating per call. Buffers are dropped automatically under GC
// pressure (sync.Pool semantics), so a pool never pins more memory than the
// live working set.
//
// A Pool is safe for concurrent use. The zero value is ready to use.
type Pool[T Elem] struct {
	pools sync.Map // shapeKey -> *sync.Pool of *Mat[T]
}

// Workspace is the float64 pool — the historical name every float64 call
// site uses.
type Workspace = Pool[float64]

type shapeKey struct{ rows, cols int }

// NewWorkspace returns an empty float64 workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Default is the process-wide float64 workspace used by the package-level
// GetBuf/GetZeroBuf/PutBuf helpers and, through them, by the nn layers and
// model training loops.
var Default = NewWorkspace()

// Default32 is the process-wide float32 workspace backing the raw-speed
// tier's pooled buffers.
var Default32 = &Pool[float32]{}

// DefaultPool returns the process-wide pool for the element type T —
// Default for float64, Default32 for float32 — so generic layers and
// kernels share pooled buffers with every other user of that dtype.
func DefaultPool[T Elem]() *Pool[T] {
	var z T
	var p any
	switch any(z).(type) {
	case float32:
		p = Default32
	default:
		p = Default
	}
	return p.(*Pool[T])
}

// Get returns a rows x cols matrix with UNSPECIFIED contents: callers must
// fully overwrite it (the *Into kernels do). Use GetZero when zeros are
// required.
func (w *Pool[T]) Get(rows, cols int) *Mat[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: Workspace.Get invalid shape %dx%d", rows, cols))
	}
	p, ok := w.pools.Load(shapeKey{rows, cols})
	if ok {
		if m, _ := p.(*sync.Pool).Get().(*Mat[T]); m != nil {
			poolHits.Add(1)
			return m
		}
	}
	poolMisses.Add(1)
	return NewOf[T](rows, cols)
}

// Pool hit/miss refs for every workspace in the process (all element
// types). Unbound (the default) they cost one atomic pointer load per Get —
// nothing is counted and nothing allocates; EnablePoolMetrics turns them on.
var (
	poolHits   obs.CounterRef
	poolMisses obs.CounterRef
)

// EnablePoolMetrics binds the workspace pool counters to reg:
//
//	tensor.pool_hits    counter  Get calls served from the pool
//	tensor.pool_misses  counter  Get calls that allocated a fresh matrix
//
// Steady-state training should show a hit rate near 1 (the allocation-free
// hot path); a climbing miss count flags shape churn. Pass nil to unbind.
func EnablePoolMetrics(reg *obs.Registry) {
	if reg == nil {
		poolHits.Bind(nil)
		poolMisses.Bind(nil)
		return
	}
	poolHits.Bind(reg.Counter("tensor.pool_hits"))
	poolMisses.Bind(reg.Counter("tensor.pool_misses"))
}

// GetZero returns a zeroed rows x cols matrix.
func (w *Pool[T]) GetZero(rows, cols int) *Mat[T] {
	m := w.Get(rows, cols)
	m.Zero()
	return m
}

// Put returns m to the pool for its exact shape. m must not be used after
// Put. Putting nil or an empty matrix is a no-op.
func (w *Pool[T]) Put(m *Mat[T]) {
	if m == nil || len(m.Data) == 0 {
		return
	}
	key := shapeKey{m.Rows, m.Cols}
	p, ok := w.pools.Load(key)
	if !ok {
		p, _ = w.pools.LoadOrStore(key, &sync.Pool{})
	}
	p.(*sync.Pool).Put(m)
}

// GetBuf returns a float64 matrix from the Default workspace (contents
// unspecified).
func GetBuf(rows, cols int) *Matrix { return Default.Get(rows, cols) }

// GetZeroBuf returns a zeroed float64 matrix from the Default workspace.
func GetZeroBuf(rows, cols int) *Matrix { return Default.GetZero(rows, cols) }

// PutBuf returns a float64 matrix to the Default workspace.
func PutBuf(m *Matrix) { Default.Put(m) }

// GetBufOf returns a matrix of element type T from that type's default pool
// (contents unspecified).
func GetBufOf[T Elem](rows, cols int) *Mat[T] { return DefaultPool[T]().Get(rows, cols) }

// GetZeroBufOf returns a zeroed matrix of element type T from that type's
// default pool.
func GetZeroBufOf[T Elem](rows, cols int) *Mat[T] { return DefaultPool[T]().GetZero(rows, cols) }

// PutBufOf returns a matrix to its element type's default pool.
func PutBufOf[T Elem](m *Mat[T]) { DefaultPool[T]().Put(m) }

// BufOf is a single-slot recycling handle for the canonical layer-output
// pattern: each call to Next recycles the buffer handed out by the previous
// call and acquires a fresh one from the workspace. Because training loops
// consume a layer's output before the next forward/backward pass, the
// previous-generation buffer is dead by the time Next runs again, so the
// hand-back is safe and the steady state allocates nothing.
//
// Callers that hold a returned matrix across two calls to Next on the same
// Buf will observe it being overwritten — clone anything that must outlive
// the next pass.
type BufOf[T Elem] struct {
	ws  *Pool[T] // nil means the default pool for T
	cur *Mat[T]
}

// Buf is the float64 instantiation of BufOf.
type Buf = BufOf[float64]

// NewBuf returns a float64 Buf drawing from ws (nil means the Default
// workspace).
func NewBuf(ws *Workspace) Buf { return Buf{ws: ws} }

// NewBufOf returns a BufOf[T] drawing from ws (nil means the default pool
// for T).
func NewBufOf[T Elem](ws *Pool[T]) BufOf[T] { return BufOf[T]{ws: ws} }

func (b *BufOf[T]) workspace() *Pool[T] {
	if b.ws == nil {
		return DefaultPool[T]()
	}
	return b.ws
}

// Next recycles the previously returned buffer and hands out a rows x cols
// matrix with unspecified contents.
func (b *BufOf[T]) Next(rows, cols int) *Mat[T] {
	ws := b.workspace()
	if b.cur != nil {
		ws.Put(b.cur)
	}
	b.cur = ws.Get(rows, cols)
	return b.cur
}

// NextZero is Next with zeroed contents.
func (b *BufOf[T]) NextZero(rows, cols int) *Mat[T] {
	m := b.Next(rows, cols)
	m.Zero()
	return m
}

// Release returns the current buffer (if any) to the workspace.
func (b *BufOf[T]) Release() {
	if b.cur != nil {
		b.workspace().Put(b.cur)
		b.cur = nil
	}
}

// Overlaps reports whether the backing arrays of a and b share any memory.
// It is the full data-range aliasing check used by the *Into kernels and
// graph propagation: views built with FromSlice over one backing slice
// overlap even when their first elements differ.
func Overlaps[T Elem](a, b []T) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	aLo := uintptr(unsafe.Pointer(&a[0]))
	aHi := aLo + uintptr(len(a))*unsafe.Sizeof(a[0])
	bLo := uintptr(unsafe.Pointer(&b[0]))
	bHi := bLo + uintptr(len(b))*unsafe.Sizeof(b[0])
	return aLo < bHi && bLo < aHi
}
