// AVX2+FMA float32 kernels for the raw-speed tier. These are only ever
// dispatched for Mat[float32] operands (and only when cpuHasAVX2FMA reports
// support), so the float64 reference path keeps its bitwise-stable scalar
// loops. The gemm tile and dot kernels keep four independent partial
// accumulators to hide FMA latency; that reassociates the k-sum, which the
// float32 tier explicitly permits (parity with float64 is tolerance-based).

#include "textflag.h"

// func cpuHasAVX2FMA() bool
//
// True when the CPU and OS support AVX2 + FMA + OS-managed YMM state:
// CPUID.1:ECX has FMA(12), OSXSAVE(27), AVX(28); XCR0 has XMM|YMM;
// CPUID.7.0:EBX has AVX2(5).
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  no
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL $0x18001000, R9 // (1<<28)|(1<<27)|(1<<12)
	ANDL R9, CX
	CMPL CX, R9
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX          // XCR0: XMM|YMM state enabled
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1 << 5), BX  // AVX2
	JEQ  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func f32AxpyAVX(a float32, x, y []float32)
//
// y[i] += a * x[i] for i < len(y). Caller guarantees len(x) == len(y).
// Elements are independent, so vectorization never reassociates a sum.
TEXT ·f32AxpyAVX(SB), NOSPLIT, $0-56
	VBROADCASTSS a+0(FP), Y3
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX
	MOVQ CX, BX
	ANDQ $-16, BX
	XORQ AX, AX
loop16:
	CMPQ AX, BX
	JGE  head8
	VMOVUPS (SI)(AX*4), Y0
	VMOVUPS 32(SI)(AX*4), Y1
	VFMADD213PS (DI)(AX*4), Y3, Y0   // Y0 = a*x + y
	VFMADD213PS 32(DI)(AX*4), Y3, Y1
	VMOVUPS Y0, (DI)(AX*4)
	VMOVUPS Y1, 32(DI)(AX*4)
	ADDQ $16, AX
	JMP  loop16
head8:
	MOVQ CX, BX
	ANDQ $-8, BX
loop8:
	CMPQ AX, BX
	JGE  scalar
	VMOVUPS (SI)(AX*4), Y0
	VFMADD213PS (DI)(AX*4), Y3, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  loop8
scalar:
	CMPQ AX, CX
	JGE  done
	VMOVSS (SI)(AX*4), X0
	VFMADD213SS (DI)(AX*4), X3, X0
	VMOVSS X0, (DI)(AX*4)
	INCQ AX
	JMP  scalar
done:
	VZEROUPPER
	RET

// func f32DotAVX(x, y []float32) float32
//
// Returns dot(x, y) over len(x) elements (caller guarantees equal lengths).
// Four YMM partial accumulators, reduced at the end.
TEXT ·f32DotAVX(SB), NOSPLIT, $0-52
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, BX
	ANDQ $-32, BX
	XORQ AX, AX
loop32:
	CMPQ AX, BX
	JGE  head8
	VMOVUPS (SI)(AX*4), Y4
	VFMADD231PS (DI)(AX*4), Y4, Y0
	VMOVUPS 32(SI)(AX*4), Y5
	VFMADD231PS 32(DI)(AX*4), Y5, Y1
	VMOVUPS 64(SI)(AX*4), Y6
	VFMADD231PS 64(DI)(AX*4), Y6, Y2
	VMOVUPS 96(SI)(AX*4), Y7
	VFMADD231PS 96(DI)(AX*4), Y7, Y3
	ADDQ $32, AX
	JMP  loop32
head8:
	MOVQ CX, BX
	ANDQ $-8, BX
loop8:
	CMPQ AX, BX
	JGE  reduce
	VMOVUPS (SI)(AX*4), Y4
	VFMADD231PS (DI)(AX*4), Y4, Y0
	ADDQ $8, AX
	JMP  loop8
reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
scalar:
	CMPQ AX, CX
	JGE  done
	VMOVSS (SI)(AX*4), X1
	VFMADD231SS (DI)(AX*4), X1, X0
	INCQ AX
	JMP  scalar
done:
	VMOVSS X0, ret+48(FP)
	VZEROUPPER
	RET

// func f32GemmTileAVX(a, b, acc []float32, stride int)
//
// acc[0:8] += sum_k a[k] * b[k*stride : k*stride+8] — one 8-column output
// tile of the register-blocked matmul. Four k-strided partial accumulators
// hide FMA latency; they are summed into acc at the end.
TEXT ·f32GemmTileAVX(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DX
	MOVQ acc_base+48(FP), DI
	MOVQ stride+72(FP), R9
	SHLQ $2, R9          // stride in bytes
	VMOVUPS (DI), Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, BX
	ANDQ $-4, BX
	XORQ AX, AX
loop4:
	CMPQ AX, BX
	JGE  tail
	VBROADCASTSS (SI)(AX*4), Y4
	VFMADD231PS (DX), Y4, Y0
	VBROADCASTSS 4(SI)(AX*4), Y5
	VFMADD231PS (DX)(R9*1), Y5, Y1
	LEAQ (DX)(R9*2), R10
	VBROADCASTSS 8(SI)(AX*4), Y6
	VFMADD231PS (R10), Y6, Y2
	VBROADCASTSS 12(SI)(AX*4), Y7
	VFMADD231PS (R10)(R9*1), Y7, Y3
	LEAQ (R10)(R9*2), DX
	ADDQ $4, AX
	JMP  loop4
tail:
	CMPQ AX, CX
	JGE  sum
	VBROADCASTSS (SI)(AX*4), Y4
	VFMADD231PS (DX), Y4, Y0
	ADDQ R9, DX
	INCQ AX
	JMP  tail
sum:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET
