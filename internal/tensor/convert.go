package tensor

// This file holds the dtype boundary: datasets, checkpoints, and the
// serving API stay float64, while the raw-speed tier computes in float32.
// Conversions are explicit one-time copies at those boundaries — never
// silent per-element casts inside kernels.

// FromFloat64 views a float64 matrix as a Mat[T]. For T = float64 it
// returns src itself (zero copy, shared storage); for float32 it returns a
// freshly narrowed copy. Callers on the float32 path own the copy and may
// mutate it freely; callers on the float64 path must treat the result as a
// view of src.
func FromFloat64[T Elem](src *Matrix) *Mat[T] {
	if m, ok := any(src).(*Mat[T]); ok {
		return m
	}
	out := NewOf[T](src.Rows, src.Cols)
	for i, v := range src.Data {
		out.Data[i] = T(v)
	}
	return out
}

// ToFloat64 views a Mat[T] as a float64 matrix. For T = float64 it returns
// src itself (zero copy, shared storage); for float32 it returns a freshly
// widened copy.
func ToFloat64[T Elem](src *Mat[T]) *Matrix {
	if m, ok := any(src).(*Matrix); ok {
		return m
	}
	out := New(src.Rows, src.Cols)
	for i, v := range src.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// WidenInto widens src into the float64 dst (same shape). For T = float64
// this is a plain copy.
func WidenInto[T Elem](src *Mat[T], dst *Matrix) {
	if src.Rows != dst.Rows || src.Cols != dst.Cols {
		panic("tensor: WidenInto shape mismatch")
	}
	if m, ok := any(src).(*Matrix); ok {
		if m == dst {
			return
		}
		if Overlaps(m.Data, dst.Data) {
			panic("tensor: WidenInto dst aliases src")
		}
		copy(dst.Data, m.Data)
		return
	}
	for i, v := range src.Data {
		dst.Data[i] = float64(v)
	}
}

// NarrowInto narrows the float64 src into dst (same shape). For T = float64
// this is a plain copy.
func NarrowInto[T Elem](src *Matrix, dst *Mat[T]) {
	if src.Rows != dst.Rows || src.Cols != dst.Cols {
		panic("tensor: NarrowInto shape mismatch")
	}
	if m, ok := any(dst).(*Matrix); ok {
		if m == src {
			return
		}
		if Overlaps(m.Data, src.Data) {
			panic("tensor: NarrowInto dst aliases src")
		}
		copy(m.Data, src.Data)
		return
	}
	for i, v := range src.Data {
		dst.Data[i] = T(v)
	}
}

// Float64Slice widens a []T to []float64; for T = float64 it returns x
// itself.
func Float64Slice[T Elem](x []T) []float64 {
	if s, ok := any(x).([]float64); ok {
		return s
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(v)
	}
	return out
}
