// Package tensor provides dense matrices and vectors used as the numeric
// substrate for all neural-network and graph-propagation code in scalegnn.
// It is deliberately small: row-major dense matrices over a generic element
// type (float32 for the raw-speed tier, float64 for the reference path), the
// BLAS-1/2/3 style kernels the GNN models need, and nothing else. Heavy
// kernels (matrix-matrix multiply, matrix transpose multiply) are
// parallelized across goroutines with deterministic work partitioning and
// register-blocked inner loops.
//
// The float64 kernels are bitwise-stable: for finite inputs every output
// element is accumulated in strictly increasing k order with a single
// accumulator, so blocking and unrolling never reassociate a sum. Changing
// tile sizes must preserve that invariant — it is what keeps checkpoints,
// fingerprints, and distributed replicas exactly reproducible.
package tensor

import (
	"fmt"
	"math"

	"scalegnn/internal/par"
)

// Elem is the set of element types the tensor stack supports: float64 for
// the bitwise-reproducible reference path and float32 for the raw-speed
// tier (half the memory traffic in the bandwidth-bound aggregation phase).
type Elem interface {
	float32 | float64
}

// Mat is a dense, row-major matrix of T values.
//
// The zero value is an empty matrix. Data is laid out so that element (i, j)
// lives at Data[i*Cols+j]; rows are therefore contiguous, which matches the
// access pattern of per-node feature operations in GNNs.
type Mat[T Elem] struct {
	Rows, Cols int
	Data       []T
}

// Matrix is the float64 instantiation — the historical element type and the
// one every fingerprinted code path uses.
type Matrix = Mat[float64]

// New returns a zero-initialized float64 matrix with the given shape.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix { return NewOf[float64](rows, cols) }

// NewOf returns a zero-initialized rows x cols matrix of the given element
// type. It panics if either dimension is negative.
func NewOf[T Elem](rows, cols int) *Mat[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Mat[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// FromSlice wraps an existing flat slice as a rows x cols matrix.
// The slice is used directly (not copied); len(data) must equal rows*cols.
func FromSlice[T Elem](rows, cols int, data []T) *Mat[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Mat[T]{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows[T Elem](rows [][]T) *Mat[T] {
	if len(rows) == 0 {
		return NewOf[T](0, 0)
	}
	cols := len(rows[0])
	m := NewOf[T](len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Mat[T]) At(i, j int) T { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat[T]) Set(i, j int, v T) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Mat[T]) Row(i int) []T { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat[T]) Clone() *Mat[T] {
	out := NewOf[T](m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Shape returns (rows, cols).
func (m *Mat[T]) Shape() (int, int) { return m.Rows, m.Cols }

// SameShape reports whether m and other have identical dimensions.
func (m *Mat[T]) SameShape(other *Mat[T]) bool {
	return m.Rows == other.Rows && m.Cols == other.Cols
}

// Zero resets all entries to 0 in place.
func (m *Mat[T]) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every entry to v in place.
func (m *Mat[T]) Fill(v T) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Copy copies src into m. Shapes must match.
func (m *Mat[T]) Copy(src *Mat[T]) {
	mustSameShape("Copy", m, src)
	copy(m.Data, src.Data)
}

// T returns the transpose of m as a new matrix.
func (m *Mat[T]) T() *Mat[T] {
	out := NewOf[T](m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add computes m += other element-wise.
func (m *Mat[T]) Add(other *Mat[T]) {
	mustSameShape("Add", m, other)
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// Sub computes m -= other element-wise.
func (m *Mat[T]) Sub(other *Mat[T]) {
	mustSameShape("Sub", m, other)
	for i, v := range other.Data {
		m.Data[i] -= v
	}
}

// Mul computes m *= other element-wise (Hadamard product).
func (m *Mat[T]) Mul(other *Mat[T]) {
	mustSameShape("Mul", m, other)
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// Scale multiplies every entry by s in place.
func (m *Mat[T]) Scale(s T) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled computes m += s*other element-wise.
func (m *Mat[T]) AddScaled(s T, other *Mat[T]) {
	mustSameShape("AddScaled", m, other)
	if fastF32 {
		if fm, ok := any(m).(*Mat[float32]); ok {
			f32AxpyAVX(float32(s), any(other).(*Mat[float32]).Data, fm.Data)
			return
		}
	}
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

// AddRowVector adds vector v (length Cols) to every row of m.
func (m *Mat[T]) AddRowVector(v []T) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// Apply replaces every entry x with f(x) in place.
func (m *Mat[T]) Apply(f func(T) T) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Mat[T]) MaxAbs() T {
	var max T
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > max {
			max = v
		}
	}
	return max
}

// Sum returns the sum of all entries.
func (m *Mat[T]) Sum() T {
	var s T
	for _, v := range m.Data {
		s += v
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Mat[T]) FrobeniusNorm() T {
	var s T
	for _, v := range m.Data {
		s += v * v
	}
	return T(math.Sqrt(float64(s)))
}

// SelectRows gathers the given rows of m into a new matrix, one output row
// per index, in order. Indices may repeat.
func (m *Mat[T]) SelectRows(idx []int) *Mat[T] {
	out := NewOf[T](len(idx), m.Cols)
	m.SelectRowsInto(idx, out)
	return out
}

// SelectRowsInto gathers the given rows of m into dst (shape len(idx) x
// m.Cols), overwriting it. dst must not alias m.
func (m *Mat[T]) SelectRowsInto(idx []int, dst *Mat[T]) {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: SelectRowsInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, len(idx), m.Cols))
	}
	if Overlaps(dst.Data, m.Data) {
		panic("tensor: SelectRowsInto dst aliases m")
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
}

// ScatterAddRows adds each row of src into row idx[i] of m. It is the adjoint
// of SelectRows and is used to backpropagate through row gathering.
func (m *Mat[T]) ScatterAddRows(idx []int, src *Mat[T]) {
	if len(idx) != src.Rows || m.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape mismatch")
	}
	for i, r := range idx {
		dst := m.Row(r)
		for j, v := range src.Row(i) {
			dst[j] += v
		}
	}
}

// Equal reports whether m and other are identical in shape and, entry-wise,
// differ by at most tol in absolute value.
func (m *Mat[T]) Equal(other *Mat[T], tol float64) bool {
	if !m.SameShape(other) {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(float64(v)-float64(other.Data[i])) > tol {
			return false
		}
	}
	return true
}

func mustSameShape[T Elem](op string, a, b *Mat[T]) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// minChunkDense is the minimum rows per worker for the dense kernels,
// passed to the shared partitioner in internal/par.
const minChunkDense = 64

// mmBlockK is the k-tile of the matmul kernels: a tile of b spanning
// mmBlockK rows is consumed column-block by column-block before the kernel
// advances, bounding the streamed working set regardless of how tall b is.
// Accumulation still visits k in strictly increasing order per output
// element, so tiling never perturbs float64 results.
const mmBlockK = 256

// mustNotAlias panics if dst shares backing memory with any operand — the
// in-place kernels read operands while writing dst, so aliasing (including
// overlapping FromSlice views) would silently corrupt the output.
func mustNotAlias[T Elem](op string, dst *Mat[T], operands ...*Mat[T]) {
	for _, o := range operands {
		if Overlaps(dst.Data, o.Data) {
			panic(fmt.Sprintf("tensor: %s dst aliases an operand", op))
		}
	}
}

// MatMul returns a*b, parallelized over row blocks of a. Panics if inner
// dimensions disagree.
func MatMul[T Elem](a, b *Mat[T]) *Mat[T] {
	out := NewOf[T](a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes a*b into dst (shape a.Rows x b.Cols), overwriting it.
// dst must not alias a or b. This is the zero-allocation form used by the
// pooled training hot path.
//
// The kernel is register-blocked: each output row is produced in 8-column
// tiles held in scalar accumulators while k streams through a tile of b, so
// the inner loop is 8 independent multiply-adds with no load/store of dst.
// Per output element the sum still runs over k in increasing order with one
// accumulator — bitwise-equal to the naive ikj loop for finite inputs.
func MatMulInto[T Elem](a, b, dst *Mat[T]) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	mustNotAlias("MatMulInto", dst, a, b)
	if fastF32 {
		if fa, ok := any(a).(*Mat[float32]); ok {
			matMulIntoF32(fa, any(b).(*Mat[float32]), any(dst).(*Mat[float32]))
			return
		}
	}
	n := b.Cols
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for kb := 0; kb < len(arow); kb += mmBlockK {
				kend := kb + mmBlockK
				if kend > len(arow) {
					kend = len(arow)
				}
				matMulTile(arow[kb:kend], b.Data[kb*n:kend*n], orow, n)
			}
		}
	})
}

// matMulTile adds ablk · bblk into orow, where ablk is a k-tile of one row
// of a and bblk the matching rows of b. Columns advance in tiles of 8 with
// the partial sums pinned in registers; zero a-entries are skipped, which
// both exploits ReLU sparsity and preserves the historical Inf/NaN
// behavior of the skip.
func matMulTile[T Elem](ablk, bblk []T, orow []T, n int) {
	j := 0
	for ; j+8 <= n; j += 8 {
		s0, s1, s2, s3 := orow[j], orow[j+1], orow[j+2], orow[j+3]
		s4, s5, s6, s7 := orow[j+4], orow[j+5], orow[j+6], orow[j+7]
		bo := j
		for _, av := range ablk {
			if av != 0 {
				brow := bblk[bo : bo+8 : bo+8]
				s0 += av * brow[0]
				s1 += av * brow[1]
				s2 += av * brow[2]
				s3 += av * brow[3]
				s4 += av * brow[4]
				s5 += av * brow[5]
				s6 += av * brow[6]
				s7 += av * brow[7]
			}
			bo += n
		}
		orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		orow[j+4], orow[j+5], orow[j+6], orow[j+7] = s4, s5, s6, s7
	}
	for ; j < n; j++ {
		s := orow[j]
		bo := j
		for _, av := range ablk {
			if av != 0 {
				s += av * bblk[bo]
			}
			bo += n
		}
		orow[j] = s
	}
}

// MatMulT returns a * bᵀ. It is used for gradient computations where the
// transposed operand is the natural layout.
func MatMulT[T Elem](a, b *Mat[T]) *Mat[T] {
	out := NewOf[T](a.Rows, b.Rows)
	MatMulTInto(a, b, out)
	return out
}

// MatMulTInto computes a * bᵀ into dst (shape a.Rows x b.Rows), overwriting
// it. dst must not alias a or b.
//
// Four output columns (rows of b) are produced per pass so each element of
// arow is loaded once per four dot products; every dot product keeps its own
// single accumulator running over k in increasing order, so float64 results
// are bitwise-equal to the naive per-column loop.
func MatMulTInto[T Elem](a, b, dst *Mat[T]) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dim mismatch %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	mustNotAlias("MatMulTInto", dst, a, b)
	if fastF32 {
		if fa, ok := any(a).(*Mat[float32]); ok {
			matMulTIntoF32(fa, any(b).(*Mat[float32]), any(dst).(*Mat[float32]))
			return
		}
	}
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			j := 0
			for ; j+4 <= b.Rows; j += 4 {
				b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
				var s0, s1, s2, s3 T
				for k, av := range arow {
					s0 += av * b0[k]
					s1 += av * b1[k]
					s2 += av * b2[k]
					s3 += av * b3[k]
				}
				orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			}
			for ; j < b.Rows; j++ {
				brow := b.Row(j)
				var s T
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	})
}

// TMatMul returns aᵀ * b, parallelized over columns of the output.
func TMatMul[T Elem](a, b *Mat[T]) *Mat[T] {
	out := NewOf[T](a.Cols, b.Cols)
	TMatMulInto(a, b, out)
	return out
}

// TMatMulInto computes aᵀ * b into dst (shape a.Cols x b.Cols), overwriting
// it. dst must not alias a or b.
//
// k runs outermost in increasing order (so each dst element accumulates in
// k order, preserving float64 bitwise stability); within a k step the
// update of each output row is an unrolled axpy. Work is partitioned over
// output rows (columns of a) to stay deterministic and race-free.
func TMatMulInto[T Elem](a, b, dst *Mat[T]) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dim mismatch (%dx%d)ᵀ * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	mustNotAlias("TMatMulInto", dst, a, b)
	if fastF32 {
		if fa, ok := any(a).(*Mat[float32]); ok {
			tMatMulIntoF32(fa, any(b).(*Mat[float32]), any(dst).(*Mat[float32]))
			return
		}
	}
	dst.Zero()
	par.Range(a.Cols, minChunkDense, func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				axpyUnrolled(av, brow, dst.Row(i))
			}
		}
	})
}

// axpyUnrolled computes y += a*x with a 4-wide unrolled loop. Elements are
// independent, so unrolling cannot reassociate any sum.
func axpyUnrolled[T Elem](a T, x, y []T) {
	n := len(y)
	j := 0
	for ; j+4 <= n; j += 4 {
		xq := x[j : j+4 : j+4]
		yq := y[j : j+4 : j+4]
		yq[0] += a * xq[0]
		yq[1] += a * xq[1]
		yq[2] += a * xq[2]
		yq[3] += a * xq[3]
	}
	for ; j < n; j++ {
		y[j] += a * x[j]
	}
}

// MatVec returns a*x for a vector x of length a.Cols.
func MatVec[T Elem](a *Mat[T], x []T) []T {
	out := make([]T, a.Rows)
	MatVecInto(a, x, out)
	return out
}

// MatVecInto computes a*x into dst (length a.Rows), overwriting it. dst must
// not alias x.
func MatVecInto[T Elem](a *Mat[T], x, dst []T) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dim mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("tensor: MatVecInto dst len %d, want %d", len(dst), a.Rows))
	}
	if Overlaps(dst, x) || Overlaps(dst, a.Data) {
		panic("tensor: MatVecInto dst aliases an operand")
	}
	if fastF32 {
		if fa, ok := any(a).(*Mat[float32]); ok {
			matVecIntoF32(fa, any(x).([]float32), any(dst).([]float32))
			return
		}
	}
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Row(i)
			var s T
			for j, v := range row {
				s += v * x[j]
			}
			dst[i] = s
		}
	})
}

// Dot returns the dot product of equal-length vectors x and y.
func Dot[T Elem](x, y []T) T {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s T
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2[T Elem](x []T) T { return T(math.Sqrt(float64(Dot(x, x)))) }

// Axpy computes y += a*x in place.
func Axpy[T Elem](a T, x, y []T) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies every entry of x by a in place.
func ScaleVec[T Elem](a T, x []T) {
	for i := range x {
		x[i] *= a
	}
}

// L1Norm returns the sum of absolute values of x.
func L1Norm[T Elem](x []T) T {
	var s T
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		s += v
	}
	return s
}

// Normalize scales x to unit Euclidean norm in place and returns its original
// norm. A zero vector is left unchanged.
func Normalize[T Elem](x []T) T {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}
