// Package tensor provides dense float64 matrices and vectors used as the
// numeric substrate for all neural-network and graph-propagation code in
// scalegnn. It is deliberately small: row-major dense matrices, the BLAS-1/2/3
// style kernels the GNN models need, and nothing else. Heavy kernels
// (matrix-matrix multiply, matrix transpose multiply) are parallelized across
// goroutines with deterministic work partitioning.
package tensor

import (
	"fmt"
	"math"

	"scalegnn/internal/par"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty matrix. Data is laid out so that element (i, j)
// lives at Data[i*Cols+j]; rows are therefore contiguous, which matches the
// access pattern of per-node feature operations in GNNs.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized matrix with the given shape.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps an existing flat slice as a rows x cols matrix.
// The slice is used directly (not copied); len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// SameShape reports whether m and other have identical dimensions.
func (m *Matrix) SameShape(other *Matrix) bool {
	return m.Rows == other.Rows && m.Cols == other.Cols
}

// Zero resets all entries to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every entry to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Copy copies src into m. Shapes must match.
func (m *Matrix) Copy(src *Matrix) {
	mustSameShape("Copy", m, src)
	copy(m.Data, src.Data)
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add computes m += other element-wise.
func (m *Matrix) Add(other *Matrix) {
	mustSameShape("Add", m, other)
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// Sub computes m -= other element-wise.
func (m *Matrix) Sub(other *Matrix) {
	mustSameShape("Sub", m, other)
	for i, v := range other.Data {
		m.Data[i] -= v
	}
}

// Mul computes m *= other element-wise (Hadamard product).
func (m *Matrix) Mul(other *Matrix) {
	mustSameShape("Mul", m, other)
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// Scale multiplies every entry by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled computes m += s*other element-wise.
func (m *Matrix) AddScaled(s float64, other *Matrix) {
	mustSameShape("AddScaled", m, other)
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

// AddRowVector adds vector v (length Cols) to every row of m.
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// Apply replaces every entry x with f(x) in place.
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SelectRows gathers the given rows of m into a new matrix, one output row
// per index, in order. Indices may repeat.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	m.SelectRowsInto(idx, out)
	return out
}

// SelectRowsInto gathers the given rows of m into dst (shape len(idx) x
// m.Cols), overwriting it. dst must not alias m.
func (m *Matrix) SelectRowsInto(idx []int, dst *Matrix) {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: SelectRowsInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, len(idx), m.Cols))
	}
	if Overlaps(dst.Data, m.Data) {
		panic("tensor: SelectRowsInto dst aliases m")
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
}

// ScatterAddRows adds each row of src into row idx[i] of m. It is the adjoint
// of SelectRows and is used to backpropagate through row gathering.
func (m *Matrix) ScatterAddRows(idx []int, src *Matrix) {
	if len(idx) != src.Rows || m.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape mismatch")
	}
	for i, r := range idx {
		dst := m.Row(r)
		for j, v := range src.Row(i) {
			dst[j] += v
		}
	}
}

// Equal reports whether m and other are identical in shape and, entry-wise,
// differ by at most tol in absolute value.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if !m.SameShape(other) {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// minChunkDense is the minimum rows per worker for the dense kernels,
// passed to the shared partitioner in internal/par.
const minChunkDense = 64

// mustNotAlias panics if dst shares backing memory with any operand — the
// in-place kernels read operands while writing dst, so aliasing (including
// overlapping FromSlice views) would silently corrupt the output.
func mustNotAlias(op string, dst *Matrix, operands ...*Matrix) {
	for _, o := range operands {
		if Overlaps(dst.Data, o.Data) {
			panic(fmt.Sprintf("tensor: %s dst aliases an operand", op))
		}
	}
}

// MatMul returns a*b using a cache-friendly ikj loop order, parallelized over
// row blocks of a. Panics if inner dimensions disagree.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes a*b into dst (shape a.Rows x b.Cols), overwriting it.
// dst must not alias a or b. This is the zero-allocation form used by the
// pooled training hot path.
func MatMulInto(a, b, dst *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	mustNotAlias("MatMulInto", dst, a, b)
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulT returns a * bᵀ. It is used for gradient computations where the
// transposed operand is the natural layout.
func MatMulT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTInto(a, b, out)
	return out
}

// MatMulTInto computes a * bᵀ into dst (shape a.Rows x b.Rows), overwriting
// it. dst must not alias a or b.
func MatMulTInto(a, b, dst *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dim mismatch %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	mustNotAlias("MatMulTInto", dst, a, b)
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	})
}

// TMatMul returns aᵀ * b, parallelized over columns of the output.
func TMatMul(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	TMatMulInto(a, b, out)
	return out
}

// TMatMulInto computes aᵀ * b into dst (shape a.Cols x b.Cols), overwriting
// it. dst must not alias a or b.
func TMatMulInto(a, b, dst *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dim mismatch (%dx%d)ᵀ * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	mustNotAlias("TMatMulInto", dst, a, b)
	dst.Zero()
	// Accumulate row-by-row of a/b; partition over output rows (columns of a)
	// to stay deterministic and race-free.
	par.Range(a.Cols, minChunkDense, func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := dst.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatVec returns a*x for a vector x of length a.Cols.
func MatVec(a *Matrix, x []float64) []float64 {
	out := make([]float64, a.Rows)
	MatVecInto(a, x, out)
	return out
}

// MatVecInto computes a*x into dst (length a.Rows), overwriting it. dst must
// not alias x.
func MatVecInto(a *Matrix, x, dst []float64) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dim mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("tensor: MatVecInto dst len %d, want %d", len(dst), a.Rows))
	}
	if Overlaps(dst, x) || Overlaps(dst, a.Data) {
		panic("tensor: MatVecInto dst aliases an operand")
	}
	par.Range(a.Rows, minChunkDense, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Row(i)
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			dst[i] = s
		}
	})
}

// Dot returns the dot product of equal-length vectors x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies every entry of x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// L1Norm returns the sum of absolute values of x.
func L1Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Normalize scales x to unit Euclidean norm in place and returns its original
// norm. A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}
