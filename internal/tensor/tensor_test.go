package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) should panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceAndAt(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := m.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	m.Set(0, 1, 9)
	if got := m.At(0, 1); got != 9 {
		t.Errorf("after Set, At(0,1) = %v, want 9", got)
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length should panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
	empty := FromRows[float64](nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Error("FromRows(nil) should be empty")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape = %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(rows, cols uint8) bool {
		r, c := int(rows%8)+1, int(cols%8)+1
		rng := NewRand(uint64(rows)*251 + uint64(cols))
		m := RandNormal(r, c, 1, rng)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})

	sum := a.Clone()
	sum.Add(b)
	want := FromSlice(2, 2, []float64{11, 22, 33, 44})
	if !sum.Equal(want, 0) {
		t.Errorf("Add = %v", sum.Data)
	}

	diff := b.Clone()
	diff.Sub(a)
	want = FromSlice(2, 2, []float64{9, 18, 27, 36})
	if !diff.Equal(want, 0) {
		t.Errorf("Sub = %v", diff.Data)
	}

	prod := a.Clone()
	prod.Mul(b)
	want = FromSlice(2, 2, []float64{10, 40, 90, 160})
	if !prod.Equal(want, 0) {
		t.Errorf("Mul = %v", prod.Data)
	}

	sc := a.Clone()
	sc.Scale(2)
	want = FromSlice(2, 2, []float64{2, 4, 6, 8})
	if !sc.Equal(want, 0) {
		t.Errorf("Scale = %v", sc.Data)
	}

	axpy := a.Clone()
	axpy.AddScaled(0.5, b)
	want = FromSlice(2, 2, []float64{6, 12, 18, 24})
	if !axpy.Equal(want, 0) {
		t.Errorf("AddScaled = %v", axpy.Data)
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	m.AddRowVector([]float64{10, 20, 30})
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !m.Equal(want, 0) {
		t.Errorf("AddRowVector = %v", m.Data)
	}
}

func TestApplyAndReductions(t *testing.T) {
	m := FromSlice(2, 2, []float64{-1, 2, -3, 4})
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := m.Sum(); got != 2 {
		t.Errorf("Sum = %v", got)
	}
	if got := m.FrobeniusNorm(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v", got)
	}
	m.Apply(math.Abs)
	if m.At(0, 0) != 1 || m.At(1, 0) != 3 {
		t.Errorf("Apply(abs) = %v", m.Data)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRand(7)
	a := RandNormal(5, 5, 1, rng)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).Equal(a, 1e-12) {
		t.Error("A*I != A")
	}
	if !MatMul(id, a).Equal(a, 1e-12) {
		t.Error("I*A != A")
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched dims should panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestMatMulTConsistency verifies MatMulT(a, b) == MatMul(a, b.T()).
func TestMatMulTConsistency(t *testing.T) {
	rng := NewRand(11)
	a := RandNormal(7, 5, 1, rng)
	b := RandNormal(9, 5, 1, rng)
	got := MatMulT(a, b)
	want := MatMul(a, b.T())
	if !got.Equal(want, 1e-10) {
		t.Error("MatMulT disagrees with explicit transpose")
	}
}

// TestTMatMulConsistency verifies TMatMul(a, b) == MatMul(a.T(), b).
func TestTMatMulConsistency(t *testing.T) {
	rng := NewRand(13)
	a := RandNormal(6, 4, 1, rng)
	b := RandNormal(6, 3, 1, rng)
	got := TMatMul(a, b)
	want := MatMul(a.T(), b)
	if !got.Equal(want, 1e-10) {
		t.Error("TMatMul disagrees with explicit transpose")
	}
}

// TestMatMulAssociativityProperty checks (AB)C == A(BC) on random inputs —
// the key algebraic property the propagation pipelines rely on.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRand(uint64(seed))
		n := int(seed%5) + 2
		a := RandNormal(n, n+1, 1, rng)
		b := RandNormal(n+1, n+2, 1, rng)
		c := RandNormal(n+2, n, 1, rng)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMatMulLargeParallel(t *testing.T) {
	// Exercise the parallel path (n > worker threshold) and compare against
	// a serial reference computed with the naive triple loop.
	rng := NewRand(17)
	const n = 200
	a := RandNormal(n, 33, 1, rng)
	b := RandNormal(33, 17, 1, rng)
	got := MatMul(a, b)
	want := New(n, 17)
	for i := 0; i < n; i++ {
		for j := 0; j < 17; j++ {
			var s float64
			for k := 0; k < 33; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !got.Equal(want, 1e-9) {
		t.Error("parallel MatMul disagrees with serial reference")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MatVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MatVec = %v", got)
	}
}

func TestSelectScatterRowsRoundTrip(t *testing.T) {
	rng := NewRand(23)
	m := RandNormal(6, 3, 1, rng)
	idx := []int{4, 0, 2}
	sel := m.SelectRows(idx)
	if sel.Rows != 3 || sel.Cols != 3 {
		t.Fatalf("SelectRows shape = %dx%d", sel.Rows, sel.Cols)
	}
	for i, r := range idx {
		for j := 0; j < 3; j++ {
			if sel.At(i, j) != m.At(r, j) {
				t.Fatalf("SelectRows mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Scatter back into zeros reproduces exactly the selected rows.
	back := New(6, 3)
	back.ScatterAddRows(idx, sel)
	for i := 0; i < 6; i++ {
		selected := false
		for _, r := range idx {
			if r == i {
				selected = true
			}
		}
		for j := 0; j < 3; j++ {
			want := 0.0
			if selected {
				want = m.At(i, j)
			}
			if back.At(i, j) != want {
				t.Fatalf("ScatterAddRows mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestScatterAddAccumulatesDuplicates(t *testing.T) {
	m := New(2, 1)
	src := FromSlice(3, 1, []float64{1, 2, 3})
	m.ScatterAddRows([]int{0, 0, 1}, src)
	if m.At(0, 0) != 3 || m.At(1, 0) != 3 {
		t.Errorf("duplicate scatter = %v", m.Data)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Dot(x, x) != 25 {
		t.Error("Dot")
	}
	if Norm2(x) != 5 {
		t.Error("Norm2")
	}
	if L1Norm([]float64{-1, 2, -3}) != 6 {
		t.Error("L1Norm")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	n := Normalize(x)
	if n != 5 || math.Abs(Norm2(x)-1) > 1e-12 {
		t.Errorf("Normalize: n=%v ‖x‖=%v", n, Norm2(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Error("Normalize of zero vector should return 0")
	}
}

func TestGlorotUniformRange(t *testing.T) {
	rng := NewRand(31)
	m := GlorotUniform(50, 30, rng)
	limit := math.Sqrt(6.0 / 80.0)
	for _, v := range m.Data {
		if v < -limit || v >= limit {
			t.Fatalf("Glorot value %v outside ±%v", v, limit)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a := RandNormal(4, 4, 1, NewRand(99))
	b := RandNormal(4, 4, 1, NewRand(99))
	if !a.Equal(b, 0) {
		t.Error("same seed must give identical matrices")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%50) + 1
		p := Perm(size, NewRand(uint64(n)))
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := NewRand(1)
	x := RandNormal(128, 128, 1, rng)
	y := RandNormal(128, 128, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul512(b *testing.B) {
	rng := NewRand(1)
	x := RandNormal(512, 512, 1, rng)
	y := RandNormal(512, 512, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func TestCopyFillShape(t *testing.T) {
	src := FromSlice(2, 2, []float64{1, 2, 3, 4})
	dst := New(2, 2)
	dst.Copy(src)
	if !dst.Equal(src, 0) {
		t.Error("Copy mismatch")
	}
	dst.Fill(7)
	for _, v := range dst.Data {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
	dst.Zero()
	if dst.Sum() != 0 {
		t.Error("Zero failed")
	}
	r, c := src.Shape()
	if r != 2 || c != 2 {
		t.Error("Shape wrong")
	}
}

func TestCopyPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Copy with mismatched shapes should panic")
		}
	}()
	New(2, 2).Copy(New(3, 2))
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestRowIsView(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("Row must alias storage")
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := NewRand(5)
	m := RandUniform(20, 20, -2, 3, rng)
	for _, v := range m.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform value %v outside [-2,3)", v)
		}
	}
}
