//go:build amd64

package tensor

import "os"

// fastF32 gates the AVX2+FMA float32 kernels in simd_amd64.s. It is decided
// once at init (CPU capability plus the SCALEGNN_NOSIMD kill switch) and
// read-only afterwards, so the hot paths can branch on it without locks.
// Tests flip it temporarily to compare the vector and scalar paths.
var fastF32 = cpuHasAVX2FMA() && os.Getenv("SCALEGNN_NOSIMD") == ""

// cpuHasAVX2FMA reports CPU+OS support for the AVX2/FMA kernels.
func cpuHasAVX2FMA() bool

// f32AxpyAVX computes y += a*x. Caller guarantees len(x) == len(y).
func f32AxpyAVX(a float32, x, y []float32)

// f32DotAVX returns dot(x, y). Caller guarantees len(x) == len(y).
func f32DotAVX(x, y []float32) float32

// f32GemmTileAVX adds sum_k a[k]*b[k*stride:k*stride+8] into acc[0:8].
func f32GemmTileAVX(a, b, acc []float32, stride int)
