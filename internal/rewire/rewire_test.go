package rewire

import (
	"math"
	"testing"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/simrank"
	"scalegnn/internal/tensor"
)

// heteroGraph builds a heterophilous SBM with class-separated features.
func heteroGraph(t *testing.T) (*graph.CSR, *tensor.Matrix, []int) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 400, Classes: 4, AvgDegree: 8, Homophily: 0.1,
		FeatureDim: 16, NoiseStd: 0.5, TrainFrac: 0.5, ValFrac: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.G, ds.X, ds.Labels
}

func TestCosineRewireRaisesHomophily(t *testing.T) {
	g, x, labels := heteroGraph(t)
	sim := NewCosineSimilarity(g, x)
	res, err := Rewire(g, sim, Config{AddK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added == 0 {
		t.Fatal("no edges added")
	}
	before, after := HomophilyGain(g, res.G, labels)
	if after <= before {
		t.Errorf("homophily did not improve: %.3f -> %.3f", before, after)
	}
}

func TestRewirePrune(t *testing.T) {
	g, x, _ := heteroGraph(t)
	sim := NewCosineSimilarity(g, x)
	res, err := Rewire(g, sim, Config{PruneBelow: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 {
		t.Fatal("nothing pruned on a heterophilous graph with threshold 0.3")
	}
	if res.G.NumEdges() >= g.NumEdges() {
		t.Error("pruning should reduce edges")
	}
}

func TestRewireAddAndPruneTogether(t *testing.T) {
	g, x, labels := heteroGraph(t)
	sim := NewCosineSimilarity(g, x)
	res, err := Rewire(g, sim, Config{AddK: 4, PruneBelow: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added == 0 || res.Pruned == 0 {
		t.Fatalf("added=%d pruned=%d", res.Added, res.Pruned)
	}
	before, after := HomophilyGain(g, res.G, labels)
	// Add + prune should improve homophily more than either alone tends to.
	if after <= before {
		t.Errorf("homophily %.3f -> %.3f", before, after)
	}
	if res.Queried != g.N {
		t.Errorf("queried %d of %d nodes", res.Queried, g.N)
	}
}

func TestSimRankRewire(t *testing.T) {
	g, _, _ := heteroGraph(t)
	rng := tensor.NewRand(5)
	ix, err := simrank.BuildIndex(g, simrank.IndexConfig{C: 0.6, Walks: 200, Length: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rewire(g, SimRankSimilarity{Index: ix}, Config{AddK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added == 0 {
		t.Fatal("SimRank rewiring added nothing")
	}
	// All original edges must survive (no pruning requested).
	for _, e := range g.UndirectedEdges() {
		if !res.G.HasEdge(e.U, e.V) {
			t.Fatal("original edge lost without pruning")
		}
	}
}

func TestRewireValidation(t *testing.T) {
	g, x, _ := heteroGraph(t)
	sim := NewCosineSimilarity(g, x)
	if _, err := Rewire(g, sim, Config{}); err == nil {
		t.Error("no-op config should error")
	}
	if _, err := Rewire(g, sim, Config{AddK: -1}); err == nil {
		t.Error("negative AddK should error")
	}
	b := graph.NewBuilder(2)
	b.Directed = true
	b.AddEdge(0, 1)
	if _, err := Rewire(b.MustBuild(), sim, Config{AddK: 1}); err == nil {
		t.Error("directed graph should error")
	}
}

func TestCosineQueryLocality(t *testing.T) {
	g, x, _ := heteroGraph(t)
	sim := NewCosineSimilarity(g, x)
	scores, err := sim.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSDistances(0)
	for v, s := range scores {
		if s != 0 && (dist[v] > 2 || dist[v] < 1) {
			t.Fatalf("node %d at distance %d scored %v; candidates must be 1-2 hops", v, dist[v], s)
		}
	}
	if _, err := sim.Query(-1); err == nil {
		t.Error("bad node should error")
	}
}

func TestHomophilyGainEmptyGraph(t *testing.T) {
	empty, err := graph.FromEdges(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := edgeHomophily(empty, []int{0, 1, 2})
	if !math.IsNaN(h) {
		t.Errorf("empty-graph homophily = %v, want NaN", h)
	}
}
