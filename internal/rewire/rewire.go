// Package rewire implements similarity-based graph rewiring — the DHGR
// approach from tutorial §3.2.2: measure node-pair relevance (structural
// SimRank and/or attribute cosine), add edges between strongly similar
// pairs, and optionally drop edges between dissimilar endpoints. On
// heterophilous graphs this raises the effective edge homophily so that
// ordinary low-pass GNNs work again, while staying compatible with
// subgraph-based batch training because each node's rewiring is a local
// top-k query.
package rewire

import (
	"fmt"
	"math"
	"sort"

	"scalegnn/internal/graph"
	"scalegnn/internal/simrank"
	"scalegnn/internal/tensor"
)

// Config controls the rewiring process.
type Config struct {
	// AddK edges are added per node, to its top-K most similar candidates.
	AddK int
	// PruneBelow drops an existing edge when the endpoint similarity is
	// below this value (0 disables pruning).
	PruneBelow float64
	// AddedWeight is the weight given to added edges (default 1).
	AddedWeight float64
}

func (c Config) validate() error {
	if c.AddK < 0 {
		return fmt.Errorf("rewire: negative AddK %d", c.AddK)
	}
	if c.PruneBelow < 0 {
		return fmt.Errorf("rewire: negative PruneBelow %v", c.PruneBelow)
	}
	if c.AddK == 0 && c.PruneBelow == 0 {
		return fmt.Errorf("rewire: nothing to do (AddK=0, PruneBelow=0)")
	}
	return nil
}

// Similarity scores node pairs; implementations must be symmetric in
// expectation. Query returns similarity scores of `a` against all nodes.
type Similarity interface {
	Query(a int) ([]float64, error)
}

// SimRankSimilarity adapts a simrank.Index.
type SimRankSimilarity struct{ Index *simrank.Index }

// Query implements Similarity.
func (s SimRankSimilarity) Query(a int) ([]float64, error) { return s.Index.SingleSource(a) }

// CosineSimilarity scores by attribute cosine against L2-normalized
// feature rows, restricted to 2-hop candidates for scalability (exactly
// the locality DHGR exploits: candidates come from the topology, scores
// from the attributes).
type CosineSimilarity struct {
	G *graph.CSR
	X *tensor.Matrix

	normalized *tensor.Matrix
}

// NewCosineSimilarity precomputes row-normalized features.
func NewCosineSimilarity(g *graph.CSR, x *tensor.Matrix) *CosineSimilarity {
	norm := x.Clone()
	for i := 0; i < norm.Rows; i++ {
		tensor.Normalize(norm.Row(i))
	}
	return &CosineSimilarity{G: g, X: x, normalized: norm}
}

// Query implements Similarity: cosine against 2-hop candidates only
// (others score 0).
func (s *CosineSimilarity) Query(a int) ([]float64, error) {
	if a < 0 || a >= s.G.N {
		return nil, fmt.Errorf("rewire: node %d out of range [0,%d)", a, s.G.N)
	}
	scores := make([]float64, s.G.N)
	arow := s.normalized.Row(a)
	seen := map[int32]struct{}{int32(a): {}}
	score := func(v int32) {
		if _, ok := seen[v]; ok {
			return
		}
		seen[v] = struct{}{}
		c := tensor.Dot(arow, s.normalized.Row(int(v)))
		if c > 0 {
			scores[v] = c
		}
	}
	for _, u := range s.G.Neighbors(a) {
		score(u)
		for _, v := range s.G.Neighbors(int(u)) {
			score(v)
		}
	}
	return scores, nil
}

// Result reports what the rewiring changed.
type Result struct {
	G       *graph.CSR
	Added   int // undirected edges added
	Pruned  int // undirected edges removed
	Queried int // similarity queries issued
}

// Rewire applies the configuration to g using the similarity measure.
func Rewire(g *graph.CSR, sim Similarity, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !g.Undirected() {
		return nil, fmt.Errorf("rewire: requires an undirected graph")
	}
	addW := cfg.AddedWeight
	if addW == 0 {
		addW = 1
	}
	type key = int64
	mk := func(u, v int) key {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(g.N) + int64(v)
	}
	keep := make(map[key]float64) // surviving original edges
	add := make(map[key]struct{}) // new edges
	res := &Result{}
	for _, e := range g.UndirectedEdges() {
		keep[mk(e.U, e.V)] = e.W
	}
	for a := 0; a < g.N; a++ {
		scores, err := sim.Query(a)
		if err != nil {
			return nil, fmt.Errorf("rewire: query %d: %w", a, err)
		}
		res.Queried++
		if cfg.PruneBelow > 0 {
			for _, v := range g.Neighbors(a) {
				if scores[v] < cfg.PruneBelow {
					k := mk(a, int(v))
					if _, ok := keep[k]; ok {
						delete(keep, k)
						res.Pruned++
					}
				}
			}
		}
		if cfg.AddK > 0 {
			top := topKExcluding(scores, a, cfg.AddK, g)
			for _, v := range top {
				k := mk(a, v)
				if _, exists := keep[k]; exists {
					continue
				}
				if _, exists := add[k]; exists {
					continue
				}
				add[k] = struct{}{}
				res.Added++
			}
		}
	}
	b := graph.NewBuilder(g.N)
	for k, w := range keep {
		b.AddWeightedEdge(int(k/int64(g.N)), int(k%int64(g.N)), w)
	}
	for k := range add {
		b.AddWeightedEdge(int(k/int64(g.N)), int(k%int64(g.N)), addW)
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("rewire: rebuild: %w", err)
	}
	res.G = out
	return res, nil
}

// topKExcluding returns up to k node IDs with the highest positive scores,
// excluding a itself and its existing neighbors.
func topKExcluding(scores []float64, a, k int, g *graph.CSR) []int {
	type entry struct {
		v int
		s float64
	}
	var cands []entry
	for v, s := range scores {
		if v == a || s <= 0 || g.HasEdge(a, v) {
			continue
		}
		cands = append(cands, entry{v, s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].v < cands[j].v
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].v
	}
	return out
}

// HomophilyGain measures the change in edge homophily achieved by a
// rewiring, given ground-truth labels — the quantity DHGR optimizes for.
func HomophilyGain(before, after *graph.CSR, labels []int) (float64, float64) {
	return edgeHomophily(before, labels), edgeHomophily(after, labels)
}

func edgeHomophily(g *graph.CSR, labels []int) float64 {
	edges := g.UndirectedEdges()
	if len(edges) == 0 {
		return math.NaN()
	}
	same := 0
	for _, e := range edges {
		if labels[e.U] == labels[e.V] {
			same++
		}
	}
	return float64(same) / float64(len(edges))
}
