package coarsen

import (
	"math"
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func testGraph(t *testing.T, seed uint64) *graph.CSR {
	t.Helper()
	return graph.BarabasiAlbert(200, 4, tensor.NewRand(seed))
}

func TestCoarsenReachesTarget(t *testing.T) {
	g := testGraph(t, 1)
	rng := tensor.NewRand(2)
	for _, s := range []Strategy{RandomMatching, HeavyEdge, NormalizedHeavyEdge} {
		r, err := Coarsen(g, 50, s, rng)
		if err != nil {
			t.Fatal(err)
		}
		if r.Coarse.N > 60 {
			t.Errorf("%v: coarse n = %d, want <= ~50", s, r.Coarse.N)
		}
		if r.Levels == 0 {
			t.Errorf("%v: no levels performed", s)
		}
		if r.Ratio() < 3 {
			t.Errorf("%v: ratio = %v", s, r.Ratio())
		}
	}
}

func TestAssignConsistency(t *testing.T) {
	g := testGraph(t, 3)
	rng := tensor.NewRand(4)
	r, err := Coarsen(g, 40, HeavyEdge, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Assign) != g.N {
		t.Fatalf("assign length %d", len(r.Assign))
	}
	total := 0
	for c, s := range r.ClusterSize {
		if s == 0 {
			t.Errorf("empty cluster %d", c)
		}
		total += s
	}
	if total != g.N {
		t.Errorf("cluster sizes sum to %d, want %d", total, g.N)
	}
	for _, c := range r.Assign {
		if c < 0 || c >= r.Coarse.N {
			t.Fatalf("assign out of range: %d", c)
		}
	}
}

// TestLiftedQuadraticInvariant checks the exact contraction invariant:
// quadratic forms of lifted vectors are preserved to machine precision.
func TestLiftedQuadraticInvariant(t *testing.T) {
	g := testGraph(t, 5)
	rng := tensor.NewRand(6)
	for _, s := range []Strategy{RandomMatching, HeavyEdge, NormalizedHeavyEdge} {
		r, err := Coarsen(g, 30, s, rng)
		if err != nil {
			t.Fatal(err)
		}
		if e := LiftedQuadraticError(g, r, 10, rng); e > 1e-10 {
			t.Errorf("%v: lifted quadratic error %v (contraction weights wrong)", s, e)
		}
	}
}

func TestConnectivityPreserved(t *testing.T) {
	// Contracting a connected graph must stay connected.
	g := testGraph(t, 7)
	rng := tensor.NewRand(8)
	r, err := Coarsen(g, 20, HeavyEdge, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, k := r.Coarse.ConnectedComponents(); k != 1 {
		t.Errorf("coarse graph has %d components", k)
	}
}

func TestCoarsenValidation(t *testing.T) {
	g := testGraph(t, 9)
	rng := tensor.NewRand(10)
	if _, err := Coarsen(g, 0, HeavyEdge, rng); err == nil {
		t.Error("target 0 should error")
	}
	b := graph.NewBuilder(2)
	b.Directed = true
	b.AddEdge(0, 1)
	if _, err := Coarsen(b.MustBuild(), 1, HeavyEdge, rng); err == nil {
		t.Error("directed graph should error")
	}
}

func TestCoarsenStopsOnDisconnected(t *testing.T) {
	// A graph with no edges cannot be contracted below n; Coarsen must
	// terminate rather than loop.
	g, err := graph.FromEdges(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Coarsen(g, 2, HeavyEdge, tensor.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	if r.Coarse.N != 10 {
		t.Errorf("edgeless graph contracted to %d", r.Coarse.N)
	}
}

func TestProjectFeaturesMeanPooling(t *testing.T) {
	x := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {10, 20}})
	assign := []int{0, 0, 1}
	out := ProjectFeatures(x, assign, 2)
	if out.At(0, 0) != 2 || out.At(0, 1) != 3 {
		t.Errorf("cluster 0 = %v", out.Row(0))
	}
	if out.At(1, 0) != 10 || out.At(1, 1) != 20 {
		t.Errorf("cluster 1 = %v", out.Row(1))
	}
}

func TestProjectLabelsMajority(t *testing.T) {
	labels := []int{0, 0, 1, 2, -1}
	assign := []int{0, 0, 0, 1, 2}
	out := ProjectLabels(labels, assign, 3, 3)
	if out[0] != 0 {
		t.Errorf("cluster 0 majority = %d, want 0", out[0])
	}
	if out[1] != 2 {
		t.Errorf("cluster 1 = %d, want 2", out[1])
	}
	if out[2] != -1 {
		t.Errorf("unlabeled cluster = %d, want -1", out[2])
	}
}

func TestLiftRoundTrip(t *testing.T) {
	coarse := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	assign := []int{1, 0, 1}
	out := Lift(coarse, assign)
	if out.At(0, 0) != 3 || out.At(1, 0) != 1 || out.At(2, 1) != 4 {
		t.Errorf("lift = %v", out.Data)
	}
	lbl := LiftLabels([]int{7, 9}, assign)
	if lbl[0] != 9 || lbl[1] != 7 || lbl[2] != 9 {
		t.Errorf("lift labels = %v", lbl)
	}
}

func TestAugmentWithSupernodes(t *testing.T) {
	g := testGraph(t, 12)
	rng := tensor.NewRand(13)
	r, err := Coarsen(g, 10, HeavyEdge, rng)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := AugmentWithSupernodes(g, r.Assign, r.Coarse.N)
	if err != nil {
		t.Fatal(err)
	}
	if aug.N != g.N+r.Coarse.N {
		t.Fatalf("augmented n = %d, want %d", aug.N, g.N+r.Coarse.N)
	}
	// Every original node is linked to its supernode.
	for u, p := range r.Assign {
		if !aug.HasEdge(u, g.N+p) {
			t.Fatalf("node %d missing supernode link", u)
		}
	}
	// Original edges intact.
	for _, e := range g.UndirectedEdges() {
		if !aug.HasEdge(e.U, e.V) {
			t.Fatal("original edge lost in augmentation")
		}
	}
}

func TestAugmentValidation(t *testing.T) {
	g := testGraph(t, 14)
	if _, err := AugmentWithSupernodes(g, []int{0}, 1); err == nil {
		t.Error("wrong assign length should error")
	}
	bad := make([]int, g.N)
	bad[0] = 99
	if _, err := AugmentWithSupernodes(g, bad, 2); err == nil {
		t.Error("out-of-range part should error")
	}
}

func TestEigenvalueErrorSpectralAwareBeatsRandomOnAverage(t *testing.T) {
	// Average over seeds: spectral-aware matching should preserve the low
	// Laplacian spectrum at least as well as random matching on a modular
	// graph. Averaging keeps the test stable.
	var randErr, spectErr float64
	const reps = 5
	for seed := uint64(0); seed < reps; seed++ {
		rng := tensor.NewRand(100 + seed)
		g, _, err := graph.SBM(graph.SBMConfig{Nodes: 80, Blocks: 4, AvgDegree: 8, Homophily: 0.9}, rng)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Coarsen(g, 20, RandomMatching, tensor.NewRand(seed*7+1))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Coarsen(g, 20, NormalizedHeavyEdge, tensor.NewRand(seed*7+1))
		if err != nil {
			t.Fatal(err)
		}
		randErr += EigenvalueError(g, rr, 5)
		spectErr += EigenvalueError(g, rs, 5)
	}
	if math.IsNaN(randErr) || math.IsNaN(spectErr) {
		t.Fatal("NaN eigenvalue error")
	}
	if spectErr > randErr*1.5 {
		t.Errorf("spectral-aware error %v far above random %v", spectErr/reps, randErr/reps)
	}
}

func BenchmarkCoarsen(b *testing.B) {
	g := graph.BarabasiAlbert(20000, 5, tensor.NewRand(1))
	rng := tensor.NewRand(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Coarsen(g, g.N/8, HeavyEdge, rng); err != nil {
			b.Fatal(err)
		}
	}
}
