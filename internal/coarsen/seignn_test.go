package coarsen_test

import (
	"testing"

	"scalegnn/internal/coarsen"
	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/models"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

// TestSupernodeAugmentationPreservesInterPartSignal is the SEIGNN
// end-to-end check: training on a partitioned graph whose inter-part edges
// were dropped loses accuracy; routing inter-part structure through
// supernodes recovers most of it.
func TestSupernodeAugmentationPreservesInterPartSignal(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 1200, Classes: 4, AvgDegree: 12, Homophily: 0.85,
		FeatureDim: 16, NoiseStd: 1.8, TrainFrac: 0.5, ValFrac: 0.2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Partition into 8 parts (hash: worst case, many inter-part edges).
	assign, err := partition.Hash(ds.G, 8, tensor.NewRand(18))
	if err != nil {
		t.Fatal(err)
	}
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 60

	fit := func(g *graph.CSR, x *tensor.Matrix, labels []int, train, val, test []int) float64 {
		m, err := models.NewSGC(2)
		if err != nil {
			t.Fatal(err)
		}
		d := &dataset.Dataset{
			G: g, X: x, Labels: labels, NumClasses: ds.NumClasses,
			TrainIdx: train, ValIdx: val, TestIdx: test,
		}
		rep, err := m.Fit(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TestAcc
	}

	// Full graph reference.
	full := fit(ds.G, ds.X, ds.Labels, ds.TrainIdx, ds.ValIdx, ds.TestIdx)

	// Partitioned without supernodes: drop inter-part edges entirely.
	b := graph.NewBuilder(ds.G.N)
	for _, e := range ds.G.UndirectedEdges() {
		if assign.Parts[e.U] == assign.Parts[e.V] {
			b.AddWeightedEdge(e.U, e.V, e.W)
		}
	}
	dropped := b.MustBuild()
	droppedAcc := fit(dropped, ds.X, ds.Labels, ds.TrainIdx, ds.ValIdx, ds.TestIdx)

	// SEIGNN: intra-part edges plus supernode links carrying the
	// inter-part structure.
	intra := dropped
	aug, err := coarsen.AugmentWithSupernodes(intra, assign.Parts, assign.K)
	if err != nil {
		t.Fatal(err)
	}
	// Re-add inter-part coupling through supernodes (AugmentWithSupernodes
	// links supernodes for edges present in the given graph; intra-only
	// input has none, so rebuild the supernode-supernode links from the
	// ORIGINAL graph's inter-part edges).
	b2 := graph.NewBuilder(aug.N)
	for _, e := range aug.UndirectedEdges() {
		b2.AddWeightedEdge(e.U, e.V, e.W)
	}
	for _, e := range ds.G.UndirectedEdges() {
		pu, pv := assign.Parts[e.U], assign.Parts[e.V]
		if pu != pv {
			b2.AddWeightedEdge(ds.G.N+pu, ds.G.N+pv, e.W)
		}
	}
	augFull := b2.MustBuild()
	// Supernode features: mean of members; labels placeholder (never used
	// for training or eval: indices stay within original nodes).
	augX := tensor.New(augFull.N, ds.X.Cols)
	for u := 0; u < ds.G.N; u++ {
		copy(augX.Row(u), ds.X.Row(u))
	}
	superFeats := coarsen.ProjectFeatures(ds.X, assign.Parts, assign.K)
	for p := 0; p < assign.K; p++ {
		copy(augX.Row(ds.G.N+p), superFeats.Row(p))
	}
	augLabels := make([]int, augFull.N)
	copy(augLabels, ds.Labels)
	augAcc := fit(augFull, augX, augLabels, ds.TrainIdx, ds.ValIdx, ds.TestIdx)

	if droppedAcc >= full {
		t.Skipf("dropping inter-part edges did not hurt (dropped %.3f vs full %.3f)", droppedAcc, full)
	}
	if augAcc <= droppedAcc {
		t.Errorf("supernode augmentation did not help: aug %.3f vs dropped %.3f (full %.3f)",
			augAcc, droppedAcc, full)
	}
}
