// Package coarsen implements graph coarsening — tutorial §3.3.4. Coarsening
// contracts nodes into supernodes, producing a smaller graph that shares
// structural (and, for the spectral-aware variants, spectral) properties
// with the original, so a GNN can train on the coarse graph at a fraction
// of the time and memory cost.
//
// The package provides multilevel matching-based coarsening with three
// matching strategies (random, heavy-edge, normalized heavy-edge — the
// structure-/spectral-based split of the tutorial), feature/label
// projection and prediction lifting operators, and the SEIGNN-style
// supernode augmentation that keeps inter-subgraph propagation alive during
// mini-batch training of implicit GNNs.
package coarsen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"scalegnn/internal/graph"
	"scalegnn/internal/spectral"
	"scalegnn/internal/tensor"
)

// Strategy selects how contraction pairs are chosen at each level.
type Strategy int

const (
	// RandomMatching contracts uniformly random adjacent pairs (baseline).
	RandomMatching Strategy = iota
	// HeavyEdge contracts pairs connected by the heaviest edges first —
	// the classic structure-preserving multilevel heuristic (METIS-style).
	HeavyEdge
	// NormalizedHeavyEdge ranks edges by w/√(deg u · deg v), approximately
	// preserving the normalized Laplacian (spectral-aware coarsening).
	NormalizedHeavyEdge
)

func (s Strategy) String() string {
	switch s {
	case RandomMatching:
		return "random"
	case HeavyEdge:
		return "heavy-edge"
	case NormalizedHeavyEdge:
		return "normalized-heavy-edge"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Result is a completed coarsening.
type Result struct {
	// Coarse is the contracted graph; edge weights accumulate the original
	// inter-cluster edge weights.
	Coarse *graph.CSR
	// Assign maps each original node to its coarse node.
	Assign []int
	// Levels is the number of matching rounds performed.
	Levels int
	// ClusterSize[c] is the number of original nodes inside coarse node c.
	ClusterSize []int
}

// Ratio returns n_original / n_coarse.
func (r *Result) Ratio() float64 {
	if r.Coarse.N == 0 {
		return 0
	}
	return float64(len(r.Assign)) / float64(r.Coarse.N)
}

// Coarsen contracts g until it has at most targetNodes nodes (or no further
// matching is possible), using the given strategy. Each level performs one
// maximal matching and contracts every matched pair.
func Coarsen(g *graph.CSR, targetNodes int, strategy Strategy, rng *rand.Rand) (*Result, error) {
	if targetNodes < 1 {
		return nil, fmt.Errorf("coarsen: target %d < 1", targetNodes)
	}
	if !g.Undirected() {
		return nil, fmt.Errorf("coarsen: requires an undirected graph")
	}
	cur := g
	assign := make([]int, g.N)
	for i := range assign {
		assign[i] = i
	}
	levels := 0
	for cur.N > targetNodes {
		match := matchLevel(cur, strategy, rng)
		next, mapping, contracted := contract(cur, match)
		if contracted == 0 {
			break // no adjacent pairs left to merge
		}
		for i := range assign {
			assign[i] = mapping[assign[i]]
		}
		cur = next
		levels++
	}
	sizes := make([]int, cur.N)
	for _, c := range assign {
		sizes[c]++
	}
	return &Result{Coarse: cur, Assign: assign, Levels: levels, ClusterSize: sizes}, nil
}

// matchLevel computes a maximal matching: match[u] = v means u and v merge
// (match[u] == u means unmatched this round).
func matchLevel(g *graph.CSR, strategy Strategy, rng *rand.Rand) []int32 {
	match := make([]int32, g.N)
	for i := range match {
		match[i] = int32(i)
	}
	order := tensor.Perm(g.N, rng)
	deg := g.Degrees()
	for _, u := range order {
		if match[u] != int32(u) {
			continue
		}
		ns := g.Neighbors(u)
		ws := g.NeighborWeights(u)
		best := int32(-1)
		var bestScore float64
		for i, v := range ns {
			if int(v) == u || match[v] != v {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			var score float64
			switch strategy {
			case RandomMatching:
				score = rng.Float64()
			case HeavyEdge:
				score = w
			case NormalizedHeavyEdge:
				score = w / math.Sqrt(float64(deg[u])*float64(deg[v]))
			}
			if best == -1 || score > bestScore {
				best, bestScore = v, score
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = int32(u)
		}
	}
	return match
}

// contract merges matched pairs into single nodes, returning the coarse
// graph, the fine→coarse mapping, and the number of contractions.
func contract(g *graph.CSR, match []int32) (*graph.CSR, []int, int) {
	mapping := make([]int, g.N)
	next := 0
	contracted := 0
	for u := 0; u < g.N; u++ {
		v := int(match[u])
		if v < u {
			mapping[u] = mapping[v] // partner already numbered
			continue
		}
		mapping[u] = next
		if v != u {
			contracted++
		}
		next++
	}
	b := graph.NewBuilder(next)
	for _, e := range g.UndirectedEdges() {
		cu, cv := mapping[e.U], mapping[e.V]
		if cu == cv {
			continue // internal edge disappears
		}
		b.AddWeightedEdge(cu, cv, e.W)
	}
	coarse := b.MustBuild()
	return coarse, mapping, contracted
}

// ProjectFeatures mean-pools fine node features into coarse nodes.
func ProjectFeatures(x *tensor.Matrix, assign []int, nCoarse int) *tensor.Matrix {
	out := tensor.New(nCoarse, x.Cols)
	counts := make([]float64, nCoarse)
	for u, c := range assign {
		counts[c]++
		row := out.Row(c)
		for j, v := range x.Row(u) {
			row[j] += v
		}
	}
	for c := 0; c < nCoarse; c++ {
		if counts[c] > 0 {
			inv := 1 / counts[c]
			row := out.Row(c)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return out
}

// ProjectLabels assigns each coarse node the majority label of its members
// (ties go to the smaller label). Unlabeled members (label < 0) are
// ignored; a cluster with no labeled member gets -1.
func ProjectLabels(labels []int, assign []int, nCoarse, numClasses int) []int {
	counts := make([][]int, nCoarse)
	for i := range counts {
		counts[i] = make([]int, numClasses)
	}
	hasAny := make([]bool, nCoarse)
	for u, c := range assign {
		if labels[u] >= 0 && labels[u] < numClasses {
			counts[c][labels[u]]++
			hasAny[c] = true
		}
	}
	out := make([]int, nCoarse)
	for c := range out {
		if !hasAny[c] {
			out[c] = -1
			continue
		}
		best := 0
		for k := 1; k < numClasses; k++ {
			if counts[c][k] > counts[c][best] {
				best = k
			}
		}
		out[c] = best
	}
	return out
}

// Lift broadcasts coarse predictions (rows = coarse nodes) back to the
// original nodes.
func Lift(coarse *tensor.Matrix, assign []int) *tensor.Matrix {
	out := tensor.New(len(assign), coarse.Cols)
	for u, c := range assign {
		copy(out.Row(u), coarse.Row(c))
	}
	return out
}

// LiftLabels broadcasts coarse integer predictions back to fine nodes.
func LiftLabels(coarse []int, assign []int) []int {
	out := make([]int, len(assign))
	for u, c := range assign {
		out[u] = coarse[c]
	}
	return out
}

// AugmentWithSupernodes implements the SEIGNN construction: given a node
// partition (assign: node → part, nParts parts), build a graph of
// n + nParts nodes where the original edges are kept, each original node
// links to its part's supernode, and supernodes of parts joined by an
// original edge are linked. Mini-batches drawn from one part plus the
// supernode layer retain a path for inter-part propagation.
//
// Returned supernode IDs are n .. n+nParts-1.
func AugmentWithSupernodes(g *graph.CSR, assign []int, nParts int) (*graph.CSR, error) {
	if len(assign) != g.N {
		return nil, fmt.Errorf("coarsen: assign length %d != n %d", len(assign), g.N)
	}
	for u, p := range assign {
		if p < 0 || p >= nParts {
			return nil, fmt.Errorf("coarsen: node %d assigned to invalid part %d", u, p)
		}
	}
	b := graph.NewBuilder(g.N + nParts)
	for _, e := range g.UndirectedEdges() {
		b.AddWeightedEdge(e.U, e.V, e.W)
		pu, pv := assign[e.U], assign[e.V]
		if pu != pv {
			b.AddWeightedEdge(g.N+pu, g.N+pv, e.W)
		}
	}
	for u, p := range assign {
		b.AddEdge(u, g.N+p)
	}
	return b.Build()
}

// LiftedQuadraticError verifies the contraction invariant: for any coarse
// vector x_c and its lift x_f, x_cᵀ L_c x_c must equal x_fᵀ L_f x_f exactly,
// because coarse edge weights accumulate inter-cluster fine weights and
// intra-cluster edges vanish on lifted (cluster-constant) vectors. A
// nonzero return indicates a contraction bug.
func LiftedQuadraticError(g *graph.CSR, r *Result, trials int, rng *rand.Rand) float64 {
	var worst float64
	for t := 0; t < trials; t++ {
		xc := make([]float64, r.Coarse.N)
		for i := range xc {
			xc[i] = rng.NormFloat64()
		}
		xf := make([]float64, g.N)
		for u, c := range r.Assign {
			xf[u] = xc[c]
		}
		qc := quadratic(r.Coarse, xc)
		qf := quadratic(g, xf)
		if qf == 0 {
			continue
		}
		if e := math.Abs(qc-qf) / qf; e > worst {
			worst = e
		}
	}
	return worst
}

func quadratic(g *graph.CSR, x []float64) float64 {
	var s float64
	for _, e := range g.UndirectedEdges() {
		d := x[e.U] - x[e.V]
		s += e.W * d * d
	}
	return s
}

// EigenvalueError measures spectral preservation: the mean relative error
// between the k smallest nonzero combinatorial-Laplacian eigenvalues of the
// fine and coarse graphs. The spectral-aware matching strategies aim to
// keep this small (the GDEM/GC-SNTK objective, §3.3.4). O(n³) — use on
// graphs small enough to diagonalize densely.
func EigenvalueError(g *graph.CSR, r *Result, k int) float64 {
	fine := laplacianEigenvalues(g)
	coarse := laplacianEigenvalues(r.Coarse)
	fi := firstNonzero(fine)
	ci := firstNonzero(coarse)
	var sum float64
	count := 0
	for i := 0; i < k && fi+i < len(fine) && ci+i < len(coarse); i++ {
		f, c := fine[fi+i], coarse[ci+i]
		if f == 0 {
			continue
		}
		sum += math.Abs(f-c) / f
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func firstNonzero(vals []float64) int {
	for i, v := range vals {
		if v > 1e-9 {
			return i
		}
	}
	return len(vals)
}

// laplacianEigenvalues densely diagonalizes the combinatorial Laplacian.
func laplacianEigenvalues(g *graph.CSR) []float64 {
	n := g.N
	l := tensor.New(n, n)
	for _, e := range g.UndirectedEdges() {
		l.Set(e.U, e.U, l.At(e.U, e.U)+e.W)
		l.Set(e.V, e.V, l.At(e.V, e.V)+e.W)
		l.Set(e.U, e.V, l.At(e.U, e.V)-e.W)
		l.Set(e.V, e.U, l.At(e.V, e.U)-e.W)
	}
	vals, _ := spectral.JacobiEigen(l, 100)
	return vals
}
