package train

import (
	"testing"

	"scalegnn/internal/tensor"
)

func TestIndexBatchesClamping(t *testing.T) {
	idx := []int{4, 5, 6}
	for _, bs := range []int{0, -1, 3, 99} {
		s := NewIndexBatches(idx, bs)
		if s.BatchSize() != 3 {
			t.Errorf("batchSize %d clamped to %d, want 3", bs, s.BatchSize())
		}
		if s.Len() != 1 {
			t.Errorf("batchSize %d: Len %d, want 1", bs, s.Len())
		}
	}
	s := NewIndexBatches(idx, 2)
	if s.Len() != 2 {
		t.Errorf("Len %d, want 2", s.Len())
	}
}

func TestIndexBatchesEmptySet(t *testing.T) {
	s := NewIndexBatches(nil, 8)
	if s.Len() != 0 {
		t.Errorf("empty index set: Len %d, want 0", s.Len())
	}
	s.Shuffle(tensor.NewRand(1)) // must not panic
}

func TestIndexBatchesPermutationMatchesTensorPerm(t *testing.T) {
	// The engine's determinism contract: Shuffle consumes exactly one
	// tensor.Perm draw, so a source and a bare Perm with the same seed agree.
	idx := []int{100, 101, 102, 103, 104}
	s := NewIndexBatches(idx, 2)
	s.Shuffle(tensor.NewRand(7))
	want := tensor.Perm(len(idx), tensor.NewRand(7))
	var got []int
	for i := 0; i < s.Len(); i++ {
		got = append(got, s.Batch(i).Indices...)
	}
	for i, p := range want {
		if got[i] != idx[p] {
			t.Fatalf("position %d: got %d want %d", i, got[i], idx[p])
		}
	}
}

func TestFullBatchIsRNGFree(t *testing.T) {
	// FullBatch.Shuffle must not consume randomness — full-batch models
	// never drew a permutation, and their fingerprints depend on that.
	rng := tensor.NewRand(3)
	before := rng.Uint64()
	rng = tensor.NewRand(3)
	FullBatch{}.Shuffle(rng)
	if after := rng.Uint64(); after != before {
		t.Error("FullBatch.Shuffle consumed RNG state")
	}
	if (FullBatch{}).Len() != 1 {
		t.Error("FullBatch.Len != 1")
	}
	b := FullBatch{}.Batch(0)
	if b.Indices != nil || b.Cluster != -1 || b.X != nil {
		t.Errorf("FullBatch batch: %+v", b)
	}
}

func TestClusterBatchesPermute(t *testing.T) {
	s := NewClusterBatches(5)
	s.Shuffle(tensor.NewRand(11))
	seen := map[int]bool{}
	for i := 0; i < s.Len(); i++ {
		b := s.Batch(i)
		if b.Indices != nil {
			t.Errorf("cluster batch has indices: %+v", b)
		}
		seen[b.Cluster] = true
	}
	if len(seen) != 5 {
		t.Errorf("visited %d distinct clusters, want 5", len(seen))
	}
}

func TestEmbeddingBatchesScratchReuse(t *testing.T) {
	emb := tensor.New(8, 3)
	for i := 0; i < 8; i++ {
		for j := 0; j < 3; j++ {
			emb.Row(i)[j] = float64(i*10 + j)
		}
	}
	s := NewEmbeddingBatches(emb, []int{0, 2, 4, 6}, 2)
	defer s.Release()
	s.Shuffle(tensor.NewRand(1))
	b0 := s.Batch(0)
	first := b0.X
	for i, v := range b0.Indices {
		for j := 0; j < 3; j++ {
			if b0.X.Row(i)[j] != float64(v*10+j) {
				t.Fatalf("gather mismatch at row %d col %d", i, j)
			}
		}
	}
	// Under the race detector sync.Pool deliberately drops a fraction of
	// Puts, so allow a few rounds before declaring recycling broken.
	recycled := false
	for i := 0; i < 50 && !recycled; i++ {
		b1 := s.Batch(i % 2)
		recycled = b1.X == first
		first = b1.X
	}
	if !recycled {
		t.Error("gather buffer not recycled between batches")
	}
}
