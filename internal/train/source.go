package train

import (
	"math/rand/v2"

	"scalegnn/internal/obs"
	"scalegnn/internal/tensor"
)

// Batch is one unit of optimization work within an epoch. Which fields are
// populated depends on the BatchSource that produced it:
//
//   - full-batch sources leave Indices nil (the step sees the whole graph);
//   - index sources fill Indices with dataset-global node IDs;
//   - cluster sources fill Cluster with the partition to visit;
//   - embedding sources additionally fill X with the gathered feature rows.
type Batch struct {
	// Epoch and Index locate the batch within the run (filled by the Loop).
	Epoch int
	Index int
	// Indices are dataset-global node indices; nil means full batch. The
	// slice is owned by the source and valid only until its next Batch or
	// Shuffle call.
	Indices []int
	// Cluster is the partition ID for cluster batches; -1 otherwise.
	Cluster int
	// X holds gathered per-node features for embedding batches (pooled,
	// recycled on the source's next Batch call); nil otherwise.
	X *tensor.Matrix
}

// Size returns the number of nodes in the batch (0 for full-batch work,
// where the step defines its own extent).
func (b Batch) Size() int { return len(b.Indices) }

// BatchSource is the axis along which the model families' training loops
// differ (tutorial §3.1.2): full-batch iterative, sampled/index mini-batch,
// partition batch, and precomputed-embedding mini-batch. The Loop drives
// one source per run:
//
//	Shuffle(rng)      — once per epoch, before the first batch;
//	Len()             — number of batches in the current epoch;
//	Batch(i)          — the i-th batch of the current epoch.
//
// Sources own their scratch: slices and matrices returned by Batch are
// valid only until the next Batch or Shuffle call.
type BatchSource interface {
	Shuffle(rng *rand.Rand)
	Len() int
	Batch(i int) Batch
}

// FullBatch is the degenerate source of full-batch models (GCN, APPNP,
// implicit GNNs): one batch per epoch covering everything, no shuffling —
// and, crucially for seed-stable migrations, no RNG consumption.
type FullBatch struct{}

// Shuffle implements BatchSource (no-op: nothing to permute).
func (FullBatch) Shuffle(*rand.Rand) {}

// Len implements BatchSource.
func (FullBatch) Len() int { return 1 }

// Batch implements BatchSource.
func (FullBatch) Batch(int) Batch { return Batch{Cluster: -1} }

// IndexBatches is the index-permuted mini-batch source: each epoch draws a
// fresh permutation of the index set and slices it into contiguous batches,
// mapping positions back through the permutation — the GraphSAGE-style
// sampled-training schedule shared by every mini-batch family.
type IndexBatches struct {
	idx     []int
	batch   int
	perm    []int
	scratch []int
}

// NewIndexBatches builds a source over idx (typically the training split).
// batchSize <= 0 or larger than the set means one batch per epoch.
func NewIndexBatches(idx []int, batchSize int) *IndexBatches {
	b := batchSize
	if b <= 0 || b > len(idx) {
		b = len(idx)
	}
	return &IndexBatches{idx: idx, batch: b, scratch: make([]int, b)}
}

// BatchSize returns the effective (clamped) batch size.
func (s *IndexBatches) BatchSize() int { return s.batch }

// Shuffle implements BatchSource: one permutation draw per epoch.
func (s *IndexBatches) Shuffle(rng *rand.Rand) { s.perm = tensor.Perm(len(s.idx), rng) }

// Len implements BatchSource.
func (s *IndexBatches) Len() int {
	if len(s.idx) == 0 {
		return 0
	}
	return (len(s.idx) + s.batch - 1) / s.batch
}

// Batch implements BatchSource. The returned Indices slice is reused on the
// next call.
func (s *IndexBatches) Batch(i int) Batch {
	off := i * s.batch
	end := min(off+s.batch, len(s.idx))
	out := s.scratch[:end-off]
	for j := range out {
		out[j] = s.idx[s.perm[off+j]]
	}
	return Batch{Indices: out, Cluster: -1}
}

// ClusterBatches is the partition-batch source (Cluster-GCN schedule): each
// epoch visits every cluster exactly once in a freshly permuted order. The
// source deals only in cluster IDs; the step owns the per-cluster state.
type ClusterBatches struct {
	n    int
	perm []int
}

// NewClusterBatches builds a source over n clusters.
func NewClusterBatches(n int) *ClusterBatches { return &ClusterBatches{n: n} }

// Shuffle implements BatchSource: one permutation draw per epoch.
func (s *ClusterBatches) Shuffle(rng *rand.Rand) { s.perm = tensor.Perm(s.n, rng) }

// Len implements BatchSource.
func (s *ClusterBatches) Len() int { return s.n }

// Batch implements BatchSource.
func (s *ClusterBatches) Batch(i int) Batch { return Batch{Cluster: s.perm[i]} }

// EmbeddingBatches is the precomputed-embedding source of decoupled models
// (SGC/SIGN/LD2 heads): index-permuted mini-batches whose feature rows are
// gathered from a fixed embedding matrix into a pooled buffer — training
// with zero graph access.
type EmbeddingBatches struct {
	IndexBatches
	emb *tensor.Matrix
	xb  tensor.Buf
}

// NewEmbeddingBatches builds a source gathering rows of emb for each batch
// of idx.
func NewEmbeddingBatches(emb *tensor.Matrix, idx []int, batchSize int) *EmbeddingBatches {
	return &EmbeddingBatches{IndexBatches: *NewIndexBatches(idx, batchSize), emb: emb}
}

// Batch implements BatchSource: the index batch plus its gathered features.
// Both the Indices slice and X are recycled on the next call. The gather is
// the data-movement cost decoupled training pays per batch, so it gets its
// own span (train.gather) and feeds the train.rows_gathered counter.
func (s *EmbeddingBatches) Batch(i int) Batch {
	b := s.IndexBatches.Batch(i)
	sp := obs.Start("train.gather")
	sp.SetCount(int64(len(b.Indices)))
	x := s.xb.Next(len(b.Indices), s.emb.Cols)
	s.emb.SelectRowsInto(b.Indices, x)
	sp.End()
	rowsGathered.Add(int64(len(b.Indices)))
	b.X = x
	return b
}

// Release returns the gather buffer to the shared workspace. Call when
// training completes (the Loop does not own source scratch).
func (s *EmbeddingBatches) Release() { s.xb.Release() }
