package train

import (
	"math/rand/v2"

	"scalegnn/internal/obs"
	"scalegnn/internal/tensor"
)

// BatchOf is one unit of optimization work within an epoch, generic over
// the feature element type. Which fields are populated depends on the
// source that produced it:
//
//   - full-batch sources leave Indices nil (the step sees the whole graph);
//   - index sources fill Indices with dataset-global node IDs;
//   - cluster sources fill Cluster with the partition to visit;
//   - embedding sources additionally fill X with the gathered feature rows.
type BatchOf[T tensor.Elem] struct {
	// Epoch and Index locate the batch within the run (filled by the Loop).
	Epoch int
	Index int
	// Indices are dataset-global node indices; nil means full batch. The
	// slice is owned by the source and valid only until its next Batch or
	// Shuffle call.
	Indices []int
	// Cluster is the partition ID for cluster batches; -1 otherwise.
	Cluster int
	// X holds gathered per-node features for embedding batches (pooled,
	// recycled on the source's next Batch call); nil otherwise.
	X *tensor.Mat[T]
}

// Batch is the float64 instantiation of BatchOf.
type Batch = BatchOf[float64]

// Size returns the number of nodes in the batch (0 for full-batch work,
// where the step defines its own extent).
func (b BatchOf[T]) Size() int { return len(b.Indices) }

// BatchSourceOf is the axis along which the model families' training loops
// differ (tutorial §3.1.2): full-batch iterative, sampled/index mini-batch,
// partition batch, and precomputed-embedding mini-batch. The Loop drives
// one source per run:
//
//	Shuffle(rng)      — once per epoch, before the first batch;
//	Len()             — number of batches in the current epoch;
//	Batch(i)          — the i-th batch of the current epoch.
//
// Sources own their scratch: slices and matrices returned by Batch are
// valid only until the next Batch or Shuffle call.
type BatchSourceOf[T tensor.Elem] interface {
	Shuffle(rng *rand.Rand)
	Len() int
	Batch(i int) BatchOf[T]
}

// BatchSource is the float64 instantiation of BatchSourceOf.
type BatchSource = BatchSourceOf[float64]

// FullBatchOf is the degenerate source of full-batch models (GCN, APPNP,
// implicit GNNs): one batch per epoch covering everything, no shuffling —
// and, crucially for seed-stable migrations, no RNG consumption.
type FullBatchOf[T tensor.Elem] struct{}

// FullBatch is the float64 instantiation of FullBatchOf.
type FullBatch = FullBatchOf[float64]

// Shuffle implements BatchSourceOf (no-op: nothing to permute).
func (FullBatchOf[T]) Shuffle(*rand.Rand) {}

// Len implements BatchSourceOf.
func (FullBatchOf[T]) Len() int { return 1 }

// Batch implements BatchSourceOf.
func (FullBatchOf[T]) Batch(int) BatchOf[T] { return BatchOf[T]{Cluster: -1} }

// IndexBatchesOf is the index-permuted mini-batch source: each epoch draws a
// fresh permutation of the index set and slices it into contiguous batches,
// mapping positions back through the permutation — the GraphSAGE-style
// sampled-training schedule shared by every mini-batch family.
type IndexBatchesOf[T tensor.Elem] struct {
	idx     []int
	batch   int
	perm    []int
	scratch []int
}

// IndexBatches is the float64 instantiation of IndexBatchesOf.
type IndexBatches = IndexBatchesOf[float64]

// NewIndexBatches builds a float64 source over idx (typically the training
// split). batchSize <= 0 or larger than the set means one batch per epoch.
func NewIndexBatches(idx []int, batchSize int) *IndexBatches {
	return NewIndexBatchesOf[float64](idx, batchSize)
}

// NewIndexBatchesOf is NewIndexBatches for any element type.
func NewIndexBatchesOf[T tensor.Elem](idx []int, batchSize int) *IndexBatchesOf[T] {
	b := batchSize
	if b <= 0 || b > len(idx) {
		b = len(idx)
	}
	return &IndexBatchesOf[T]{idx: idx, batch: b, scratch: make([]int, b)}
}

// BatchSize returns the effective (clamped) batch size.
func (s *IndexBatchesOf[T]) BatchSize() int { return s.batch }

// Shuffle implements BatchSourceOf: one permutation draw per epoch.
func (s *IndexBatchesOf[T]) Shuffle(rng *rand.Rand) { s.perm = tensor.Perm(len(s.idx), rng) }

// Len implements BatchSourceOf.
func (s *IndexBatchesOf[T]) Len() int {
	if len(s.idx) == 0 {
		return 0
	}
	return (len(s.idx) + s.batch - 1) / s.batch
}

// Batch implements BatchSourceOf. The returned Indices slice is reused on
// the next call.
func (s *IndexBatchesOf[T]) Batch(i int) BatchOf[T] {
	off := i * s.batch
	end := min(off+s.batch, len(s.idx))
	out := s.scratch[:end-off]
	for j := range out {
		out[j] = s.idx[s.perm[off+j]]
	}
	return BatchOf[T]{Indices: out, Cluster: -1}
}

// ClusterBatchesOf is the partition-batch source (Cluster-GCN schedule):
// each epoch visits every cluster exactly once in a freshly permuted order.
// The source deals only in cluster IDs; the step owns the per-cluster state.
type ClusterBatchesOf[T tensor.Elem] struct {
	n    int
	perm []int
}

// ClusterBatches is the float64 instantiation of ClusterBatchesOf.
type ClusterBatches = ClusterBatchesOf[float64]

// NewClusterBatches builds a float64 source over n clusters.
func NewClusterBatches(n int) *ClusterBatches { return NewClusterBatchesOf[float64](n) }

// NewClusterBatchesOf is NewClusterBatches for any element type.
func NewClusterBatchesOf[T tensor.Elem](n int) *ClusterBatchesOf[T] {
	return &ClusterBatchesOf[T]{n: n}
}

// Shuffle implements BatchSourceOf: one permutation draw per epoch.
func (s *ClusterBatchesOf[T]) Shuffle(rng *rand.Rand) { s.perm = tensor.Perm(s.n, rng) }

// Len implements BatchSourceOf.
func (s *ClusterBatchesOf[T]) Len() int { return s.n }

// Batch implements BatchSourceOf.
func (s *ClusterBatchesOf[T]) Batch(i int) BatchOf[T] { return BatchOf[T]{Cluster: s.perm[i]} }

// EmbeddingBatchesOf is the precomputed-embedding source of decoupled models
// (SGC/SIGN/LD2 heads): index-permuted mini-batches whose feature rows are
// gathered from a fixed embedding matrix into a pooled buffer — training
// with zero graph access.
type EmbeddingBatchesOf[T tensor.Elem] struct {
	IndexBatchesOf[T]
	emb *tensor.Mat[T]
	xb  tensor.BufOf[T]
}

// EmbeddingBatches is the float64 instantiation of EmbeddingBatchesOf.
type EmbeddingBatches = EmbeddingBatchesOf[float64]

// NewEmbeddingBatches builds a source gathering rows of emb for each batch
// of idx; the element type follows emb.
func NewEmbeddingBatches[T tensor.Elem](emb *tensor.Mat[T], idx []int, batchSize int) *EmbeddingBatchesOf[T] {
	return &EmbeddingBatchesOf[T]{IndexBatchesOf: *NewIndexBatchesOf[T](idx, batchSize), emb: emb}
}

// Batch implements BatchSourceOf: the index batch plus its gathered
// features. Both the Indices slice and X are recycled on the next call. The
// gather is the data-movement cost decoupled training pays per batch, so it
// gets its own span (train.gather) and feeds the train.rows_gathered
// counter.
func (s *EmbeddingBatchesOf[T]) Batch(i int) BatchOf[T] {
	b := s.IndexBatchesOf.Batch(i)
	sp := obs.Start("train.gather")
	sp.SetCount(int64(len(b.Indices)))
	x := s.xb.Next(len(b.Indices), s.emb.Cols)
	s.emb.SelectRowsInto(b.Indices, x)
	sp.End()
	rowsGathered.Add(int64(len(b.Indices)))
	b.X = x
	return b
}

// Release returns the gather buffer to the shared workspace. Call when
// training completes (the Loop does not own source scratch).
func (s *EmbeddingBatchesOf[T]) Release() { s.xb.Release() }
