package train

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
)

// ckptModel is a stochastic one-parameter model for resume-identity tests:
// every Step draws a gradient from the shared RNG and applies a real Adam
// update, and Validate draws from the same stream (like GraphSAGE's
// sampled inference does). Any divergence in RNG replay, parameter
// restore, or moment restore shows up as a bitwise parameter difference.
type ckptModel struct {
	param   *nn.Param
	opt     *nn.Adam
	rng     *rand.Rand
	batches []Batch
}

func newCkptModel(rng *rand.Rand) *ckptModel {
	return &ckptModel{
		param: nn.NewParam("w", tensor.New(2, 3)),
		opt:   nn.NewAdam(0.05),
		rng:   rng,
	}
}

func (m *ckptModel) spec(src BatchSource) Spec {
	return Spec{
		Source: src,
		Step: func(b Batch) error {
			c := b
			c.Indices = append([]int(nil), b.Indices...)
			m.batches = append(m.batches, c)
			for i := range m.param.Grad.Data {
				m.param.Grad.Data[i] = m.rng.NormFloat64()
			}
			m.opt.Step([]*nn.Param{m.param})
			return nil
		},
		Validate:  func() (float64, error) { return m.rng.Float64(), nil },
		Params:    []*nn.Param{m.param},
		Optimizer: m.opt,
	}
}

// run builds a fresh model+RNG from seed and trains it, optionally with
// checkpointing, cancelling after cancelAfter batch steps (0 = never).
func ckptRun(t *testing.T, seed uint64, epochs int, ckCfg CheckpointConfig, cancelAfter int) (*ckptModel, *Report, error) {
	t.Helper()
	pcg := tensor.NewPCG(seed)
	rng := rand.New(pcg)
	m := newCkptModel(rng)
	if ckCfg.Dir != "" {
		ckCfg.RNG = pcg
	}
	cfg := Config{Epochs: epochs, RNG: rng, Checkpoint: ckCfg}
	if cancelAfter > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg.Ctx = ctx
		cfg.Hooks = append(cfg.Hooks, &cancelAfterBatches{n: cancelAfter, cancel: cancel})
	}
	rep, err := Run(cfg, m.spec(NewIndexBatches([]int{0, 1, 2, 3, 4, 5, 6}, 3)))
	return m, rep, err
}

type cancelAfterBatches struct {
	n, seen int
	cancel  context.CancelFunc
}

func (c *cancelAfterBatches) OnBatch(BatchEnd) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}
func (c *cancelAfterBatches) OnEpoch(EpochEnd) {}

func sameBatches(t *testing.T, got, want []Batch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Epoch != w.Epoch || g.Index != w.Index || len(g.Indices) != len(w.Indices) {
			t.Fatalf("batch %d: got %+v want %+v", i, g, w)
		}
		for j := range g.Indices {
			if g.Indices[j] != w.Indices[j] {
				t.Fatalf("batch %d index %d: got %d want %d (permutation replay diverged)",
					i, j, g.Indices[j], w.Indices[j])
			}
		}
	}
}

func sameParams(t *testing.T, got, want *ckptModel) {
	t.Helper()
	for i := range want.param.Value.Data {
		if got.param.Value.Data[i] != want.param.Value.Data[i] {
			t.Fatalf("param[%d]: got %v want %v (not bitwise identical)",
				i, got.param.Value.Data[i], want.param.Value.Data[i])
		}
	}
}

// TestResumeFromBoundaryBitwiseIdentical: train 3 epochs with snapshots,
// then resume a fresh process image to 6 epochs; the result must be
// bitwise identical to an uninterrupted 6-epoch run.
func TestResumeFromBoundaryBitwiseIdentical(t *testing.T) {
	const seed, fp = 11, 77
	full, _, err := ckptRun(t, seed, 6, CheckpointConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Every: 1, KeepLast: 3, Fingerprint: fp}
	if _, _, err := ckptRun(t, seed, 3, cc, 0); err != nil {
		t.Fatal(err)
	}
	cc.Resume = true
	resumed, rep, err := ckptRun(t, seed, 6, cc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 6 {
		t.Fatalf("resumed report epochs %d, want 6", rep.Epochs)
	}
	// 7 indices / batch 3 = 3 batches per epoch; the resumed model runs
	// exactly the final 3 epochs' worth.
	sameBatches(t, resumed.batches, full.batches[9:])
	sameParams(t, resumed, full)
}

// TestResumeMidEpochBitwiseIdentical: cancellation lands mid-epoch, the
// snapshot stores the batch cursor, and the resumed run replays the
// epoch's permutation before continuing — bitwise identical overall.
func TestResumeMidEpochBitwiseIdentical(t *testing.T) {
	const seed, fp = 23, 99
	full, _, err := ckptRun(t, seed, 5, CheckpointConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Every: 1, Fingerprint: fp}
	// Cancel after 5 steps: epoch 1, batch 2 is next (3 batches/epoch).
	interrupted, rep, err := ckptRun(t, seed, 5, cc, 5)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !strings.Contains(err.Error(), "cancelled") || rep == nil || rep.Stopped != StopCancelled {
		t.Fatalf("unexpected cancellation result: rep=%+v err=%v", rep, err)
	}
	if len(interrupted.batches) != 5 {
		t.Fatalf("interrupted run stepped %d batches, want 5", len(interrupted.batches))
	}

	cc.Resume = true
	resumed, rep, err := ckptRun(t, seed, 5, cc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 5 {
		t.Fatalf("resumed report epochs %d, want 5", rep.Epochs)
	}
	sameBatches(t, append(append([]Batch(nil), interrupted.batches...), resumed.batches...), full.batches)
	sameParams(t, resumed, full)
}

// TestResumeRestoresEarlyStopState: patience counting must survive a
// resume — the combined run stops at the same epoch as the uninterrupted
// one (Validate draws from the shared stream, so val sequences match).
func TestResumeRestoresEarlyStopState(t *testing.T) {
	const seed, fp, epochs, patience = 31, 5, 40, 3
	pcgRun := func(ck CheckpointConfig, maxEpochs int) (*Report, error) {
		pcg := tensor.NewPCG(seed)
		rng := rand.New(pcg)
		m := newCkptModel(rng)
		if ck.Dir != "" {
			ck.RNG = pcg
		}
		return Run(Config{Epochs: maxEpochs, Patience: patience, RNG: rng, Checkpoint: ck},
			m.spec(NewIndexBatches([]int{0, 1, 2, 3}, 2)))
	}
	fullRep, err := pcgRun(CheckpointConfig{}, epochs)
	if err != nil {
		t.Fatal(err)
	}
	if fullRep.Stopped != StopEarly {
		t.Skipf("seed did not early-stop (stopped %s); pick another seed", fullRep.Stopped)
	}

	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Fingerprint: fp}
	// First leg: stop partway through, before the early stop triggers.
	half := fullRep.Epochs / 2
	if _, err := pcgRun(cc, half); err != nil {
		t.Fatal(err)
	}
	cc.Resume = true
	rep, err := pcgRun(cc, epochs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopEarly || rep.Epochs != fullRep.Epochs ||
		rep.BestEpoch != fullRep.BestEpoch || rep.BestVal != fullRep.BestVal {
		t.Fatalf("resumed stop state %+v, want %+v", rep, fullRep)
	}
}

// TestResumeAfterEarlyStopIsNoop: a snapshot taken at the early-stop
// boundary records exhausted patience; resuming it (even with a higher
// epoch budget) must not train further — the uninterrupted run wouldn't.
func TestResumeAfterEarlyStopIsNoop(t *testing.T) {
	const seed, fp, patience = 31, 8, 3
	run := func(ck CheckpointConfig, epochs int) (*ckptModel, *Report, error) {
		pcg := tensor.NewPCG(seed)
		rng := rand.New(pcg)
		m := newCkptModel(rng)
		if ck.Dir != "" {
			ck.RNG = pcg
		}
		rep, err := Run(Config{Epochs: epochs, Patience: patience, RNG: rng, Checkpoint: ck},
			m.spec(NewIndexBatches([]int{0, 1, 2, 3}, 2)))
		return m, rep, err
	}
	cc := CheckpointConfig{Dir: t.TempDir(), Fingerprint: fp}
	_, firstRep, err := run(cc, 40)
	if err != nil {
		t.Fatal(err)
	}
	if firstRep.Stopped != StopEarly {
		t.Skipf("seed did not early-stop (stopped %s); pick another seed", firstRep.Stopped)
	}
	cc.Resume = true
	m, rep, err := run(cc, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.batches) != 0 {
		t.Fatalf("resume after early stop stepped %d batches, want 0", len(m.batches))
	}
	if rep.Stopped != StopEarly || rep.Epochs != firstRep.Epochs || rep.BestEpoch != firstRep.BestEpoch {
		t.Fatalf("resumed report %+v, want %+v", rep, firstRep)
	}
}

// TestResumeRestoreBestWeights: the best-validation weight copy must ride
// along in the snapshot so RestoreBest works across a resume.
func TestResumeRestoreBestWeights(t *testing.T) {
	const seed, fp = 7, 13
	run := func(ck CheckpointConfig, epochs int) (*ckptModel, *Report, error) {
		pcg := tensor.NewPCG(seed)
		rng := rand.New(pcg)
		m := newCkptModel(rng)
		if ck.Dir != "" {
			ck.RNG = pcg
		}
		rep, err := Run(Config{Epochs: epochs, RestoreBest: true, RNG: rng, Checkpoint: ck},
			m.spec(NewIndexBatches([]int{0, 1, 2}, 2)))
		return m, rep, err
	}
	full, fullRep, err := run(CheckpointConfig{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Fingerprint: fp}
	if _, _, err := run(cc, 5); err != nil {
		t.Fatal(err)
	}
	cc.Resume = true
	resumed, rep, err := run(cc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestEpoch != fullRep.BestEpoch {
		t.Fatalf("best epoch %d, want %d", rep.BestEpoch, fullRep.BestEpoch)
	}
	sameParams(t, resumed, full)
}

// TestResumeEmptyDirIsFreshStart: Resume=true over an empty directory
// trains from scratch, identically to a run without checkpointing.
func TestResumeEmptyDirIsFreshStart(t *testing.T) {
	const seed = 3
	full, _, err := ckptRun(t, seed, 3, CheckpointConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cc := CheckpointConfig{Dir: t.TempDir(), Resume: true, Fingerprint: 1}
	fresh, rep, err := ckptRun(t, seed, 3, cc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 3 {
		t.Fatalf("epochs %d", rep.Epochs)
	}
	sameParams(t, fresh, full)
}

// TestResumeCompletedRunIsNoop: resuming a finished run performs no
// further steps and reports the snapshot's state.
func TestResumeCompletedRunIsNoop(t *testing.T) {
	cc := CheckpointConfig{Dir: t.TempDir(), Fingerprint: 2}
	if _, _, err := ckptRun(t, 5, 4, cc, 0); err != nil {
		t.Fatal(err)
	}
	cc.Resume = true
	m, rep, err := ckptRun(t, 5, 4, cc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.batches) != 0 {
		t.Fatalf("no-op resume stepped %d batches", len(m.batches))
	}
	if rep.Epochs != 4 || rep.Stopped != StopCompleted {
		t.Fatalf("report %+v", rep)
	}
}

// TestResumeRejectsFingerprintMismatch: a config change between legs must
// refuse the old snapshots instead of silently restarting.
func TestResumeRejectsFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	cc := CheckpointConfig{Dir: dir, Fingerprint: 10}
	if _, _, err := ckptRun(t, 5, 2, cc, 0); err != nil {
		t.Fatal(err)
	}
	cc.Fingerprint = 20
	cc.Resume = true
	_, _, err := ckptRun(t, 5, 2, cc, 0)
	if err == nil || !strings.Contains(err.Error(), ckpt.ErrFingerprint.Error()) {
		t.Fatalf("got %v, want fingerprint mismatch", err)
	}
}

// TestCheckpointConfigValidation: enabling checkpointing without the
// required Spec/Config pieces must fail fast.
func TestCheckpointConfigValidation(t *testing.T) {
	pcg := tensor.NewPCG(1)
	rng := rand.New(pcg)
	m := newCkptModel(rng)
	good := m.spec(FullBatch{})
	dir := t.TempDir()

	noParams := good
	noParams.Params = nil
	noOpt := good
	noOpt.Optimizer = nil
	for name, tc := range map[string]struct {
		spec Spec
		ck   CheckpointConfig
	}{
		"no params":    {noParams, CheckpointConfig{Dir: dir, RNG: pcg}},
		"no optimizer": {noOpt, CheckpointConfig{Dir: dir, RNG: pcg}},
		"no rng":       {good, CheckpointConfig{Dir: dir}},
	} {
		if _, err := Run(Config{Epochs: 1, RNG: rng, Checkpoint: tc.ck}, tc.spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
