// Package train is the unified training engine behind every model family
// in internal/models. The tutorial's survey of scalable-GNN systems (§3.1.2)
// shows that the families differ along exactly one axis — how an epoch is
// sliced into batches (full-batch iterative, sampled index mini-batch,
// partition batch, precomputed-embedding mini-batch) — while everything
// around that axis is shared scaffolding: permutation draws, early stopping,
// validation cadence, timing, and memory accounting. This package owns the
// scaffolding once:
//
//   - BatchSource abstracts the batching axis (source.go);
//   - Loop (Run) drives the epoch loop with RNG-seeded shuffling, early
//     stopping with optional best-validation weight restoration,
//     context.Context cancellation/deadline, and wall-clock plus
//     peak-resident-float accounting;
//   - Hook receives OnBatch/OnEpoch callbacks for metrics, tracing, and
//     progress layers without touching the hot path.
//
// Determinism contract: with the same Config, Spec, and *rand.Rand stream,
// Run consumes randomness in exactly the order of the hand-rolled loops it
// replaced (one Shuffle per epoch, then the step's own draws batch by
// batch), so migrated models produce bitwise-identical parameters and
// predictions. RestoreBest is off by default because restoring changes
// final weights relative to those legacy loops.
package train

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"scalegnn/internal/fault"
	"scalegnn/internal/nn"
	"scalegnn/internal/obs"
	"scalegnn/internal/tensor"
)

// Config holds the engine-level schedule settings.
type Config struct {
	// Epochs is the maximum number of epochs (>= 1).
	Epochs int
	// Patience stops training after this many epochs without validation
	// improvement; 0 disables early stopping.
	Patience int
	// RestoreBest restores the best-validation parameter snapshot (of
	// Spec.Params) when training ends. Off by default: legacy loops kept
	// the final weights, and fingerprint comparisons rely on that.
	RestoreBest bool
	// RNG drives the per-epoch shuffle and is shared with the model's own
	// stochastic layers; required when the source shuffles.
	RNG *rand.Rand
	// Ctx cancels training between batches; nil means never.
	Ctx context.Context
	// Hooks observe the run. Hook errors are not possible by construction;
	// hooks must not mutate model state.
	Hooks []Hook
	// Checkpoint enables durable snapshot/resume (see checkpoint.go). The
	// zero value disables it.
	Checkpoint CheckpointConfig
}

// SpecOf is what a model brings to the engine: its batch axis and the three
// model-specific operations of one training run, generic over the element
// type its parameters and features are stored in.
type SpecOf[T tensor.Elem] struct {
	// Source yields each epoch's batches. Required.
	Source BatchSourceOf[T]
	// Step runs forward/backward/optimizer-update for one batch. Required.
	Step func(b BatchOf[T]) error
	// Validate returns the epoch's validation accuracy. Required.
	Validate func() (float64, error)
	// Params are the learnables snapshotted for Config.RestoreBest and
	// serialized by checkpointing; may be nil when both are off.
	Params []*nn.ParamOf[T]
	// Optimizer exposes moment state for checkpointing; required when
	// Config.Checkpoint is enabled, ignored otherwise.
	Optimizer OptimizerStateOf[T]
	// PeakFloats, when set, is called once after training to fill
	// Report.PeakFloats (the resident-float peak of one step — the
	// GPU-memory proxy reported by every family).
	PeakFloats func() int
}

// Spec is the float64 instantiation of SpecOf.
type Spec = SpecOf[float64]

// StopReason records how a run ended.
type StopReason string

// Stop reasons.
const (
	StopCompleted StopReason = "completed"  // ran all configured epochs
	StopEarly     StopReason = "early-stop" // patience exhausted
	StopCancelled StopReason = "cancelled"  // context cancelled or expired
)

// Report is the engine's accounting of one run.
type Report struct {
	// Epochs actually run (the last one may be partial under cancellation).
	Epochs int
	// TrainTime is the wall-clock optimization time; EpochTime is
	// TrainTime / Epochs.
	TrainTime time.Duration
	EpochTime time.Duration
	// BestVal / BestEpoch track the best validation accuracy seen and when.
	BestVal   float64
	BestEpoch int
	// PeakFloats is Spec.PeakFloats() (0 when unset).
	PeakFloats int
	// Stopped records why the run ended.
	Stopped StopReason
}

// BatchEnd is the per-batch hook payload. It is an alias for the obs
// package's type (observation payloads belong to the observability layer)
// so that obs.TrainHook satisfies Hook without an import cycle: train
// imports obs for its span instrumentation, never the reverse.
type BatchEnd = obs.BatchEnd

// EpochEnd is the per-epoch hook payload (alias, see BatchEnd).
type EpochEnd = obs.EpochEnd

// Hook observes a training run. Implementations must be cheap or sample
// internally: OnBatch sits on the hot path.
type Hook interface {
	OnBatch(BatchEnd)
	OnEpoch(EpochEnd)
}

// earlyStop tracks validation accuracy with patience (strict improvement,
// matching the legacy per-model stoppers).
type earlyStop struct {
	best     float64
	bestAt   int
	patience int
}

// update records an epoch's validation accuracy, returning whether it
// improved the best and whether training should stop.
func (e *earlyStop) update(epoch int, valAcc float64) (improved, stop bool) {
	if valAcc > e.best {
		e.best = valAcc
		e.bestAt = epoch
		return true, false
	}
	return false, e.patience > 0 && epoch-e.bestAt >= e.patience
}

// snapshotOf is a deep copy of parameter values.
type snapshotOf[T tensor.Elem] [][]T

func takeSnapshot[T tensor.Elem](params []*nn.ParamOf[T], into snapshotOf[T]) snapshotOf[T] {
	if into == nil {
		into = make(snapshotOf[T], len(params))
		for i, p := range params {
			into[i] = make([]T, len(p.Value.Data))
		}
	}
	for i, p := range params {
		copy(into[i], p.Value.Data)
	}
	return into
}

func (s snapshotOf[T]) restore(params []*nn.ParamOf[T]) {
	for i, p := range params {
		copy(p.Value.Data, s[i])
	}
}

// Run executes one training run. It returns a non-nil partial Report
// together with a wrapped context error when cancelled mid-run; any other
// error (step, validation, config) returns a nil report. The element type
// is inferred from the Spec: float64 specs run the bitwise-reproducible
// reference path, float32 specs the raw-speed tier.
func Run[T tensor.Elem](cfg Config, spec SpecOf[T]) (*Report, error) {
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("train: epochs %d < 1", cfg.Epochs)
	}
	if spec.Source == nil || spec.Step == nil || spec.Validate == nil {
		return nil, fmt.Errorf("train: spec needs Source, Step, and Validate")
	}
	if cfg.RestoreBest && len(spec.Params) == 0 {
		return nil, fmt.Errorf("train: RestoreBest needs Spec.Params")
	}

	var ck *ckptRunner[T]
	if cfg.Checkpoint.Dir != "" {
		var err error
		if ck, err = newCkptRunner(&cfg, &spec); err != nil {
			return nil, err
		}
	}

	stopper := earlyStop{best: -1, patience: cfg.Patience}
	rep := &Report{BestVal: -1, BestEpoch: -1, Stopped: StopCompleted}
	var best snapshotOf[T]
	// Resume before the clock starts: a restored run reports only the time
	// it spent training after the snapshot.
	startEpoch, resumeBatch := 0, -1
	if ck != nil && cfg.Checkpoint.Resume {
		snap, restoredBest, err := ck.resume(&stopper, rep)
		if err != nil {
			return nil, err
		}
		if snap != nil {
			best = restoredBest
			startEpoch = snap.Epoch
			resumeBatch = snap.Batch // -1 at a boundary, else mid-epoch cursor
		}
	}
	start := time.Now()
	// The engine is the span emitter for the training timeline: run → epoch
	// → {shuffle, batch, validate}. With no tracer installed every span call
	// below is a guarded no-op (see the obs overhead contract), so the hot
	// path is unchanged; with one installed, observation still never touches
	// cfg.RNG or model state, keeping outputs bitwise identical.
	// The run roots a trace (a fresh id per run, crypto/rand — never
	// cfg.RNG): every epoch/batch span inherits it, and the hook payloads
	// carry it so log lines correlate with the JSONL timeline by trace_id.
	runSp := obs.StartRequest("train.run", obs.TraceContext{})
	defer runSp.End()
	finish := func(reason StopReason) {
		rep.Stopped = reason
		rep.TrainTime = time.Since(start)
		if rep.Epochs > 0 {
			rep.EpochTime = rep.TrainTime / time.Duration(rep.Epochs)
		}
		if cfg.RestoreBest && best != nil {
			best.restore(spec.Params)
		}
		if spec.PeakFloats != nil {
			rep.PeakFloats = spec.PeakFloats()
		}
		peakFloats.Set(float64(rep.PeakFloats))
	}

	// A boundary snapshot can capture a run whose patience was already
	// exhausted at its final epoch (the early stop and the snapshot happen
	// at the same boundary). Re-evaluate before training: running even one
	// more epoch would diverge from the uninterrupted run.
	if startEpoch > 0 && resumeBatch < 0 &&
		stopper.patience > 0 && (startEpoch-1)-stopper.bestAt >= stopper.patience {
		finish(StopEarly)
		return rep, nil
	}

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		rep.Epochs++
		epSp := runSp.Child("train.epoch")
		// A mid-epoch resume replays this epoch's shuffle from the restored
		// pre-shuffle RNG state — re-deriving the exact permutation the
		// interrupted run drew — then jumps the RNG to the snapshot cursor.
		// Every other epoch records the pre-shuffle state first so it can be
		// replayed the same way later.
		midResume := ck != nil && resumeBatch >= 0 && epoch == startEpoch
		if ck != nil && !midResume {
			if err := ck.beginEpoch(); err != nil {
				epSp.End()
				return nil, err
			}
		}
		shSp := epSp.Child("train.shuffle")
		spec.Source.Shuffle(cfg.RNG)
		shSp.End()
		firstBatch := 0
		if midResume {
			if err := ck.replayedShuffle(); err != nil {
				epSp.End()
				return nil, err
			}
			firstBatch = resumeBatch
			resumeBatch = -1
		}
		n := spec.Source.Len()
		for i := firstBatch; i < n; i++ {
			if err := ctxErr(cfg.Ctx); err != nil {
				err = fmt.Errorf("train: cancelled at epoch %d batch %d: %w", epoch, i, err)
				if ck != nil {
					if serr := ck.save(epoch, i, &stopper, rep, best); serr != nil {
						err = fmt.Errorf("%w (cancellation snapshot also failed: %v)", err, serr)
					}
				}
				epSp.End()
				finish(StopCancelled)
				return rep, err
			}
			if err := fault.Inject("train.batch"); err != nil {
				epSp.End()
				return nil, fmt.Errorf("train: batch failpoint (epoch %d batch %d): %w", epoch, i, err)
			}
			b := spec.Source.Batch(i)
			b.Epoch, b.Index = epoch, i
			bSp := epSp.Child("train.batch")
			bSp.SetCount(int64(b.Size()))
			err := spec.Step(b)
			bSp.End()
			if err != nil {
				epSp.End()
				return nil, fmt.Errorf("train: step (epoch %d batch %d): %w", epoch, i, err)
			}
			for _, h := range cfg.Hooks {
				h.OnBatch(BatchEnd{Epoch: epoch, Batch: i, Size: b.Size(), Trace: runSp.TraceID()})
			}
		}
		vSp := epSp.Child("train.validate")
		val, err := spec.Validate()
		vSp.End()
		epSp.End()
		if err != nil {
			return nil, fmt.Errorf("train: validate (epoch %d): %w", epoch, err)
		}
		improved, stop := stopper.update(epoch, val)
		if improved {
			rep.BestVal, rep.BestEpoch = val, epoch
			if cfg.RestoreBest {
				best = takeSnapshot(spec.Params, best)
			}
		}
		for _, h := range cfg.Hooks {
			h.OnEpoch(EpochEnd{
				Epoch: epoch, ValAcc: val, Improved: improved,
				Best: stopper.best, Elapsed: time.Since(start),
				Trace: runSp.TraceID(),
			})
		}
		if ck != nil && ck.boundary(epoch, cfg.Epochs, stop) {
			if err := ck.save(epoch+1, -1, &stopper, rep, best); err != nil {
				return nil, err
			}
		}
		if stop {
			finish(StopEarly)
			return rep, nil
		}
	}
	finish(StopCompleted)
	return rep, nil
}

// Engine-level metric refs, disabled (one atomic load, no work) until
// EnableMetrics binds them to a registry.
var (
	rowsGathered obs.CounterRef
	peakFloats   obs.GaugeRef
)

// EnableMetrics binds the engine's metrics to reg (see DESIGN.md
// "Observability" for the name registry):
//
//	train.rows_gathered  counter  feature rows gathered by embedding sources
//	train.peak_floats    gauge    Report.PeakFloats of the latest run
//
// Call once at process start (the CLIs do, behind -metrics-addr); pass nil
// to unbind.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		rowsGathered.Bind(nil)
		peakFloats.Bind(nil)
		return
	}
	rowsGathered.Bind(reg.Counter("train.rows_gathered"))
	peakFloats.Bind(reg.Gauge("train.peak_floats"))
}

// ctxErr reports a context's error, treating nil as never-cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
