package train

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
)

// fakeModel is a deterministic one-parameter model: each Step adds the batch
// size (or 1 for full-batch work) to a counter parameter, and validation
// accuracy follows a scripted sequence. It records every batch it sees, so
// tests can assert the exact schedule the engine drove.
type fakeModel struct {
	param   *nn.Param
	valSeq  []float64 // validation accuracy per epoch (last repeats)
	epoch   int
	batches []Batch // copies with Indices cloned
	stepErr error
}

func newFakeModel(valSeq ...float64) *fakeModel {
	return &fakeModel{
		param:  nn.NewParam("fake.w", tensor.New(1, 1)),
		valSeq: valSeq,
	}
}

func (f *fakeModel) spec(src BatchSource) Spec {
	return Spec{
		Source: src,
		Step: func(b Batch) error {
			if f.stepErr != nil {
				return f.stepErr
			}
			c := b
			c.Indices = append([]int(nil), b.Indices...)
			f.batches = append(f.batches, c)
			n := float64(b.Size())
			if n == 0 {
				n = 1
			}
			f.param.Value.Data[0] += n
			return nil
		},
		Validate: func() (float64, error) {
			i := min(f.epoch, len(f.valSeq)-1)
			f.epoch++
			return f.valSeq[i], nil
		},
		Params:     []*nn.Param{f.param},
		PeakFloats: func() int { return 42 },
	}
}

func TestRunFullBatch(t *testing.T) {
	f := newFakeModel(0.5, 0.6, 0.7)
	rep, err := Run(Config{Epochs: 3}, f.spec(FullBatch{}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 3 || rep.Stopped != StopCompleted {
		t.Errorf("report %+v", rep)
	}
	if len(f.batches) != 3 {
		t.Fatalf("full batch should run once per epoch, got %d steps", len(f.batches))
	}
	for i, b := range f.batches {
		if b.Epoch != i || b.Index != 0 || b.Indices != nil || b.Cluster != -1 {
			t.Errorf("batch %d: %+v", i, b)
		}
	}
	if rep.BestVal != 0.7 || rep.BestEpoch != 2 {
		t.Errorf("best tracking: %+v", rep)
	}
	if rep.PeakFloats != 42 {
		t.Errorf("PeakFloats %d", rep.PeakFloats)
	}
	if rep.TrainTime <= 0 || rep.EpochTime <= 0 {
		t.Errorf("timing not recorded: %+v", rep)
	}
}

func TestRunIndexBatchesCoverTrainingSet(t *testing.T) {
	idx := []int{10, 11, 12, 13, 14, 15, 16}
	f := newFakeModel(0.5)
	rng := tensor.NewRand(3)
	rep, err := Run(Config{Epochs: 2, RNG: rng}, f.spec(NewIndexBatches(idx, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 2 {
		t.Fatalf("epochs %d", rep.Epochs)
	}
	// 7 indices in batches of 3 → 3 batches per epoch (3+3+1).
	if len(f.batches) != 6 {
		t.Fatalf("expected 6 batches, got %d", len(f.batches))
	}
	for ep := 0; ep < 2; ep++ {
		seen := map[int]int{}
		for _, b := range f.batches[ep*3 : ep*3+3] {
			if b.Epoch != ep {
				t.Errorf("batch tagged epoch %d want %d", b.Epoch, ep)
			}
			for _, v := range b.Indices {
				seen[v]++
			}
		}
		for _, v := range idx {
			if seen[v] != 1 {
				t.Errorf("epoch %d: index %d visited %d times", ep, v, seen[v])
			}
		}
	}
}

func TestRunClusterBatchesVisitEveryCluster(t *testing.T) {
	f := newFakeModel(0.5)
	rng := tensor.NewRand(5)
	_, err := Run(Config{Epochs: 1, RNG: rng}, f.spec(NewClusterBatches(4)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, b := range f.batches {
		seen[b.Cluster]++
	}
	for c := 0; c < 4; c++ {
		if seen[c] != 1 {
			t.Errorf("cluster %d visited %d times", c, seen[c])
		}
	}
}

func TestRunEmbeddingBatchesGatherRows(t *testing.T) {
	emb := tensor.New(6, 2)
	for i := 0; i < 6; i++ {
		emb.Row(i)[0] = float64(i)
		emb.Row(i)[1] = float64(10 * i)
	}
	src := NewEmbeddingBatches(emb, []int{1, 3, 5}, 2)
	defer src.Release()
	var got [][]float64
	spec := Spec{
		Source: src,
		Step: func(b Batch) error {
			if b.X == nil || b.X.Rows != len(b.Indices) || b.X.Cols != 2 {
				t.Fatalf("bad gather: %+v", b)
			}
			for i, v := range b.Indices {
				got = append(got, []float64{float64(v), b.X.Row(i)[0], b.X.Row(i)[1]})
			}
			return nil
		},
		Validate: func() (float64, error) { return 0, nil },
	}
	if _, err := Run(Config{Epochs: 1, RNG: tensor.NewRand(1)}, spec); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("gathered %d rows", len(got))
	}
	for _, row := range got {
		if row[1] != row[0] || row[2] != 10*row[0] {
			t.Errorf("row for node %v gathered %v, %v", row[0], row[1], row[2])
		}
	}
}

func TestSeedStability(t *testing.T) {
	idx := make([]int, 50)
	for i := range idx {
		idx[i] = i
	}
	order := func(seed uint64) []int {
		f := newFakeModel(0.5)
		_, err := Run(Config{Epochs: 3, RNG: tensor.NewRand(seed)}, f.spec(NewIndexBatches(idx, 8)))
		if err != nil {
			t.Fatal(err)
		}
		var flat []int
		for _, b := range f.batches {
			flat = append(flat, b.Indices...)
		}
		return flat
	}
	a, b := order(9), order(9)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("order lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at position %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := order(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical batch order")
	}
}

func TestEarlyStopAndPatience(t *testing.T) {
	// Improves at epochs 0,1 then plateaus; patience 3 → stop at epoch 4.
	f := newFakeModel(0.5, 0.6, 0.55, 0.55, 0.55, 0.55, 0.55)
	rep, err := Run(Config{Epochs: 50, Patience: 3}, f.spec(FullBatch{}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopEarly {
		t.Errorf("stopped %q", rep.Stopped)
	}
	if rep.Epochs != 5 {
		t.Errorf("ran %d epochs, want 5", rep.Epochs)
	}
	if rep.BestVal != 0.6 || rep.BestEpoch != 1 {
		t.Errorf("best %+v", rep)
	}

	// Patience 0 disables early stopping even under a worsening sequence.
	f0 := newFakeModel(0.9, 0.1)
	rep0, err := Run(Config{Epochs: 10, Patience: 0}, f0.spec(FullBatch{}))
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Epochs != 10 || rep0.Stopped != StopCompleted {
		t.Errorf("patience=0 run: %+v", rep0)
	}
}

func TestRestoreBestSnapshotsParameters(t *testing.T) {
	// Validation peaks at epoch 1; the counter parameter keeps growing each
	// step, so restoration must rewind it to its epoch-1 value.
	f := newFakeModel(0.5, 0.9, 0.4, 0.4, 0.4)
	rep, err := Run(Config{Epochs: 5, RestoreBest: true}, f.spec(FullBatch{}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestEpoch != 1 {
		t.Fatalf("best epoch %d", rep.BestEpoch)
	}
	// One full-batch step per epoch adds 1; after epoch 1 the value was 2.
	if got := f.param.Value.Data[0]; got != 2 {
		t.Errorf("restored parameter %v, want 2 (epoch-1 snapshot)", got)
	}

	// Without restoration the final value stands.
	f2 := newFakeModel(0.5, 0.9, 0.4, 0.4, 0.4)
	if _, err := Run(Config{Epochs: 5}, f2.spec(FullBatch{})); err != nil {
		t.Fatal(err)
	}
	if got := f2.param.Value.Data[0]; got != 5 {
		t.Errorf("final parameter %v, want 5", got)
	}
}

func TestCancellationMidEpochReturnsPartialReport(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	idx := make([]int, 40)
	for i := range idx {
		idx[i] = i
	}
	f := newFakeModel(0.5)
	spec := f.spec(NewIndexBatches(idx, 10))
	steps := 0
	inner := spec.Step
	spec.Step = func(b Batch) error {
		steps++
		if steps == 6 { // cancel mid-second-epoch (4 batches per epoch)
			cancel()
		}
		return inner(b)
	}
	rep, err := Run(Config{Epochs: 100, RNG: tensor.NewRand(2), Ctx: ctx}, spec)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled run must return the partial report")
	}
	if rep.Stopped != StopCancelled {
		t.Errorf("stopped %q", rep.Stopped)
	}
	if rep.Epochs != 2 {
		t.Errorf("partial report says %d epochs, want 2", rep.Epochs)
	}
	if steps != 6 {
		t.Errorf("ran %d steps after cancellation, want 6", steps)
	}
	// The engine is synchronous: no goroutines may outlive the run.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestAlreadyExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	f := newFakeModel(0.5)
	rep, err := Run(Config{Epochs: 3, Ctx: ctx}, f.spec(FullBatch{}))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap DeadlineExceeded", err)
	}
	if rep == nil || len(f.batches) != 0 {
		t.Errorf("expired context must stop before the first step (rep=%v steps=%d)", rep, len(f.batches))
	}
}

// countingHook records hook invocations.
type countingHook struct {
	batches []BatchEnd
	epochs  []EpochEnd
}

func (h *countingHook) OnBatch(e BatchEnd) { h.batches = append(h.batches, e) }
func (h *countingHook) OnEpoch(e EpochEnd) { h.epochs = append(h.epochs, e) }

func TestHooksObserveRun(t *testing.T) {
	h := &countingHook{}
	idx := []int{0, 1, 2, 3, 4}
	f := newFakeModel(0.5, 0.7, 0.6)
	_, err := Run(Config{Epochs: 3, RNG: tensor.NewRand(1), Hooks: []Hook{h}},
		f.spec(NewIndexBatches(idx, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.batches) != 9 { // 3 batches x 3 epochs
		t.Errorf("OnBatch fired %d times, want 9", len(h.batches))
	}
	if len(h.epochs) != 3 {
		t.Fatalf("OnEpoch fired %d times, want 3", len(h.epochs))
	}
	if !h.epochs[0].Improved || !h.epochs[1].Improved || h.epochs[2].Improved {
		t.Errorf("Improved flags: %+v", h.epochs)
	}
	if h.epochs[2].Best != 0.7 || h.epochs[2].ValAcc != 0.6 {
		t.Errorf("epoch 2 payload: %+v", h.epochs[2])
	}
}

func TestConfigValidation(t *testing.T) {
	f := newFakeModel(0.5)
	if _, err := Run(Config{Epochs: 0}, f.spec(FullBatch{})); err == nil {
		t.Error("epochs=0 must error")
	}
	if _, err := Run(Config{Epochs: 1}, Spec{}); err == nil {
		t.Error("empty spec must error")
	}
	spec := f.spec(FullBatch{})
	spec.Params = nil
	if _, err := Run(Config{Epochs: 1, RestoreBest: true}, spec); err == nil {
		t.Error("RestoreBest without params must error")
	}
}

func TestStepErrorAborts(t *testing.T) {
	f := newFakeModel(0.5)
	f.stepErr = errors.New("boom")
	rep, err := Run(Config{Epochs: 3}, f.spec(FullBatch{}))
	if err == nil || rep != nil {
		t.Errorf("step error must abort with nil report, got rep=%v err=%v", rep, err)
	}
}
