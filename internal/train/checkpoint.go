package train

import (
	"encoding"
	"fmt"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/nn"
	"scalegnn/internal/obs"
	"scalegnn/internal/tensor"
)

// CheckpointConfig enables durable snapshot/resume for a run. The zero
// value (empty Dir) disables checkpointing entirely; nothing below is
// touched and the hot path is unchanged.
type CheckpointConfig struct {
	// Dir is the snapshot directory (created if missing). Empty disables.
	Dir string
	// Every snapshots after every N completed epochs; <= 0 means 1. The
	// final epoch, an early stop, and a context cancellation always
	// snapshot regardless of cadence.
	Every int
	// Resume loads the newest usable snapshot from Dir before training,
	// restoring parameters, optimizer moments, early-stopping state, and
	// the RNG so the continued run is bitwise-identical to an
	// uninterrupted one. An empty Dir'ful of no snapshots is a fresh
	// start, not an error.
	Resume bool
	// KeepLast bounds retained snapshots; <= 0 means 2 (latest + one
	// fallback for corruption recovery).
	KeepLast int
	// Fingerprint identifies the run (model + graph + config hash, see
	// ckpt.Fingerprint). Resume rejects snapshots from a different run.
	Fingerprint uint64
	// RNG is the concrete serializable source behind Config.RNG (e.g.
	// *rand.PCG from tensor.NewPCG). Required: Config.RNG alone cannot be
	// marshaled, and restoring the source restores every rand.Rand view
	// of it at once.
	RNG RNGState
	// Aux, when non-nil, is subsystem state that must travel with the
	// training cursor: it is marshaled into every snapshot and restored on
	// resume before training continues (the distributed runtime uses it to
	// carry its exchange-round counter). Resuming with Aux set from a
	// snapshot written without auxiliary state is an error — the subsystem
	// would silently restart from its zero state while the cursor moved.
	Aux AuxState
}

// AuxState is the serializable auxiliary state a snapshot can carry on
// behalf of a subsystem riding along with the run (same contract as
// RNGState).
type AuxState interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// RNGState is the serializable random source a checkpointed run must
// expose; *math/rand/v2.PCG satisfies it.
type RNGState interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// OptimizerStateOf is the optimizer-side contract for checkpointing: export
// and restore the per-parameter moment state and step counter.
// *nn.AdamOf[T] implements it.
type OptimizerStateOf[T tensor.Elem] interface {
	ExportMoments(params []*nn.ParamOf[T]) (step int, moments []*tensor.Mat[T])
	ImportMoments(params []*nn.ParamOf[T], step int, moments []*tensor.Mat[T]) error
}

// OptimizerState is the float64 instantiation of OptimizerStateOf.
type OptimizerState = OptimizerStateOf[float64]

// blockOf wraps a tensor's backing slice as a dtype-tagged checkpoint
// block without copying: float64 data becomes a Float64 block, float32 a
// Float32 block.
func blockOf[T tensor.Elem](name string, rows, cols int, data []T) ckpt.Block {
	switch d := any(data).(type) {
	case []float64:
		return ckpt.Block{Name: name, Dtype: ckpt.Float64, Rows: rows, Cols: cols, Data: d}
	case []float32:
		return ckpt.Block{Name: name, Dtype: ckpt.Float32, Rows: rows, Cols: cols, Data32: d}
	default:
		panic("train: unsupported block element type")
	}
}

// blockData returns a block's payload as []T, converting across dtypes when
// the snapshot was written at a different precision (e.g. a pre-dtype v1
// snapshot read back into a float64 run returns its payload uncopied).
func blockData[T tensor.Elem](b ckpt.Block) []T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(b.Float32()).([]T)
	default:
		return any(b.Float64()).([]T)
	}
}

// ckptRunner glues a run to its ckpt.Manager: it captures the pre-shuffle
// RNG state each epoch (so a mid-epoch snapshot can re-derive the
// permutation by replaying Shuffle), assembles Snapshots from the live
// Spec, and restores them on resume.
type ckptRunner[T tensor.Elem] struct {
	mgr      *ckpt.Manager
	spec     *SpecOf[T]
	rng      RNGState
	aux      AuxState
	fp       uint64
	every    int
	epochRNG []byte // RNG state captured just before the current epoch's shuffle
	midRNG   []byte // mid-epoch cursor state awaiting replay, nil otherwise
}

func newCkptRunner[T tensor.Elem](cfg *Config, spec *SpecOf[T]) (*ckptRunner[T], error) {
	c := cfg.Checkpoint
	if len(spec.Params) == 0 {
		return nil, fmt.Errorf("train: checkpointing needs Spec.Params")
	}
	if spec.Optimizer == nil {
		return nil, fmt.Errorf("train: checkpointing needs Spec.Optimizer")
	}
	if c.RNG == nil {
		return nil, fmt.Errorf("train: checkpointing needs Checkpoint.RNG (the serializable source behind Config.RNG)")
	}
	every := c.Every
	if every <= 0 {
		every = 1
	}
	mgr, err := ckpt.NewManager(c.Dir, c.KeepLast)
	if err != nil {
		return nil, err
	}
	return &ckptRunner[T]{mgr: mgr, spec: spec, rng: c.RNG, aux: c.Aux, fp: c.Fingerprint, every: every}, nil
}

// beginEpoch records the RNG state before the epoch's shuffle consumes it.
func (c *ckptRunner[T]) beginEpoch() error {
	state, err := c.rng.MarshalBinary()
	if err != nil {
		return fmt.Errorf("train: marshal rng: %w", err)
	}
	c.epochRNG = state
	return nil
}

// boundary reports whether epoch (0-based, just completed) is a snapshot
// point: the cadence hit, the final epoch, or an early stop.
func (c *ckptRunner[T]) boundary(epoch, maxEpochs int, stop bool) bool {
	return stop || (epoch+1)%c.every == 0 || epoch == maxEpochs-1
}

// save durably writes the snapshot for the cursor (epoch, batch); batch
// is -1 at epoch boundaries, otherwise the next batch index to run.
func (c *ckptRunner[T]) save(epoch, batch int, stopper *earlyStop, rep *Report, best snapshotOf[T]) error {
	sp := obs.Start("ckpt.save")
	defer sp.End()
	rngState, err := c.rng.MarshalBinary()
	if err != nil {
		return fmt.Errorf("train: marshal rng: %w", err)
	}
	var auxState []byte
	if c.aux != nil {
		if auxState, err = c.aux.MarshalBinary(); err != nil {
			return fmt.Errorf("train: marshal aux state: %w", err)
		}
	}
	step, moments := c.spec.Optimizer.ExportMoments(c.spec.Params)
	s := &ckpt.Snapshot{
		Fingerprint:    c.fp,
		Epoch:          epoch,
		Batch:          batch,
		OptStep:        step,
		BestEpoch:      rep.BestEpoch,
		PatienceAnchor: stopper.bestAt,
		BestVal:        stopper.best,
		RNG:            rngState,
		RNGEpoch:       c.epochRNG,
		Aux:            auxState,
	}
	nb := 2*len(c.spec.Params) + len(moments)/2 + len(best)
	s.Blocks = make([]ckpt.Block, 0, nb)
	for i, p := range c.spec.Params {
		s.Blocks = append(s.Blocks, blockOf(
			fmt.Sprintf("param.%d", i), p.Value.Rows, p.Value.Cols, p.Value.Data))
	}
	for i, m := range moments {
		s.Blocks = append(s.Blocks, blockOf(
			fmt.Sprintf("moment.%d", i), m.Rows, m.Cols, m.Data))
	}
	for i, data := range best {
		p := c.spec.Params[i].Value
		s.Blocks = append(s.Blocks, blockOf(
			fmt.Sprintf("best.%d", i), p.Rows, p.Cols, data))
	}
	if _, err := c.mgr.Save(s); err != nil {
		return fmt.Errorf("train: checkpoint save (epoch %d batch %d): %w", epoch, batch, err)
	}
	sp.SetCount(int64(len(s.Blocks)))
	return nil
}

// resume loads the newest usable snapshot and restores parameters,
// optimizer moments, early-stopping state, and the report. It returns the
// snapshot (nil for a fresh start) plus the restored best-weights copy.
// RNG restoration is left to Run: a boundary snapshot restores s.RNG
// directly, a mid-epoch one (s.Batch >= 0) restores s.RNGEpoch, replays
// Shuffle to re-derive the permutation, then restores s.RNG via
// replayedShuffle.
func (c *ckptRunner[T]) resume(stopper *earlyStop, rep *Report) (*ckpt.Snapshot, snapshotOf[T], error) {
	s, path, err := c.mgr.Latest(c.fp)
	if err != nil || s == nil {
		return nil, nil, err
	}
	if c.aux != nil {
		if len(s.Aux) == 0 {
			return nil, nil, fmt.Errorf("train: resume %s: snapshot carries no auxiliary state but Checkpoint.Aux is set (snapshot from a run without the subsystem?)", path)
		}
		if err := c.aux.UnmarshalBinary(s.Aux); err != nil {
			return nil, nil, fmt.Errorf("train: resume %s: restore aux state: %w", path, err)
		}
	}
	blocks := make(map[string]ckpt.Block, len(s.Blocks))
	for _, b := range s.Blocks {
		blocks[b.Name] = b
	}
	block := func(name string, want *tensor.Mat[T]) (ckpt.Block, error) {
		b, ok := blocks[name]
		if !ok {
			return b, fmt.Errorf("train: resume %s: snapshot has no block %q", path, name)
		}
		if b.Rows != want.Rows || b.Cols != want.Cols {
			return b, fmt.Errorf("train: resume %s: block %q is %dx%d, model wants %dx%d",
				path, name, b.Rows, b.Cols, want.Rows, want.Cols)
		}
		return b, nil
	}
	moments := make([]*tensor.Mat[T], 0, 2*len(c.spec.Params))
	var best snapshotOf[T]
	for i, p := range c.spec.Params {
		pb, err := block(fmt.Sprintf("param.%d", i), p.Value)
		if err != nil {
			return nil, nil, err
		}
		copy(p.Value.Data, blockData[T](pb))
		for _, half := range []int{2 * i, 2*i + 1} {
			mb, err := block(fmt.Sprintf("moment.%d", half), p.Value)
			if err != nil {
				return nil, nil, err
			}
			moments = append(moments, tensor.FromSlice(mb.Rows, mb.Cols, blockData[T](mb)))
		}
		if bb, ok := blocks[fmt.Sprintf("best.%d", i)]; ok {
			if best == nil {
				best = make(snapshotOf[T], len(c.spec.Params))
			}
			if bb.Len() != len(p.Value.Data) {
				return nil, nil, fmt.Errorf("train: resume %s: best.%d has %d values, want %d",
					path, i, bb.Len(), len(p.Value.Data))
			}
			best[i] = blockData[T](bb)
		}
	}
	if best != nil {
		for i := range best {
			if best[i] == nil {
				return nil, nil, fmt.Errorf("train: resume %s: best-weights blocks are incomplete", path)
			}
		}
	}
	if err := c.spec.Optimizer.ImportMoments(c.spec.Params, s.OptStep, moments); err != nil {
		return nil, nil, fmt.Errorf("train: resume %s: %w", path, err)
	}
	stopper.best = s.BestVal
	stopper.bestAt = s.PatienceAnchor
	rep.BestVal = s.BestVal
	rep.BestEpoch = s.BestEpoch
	rep.Epochs = s.Epoch
	c.epochRNG = s.RNGEpoch
	if s.Batch >= 0 {
		c.midRNG = s.RNG
		if err := c.setRNG(s.RNGEpoch); err != nil {
			return nil, nil, err
		}
	} else if err := c.setRNG(s.RNG); err != nil {
		return nil, nil, err
	}
	return s, best, nil
}

// replayedShuffle finishes a mid-epoch resume after Run has re-derived the
// permutation: the RNG jumps from the pre-shuffle state to the exact
// mid-epoch cursor state.
func (c *ckptRunner[T]) replayedShuffle() error {
	err := c.setRNG(c.midRNG)
	c.midRNG = nil
	return err
}

func (c *ckptRunner[T]) setRNG(state []byte) error {
	if err := c.rng.UnmarshalBinary(state); err != nil {
		return fmt.Errorf("train: restore rng: %w", err)
	}
	return nil
}
