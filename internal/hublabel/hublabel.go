// Package hublabel implements 2-hop hub labeling for exact shortest-path
// distance queries via pruned landmark labeling (Akiba, Iwata, Yoshida).
// Tutorial §3.2.2 covers its GNN uses: CFGNN derives a core-fringe
// hierarchy from hub labels, and DHIL-GT uses labels for fast shortest-path
// distance bias queries inside graph Transformers — both need
// exact distances at query rates a per-pair BFS cannot sustain.
//
// The index assigns each node u a label L(u): a list of (hub, dist) pairs
// such that for every pair (s, t), some hub on a shortest s-t path appears
// in both labels. Queries are then a sorted-list merge:
//
//	d(s, t) = min over h in L(s) ∩ L(t) of dist_s(h) + dist_t(h)
//
// Pruned BFS keeps labels small: processing landmarks in descending degree
// order, a BFS from landmark v prunes at any node u whose distance is
// already covered by previously inserted labels.
package hublabel

import (
	"fmt"
	"math"
	"sort"

	"scalegnn/internal/graph"
)

// Infinity is returned by Query for disconnected pairs.
const Infinity = math.MaxInt32

// labelEntry is one (hub, distance) pair; hubs are stored by rank (position
// in the landmark order) so that labels are naturally sorted for merging.
type labelEntry struct {
	hubRank int32
	dist    int32
}

// Index is a built hub-label index.
type Index struct {
	n      int
	order  []int32 // rank -> node
	labels [][]labelEntry
}

// Build constructs the index with pruned BFS from every node in descending
// degree order (the standard landmark ordering: high-degree hubs cover the
// most shortest paths and keep labels short).
func Build(g *graph.CSR) (*Index, error) {
	if g.N == 0 {
		return nil, fmt.Errorf("hublabel: empty graph")
	}
	n := g.N
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(int(order[i])), g.Degree(int(order[j]))
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	ix := &Index{n: n, order: order, labels: make([][]labelEntry, n)}

	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	// rootDist[rank'] caches the root's distance to hub rank' during one
	// BFS, turning the prune query into a single scan of u's label — the
	// standard pruned-landmark-labeling optimization.
	rootDist := make([]int32, n)
	for i := range rootDist {
		rootDist[i] = -1
	}
	var frontier, next, touched []int32
	for rank := 0; rank < n; rank++ {
		root := order[rank]
		for _, e := range ix.labels[root] {
			rootDist[e.hubRank] = e.dist
		}
		frontier = append(frontier[:0], root)
		dist[root] = 0
		touched = append(touched[:0], root)
		for d := int32(0); len(frontier) > 0; d++ {
			next = next[:0]
			for _, u := range frontier {
				// Prune: if existing labels already certify d(root,u) <= d,
				// no new label is needed and the BFS need not expand u.
				if ix.prunedQuery(rootDist, int(u), d) {
					continue
				}
				ix.labels[u] = append(ix.labels[u], labelEntry{hubRank: int32(rank), dist: d})
				for _, v := range g.Neighbors(int(u)) {
					if dist[v] == -1 {
						dist[v] = d + 1
						next = append(next, v)
						touched = append(touched, v)
					}
				}
			}
			frontier, next = next, frontier
		}
		for _, u := range touched {
			dist[u] = -1
		}
		for _, e := range ix.labels[root] {
			rootDist[e.hubRank] = -1
		}
	}
	return ix, nil
}

// prunedQuery reports whether existing labels certify
// d(root, u) <= d, given the root's label scattered into rootDist.
func (ix *Index) prunedQuery(rootDist []int32, u int, d int32) bool {
	for _, e := range ix.labels[u] {
		if rd := rootDist[e.hubRank]; rd >= 0 && rd+e.dist <= d {
			return true
		}
	}
	return false
}

func (ix *Index) mergeQuery(la, lb []labelEntry) int {
	best := Infinity
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i].hubRank == lb[j].hubRank:
			if d := int(la[i].dist) + int(lb[j].dist); d < best {
				best = d
			}
			i++
			j++
		case la[i].hubRank < lb[j].hubRank:
			i++
		default:
			j++
		}
	}
	return best
}

// Query returns the exact shortest-path distance between s and t, or
// Infinity when they are disconnected.
func (ix *Index) Query(s, t int) (int, error) {
	if s < 0 || s >= ix.n || t < 0 || t >= ix.n {
		return 0, fmt.Errorf("hublabel: query (%d,%d) out of range [0,%d)", s, t, ix.n)
	}
	if s == t {
		return 0, nil
	}
	return ix.mergeQuery(ix.labels[s], ix.labels[t]), nil
}

// LabelSize returns the number of label entries of node u.
func (ix *Index) LabelSize(u int) int { return len(ix.labels[u]) }

// TotalEntries returns the total label entries across all nodes — the index
// size measure reported in the E7 experiment.
func (ix *Index) TotalEntries() int {
	total := 0
	for _, l := range ix.labels {
		total += len(l)
	}
	return total
}

// AvgLabelSize returns the mean label entries per node.
func (ix *Index) AvgLabelSize() float64 {
	if ix.n == 0 {
		return 0
	}
	return float64(ix.TotalEntries()) / float64(ix.n)
}

// CoreNodes returns the nodes whose label size is at most the given
// quantile q of all label sizes — small labels mean the node is itself a
// well-placed hub. This is the core/fringe split CFGNN derives from hub
// labels: hubs ("core") get distinctive treatment, the rest ("fringe")
// follow standard convolution. A node is core if its rank in the landmark
// order falls in the first q fraction.
func (ix *Index) CoreNodes(q float64) []int {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	k := int(q * float64(ix.n))
	core := make([]int, 0, k)
	for rank := 0; rank < k; rank++ {
		core = append(core, int(ix.order[rank]))
	}
	sort.Ints(core)
	return core
}

// DistanceMatrix materializes pairwise distances among the given nodes
// (DHIL-GT's SPD bias for a Transformer attention block over a node batch).
// Entry (i, j) is the hop distance between nodes[i] and nodes[j], or
// Infinity when disconnected.
func (ix *Index) DistanceMatrix(nodes []int) ([][]int, error) {
	out := make([][]int, len(nodes))
	for i := range nodes {
		out[i] = make([]int, len(nodes))
		for j := range nodes {
			if i == j {
				continue
			}
			d, err := ix.Query(nodes[i], nodes[j])
			if err != nil {
				return nil, err
			}
			out[i][j] = d
		}
	}
	return out, nil
}
