package hublabel

import (
	"testing"
	"testing/quick"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func TestQueryMatchesBFSOnRandomGraphs(t *testing.T) {
	rng := tensor.NewRand(1)
	for trial := 0; trial < 5; trial++ {
		g := graph.ErdosRenyi(60, 120, rng)
		ix, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < g.N; s += 7 {
			bfs := g.BFSDistances(s)
			for v := 0; v < g.N; v++ {
				got, err := ix.Query(s, v)
				if err != nil {
					t.Fatal(err)
				}
				want := bfs[v]
				if want == -1 {
					if got != Infinity {
						t.Fatalf("trial %d: d(%d,%d) = %d, want Infinity", trial, s, v, got)
					}
					continue
				}
				if got != want {
					t.Fatalf("trial %d: d(%d,%d) = %d, BFS = %d", trial, s, v, got, want)
				}
			}
		}
	}
}

func TestQueryExactProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRand(uint64(seed) + 500)
		g := graph.BarabasiAlbert(40, 2, rng)
		ix, err := Build(g)
		if err != nil {
			return false
		}
		s := int(seed) % g.N
		bfs := g.BFSDistances(s)
		for v := 0; v < g.N; v++ {
			got, err := ix.Query(s, v)
			if err != nil || got != bfs[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestGridDistances(t *testing.T) {
	g := graph.Grid(6, 7)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	// Manhattan distance on a grid.
	id := func(r, c int) int { return r*7 + c }
	d, err := ix.Query(id(0, 0), id(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if d != 11 {
		t.Errorf("corner-to-corner = %d, want 11", d)
	}
}

func TestSelfDistanceZero(t *testing.T) {
	g := graph.Path(5)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if d, _ := ix.Query(v, v); d != 0 {
			t.Errorf("d(%d,%d) = %d", v, v, d)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	g := graph.Path(3)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(-1, 0); err == nil {
		t.Error("negative source should error")
	}
	if _, err := ix.Query(0, 3); err == nil {
		t.Error("out-of-range target should error")
	}
}

func TestBuildEmptyGraphErrors(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g); err == nil {
		t.Error("empty graph should error")
	}
}

func TestPruningKeepsLabelsSmall(t *testing.T) {
	// On a star, the hub covers every shortest path: labels should be O(1)
	// per node, not O(n).
	g := graph.Star(100)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if avg := ix.AvgLabelSize(); avg > 3 {
		t.Errorf("star avg label size %v; pruning ineffective", avg)
	}
	// And on a BA graph labels should stay far below n.
	rng := tensor.NewRand(2)
	ba := graph.BarabasiAlbert(500, 3, rng)
	ix2, err := Build(ba)
	if err != nil {
		t.Fatal(err)
	}
	if avg := ix2.AvgLabelSize(); avg > float64(ba.N)/4 {
		t.Errorf("BA avg label size %v too close to n=%d", avg, ba.N)
	}
}

func TestCoreNodesAreHighDegree(t *testing.T) {
	rng := tensor.NewRand(3)
	g := graph.BarabasiAlbert(200, 3, rng)
	core := NewMust(t, g).CoreNodes(0.05)
	if len(core) != 10 {
		t.Fatalf("core size = %d, want 10", len(core))
	}
	// Every core node must have degree >= the median degree.
	degs := g.Degrees()
	sorted := append([]int(nil), degs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	median := sorted[len(sorted)/2]
	for _, u := range core {
		if degs[u] < median {
			t.Errorf("core node %d has degree %d < median %d", u, degs[u], median)
		}
	}
}

// NewMust builds an index or fails the test.
func NewMust(t *testing.T, g *graph.CSR) *Index {
	t.Helper()
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestDistanceMatrix(t *testing.T) {
	g := graph.Path(6)
	ix := NewMust(t, g)
	m, err := ix.DistanceMatrix([]int{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2, 5}, {2, 0, 3}, {5, 3, 0}}
	for i := range want {
		for j := range want[i] {
			if m[i][j] != want[i][j] {
				t.Errorf("m[%d][%d] = %d, want %d", i, j, m[i][j], want[i][j])
			}
		}
	}
}

func TestCoreNodesBounds(t *testing.T) {
	g := graph.Path(10)
	ix := NewMust(t, g)
	if len(ix.CoreNodes(-0.5)) != 0 {
		t.Error("negative quantile should give empty core")
	}
	if len(ix.CoreNodes(2)) != 10 {
		t.Error("quantile > 1 should give all nodes")
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(2000, 4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryVsBFS(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(5000, 4, rng)
	ix, err := Build(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hublabel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Query(i%g.N, (i*7919)%g.N); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.BFSDistances(i % g.N)
		}
	})
}
