package models

import (
	"fmt"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// GCNConvOf is one graph-convolution layer y = Lin(Â x): propagation
// followed by a dense transform. Backward exploits the symmetry of Â
// (undirected graphs): ∂L/∂x = Â · Lin.Backward(g). Propagation buffers are
// recycled through the shared tensor workspace under the nn.Layer lifetime
// contract.
type GCNConvOf[T tensor.Elem] struct {
	Op  *graph.OperatorOf[T]
	Lin *nn.LinearOf[T]

	px, gx tensor.BufOf[T]
}

// GCNConv is the float64 instantiation of GCNConvOf.
type GCNConv = GCNConvOf[float64]

// Forward propagates then transforms.
func (c *GCNConvOf[T]) Forward(x *tensor.Mat[T], training bool) *tensor.Mat[T] {
	px := c.px.Next(x.Rows, x.Cols)
	c.Op.ApplyInto(x, px)
	return c.Lin.Forward(px, training)
}

// Backward transforms the gradient then propagates it back through Â.
func (c *GCNConvOf[T]) Backward(gradOut *tensor.Mat[T]) *tensor.Mat[T] {
	g := c.Lin.Backward(gradOut)
	gx := c.gx.Next(g.Rows, g.Cols)
	c.Op.ApplyInto(g, gx)
	return gx
}

// Params returns the dense transform's parameters.
func (c *GCNConvOf[T]) Params() []*nn.ParamOf[T] { return c.Lin.Params() }

var (
	_ nn.Layer            = (*GCNConv)(nil)
	_ nn.LayerOf[float32] = (*GCNConvOf[float32])(nil)
)

// GCN is the canonical full-batch graph convolutional network — the
// baseline whose full-graph activations are the scalability bottleneck the
// rest of the library works around.
type GCN struct {
	Layers int

	net   *nn.Sequential            // float64 tier
	net32 *nn.SequentialOf[float32] // float32 tier
	x32   *tensor.Mat[float32]      // narrowed features the float32 net was fit on
}

// NewGCN constructs a GCN with the given number of convolution layers
// (>= 1; 2 is the classic configuration).
func NewGCN(layers int) (*GCN, error) {
	if layers < 1 {
		return nil, fmt.Errorf("models: GCN needs >= 1 layer, got %d", layers)
	}
	return &GCN{Layers: layers}, nil
}

// Name implements Trainer.
func (m *GCN) Name() string { return fmt.Sprintf("GCN-%dL", m.Layers) }

// Fit trains full-batch with Adam on the training mask, at the tier
// selected by cfg.DType.
func (m *GCN) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return fitGCN[float32](m, ds, cfg)
	}
	return fitGCN[float64](m, ds, cfg)
}

// gcnNet returns the pointer to the dtype-matching trained-network field.
func gcnNet[T tensor.Elem](m *GCN) **nn.SequentialOf[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(&m.net32).(**nn.SequentialOf[T])
	}
	return any(&m.net).(**nn.SequentialOf[T])
}

func fitGCN[T tensor.Elem](m *GCN, ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	pcg, rng := newRunRNG(cfg.Seed)
	op := graph.NewOperatorOf[T](ds.G, graph.NormSymmetric, true)
	x := tensor.FromFloat64[T](ds.X)

	var layers []nn.LayerOf[T]
	in := ds.X.Cols
	for l := 0; l < m.Layers; l++ {
		out := cfg.Hidden
		if l == m.Layers-1 {
			out = ds.NumClasses
		}
		if cfg.Dropout > 0 {
			layers = append(layers, nn.NewDropoutOf[T](cfg.Dropout, rng))
		}
		layers = append(layers, &GCNConvOf[T]{Op: op, Lin: nn.NewLinearOf[T](in, out, true, rng)})
		if l != m.Layers-1 {
			layers = append(layers, nn.NewReLUOf[T]())
		}
		in = out
	}
	net := nn.NewSequentialOf(layers...)
	m.net, m.net32, m.x32 = nil, nil, nil // a refit at either tier invalidates both
	*gcnNet[T](m) = net
	if x32, ok := any(x).(*tensor.Mat[float32]); ok {
		m.x32 = x32
	}
	opt := nn.NewAdamOf[T](cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	rep := &Report{Model: m.Name()}
	defer opt.Reset()
	err := runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.SpecOf[T]{
		Source: train.FullBatchOf[T]{},
		Step: func(train.BatchOf[T]) error {
			logits := net.Forward(x, true)
			_, grad := maskedLoss(logits, ds.Labels, ds.TrainIdx)
			net.Backward(grad)
			tensor.PutBufOf(grad)
			opt.Step(net.Params())
			return nil
		},
		Validate: func() (float64, error) {
			return accuracyAt(net.Forward(x, false), ds.Labels, ds.ValIdx), nil
		},
		Params:    net.Params(),
		Optimizer: opt,
		// Full-batch resident floats: every layer's activations plus
		// gradients over all n nodes — the term that scales with graph size.
		PeakFloats: func() int {
			n := ds.G.N
			return 2*n*(ds.X.Cols+(m.Layers-1)*cfg.Hidden+ds.NumClasses) + net.NumParams()*3
		},
	})
	if err != nil {
		return nil, err
	}

	logits := net.Forward(x, false)
	fillAccuracies(func(idx []int) []int {
		return nn.Argmax(logits.SelectRows(idx))
	}, ds, rep)
	return rep, nil
}

// Predict implements Trainer.
func (m *GCN) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net32 != nil {
		x := m.x32
		if x == nil || x.Rows != ds.G.N {
			x = tensor.FromFloat64[float32](ds.X)
		}
		return nn.Argmax(m.net32.Forward(x, false)), nil
	}
	if m.net == nil {
		return nil, fmt.Errorf("models: GCN.Predict before Fit")
	}
	return nn.Argmax(m.net.Forward(ds.X, false)), nil
}
