package models

import (
	"fmt"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// GCNConv is one graph-convolution layer y = Lin(Â x): propagation followed
// by a dense transform. Backward exploits the symmetry of Â (undirected
// graphs): ∂L/∂x = Â · Lin.Backward(g). Propagation buffers are recycled
// through the shared tensor workspace under the nn.Layer lifetime contract.
type GCNConv struct {
	Op  *graph.Operator
	Lin *nn.Linear

	px, gx tensor.Buf
}

// Forward propagates then transforms.
func (c *GCNConv) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	px := c.px.Next(x.Rows, x.Cols)
	c.Op.ApplyInto(x, px)
	return c.Lin.Forward(px, training)
}

// Backward transforms the gradient then propagates it back through Â.
func (c *GCNConv) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g := c.Lin.Backward(gradOut)
	gx := c.gx.Next(g.Rows, g.Cols)
	c.Op.ApplyInto(g, gx)
	return gx
}

// Params returns the dense transform's parameters.
func (c *GCNConv) Params() []*nn.Param { return c.Lin.Params() }

var _ nn.Layer = (*GCNConv)(nil)

// GCN is the canonical full-batch graph convolutional network — the
// baseline whose full-graph activations are the scalability bottleneck the
// rest of the library works around.
type GCN struct {
	Layers int

	net *nn.Sequential
}

// NewGCN constructs a GCN with the given number of convolution layers
// (>= 1; 2 is the classic configuration).
func NewGCN(layers int) (*GCN, error) {
	if layers < 1 {
		return nil, fmt.Errorf("models: GCN needs >= 1 layer, got %d", layers)
	}
	return &GCN{Layers: layers}, nil
}

// Name implements Trainer.
func (m *GCN) Name() string { return fmt.Sprintf("GCN-%dL", m.Layers) }

// Fit trains full-batch with Adam on the training mask.
func (m *GCN) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pcg, rng := newRunRNG(cfg.Seed)
	op := graph.NewOperator(ds.G, graph.NormSymmetric, true)

	var layers []nn.Layer
	in := ds.X.Cols
	for l := 0; l < m.Layers; l++ {
		out := cfg.Hidden
		if l == m.Layers-1 {
			out = ds.NumClasses
		}
		if cfg.Dropout > 0 {
			layers = append(layers, nn.NewDropout(cfg.Dropout, rng))
		}
		layers = append(layers, &GCNConv{Op: op, Lin: nn.NewLinear(in, out, true, rng)})
		if l != m.Layers-1 {
			layers = append(layers, nn.NewReLU())
		}
		in = out
	}
	m.net = nn.NewSequential(layers...)
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	rep := &Report{Model: m.Name()}
	defer opt.Reset()
	err := runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.Spec{
		Source: train.FullBatch{},
		Step: func(train.Batch) error {
			logits := m.net.Forward(ds.X, true)
			_, grad := maskedLoss(logits, ds.Labels, ds.TrainIdx)
			m.net.Backward(grad)
			tensor.PutBuf(grad)
			opt.Step(m.net.Params())
			return nil
		},
		Validate: func() (float64, error) {
			return accuracyAt(m.net.Forward(ds.X, false), ds.Labels, ds.ValIdx), nil
		},
		Params:    m.net.Params(),
		Optimizer: opt,
		// Full-batch resident floats: every layer's activations plus
		// gradients over all n nodes — the term that scales with graph size.
		PeakFloats: func() int {
			n := ds.G.N
			return 2*n*(ds.X.Cols+(m.Layers-1)*cfg.Hidden+ds.NumClasses) + m.net.NumParams()*3
		},
	})
	if err != nil {
		return nil, err
	}

	logits := m.net.Forward(ds.X, false)
	fillAccuracies(func(idx []int) []int {
		return nn.Argmax(logits.SelectRows(idx))
	}, ds, rep)
	return rep, nil
}

// Predict implements Trainer.
func (m *GCN) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net == nil {
		return nil, fmt.Errorf("models: GCN.Predict before Fit")
	}
	return nn.Argmax(m.net.Forward(ds.X, false)), nil
}
