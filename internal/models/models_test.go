package models

import (
	"testing"

	"scalegnn/internal/dataset"
	"scalegnn/internal/obs"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// smallTask returns a small, easy homophilous task every model should ace.
func smallTask(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 600, Classes: 3, AvgDegree: 10, Homophily: 0.85,
		FeatureDim: 16, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// heteroTask returns a heterophilous task (low-pass hostile).
func heteroTask(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 600, Classes: 3, AvgDegree: 10, Homophily: 0.1,
		FeatureDim: 16, NoiseStd: 1.5, TrainFrac: 0.5, ValFrac: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func quickCfg() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 60
	cfg.Patience = 20
	return cfg
}

// fitAndCheck trains a model and asserts it clearly beats chance (1/3).
func fitAndCheck(t *testing.T, m Trainer, ds *dataset.Dataset, minAcc float64) *Report {
	t.Helper()
	rep, err := m.Fit(ds, quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	if rep.TestAcc < minAcc {
		t.Errorf("%s: test accuracy %.3f below %.3f", m.Name(), rep.TestAcc, minAcc)
	}
	if rep.Epochs == 0 || rep.EpochTime <= 0 {
		t.Errorf("%s: bad timing report %+v", m.Name(), rep)
	}
	if rep.PeakFloats <= 0 {
		t.Errorf("%s: peak floats not reported", m.Name())
	}
	pred, err := m.Predict(ds)
	if err != nil {
		t.Fatalf("%s: Predict: %v", m.Name(), err)
	}
	if len(pred) != ds.G.N {
		t.Errorf("%s: Predict returned %d values", m.Name(), len(pred))
	}
	return rep
}

func TestGCNLearns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewGCN(2)
	if err != nil {
		t.Fatal(err)
	}
	fitAndCheck(t, m, ds, 0.7)
}

func TestSGCLearns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	rep := fitAndCheck(t, m, ds, 0.7)
	if rep.Precompute <= 0 {
		t.Error("SGC should report precompute time")
	}
}

func TestSIGNLearns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewSIGN(3)
	if err != nil {
		t.Fatal(err)
	}
	fitAndCheck(t, m, ds, 0.7)
}

func TestAPPNPLearns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewAPPNP(8, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	fitAndCheck(t, m, ds, 0.7)
}

func TestGAMLPLearns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewGAMLP(3)
	if err != nil {
		t.Fatal(err)
	}
	fitAndCheck(t, m, ds, 0.7)
	att := m.HopAttention()
	var sum float64
	for _, a := range att {
		if a < 0 {
			t.Error("negative attention weight")
		}
		sum += a
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("attention sums to %v", sum)
	}
}

func TestLD2Learns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewLD2(2)
	if err != nil {
		t.Fatal(err)
	}
	fitAndCheck(t, m, ds, 0.7)
}

func TestSAGELearns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewGraphSAGE(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	fitAndCheck(t, m, ds, 0.65)
}

func TestClusterGCNLearns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewClusterGCN(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	fitAndCheck(t, m, ds, 0.65)
}

func TestImplicitLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("implicit fixed-point training is minutes-slow under -race; run without -short")
	}
	ds := smallTask(t)
	m, err := NewImplicitNet(0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Epochs = 40
	rep, err := m.Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestAcc < 0.6 {
		t.Errorf("implicit test accuracy %.3f", rep.TestAcc)
	}
}

// TestLD2BeatsSGCOnHeterophily is E5's core claim at test scale: on a
// heterophilous graph the multi-filter model must beat the pure low-pass
// model.
func TestLD2BeatsSGCOnHeterophily(t *testing.T) {
	ds := heteroTask(t)
	sgc, err := NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	ld2, err := NewLD2(2)
	if err != nil {
		t.Fatal(err)
	}
	repSGC, err := sgc.Fit(ds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	repLD2, err := ld2.Fit(ds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if repLD2.TestAcc <= repSGC.TestAcc {
		t.Errorf("LD2 %.3f not above SGC %.3f on heterophilous graph",
			repLD2.TestAcc, repSGC.TestAcc)
	}
}

// TestDecoupledPeakMemoryBelowGCN is E2's memory claim: mini-batch
// decoupled training must hold far fewer resident floats than full-batch
// GCN on the same task.
func TestDecoupledPeakMemoryBelowGCN(t *testing.T) {
	ds := smallTask(t)
	gcn, _ := NewGCN(2)
	sgc, _ := NewSGC(2)
	cfg := quickCfg()
	cfg.Epochs = 5
	cfg.Patience = 0
	cfg.BatchSize = 64
	repG, err := gcn.Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := sgc.Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repS.PeakFloats >= repG.PeakFloats {
		t.Errorf("SGC peak floats %d not below GCN %d", repS.PeakFloats, repG.PeakFloats)
	}
}

// TestWorkspacePoolHitRateSteadyState pins the allocation-free hot-path
// claim with the new pool counters: after the first epoch warms the
// workspace, steady-state GCN training must serve most Get calls from the
// pool rather than allocating.
func TestWorkspacePoolHitRateSteadyState(t *testing.T) {
	ds := smallTask(t)
	reg := obs.NewRegistry()
	tensor.EnablePoolMetrics(reg)
	defer tensor.EnablePoolMetrics(nil)

	m, err := NewGCN(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Epochs = 10
	cfg.Patience = 0
	if _, err := m.Fit(ds, cfg); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	hits, misses := snap["tensor.pool_hits"], snap["tensor.pool_misses"]
	if hits <= 0 {
		t.Fatalf("no pool hits recorded (misses=%v) — counters not wired or pool never reused", misses)
	}
	if rate := hits / (hits + misses); rate < 0.5 {
		t.Errorf("pool hit rate %.3f (hits=%v misses=%v); steady-state training should mostly reuse buffers",
			rate, hits, misses)
	}
}

// TestFingerprintParityWithTracing pins the observability determinism
// contract: observation never touches RNG or model state, so a traced +
// metered run must produce bitwise-identical predictions and accuracies to
// a bare run with the same seed.
func TestFingerprintParityWithTracing(t *testing.T) {
	ds := smallTask(t)
	cfg := quickCfg()
	cfg.Epochs = 8
	cfg.Patience = 0
	cfg.BatchSize = 64

	run := func() ([]int, float64) {
		m, err := NewSGC(2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Fit(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := m.Predict(ds)
		if err != nil {
			t.Fatal(err)
		}
		return pred, rep.TestAcc
	}

	barePred, bareAcc := run()

	reg := obs.NewRegistry()
	tensor.EnablePoolMetrics(reg)
	defer tensor.EnablePoolMetrics(nil)
	train.EnableMetrics(reg)
	defer train.EnableMetrics(nil)
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)
	tracedPred, tracedAcc := run()

	if tracedAcc != bareAcc {
		t.Errorf("test accuracy differs under tracing: %v vs %v", tracedAcc, bareAcc)
	}
	for i := range barePred {
		if barePred[i] != tracedPred[i] {
			t.Fatalf("prediction %d differs under tracing: %d vs %d", i, barePred[i], tracedPred[i])
		}
	}
	if tr.Len() == 0 {
		t.Error("traced run recorded no spans — instrumentation not active")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewGCN(0); err == nil {
		t.Error("GCN 0 layers")
	}
	if _, err := NewSGC(0); err == nil {
		t.Error("SGC K=0")
	}
	if _, err := NewSIGN(0); err == nil {
		t.Error("SIGN K=0")
	}
	if _, err := NewAPPNP(0, 0.1); err == nil {
		t.Error("APPNP K=0")
	}
	if _, err := NewAPPNP(5, 0); err == nil {
		t.Error("APPNP alpha=0")
	}
	if _, err := NewGAMLP(0); err == nil {
		t.Error("GAMLP K=0")
	}
	if _, err := NewLD2(0); err == nil {
		t.Error("LD2 hops=0")
	}
	if _, err := NewGraphSAGE(0, 3); err == nil {
		t.Error("SAGE 0 layers")
	}
	if _, err := NewGraphSAGE(2, 0); err == nil {
		t.Error("SAGE fanout 0")
	}
	if _, err := NewClusterGCN(0, 2); err == nil {
		t.Error("ClusterGCN 0 layers")
	}
	if _, err := NewImplicitNet(0, nil); err == nil {
		t.Error("ImplicitNet gamma=0")
	}
	if _, err := NewImplicitNet(0.5, []int{0}); err == nil {
		t.Error("ImplicitNet scale 0")
	}
}

func TestPredictBeforeFitErrors(t *testing.T) {
	ds := smallTask(t)
	for _, m := range []Trainer{
		mustGCN(t), mustSGC(t), mustTrainer(NewSIGN(2)), mustTrainer(NewAPPNP(4, 0.2)),
		mustTrainer(NewGAMLP(2)), mustTrainer(NewLD2(2)), mustTrainer(NewGraphSAGE(2, 3)),
		mustTrainer(NewClusterGCN(2, 2)), mustTrainer(NewImplicitNet(0.5, nil)),
	} {
		if _, err := m.Predict(ds); err == nil {
			t.Errorf("%s: Predict before Fit should error", m.Name())
		}
	}
}

func mustGCN(t *testing.T) Trainer {
	t.Helper()
	m, err := NewGCN(2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustSGC(t *testing.T) Trainer {
	t.Helper()
	m, err := NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustTrainer[T Trainer](m T, err error) Trainer {
	if err != nil {
		panic(err)
	}
	return m
}

func TestTrainConfigValidation(t *testing.T) {
	ds := smallTask(t)
	m, _ := NewSGC(2)
	bad := DefaultTrainConfig()
	bad.Epochs = 0
	if _, err := m.Fit(ds, bad); err == nil {
		t.Error("epochs=0 should error")
	}
	bad = DefaultTrainConfig()
	bad.LR = 0
	if _, err := m.Fit(ds, bad); err == nil {
		t.Error("lr=0 should error")
	}
	bad = DefaultTrainConfig()
	bad.Hidden = 0
	gcn, _ := NewGCN(1)
	if _, err := gcn.Fit(ds, bad); err == nil {
		t.Error("hidden=0 should error")
	}
}

// TestRestoreBestValAccMatchesBestEpoch is the regression test for the
// final-vs-best weight bug: the legacy loops early-stopped but kept the
// weights of the last epoch, so the reported ValAcc could be worse than the
// best the run ever saw. With RestoreBest the post-training evaluation must
// reproduce the engine's recorded best validation accuracy. SGC is used
// because its validation path is deterministic (no sampling during eval).
func TestRestoreBestValAccMatchesBestEpoch(t *testing.T) {
	ds := smallTask(t)
	cfg := quickCfg()
	cfg.Epochs = 30
	cfg.Patience = 5
	cfg.BatchSize = 64
	cfg.RestoreBest = true
	m, err := NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestEpoch < 0 || rep.BestVal < 0 {
		t.Fatalf("engine did not record a best epoch: %+v", rep)
	}
	if diff := rep.ValAcc - rep.BestVal; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("restored ValAcc %.17g != best-epoch val %.17g (best epoch %d of %d)",
			rep.ValAcc, rep.BestVal, rep.BestEpoch, rep.Epochs)
	}
	// Same run without restoration must early-stop past the best epoch —
	// otherwise this test isn't exercising the restore path at all.
	m2, err := NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RestoreBest = false
	rep2, err := m2.Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Epochs <= rep2.BestEpoch+1 {
		t.Fatalf("run ended at its best epoch (%d of %d); pick a harder config",
			rep2.BestEpoch, rep2.Epochs)
	}
}
