package models

import (
	"testing"

	"scalegnn/internal/metrics"
)

func TestNAIPredictBasics(t *testing.T) {
	ds := smallTask(t)
	m, err := NewSGC(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	if _, err := m.Fit(ds, cfg); err != nil {
		t.Fatal(err)
	}
	hops := HopEmbeddings(ds, 3)
	res, err := NAIPredict(m, hops, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != ds.G.N || len(res.HopUsed) != ds.G.N {
		t.Fatal("result length mismatch")
	}
	for i, h := range res.HopUsed {
		if h < 0 || h > 3 {
			t.Fatalf("node %d exited at hop %d", i, h)
		}
	}
	if res.FullHops != 3 {
		t.Errorf("FullHops = %d", res.FullHops)
	}
	// Adaptive inference must save some propagation on an easy task.
	if res.AvgHops >= 3 {
		t.Errorf("no early exits: avg hops %v", res.AvgHops)
	}
	if res.Speedup() <= 1 {
		t.Errorf("speedup %v", res.Speedup())
	}
	// Accuracy must stay close to full propagation.
	fullPred, err := m.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	labels := ds.Labels
	fullAcc := metrics.Accuracy(sel(fullPred, ds.TestIdx), sel(labels, ds.TestIdx))
	naiAcc := metrics.Accuracy(sel(res.Pred, ds.TestIdx), sel(labels, ds.TestIdx))
	if naiAcc < fullAcc-0.05 {
		t.Errorf("NAI accuracy %.3f far below full %.3f", naiAcc, fullAcc)
	}
}

func sel(xs []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = xs[v]
	}
	return out
}

func TestNAIThresholdTradeoff(t *testing.T) {
	// Lower thresholds must exit earlier (fewer average hops).
	ds := smallTask(t)
	m, err := NewSGC(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(ds, quickCfg()); err != nil {
		t.Fatal(err)
	}
	hops := HopEmbeddings(ds, 3)
	loose, err := NAIPredict(m, hops, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := NAIPredict(m, hops, 0.999, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loose.AvgHops > strict.AvgHops {
		t.Errorf("loose threshold used %v hops, strict %v", loose.AvgHops, strict.AvgHops)
	}
}

func TestNAIValidation(t *testing.T) {
	ds := smallTask(t)
	m, _ := NewSGC(2)
	hops := HopEmbeddings(ds, 2)
	if _, err := NAIPredict(m, hops, 0.9, 0); err == nil {
		t.Error("NAI before Fit should error")
	}
	if _, err := m.Fit(ds, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := NAIPredict(m, nil, 0.9, 0); err == nil {
		t.Error("no hops should error")
	}
	if _, err := NAIPredict(m, hops, 0, 0); err == nil {
		t.Error("threshold 0 should error")
	}
	if _, err := NAIPredict(m, hops, 1.5, 0); err == nil {
		t.Error("threshold > 1 should error")
	}
	if _, err := NAIPredict(m, hops, 0.9, 5); err == nil {
		t.Error("minHops out of range should error")
	}
}
