package models

import (
	"fmt"
	"math"
	"time"

	"scalegnn/internal/dataset"
	"scalegnn/internal/hublabel"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// GraphTransformer is a DHIL-GT-style mini graph Transformer (tutorial
// §3.2.2 / §3.4.1): node batches attend to each other with a learnable
// shortest-path-distance bias, where SPDs come from a hub-label index so
// that bias construction is a sub-millisecond query instead of per-batch
// BFS. One single-head attention layer with exact manual backprop,
// followed by a linear head.
//
// The model is deliberately minimal — the reproduction target is the data-
// management claim (hub labels make SPD-biased attention affordable), not
// Transformer architecture tricks.
type GraphTransformer struct {
	// Buckets is the number of SPD buckets (distances >= Buckets-1 and
	// disconnected pairs share the last bucket).
	Buckets int

	wq, wk, wv, wo *nn.Param
	ws             *nn.Param // residual self-projection d -> h
	bias           *nn.Param // 1 x Buckets learnable SPD bias
	index          *hublabel.Index
	hidden         int
	lastPred       []int
}

// NewGraphTransformer constructs the model.
func NewGraphTransformer(buckets int) (*GraphTransformer, error) {
	if buckets < 2 {
		return nil, fmt.Errorf("models: GraphTransformer needs >= 2 SPD buckets, got %d", buckets)
	}
	return &GraphTransformer{Buckets: buckets}, nil
}

// Name implements Trainer.
func (m *GraphTransformer) Name() string { return fmt.Sprintf("GraphTransformer-b%d", m.Buckets) }

// bucketOf maps an SPD to its bias bucket.
func (m *GraphTransformer) bucketOf(d int) int {
	if d < 0 || d >= m.Buckets {
		return m.Buckets - 1
	}
	return d
}

// attentionForward computes one batch's logits and retains intermediates.
type attnState struct {
	x       *tensor.Matrix // batch features (b x d)
	q, k, v *tensor.Matrix // projections (b x h)
	scores  *tensor.Matrix // softmax-normalized attention (b x b)
	buckets [][]int        // SPD bucket per pair
	ctx     *tensor.Matrix // attention output (b x h)
}

func (m *GraphTransformer) forwardBatch(x *tensor.Matrix, buckets [][]int) (*attnState, *tensor.Matrix) {
	st := &attnState{x: x, buckets: buckets}
	st.q = tensor.MatMul(x, m.wq.Value)
	st.k = tensor.MatMul(x, m.wk.Value)
	st.v = tensor.MatMul(x, m.wv.Value)
	b := x.Rows
	scale := 1 / math.Sqrt(float64(m.hidden))
	raw := tensor.MatMulT(st.q, st.k)
	for i := 0; i < b; i++ {
		row := raw.Row(i)
		for j := range row {
			row[j] = row[j]*scale + m.bias.Value.At(0, buckets[i][j])
		}
	}
	st.scores = nn.Softmax(raw)
	st.ctx = tensor.MatMul(st.scores, st.v)
	// Residual self path: a node always keeps its own projected features,
	// independent of what attention mixes in.
	st.ctx.Add(tensor.MatMul(x, m.ws.Value))
	logits := tensor.MatMul(st.ctx, m.wo.Value)
	return st, logits
}

// backwardBatch accumulates parameter gradients from ∂L/∂logits.
func (m *GraphTransformer) backwardBatch(st *attnState, gLogits *tensor.Matrix) {
	// Head.
	m.wo.Grad.Add(tensor.TMatMul(st.ctx, gLogits))
	gCtx := tensor.MatMulT(gLogits, m.wo.Value)
	// Residual self path.
	m.ws.Grad.Add(tensor.TMatMul(st.x, gCtx))
	// ctx = scores · v (+ x·ws).
	gScores := tensor.MatMulT(gCtx, st.v)
	gV := tensor.TMatMul(st.scores, gCtx)
	// Softmax backward row-wise: gRaw = s ∘ (gScores − <gScores, s>).
	b := st.x.Rows
	gRaw := tensor.New(b, b)
	for i := 0; i < b; i++ {
		srow := st.scores.Row(i)
		grow := gScores.Row(i)
		var inner float64
		for j := range srow {
			inner += srow[j] * grow[j]
		}
		out := gRaw.Row(i)
		for j := range srow {
			out[j] = srow[j] * (grow[j] - inner)
		}
	}
	// Bias buckets accumulate raw-score gradients.
	for i := 0; i < b; i++ {
		row := gRaw.Row(i)
		for j, g := range row {
			m.bias.Grad.Data[st.buckets[i][j]] += g
		}
	}
	// raw = scale·q kᵀ (+bias).
	scale := 1 / math.Sqrt(float64(m.hidden))
	gQ := tensor.MatMul(gRaw, st.k)
	gQ.Scale(scale)
	gK := tensor.TMatMul(gRaw, st.q)
	gK.Scale(scale)
	m.wq.Grad.Add(tensor.TMatMul(st.x, gQ))
	m.wk.Grad.Add(tensor.TMatMul(st.x, gK))
	m.wv.Grad.Add(tensor.TMatMul(st.x, gV))
}

func (m *GraphTransformer) params() []*nn.Param {
	return []*nn.Param{m.wq, m.wk, m.wv, m.ws, m.wo, m.bias}
}

// Fit builds the hub-label index once, then trains on SPD-biased attention
// batches.
func (m *GraphTransformer) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return nil, errFloat32Unsupported(m.Name())
	}
	rep := &Report{Model: m.Name()}
	preStart := time.Now()
	ix, err := hublabel.Build(ds.G)
	if err != nil {
		return nil, fmt.Errorf("models: transformer hub labels: %w", err)
	}
	m.index = ix
	rep.Precompute = time.Since(preStart)

	pcg, rng := newRunRNG(cfg.Seed)
	m.hidden = cfg.Hidden
	m.wq = nn.NewParam("gt.wq", tensor.GlorotUniform(ds.X.Cols, cfg.Hidden, rng))
	m.wk = nn.NewParam("gt.wk", tensor.GlorotUniform(ds.X.Cols, cfg.Hidden, rng))
	m.wv = nn.NewParam("gt.wv", tensor.GlorotUniform(ds.X.Cols, cfg.Hidden, rng))
	m.ws = nn.NewParam("gt.ws", tensor.GlorotUniform(ds.X.Cols, cfg.Hidden, rng))
	m.wo = nn.NewParam("gt.wo", tensor.GlorotUniform(cfg.Hidden, ds.NumClasses, rng))
	m.bias = nn.NewParam("gt.bias", tensor.New(1, m.Buckets))
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	batch := cfg.BatchSize
	if batch <= 0 || batch > len(ds.TrainIdx) {
		batch = len(ds.TrainIdx)
	}
	if batch > 256 {
		batch = 256 // attention is O(b²); keep batches transformer-sized
	}
	src := train.NewIndexBatches(ds.TrainIdx, batch)
	defer opt.Reset()
	err = runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.Spec{
		Source: src,
		Step: func(b train.Batch) error {
			st, logits, err := m.batchForward(ds, b.Indices)
			if err != nil {
				return err
			}
			_, gLogits := nn.SoftmaxCrossEntropy(logits, dataset.LabelsAt(ds.Labels, b.Indices))
			m.backwardBatch(st, gLogits)
			opt.Step(m.params())
			return nil
		},
		Validate: func() (float64, error) {
			valPred, err := m.predictIdx(ds, ds.ValIdx)
			if err != nil {
				return 0, err
			}
			correct := 0
			for i, v := range ds.ValIdx {
				if valPred[i] == ds.Labels[v] {
					correct++
				}
			}
			return float64(correct) / float64(max(1, len(ds.ValIdx))), nil
		},
		Params:    m.params(),
		Optimizer: opt,
		PeakFloats: func() int {
			return batch*batch*2 + 4*batch*(ds.X.Cols+cfg.Hidden) + 3*(m.wq.NumValues()+m.wk.NumValues()+m.wv.NumValues()+m.wo.NumValues())
		},
	})
	if err != nil {
		return nil, err
	}

	fillAccuracies(func(idx []int) []int {
		pred, err := m.predictIdx(ds, idx)
		if err != nil {
			return make([]int, len(idx))
		}
		return pred
	}, ds, rep)
	pred, err := m.predictIdx(ds, rangeIdx(ds.G.N))
	if err != nil {
		return nil, err
	}
	m.lastPred = pred
	return rep, nil
}

// batchForward assembles the SPD bias (via hub-label queries) and runs the
// attention layer.
func (m *GraphTransformer) batchForward(ds *dataset.Dataset, idx []int) (*attnState, *tensor.Matrix, error) {
	spd, err := m.index.DistanceMatrix(idx)
	if err != nil {
		return nil, nil, err
	}
	buckets := make([][]int, len(idx))
	for i := range spd {
		buckets[i] = make([]int, len(idx))
		for j, d := range spd[i] {
			buckets[i][j] = m.bucketOf(d)
		}
	}
	x := ds.X.SelectRows(idx)
	st, logits := m.forwardBatch(x, buckets)
	return st, logits, nil
}

// predictIdx classifies nodes in attention batches of 256.
func (m *GraphTransformer) predictIdx(ds *dataset.Dataset, idx []int) ([]int, error) {
	out := make([]int, len(idx))
	const b = 256
	for off := 0; off < len(idx); off += b {
		end := min(off+b, len(idx))
		_, logits, err := m.batchForward(ds, idx[off:end])
		if err != nil {
			return nil, err
		}
		copy(out[off:end], nn.Argmax(logits))
	}
	return out, nil
}

// Predict implements Trainer.
func (m *GraphTransformer) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.lastPred == nil {
		return nil, fmt.Errorf("models: GraphTransformer.Predict before Fit")
	}
	return m.lastPred, nil
}

// SPDBias exposes the learned per-bucket attention bias (ablation probes).
func (m *GraphTransformer) SPDBias() []float64 {
	if m.bias == nil {
		return nil
	}
	return append([]float64(nil), m.bias.Value.Row(0)...)
}
