package models

import (
	"fmt"
	"math/rand/v2"

	"scalegnn/internal/dataset"
	"scalegnn/internal/nn"
	"scalegnn/internal/par"
	"scalegnn/internal/sampling"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// sageLayer is one GraphSAGE mean-aggregator layer:
// h'_u = act(W_self·h_u + W_neigh·mean_{v∈sample(u)} h_v + b).
// Forward/backward operate on sampled Blocks, so the layer never touches
// more nodes than the sample.
type sageLayer struct {
	self  *nn.Linear
	neigh *nn.Linear
	relu  bool

	// retained for backward
	block *sampling.Block
	mask  []bool

	// pooled/reused scratch: iota of the destination rows, the self-feature
	// selection, and the ReLU-masked gradient copy.
	selfIdx  []int
	selfBuf  tensor.Buf
	gradBuf  tensor.Buf
}

func newSageLayer(in, out int, relu bool, rng *rand.Rand) *sageLayer {
	return &sageLayer{
		self:  nn.NewLinear(in, out, true, rng),
		neigh: nn.NewLinear(in, out, false, rng),
		relu:  relu,
	}
}

// forward computes destination representations from source features.
func (l *sageLayer) forward(block *sampling.Block, srcFeats *tensor.Matrix, training bool) *tensor.Matrix {
	if training {
		l.block = block
	}
	if cap(l.selfIdx) < len(block.Dsts) {
		l.selfIdx = make([]int, len(block.Dsts))
	}
	idx := l.selfIdx[:len(block.Dsts)]
	for i := range idx {
		idx[i] = i
	}
	selfFeats := l.selfBuf.Next(len(idx), srcFeats.Cols)
	srcFeats.SelectRowsInto(idx, selfFeats) // Srcs start with Dsts
	agg := block.Aggregate(srcFeats)
	y := l.self.Forward(selfFeats, training)
	y.Add(l.neigh.Forward(agg, training))
	if l.relu {
		if training {
			if cap(l.mask) < len(y.Data) {
				l.mask = make([]bool, len(y.Data))
			}
			l.mask = l.mask[:len(y.Data)]
		}
		// Element-wise ReLU + mask capture: disjoint writes per element,
		// chunked over internal/par (bitwise-identical to the plain loop).
		par.Range(len(y.Data), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				pos := y.Data[i] > 0
				if !pos {
					y.Data[i] = 0
				}
				if training {
					l.mask[i] = pos
				}
			}
		})
	}
	return y
}

// backward returns the gradient with respect to the source features.
func (l *sageLayer) backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g := gradOut
	if l.relu {
		g = l.gradBuf.Next(gradOut.Rows, gradOut.Cols)
		copy(g.Data, gradOut.Data)
		// Element-wise mask application — same chunking as the forward pass.
		gd := g.Data
		par.Range(len(gd), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if !l.mask[i] {
					gd[i] = 0
				}
			}
		})
	}
	gSelf := l.self.Backward(g)
	gAgg := l.neigh.Backward(g)
	gSrc := l.block.AggregateBackward(gAgg)
	// Self path: dsts are the first rows of srcs; selfIdx still holds their
	// iota from the forward pass.
	gSrc.ScatterAddRows(l.selfIdx[:len(l.block.Dsts)], gSelf)
	return gSrc
}

func (l *sageLayer) params() []*nn.Param {
	return append(l.self.Params(), l.neigh.Params()...)
}

// GraphSAGE trains with node-level neighbor sampling (§3.1.2 graph
// sampling): per batch it samples a bounded multi-layer computation graph,
// so memory scales with batch size and fan-out instead of graph size.
type GraphSAGE struct {
	Layers int
	Fanout int

	layers []*sageLayer

	// pooled/reused scratch for gathering the deepest sources' features
	srcIdx []int
	xBuf   tensor.Buf
}

// NewGraphSAGE constructs a SAGE model.
func NewGraphSAGE(layers, fanout int) (*GraphSAGE, error) {
	if layers < 1 {
		return nil, fmt.Errorf("models: GraphSAGE needs >= 1 layer, got %d", layers)
	}
	if fanout < 1 {
		return nil, fmt.Errorf("models: GraphSAGE needs fanout >= 1, got %d", fanout)
	}
	return &GraphSAGE{Layers: layers, Fanout: fanout}, nil
}

// Name implements Trainer.
func (m *GraphSAGE) Name() string { return fmt.Sprintf("SAGE-%dL-f%d", m.Layers, m.Fanout) }

// forwardBlocks runs all layers over a sampled computation graph. blocks[0]
// is the outermost layer; features start at the deepest sources.
func (m *GraphSAGE) forwardBlocks(blocks []*sampling.Block, x *tensor.Matrix, training bool) *tensor.Matrix {
	deepest := blocks[len(blocks)-1]
	h := m.gatherSrcFeats(x, deepest.Srcs)
	for l := len(blocks) - 1; l >= 0; l-- {
		h = m.layers[len(blocks)-1-l].forward(blocks[l], h, training)
	}
	return h
}

// backwardBlocks backpropagates through all layers.
func (m *GraphSAGE) backwardBlocks(blocks []*sampling.Block, grad *tensor.Matrix) {
	for l := 0; l < len(blocks); l++ {
		grad = m.layers[len(blocks)-1-l].backward(grad)
	}
}

// gatherSrcFeats copies the rows of x indexed by ids into a pooled matrix
// recycled on the next batch (by which point every layer has consumed it).
func (m *GraphSAGE) gatherSrcFeats(x *tensor.Matrix, ids []int32) *tensor.Matrix {
	if cap(m.srcIdx) < len(ids) {
		m.srcIdx = make([]int, len(ids))
	}
	idx := m.srcIdx[:len(ids)]
	for i, v := range ids {
		idx[i] = int(v)
	}
	h := m.xBuf.Next(len(idx), x.Cols)
	x.SelectRowsInto(idx, h)
	return h
}

// Fit trains with sampled mini-batches.
func (m *GraphSAGE) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return nil, errFloat32Unsupported(m.Name())
	}
	pcg, rng := newRunRNG(cfg.Seed)
	sampler, err := sampling.NewNeighborSampler(ds.G, m.Fanout)
	if err != nil {
		return nil, err
	}
	m.layers = nil
	in := ds.X.Cols
	for l := 0; l < m.Layers; l++ {
		out := cfg.Hidden
		if l == m.Layers-1 {
			out = ds.NumClasses
		}
		m.layers = append(m.layers, newSageLayer(in, out, l != m.Layers-1, rng))
		in = out
	}
	var params []*nn.Param
	for _, l := range m.layers {
		params = append(params, l.params()...)
	}
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	src := train.NewIndexBatches(ds.TrainIdx, cfg.BatchSize)
	rep := &Report{Model: m.Name()}
	peakSrcs := 0
	dsts := make([]int32, src.BatchSize())
	labels := make([]int, src.BatchSize())
	defer opt.Reset()
	err = runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.Spec{
		Source: src,
		Step: func(b train.Batch) error {
			bDsts := dsts[:len(b.Indices)]
			for i, v := range b.Indices {
				bDsts[i] = int32(v)
			}
			blocks := sampler.SampleLayers(bDsts, m.Layers, rng)
			if s := blocks[len(blocks)-1].NumUniqueSrcs(); s > peakSrcs {
				peakSrcs = s
			}
			logits := m.forwardBlocks(blocks, ds.X, true)
			bLabels := labels[:len(bDsts)]
			for i, d := range bDsts {
				bLabels[i] = ds.Labels[d]
			}
			grad := tensor.GetBuf(logits.Rows, logits.Cols)
			nn.SoftmaxCrossEntropyInto(logits, bLabels, grad)
			m.backwardBlocks(blocks, grad)
			tensor.PutBuf(grad)
			opt.Step(params)
			return nil
		},
		Validate: func() (float64, error) {
			return m.evalAccuracy(ds, ds.ValIdx, rng), nil
		},
		Params:    params,
		Optimizer: opt,
		// Peak resident floats: the sampled computation graph's activations,
		// which scale with peakSrcs — not with n.
		PeakFloats: func() int {
			nParams := 0
			for _, p := range params {
				nParams += p.NumValues()
			}
			return 2*peakSrcs*(ds.X.Cols+cfg.Hidden) + nParams*3
		},
	})
	if err != nil {
		return nil, err
	}

	evalRng := tensor.NewRand(cfg.Seed + 999)
	fillAccuracies(func(idx []int) []int {
		return m.predictIdx(ds, idx, evalRng)
	}, ds, rep)
	return rep, nil
}

// predictIdx runs sampled inference on the given nodes (full fan-out would
// be exact; we use the training fan-out for consistency with SAGE practice).
func (m *GraphSAGE) predictIdx(ds *dataset.Dataset, idx []int, rng *rand.Rand) []int {
	sampler, _ := sampling.NewNeighborSampler(ds.G, m.Fanout*4) // wider at eval
	dsts := make([]int32, len(idx))
	for i, v := range idx {
		dsts[i] = int32(v)
	}
	blocks := sampler.SampleLayers(dsts, m.Layers, rng)
	logits := m.forwardBlocks(blocks, ds.X, false)
	return nn.Argmax(logits)
}

func (m *GraphSAGE) evalAccuracy(ds *dataset.Dataset, idx []int, rng *rand.Rand) float64 {
	pred := m.predictIdx(ds, idx, rng)
	correct := 0
	for i, v := range idx {
		if pred[i] == ds.Labels[v] {
			correct++
		}
	}
	if len(idx) == 0 {
		return 0
	}
	return float64(correct) / float64(len(idx))
}

// Predict implements Trainer.
func (m *GraphSAGE) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.layers == nil {
		return nil, fmt.Errorf("models: GraphSAGE.Predict before Fit")
	}
	rng := tensor.NewRand(12345)
	return m.predictIdx(ds, rangeIdx(ds.G.N), rng), nil
}
