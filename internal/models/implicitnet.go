package models

import (
	"fmt"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/implicit"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// ImplicitNet is the EIGNN-style implicit GNN (§3.2.3): node states are the
// equilibrium of Z = γ·ÂZW + XW_in, read out by a linear head. Gradients
// are exact via the adjoint fixed point (implicit differentiation), and the
// learnable W is projected back inside the contraction region after every
// optimizer step.
type ImplicitNet struct {
	Gamma float64
	// Scales lists the propagation scales (MGNNI); nil means single-scale {1}.
	Scales []int

	win    *nn.Param
	wimp   []*nn.Param // one per scale
	wout   *nn.Param
	bout   *nn.Param
	ds     *dataset.Dataset
	hidden int

	// pooled forward scratch, recycled on the next forward call
	fb, fmean, flogits tensor.Buf
}

// NewImplicitNet constructs an implicit model with contraction factor γ.
func NewImplicitNet(gamma float64, scales []int) (*ImplicitNet, error) {
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("models: ImplicitNet gamma %v outside (0,1)", gamma)
	}
	if len(scales) == 0 {
		scales = []int{1}
	}
	for _, s := range scales {
		if s < 1 {
			return nil, fmt.Errorf("models: ImplicitNet scale %d < 1", s)
		}
	}
	return &ImplicitNet{Gamma: gamma, Scales: scales}, nil
}

// Name implements Trainer.
func (m *ImplicitNet) Name() string {
	if len(m.Scales) == 1 && m.Scales[0] == 1 {
		return "ImplicitGNN"
	}
	return fmt.Sprintf("ImplicitGNN-ms%d", len(m.Scales))
}

// forward computes per-scale equilibria and the averaged logits. The logits
// live in a pooled buffer recycled on the next forward call.
func (m *ImplicitNet) forward(op *graph.Operator, x *tensor.Matrix) (zs []*tensor.Matrix, logits *tensor.Matrix, err error) {
	b := m.fb.Next(x.Rows, m.win.Value.Cols)
	tensor.MatMulInto(x, m.win.Value, b)
	zs = make([]*tensor.Matrix, len(m.Scales))
	mean := m.fmean.NextZero(x.Rows, m.hidden)
	for i, sc := range m.Scales {
		solver, serr := implicit.NewSolver(op, m.Gamma)
		if serr != nil {
			return nil, nil, serr
		}
		solver.Scale = sc
		solver.Tol = 1e-7
		z, _, serr := solver.Solve(b, m.wimp[i].Value)
		if serr != nil {
			return nil, nil, serr
		}
		zs[i] = z
		mean.AddScaled(1/float64(len(m.Scales)), z)
	}
	logits = m.flogits.Next(x.Rows, m.wout.Value.Cols)
	tensor.MatMulInto(mean, m.wout.Value, logits)
	logits.AddRowVector(m.bout.Value.Row(0))
	return zs, logits, nil
}

// Fit trains full-batch with implicit differentiation.
func (m *ImplicitNet) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return nil, errFloat32Unsupported(m.Name())
	}
	m.ds = ds
	m.hidden = cfg.Hidden
	pcg, rng := newRunRNG(cfg.Seed)
	op := graph.NewOperator(ds.G, graph.NormSymmetric, true)

	m.win = nn.NewParam("implicit.win", tensor.GlorotUniform(ds.X.Cols, cfg.Hidden, rng))
	m.wout = nn.NewParam("implicit.wout", tensor.GlorotUniform(cfg.Hidden, ds.NumClasses, rng))
	m.bout = nn.NewParam("implicit.bout", tensor.New(1, ds.NumClasses))
	m.wimp = make([]*nn.Param, len(m.Scales))
	maxNorm := 0.95 / m.Gamma
	for i := range m.Scales {
		w := tensor.RandNormal(cfg.Hidden, cfg.Hidden, 0.1, rng)
		implicit.ProjectSpectralNorm(w, maxNorm*0.5)
		m.wimp[i] = nn.NewParam(fmt.Sprintf("implicit.w%d", i), w)
	}
	params := append([]*nn.Param{m.win, m.wout, m.bout}, m.wimp...)
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	rep := &Report{Model: m.Name()}
	defer opt.Reset()
	err := runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.Spec{
		Source: train.FullBatch{},
		Step: func(train.Batch) error {
			zs, logits, err := m.forward(op, ds.X)
			if err != nil {
				return fmt.Errorf("models: implicit forward: %w", err)
			}
			_, gLogits := maskedLoss(logits, ds.Labels, ds.TrainIdx)
			// Head gradients. mean = (1/S)Σ z_i.
			mean := tensor.GetZeroBuf(ds.G.N, m.hidden)
			for _, z := range zs {
				mean.AddScaled(1/float64(len(m.Scales)), z)
			}
			wg := tensor.GetBuf(m.hidden, ds.NumClasses)
			tensor.TMatMulInto(mean, gLogits, wg)
			m.wout.Grad.Add(wg)
			tensor.PutBuf(wg)
			tensor.PutBuf(mean)
			bg := m.bout.Grad.Row(0)
			for i := 0; i < gLogits.Rows; i++ {
				for j, v := range gLogits.Row(i) {
					bg[j] += v
				}
			}
			gZ := tensor.GetBuf(ds.G.N, m.hidden)
			tensor.MatMulTInto(gLogits, m.wout.Value, gZ)
			tensor.PutBuf(gLogits)
			gZ.Scale(1 / float64(len(m.Scales)))
			// Per-scale adjoint solves.
			gB := tensor.GetZeroBuf(ds.G.N, m.hidden)
			for i, sc := range m.Scales {
				solver, err := implicit.NewSolver(op, m.Gamma)
				if err != nil {
					tensor.PutBuf(gZ)
					tensor.PutBuf(gB)
					return err
				}
				solver.Scale = sc
				solver.Tol = 1e-7
				u, _, err := solver.SolveAdjoint(gZ, m.wimp[i].Value)
				if err != nil {
					tensor.PutBuf(gZ)
					tensor.PutBuf(gB)
					return fmt.Errorf("models: implicit adjoint: %w", err)
				}
				m.wimp[i].Grad.Add(solver.GradW(zs[i], u))
				gB.Add(u)
			}
			tensor.PutBuf(gZ)
			ig := tensor.GetBuf(ds.X.Cols, m.hidden)
			tensor.TMatMulInto(ds.X, gB, ig)
			m.win.Grad.Add(ig)
			tensor.PutBuf(ig)
			tensor.PutBuf(gB)
			nn.ClipGradNorm(params, 5)
			opt.Step(params)
			for i := range m.wimp {
				implicit.ProjectSpectralNorm(m.wimp[i].Value, maxNorm)
			}
			return nil
		},
		Validate: func() (float64, error) {
			_, valLogits, err := m.forward(op, ds.X)
			if err != nil {
				return 0, err
			}
			return accuracyAt(valLogits, ds.Labels, ds.ValIdx), nil
		},
		Params:    params,
		Optimizer: opt,
		PeakFloats: func() int {
			return ds.G.N*cfg.Hidden*(2+2*len(m.Scales)) + ds.G.N*ds.NumClasses
		},
	})
	if err != nil {
		return nil, err
	}

	_, logits, err := m.forward(op, ds.X)
	if err != nil {
		return nil, err
	}
	fillAccuracies(func(idx []int) []int {
		return nn.Argmax(logits.SelectRows(idx))
	}, ds, rep)
	return rep, nil
}

// Predict implements Trainer.
func (m *ImplicitNet) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.win == nil {
		return nil, fmt.Errorf("models: ImplicitNet.Predict before Fit")
	}
	op := graph.NewOperator(ds.G, graph.NormSymmetric, true)
	_, logits, err := m.forward(op, ds.X)
	if err != nil {
		return nil, err
	}
	return nn.Argmax(logits), nil
}
