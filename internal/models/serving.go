// Serving support for the decoupled families (§3.1.2): the
// precompute-then-MLP split means a trained model is an embedding matrix
// plus a small head, so per-node inference is a row gather and one batched
// forward — no graph access on the request path. This file defines the
// NodeScorer contract internal/serve drives, and Restore, which rebuilds a
// servable model from a ckpt snapshot without retraining.
package models

import (
	"fmt"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/nn"
	"scalegnn/internal/spectral"
	"scalegnn/internal/tensor"
)

// NodeScorer is the per-node inference contract of the decoupled families.
// Score computes class logits for a set of nodes in one batched head
// forward; implementations reuse pooled scratch and layer-internal buffers,
// so a NodeScorer is NOT safe for concurrent Score calls — the serving
// layer funnels all scoring through one dispatcher. Logits are delivered as
// float64 regardless of the tier the model was trained at: a float32 model
// computes in float32 and widens once at the boundary.
type NodeScorer interface {
	// Name identifies the model family (matches Trainer.Name).
	Name() string
	// Nodes returns the number of servable node ids (0 before Fit/Restore).
	Nodes() int
	// Classes returns the logit width (0 before Fit/Restore).
	Classes() int
	// Score writes class logits for the given nodes into out, which must be
	// len(idx) x Classes() and must not alias model-held storage.
	// lint:confine score-path
	Score(idx []int, out *tensor.Matrix) error
}

// Restorer rebuilds a trained model from a checkpoint snapshot without
// retraining: the graph-side precompute reruns, the head weights come from
// the snapshot. The dataset and config must describe the run that produced
// the snapshot — Restore rejects a mismatched ckpt.ErrFingerprint. A
// float32-run snapshot restores only under cfg.DType = "float32" (the
// fingerprint encodes the tier).
type Restorer interface {
	Restore(ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error
}

// The five decoupled families are servable and restorable.
var (
	_ NodeScorer = (*SGC)(nil)
	_ NodeScorer = (*SIGN)(nil)
	_ NodeScorer = (*APPNP)(nil)
	_ NodeScorer = (*GAMLP)(nil)
	_ NodeScorer = (*LD2)(nil)

	_ Restorer = (*SGC)(nil)
	_ Restorer = (*SIGN)(nil)
	_ Restorer = (*APPNP)(nil)
	_ Restorer = (*GAMLP)(nil)
	_ Restorer = (*LD2)(nil)
)

// RunFingerprint exposes the snapshot-compatibility hash for a model name,
// dataset, and config — what ckpt.Manager.Latest needs to pick the right
// snapshot before a model instance exists.
func RunFingerprint(name string, ds *dataset.Dataset, cfg TrainConfig) uint64 {
	return runFingerprint(name, ds, cfg)
}

// headLogits lazily computes and caches the full-graph head output — the
// forward pass every decoupled Predict used to rerun per call. The cache is
// always float64; a float32 head widens its logits once on the first call.
func headLogits[T tensor.Elem](net *nn.SequentialOf[T], emb *tensor.Mat[T], cache **tensor.Matrix) *tensor.Matrix {
	if *cache == nil {
		y := net.Forward(emb, false)
		c := tensor.New(y.Rows, y.Cols)
		tensor.WidenInto(y, c)
		*cache = c
	}
	return *cache
}

// scoreHead gathers embedding rows for idx and runs them through the head —
// the batched serving kernel shared by the embedding+head families. Row
// independence of the dense kernels makes the result bitwise-equal to the
// same rows of a full-graph forward at the model's tier; float32 logits
// widen into the float64 destination.
func scoreHead[T tensor.Elem](name string, net *nn.SequentialOf[T], emb *tensor.Mat[T], classes int, idx []int, out *tensor.Matrix) error {
	if out.Rows != len(idx) || out.Cols != classes {
		return fmt.Errorf("models: %s.Score dst %dx%d, want %dx%d", name, out.Rows, out.Cols, len(idx), classes)
	}
	if e64, ok := any(emb).(*tensor.Matrix); ok && tensor.Overlaps(out.Data, e64.Data) {
		return fmt.Errorf("models: %s.Score dst aliases the embedding", name)
	}
	for _, n := range idx {
		if n < 0 || n >= emb.Rows {
			return fmt.Errorf("models: %s.Score node %d outside [0,%d)", name, n, emb.Rows)
		}
	}
	sel := tensor.GetBufOf[T](len(idx), emb.Cols)
	emb.SelectRowsInto(idx, sel)
	y := net.Forward(sel, false)
	tensor.WidenInto(y, out)
	tensor.PutBufOf(sel)
	return nil
}

// checkSnapshotFingerprint rejects restoring a snapshot produced by a
// different model, dataset, hyperparameter set, or numeric tier.
func checkSnapshotFingerprint(name string, ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	want := runFingerprint(name, ds, cfg)
	if snap.Fingerprint != want {
		return fmt.Errorf("models: restore %s: %w: snapshot %016x, run %016x",
			name, ckpt.ErrFingerprint, snap.Fingerprint, want)
	}
	return nil
}

// blockValues returns a block's payload as []T, converting when the block
// was written at a different precision (e.g. a pre-dtype v1 snapshot read
// into a float64 run comes back uncopied).
func blockValues[T tensor.Elem](b ckpt.Block) []T {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(b.Float32()).([]T)
	}
	return any(b.Float64()).([]T)
}

// restoreParams copies the snapshot's param.* blocks into the freshly built
// parameter list, in the same order the training engine saved them.
func restoreParams[T tensor.Elem](name string, params []*nn.ParamOf[T], snap *ckpt.Snapshot) error {
	blocks := make(map[string]ckpt.Block, len(snap.Blocks))
	for _, b := range snap.Blocks {
		blocks[b.Name] = b
	}
	for i, p := range params {
		key := fmt.Sprintf("param.%d", i)
		b, ok := blocks[key]
		if !ok {
			return fmt.Errorf("models: restore %s: snapshot has no block %q", name, key)
		}
		if b.Rows != p.Value.Rows || b.Cols != p.Value.Cols {
			return fmt.Errorf("models: restore %s: block %q is %dx%d, model wants %dx%d",
				name, key, b.Rows, b.Cols, p.Value.Rows, p.Value.Cols)
		}
		copy(p.Value.Data, blockValues[T](b))
	}
	if _, extra := blocks[fmt.Sprintf("param.%d", len(params))]; extra {
		return fmt.Errorf("models: restore %s: snapshot has more than %d parameter blocks", name, len(params))
	}
	return nil
}

// Restore implements Restorer: rerun the Â^K X precompute, rebuild the
// linear head, and load its weights from the snapshot.
func (m *SGC) Restore(ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if err := checkSnapshotFingerprint(m.Name(), ds, cfg, snap); err != nil {
		return err
	}
	if cfg.dtype() == DTypeFloat32 {
		return restoreSGC[float32](m, ds, cfg, snap)
	}
	return restoreSGC[float64](m, ds, cfg, snap)
}

func restoreSGC[T tensor.Elem](m *SGC, ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	op := graph.NewOperatorOf[T](ds.G, graph.NormSymmetric, true)
	emb := op.PowerApply(tensor.FromFloat64[T](ds.X), m.K)
	_, rng := newRunRNG(cfg.Seed)
	net := nn.NewMLPOf[T](nn.MLPConfig{
		In: emb.Cols, Out: ds.NumClasses, Dropout: cfg.Dropout, Bias: true,
	}, rng)
	if err := restoreParams(m.Name(), net.Params(), snap); err != nil {
		return err
	}
	decStore(&m.decoupledState, emb, net, ds.NumClasses)
	return nil
}

// Restore implements Restorer for SIGN.
func (m *SIGN) Restore(ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if err := checkSnapshotFingerprint(m.Name(), ds, cfg, snap); err != nil {
		return err
	}
	if cfg.dtype() == DTypeFloat32 {
		return restoreSIGN[float32](m, ds, cfg, snap)
	}
	return restoreSIGN[float64](m, ds, cfg, snap)
}

func restoreSIGN[T tensor.Elem](m *SIGN, ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	emb := spectral.ConcatColumns(hopEmbeddings[T](ds, m.K))
	_, rng := newRunRNG(cfg.Seed)
	net := nn.NewMLPOf[T](nn.MLPConfig{
		In: emb.Cols, Hidden: []int{cfg.Hidden}, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)
	if err := restoreParams(m.Name(), net.Params(), snap); err != nil {
		return err
	}
	decStore(&m.decoupledState, emb, net, ds.NumClasses)
	return nil
}

// Restore implements Restorer for LD2.
func (m *LD2) Restore(ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if err := checkSnapshotFingerprint(m.Name(), ds, cfg, snap); err != nil {
		return err
	}
	if cfg.dtype() == DTypeFloat32 {
		return restoreLD2[float32](m, ds, cfg, snap)
	}
	return restoreLD2[float64](m, ds, cfg, snap)
}

func restoreLD2[T tensor.Elem](m *LD2, ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	emb64, err := m.embed(ds)
	if err != nil {
		return err
	}
	emb := tensor.FromFloat64[T](emb64)
	_, rng := newRunRNG(cfg.Seed)
	net := nn.NewMLPOf[T](nn.MLPConfig{
		In: emb.Cols, Hidden: []int{cfg.Hidden}, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)
	if err := restoreParams(m.Name(), net.Params(), snap); err != nil {
		return err
	}
	decStore(&m.decoupledState, emb, net, ds.NumClasses)
	return nil
}

// Restore implements Restorer for APPNP. The MLP weights come from the
// snapshot; the diffused logits cache repopulates on first use.
func (m *APPNP) Restore(ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if err := checkSnapshotFingerprint(m.Name(), ds, cfg, snap); err != nil {
		return err
	}
	if cfg.dtype() == DTypeFloat32 {
		return restoreAPPNP[float32](m, ds, cfg, snap)
	}
	return restoreAPPNP[float64](m, ds, cfg, snap)
}

func restoreAPPNP[T tensor.Elem](m *APPNP, ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	_, rng := newRunRNG(cfg.Seed)
	net := nn.NewMLPOf[T](nn.MLPConfig{
		In: ds.X.Cols, Hidden: []int{cfg.Hidden}, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)
	if err := restoreParams(m.Name(), net.Params(), snap); err != nil {
		return err
	}
	op := graph.NewOperatorOf[T](ds.G, graph.NormSymmetric, true)
	x := tensor.FromFloat64[T](ds.X)
	m.net, m.net32, m.op, m.op32, m.x32 = nil, nil, nil, nil, nil
	*appnpNet[T](m) = net
	*appnpOp[T](m) = op
	m.x = ds.X
	if x32, ok := any(x).(*tensor.Mat[float32]); ok {
		m.x32 = x32
	}
	m.classes = ds.NumClasses
	m.logits = nil
	return nil
}

// Restore implements Restorer for GAMLP. The snapshot's parameter order is
// the MLP weights followed by the hop-attention logits θ, matching Fit.
func (m *GAMLP) Restore(ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if err := checkSnapshotFingerprint(m.Name(), ds, cfg, snap); err != nil {
		return err
	}
	if cfg.dtype() == DTypeFloat32 {
		return restoreGAMLP[float32](m, ds, cfg, snap)
	}
	return restoreGAMLP[float64](m, ds, cfg, snap)
}

func restoreGAMLP[T tensor.Elem](m *GAMLP, ds *dataset.Dataset, cfg TrainConfig, snap *ckpt.Snapshot) error {
	hops := hopEmbeddings[T](ds, m.K)
	theta := nn.NewParam("gamlp.theta", tensor.NewOf[T](1, m.K+1))
	_, rng := newRunRNG(cfg.Seed)
	net := nn.NewMLPOf[T](nn.MLPConfig{
		In: ds.X.Cols, Hidden: []int{cfg.Hidden}, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)
	if err := restoreParams(m.Name(), append(net.Params(), theta), snap); err != nil {
		return err
	}
	m.hops, m.theta, m.net, m.hops32, m.theta32, m.net32 = nil, nil, nil, nil, nil, nil
	*gamlpHops[T](m) = hops
	*gamlpTheta[T](m) = theta
	*gamlpNet[T](m) = net
	m.classes = ds.NumClasses
	m.logits = nil
	return nil
}
