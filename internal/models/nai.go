package models

import (
	"fmt"

	"scalegnn/internal/dataset"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
)

// NAIResult reports node-adaptive inference (tutorial §3.3.1, NAI):
// instead of propagating every node the full K hops at inference, each node
// stops at the first hop whose prediction confidence clears a threshold.
// Hub-adjacent, well-separated nodes exit early; ambiguous nodes get the
// full propagation — trading a controlled amount of accuracy for
// proportionally less inference propagation.
type NAIResult struct {
	Pred []int
	// HopUsed[i] is the propagation depth at which node i exited.
	HopUsed []int
	// AvgHops is the mean exit depth — the inference-cost proxy
	// (propagation work is proportional to it).
	AvgHops float64
	// FullHops is the depth a non-adaptive model would always pay.
	FullHops int
}

// Speedup returns FullHops / AvgHops, the propagation-work saving.
func (r *NAIResult) Speedup() float64 {
	if r.AvgHops == 0 {
		return float64(r.FullHops)
	}
	return float64(r.FullHops) / r.AvgHops
}

// NAIPredict runs node-adaptive inference for a trained SGC model: hops[k]
// must hold the k-hop smoothed features Â^k X (k = 0..K, as produced by
// hopEmbeddings), and the model's trained head is evaluated on each hop in
// order. A node exits at hop k when its softmax confidence is at least
// threshold; remaining nodes exit at hop K.
//
// minHops delays gating until that much smoothing has happened — the head
// was trained on hops[K], and on nearly raw features (k=0) a linear head
// can be confidently wrong, so production NAI configurations gate only
// propagated embeddings.
//
// The head was trained on hops[K]; early exits reuse it on less-smoothed
// inputs — exactly NAI's gated truncation, which works because Â^k X for
// k < K differs from Â^K X only by residual high-frequency energy that
// confident nodes have already shed.
func NAIPredict(m *SGC, hops []*tensor.Matrix, threshold float64, minHops int) (*NAIResult, error) {
	if m.net == nil {
		return nil, fmt.Errorf("models: NAIPredict before Fit")
	}
	if len(hops) == 0 {
		return nil, fmt.Errorf("models: NAIPredict needs hop embeddings")
	}
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("models: NAIPredict threshold %v outside (0,1]", threshold)
	}
	if minHops < 0 || minHops >= len(hops) {
		return nil, fmt.Errorf("models: NAIPredict minHops %d outside [0,%d)", minHops, len(hops))
	}
	n := hops[0].Rows
	res := &NAIResult{
		Pred:     make([]int, n),
		HopUsed:  make([]int, n),
		FullHops: len(hops) - 1,
	}
	decided := make([]bool, n)
	remaining := n
	for k, h := range hops {
		if remaining == 0 {
			break
		}
		if k < minHops {
			continue
		}
		// Gather undecided nodes.
		idx := make([]int, 0, remaining)
		for i := 0; i < n; i++ {
			if !decided[i] {
				idx = append(idx, i)
			}
		}
		probs := nn.Softmax(m.net.Forward(h.SelectRows(idx), false))
		last := k == len(hops)-1
		for bi, i := range idx {
			row := probs.Row(bi)
			best, bestP := 0, row[0]
			for c, p := range row {
				if p > bestP {
					best, bestP = c, p
				}
			}
			if bestP >= threshold || last {
				decided[i] = true
				res.Pred[i] = best
				res.HopUsed[i] = k
				remaining--
			}
		}
	}
	var total float64
	for _, h := range res.HopUsed {
		total += float64(h)
	}
	res.AvgHops = total / float64(n)
	return res, nil
}

// HopEmbeddings exposes the [X, ÂX, …, Â^K X] precompute for NAIPredict and
// external analysis.
func HopEmbeddings(ds *dataset.Dataset, k int) []*tensor.Matrix {
	return hopEmbeddings[float64](ds, k)
}
