// Package models implements the scalable GNN model families surveyed in
// tutorial §3.1.2 and the technique-specific variants of §3.2–§3.3, all on
// top of the library's substrates:
//
//   - GCN: full-batch iterative message passing (the scalability baseline).
//   - GraphSAGE: node-level sampled mini-batch training.
//   - ClusterGCN: partition-based subgraph mini-batch training.
//   - SGC: linear decoupled propagation (precompute Â^K X, train a linear
//     head).
//   - APPNP: predict-then-propagate with truncated personalized PageRank.
//   - SIGN: multi-hop decoupled embeddings with an MLP head.
//   - GAMLP: SIGN embeddings with learnable hop attention.
//   - LD2: multi-filter (identity/low-pass/high-pass) spectral embeddings
//     for heterophilous graphs, mini-batch trainable.
//   - ImplicitNet: EIGNN-style equilibrium model with exact implicit
//     differentiation.
//
// All models share TrainConfig/Report so the benchmark harness can compare
// accuracy, epoch time, propagation/precompute time, and peak resident
// floats (the GPU-memory proxy) across families.
package models

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/dataset"
	"scalegnn/internal/metrics"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// Element-type tiers selectable via TrainConfig.DType.
const (
	// DTypeFloat64 is the bitwise-reproducible reference tier (the default).
	DTypeFloat64 = "float64"
	// DTypeFloat32 is the raw-speed tier: half the memory traffic through
	// every dense kernel and SpMM, same RNG stream, same accuracy to within
	// rounding. GCN, ClusterGCN, and the decoupled families support it.
	DTypeFloat32 = "float32"
)

// TrainConfig holds the optimizer and schedule settings shared by all
// models.
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64
	Hidden      int
	Dropout     float64
	BatchSize   int // mini-batch models only; <= 0 means full batch
	Seed        uint64
	// DType selects the numeric tier: "" or "float64" for the reference
	// path, "float32" for the raw-speed tier. Models without a float32 path
	// (GraphSAGE, ImplicitNet, GraphTransformer) reject float32.
	DType string
	// Patience stops training after this many epochs without val-accuracy
	// improvement; 0 disables early stopping.
	Patience int
	// RestoreBest restores the best-validation weights when training ends
	// instead of keeping the final ones. Off by default: the legacy loops
	// kept final weights, and fingerprint comparisons depend on that.
	RestoreBest bool
	// Ctx cancels training between batches (deadline or cancellation); nil
	// means never.
	Ctx context.Context
	// Hooks observe the engine's per-batch/per-epoch progress.
	Hooks []train.Hook
	// Checkpoint enables durable snapshot/resume. Callers set Dir, Every,
	// Resume, and KeepLast; the model fills RNG and Fingerprint itself (the
	// fingerprint hashes model name + graph shape + config, so resuming
	// against a different run is rejected). Epochs and Patience are
	// deliberately not fingerprinted: extending a run is the point.
	Checkpoint train.CheckpointConfig
}

// DefaultTrainConfig returns the settings used across the benchmarks.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs: 100, LR: 0.01, WeightDecay: 5e-4, Hidden: 64,
		Dropout: 0.5, BatchSize: 512, Seed: 1, Patience: 30,
	}
}

func (c TrainConfig) validate() error {
	if c.Epochs < 1 {
		return fmt.Errorf("models: epochs %d < 1", c.Epochs)
	}
	if c.LR <= 0 {
		return fmt.Errorf("models: learning rate %v <= 0", c.LR)
	}
	if c.Hidden < 1 {
		return fmt.Errorf("models: hidden width %d < 1", c.Hidden)
	}
	switch c.DType {
	case "", DTypeFloat64, DTypeFloat32:
	default:
		return fmt.Errorf("models: unknown dtype %q (want %q or %q)", c.DType, DTypeFloat64, DTypeFloat32)
	}
	return nil
}

// dtype returns the normalized numeric tier ("" means float64).
func (c TrainConfig) dtype() string {
	if c.DType == "" {
		return DTypeFloat64
	}
	return c.DType
}

// errFloat32Unsupported is the uniform rejection for models without a
// float32 training path.
func errFloat32Unsupported(name string) error {
	return fmt.Errorf("models: %s has no float32 tier (iterative sampling/equilibrium/attention models stay float64); drop DType or use float64", name)
}

// Report summarizes one training run.
type Report struct {
	Model      string
	TrainAcc   float64
	ValAcc     float64
	TestAcc    float64
	TestF1     float64
	Epochs     int           // epochs actually run (early stopping)
	Precompute time.Duration // one-time graph work (decoupled models)
	TrainTime  time.Duration // total optimization time
	EpochTime  time.Duration // TrainTime / Epochs
	PeakFloats int           // peak resident float64s in one training step
	// BestVal / BestEpoch track the best validation accuracy the engine saw
	// during training and the epoch it occurred (engine accounting; with
	// TrainConfig.RestoreBest the final weights come from that epoch).
	BestVal   float64
	BestEpoch int
}

func (r Report) String() string {
	return fmt.Sprintf("%-12s test=%.4f val=%.4f f1=%.4f epochs=%d pre=%v epoch=%v peakMFloats=%.2f",
		r.Model, r.TestAcc, r.ValAcc, r.TestF1, r.Epochs,
		r.Precompute.Round(time.Millisecond), r.EpochTime.Round(time.Microsecond),
		float64(r.PeakFloats)/1e6)
}

// Trainer is the interface every model in this package satisfies; the core
// pipeline and the benchmark harness drive models through it.
type Trainer interface {
	// Name identifies the model family.
	Name() string
	// Fit trains on the dataset and returns the filled report.
	Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error)
	// Predict returns class predictions for every node; valid after Fit.
	Predict(ds *dataset.Dataset) ([]int, error)
}

// maskedLoss computes softmax cross-entropy on the selected rows of the
// full logits matrix and scatters the gradient back to full shape. The
// returned gradient is drawn from the shared tensor workspace: callers
// release it with tensor.PutBufOf once the backward pass has consumed it.
func maskedLoss[T tensor.Elem](logits *tensor.Mat[T], labels []int, idx []int) (float64, *tensor.Mat[T]) {
	sel := tensor.GetBufOf[T](len(idx), logits.Cols)
	logits.SelectRowsInto(idx, sel)
	gSel := tensor.GetBufOf[T](len(idx), logits.Cols)
	loss := nn.SoftmaxCrossEntropyInto(sel, dataset.LabelsAt(labels, idx), gSel)
	tensor.PutBufOf(sel)
	full := tensor.GetZeroBufOf[T](logits.Rows, logits.Cols)
	full.ScatterAddRows(idx, gSel)
	tensor.PutBufOf(gSel)
	return loss, full
}

// accuracyAt computes accuracy of full-graph logits on an index set.
func accuracyAt[T tensor.Elem](logits *tensor.Mat[T], labels []int, idx []int) float64 {
	sel := tensor.GetBufOf[T](len(idx), logits.Cols)
	logits.SelectRowsInto(idx, sel)
	pred := nn.Argmax(sel)
	tensor.PutBufOf(sel)
	return metrics.Accuracy(pred, dataset.LabelsAt(labels, idx))
}

// newRunRNG returns the run's serializable RNG source alongside its
// rand.Rand view. Models hold both: the view feeds every stochastic layer
// (same stream as tensor.NewRand(seed)), while the concrete PCG is what a
// checkpoint serializes — restoring it restores all views at once.
func newRunRNG(seed uint64) (*rand.PCG, *rand.Rand) {
	pcg := tensor.NewPCG(seed)
	return pcg, rand.New(pcg)
}

// runFingerprint hashes the run identity a snapshot must match to be
// resumable: the model family, the dataset's shape and splits, and every
// config field that shapes weights or the training trajectory. Epochs and
// Patience are excluded so a run can be extended or re-stopped. The dtype
// is folded in only for the float32 tier, so every snapshot written before
// dtypes existed still matches its (float64) run.
func runFingerprint(model string, ds *dataset.Dataset, cfg TrainConfig) uint64 {
	f := ckpt.NewFingerprint().
		String(model).
		U64(uint64(ds.G.N)).U64(uint64(ds.G.NumEdges())).
		U64(uint64(ds.X.Cols)).U64(uint64(ds.NumClasses)).
		U64(uint64(len(ds.TrainIdx))).U64(uint64(len(ds.ValIdx))).U64(uint64(len(ds.TestIdx))).
		U64(math.Float64bits(cfg.LR)).U64(math.Float64bits(cfg.WeightDecay)).
		U64(math.Float64bits(cfg.Dropout)).
		U64(uint64(cfg.Hidden)).U64(uint64(int64(cfg.BatchSize))).
		U64(cfg.Seed)
	if cfg.dtype() == DTypeFloat32 {
		f = f.String(DTypeFloat32)
	}
	return f.Sum()
}

// runLoop adapts the model-level TrainConfig to the shared training engine
// and copies the engine's accounting (epochs, wall-clock, peak floats, best
// validation) into the model report. On cancellation the partial engine
// accounting is still recorded before the error propagates. When
// cfg.Checkpoint is enabled, the engine-level config is completed here
// with the run fingerprint and the serializable RNG source.
func runLoop[T tensor.Elem](model string, ds *dataset.Dataset, cfg TrainConfig, pcg *rand.PCG, rng *rand.Rand, rep *Report, spec train.SpecOf[T]) error {
	ck := cfg.Checkpoint
	if ck.Dir != "" {
		ck.RNG = pcg
		ck.Fingerprint = runFingerprint(model, ds, cfg)
	}
	tr, err := train.Run(train.Config{
		Epochs: cfg.Epochs, Patience: cfg.Patience, RestoreBest: cfg.RestoreBest,
		RNG: rng, Ctx: cfg.Ctx, Hooks: cfg.Hooks, Checkpoint: ck,
	}, spec)
	if tr != nil {
		rep.Epochs = tr.Epochs
		rep.TrainTime = tr.TrainTime
		rep.EpochTime = tr.EpochTime
		rep.PeakFloats = tr.PeakFloats
		rep.BestVal = tr.BestVal
		rep.BestEpoch = tr.BestEpoch
	}
	return err
}

// decoupledHead trains an MLP on fixed per-node embeddings with mini-batch
// SGD — the shared training path of every decoupled model (SGC, SIGN, LD2
// all reduce to this after their precompute step), driven by the engine's
// precomputed-embedding batch source. Returns the trained network and fills
// the timing/accuracy parts of the report. The element type follows emb:
// float32 embeddings train a float32 head end to end.
func decoupledHead[T tensor.Elem](model string, emb *tensor.Mat[T], ds *dataset.Dataset, cfg TrainConfig, hidden []int, rep *Report) (*nn.SequentialOf[T], error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pcg, rng := newRunRNG(cfg.Seed)
	mlp := nn.NewMLPOf[T](nn.MLPConfig{
		In: emb.Cols, Hidden: hidden, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)
	opt := nn.NewAdamOf[T](cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	// The source owns the batch-index and gathered-feature scratch; vb holds
	// the validation selection. All recycled across the run.
	src := train.NewEmbeddingBatches(emb, ds.TrainIdx, cfg.BatchSize)
	defer src.Release()
	var vb tensor.BufOf[T]
	defer vb.Release()
	valLabels := dataset.LabelsAt(ds.Labels, ds.ValIdx)
	valIota := rangeIdx(len(ds.ValIdx))
	defer opt.Reset()
	err := runLoop(model, ds, cfg, pcg, rng, rep, train.SpecOf[T]{
		Source: src,
		Step: func(b train.BatchOf[T]) error {
			logits := mlp.Forward(b.X, true)
			grad := tensor.GetBufOf[T](logits.Rows, logits.Cols)
			nn.SoftmaxCrossEntropyInto(logits, dataset.LabelsAt(ds.Labels, b.Indices), grad)
			mlp.Backward(grad)
			tensor.PutBufOf(grad)
			opt.Step(mlp.Params())
			return nil
		},
		Validate: func() (float64, error) {
			valX := vb.Next(len(ds.ValIdx), emb.Cols)
			emb.SelectRowsInto(ds.ValIdx, valX)
			return accuracyAt(mlp.Forward(valX, false), valLabels, valIota), nil
		},
		Params:    mlp.Params(),
		Optimizer: opt,
		// Peak resident floats in one step: batch activations through the MLP.
		PeakFloats: func() int {
			return src.BatchSize()*(emb.Cols+2*cfg.Hidden+ds.NumClasses) + mlp.NumParams()*3
		},
	})
	if err != nil {
		return nil, err
	}

	fillAccuracies(func(idx []int) []int {
		return nn.Argmax(mlp.Forward(emb.SelectRows(idx), false))
	}, ds, rep)
	return mlp, nil
}

// rangeIdx returns [0, 1, ..., n-1].
func rangeIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// fillAccuracies computes train/val/test accuracy and test macro-F1 given a
// prediction function over node-index sets.
func fillAccuracies(predict func(idx []int) []int, ds *dataset.Dataset, rep *Report) {
	rep.TrainAcc = metrics.Accuracy(predict(ds.TrainIdx), dataset.LabelsAt(ds.Labels, ds.TrainIdx))
	rep.ValAcc = metrics.Accuracy(predict(ds.ValIdx), dataset.LabelsAt(ds.Labels, ds.ValIdx))
	testPred := predict(ds.TestIdx)
	testLabels := dataset.LabelsAt(ds.Labels, ds.TestIdx)
	rep.TestAcc = metrics.Accuracy(testPred, testLabels)
	rep.TestF1 = metrics.MacroF1(testPred, testLabels, ds.NumClasses)
}
