package models

import (
	"math"
	"testing"
)

// float32Cfg returns the quick training config switched to the raw-speed
// tier.
func float32Cfg() TrainConfig {
	cfg := quickCfg()
	cfg.DType = DTypeFloat32
	return cfg
}

// TestFloat32TierLearns trains every float32-capable family end-to-end on
// the raw-speed tier and requires the same "clearly beats chance" bar as
// the float64 smoke tests, plus a working Predict surface.
func TestFloat32TierLearns(t *testing.T) {
	ds := smallTask(t)
	makers := []struct {
		name string
		mk   func() (Trainer, error)
	}{
		{"gcn", func() (Trainer, error) { return NewGCN(2) }},
		{"clustergcn", func() (Trainer, error) { return NewClusterGCN(2, 8) }},
		{"sgc", func() (Trainer, error) { return NewSGC(2) }},
		{"appnp", func() (Trainer, error) { return NewAPPNP(10, 0.15) }},
		{"sign", func() (Trainer, error) { return NewSIGN(2) }},
		{"gamlp", func() (Trainer, error) { return NewGAMLP(2) }},
		{"ld2", func() (Trainer, error) { return NewLD2(2) }},
	}
	for _, mk := range makers {
		t.Run(mk.name, func(t *testing.T) {
			m, err := mk.mk()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m.Fit(ds, float32Cfg())
			if err != nil {
				t.Fatalf("%s float32 Fit: %v", m.Name(), err)
			}
			if rep.TestAcc < 0.7 {
				t.Errorf("%s float32: test accuracy %.3f below 0.7", m.Name(), rep.TestAcc)
			}
			pred, err := m.Predict(ds)
			if err != nil {
				t.Fatalf("%s float32 Predict: %v", m.Name(), err)
			}
			if len(pred) != ds.G.N {
				t.Errorf("%s float32: Predict returned %d values", m.Name(), len(pred))
			}
		})
	}
}

// TestGCNFloat32MatchesFloat64Accuracy is the equal-accuracy half of the
// raw-speed tier's contract: at identical config and seed, float32 GCN test
// accuracy must land within ±0.5 points of the float64 reference.
func TestGCNFloat32MatchesFloat64Accuracy(t *testing.T) {
	ds := smallTask(t)

	m64, err := NewGCN(2)
	if err != nil {
		t.Fatal(err)
	}
	rep64, err := m64.Fit(ds, quickCfg())
	if err != nil {
		t.Fatal(err)
	}

	m32, err := NewGCN(2)
	if err != nil {
		t.Fatal(err)
	}
	rep32, err := m32.Fit(ds, float32Cfg())
	if err != nil {
		t.Fatal(err)
	}

	if diff := math.Abs(rep32.TestAcc - rep64.TestAcc); diff > 0.005 {
		t.Errorf("float32 GCN accuracy %.4f vs float64 %.4f: |diff| %.4f > 0.005",
			rep32.TestAcc, rep64.TestAcc, diff)
	}
}

// TestFloat32UnsupportedFamiliesError pins the explicit error contract for
// the families that intentionally stay float64-only.
func TestFloat32UnsupportedFamiliesError(t *testing.T) {
	ds := smallTask(t)
	makers := []func() (Trainer, error){
		func() (Trainer, error) { return NewGraphSAGE(2, 5) },
		func() (Trainer, error) { return NewImplicitNet(0.8, nil) },
		func() (Trainer, error) { return NewGraphTransformer(2) },
	}
	for _, mk := range makers {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Fit(ds, float32Cfg()); err == nil {
			t.Errorf("%s: float32 Fit succeeded, want explicit unsupported error", m.Name())
		}
	}
}
