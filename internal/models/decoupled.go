package models

import (
	"fmt"
	"math"
	"time"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/nn"
	"scalegnn/internal/spectral"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// SGC is Simple Graph Convolution: precompute Â^K X once, then train a
// plain linear (or shallow MLP) classifier. The prototypical decoupled
// design — all graph work happens before training, so training is
// mini-batch with zero graph access.
type SGC struct {
	K int // propagation hops

	emb     *tensor.Matrix
	net     *nn.Sequential
	classes int
	logits  *tensor.Matrix // cached full-graph logits, nil until first Predict
}

// NewSGC constructs SGC with K propagation hops.
func NewSGC(k int) (*SGC, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: SGC needs K >= 1, got %d", k)
	}
	return &SGC{K: k}, nil
}

// Name implements Trainer.
func (m *SGC) Name() string { return fmt.Sprintf("SGC-K%d", m.K) }

// Fit precomputes the smoothed features and trains the head.
func (m *SGC) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	rep := &Report{Model: m.Name()}
	start := time.Now()
	op := graph.NewOperator(ds.G, graph.NormSymmetric, true)
	m.emb = op.PowerApply(ds.X, m.K)
	m.classes = ds.NumClasses
	m.logits = nil // refit invalidates the cached predictions
	rep.Precompute = time.Since(start)

	net, err := decoupledHead(m.Name(), m.emb, ds, cfg, nil, rep) // linear head: no hidden
	if err != nil {
		return nil, err
	}
	m.net = net
	return rep, nil
}

// Predict implements Trainer. Predictions come from the logits cached on
// first use after Fit/Restore: the head no longer reruns over every node on
// every call.
func (m *SGC) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net == nil {
		return nil, fmt.Errorf("models: SGC.Predict before Fit")
	}
	return nn.Argmax(headLogits(m.net, m.emb, &m.logits)), nil
}

// Nodes implements NodeScorer.
func (m *SGC) Nodes() int {
	if m.emb == nil {
		return 0
	}
	return m.emb.Rows
}

// Classes implements NodeScorer.
func (m *SGC) Classes() int { return m.classes }

// Score implements NodeScorer: batched per-node logits via one pooled
// gather + head forward.
// lint:confine score-path
func (m *SGC) Score(idx []int, out *tensor.Matrix) error {
	if m.net == nil {
		return fmt.Errorf("models: SGC.Score before Fit or Restore")
	}
	return scoreHead(m.Name(), m.net, m.emb, m.classes, idx, out)
}

// SIGN precomputes the multi-hop embedding [X | ÂX | Â²X | … | Â^K X] and
// trains an MLP on the concatenation — multi-scale information without
// per-epoch propagation.
type SIGN struct {
	K int

	emb     *tensor.Matrix
	net     *nn.Sequential
	classes int
	logits  *tensor.Matrix // cached full-graph logits, nil until first Predict
}

// NewSIGN constructs SIGN with hops 0..K.
func NewSIGN(k int) (*SIGN, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: SIGN needs K >= 1, got %d", k)
	}
	return &SIGN{K: k}, nil
}

// Name implements Trainer.
func (m *SIGN) Name() string { return fmt.Sprintf("SIGN-K%d", m.K) }

// hopEmbeddings returns [X, ÂX, …, Â^K X].
func hopEmbeddings(ds *dataset.Dataset, k int) []*tensor.Matrix {
	op := graph.NewOperator(ds.G, graph.NormSymmetric, true)
	hops := make([]*tensor.Matrix, 0, k+1)
	hops = append(hops, ds.X.Clone())
	cur := ds.X
	for i := 1; i <= k; i++ {
		cur = op.Apply(cur)
		hops = append(hops, cur)
	}
	return hops
}

// Fit precomputes hop embeddings and trains the MLP head.
func (m *SIGN) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	rep := &Report{Model: m.Name()}
	start := time.Now()
	m.emb = spectral.ConcatColumns(hopEmbeddings(ds, m.K))
	m.classes = ds.NumClasses
	m.logits = nil // refit invalidates the cached predictions
	rep.Precompute = time.Since(start)

	net, err := decoupledHead(m.Name(), m.emb, ds, cfg, []int{cfg.Hidden}, rep)
	if err != nil {
		return nil, err
	}
	m.net = net
	return rep, nil
}

// Predict implements Trainer. Predictions come from the logits cached on
// first use after Fit/Restore.
func (m *SIGN) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net == nil {
		return nil, fmt.Errorf("models: SIGN.Predict before Fit")
	}
	return nn.Argmax(headLogits(m.net, m.emb, &m.logits)), nil
}

// Nodes implements NodeScorer.
func (m *SIGN) Nodes() int {
	if m.emb == nil {
		return 0
	}
	return m.emb.Rows
}

// Classes implements NodeScorer.
func (m *SIGN) Classes() int { return m.classes }

// Score implements NodeScorer.
// lint:confine score-path
func (m *SIGN) Score(idx []int, out *tensor.Matrix) error {
	if m.net == nil {
		return fmt.Errorf("models: SIGN.Score before Fit or Restore")
	}
	return scoreHead(m.Name(), m.net, m.emb, m.classes, idx, out)
}

// APPNP is predict-then-propagate: an MLP produces per-node logits, which
// are then smoothed by a K-step truncated personalized-PageRank
// propagation Z = Σ_k α(1−α)^k Â^k H. Training is full-batch;
// backpropagation through the (symmetric) propagation is the same
// propagation applied to the gradient.
type APPNP struct {
	K     int
	Alpha float64

	net     *nn.Sequential
	op      *graph.Operator
	x       *tensor.Matrix // features the model was fit on (diffusion input)
	classes int
	logits  *tensor.Matrix // cached diffused full-graph logits, nil until first Predict
}

// NewAPPNP constructs APPNP with K propagation steps and restart α.
func NewAPPNP(k int, alpha float64) (*APPNP, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: APPNP needs K >= 1, got %d", k)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("models: APPNP alpha %v outside (0,1]", alpha)
	}
	return &APPNP{K: k, Alpha: alpha}, nil
}

// Name implements Trainer.
func (m *APPNP) Name() string { return fmt.Sprintf("APPNP-K%d", m.K) }

// propagate applies the truncated PPR diffusion to h. Hops ping-pong
// between two pooled scratch matrices; the returned accumulator is drawn
// from the shared tensor workspace and callers release it with
// tensor.PutBuf once consumed.
func (m *APPNP) propagate(h *tensor.Matrix) *tensor.Matrix {
	z := tensor.GetBuf(h.Rows, h.Cols)
	copy(z.Data, h.Data)
	z.Scale(m.Alpha)
	cur := tensor.GetBuf(h.Rows, h.Cols)
	copy(cur.Data, h.Data)
	next := tensor.GetBuf(h.Rows, h.Cols)
	w := m.Alpha
	for k := 1; k <= m.K; k++ {
		m.op.ApplyInto(cur, next)
		cur, next = next, cur
		w *= 1 - m.Alpha
		// Final hop absorbs the geometric tail so the weights sum to 1
		// (the standard iterate z ← (1-α)Âz + αh has the same effect).
		coef := w
		if k == m.K {
			coef = w / m.Alpha
		}
		z.AddScaled(coef, cur)
	}
	tensor.PutBuf(cur)
	tensor.PutBuf(next)
	return z
}

// Fit trains the MLP with propagation in the loss path.
func (m *APPNP) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pcg, rng := newRunRNG(cfg.Seed)
	m.op = graph.NewOperator(ds.G, graph.NormSymmetric, true)
	m.x = ds.X
	m.classes = ds.NumClasses
	m.logits = nil // refit invalidates the cached predictions
	m.net = nn.NewMLP(nn.MLPConfig{
		In: ds.X.Cols, Hidden: []int{cfg.Hidden}, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	rep := &Report{Model: m.Name()}
	defer opt.Reset()
	err := runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.Spec{
		Source: train.FullBatch{},
		Step: func(train.Batch) error {
			h := m.net.Forward(ds.X, true)
			z := m.propagate(h)
			_, gz := maskedLoss(z, ds.Labels, ds.TrainIdx)
			tensor.PutBuf(z)
			gh := m.propagate(gz) // symmetric diffusion is self-adjoint
			tensor.PutBuf(gz)
			m.net.Backward(gh)
			tensor.PutBuf(gh)
			opt.Step(m.net.Params())
			return nil
		},
		Validate: func() (float64, error) {
			valZ := m.propagate(m.net.Forward(ds.X, false))
			val := accuracyAt(valZ, ds.Labels, ds.ValIdx)
			tensor.PutBuf(valZ)
			return val, nil
		},
		Params:    m.net.Params(),
		Optimizer: opt,
		PeakFloats: func() int {
			n := ds.G.N
			return 2*n*(ds.X.Cols+cfg.Hidden+2*ds.NumClasses) + m.net.NumParams()*3
		},
	})
	if err != nil {
		return nil, err
	}

	logits := m.propagate(m.net.Forward(ds.X, false))
	fillAccuracies(func(idx []int) []int {
		return nn.Argmax(logits.SelectRows(idx))
	}, ds, rep)
	tensor.PutBuf(logits)
	return rep, nil
}

// Predict implements Trainer. The diffused logits are cached on first use
// after Fit/Restore: Predict used to rerun the full K-hop propagation on
// every call — the recompute bug that made decoupled serving pay the
// whole-graph cost per request.
func (m *APPNP) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net == nil {
		return nil, fmt.Errorf("models: APPNP.Predict before Fit")
	}
	return nn.Argmax(m.fullLogits()), nil
}

// fullLogits returns (computing and caching on first call) the propagated
// full-graph logits over the features the model was fit on.
func (m *APPNP) fullLogits() *tensor.Matrix {
	if m.logits == nil {
		z := m.propagate(m.net.Forward(m.x, false))
		m.logits = z.Clone()
		tensor.PutBuf(z)
	}
	return m.logits
}

// Nodes implements NodeScorer.
func (m *APPNP) Nodes() int {
	if m.x == nil {
		return 0
	}
	return m.x.Rows
}

// Classes implements NodeScorer.
func (m *APPNP) Classes() int { return m.classes }

// Score implements NodeScorer. Propagation couples every node, so per-node
// serving reads rows of the cached diffused logits instead of recomputing
// the K-hop walk per request.
// lint:confine score-path
func (m *APPNP) Score(idx []int, out *tensor.Matrix) error {
	if m.net == nil {
		return fmt.Errorf("models: APPNP.Score before Fit or Restore")
	}
	z := m.fullLogits()
	if out.Rows != len(idx) || out.Cols != m.classes {
		return fmt.Errorf("models: APPNP.Score dst %dx%d, want %dx%d", out.Rows, out.Cols, len(idx), m.classes)
	}
	if tensor.Overlaps(out.Data, z.Data) {
		return fmt.Errorf("models: APPNP.Score dst aliases the cached logits")
	}
	for _, n := range idx {
		if n < 0 || n >= z.Rows {
			return fmt.Errorf("models: APPNP.Score node %d outside [0,%d)", n, z.Rows)
		}
	}
	z.SelectRowsInto(idx, out)
	return nil
}

// GAMLP is SIGN with learnable hop attention: per-hop embeddings are
// combined with softmax-normalized learnable scalars before the MLP head,
// so the model learns how far to look — the "adaptive combination"
// distinguishing GAMLP-style models from fixed concatenation.
type GAMLP struct {
	K int

	hops    []*tensor.Matrix
	theta   *nn.Param // raw attention logits, 1 x (K+1)
	net     *nn.Sequential
	classes int
	logits  *tensor.Matrix // cached full-graph logits, nil until first Predict
}

// NewGAMLP constructs GAMLP with hops 0..K.
func NewGAMLP(k int) (*GAMLP, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: GAMLP needs K >= 1, got %d", k)
	}
	return &GAMLP{K: k}, nil
}

// Name implements Trainer.
func (m *GAMLP) Name() string { return fmt.Sprintf("GAMLP-K%d", m.K) }

// attention returns softmax(θ).
func (m *GAMLP) attention() []float64 {
	raw := m.theta.Value.Row(0)
	out := make([]float64, len(raw))
	max := raw[0]
	for _, v := range raw[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range raw {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// combine produces Σ_k a_k H_k restricted to the given rows. The result
// comes from the shared tensor workspace; callers release it with
// tensor.PutBuf after the last use.
func (m *GAMLP) combine(att []float64, idx []int) *tensor.Matrix {
	out := tensor.GetZeroBuf(len(idx), m.hops[0].Cols)
	sel := tensor.GetBuf(len(idx), m.hops[0].Cols)
	for k, h := range m.hops {
		h.SelectRowsInto(idx, sel)
		out.AddScaled(att[k], sel)
	}
	tensor.PutBuf(sel)
	return out
}

// Fit precomputes hop embeddings and trains attention + MLP jointly.
func (m *GAMLP) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rep := &Report{Model: m.Name()}
	start := time.Now()
	m.hops = hopEmbeddings(ds, m.K)
	m.classes = ds.NumClasses
	m.logits = nil // refit invalidates the cached predictions
	rep.Precompute = time.Since(start)

	pcg, rng := newRunRNG(cfg.Seed)
	m.theta = nn.NewParam("gamlp.theta", tensor.New(1, m.K+1))
	m.net = nn.NewMLP(nn.MLPConfig{
		In: ds.X.Cols, Hidden: []int{cfg.Hidden}, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	params := append(m.net.Params(), m.theta)

	src := train.NewIndexBatches(ds.TrainIdx, cfg.BatchSize)
	// Batch scratch reused across the run (attention-gradient accumulator);
	// pooled matrices are released as soon as the backward pass has consumed
	// them.
	ga := make([]float64, m.K+1)
	valLabels := dataset.LabelsAt(ds.Labels, ds.ValIdx)
	valIota := rangeIdx(len(ds.ValIdx))
	defer opt.Reset()
	err := runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.Spec{
		Source: src,
		Step: func(b train.Batch) error {
			bIdx := b.Indices
			att := m.attention()
			x := m.combine(att, bIdx)
			logits := m.net.Forward(x, true)
			gLogits := tensor.GetBuf(logits.Rows, logits.Cols)
			nn.SoftmaxCrossEntropyInto(logits, dataset.LabelsAt(ds.Labels, bIdx), gLogits)
			gx := m.net.Backward(gLogits)
			tensor.PutBuf(gLogits)
			tensor.PutBuf(x)
			// Attention gradient: ∂L/∂a_k = <gx, H_k[idx]>, then softmax
			// Jacobian back to θ.
			sel := tensor.GetBuf(len(bIdx), m.hops[0].Cols)
			for k, h := range m.hops {
				h.SelectRowsInto(bIdx, sel)
				var dot float64
				for i := range gx.Data {
					dot += gx.Data[i] * sel.Data[i]
				}
				ga[k] = dot
			}
			tensor.PutBuf(sel)
			var inner float64
			for k := range ga {
				inner += att[k] * ga[k]
			}
			for k := range ga {
				m.theta.Grad.Data[k] += att[k] * (ga[k] - inner)
			}
			opt.Step(params)
			return nil
		},
		Validate: func() (float64, error) {
			att := m.attention()
			valX := m.combine(att, ds.ValIdx)
			valLogits := m.net.Forward(valX, false)
			tensor.PutBuf(valX)
			return accuracyAt(valLogits, valLabels, valIota), nil
		},
		Params:    params,
		Optimizer: opt,
		PeakFloats: func() int {
			return src.BatchSize()*(ds.X.Cols*(m.K+2)+cfg.Hidden+ds.NumClasses) + m.net.NumParams()*3
		},
	})
	if err != nil {
		return nil, err
	}

	fillAccuracies(func(idx []int) []int {
		att := m.attention()
		x := m.combine(att, idx)
		pred := nn.Argmax(m.net.Forward(x, false))
		tensor.PutBuf(x)
		return pred
	}, ds, rep)
	return rep, nil
}

// Predict implements Trainer. The attention-combined logits are cached on
// first use after Fit/Restore: Predict used to recombine every hop
// embedding and rerun the head over the whole graph on every call.
func (m *GAMLP) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net == nil {
		return nil, fmt.Errorf("models: GAMLP.Predict before Fit")
	}
	return nn.Argmax(m.fullLogits()), nil
}

// fullLogits returns (computing and caching on first call) the full-graph
// logits under the learned hop attention.
func (m *GAMLP) fullLogits() *tensor.Matrix {
	if m.logits == nil {
		att := m.attention()
		x := m.combine(att, rangeIdx(m.hops[0].Rows))
		m.logits = m.net.Forward(x, false).Clone()
		tensor.PutBuf(x)
	}
	return m.logits
}

// Nodes implements NodeScorer.
func (m *GAMLP) Nodes() int {
	if len(m.hops) == 0 {
		return 0
	}
	return m.hops[0].Rows
}

// Classes implements NodeScorer.
func (m *GAMLP) Classes() int { return m.classes }

// Score implements NodeScorer: attention-combine the requested rows, then
// one pooled head forward.
// lint:confine score-path
func (m *GAMLP) Score(idx []int, out *tensor.Matrix) error {
	if m.net == nil {
		return fmt.Errorf("models: GAMLP.Score before Fit or Restore")
	}
	if out.Rows != len(idx) || out.Cols != m.classes {
		return fmt.Errorf("models: GAMLP.Score dst %dx%d, want %dx%d", out.Rows, out.Cols, len(idx), m.classes)
	}
	for _, n := range idx {
		if n < 0 || n >= m.hops[0].Rows {
			return fmt.Errorf("models: GAMLP.Score node %d outside [0,%d)", n, m.hops[0].Rows)
		}
	}
	for _, h := range m.hops {
		if tensor.Overlaps(out.Data, h.Data) {
			return fmt.Errorf("models: GAMLP.Score dst aliases a hop embedding")
		}
	}
	att := m.attention()
	x := m.combine(att, idx)
	y := m.net.Forward(x, false)
	copy(out.Data, y.Data)
	tensor.PutBuf(x)
	return nil
}

// HopAttention exposes the learned softmax hop weights (for the ablation
// benchmarks).
func (m *GAMLP) HopAttention() []float64 { return m.attention() }

// LD2 is the multi-filter heterophilous decoupled model: precompute
// identity, low-pass, and high-pass spectral channels of the features,
// concatenate, and train an MLP mini-batch. The high-pass channel carries
// the heterophilous signal a pure low-pass model destroys — E5's subject.
type LD2 struct {
	Hops int

	emb     *tensor.Matrix
	net     *nn.Sequential
	classes int
	logits  *tensor.Matrix // cached full-graph logits, nil until first Predict
}

// NewLD2 constructs LD2 with K-hop low/high-pass channels.
func NewLD2(hops int) (*LD2, error) {
	if hops < 1 {
		return nil, fmt.Errorf("models: LD2 needs hops >= 1, got %d", hops)
	}
	return &LD2{Hops: hops}, nil
}

// Name implements Trainer.
func (m *LD2) Name() string { return fmt.Sprintf("LD2-K%d", m.Hops) }

// embed precomputes the multi-filter embedding — shared by Fit and Restore.
func (m *LD2) embed(ds *dataset.Dataset) (*tensor.Matrix, error) {
	// Self-looped operator: the low-pass channel is then exactly Â^K (self
	// signal diluted by degree normalization), and the high-pass channel is
	// the complementary L̂^K neighbor-disagreement signal.
	op := graph.NewOperator(ds.G, graph.NormSymmetric, true)
	channels := []spectral.ChannelSpec{
		{Kind: spectral.ChannelIdentity},
		{Kind: spectral.ChannelAdjPower, Hops: m.Hops},
		{Kind: spectral.ChannelLapPower, Hops: m.Hops},
	}
	mats := make([]*tensor.Matrix, len(channels))
	for i, ch := range channels {
		one, err := spectral.MultiFilter(op, ds.X, []spectral.ChannelSpec{ch})
		if err != nil {
			return nil, fmt.Errorf("models: LD2 embedding: %w", err)
		}
		normalizeChannel(one)
		mats[i] = one
	}
	return spectral.ConcatColumns(mats), nil
}

// Fit precomputes the multi-filter embedding and trains the head.
func (m *LD2) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	rep := &Report{Model: m.Name()}
	start := time.Now()
	emb, err := m.embed(ds)
	if err != nil {
		return nil, err
	}
	m.emb = emb
	m.classes = ds.NumClasses
	m.logits = nil // refit invalidates the cached predictions
	rep.Precompute = time.Since(start)

	net, err := decoupledHead(m.Name(), m.emb, ds, cfg, []int{cfg.Hidden}, rep)
	if err != nil {
		return nil, err
	}
	m.net = net
	return rep, nil
}

// normalizeChannel rescales a channel matrix so its mean row L2 norm is 1
// — the per-channel normalization LD2 applies so that no spectral view
// dominates the head's input scale.
func normalizeChannel(m *tensor.Matrix) {
	if m.Rows == 0 {
		return
	}
	var total float64
	for i := 0; i < m.Rows; i++ {
		total += tensor.Norm2(m.Row(i))
	}
	mean := total / float64(m.Rows)
	if mean > 0 {
		m.Scale(1 / mean)
	}
}

// Predict implements Trainer. Predictions come from the logits cached on
// first use after Fit/Restore.
func (m *LD2) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net == nil {
		return nil, fmt.Errorf("models: LD2.Predict before Fit")
	}
	return nn.Argmax(headLogits(m.net, m.emb, &m.logits)), nil
}

// Nodes implements NodeScorer.
func (m *LD2) Nodes() int {
	if m.emb == nil {
		return 0
	}
	return m.emb.Rows
}

// Classes implements NodeScorer.
func (m *LD2) Classes() int { return m.classes }

// Score implements NodeScorer.
// lint:confine score-path
func (m *LD2) Score(idx []int, out *tensor.Matrix) error {
	if m.net == nil {
		return fmt.Errorf("models: LD2.Score before Fit or Restore")
	}
	return scoreHead(m.Name(), m.net, m.emb, m.classes, idx, out)
}
