package models

import (
	"fmt"
	"math"
	"time"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/nn"
	"scalegnn/internal/spectral"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// decoupledState is the trained state shared by the embedding+head families
// (SGC, SIGN, LD2): a precomputed embedding and an MLP head at exactly one
// numeric tier, plus the float64 full-graph logits cache the serving path
// reads. A refit or restore at either tier clears the other.
type decoupledState struct {
	emb     *tensor.Matrix
	net     *nn.Sequential
	emb32   *tensor.Mat[float32]
	net32   *nn.SequentialOf[float32]
	classes int
	logits  *tensor.Matrix // cached full-graph logits, nil until first Predict
}

// decEmb returns the pointer to the dtype-matching embedding field.
func decEmb[T tensor.Elem](s *decoupledState) **tensor.Mat[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(&s.emb32).(**tensor.Mat[T])
	}
	return any(&s.emb).(**tensor.Mat[T])
}

// decNet returns the pointer to the dtype-matching head field.
func decNet[T tensor.Elem](s *decoupledState) **nn.SequentialOf[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(&s.net32).(**nn.SequentialOf[T])
	}
	return any(&s.net).(**nn.SequentialOf[T])
}

// decStore installs a freshly trained (or restored) embedding+head pair,
// invalidating the other tier and the logits cache.
func decStore[T tensor.Elem](s *decoupledState, emb *tensor.Mat[T], net *nn.SequentialOf[T], classes int) {
	s.emb, s.net, s.emb32, s.net32 = nil, nil, nil, nil
	*decEmb[T](s) = emb
	*decNet[T](s) = net
	s.classes = classes
	s.logits = nil
}

func (s *decoupledState) nodes() int {
	if s.emb32 != nil {
		return s.emb32.Rows
	}
	if s.emb == nil {
		return 0
	}
	return s.emb.Rows
}

// predict returns cached-argmax predictions at whichever tier is trained.
func (s *decoupledState) predict(name string) ([]int, error) {
	if s.net32 != nil {
		return nn.Argmax(headLogits(s.net32, s.emb32, &s.logits)), nil
	}
	if s.net == nil {
		return nil, fmt.Errorf("models: %s.Predict before Fit", name)
	}
	return nn.Argmax(headLogits(s.net, s.emb, &s.logits)), nil
}

// score runs the batched serving kernel at whichever tier is trained.
func (s *decoupledState) score(name string, idx []int, out *tensor.Matrix) error {
	if s.net32 != nil {
		return scoreHead(name, s.net32, s.emb32, s.classes, idx, out)
	}
	if s.net == nil {
		return fmt.Errorf("models: %s.Score before Fit or Restore", name)
	}
	return scoreHead(name, s.net, s.emb, s.classes, idx, out)
}

// SGC is Simple Graph Convolution: precompute Â^K X once, then train a
// plain linear (or shallow MLP) classifier. The prototypical decoupled
// design — all graph work happens before training, so training is
// mini-batch with zero graph access.
type SGC struct {
	K int // propagation hops

	decoupledState
}

// NewSGC constructs SGC with K propagation hops.
func NewSGC(k int) (*SGC, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: SGC needs K >= 1, got %d", k)
	}
	return &SGC{K: k}, nil
}

// Name implements Trainer.
func (m *SGC) Name() string { return fmt.Sprintf("SGC-K%d", m.K) }

// Fit precomputes the smoothed features and trains the head at the tier
// selected by cfg.DType.
func (m *SGC) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return fitSGC[float32](m, ds, cfg)
	}
	return fitSGC[float64](m, ds, cfg)
}

func fitSGC[T tensor.Elem](m *SGC, ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	rep := &Report{Model: m.Name()}
	start := time.Now()
	op := graph.NewOperatorOf[T](ds.G, graph.NormSymmetric, true)
	emb := op.PowerApply(tensor.FromFloat64[T](ds.X), m.K)
	rep.Precompute = time.Since(start)

	net, err := decoupledHead(m.Name(), emb, ds, cfg, nil, rep) // linear head: no hidden
	if err != nil {
		return nil, err
	}
	decStore(&m.decoupledState, emb, net, ds.NumClasses)
	return rep, nil
}

// Predict implements Trainer. Predictions come from the logits cached on
// first use after Fit/Restore: the head no longer reruns over every node on
// every call.
func (m *SGC) Predict(ds *dataset.Dataset) ([]int, error) {
	return m.decoupledState.predict(m.Name())
}

// Nodes implements NodeScorer.
func (m *SGC) Nodes() int { return m.decoupledState.nodes() }

// Classes implements NodeScorer.
func (m *SGC) Classes() int { return m.classes }

// Score implements NodeScorer: batched per-node logits via one pooled
// gather + head forward.
// lint:confine score-path
func (m *SGC) Score(idx []int, out *tensor.Matrix) error {
	return m.decoupledState.score(m.Name(), idx, out)
}

// SIGN precomputes the multi-hop embedding [X | ÂX | Â²X | … | Â^K X] and
// trains an MLP on the concatenation — multi-scale information without
// per-epoch propagation.
type SIGN struct {
	K int

	decoupledState
}

// NewSIGN constructs SIGN with hops 0..K.
func NewSIGN(k int) (*SIGN, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: SIGN needs K >= 1, got %d", k)
	}
	return &SIGN{K: k}, nil
}

// Name implements Trainer.
func (m *SIGN) Name() string { return fmt.Sprintf("SIGN-K%d", m.K) }

// hopEmbeddings returns [X, ÂX, …, Â^K X] at tier T.
func hopEmbeddings[T tensor.Elem](ds *dataset.Dataset, k int) []*tensor.Mat[T] {
	op := graph.NewOperatorOf[T](ds.G, graph.NormSymmetric, true)
	x := tensor.FromFloat64[T](ds.X)
	hops := make([]*tensor.Mat[T], 0, k+1)
	hops = append(hops, x.Clone())
	cur := x
	for i := 1; i <= k; i++ {
		cur = op.Apply(cur)
		hops = append(hops, cur)
	}
	return hops
}

// Fit precomputes hop embeddings and trains the MLP head at the tier
// selected by cfg.DType.
func (m *SIGN) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return fitSIGN[float32](m, ds, cfg)
	}
	return fitSIGN[float64](m, ds, cfg)
}

func fitSIGN[T tensor.Elem](m *SIGN, ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	rep := &Report{Model: m.Name()}
	start := time.Now()
	emb := spectral.ConcatColumns(hopEmbeddings[T](ds, m.K))
	rep.Precompute = time.Since(start)

	net, err := decoupledHead(m.Name(), emb, ds, cfg, []int{cfg.Hidden}, rep)
	if err != nil {
		return nil, err
	}
	decStore(&m.decoupledState, emb, net, ds.NumClasses)
	return rep, nil
}

// Predict implements Trainer. Predictions come from the logits cached on
// first use after Fit/Restore.
func (m *SIGN) Predict(ds *dataset.Dataset) ([]int, error) {
	return m.decoupledState.predict(m.Name())
}

// Nodes implements NodeScorer.
func (m *SIGN) Nodes() int { return m.decoupledState.nodes() }

// Classes implements NodeScorer.
func (m *SIGN) Classes() int { return m.classes }

// Score implements NodeScorer.
// lint:confine score-path
func (m *SIGN) Score(idx []int, out *tensor.Matrix) error {
	return m.decoupledState.score(m.Name(), idx, out)
}

// APPNP is predict-then-propagate: an MLP produces per-node logits, which
// are then smoothed by a K-step truncated personalized-PageRank
// propagation Z = Σ_k α(1−α)^k Â^k H. Training is full-batch;
// backpropagation through the (symmetric) propagation is the same
// propagation applied to the gradient.
type APPNP struct {
	K     int
	Alpha float64

	net     *nn.Sequential
	op      *graph.Operator
	x       *tensor.Matrix // features the model was fit on (diffusion input)
	net32   *nn.SequentialOf[float32]
	op32    *graph.OperatorOf[float32]
	x32     *tensor.Mat[float32]
	classes int
	logits  *tensor.Matrix // cached diffused full-graph logits, nil until first Predict
}

// NewAPPNP constructs APPNP with K propagation steps and restart α.
func NewAPPNP(k int, alpha float64) (*APPNP, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: APPNP needs K >= 1, got %d", k)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("models: APPNP alpha %v outside (0,1]", alpha)
	}
	return &APPNP{K: k, Alpha: alpha}, nil
}

// Name implements Trainer.
func (m *APPNP) Name() string { return fmt.Sprintf("APPNP-K%d", m.K) }

// appnpPropagate applies the truncated PPR diffusion to h. Hops ping-pong
// between two pooled scratch matrices; the returned accumulator is drawn
// from the shared tensor workspace and callers release it with
// tensor.PutBufOf once consumed. Hop coefficients are computed in float64
// at every tier and narrowed only when applied.
func appnpPropagate[T tensor.Elem](op *graph.OperatorOf[T], alpha float64, K int, h *tensor.Mat[T]) *tensor.Mat[T] {
	z := tensor.GetBufOf[T](h.Rows, h.Cols)
	copy(z.Data, h.Data)
	z.Scale(T(alpha))
	cur := tensor.GetBufOf[T](h.Rows, h.Cols)
	copy(cur.Data, h.Data)
	next := tensor.GetBufOf[T](h.Rows, h.Cols)
	w := alpha
	for k := 1; k <= K; k++ {
		op.ApplyInto(cur, next)
		cur, next = next, cur
		w *= 1 - alpha
		// Final hop absorbs the geometric tail so the weights sum to 1
		// (the standard iterate z ← (1-α)Âz + αh has the same effect).
		coef := w
		if k == K {
			coef = w / alpha
		}
		z.AddScaled(T(coef), cur)
	}
	tensor.PutBufOf(cur)
	tensor.PutBufOf(next)
	return z
}

// propagate is the float64 diffusion used by the serving/benchmark paths.
func (m *APPNP) propagate(h *tensor.Matrix) *tensor.Matrix {
	return appnpPropagate(m.op, m.Alpha, m.K, h)
}

// appnpNet returns the pointer to the dtype-matching trained-network field.
func appnpNet[T tensor.Elem](m *APPNP) **nn.SequentialOf[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(&m.net32).(**nn.SequentialOf[T])
	}
	return any(&m.net).(**nn.SequentialOf[T])
}

// appnpOp returns the pointer to the dtype-matching operator field.
func appnpOp[T tensor.Elem](m *APPNP) **graph.OperatorOf[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(&m.op32).(**graph.OperatorOf[T])
	}
	return any(&m.op).(**graph.OperatorOf[T])
}

// Fit trains the MLP with propagation in the loss path, at the tier
// selected by cfg.DType.
func (m *APPNP) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return fitAPPNP[float32](m, ds, cfg)
	}
	return fitAPPNP[float64](m, ds, cfg)
}

func fitAPPNP[T tensor.Elem](m *APPNP, ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	pcg, rng := newRunRNG(cfg.Seed)
	op := graph.NewOperatorOf[T](ds.G, graph.NormSymmetric, true)
	x := tensor.FromFloat64[T](ds.X)
	net := nn.NewMLPOf[T](nn.MLPConfig{
		In: ds.X.Cols, Hidden: []int{cfg.Hidden}, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)

	m.net, m.net32, m.op, m.op32, m.x32 = nil, nil, nil, nil, nil
	*appnpNet[T](m) = net
	*appnpOp[T](m) = op
	m.x = ds.X
	if x32, ok := any(x).(*tensor.Mat[float32]); ok {
		m.x32 = x32
	}
	m.classes = ds.NumClasses
	m.logits = nil // refit invalidates the cached predictions

	opt := nn.NewAdamOf[T](cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	rep := &Report{Model: m.Name()}
	defer opt.Reset()
	err := runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.SpecOf[T]{
		Source: train.FullBatchOf[T]{},
		Step: func(train.BatchOf[T]) error {
			h := net.Forward(x, true)
			z := appnpPropagate(op, m.Alpha, m.K, h)
			_, gz := maskedLoss(z, ds.Labels, ds.TrainIdx)
			tensor.PutBufOf(z)
			gh := appnpPropagate(op, m.Alpha, m.K, gz) // symmetric diffusion is self-adjoint
			tensor.PutBufOf(gz)
			net.Backward(gh)
			tensor.PutBufOf(gh)
			opt.Step(net.Params())
			return nil
		},
		Validate: func() (float64, error) {
			valZ := appnpPropagate(op, m.Alpha, m.K, net.Forward(x, false))
			val := accuracyAt(valZ, ds.Labels, ds.ValIdx)
			tensor.PutBufOf(valZ)
			return val, nil
		},
		Params:    net.Params(),
		Optimizer: opt,
		PeakFloats: func() int {
			n := ds.G.N
			return 2*n*(ds.X.Cols+cfg.Hidden+2*ds.NumClasses) + net.NumParams()*3
		},
	})
	if err != nil {
		return nil, err
	}

	logits := appnpPropagate(op, m.Alpha, m.K, net.Forward(x, false))
	fillAccuracies(func(idx []int) []int {
		return nn.Argmax(logits.SelectRows(idx))
	}, ds, rep)
	tensor.PutBufOf(logits)
	return rep, nil
}

// Predict implements Trainer. The diffused logits are cached on first use
// after Fit/Restore: Predict used to rerun the full K-hop propagation on
// every call — the recompute bug that made decoupled serving pay the
// whole-graph cost per request.
func (m *APPNP) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net == nil && m.net32 == nil {
		return nil, fmt.Errorf("models: APPNP.Predict before Fit")
	}
	return nn.Argmax(m.fullLogits()), nil
}

// fullLogits returns (computing and caching on first call) the propagated
// full-graph logits over the features the model was fit on. A float32
// model computes the diffusion in float32 and widens once into the cache.
func (m *APPNP) fullLogits() *tensor.Matrix {
	if m.logits == nil {
		if m.net32 != nil {
			z := appnpPropagate(m.op32, m.Alpha, m.K, m.net32.Forward(m.x32, false))
			c := tensor.New(z.Rows, z.Cols)
			tensor.WidenInto(z, c)
			tensor.PutBufOf(z)
			m.logits = c
		} else {
			z := m.propagate(m.net.Forward(m.x, false))
			m.logits = z.Clone()
			tensor.PutBuf(z)
		}
	}
	return m.logits
}

// Nodes implements NodeScorer.
func (m *APPNP) Nodes() int {
	if m.x32 != nil {
		return m.x32.Rows
	}
	if m.x == nil {
		return 0
	}
	return m.x.Rows
}

// Classes implements NodeScorer.
func (m *APPNP) Classes() int { return m.classes }

// Score implements NodeScorer. Propagation couples every node, so per-node
// serving reads rows of the cached diffused logits instead of recomputing
// the K-hop walk per request.
// lint:confine score-path
func (m *APPNP) Score(idx []int, out *tensor.Matrix) error {
	if m.net == nil && m.net32 == nil {
		return fmt.Errorf("models: APPNP.Score before Fit or Restore")
	}
	z := m.fullLogits()
	if out.Rows != len(idx) || out.Cols != m.classes {
		return fmt.Errorf("models: APPNP.Score dst %dx%d, want %dx%d", out.Rows, out.Cols, len(idx), m.classes)
	}
	if tensor.Overlaps(out.Data, z.Data) {
		return fmt.Errorf("models: APPNP.Score dst aliases the cached logits")
	}
	for _, n := range idx {
		if n < 0 || n >= z.Rows {
			return fmt.Errorf("models: APPNP.Score node %d outside [0,%d)", n, z.Rows)
		}
	}
	z.SelectRowsInto(idx, out)
	return nil
}

// GAMLP is SIGN with learnable hop attention: per-hop embeddings are
// combined with softmax-normalized learnable scalars before the MLP head,
// so the model learns how far to look — the "adaptive combination"
// distinguishing GAMLP-style models from fixed concatenation.
type GAMLP struct {
	K int

	hops    []*tensor.Matrix
	theta   *nn.Param // raw attention logits, 1 x (K+1)
	net     *nn.Sequential
	hops32  []*tensor.Mat[float32]
	theta32 *nn.ParamOf[float32]
	net32   *nn.SequentialOf[float32]
	classes int
	logits  *tensor.Matrix // cached full-graph logits, nil until first Predict
}

// NewGAMLP constructs GAMLP with hops 0..K.
func NewGAMLP(k int) (*GAMLP, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: GAMLP needs K >= 1, got %d", k)
	}
	return &GAMLP{K: k}, nil
}

// Name implements Trainer.
func (m *GAMLP) Name() string { return fmt.Sprintf("GAMLP-K%d", m.K) }

// gamlpAttention returns softmax(θ), accumulated in float64 at every tier.
func gamlpAttention[T tensor.Elem](theta *nn.ParamOf[T]) []float64 {
	raw := theta.Value.Row(0)
	out := make([]float64, len(raw))
	max := float64(raw[0])
	for _, v := range raw[1:] {
		if float64(v) > max {
			max = float64(v)
		}
	}
	var sum float64
	for i, v := range raw {
		out[i] = math.Exp(float64(v) - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gamlpCombine produces Σ_k a_k H_k restricted to the given rows. The result
// comes from the shared tensor workspace; callers release it with
// tensor.PutBufOf after the last use.
func gamlpCombine[T tensor.Elem](hops []*tensor.Mat[T], att []float64, idx []int) *tensor.Mat[T] {
	out := tensor.GetZeroBufOf[T](len(idx), hops[0].Cols)
	sel := tensor.GetBufOf[T](len(idx), hops[0].Cols)
	for k, h := range hops {
		h.SelectRowsInto(idx, sel)
		out.AddScaled(T(att[k]), sel)
	}
	tensor.PutBufOf(sel)
	return out
}

// gamlpHops returns the pointer to the dtype-matching hop-embedding field.
func gamlpHops[T tensor.Elem](m *GAMLP) *[]*tensor.Mat[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(&m.hops32).(*[]*tensor.Mat[T])
	}
	return any(&m.hops).(*[]*tensor.Mat[T])
}

// gamlpTheta returns the pointer to the dtype-matching attention parameter.
func gamlpTheta[T tensor.Elem](m *GAMLP) **nn.ParamOf[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(&m.theta32).(**nn.ParamOf[T])
	}
	return any(&m.theta).(**nn.ParamOf[T])
}

// gamlpNet returns the pointer to the dtype-matching trained-network field.
func gamlpNet[T tensor.Elem](m *GAMLP) **nn.SequentialOf[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(&m.net32).(**nn.SequentialOf[T])
	}
	return any(&m.net).(**nn.SequentialOf[T])
}

// Fit precomputes hop embeddings and trains attention + MLP jointly, at the
// tier selected by cfg.DType.
func (m *GAMLP) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return fitGAMLP[float32](m, ds, cfg)
	}
	return fitGAMLP[float64](m, ds, cfg)
}

func fitGAMLP[T tensor.Elem](m *GAMLP, ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	rep := &Report{Model: m.Name()}
	start := time.Now()
	hops := hopEmbeddings[T](ds, m.K)
	rep.Precompute = time.Since(start)

	pcg, rng := newRunRNG(cfg.Seed)
	theta := nn.NewParam("gamlp.theta", tensor.NewOf[T](1, m.K+1))
	net := nn.NewMLPOf[T](nn.MLPConfig{
		In: ds.X.Cols, Hidden: []int{cfg.Hidden}, Out: ds.NumClasses,
		Dropout: cfg.Dropout, Bias: true,
	}, rng)

	m.hops, m.theta, m.net, m.hops32, m.theta32, m.net32 = nil, nil, nil, nil, nil, nil
	*gamlpHops[T](m) = hops
	*gamlpTheta[T](m) = theta
	*gamlpNet[T](m) = net
	m.classes = ds.NumClasses
	m.logits = nil // refit invalidates the cached predictions

	opt := nn.NewAdamOf[T](cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	params := append(net.Params(), theta)

	src := train.NewIndexBatchesOf[T](ds.TrainIdx, cfg.BatchSize)
	// Batch scratch reused across the run (attention-gradient accumulator);
	// pooled matrices are released as soon as the backward pass has consumed
	// them.
	ga := make([]float64, m.K+1)
	valLabels := dataset.LabelsAt(ds.Labels, ds.ValIdx)
	valIota := rangeIdx(len(ds.ValIdx))
	defer opt.Reset()
	err := runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.SpecOf[T]{
		Source: src,
		Step: func(b train.BatchOf[T]) error {
			bIdx := b.Indices
			att := gamlpAttention(theta)
			x := gamlpCombine(hops, att, bIdx)
			logits := net.Forward(x, true)
			gLogits := tensor.GetBufOf[T](logits.Rows, logits.Cols)
			nn.SoftmaxCrossEntropyInto(logits, dataset.LabelsAt(ds.Labels, bIdx), gLogits)
			gx := net.Backward(gLogits)
			tensor.PutBufOf(gLogits)
			tensor.PutBufOf(x)
			// Attention gradient: ∂L/∂a_k = <gx, H_k[idx]>, then softmax
			// Jacobian back to θ. Dot products accumulate in float64.
			sel := tensor.GetBufOf[T](len(bIdx), hops[0].Cols)
			for k, h := range hops {
				h.SelectRowsInto(bIdx, sel)
				var dot float64
				for i := range gx.Data {
					dot += float64(gx.Data[i]) * float64(sel.Data[i])
				}
				ga[k] = dot
			}
			tensor.PutBufOf(sel)
			var inner float64
			for k := range ga {
				inner += att[k] * ga[k]
			}
			for k := range ga {
				theta.Grad.Data[k] += T(att[k] * (ga[k] - inner))
			}
			opt.Step(params)
			return nil
		},
		Validate: func() (float64, error) {
			att := gamlpAttention(theta)
			valX := gamlpCombine(hops, att, ds.ValIdx)
			valLogits := net.Forward(valX, false)
			tensor.PutBufOf(valX)
			return accuracyAt(valLogits, valLabels, valIota), nil
		},
		Params:    params,
		Optimizer: opt,
		PeakFloats: func() int {
			return src.BatchSize()*(ds.X.Cols*(m.K+2)+cfg.Hidden+ds.NumClasses) + net.NumParams()*3
		},
	})
	if err != nil {
		return nil, err
	}

	fillAccuracies(func(idx []int) []int {
		att := gamlpAttention(theta)
		x := gamlpCombine(hops, att, idx)
		pred := nn.Argmax(net.Forward(x, false))
		tensor.PutBufOf(x)
		return pred
	}, ds, rep)
	return rep, nil
}

// Predict implements Trainer. The attention-combined logits are cached on
// first use after Fit/Restore: Predict used to recombine every hop
// embedding and rerun the head over the whole graph on every call.
func (m *GAMLP) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.net == nil && m.net32 == nil {
		return nil, fmt.Errorf("models: GAMLP.Predict before Fit")
	}
	return nn.Argmax(m.fullLogits()), nil
}

// fullLogits returns (computing and caching on first call) the full-graph
// logits under the learned hop attention. A float32 model combines and
// scores in float32, widening once into the cache.
func (m *GAMLP) fullLogits() *tensor.Matrix {
	if m.logits == nil {
		if m.net32 != nil {
			att := gamlpAttention(m.theta32)
			x := gamlpCombine(m.hops32, att, rangeIdx(m.hops32[0].Rows))
			y := m.net32.Forward(x, false)
			c := tensor.New(y.Rows, y.Cols)
			tensor.WidenInto(y, c)
			m.logits = c
			tensor.PutBufOf(x)
		} else {
			att := gamlpAttention(m.theta)
			x := gamlpCombine(m.hops, att, rangeIdx(m.hops[0].Rows))
			m.logits = m.net.Forward(x, false).Clone()
			tensor.PutBuf(x)
		}
	}
	return m.logits
}

// Nodes implements NodeScorer.
func (m *GAMLP) Nodes() int {
	if len(m.hops32) > 0 {
		return m.hops32[0].Rows
	}
	if len(m.hops) == 0 {
		return 0
	}
	return m.hops[0].Rows
}

// Classes implements NodeScorer.
func (m *GAMLP) Classes() int { return m.classes }

// Score implements NodeScorer: attention-combine the requested rows, then
// one pooled head forward.
// lint:confine score-path
func (m *GAMLP) Score(idx []int, out *tensor.Matrix) error {
	if m.net == nil && m.net32 == nil {
		return fmt.Errorf("models: GAMLP.Score before Fit or Restore")
	}
	if out.Rows != len(idx) || out.Cols != m.classes {
		return fmt.Errorf("models: GAMLP.Score dst %dx%d, want %dx%d", out.Rows, out.Cols, len(idx), m.classes)
	}
	n := m.Nodes()
	for _, v := range idx {
		if v < 0 || v >= n {
			return fmt.Errorf("models: GAMLP.Score node %d outside [0,%d)", v, n)
		}
	}
	if m.net32 != nil {
		att := gamlpAttention(m.theta32)
		x := gamlpCombine(m.hops32, att, idx)
		y := m.net32.Forward(x, false)
		tensor.WidenInto(y, out)
		tensor.PutBufOf(x)
		return nil
	}
	for _, h := range m.hops {
		if tensor.Overlaps(out.Data, h.Data) {
			return fmt.Errorf("models: GAMLP.Score dst aliases a hop embedding")
		}
	}
	att := gamlpAttention(m.theta)
	x := gamlpCombine(m.hops, att, idx)
	y := m.net.Forward(x, false)
	copy(out.Data, y.Data)
	tensor.PutBuf(x)
	return nil
}

// HopAttention exposes the learned softmax hop weights (for the ablation
// benchmarks).
func (m *GAMLP) HopAttention() []float64 {
	if m.theta32 != nil {
		return gamlpAttention(m.theta32)
	}
	return gamlpAttention(m.theta)
}

// LD2 is the multi-filter heterophilous decoupled model: precompute
// identity, low-pass, and high-pass spectral channels of the features,
// concatenate, and train an MLP mini-batch. The high-pass channel carries
// the heterophilous signal a pure low-pass model destroys — E5's subject.
type LD2 struct {
	Hops int

	decoupledState
}

// NewLD2 constructs LD2 with K-hop low/high-pass channels.
func NewLD2(hops int) (*LD2, error) {
	if hops < 1 {
		return nil, fmt.Errorf("models: LD2 needs hops >= 1, got %d", hops)
	}
	return &LD2{Hops: hops}, nil
}

// Name implements Trainer.
func (m *LD2) Name() string { return fmt.Sprintf("LD2-K%d", m.Hops) }

// embed precomputes the multi-filter embedding — shared by Fit and Restore.
// The spectral channels always run in float64 (the filter recurrences are
// precision-sensitive); a float32 run narrows the result at the boundary.
func (m *LD2) embed(ds *dataset.Dataset) (*tensor.Matrix, error) {
	// Self-looped operator: the low-pass channel is then exactly Â^K (self
	// signal diluted by degree normalization), and the high-pass channel is
	// the complementary L̂^K neighbor-disagreement signal.
	op := graph.NewOperator(ds.G, graph.NormSymmetric, true)
	channels := []spectral.ChannelSpec{
		{Kind: spectral.ChannelIdentity},
		{Kind: spectral.ChannelAdjPower, Hops: m.Hops},
		{Kind: spectral.ChannelLapPower, Hops: m.Hops},
	}
	mats := make([]*tensor.Matrix, len(channels))
	for i, ch := range channels {
		one, err := spectral.MultiFilter(op, ds.X, []spectral.ChannelSpec{ch})
		if err != nil {
			return nil, fmt.Errorf("models: LD2 embedding: %w", err)
		}
		normalizeChannel(one)
		mats[i] = one
	}
	return spectral.ConcatColumns(mats), nil
}

// Fit precomputes the multi-filter embedding and trains the head at the
// tier selected by cfg.DType.
func (m *LD2) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return fitLD2[float32](m, ds, cfg)
	}
	return fitLD2[float64](m, ds, cfg)
}

func fitLD2[T tensor.Elem](m *LD2, ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	rep := &Report{Model: m.Name()}
	start := time.Now()
	emb64, err := m.embed(ds)
	if err != nil {
		return nil, err
	}
	emb := tensor.FromFloat64[T](emb64)
	rep.Precompute = time.Since(start)

	net, err := decoupledHead(m.Name(), emb, ds, cfg, []int{cfg.Hidden}, rep)
	if err != nil {
		return nil, err
	}
	decStore(&m.decoupledState, emb, net, ds.NumClasses)
	return rep, nil
}

// normalizeChannel rescales a channel matrix so its mean row L2 norm is 1
// — the per-channel normalization LD2 applies so that no spectral view
// dominates the head's input scale.
func normalizeChannel(m *tensor.Matrix) {
	if m.Rows == 0 {
		return
	}
	var total float64
	for i := 0; i < m.Rows; i++ {
		total += tensor.Norm2(m.Row(i))
	}
	mean := total / float64(m.Rows)
	if mean > 0 {
		m.Scale(1 / mean)
	}
}

// Predict implements Trainer. Predictions come from the logits cached on
// first use after Fit/Restore.
func (m *LD2) Predict(ds *dataset.Dataset) ([]int, error) {
	return m.decoupledState.predict(m.Name())
}

// Nodes implements NodeScorer.
func (m *LD2) Nodes() int { return m.decoupledState.nodes() }

// Classes implements NodeScorer.
func (m *LD2) Classes() int { return m.classes }

// Score implements NodeScorer.
// lint:confine score-path
func (m *LD2) Score(idx []int, out *tensor.Matrix) error {
	return m.decoupledState.score(m.Name(), idx, out)
}
