package models

import (
	"encoding/binary"
	"hash/fnv"
)

// PredictionFingerprint hashes an integer prediction vector with FNV-1a.
// Two runs that produce the same hash made bitwise-identical predictions
// for every node, so diffing fingerprints proves training-path equivalence
// without eyeballing floats. gnnfingerprint gates numeric refactors on it,
// and gnntrain's -fingerprint flag uses it to prove a distributed run
// matches its single-process counterpart.
func PredictionFingerprint(pred []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range pred {
		binary.LittleEndian.PutUint64(buf[:], uint64(p))
		//lint:ignore unchecked-error fnv Hash.Write never returns an error
		h.Write(buf[:])
	}
	return h.Sum64()
}
