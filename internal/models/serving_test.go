package models

import (
	"errors"
	"testing"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/dataset"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// servingDataset is a small fixed task shared by the serving tests.
func servingDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 300, Classes: 3, AvgDegree: 8, Homophily: 0.8,
		FeatureDim: 12, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func servingConfig() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	cfg.Patience = 0
	cfg.BatchSize = 64
	cfg.Hidden = 16
	cfg.Seed = 11
	return cfg
}

type servableTrainer interface {
	Trainer
	NodeScorer
	Restorer
}

func servableFamilies() map[string]func() servableTrainer {
	return map[string]func() servableTrainer{
		"sgc":   func() servableTrainer { m, _ := NewSGC(2); return m },
		"sign":  func() servableTrainer { m, _ := NewSIGN(2); return m },
		"ld2":   func() servableTrainer { m, _ := NewLD2(2); return m },
		"gamlp": func() servableTrainer { m, _ := NewGAMLP(2); return m },
		"appnp": func() servableTrainer { m, _ := NewAPPNP(6, 0.15); return m },
	}
}

// TestRestoreMatchesOfflinePredict trains each decoupled family with
// checkpointing, restores a fresh instance from the newest snapshot, and
// requires (a) identical predictions and (b) Score output — full and
// chunked — bitwise-equal to the offline logits path.
func TestRestoreMatchesOfflinePredict(t *testing.T) {
	ds := servingDataset(t)
	for name, make := range servableFamilies() {
		t.Run(name, func(t *testing.T) {
			cfg := servingConfig()
			cfg.Checkpoint = train.CheckpointConfig{Dir: t.TempDir(), Every: 1}
			m := make()
			if _, err := m.Fit(ds, cfg); err != nil {
				t.Fatalf("fit: %v", err)
			}
			want, err := m.Predict(ds)
			if err != nil {
				t.Fatalf("predict: %v", err)
			}

			mgr, err := ckpt.NewManager(cfg.Checkpoint.Dir, 2)
			if err != nil {
				t.Fatal(err)
			}
			snap, _, err := mgr.Latest(RunFingerprint(m.Name(), ds, cfg))
			if err != nil {
				t.Fatalf("latest snapshot: %v", err)
			}
			if snap == nil {
				t.Fatal("no snapshot written")
			}

			r := make()
			if err := r.Restore(ds, cfg, snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			got, err := r.Predict(ds)
			if err != nil {
				t.Fatalf("restored predict: %v", err)
			}
			if !equalInts(want, got) {
				t.Fatalf("restored predictions differ from offline Predict")
			}

			if r.Nodes() != ds.G.N || r.Classes() != ds.NumClasses {
				t.Fatalf("Nodes/Classes = %d/%d, want %d/%d", r.Nodes(), r.Classes(), ds.G.N, ds.NumClasses)
			}

			// Score over everything at once, and in uneven chunks, must argmax
			// to the same predictions.
			idx := rangeIdx(ds.G.N)
			full := tensor.New(ds.G.N, ds.NumClasses)
			if err := r.Score(idx, full); err != nil {
				t.Fatalf("score: %v", err)
			}
			checkArgmax(t, full, want, "full Score")

			chunked := tensor.New(ds.G.N, ds.NumClasses)
			for lo := 0; lo < ds.G.N; lo += 17 {
				hi := lo + 17
				if hi > ds.G.N {
					hi = ds.G.N
				}
				out := tensor.New(hi-lo, ds.NumClasses)
				if err := r.Score(idx[lo:hi], out); err != nil {
					t.Fatalf("chunked score [%d,%d): %v", lo, hi, err)
				}
				copy(chunked.Data[lo*ds.NumClasses:hi*ds.NumClasses], out.Data)
			}
			for i := range full.Data {
				if full.Data[i] != chunked.Data[i] {
					t.Fatalf("chunked Score logits differ at %d: %v vs %v", i, full.Data[i], chunked.Data[i])
				}
			}

			// Out-of-range nodes and bad shapes fail loudly, not silently.
			if err := r.Score([]int{-1}, tensor.New(1, ds.NumClasses)); err == nil {
				t.Error("negative node id accepted")
			}
			if err := r.Score([]int{ds.G.N}, tensor.New(1, ds.NumClasses)); err == nil {
				t.Error("out-of-range node id accepted")
			}
			if err := r.Score([]int{0}, tensor.New(2, ds.NumClasses)); err == nil {
				t.Error("wrong-shape destination accepted")
			}
		})
	}
}

// TestRestoreRejectsFingerprintMismatch proves a snapshot from a different
// run configuration cannot be swapped in: Restore surfaces
// ckpt.ErrFingerprint.
func TestRestoreRejectsFingerprintMismatch(t *testing.T) {
	ds := servingDataset(t)
	cfg := servingConfig()
	cfg.Checkpoint = train.CheckpointConfig{Dir: t.TempDir(), Every: 1}
	m, err := NewSIGN(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(ds, cfg); err != nil {
		t.Fatal(err)
	}
	mgr, err := ckpt.NewManager(cfg.Checkpoint.Dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := mgr.Latest(RunFingerprint(m.Name(), ds, cfg))
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Hidden = cfg.Hidden * 2
	r, err := NewSIGN(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(ds, other, snap); !errors.Is(err, ckpt.ErrFingerprint) {
		t.Fatalf("restore with changed config: err = %v, want ckpt.ErrFingerprint", err)
	}
}

// TestPredictCacheInvalidatedOnRefit retrains a model and requires Predict
// to reflect the new weights, proving the cached logits are dropped on
// refit rather than served stale.
func TestPredictCacheInvalidatedOnRefit(t *testing.T) {
	ds := servingDataset(t)
	cfg1 := servingConfig()
	cfg2 := servingConfig()
	cfg2.Seed = 99
	cfg2.Epochs = 3

	m, err := NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(ds, cfg1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(ds); err != nil { // populate the cache
		t.Fatal(err)
	}
	if _, err := m.Fit(ds, cfg2); err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Fit(ds, cfg2); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(want, got) {
		t.Fatal("refit model served stale cached predictions")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkArgmax(t *testing.T, logits *tensor.Matrix, want []int, label string) {
	t.Helper()
	got := make([]int, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		got[i] = best
	}
	if !equalInts(want, got) {
		t.Fatalf("%s argmax differs from Predict", label)
	}
}
