package models

import (
	"fmt"
	"time"

	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/nn"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// ClusterGCN trains a GCN with partition-based mini-batches (§3.1.2 graph
// partition): the graph is split into clusters once; each step runs full
// GCN forward/backward inside one cluster's induced subgraph. Memory scales
// with the largest cluster, not the graph, at the cost of dropping
// inter-cluster edges from the gradient.
type ClusterGCN struct {
	Layers   int
	Clusters int

	// trained state
	lastPred []int // full-graph predictions cached by Fit
}

// NewClusterGCN constructs the trainer.
func NewClusterGCN(layers, clusters int) (*ClusterGCN, error) {
	if layers < 1 {
		return nil, fmt.Errorf("models: ClusterGCN needs >= 1 layer, got %d", layers)
	}
	if clusters < 1 {
		return nil, fmt.Errorf("models: ClusterGCN needs >= 1 cluster, got %d", clusters)
	}
	return &ClusterGCN{Layers: layers, Clusters: clusters}, nil
}

// Name implements Trainer.
func (m *ClusterGCN) Name() string { return fmt.Sprintf("ClusterGCN-%dL-c%d", m.Layers, m.Clusters) }

// clusterBatch holds one cluster's precomputed training context, including
// its persistent activation modules and workspace-pooled propagation
// buffers so repeated visits to the cluster reallocate nothing.
type clusterBatch[T tensor.Elem] struct {
	op       *graph.OperatorOf[T]
	x        *tensor.Mat[T]
	labels   []int
	ids      []int // original node ID per cluster-local index
	trainIdx []int // positions within the cluster that are training nodes

	relus  []*nn.ReLUOf[T]   // one per hidden layer, reused across epochs
	px, gx []tensor.BufOf[T] // per-layer forward/backward propagation scratch
}

// Fit partitions the graph and cycles clusters as mini-batches, at the tier
// selected by cfg.DType.
func (m *ClusterGCN) Fit(ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.dtype() == DTypeFloat32 {
		return fitClusterGCN[float32](m, ds, cfg)
	}
	return fitClusterGCN[float64](m, ds, cfg)
}

func fitClusterGCN[T tensor.Elem](m *ClusterGCN, ds *dataset.Dataset, cfg TrainConfig) (*Report, error) {
	pcg, rng := newRunRNG(cfg.Seed)
	rep := &Report{Model: m.Name()}

	preStart := time.Now()
	assign, err := partition.Multilevel(ds.G, m.Clusters, maxInt(ds.G.N/20, m.Clusters), 3, rng)
	if err != nil {
		return nil, fmt.Errorf("models: ClusterGCN partition: %w", err)
	}
	subs, ids := partition.Subgraphs(ds.G, assign)
	isTrain := make([]bool, ds.G.N)
	for _, v := range ds.TrainIdx {
		isTrain[v] = true
	}
	x := tensor.FromFloat64[T](ds.X)
	batches := make([]*clusterBatch[T], 0, m.Clusters)
	maxCluster := 0
	for p := range subs {
		if subs[p].N == 0 {
			continue
		}
		cb := &clusterBatch[T]{
			op:     graph.NewOperatorOf[T](subs[p], graph.NormSymmetric, true),
			x:      x.SelectRows(ids[p]),
			labels: dataset.LabelsAt(ds.Labels, ids[p]),
			ids:    ids[p],
			relus:  make([]*nn.ReLUOf[T], m.Layers-1),
			px:     make([]tensor.BufOf[T], m.Layers),
			gx:     make([]tensor.BufOf[T], m.Layers),
		}
		for l := range cb.relus {
			cb.relus[l] = nn.NewReLUOf[T]()
		}
		for i, orig := range ids[p] {
			if isTrain[orig] {
				cb.trainIdx = append(cb.trainIdx, i)
			}
		}
		batches = append(batches, cb)
		if subs[p].N > maxCluster {
			maxCluster = subs[p].N
		}
	}
	rep.Precompute = time.Since(preStart)

	// Shared weights across clusters (the whole point): one Linear per
	// layer applied inside whichever cluster is active.
	lins := make([]*nn.LinearOf[T], m.Layers)
	in := ds.X.Cols
	for l := 0; l < m.Layers; l++ {
		out := cfg.Hidden
		if l == m.Layers-1 {
			out = ds.NumClasses
		}
		lins[l] = nn.NewLinearOf[T](in, out, true, rng)
		in = out
	}
	var params []*nn.ParamOf[T]
	for _, l := range lins {
		params = append(params, l.Params()...)
	}
	opt := nn.NewAdamOf[T](cfg.LR)
	opt.WeightDecay = cfg.WeightDecay

	forward := func(cb *clusterBatch[T], training bool) (*tensor.Mat[T], []*nn.ReLUOf[T]) {
		h := cb.x
		for l := 0; l < m.Layers; l++ {
			p := cb.px[l].Next(h.Rows, h.Cols)
			cb.op.ApplyInto(h, p)
			h = lins[l].Forward(p, training)
			if l != m.Layers-1 {
				h = cb.relus[l].Forward(h, training)
			}
		}
		return h, cb.relus
	}

	defer opt.Reset()
	err = runLoop(m.Name(), ds, cfg, pcg, rng, rep, train.SpecOf[T]{
		Source: train.NewClusterBatchesOf[T](len(batches)),
		Step: func(b train.BatchOf[T]) error {
			cb := batches[b.Cluster]
			if len(cb.trainIdx) == 0 {
				return nil
			}
			logits, relus := forward(cb, true)
			_, lossGrad := maskedLoss(logits, cb.labels, cb.trainIdx)
			grad := lossGrad
			for l := m.Layers - 1; l >= 0; l-- {
				if l != m.Layers-1 {
					grad = relus[l].Backward(grad)
				}
				g := lins[l].Backward(grad)
				gx := cb.gx[l].Next(g.Rows, g.Cols)
				cb.op.ApplyInto(g, gx)
				grad = gx
			}
			tensor.PutBufOf(lossGrad)
			opt.Step(params)
			return nil
		},
		Validate: func() (float64, error) {
			return clusterValAccuracy(batches, ds, forward), nil
		},
		Params:    params,
		Optimizer: opt,
		PeakFloats: func() int {
			nParams := 0
			for _, p := range params {
				nParams += p.NumValues()
			}
			return 2*maxCluster*(ds.X.Cols+(m.Layers-1)*cfg.Hidden+ds.NumClasses) + nParams*3
		},
	})
	if err != nil {
		return nil, err
	}

	pred := clusterPredictAll(batches, ds, forward)
	fillAccuracies(func(idx []int) []int {
		out := make([]int, len(idx))
		for i, v := range idx {
			out[i] = pred[v]
		}
		return out
	}, ds, rep)
	m.lastPred = pred
	return rep, nil
}

func clusterValAccuracy[T tensor.Elem](batches []*clusterBatch[T], ds *dataset.Dataset, forward func(*clusterBatch[T], bool) (*tensor.Mat[T], []*nn.ReLUOf[T])) float64 {
	pred := clusterPredictAll(batches, ds, forward)
	correct, total := 0, 0
	for _, v := range ds.ValIdx {
		total++
		if pred[v] == ds.Labels[v] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// clusterPredictAll runs cluster-wise inference, mapping back to original
// IDs.
func clusterPredictAll[T tensor.Elem](batches []*clusterBatch[T], ds *dataset.Dataset, forward func(*clusterBatch[T], bool) (*tensor.Mat[T], []*nn.ReLUOf[T])) []int {
	pred := make([]int, ds.G.N)
	for _, cb := range batches {
		logits, _ := forward(cb, false)
		p := nn.Argmax(logits)
		for i, orig := range cb.origIDs() {
			pred[orig] = p[i]
		}
	}
	return pred
}

// origIDs returns the original node IDs of the cluster's local indices.
func (cb *clusterBatch[T]) origIDs() []int { return cb.ids }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Predict implements Trainer.
func (m *ClusterGCN) Predict(ds *dataset.Dataset) ([]int, error) {
	if m.lastPred == nil {
		return nil, fmt.Errorf("models: ClusterGCN.Predict before Fit")
	}
	return m.lastPred, nil
}
