package models

import (
	"math"
	"testing"

	"scalegnn/internal/dataset"
	"scalegnn/internal/hublabel"
	"scalegnn/internal/nn"
	"scalegnn/internal/tensor"
)

func TestGraphTransformerLearns(t *testing.T) {
	ds := smallTask(t)
	m, err := NewGraphTransformer(6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Epochs = 80
	cfg.Hidden = 32
	cfg.BatchSize = 64
	rep, err := m.Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestAcc < 0.6 {
		t.Errorf("transformer test acc %.3f", rep.TestAcc)
	}
	if rep.Precompute <= 0 {
		t.Error("hub-label precompute not reported")
	}
	pred, err := m.Predict(ds)
	if err != nil || len(pred) != ds.G.N {
		t.Fatalf("Predict: %v, %d preds", err, len(pred))
	}
	if len(m.SPDBias()) != 6 {
		t.Error("SPD bias length wrong")
	}
}

func TestGraphTransformerValidation(t *testing.T) {
	if _, err := NewGraphTransformer(1); err == nil {
		t.Error("1 bucket should error")
	}
	ds := smallTask(t)
	m, _ := NewGraphTransformer(4)
	if _, err := m.Predict(ds); err == nil {
		t.Error("Predict before Fit should error")
	}
	if m.SPDBias() != nil {
		t.Error("bias before Fit should be nil")
	}
}

// TestAttentionGradients verifies the manual attention backward pass
// against finite differences on every parameter.
func TestAttentionGradients(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 40, Classes: 3, AvgDegree: 6, Homophily: 0.8,
		FeatureDim: 5, NoiseStd: 0.5, TrainFrac: 0.8, ValFrac: 0.1, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewGraphTransformer(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRand(17)
	m.hidden = 6
	m.wq = nn.NewParam("wq", tensor.GlorotUniform(5, 6, rng))
	m.wk = nn.NewParam("wk", tensor.GlorotUniform(5, 6, rng))
	m.wv = nn.NewParam("wv", tensor.GlorotUniform(5, 6, rng))
	m.ws = nn.NewParam("ws", tensor.GlorotUniform(5, 6, rng))
	m.wo = nn.NewParam("wo", tensor.GlorotUniform(6, 3, rng))
	m.bias = nn.NewParam("bias", tensor.RandNormal(1, 4, 0.1, rng))
	ix, err := hublabel.Build(ds.G)
	if err != nil {
		t.Fatal(err)
	}
	m.index = ix

	idx := []int{0, 3, 7, 11, 19, 22}
	labels := dataset.LabelsAt(ds.Labels, idx)
	loss := func() float64 {
		_, logits, err := m.batchForward(ds, idx)
		if err != nil {
			t.Fatal(err)
		}
		l, _ := nn.SoftmaxCrossEntropy(logits, labels)
		return l
	}
	st, logits, err := m.batchForward(ds, idx)
	if err != nil {
		t.Fatal(err)
	}
	_, gLogits := nn.SoftmaxCrossEntropy(logits, labels)
	m.backwardBatch(st, gLogits)

	const eps = 1e-6
	for _, p := range m.params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := loss()
			p.Value.Data[i] = orig - eps
			lm := loss()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-p.Grad.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data[i], numeric)
			}
		}
	}
}

func TestBucketOf(t *testing.T) {
	m, _ := NewGraphTransformer(4)
	cases := map[int]int{0: 0, 1: 1, 3: 3, 4: 3, 100: 3, -1: 3, hublabel.Infinity: 3}
	for d, want := range cases {
		if got := m.bucketOf(d); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", d, got, want)
		}
	}
}
