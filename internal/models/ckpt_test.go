package models

import (
	"context"
	"strings"
	"testing"

	"scalegnn/internal/dataset"
	"scalegnn/internal/train"
)

// cancelAfterBatches cancels a context once n batch steps have completed,
// interrupting a Fit mid-run the way a deadline or SIGTERM would.
type cancelAfterBatches struct {
	n, seen int
	cancel  context.CancelFunc
}

func (c *cancelAfterBatches) OnBatch(train.BatchEnd) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}
func (c *cancelAfterBatches) OnEpoch(train.EpochEnd) {}

// TestResumeBitwiseIdenticalAcrossFamilies is the acceptance-criteria
// check in miniature: for a full-batch model (GCN), a sampled mini-batch
// model (GraphSAGE, which also draws RNG during validation), and a
// decoupled head (SGC), a run that is interrupted mid-training and
// resumed from its durable snapshot must produce predictions bitwise
// identical to the uninterrupted run.
func TestResumeBitwiseIdenticalAcrossFamilies(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 200, Classes: 3, AvgDegree: 8, Homophily: 0.85,
		FeatureDim: 12, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultTrainConfig()
	base.Epochs = 8
	base.Hidden = 16
	base.BatchSize = 64
	base.Seed = 9

	cases := []struct {
		name        string
		make        func() (Trainer, error)
		cancelAfter int // batch steps before cancellation (lands mid-epoch)
	}{
		{"gcn", func() (Trainer, error) { return NewGCN(2) }, 5},
		{"sage", func() (Trainer, error) { return NewGraphSAGE(2, 5) }, 5},
		{"sgc", func() (Trainer, error) { return NewSGC(2) }, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full, err := tc.make()
			if err != nil {
				t.Fatal(err)
			}
			fullRep, err := full.Fit(ds, base)
			if err != nil {
				t.Fatal(err)
			}
			fullPred, err := full.Predict(ds)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			cfg := base
			cfg.Checkpoint = train.CheckpointConfig{Dir: dir, Every: 1, KeepLast: 3}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg.Ctx = ctx
			cfg.Hooks = []train.Hook{&cancelAfterBatches{n: tc.cancelAfter, cancel: cancel}}
			interrupted, err := tc.make()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := interrupted.Fit(ds, cfg); err == nil {
				t.Fatal("interrupted Fit returned nil error")
			} else if !strings.Contains(err.Error(), "cancelled") {
				t.Fatalf("interrupted Fit: %v", err)
			}

			cfg = base
			cfg.Checkpoint = train.CheckpointConfig{Dir: dir, Every: 1, KeepLast: 3, Resume: true}
			resumed, err := tc.make()
			if err != nil {
				t.Fatal(err)
			}
			resRep, err := resumed.Fit(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			resPred, err := resumed.Predict(ds)
			if err != nil {
				t.Fatal(err)
			}

			if len(resPred) != len(fullPred) {
				t.Fatalf("prediction length %d != %d", len(resPred), len(fullPred))
			}
			for i := range fullPred {
				if resPred[i] != fullPred[i] {
					t.Fatalf("node %d: resumed predicts %d, uninterrupted %d (not bitwise identical)",
						i, resPred[i], fullPred[i])
				}
			}
			if resRep.TrainAcc != fullRep.TrainAcc || resRep.ValAcc != fullRep.ValAcc ||
				resRep.TestAcc != fullRep.TestAcc || resRep.TestF1 != fullRep.TestF1 {
				t.Fatalf("resumed report %+v != uninterrupted %+v", resRep, fullRep)
			}
		})
	}
}

// TestResumeRejectsChangedConfig: changing a fingerprinted hyperparameter
// between legs must fail the resume instead of silently mixing runs.
func TestResumeRejectsChangedConfig(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 120, Classes: 3, AvgDegree: 6, Homophily: 0.8,
		FeatureDim: 8, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.Hidden = 8
	cfg.Seed = 4
	dir := t.TempDir()
	cfg.Checkpoint = train.CheckpointConfig{Dir: dir}
	m, err := NewGCN(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(ds, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.LR = cfg.LR * 2 // fingerprinted change
	cfg.Checkpoint.Resume = true
	if _, err := m.Fit(ds, cfg); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("resume with changed LR: got %v, want fingerprint mismatch", err)
	}
}
