package condense

import (
	"testing"

	"scalegnn/internal/coarsen"
	"scalegnn/internal/dataset"
	"scalegnn/internal/graph"
	"scalegnn/internal/metrics"
	"scalegnn/internal/models"
	"scalegnn/internal/tensor"
)

func modularGraph(t *testing.T) (*graph.CSR, []int) {
	t.Helper()
	g, labels, err := graph.SBM(graph.SBMConfig{
		Nodes: 1200, Blocks: 6, AvgDegree: 12, Homophily: 0.9,
	}, tensor.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	return g, labels
}

func TestCondenseBasics(t *testing.T) {
	g, _ := modularGraph(t)
	r, err := Condense(g, Config{TargetNodes: 60}, tensor.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Condensed.N != 60 {
		t.Fatalf("condensed n = %d, want 60", r.Condensed.N)
	}
	if len(r.Assign) != g.N {
		t.Fatal("assign length mismatch")
	}
	counts := make([]int, 60)
	for _, c := range r.Assign {
		if c < 0 || c >= 60 {
			t.Fatalf("assignment %d out of range", c)
		}
		counts[c]++
	}
	for c, cnt := range counts {
		if cnt == 0 {
			t.Errorf("condensed node %d is empty", c)
		}
	}
	if r.Ratio() < 15 {
		t.Errorf("ratio %v, want 20", r.Ratio())
	}
	if len(r.EigenValues) == 0 || r.EigenValues[0] < 0.9 {
		t.Errorf("top eigenvalue %v; Â's top eigenvalue should be ~1", r.EigenValues)
	}
}

func TestCondenseRecoversCommunities(t *testing.T) {
	// With target = block count, spectral clustering should align condensed
	// nodes with the planted blocks (high purity).
	g, labels := modularGraph(t)
	r, err := Condense(g, Config{TargetNodes: 6}, tensor.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	// Purity: for each condensed node, the majority block fraction.
	counts := make(map[int]map[int]int)
	sizes := make(map[int]int)
	for u, c := range r.Assign {
		if counts[c] == nil {
			counts[c] = make(map[int]int)
		}
		counts[c][labels[u]]++
		sizes[c]++
	}
	var weighted float64
	for c, blockCounts := range counts {
		best := 0
		for _, cnt := range blockCounts {
			if cnt > best {
				best = cnt
			}
		}
		weighted += float64(best) / float64(sizes[c]) * float64(sizes[c]) / float64(g.N)
	}
	if weighted < 0.8 {
		t.Errorf("cluster purity %.3f; spectral condensation failed to find blocks", weighted)
	}
}

func TestCondenseSpectralMatch(t *testing.T) {
	g, _ := modularGraph(t)
	r, err := Condense(g, Config{TargetNodes: 60}, tensor.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	e, err := SpectralMatchError(g, r, 6, tensor.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.25 {
		t.Errorf("top-6 eigenvalue error %.3f; condensation should preserve the low spectrum", e)
	}
}

func TestCondensedTrainingTransfers(t *testing.T) {
	// Train SGC on the condensed graph, lift predictions, evaluate on the
	// original — accuracy must beat chance substantially.
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 1200, Classes: 6, AvgDegree: 12, Homophily: 0.9,
		FeatureDim: 24, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Condense(ds.G, Config{TargetNodes: 120}, tensor.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	// Train-only labels, then majority projection (reuse coarsen ops).
	trainLabels := make([]int, ds.G.N)
	for i := range trainLabels {
		trainLabels[i] = -1
	}
	for _, v := range ds.TrainIdx {
		trainLabels[v] = ds.Labels[v]
	}
	condLabels := coarsen.ProjectLabels(trainLabels, r.Assign, r.Condensed.N, ds.NumClasses)
	var trainIdx []int
	for c, y := range condLabels {
		if y >= 0 {
			trainIdx = append(trainIdx, c)
		} else {
			condLabels[c] = 0
		}
	}
	condDS := &dataset.Dataset{
		G:          r.Condensed,
		X:          coarsen.ProjectFeatures(ds.X, r.Assign, r.Condensed.N),
		Labels:     condLabels,
		NumClasses: ds.NumClasses,
		TrainIdx:   trainIdx, ValIdx: trainIdx, TestIdx: trainIdx,
	}
	m, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 60
	if _, err := m.Fit(condDS, cfg); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(condDS)
	if err != nil {
		t.Fatal(err)
	}
	lifted := coarsen.LiftLabels(pred, r.Assign)
	testPred := make([]int, len(ds.TestIdx))
	testLabels := make([]int, len(ds.TestIdx))
	for i, v := range ds.TestIdx {
		testPred[i] = lifted[v]
		testLabels[i] = ds.Labels[v]
	}
	acc := metrics.Accuracy(testPred, testLabels)
	if acc < 0.6 {
		t.Errorf("condensed-trained accuracy %.3f on original test set (chance %.3f)",
			acc, 1.0/float64(ds.NumClasses))
	}
}

func TestCondenseValidation(t *testing.T) {
	g, _ := modularGraph(t)
	rng := tensor.NewRand(8)
	if _, err := Condense(g, Config{TargetNodes: 1}, rng); err == nil {
		t.Error("target 1 should error")
	}
	if _, err := Condense(g, Config{TargetNodes: g.N}, rng); err == nil {
		t.Error("target >= n should error")
	}
	b := graph.NewBuilder(3)
	b.Directed = true
	b.AddEdge(0, 1)
	if _, err := Condense(b.MustBuild(), Config{TargetNodes: 2}, rng); err == nil {
		t.Error("directed graph should error")
	}
}
