// Package condense implements spectral graph condensation — the
// GDEM/GC-SNTK line of tutorial §3.3.4. Where coarsening contracts matched
// node pairs level by level, condensation directly synthesizes a small
// training graph that matches the original's low-frequency eigenbasis:
//
//  1. Compute the bottom-k Laplacian eigenvectors (top-k of P) by subspace
//     iteration — the geometry GDEM's eigenbasis-matching objective
//     preserves.
//  2. Cluster nodes in that spectral embedding (k-means) to the target
//     size, so condensed nodes correspond to smooth regions of the graph.
//  3. Aggregate adjacency between clusters into the condensed graph, and
//     project features (mean pooling) and labels (train-only majority).
//
// Training on the condensed graph and lifting predictions back (reusing
// the coarsen projection/lift operators) gives the condensation trade:
// much smaller training graphs, bounded accuracy loss.
package condense

import (
	"fmt"
	"math"
	"math/rand/v2"

	"scalegnn/internal/graph"
	"scalegnn/internal/par"
	"scalegnn/internal/spectral"
	"scalegnn/internal/tensor"
)

// Config controls condensation.
type Config struct {
	// TargetNodes is the condensed graph size.
	TargetNodes int
	// EigenK is the number of low-frequency eigenvectors to match
	// (default 8).
	EigenK int
	// PowerIters controls the subspace iteration count (default 100).
	PowerIters int
	// LloydIters controls k-means refinement rounds (default 15).
	LloydIters int
}

func (c *Config) fillDefaults() {
	if c.EigenK == 0 {
		c.EigenK = 8
	}
	if c.PowerIters == 0 {
		c.PowerIters = 100
	}
	if c.LloydIters == 0 {
		c.LloydIters = 15
	}
}

// Result is a completed condensation; Assign maps original nodes to
// condensed nodes, so the coarsen package's projection and lifting
// operators apply directly.
type Result struct {
	Condensed *graph.CSR
	Assign    []int
	// Embedding is the n×k spectral embedding used for clustering.
	Embedding *tensor.Matrix
	// EigenValues are the matched top-k eigenvalues of P (descending).
	EigenValues []float64
}

// Ratio returns n_original / n_condensed.
func (r *Result) Ratio() float64 {
	if r.Condensed.N == 0 {
		return 0
	}
	return float64(len(r.Assign)) / float64(r.Condensed.N)
}

// Condense synthesizes the condensed graph.
func Condense(g *graph.CSR, cfg Config, rng *rand.Rand) (*Result, error) {
	cfg.fillDefaults()
	if cfg.TargetNodes < 2 || cfg.TargetNodes >= g.N {
		return nil, fmt.Errorf("condense: target %d outside [2,%d)", cfg.TargetNodes, g.N)
	}
	if !g.Undirected() {
		return nil, fmt.Errorf("condense: requires an undirected graph")
	}
	if cfg.EigenK > g.N {
		cfg.EigenK = g.N
	}
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	vals, vecs, err := spectral.SubspaceIteration(op, cfg.EigenK, cfg.PowerIters, rng)
	if err != nil {
		return nil, fmt.Errorf("condense: eigenbasis: %w", err)
	}
	// Row-normalize the embedding (spectral clustering convention) so
	// k-means separates by direction, not by degree-driven magnitude.
	emb := vecs.Clone()
	for i := 0; i < emb.Rows; i++ {
		tensor.Normalize(emb.Row(i))
	}
	assign := kmeans(emb, cfg.TargetNodes, cfg.LloydIters, rng)

	// Aggregate inter-cluster adjacency.
	b := graph.NewBuilder(cfg.TargetNodes)
	for _, e := range g.UndirectedEdges() {
		ca, cb := assign[e.U], assign[e.V]
		if ca == cb {
			continue
		}
		b.AddWeightedEdge(ca, cb, e.W)
	}
	condensed, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("condense: build: %w", err)
	}
	return &Result{
		Condensed:   condensed,
		Assign:      assign,
		Embedding:   emb,
		EigenValues: vals,
	}, nil
}

// kmeans clusters the rows of emb into k groups with Lloyd's algorithm
// (k-means++-style farthest-first seeding, deterministic given rng).
// Every cluster is guaranteed non-empty: emptied clusters are reseeded
// with the point farthest from its centroid.
func kmeans(emb *tensor.Matrix, k, iters int, rng *rand.Rand) []int {
	n, d := emb.Rows, emb.Cols
	centroids := tensor.New(k, d)
	// Farthest-first seeding.
	first := rng.IntN(n)
	copy(centroids.Row(0), emb.Row(first))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = dist2(emb.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		best, bestD := 0, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		copy(centroids.Row(c), emb.Row(best))
		// Each minDist[i] update is independent — chunk over internal/par
		// (bitwise-identical: same per-element comparison either way).
		par.Range(n, 256, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d2 := dist2(emb.Row(i), centroids.Row(c)); d2 < minDist[i] {
					minDist[i] = d2
				}
			}
		})
	}
	assign := make([]int, n)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		// Assignment step: each assign[i] depends only on emb and the
		// centroids, so chunk it over internal/par; counts are tallied
		// sequentially afterwards so the result matches the sequential
		// loop bit for bit.
		par.Range(n, 256, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				best, bestD := 0, math.Inf(1)
				row := emb.Row(i)
				for c := 0; c < k; c++ {
					if d2 := dist2(row, centroids.Row(c)); d2 < bestD {
						best, bestD = c, d2
					}
				}
				assign[i] = best
			}
		})
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			counts[assign[i]]++
		}
		// Reseed empty clusters with the globally farthest point.
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				continue
			}
			best, bestD := 0, -1.0
			for i := 0; i < n; i++ {
				if counts[assign[i]] <= 1 {
					continue // don't empty another cluster
				}
				if d2 := dist2(emb.Row(i), centroids.Row(assign[i])); d2 > bestD {
					best, bestD = i, d2
				}
			}
			counts[assign[best]]--
			assign[best] = c
			counts[c] = 1
			copy(centroids.Row(c), emb.Row(best))
		}
		// Update step.
		centroids.Zero()
		for i := 0; i < n; i++ {
			crow := centroids.Row(assign[i])
			for j, v := range emb.Row(i) {
				crow[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				inv := 1 / float64(counts[c])
				for j := range centroids.Row(c) {
					centroids.Row(c)[j] *= inv
				}
			}
		}
	}
	return assign
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SpectralMatchError measures how well the condensed graph preserves the
// original's top-k operator eigenvalues (descending, relative error
// averaged over comparable pairs) — the eigenbasis-matching objective's
// observable.
func SpectralMatchError(g *graph.CSR, r *Result, k int, rng *rand.Rand) (float64, error) {
	if k > r.Condensed.N {
		k = r.Condensed.N
	}
	opC := graph.NewOperator(r.Condensed, graph.NormSymmetric, true)
	valsC, _, err := spectral.SubspaceIteration(opC, k, 150, rng)
	if err != nil {
		return 0, err
	}
	var sum float64
	count := 0
	for i := 0; i < k && i < len(r.EigenValues); i++ {
		ref := r.EigenValues[i]
		if math.Abs(ref) < 1e-9 {
			continue
		}
		sum += math.Abs(ref-valsC[i]) / math.Abs(ref)
		count++
	}
	if count == 0 {
		return 0, nil
	}
	return sum / float64(count), nil
}
