// Package graph implements the graph storage substrate for scalegnn: an
// immutable CSR (compressed sparse row) adjacency structure, builders,
// normalized propagation operators, synthetic graph generators, and
// edge-list serialization.
//
// Everything downstream — PPR, spectral filters, samplers, sparsifiers,
// coarseners, partitioners, and the GNN models — operates on *graph.CSR.
// The representation is the classic data-management layout for graph
// analytics: two int32 slices (offsets + targets) and an optional parallel
// weight slice, giving O(1) neighbor-range lookup and cache-friendly scans.
package graph

import (
	"fmt"
	"sort"
)

// CSR is an immutable graph in compressed sparse row form.
//
// For node u, its out-neighbors are Adj[Offsets[u]:Offsets[u+1]] with
// parallel weights Weights[Offsets[u]:Offsets[u+1]] (Weights may be nil for
// an unweighted graph, in which case every edge has weight 1). Undirected
// graphs store each edge in both directions.
type CSR struct {
	N       int       // number of nodes
	Offsets []int64   // length N+1, Offsets[0] == 0
	Adj     []int32   // length M (directed edge count)
	Weights []float64 // nil, or length M

	undirected bool

	// applyHook, when non-nil, intercepts ApplyInto on every operator
	// derived from this graph (see ApplyHook). It is runtime wiring for
	// the distributed trainer, not graph data: the topology above stays
	// immutable.
	applyHook ApplyHook
}

// SetApplyHook installs (or, with nil, removes) the propagation hook for
// this graph. Not safe to call concurrently with propagation; install the
// hook before training starts.
func (g *CSR) SetApplyHook(h ApplyHook) { g.applyHook = h }

// NumEdges returns the number of stored directed edges (arcs). For an
// undirected graph this is twice the number of undirected edges.
func (g *CSR) NumEdges() int { return len(g.Adj) }

// Undirected reports whether the graph was built as undirected (every edge
// stored in both directions).
func (g *CSR) Undirected() bool { return g.undirected }

// Degree returns the out-degree of node u.
func (g *CSR) Degree(u int) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Neighbors returns the out-neighbor slice of node u. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *CSR) Neighbors(u int) []int32 {
	return g.Adj[g.Offsets[u]:g.Offsets[u+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(u), or nil for
// an unweighted graph.
func (g *CSR) NeighborWeights(u int) []float64 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[u]:g.Offsets[u+1]]
}

// EdgeWeight returns the weight of the k-th arc (position in Adj).
func (g *CSR) EdgeWeight(k int) float64 {
	if g.Weights == nil {
		return 1
	}
	return g.Weights[k]
}

// HasEdge reports whether the arc u->v exists, using binary search over the
// sorted neighbor list.
func (g *CSR) HasEdge(u, v int) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

// WeightedDegree returns the sum of edge weights out of u (the out-degree
// for unweighted graphs).
func (g *CSR) WeightedDegree(u int) float64 {
	if g.Weights == nil {
		return float64(g.Degree(u))
	}
	var s float64
	for _, w := range g.NeighborWeights(u) {
		s += w
	}
	return s
}

// Degrees returns the out-degree of every node.
func (g *CSR) Degrees() []int {
	d := make([]int, g.N)
	for u := range d {
		d[u] = g.Degree(u)
	}
	return d
}

// MaxDegree returns the largest out-degree in the graph, or 0 when empty.
func (g *CSR) MaxDegree() int {
	var max int
	for u := 0; u < g.N; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean out-degree.
func (g *CSR) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Adj)) / float64(g.N)
}

// Edge is a weighted arc used by builders and serialization.
type Edge struct {
	U, V int
	W    float64
}

// Builder accumulates edges and produces a CSR. It deduplicates parallel
// edges (summing their weights) and drops self-loops unless KeepSelfLoops
// is set.
type Builder struct {
	N             int
	Directed      bool
	KeepSelfLoops bool
	edges         []Edge
}

// NewBuilder returns a Builder for a graph with n nodes. By default the
// graph is undirected and self-loops are dropped.
func NewBuilder(n int) *Builder { return &Builder{N: n} }

// AddEdge records an edge with weight 1.
func (b *Builder) AddEdge(u, v int) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records an edge with the given weight.
func (b *Builder) AddWeightedEdge(u, v int, w float64) {
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
}

// NumPending returns the number of edges recorded so far (before dedup).
func (b *Builder) NumPending() int { return len(b.edges) }

// Build validates and finalizes the CSR. Endpoints must lie in [0, N).
// Parallel edges are merged by summing weights; the result is unweighted
// (nil Weights) only if every merged weight is exactly 1.
func (b *Builder) Build() (*CSR, error) {
	for _, e := range b.edges {
		if e.U < 0 || e.U >= b.N || e.V < 0 || e.V >= b.N {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, b.N)
		}
	}
	// Materialize arcs: undirected graphs get both directions.
	arcs := make([]Edge, 0, len(b.edges)*2)
	for _, e := range b.edges {
		if e.U == e.V && !b.KeepSelfLoops {
			continue
		}
		arcs = append(arcs, e)
		if !b.Directed && e.U != e.V {
			arcs = append(arcs, Edge{U: e.V, V: e.U, W: e.W})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].U != arcs[j].U {
			return arcs[i].U < arcs[j].U
		}
		return arcs[i].V < arcs[j].V
	})
	// Merge duplicates.
	merged := arcs[:0]
	for _, a := range arcs {
		if n := len(merged); n > 0 && merged[n-1].U == a.U && merged[n-1].V == a.V {
			merged[n-1].W += a.W
			continue
		}
		merged = append(merged, a)
	}

	g := &CSR{
		N:          b.N,
		Offsets:    make([]int64, b.N+1),
		Adj:        make([]int32, len(merged)),
		undirected: !b.Directed,
	}
	weighted := false
	for _, a := range merged {
		if a.W != 1 {
			weighted = true
			break
		}
	}
	if weighted {
		g.Weights = make([]float64, len(merged))
	}
	for i, a := range merged {
		g.Offsets[a.U+1]++
		g.Adj[i] = int32(a.V)
		if weighted {
			g.Weights[i] = a.W
		}
	}
	for u := 0; u < b.N; u++ {
		g.Offsets[u+1] += g.Offsets[u]
	}
	return g, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// whose inputs are valid by construction.
func (b *Builder) MustBuild() *CSR {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds an undirected unweighted CSR directly from an edge list.
func FromEdges(n int, edges [][2]int) (*CSR, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Edges returns all stored arcs as an Edge slice (u, v, weight). For an
// undirected graph each edge appears twice (both directions).
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, len(g.Adj))
	for u := 0; u < g.N; u++ {
		ws := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			out = append(out, Edge{U: u, V: int(v), W: w})
		}
	}
	return out
}

// UndirectedEdges returns each undirected edge once (u <= v). Self-loops —
// stored as a single arc by Builder when KeepSelfLoops is set — are included
// exactly once, matching Edges; earlier versions silently dropped them here
// (v > u) while keeping them in Edges. It panics on a directed graph.
func (g *CSR) UndirectedEdges() []Edge {
	if !g.undirected {
		panic("graph: UndirectedEdges on directed graph")
	}
	// A self-loop contributes one arc, a proper edge two: with L loops the
	// exact undirected edge count is (len(Adj)-L)/2 + L, not len(Adj)/2.
	loops := 0
	for u := 0; u < g.N; u++ {
		if g.HasEdge(u, u) {
			loops++
		}
	}
	out := make([]Edge, 0, (len(g.Adj)-loops)/2+loops)
	for u := 0; u < g.N; u++ {
		ws := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			if int(v) >= u {
				w := 1.0
				if ws != nil {
					w = ws[i]
				}
				out = append(out, Edge{U: u, V: int(v), W: w})
			}
		}
	}
	return out
}

// Reverse returns the transpose graph (all arcs flipped). For an undirected
// graph the transpose is structurally identical.
func (g *CSR) Reverse() *CSR {
	b := NewBuilder(g.N)
	b.Directed = true
	b.KeepSelfLoops = true
	for _, e := range g.Edges() {
		b.AddWeightedEdge(e.V, e.U, e.W)
	}
	r := b.MustBuild()
	r.undirected = g.undirected
	return r
}

// InducedSubgraph returns the subgraph induced by nodes (which need not be
// sorted), plus the mapping from new index to original node ID. Edges with
// both endpoints in the set are kept with their weights.
func (g *CSR) InducedSubgraph(nodes []int) (*CSR, []int) {
	inv := make(map[int]int, len(nodes))
	ids := make([]int, len(nodes))
	for i, u := range nodes {
		inv[u] = i
		ids[i] = u
	}
	b := NewBuilder(len(nodes))
	b.Directed = !g.undirected
	for i, u := range ids {
		ws := g.NeighborWeights(u)
		for k, v := range g.Neighbors(u) {
			j, ok := inv[int(v)]
			if !ok {
				continue
			}
			// For undirected graphs, add each edge once to avoid doubling.
			if g.undirected && j < i {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[k]
			}
			b.AddWeightedEdge(i, j, w)
		}
	}
	return b.MustBuild(), ids
}

// ConnectedComponents labels each node with a component ID (0-based,
// ordered by first-seen node) and returns the labels and component count.
// Directed graphs are treated as undirected for this purpose only if they
// were built undirected; otherwise this yields weakly-connected components
// of the stored arcs' underlying adjacency.
func (g *CSR) ConnectedComponents() ([]int, int) {
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	next := 0
	for s := 0; s < g.N; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(int(u)) {
				if comp[v] == -1 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return comp, next
}

// BFSDistances returns hop distances from src to every node (-1 when
// unreachable).
func (g *CSR) BFSDistances(src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{int32(src)}
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			du := dist[u]
			for _, v := range g.Neighbors(int(u)) {
				if dist[v] == -1 {
					dist[v] = du + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}
