package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"scalegnn/internal/tensor"
)

func triangle(t *testing.T) *CSR {
	t.Helper()
	g, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := triangle(t)
	if g.N != 3 || g.NumEdges() != 6 {
		t.Fatalf("triangle: n=%d m=%d", g.N, g.NumEdges())
	}
	for u := 0; u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 0) {
		t.Error("HasEdge wrong")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse: undirected should merge
	b.AddEdge(2, 2) // self-loop dropped by default
	g := b.MustBuild()
	// Each direction of (0,1) appears once but with merged weight 2 (two
	// recorded undirected edges).
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %v", g.Degrees())
	}
	if g.Weights == nil || g.WeightedDegree(0) != 2 {
		t.Errorf("merged weight = %v, want 2", g.WeightedDegree(0))
	}

	b2 := NewBuilder(2)
	b2.KeepSelfLoops = true
	b2.AddEdge(0, 0)
	g2 := b2.MustBuild()
	if g2.Degree(0) != 1 || !g2.HasEdge(0, 0) {
		t.Error("KeepSelfLoops should retain the loop")
	}
}

func TestDirectedBuilder(t *testing.T) {
	b := NewBuilder(3)
	b.Directed = true
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	if g.Undirected() {
		t.Error("graph should be directed")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directed edges should be one-way")
	}
	r := g.Reverse()
	if !r.HasEdge(1, 0) || r.HasEdge(0, 1) {
		t.Error("Reverse should flip arcs")
	}
}

func TestNeighborsSorted(t *testing.T) {
	rng := tensor.NewRand(5)
	g := ErdosRenyi(100, 300, rng)
	for u := 0; u < g.N; u++ {
		ns := g.Neighbors(u)
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
			t.Fatalf("neighbors of %d not sorted", u)
		}
	}
}

func TestUndirectedSymmetryProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRand(uint64(seed))
		g := ErdosRenyi(30, 60, rng)
		for u := 0; u < g.N; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(int(v), u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOffsetsInvariantProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRand(uint64(seed) + 1)
		g := BarabasiAlbert(80, 3, rng)
		if g.Offsets[0] != 0 || g.Offsets[g.N] != int64(len(g.Adj)) {
			return false
		}
		for u := 0; u < g.N; u++ {
			if g.Offsets[u] > g.Offsets[u+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangle(t)
	sub, ids := g.InducedSubgraph([]int{0, 2})
	if sub.N != 2 || len(ids) != 2 {
		t.Fatalf("sub n=%d ids=%v", sub.N, ids)
	}
	if !sub.HasEdge(0, 1) {
		t.Error("edge (0,2) should survive in the induced subgraph")
	}
	if sub.NumEdges() != 2 { // one undirected edge = two arcs
		t.Errorf("sub m = %d, want 2", sub.NumEdges())
	}
}

func TestConnectedComponents(t *testing.T) {
	g, err := FromEdges(5, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	comp, k := g.ConnectedComponents()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Errorf("labels = %v", comp)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFSDistances(0)
	for i := 0; i < 5; i++ {
		if d[i] != i {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], i)
		}
	}
	g2, _ := FromEdges(3, [][2]int{{0, 1}})
	d2 := g2.BFSDistances(0)
	if d2[2] != -1 {
		t.Error("unreachable node should have distance -1")
	}
}

func TestGenerators(t *testing.T) {
	rng := tensor.NewRand(42)

	er := ErdosRenyi(50, 100, rng)
	if er.N != 50 || er.NumEdges() != 200 {
		t.Errorf("ER: n=%d arcs=%d", er.N, er.NumEdges())
	}

	ba := BarabasiAlbert(200, 3, rng)
	if ba.N != 200 {
		t.Errorf("BA n = %d", ba.N)
	}
	// BA graphs are connected by construction.
	if _, k := ba.ConnectedComponents(); k != 1 {
		t.Errorf("BA components = %d, want 1", k)
	}
	// Power-law: max degree should far exceed average.
	if float64(ba.MaxDegree()) < 2*ba.AvgDegree() {
		t.Errorf("BA max degree %d not skewed vs avg %.1f", ba.MaxDegree(), ba.AvgDegree())
	}

	grid := Grid(4, 5)
	if grid.N != 20 || grid.NumEdges() != 2*(4*4+3*5) {
		t.Errorf("grid: n=%d arcs=%d", grid.N, grid.NumEdges())
	}

	star := Star(10)
	if star.Degree(0) != 9 || star.Degree(1) != 1 {
		t.Error("star degrees wrong")
	}

	cyc := Cycle(6)
	for u := 0; u < 6; u++ {
		if cyc.Degree(u) != 2 {
			t.Fatal("cycle degree != 2")
		}
	}

	k5 := Complete(5)
	if k5.NumEdges() != 20 {
		t.Errorf("K5 arcs = %d, want 20", k5.NumEdges())
	}
}

func TestSBMHomophily(t *testing.T) {
	rng := tensor.NewRand(7)
	for _, h := range []float64{0.1, 0.9} {
		g, labels, err := SBM(SBMConfig{Nodes: 2000, Blocks: 4, AvgDegree: 10, Homophily: h}, rng)
		if err != nil {
			t.Fatal(err)
		}
		intra := 0
		for _, e := range g.UndirectedEdges() {
			if labels[e.U] == labels[e.V] {
				intra++
			}
		}
		frac := float64(intra) / float64(len(g.UndirectedEdges()))
		// Measured edge homophily should track the requested value within a
		// loose tolerance (random inter edges can also land intra-block).
		if frac < h-0.15 || frac > h+0.2 {
			t.Errorf("h=%v: measured intra fraction %.3f too far off", h, frac)
		}
	}
}

func TestSBMValidation(t *testing.T) {
	rng := tensor.NewRand(1)
	if _, _, err := SBM(SBMConfig{Nodes: 0, Blocks: 2, AvgDegree: 4, Homophily: 0.5}, rng); err == nil {
		t.Error("zero nodes should error")
	}
	if _, _, err := SBM(SBMConfig{Nodes: 10, Blocks: 2, AvgDegree: 4, Homophily: 1.5}, rng); err == nil {
		t.Error("homophily > 1 should error")
	}
	if _, _, err := SBM(SBMConfig{Nodes: 10, Blocks: 2, AvgDegree: 4, Homophily: 0.5, Assignment: []int{0}}, rng); err == nil {
		t.Error("wrong assignment length should error")
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := tensor.NewRand(61)
	// beta=0: pure ring lattice, every node has degree k.
	ring := WattsStrogatz(100, 4, 0, rng)
	for u := 0; u < ring.N; u++ {
		if ring.Degree(u) != 4 {
			t.Fatalf("lattice degree(%d) = %d, want 4", u, ring.Degree(u))
		}
	}
	// beta=0.2: same edge count, degrees redistributed, still connected
	// with overwhelming probability at k=6.
	sw := WattsStrogatz(500, 6, 0.2, rng)
	if sw.NumEdges() != 500*6 {
		t.Errorf("small-world arcs = %d, want %d", sw.NumEdges(), 500*6)
	}
	if _, k := sw.ConnectedComponents(); k != 1 {
		t.Errorf("small-world graph has %d components", k)
	}
	// Rewiring shrinks the diameter relative to the lattice.
	dLattice := maxDist(WattsStrogatz(300, 4, 0, rng), 0)
	dSW := maxDist(WattsStrogatz(300, 4, 0.3, rng), 0)
	if dSW >= dLattice {
		t.Errorf("small-world eccentricity %d not below lattice %d", dSW, dLattice)
	}
	// Odd k rounds up; k >= n clamps.
	odd := WattsStrogatz(20, 3, 0, rng)
	if odd.Degree(0) != 4 {
		t.Errorf("odd k: degree = %d, want 4", odd.Degree(0))
	}
}

func maxDist(g *CSR, src int) int {
	worst := 0
	for _, d := range g.BFSDistances(src) {
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestUndirectedEdgesIncludeSelfLoops(t *testing.T) {
	// A graph with a self-loop: UndirectedEdges must report the loop exactly
	// once (it is stored as a single arc), alongside each proper edge once.
	b := NewBuilder(3)
	b.KeepSelfLoops = true
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddWeightedEdge(1, 1, 2.5)
	g := b.MustBuild()

	edges := g.UndirectedEdges()
	if len(edges) != 3 {
		t.Fatalf("got %d undirected edges, want 3 (two proper + one loop): %v", len(edges), edges)
	}
	foundLoop := false
	for _, e := range edges {
		if e.U == 1 && e.V == 1 {
			foundLoop = true
			if e.W != 2.5 {
				t.Errorf("loop weight %v, want 2.5", e.W)
			}
		}
		if e.U > e.V {
			t.Errorf("edge (%d,%d) violates u <= v ordering", e.U, e.V)
		}
	}
	if !foundLoop {
		t.Fatal("self-loop (1,1) missing from UndirectedEdges")
	}
}

func TestUndirectedEdgesRoundTrip(t *testing.T) {
	// Rebuilding a graph from its UndirectedEdges must reproduce the same
	// structure — including self-loops, which a (v > u) filter would drop.
	rng := tensor.NewRand(7)
	b := NewBuilder(20)
	b.KeepSelfLoops = true
	for i := 0; i < 40; i++ {
		b.AddEdge(rng.IntN(20), rng.IntN(20))
	}
	g := b.MustBuild()

	rb := NewBuilder(g.N)
	rb.KeepSelfLoops = true
	for _, e := range g.UndirectedEdges() {
		rb.AddWeightedEdge(e.U, e.V, e.W)
	}
	g2 := rb.MustBuild()

	if g2.N != g.N || len(g2.Adj) != len(g.Adj) {
		t.Fatalf("round trip changed size: n %d->%d, arcs %d->%d", g.N, g2.N, len(g.Adj), len(g2.Adj))
	}
	for u := 0; u < g.N; u++ {
		ns, ns2 := g.Neighbors(u), g2.Neighbors(u)
		if len(ns) != len(ns2) {
			t.Fatalf("node %d degree %d -> %d after round trip", u, len(ns), len(ns2))
		}
		for i := range ns {
			if ns[i] != ns2[i] {
				t.Fatalf("node %d neighbor %d: %d -> %d", u, i, ns[i], ns2[i])
			}
			if g.EdgeWeight(int(g.Offsets[u])+i) != g2.EdgeWeight(int(g2.Offsets[u])+i) {
				t.Fatalf("node %d arc %d weight changed", u, i)
			}
		}
	}
}
