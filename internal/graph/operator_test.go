package graph

import (
	"math"
	"testing"
	"testing/quick"

	"scalegnn/internal/tensor"
)

func TestOperatorRowStochastic(t *testing.T) {
	rng := tensor.NewRand(3)
	g := ErdosRenyi(50, 120, rng)
	op := NewOperator(g, NormRandomWalk, true)
	for u, s := range op.RowSums() {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v, want 1", u, s)
		}
	}
}

func TestOperatorSymmetricMatchesDense(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	op := NewOperator(g, NormSymmetric, true)
	d := op.Dense()
	// Symmetric normalization of an undirected graph must be symmetric.
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if math.Abs(d.At(i, j)-d.At(j, i)) > 1e-12 {
				t.Fatalf("dense operator asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// GCN operator on node 3 (degree 2 +1 loop) to node 0 (degree 3 +1 loop):
	// 1/sqrt(3*4).
	want := 1 / math.Sqrt(12)
	if math.Abs(d.At(3, 0)-want) > 1e-12 {
		t.Errorf("Â[3,0] = %v, want %v", d.At(3, 0), want)
	}
}

func TestOperatorApplyMatchesDense(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRand(uint64(seed) + 11)
		g := ErdosRenyi(20, 40, rng)
		for _, norm := range []Normalization{NormNone, NormSymmetric, NormRandomWalk, NormColumn} {
			for _, loops := range []bool{false, true} {
				op := NewOperator(g, norm, loops)
				x := tensor.RandNormal(g.N, 3, 1, rng)
				fast := op.Apply(x)
				slow := tensor.MatMul(op.Dense(), x)
				if !fast.Equal(slow, 1e-10) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestOperatorApplyVecMatchesApply(t *testing.T) {
	rng := tensor.NewRand(19)
	g := BarabasiAlbert(60, 2, rng)
	op := NewOperator(g, NormSymmetric, true)
	x := make([]float64, g.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := tensor.FromSlice(g.N, 1, append([]float64(nil), x...))
	got := op.ApplyVec(x)
	want := op.Apply(xm)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("ApplyVec[%d] = %v, Apply = %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestPowerApply(t *testing.T) {
	rng := tensor.NewRand(23)
	g := ErdosRenyi(30, 60, rng)
	op := NewOperator(g, NormRandomWalk, true)
	x := tensor.RandNormal(g.N, 2, 1, rng)
	p2 := op.PowerApply(x, 2)
	want := op.Apply(op.Apply(x))
	if !p2.Equal(want, 1e-12) {
		t.Error("PowerApply(2) != Apply∘Apply")
	}
	p0 := op.PowerApply(x, 0)
	if !p0.Equal(x, 0) {
		t.Error("PowerApply(0) should be identity")
	}
}

func TestOperatorPreservesConstantRW(t *testing.T) {
	// Random-walk operator with self-loops preserves the all-ones vector on
	// any graph without isolated nodes.
	rng := tensor.NewRand(29)
	g := BarabasiAlbert(100, 3, rng)
	op := NewOperator(g, NormRandomWalk, true)
	ones := make([]float64, g.N)
	for i := range ones {
		ones[i] = 1
	}
	out := op.ApplyVec(ones)
	for i, v := range out {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("node %d: P·1 = %v", i, v)
		}
	}
}

func TestOperatorSpectralRadiusSym(t *testing.T) {
	// The symmetric-normalized adjacency with self-loops has eigenvalues in
	// [-1, 1]; repeated application of it must not blow up.
	rng := tensor.NewRand(31)
	g := ErdosRenyi(80, 200, rng)
	op := NewOperator(g, NormSymmetric, true)
	x := tensor.RandNormal(g.N, 1, 1, rng)
	norm0 := x.FrobeniusNorm()
	y := op.PowerApply(x, 20)
	if y.FrobeniusNorm() > norm0*1.0001 {
		t.Errorf("‖Â^20 x‖ = %v > ‖x‖ = %v", y.FrobeniusNorm(), norm0)
	}
}

func TestLaplacianAnnihilatesConstant(t *testing.T) {
	// L = I - D^{-1}A kills constant vectors (rw normalization, no loops,
	// no isolated nodes).
	rng := tensor.NewRand(37)
	g := BarabasiAlbert(50, 2, rng)
	op := NewOperator(g, NormRandomWalk, false)
	ones := tensor.New(g.N, 1)
	ones.Fill(1)
	lx := op.Laplacian(ones)
	if lx.MaxAbs() > 1e-12 {
		t.Errorf("L·1 max abs = %v, want 0", lx.MaxAbs())
	}
}

func TestIsolatedNodeZeroRows(t *testing.T) {
	// Node 2 is isolated; normalized operators must leave its row zero
	// (without self-loops) rather than dividing by zero.
	g, err := FromEdges(3, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, norm := range []Normalization{NormSymmetric, NormRandomWalk, NormColumn} {
		op := NewOperator(g, norm, false)
		x := tensor.New(3, 1)
		x.Fill(1)
		y := op.Apply(x)
		if y.At(2, 0) != 0 {
			t.Errorf("norm %v: isolated row = %v", norm, y.At(2, 0))
		}
		if math.IsNaN(y.At(0, 0)) || math.IsInf(y.At(0, 0), 0) {
			t.Errorf("norm %v: produced NaN/Inf", norm)
		}
	}
}

func TestNNZ(t *testing.T) {
	g := triangle(t)
	opNoLoops := NewOperator(g, NormSymmetric, false)
	if opNoLoops.NNZ() != 6 {
		t.Errorf("NNZ = %d, want 6", opNoLoops.NNZ())
	}
	opLoops := NewOperator(g, NormSymmetric, true)
	if opLoops.NNZ() != 9 {
		t.Errorf("NNZ with loops = %d, want 9", opLoops.NNZ())
	}
}

func TestNormalizationString(t *testing.T) {
	cases := map[Normalization]string{
		NormNone: "none", NormSymmetric: "sym", NormRandomWalk: "rw", NormColumn: "col",
	}
	for n, want := range cases {
		if n.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(n), n.String(), want)
		}
	}
}

func BenchmarkOperatorApply(b *testing.B) {
	rng := tensor.NewRand(1)
	g := BarabasiAlbert(10000, 8, rng)
	op := NewOperator(g, NormSymmetric, true)
	x := tensor.RandNormal(g.N, 64, 1, rng)
	dst := tensor.New(g.N, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.ApplyInto(x, dst)
	}
}

func TestApplyIntoRejectsAliasing(t *testing.T) {
	g := triangle(t)
	op := NewOperator(g, NormSymmetric, true)
	x := tensor.New(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyInto(x, x) should panic")
		}
	}()
	op.ApplyInto(x, x)
}

func TestApplyIntoRejectsOverlappingViews(t *testing.T) {
	// dst must be rejected whenever any part of its data range overlaps x,
	// not only when the two share a first element: FromSlice views over one
	// backing array are how such partial overlap arises in practice.
	g := triangle(t)
	op := NewOperator(g, NormSymmetric, true)
	backing := make([]float64, 3*2+3) // room for two shifted 3x2 views
	x := tensor.FromSlice(3, 2, backing[:6])
	dst := tensor.FromSlice(3, 2, backing[3:9])
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyInto with partially overlapping dst should panic")
		}
	}()
	op.ApplyInto(x, dst)
}

func TestApplyIntoDisjointViewsOK(t *testing.T) {
	// Disjoint views over one backing array are legal: the overlap guard
	// must compare data ranges, not backing arrays.
	g := triangle(t)
	op := NewOperator(g, NormSymmetric, true)
	backing := make([]float64, 12)
	x := tensor.FromSlice(3, 2, backing[:6])
	for i := range backing[:6] {
		backing[i] = float64(i + 1)
	}
	dst := tensor.FromSlice(3, 2, backing[6:])
	op.ApplyInto(x, dst)
	want := op.Apply(x)
	for i := range want.Data {
		if math.Abs(want.Data[i]-dst.Data[i]) > 1e-12 {
			t.Fatalf("disjoint-view ApplyInto mismatch at %d: %v vs %v", i, dst.Data[i], want.Data[i])
		}
	}
}
