package graph

import (
	"fmt"
	"math"

	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
)

// Normalization selects how a graph's adjacency matrix is normalized before
// being used as a propagation operator. These are the standard choices from
// the GNN literature; Symmetric with self-loops is the GCN operator
// Â = D̃^{-1/2} Ã D̃^{-1/2}.
type Normalization int

const (
	// NormNone uses raw edge weights.
	NormNone Normalization = iota
	// NormSymmetric uses D^{-1/2} A D^{-1/2}.
	NormSymmetric
	// NormRandomWalk uses D^{-1} A (row-stochastic; the PPR operator).
	NormRandomWalk
	// NormColumn uses A D^{-1} (column-stochastic; PageRank convention).
	NormColumn
)

// minChunkSparse is the minimum nodes per worker for sparse propagation,
// passed to the shared partitioner in internal/par. Sparse rows are cheaper
// than dense ones, so the chunk floor is higher than the dense kernels'.
const minChunkSparse = 256

func (n Normalization) String() string {
	switch n {
	case NormNone:
		return "none"
	case NormSymmetric:
		return "sym"
	case NormRandomWalk:
		return "rw"
	case NormColumn:
		return "col"
	default:
		return fmt.Sprintf("Normalization(%d)", int(n))
	}
}

// Operator is a sparse propagation operator P derived from a graph: the
// (optionally self-looped, optionally normalized) adjacency matrix stored in
// CSR form with explicit per-arc coefficients. Multiplying feature matrices
// by P is the core graph computation of every GNN in this library.
type Operator struct {
	G      *CSR
	Norm   Normalization
	Coef   []float64 // per-arc coefficient, parallel to G.Adj
	loopCo []float64 // per-node self-loop coefficient (nil if none)
}

// NewOperator builds a propagation operator from g.
//
// If addSelfLoops is true, the operator acts as if every node had one extra
// self-loop of weight 1 (the Ã = A + I convention); the loop contribution is
// stored separately so the graph itself is not modified.
func NewOperator(g *CSR, norm Normalization, addSelfLoops bool) *Operator {
	op := &Operator{G: g, Norm: norm, Coef: make([]float64, len(g.Adj))}
	deg := make([]float64, g.N)
	for u := 0; u < g.N; u++ {
		deg[u] = g.WeightedDegree(u)
		if addSelfLoops {
			deg[u]++
		}
	}
	if addSelfLoops {
		op.loopCo = make([]float64, g.N)
	}
	invSqrt := func(d float64) float64 {
		if d == 0 {
			return 0
		}
		return 1 / math.Sqrt(d)
	}
	inv := func(d float64) float64 {
		if d == 0 {
			return 0
		}
		return 1 / d
	}
	for u := 0; u < g.N; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for k := lo; k < hi; k++ {
			v := int(g.Adj[k])
			w := g.EdgeWeight(int(k))
			switch norm {
			case NormNone:
				op.Coef[k] = w
			case NormSymmetric:
				op.Coef[k] = w * invSqrt(deg[u]) * invSqrt(deg[v])
			case NormRandomWalk:
				op.Coef[k] = w * inv(deg[u])
			case NormColumn:
				op.Coef[k] = w * inv(deg[v])
			}
		}
		if addSelfLoops {
			switch norm {
			case NormNone:
				op.loopCo[u] = 1
			case NormSymmetric:
				op.loopCo[u] = inv(deg[u]) // invSqrt(d)*invSqrt(d)
			case NormRandomWalk, NormColumn:
				op.loopCo[u] = inv(deg[u])
			}
		}
	}
	return op
}

// HasSelfLoops reports whether the operator includes the A+I self-loop term.
func (op *Operator) HasSelfLoops() bool { return op.loopCo != nil }

// NNZ returns the number of nonzero coefficients in the operator, counting
// self-loops.
func (op *Operator) NNZ() int {
	n := 0
	for _, c := range op.Coef {
		if c != 0 {
			n++
		}
	}
	if op.loopCo != nil {
		for _, c := range op.loopCo {
			if c != 0 {
				n++
			}
		}
	}
	return n
}

// Apply computes P*X for a dense feature matrix X (rows = nodes), i.e. one
// round of message passing / graph propagation, parallelized over
// destination nodes. The result is a new matrix.
func (op *Operator) Apply(x *tensor.Matrix) *tensor.Matrix {
	if x.Rows != op.G.N {
		panic(fmt.Sprintf("graph: Operator.Apply rows %d != n %d", x.Rows, op.G.N))
	}
	out := tensor.New(x.Rows, x.Cols)
	op.ApplyInto(x, out)
	return out
}

// ApplyInto computes P*X into dst, which must have X's shape and must not
// share any backing memory with X (rows of X are read while rows of dst are
// written, so even partially overlapping FromSlice views would corrupt the
// result). dst is overwritten.
func (op *Operator) ApplyInto(x, dst *tensor.Matrix) {
	if x.Rows != op.G.N {
		panic(fmt.Sprintf("graph: ApplyInto rows %d != n %d", x.Rows, op.G.N))
	}
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("graph: ApplyInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, x.Cols))
	}
	if tensor.Overlaps(x.Data, dst.Data) {
		panic("graph: ApplyInto dst must not overlap x")
	}
	g := op.G
	par.Range(g.N, minChunkSparse, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			orow := dst.Row(u)
			for j := range orow {
				orow[j] = 0
			}
			if op.loopCo != nil && op.loopCo[u] != 0 {
				c := op.loopCo[u]
				xrow := x.Row(u)
				for j, xv := range xrow {
					orow[j] = c * xv
				}
			}
			s, e := g.Offsets[u], g.Offsets[u+1]
			for k := s; k < e; k++ {
				c := op.Coef[k]
				if c == 0 {
					continue
				}
				xrow := x.Row(int(g.Adj[k]))
				for j, xv := range xrow {
					orow[j] += c * xv
				}
			}
		}
	})
}

// ApplyVec computes P*x for a vector x of length N.
func (op *Operator) ApplyVec(x []float64) []float64 {
	g := op.G
	if len(x) != g.N {
		panic(fmt.Sprintf("graph: Operator.ApplyVec len %d != n %d", len(x), g.N))
	}
	out := make([]float64, g.N)
	par.Range(g.N, minChunkSparse, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			var s float64
			if op.loopCo != nil {
				s = op.loopCo[u] * x[u]
			}
			a, b := g.Offsets[u], g.Offsets[u+1]
			for k := a; k < b; k++ {
				s += op.Coef[k] * x[g.Adj[k]]
			}
			out[u] = s
		}
	})
	return out
}

// PowerApply computes P^k * X by repeated application.
func (op *Operator) PowerApply(x *tensor.Matrix, k int) *tensor.Matrix {
	cur := x.Clone()
	buf := tensor.New(x.Rows, x.Cols)
	for i := 0; i < k; i++ {
		op.ApplyInto(cur, buf)
		cur, buf = buf, cur
	}
	return cur
}

// RowSums returns the row sums of the operator matrix; for NormRandomWalk
// with self-loops these are all 1 on nodes with nonzero degree.
func (op *Operator) RowSums() []float64 {
	g := op.G
	out := make([]float64, g.N)
	for u := 0; u < g.N; u++ {
		var s float64
		if op.loopCo != nil {
			s = op.loopCo[u]
		}
		a, b := g.Offsets[u], g.Offsets[u+1]
		for k := a; k < b; k++ {
			s += op.Coef[k]
		}
		out[u] = s
	}
	return out
}

// Dense materializes the operator as a dense N x N matrix. Intended for
// tests and tiny graphs only.
func (op *Operator) Dense() *tensor.Matrix {
	g := op.G
	m := tensor.New(g.N, g.N)
	for u := 0; u < g.N; u++ {
		if op.loopCo != nil {
			m.Set(u, u, m.At(u, u)+op.loopCo[u])
		}
		a, b := g.Offsets[u], g.Offsets[u+1]
		for k := a; k < b; k++ {
			v := int(g.Adj[k])
			m.Set(u, v, m.At(u, v)+op.Coef[k])
		}
	}
	return m
}

// Laplacian returns the normalized Laplacian operator L = I - P applied as a
// closure over this operator: y = x - P x. It is used by spectral filters.
func (op *Operator) Laplacian(x *tensor.Matrix) *tensor.Matrix {
	px := op.Apply(x)
	out := x.Clone()
	out.Sub(px)
	return out
}

