package graph

import (
	"fmt"
	"math"

	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
)

// Normalization selects how a graph's adjacency matrix is normalized before
// being used as a propagation operator. These are the standard choices from
// the GNN literature; Symmetric with self-loops is the GCN operator
// Â = D̃^{-1/2} Ã D̃^{-1/2}.
type Normalization int

const (
	// NormNone uses raw edge weights.
	NormNone Normalization = iota
	// NormSymmetric uses D^{-1/2} A D^{-1/2}.
	NormSymmetric
	// NormRandomWalk uses D^{-1} A (row-stochastic; the PPR operator).
	NormRandomWalk
	// NormColumn uses A D^{-1} (column-stochastic; PageRank convention).
	NormColumn
)

// minChunkSparse is the minimum nodes per worker for sparse propagation,
// passed to the shared partitioner in internal/par. Sparse rows are cheaper
// than dense ones, so the chunk floor is higher than the dense kernels'.
const minChunkSparse = 256

func (n Normalization) String() string {
	switch n {
	case NormNone:
		return "none"
	case NormSymmetric:
		return "sym"
	case NormRandomWalk:
		return "rw"
	case NormColumn:
		return "col"
	default:
		return fmt.Sprintf("Normalization(%d)", int(n))
	}
}

// OperatorOf is a sparse propagation operator P derived from a graph: the
// (optionally self-looped, optionally normalized) adjacency matrix stored in
// CSR form with explicit per-arc coefficients of element type T. Multiplying
// feature matrices by P is the core graph computation of every GNN in this
// library; the float32 instantiation halves the memory traffic of this
// bandwidth-bound phase.
type OperatorOf[T tensor.Elem] struct {
	G      *CSR
	Norm   Normalization
	Coef   []T // per-arc coefficient, parallel to G.Adj
	loopCo []T // per-node self-loop coefficient (nil if none)
}

// Operator is the float64 instantiation — the reference propagation path.
type Operator = OperatorOf[float64]

// NewOperator builds a float64 propagation operator from g.
//
// If addSelfLoops is true, the operator acts as if every node had one extra
// self-loop of weight 1 (the Ã = A + I convention); the loop contribution is
// stored separately so the graph itself is not modified.
func NewOperator(g *CSR, norm Normalization, addSelfLoops bool) *Operator {
	return NewOperatorOf[float64](g, norm, addSelfLoops)
}

// NewOperatorOf builds a propagation operator with coefficients of element
// type T. Degree normalization always happens in float64 and narrows once at
// the end, so a float32 operator's coefficients are the correctly rounded
// float64 values rather than an accumulation of low-precision steps.
func NewOperatorOf[T tensor.Elem](g *CSR, norm Normalization, addSelfLoops bool) *OperatorOf[T] {
	op := &OperatorOf[T]{G: g, Norm: norm, Coef: make([]T, len(g.Adj))}
	deg := make([]float64, g.N)
	for u := 0; u < g.N; u++ {
		deg[u] = g.WeightedDegree(u)
		if addSelfLoops {
			deg[u]++
		}
	}
	if addSelfLoops {
		op.loopCo = make([]T, g.N)
	}
	invSqrt := func(d float64) float64 {
		if d == 0 {
			return 0
		}
		return 1 / math.Sqrt(d)
	}
	inv := func(d float64) float64 {
		if d == 0 {
			return 0
		}
		return 1 / d
	}
	for u := 0; u < g.N; u++ {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for k := lo; k < hi; k++ {
			v := int(g.Adj[k])
			w := g.EdgeWeight(int(k))
			switch norm {
			case NormNone:
				op.Coef[k] = T(w)
			case NormSymmetric:
				op.Coef[k] = T(w * invSqrt(deg[u]) * invSqrt(deg[v]))
			case NormRandomWalk:
				op.Coef[k] = T(w * inv(deg[u]))
			case NormColumn:
				op.Coef[k] = T(w * inv(deg[v]))
			}
		}
		if addSelfLoops {
			switch norm {
			case NormNone:
				op.loopCo[u] = 1
			case NormSymmetric:
				op.loopCo[u] = T(inv(deg[u])) // invSqrt(d)*invSqrt(d)
			case NormRandomWalk, NormColumn:
				op.loopCo[u] = T(inv(deg[u]))
			}
		}
	}
	return op
}

// HasSelfLoops reports whether the operator includes the A+I self-loop term.
func (op *OperatorOf[T]) HasSelfLoops() bool { return op.loopCo != nil }

// NNZ returns the number of nonzero coefficients in the operator, counting
// self-loops.
func (op *OperatorOf[T]) NNZ() int {
	n := 0
	for _, c := range op.Coef {
		if c != 0 {
			n++
		}
	}
	if op.loopCo != nil {
		for _, c := range op.loopCo {
			if c != 0 {
				n++
			}
		}
	}
	return n
}

// ApplyHook intercepts ApplyInto on every operator derived from a graph it
// is attached to (see CSR.SetApplyHook). The distributed runtime installs
// one to partition the SpMM across processes: the hook computes its shard's
// rows via ApplyRowsInto and fills the rest from peer exchanges, so models
// whose propagation routes through ApplyInto distribute with no model-code
// changes. The two methods cover the element-type tiers; interfaces cannot
// carry generic methods, so dispatch is by concrete instantiation.
//
// A hook must fully overwrite dst (ApplyInto's contract) and must not call
// ApplyInto on an operator of the same graph (ApplyRowsInto is the
// re-entrancy-safe primitive). Hooks have no error return: a hook that
// cannot complete the exchange should panic with a typed error for the
// caller that installed it to recover.
type ApplyHook interface {
	Apply64(op *Operator, x, dst *tensor.Mat[float64])
	Apply32(op *OperatorOf[float32], x, dst *tensor.Mat[float32])
}

// Apply computes P*X for a dense feature matrix X (rows = nodes), i.e. one
// round of message passing / graph propagation, parallelized over
// destination nodes. The result is a new matrix.
func (op *OperatorOf[T]) Apply(x *tensor.Mat[T]) *tensor.Mat[T] {
	if x.Rows != op.G.N {
		panic(fmt.Sprintf("graph: Operator.Apply rows %d != n %d", x.Rows, op.G.N))
	}
	out := tensor.NewOf[T](x.Rows, x.Cols)
	op.ApplyInto(x, out)
	return out
}

// ApplyInto computes P*X into dst — the CSR×dense SpMM kernel. dst must
// have X's shape and must not share any backing memory with X (rows of X
// are read while rows of dst are written, so even partially overlapping
// FromSlice views would corrupt the result). dst is overwritten.
//
// Work is row-chunked across goroutines via internal/par; each destination
// row accumulates its arcs in CSR order with a 4-wide unrolled axpy over
// the feature columns. Columns are independent, so unrolling never
// reassociates a sum and the float64 path stays bitwise-stable.
func (op *OperatorOf[T]) ApplyInto(x, dst *tensor.Mat[T]) {
	if x.Rows != op.G.N {
		panic(fmt.Sprintf("graph: ApplyInto rows %d != n %d", x.Rows, op.G.N))
	}
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("graph: ApplyInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, x.Cols))
	}
	if tensor.Overlaps(x.Data, dst.Data) {
		panic("graph: ApplyInto dst must not overlap x")
	}
	if h := op.G.applyHook; h != nil {
		switch o := any(op).(type) {
		case *Operator:
			h.Apply64(o, any(x).(*tensor.Mat[float64]), any(dst).(*tensor.Mat[float64]))
			return
		case *OperatorOf[float32]:
			h.Apply32(o, any(x).(*tensor.Mat[float32]), any(dst).(*tensor.Mat[float32]))
			return
		}
	}
	if tensor.FastF32() {
		if fop, ok := any(op).(*OperatorOf[float32]); ok {
			applyIntoF32(fop, any(x).(*tensor.Mat[float32]), any(dst).(*tensor.Mat[float32]))
			return
		}
	}
	g := op.G
	par.Range(g.N, minChunkSparse, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			applyRow(op, u, x, dst)
		}
	})
}

// applyRow computes one destination row of P*X into dst.Row(u) — the shared
// per-row SpMM body of ApplyInto and ApplyRowsInto. A row's value depends
// only on u's arcs (accumulated in CSR order via scatterAxpy) and the
// referenced rows of x, never on which other rows are computed alongside it,
// so any subset of rows is bitwise identical to the same rows of a full
// ApplyInto.
func applyRow[T tensor.Elem](op *OperatorOf[T], u int, x, dst *tensor.Mat[T]) {
	orow := dst.Row(u)
	if op.loopCo != nil && op.loopCo[u] != 0 {
		c := op.loopCo[u]
		xrow := x.Row(u)
		for j, xv := range xrow {
			orow[j] = c * xv
		}
	} else {
		for j := range orow {
			orow[j] = 0
		}
	}
	g := op.G
	s, e := g.Offsets[u], g.Offsets[u+1]
	for k := s; k < e; k++ {
		c := op.Coef[k]
		if c == 0 {
			continue
		}
		xrow := x.Row(int(g.Adj[k]))
		scatterAxpy(c, xrow, orow)
	}
}

// ApplyRowsInto computes only the listed destination rows of P*X into dst,
// leaving every other row of dst untouched. It is the partitioned form of
// ApplyInto used by the distributed runtime: each shard computes its owned
// rows and receives the rest over the wire. The per-row kernel is shared
// with ApplyInto, so on the float64 tier the computed rows are bitwise
// identical to the same rows of a full local ApplyInto. x must still span
// the whole graph (a row may aggregate any neighbor). dst must have X's
// shape and must not share backing memory with X.
func (op *OperatorOf[T]) ApplyRowsInto(x, dst *tensor.Mat[T], rows []int32) {
	if x.Rows != op.G.N {
		panic(fmt.Sprintf("graph: ApplyRowsInto rows %d != n %d", x.Rows, op.G.N))
	}
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("graph: ApplyRowsInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, x.Cols))
	}
	if tensor.Overlaps(x.Data, dst.Data) {
		panic("graph: ApplyRowsInto dst must not overlap x")
	}
	if tensor.FastF32() {
		if fop, ok := any(op).(*OperatorOf[float32]); ok {
			fx, fdst := any(x).(*tensor.Mat[float32]), any(dst).(*tensor.Mat[float32])
			par.Range(len(rows), minChunkSparse, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					applyRowF32(fop, int(rows[i]), fx, fdst)
				}
			})
			return
		}
	}
	par.Range(len(rows), minChunkSparse, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			applyRow(op, int(rows[i]), x, dst)
		}
	})
}

// applyIntoF32 is the vectorized float32 SpMM: identical traversal to the
// generic ApplyInto, with the per-arc row update routed through the AVX2
// axpy. The float64 tier never takes this path, so its accumulation order
// (and bitwise fingerprints) are unaffected.
func applyIntoF32(op *OperatorOf[float32], x, dst *tensor.Mat[float32]) {
	g := op.G
	par.Range(g.N, minChunkSparse, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			applyRowF32(op, u, x, dst)
		}
	})
}

// applyRowF32 is applyRow with the per-arc update routed through the AVX2
// axpy — the float32 fast-path row kernel shared by applyIntoF32 and
// ApplyRowsInto.
func applyRowF32(op *OperatorOf[float32], u int, x, dst *tensor.Mat[float32]) {
	orow := dst.Row(u)
	if op.loopCo != nil && op.loopCo[u] != 0 {
		c := op.loopCo[u]
		xrow := x.Row(u)
		for j, xv := range xrow {
			orow[j] = c * xv
		}
	} else {
		for j := range orow {
			orow[j] = 0
		}
	}
	g := op.G
	s, e := g.Offsets[u], g.Offsets[u+1]
	for k := s; k < e; k++ {
		c := op.Coef[k]
		if c == 0 {
			continue
		}
		tensor.F32Axpy(c, x.Row(int(g.Adj[k])), orow)
	}
}

// scatterAxpy computes orow += c*xrow with a 4-wide unrolled loop — the
// SpMM inner kernel. Rows are contiguous and columns independent, so the
// unroll affects instruction-level parallelism only, never accumulation
// order.
func scatterAxpy[T tensor.Elem](c T, xrow, orow []T) {
	n := len(orow)
	j := 0
	for ; j+4 <= n; j += 4 {
		xq := xrow[j : j+4 : j+4]
		oq := orow[j : j+4 : j+4]
		oq[0] += c * xq[0]
		oq[1] += c * xq[1]
		oq[2] += c * xq[2]
		oq[3] += c * xq[3]
	}
	for ; j < n; j++ {
		orow[j] += c * xrow[j]
	}
}

// ApplyVec computes P*x for a vector x of length N.
func (op *OperatorOf[T]) ApplyVec(x []T) []T {
	g := op.G
	if len(x) != g.N {
		panic(fmt.Sprintf("graph: Operator.ApplyVec len %d != n %d", len(x), g.N))
	}
	out := make([]T, g.N)
	op.ApplyVecInto(x, out)
	return out
}

// ApplyVecInto computes P*x into dst (length N), overwriting it — the
// single-column SpMM used by PPR power iteration and diffusion. dst must
// not alias x.
func (op *OperatorOf[T]) ApplyVecInto(x, dst []T) {
	g := op.G
	if len(x) != g.N {
		panic(fmt.Sprintf("graph: Operator.ApplyVecInto len %d != n %d", len(x), g.N))
	}
	if len(dst) != g.N {
		panic(fmt.Sprintf("graph: Operator.ApplyVecInto dst len %d != n %d", len(dst), g.N))
	}
	if tensor.Overlaps(x, dst) {
		panic("graph: ApplyVecInto dst must not overlap x")
	}
	par.Range(g.N, minChunkSparse, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			var s T
			if op.loopCo != nil {
				s = op.loopCo[u] * x[u]
			}
			a, b := g.Offsets[u], g.Offsets[u+1]
			for k := a; k < b; k++ {
				s += op.Coef[k] * x[g.Adj[k]]
			}
			dst[u] = s
		}
	})
}

// PowerApply computes P^k * X by repeated application.
func (op *OperatorOf[T]) PowerApply(x *tensor.Mat[T], k int) *tensor.Mat[T] {
	cur := x.Clone()
	buf := tensor.NewOf[T](x.Rows, x.Cols)
	for i := 0; i < k; i++ {
		op.ApplyInto(cur, buf)
		cur, buf = buf, cur
	}
	return cur
}

// RowSums returns the row sums of the operator matrix; for NormRandomWalk
// with self-loops these are all 1 on nodes with nonzero degree.
func (op *OperatorOf[T]) RowSums() []T {
	g := op.G
	out := make([]T, g.N)
	for u := 0; u < g.N; u++ {
		var s T
		if op.loopCo != nil {
			s = op.loopCo[u]
		}
		a, b := g.Offsets[u], g.Offsets[u+1]
		for k := a; k < b; k++ {
			s += op.Coef[k]
		}
		out[u] = s
	}
	return out
}

// Dense materializes the operator as a dense N x N matrix. Intended for
// tests and tiny graphs only — every production path goes through the
// SpMM ApplyInto.
func (op *OperatorOf[T]) Dense() *tensor.Mat[T] {
	g := op.G
	m := tensor.NewOf[T](g.N, g.N)
	for u := 0; u < g.N; u++ {
		if op.loopCo != nil {
			m.Set(u, u, m.At(u, u)+op.loopCo[u])
		}
		a, b := g.Offsets[u], g.Offsets[u+1]
		for k := a; k < b; k++ {
			v := int(g.Adj[k])
			m.Set(u, v, m.At(u, v)+op.Coef[k])
		}
	}
	return m
}

// Laplacian returns the normalized Laplacian operator L = I - P applied as a
// closure over this operator: y = x - P x. It is used by spectral filters.
func (op *OperatorOf[T]) Laplacian(x *tensor.Mat[T]) *tensor.Mat[T] {
	px := op.Apply(x)
	out := x.Clone()
	out.Sub(px)
	return out
}
