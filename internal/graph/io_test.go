package graph

import (
	"bytes"
	"strings"
	"testing"

	"scalegnn/internal/tensor"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := tensor.NewRand(8)
	g := ErdosRenyi(40, 80, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: n %d->%d, m %d->%d", g.N, g2.N, g.NumEdges(), g2.NumEdges())
	}
	for u := 0; u < g.N; u++ {
		ns, ns2 := g.Neighbors(u), g2.Neighbors(u)
		if len(ns) != len(ns2) {
			t.Fatalf("node %d degree changed", u)
		}
		for i := range ns {
			if ns[i] != ns2[i] {
				t.Fatalf("node %d neighbor list changed", u)
			}
		}
	}
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.25)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.WeightedDegree(1) != 2.75 {
		t.Errorf("weighted degree(1) = %v, want 2.75", g2.WeightedDegree(1))
	}
}

func TestEdgeListDirectedRoundTrip(t *testing.T) {
	b := NewBuilder(3)
	b.Directed = true
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Undirected() {
		t.Fatal("directedness lost in round trip")
	}
	if !g2.HasEdge(0, 1) || g2.HasEdge(1, 0) {
		t.Error("directed edges wrong after round trip")
	}
}

func TestReadEdgeListBareFormat(t *testing.T) {
	in := "0 1\n1 2\n# a comment\n\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 6 {
		t.Errorf("bare parse: n=%d arcs=%d", g.N, g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",        // too few fields
		"0 1 2 3\n",  // too many fields
		"x 1\n",      // bad source
		"0 y\n",      // bad target
		"0 1 zz\n",   // bad weight
		"0 999999\n", // builds fine (inferred n) — keep valid check below
	}
	for i, in := range cases[:5] {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): expected error", i, in)
		}
	}
	// Large inferred ID is valid, just big.
	g, err := ReadEdgeList(strings.NewReader(cases[5]))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1000000 {
		t.Errorf("inferred n = %d", g.N)
	}
}
