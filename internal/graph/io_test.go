package graph

import (
	"bytes"
	"strings"
	"testing"

	"scalegnn/internal/tensor"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := tensor.NewRand(8)
	g := ErdosRenyi(40, 80, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: n %d->%d, m %d->%d", g.N, g2.N, g.NumEdges(), g2.NumEdges())
	}
	for u := 0; u < g.N; u++ {
		ns, ns2 := g.Neighbors(u), g2.Neighbors(u)
		if len(ns) != len(ns2) {
			t.Fatalf("node %d degree changed", u)
		}
		for i := range ns {
			if ns[i] != ns2[i] {
				t.Fatalf("node %d neighbor list changed", u)
			}
		}
	}
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.25)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.WeightedDegree(1) != 2.75 {
		t.Errorf("weighted degree(1) = %v, want 2.75", g2.WeightedDegree(1))
	}
}

func TestEdgeListDirectedRoundTrip(t *testing.T) {
	b := NewBuilder(3)
	b.Directed = true
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Undirected() {
		t.Fatal("directedness lost in round trip")
	}
	if !g2.HasEdge(0, 1) || g2.HasEdge(1, 0) {
		t.Error("directed edges wrong after round trip")
	}
}

func TestReadEdgeListBareFormat(t *testing.T) {
	in := "0 1\n1 2\n# a comment\n\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 6 {
		t.Errorf("bare parse: n=%d arcs=%d", g.N, g.NumEdges())
	}
}

// TestReadEdgeListErrors is the malformed-input table: every rejection
// must carry the offending line number so a multi-gigabyte edge list can
// be triaged without bisecting it.
func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"too few fields", "0\n", "line 1"},
		{"too many fields", "0 1 2 3\n", "line 1"},
		{"bad source", "x 1\n", "bad source"},
		{"bad target", "0 y\n", "bad target"},
		{"bad weight", "0 1 zz\n", "bad weight"},
		{"negative source", "-1 2\n", "negative node id"},
		{"negative target", "0 1\n2 -7\n", "line 2"},
		{"overflowing id", "0 99999999999999999999999999\n", "bad target"},
		{"id outside declared range", "# nodes 3 directed false\n0 1\n1 5\n", "outside declared range [0,3)"},
		{"negative header count", "# nodes -4 directed false\n0 1\n", "negative node count"},
		{"truncated final line", "0 1\n1 2", "truncated final line"},
		{"truncated after weight", "0 1 0.5\n2 3 0.", "truncated final line"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("input %q: expected error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("input %q: error %q does not mention %q", tc.in, err, tc.want)
			}
		})
	}

	// Large inferred ID is valid, just big.
	g, err := ReadEdgeList(strings.NewReader("0 999999\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1000000 {
		t.Errorf("inferred n = %d", g.N)
	}
}
