package graph

import (
	"fmt"
	"math/rand/v2"
)

// This file contains synthetic graph generators. The tutorial's evaluation
// workloads (Papers100M-class citation graphs, social networks) are not
// available offline, so experiments run on synthetic graphs whose controlling
// parameters — size, degree distribution, community structure, homophily —
// can be swept directly. See DESIGN.md "Substitutions".
//
// All generators are intentionally sequential (not chunked over
// internal/par): every edge draw consumes the single caller-provided RNG
// stream, so the draw sequence — and therefore the generated graph for a
// given seed — depends on loop order. Splitting the stream across workers
// would silently change every downstream fingerprint.

// ErdosRenyi generates a G(n, m) uniform random undirected graph with
// exactly m distinct edges (self-loops excluded).
func ErdosRenyi(n, m int, rng *rand.Rand) *CSR {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	seen := make(map[int64]struct{}, m)
	b := NewBuilder(n)
	for len(seen) < m {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// BarabasiAlbert generates a preferential-attachment graph: nodes arrive one
// at a time and connect to k existing nodes chosen proportionally to degree.
// The result is an undirected power-law graph — the canonical stand-in for
// social and citation networks where neighborhood explosion is most severe.
func BarabasiAlbert(n, k int, rng *rand.Rand) *CSR {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	b := NewBuilder(n)
	// repeated holds each node once per incident edge endpoint, so sampling
	// uniformly from it is degree-proportional sampling.
	repeated := make([]int32, 0, 2*n*k)
	// Seed with a (k+1)-clique.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			b.AddEdge(u, v)
			repeated = append(repeated, int32(u), int32(v))
		}
	}
	targets := make(map[int32]struct{}, k)
	for u := k + 1; u < n; u++ {
		clear(targets)
		for len(targets) < k {
			t := repeated[rng.IntN(len(repeated))]
			if int(t) != u {
				targets[t] = struct{}{}
			}
		}
		for t := range targets {
			b.AddEdge(u, int(t))
			repeated = append(repeated, int32(u), t)
		}
	}
	return b.MustBuild()
}

// SBMConfig parameterizes a stochastic block model with planted communities.
type SBMConfig struct {
	Nodes      int     // total node count
	Blocks     int     // number of communities
	AvgDegree  float64 // expected degree per node
	Homophily  float64 // fraction of a node's edges that stay inside its block, in [0,1]
	Assignment []int   // optional explicit block per node; if nil, round-robin
}

// SBM generates a stochastic block model graph along with the block label of
// every node. Homophily h means an expected fraction h of each node's edges
// land inside its own block and (1-h) land uniformly across other blocks.
// Sweeping h from near 0 (heterophilous) to near 1 (homophilous) reproduces
// the regimes that §3.2.1–§3.2.2 of the tutorial are about.
func SBM(cfg SBMConfig, rng *rand.Rand) (*CSR, []int, error) {
	if cfg.Nodes <= 0 || cfg.Blocks <= 0 {
		return nil, nil, fmt.Errorf("graph: SBM needs positive Nodes and Blocks, got %d/%d", cfg.Nodes, cfg.Blocks)
	}
	if cfg.Homophily < 0 || cfg.Homophily > 1 {
		return nil, nil, fmt.Errorf("graph: SBM homophily %v outside [0,1]", cfg.Homophily)
	}
	n, kb := cfg.Nodes, cfg.Blocks
	labels := cfg.Assignment
	if labels == nil {
		labels = make([]int, n)
		for i := range labels {
			labels[i] = i % kb
		}
	} else if len(labels) != n {
		return nil, nil, fmt.Errorf("graph: SBM assignment length %d != nodes %d", len(labels), n)
	}
	members := make([][]int32, kb)
	for i, c := range labels {
		if c < 0 || c >= kb {
			return nil, nil, fmt.Errorf("graph: SBM label %d out of range", c)
		}
		members[c] = append(members[c], int32(i))
	}
	for c, m := range members {
		if len(m) == 0 {
			return nil, nil, fmt.Errorf("graph: SBM block %d empty", c)
		}
	}
	totalEdges := int(cfg.AvgDegree * float64(n) / 2)
	b := NewBuilder(n)
	seen := make(map[int64]struct{}, totalEdges)
	attempts := 0
	maxAttempts := totalEdges * 50
	for len(seen) < totalEdges && attempts < maxAttempts {
		attempts++
		u := rng.IntN(n)
		var v int
		if rng.Float64() < cfg.Homophily {
			// Intra-block edge.
			blk := members[labels[u]]
			v = int(blk[rng.IntN(len(blk))])
		} else {
			// Inter-block edge: uniform over nodes outside u's block. With
			// balanced blocks, rejection sampling terminates fast.
			for {
				v = rng.IntN(n)
				if labels[v] != labels[u] || kb == 1 {
					break
				}
			}
		}
		if u == v {
			continue
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		key := int64(a)*int64(n) + int64(c)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(a, c)
	}
	return b.MustBuild(), labels, nil
}

// Grid generates an rows x cols 2D lattice (4-neighborhood). Grids have
// large diameter, making them the adversarial case for limited receptive
// fields (§3.2.3 implicit GNNs) and the friendly case for hub labeling.
func Grid(rows, cols int) *CSR {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Path generates a path graph of n nodes — the extreme long-range-dependency
// topology used by the implicit-GNN experiments.
func Path(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

// Star generates a star with one hub (node 0) and n-1 leaves — the extreme
// degree-skew topology.
func Star(n int) *CSR {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.MustBuild()
}

// Complete generates the complete graph K_n. Tests only.
func Complete(n int) *CSR {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// Cycle generates the n-cycle.
func Cycle(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.MustBuild()
}

// WattsStrogatz generates a small-world graph: a ring lattice where every
// node connects to its k nearest neighbors (k even), with each edge
// rewired to a uniform random endpoint with probability beta. Small-world
// graphs combine high clustering with low diameter — the regime between
// the grid and the BA graph used by the subgraph and similarity tests.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *CSR {
	if k%2 != 0 {
		k++
	}
	if k >= n {
		k = n - 1 - (n-1)%2
	}
	if beta < 0 {
		beta = 0
	}
	if beta > 1 {
		beta = 1
	}
	type pair struct{ u, v int }
	seen := make(map[pair]struct{}, n*k/2)
	has := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		_, ok := seen[pair{u, v}]
		return ok
	}
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		seen[pair{u, v}] = struct{}{}
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			add(u, (u+j)%n)
		}
	}
	// Rewire.
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if !has(u, v) {
				continue // already rewired away
			}
			if rng.Float64() < beta {
				// Pick a fresh endpoint.
				for attempts := 0; attempts < 100; attempts++ {
					w := rng.IntN(n)
					if w != u && !has(u, w) {
						delete(seen, pair{min(u, v), max(u, v)})
						add(u, w)
						break
					}
				}
			}
		}
	}
	for p := range seen {
		b.AddEdge(p.u, p.v)
	}
	return b.MustBuild()
}
