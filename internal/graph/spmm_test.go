package graph

import (
	"math"
	"math/rand/v2"
	"testing"

	"scalegnn/internal/tensor"
)

// randCSR builds a random undirected CSR over n nodes. Roughly isolateFrac
// of the nodes get no edges at all, so empty CSR rows (degree 0) are always
// exercised.
func randCSR(t *testing.T, rng *rand.Rand, n int, avgDeg float64, isolateFrac float64) *CSR {
	t.Helper()
	isolated := map[int]bool{}
	for i := 0; i < n; i++ {
		if rng.Float64() < isolateFrac {
			isolated[i] = true
		}
	}
	var edges [][2]int
	target := int(float64(n) * avgDeg / 2)
	// Attempt-capped so graphs too small (or too isolated) to host the
	// target edge count still terminate — an n=1 graph simply stays empty.
	for tries := 0; len(edges) < target && tries < 100*(target+1); tries++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || isolated[u] || isolated[v] {
			continue
		}
		edges = append(edges, [2]int{u, v})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSpMMMatchesDense checks the row-chunked CSR×dense ApplyInto against
// the materialized Dense() operator times X, across every normalization,
// with and without self-loops, at both element tiers, on graphs that
// include empty rows. The float64 comparison is near-exact (the two paths
// only differ in add order within a row); float32 allows vector
// reassociation.
func TestSpMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	norms := []Normalization{NormNone, NormSymmetric, NormRandomWalk, NormColumn}
	for _, n := range []int{1, 17, 120} {
		g := randCSR(t, rng, n, 6, 0.2)
		const d = 9 // odd: exercises the axpy tails
		x := tensor.New(n, d)
		for i := range x.Data {
			x.Data[i] = rng.Float64() - 0.5
		}
		x32 := tensor.FromFloat64[float32](x)
		for _, norm := range norms {
			for _, loops := range []bool{false, true} {
				op := NewOperator(g, norm, loops)
				want := tensor.MatMul(op.Dense(), x)
				got := tensor.New(n, d)
				op.ApplyInto(x, got)
				for i := range want.Data {
					if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
						t.Fatalf("n=%d norm=%v loops=%v float64: spmm[%d]=%g dense=%g",
							n, norm, loops, i, got.Data[i], want.Data[i])
					}
				}

				op32 := NewOperatorOf[float32](g, norm, loops)
				got32 := tensor.NewOf[float32](n, d)
				op32.ApplyInto(x32, got32)
				for i := range want.Data {
					if math.Abs(float64(got32.Data[i])-want.Data[i]) > 1e-4 {
						t.Fatalf("n=%d norm=%v loops=%v float32: spmm[%d]=%g dense64=%g",
							n, norm, loops, i, got32.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

// TestSpMMEmptyRowsZeroOutput pins the empty-row contract: a node with no
// arcs and no self-loop coefficient must come out exactly zero even when
// dst starts dirty (ApplyInto overwrites, never accumulates).
func TestSpMMEmptyRowsZeroOutput(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}}) // nodes 2 and 3 isolated
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3)
	for i := range x.Data {
		x.Data[i] = 1
	}
	op := NewOperator(g, NormSymmetric, false)
	dst := tensor.New(4, 3)
	for i := range dst.Data {
		dst.Data[i] = 99 // dirty destination
	}
	op.ApplyInto(x, dst)
	for _, u := range []int{2, 3} {
		for _, v := range dst.Row(u) {
			if v != 0 {
				t.Fatalf("isolated node %d row = %v, want zeros", u, dst.Row(u))
			}
		}
	}
}
