package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g in a plain-text edge-list format:
//
//	# scalegnn edgelist v1
//	# nodes <N> directed <bool>
//	u v [w]
//
// For undirected graphs each edge is written once (u < v). Weights are
// omitted when the graph is unweighted.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	directed := !g.undirected
	if _, err := fmt.Fprintf(bw, "# scalegnn edgelist v1\n# nodes %d directed %t\n", g.N, directed); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	var edges []Edge
	if g.undirected {
		edges = g.UndirectedEdges()
	} else {
		edges = g.Edges()
	}
	weighted := g.Weights != nil
	for _, e := range edges {
		var err error
		if weighted {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
		if err != nil {
			return fmt.Errorf("graph: write edge: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush: %w", err)
	}
	return nil
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines beginning
// with '#' other than the header are ignored, so hand-written edge lists
// with comments also load; in that case the node count is inferred as
// max(endpoint)+1 and the graph is undirected.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	n := -1
	directed := false
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# nodes ") {
				var d bool
				var nn int
				if _, err := fmt.Sscanf(line, "# nodes %d directed %t", &nn, &d); err == nil {
					n, directed = nn, d
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %w", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target: %w", lineNo, err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{U: u, V: v, W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	if n < 0 {
		n = maxID + 1
	}
	b := NewBuilder(n)
	b.Directed = directed
	for _, e := range edges {
		b.AddWeightedEdge(e.U, e.V, e.W)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graph: build from edge list: %w", err)
	}
	return g, nil
}
