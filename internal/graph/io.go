package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g in a plain-text edge-list format:
//
//	# scalegnn edgelist v1
//	# nodes <N> directed <bool>
//	u v [w]
//
// For undirected graphs each edge is written once (u < v). Weights are
// omitted when the graph is unweighted.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	directed := !g.undirected
	if _, err := fmt.Fprintf(bw, "# scalegnn edgelist v1\n# nodes %d directed %t\n", g.N, directed); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	var edges []Edge
	if g.undirected {
		edges = g.UndirectedEdges()
	} else {
		edges = g.Edges()
	}
	weighted := g.Weights != nil
	for _, e := range edges {
		var err error
		if weighted {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
		if err != nil {
			return fmt.Errorf("graph: write edge: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush: %w", err)
	}
	return nil
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines beginning
// with '#' other than the header are ignored, so hand-written edge lists
// with comments also load; in that case the node count is inferred as
// max(endpoint)+1 and the graph is undirected.
//
// Malformed input fails with a positional error rather than loading a
// silently wrong graph: negative or overflowing node ids, ids outside the
// header's declared range, and a final line cut off without its newline
// (the signature of a truncated download or torn copy — WriteEdgeList
// always terminates the file with one) are all rejected.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	n := -1
	directed := false
	var edges []Edge
	maxID := -1
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("graph: read: %w", err)
		}
		atEOF := err == io.EOF
		if line == "" && atEOF {
			break
		}
		lineNo++
		if atEOF && strings.TrimSpace(line) != "" {
			return nil, fmt.Errorf("graph: line %d: truncated final line (missing newline): %q", lineNo, line)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			if atEOF {
				break
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# nodes ") {
				var d bool
				var nn int
				if _, err := fmt.Sscanf(line, "# nodes %d directed %t", &nn, &d); err == nil {
					if nn < 0 {
						return nil, fmt.Errorf("graph: line %d: header declares negative node count %d", lineNo, nn)
					}
					n, directed = nn, d
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %w", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target: %w", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id in edge (%d,%d)", lineNo, u, v)
		}
		if n >= 0 && (u >= n || v >= n) {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) outside declared range [0,%d)", lineNo, u, v, n)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{U: u, V: v, W: w})
	}
	if n < 0 {
		n = maxID + 1
	}
	b := NewBuilder(n)
	b.Directed = directed
	for _, e := range edges {
		b.AddWeightedEdge(e.U, e.V, e.W)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graph: build from edge list: %w", err)
	}
	return g, nil
}
