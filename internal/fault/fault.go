// Package fault is a failpoint-injection registry for crash and
// degradation testing. Production code plants named sites with
// fault.Inject("ckpt.before-rename"); by default every site is a single
// atomic load and does nothing. Tests (or an operator reproducing a
// failure) arm sites either programmatically via Set, or through the
// SCALEGNN_FAILPOINTS environment variable read at process start:
//
//	SCALEGNN_FAILPOINTS="ckpt.before-rename=crash@2;net.send=drop"
//
// The value is a semicolon-separated list of site=action bindings, where
// action is one of
//
//	error        Inject returns ErrInjected
//	drop         Inject returns ErrDrop (callers treat as "message lost")
//	partial      Inject returns ErrPartial (callers emit a torn write)
//	sleep:<ms>   Inject blocks for <ms> milliseconds, then returns nil
//	delay:<ms>   alias for sleep
//	crash        the process exits immediately with status 137
//	panic        Inject panics
//
// An optional @n suffix makes the action fire only on the n-th hit of the
// site (1-based); earlier and later hits pass through. Without @n the
// action fires on every hit.
//
// Building with -tags nofault compiles the registry out entirely: Inject
// becomes a no-op that the inliner erases, and Set reports that failpoints
// are unavailable. CI builds both ways so the sites cannot rot.
package fault

import "errors"

// ErrInjected is returned by Inject for sites armed with the "error"
// action. Callers should propagate it like any other I/O failure.
var ErrInjected = errors.New("fault: injected error")

// ErrDrop is returned for sites armed with the "drop" action. It models a
// lost message: callers decide whether to retry, skip, or fail loudly.
var ErrDrop = errors.New("fault: injected drop")

// ErrPartial is returned for sites armed with the "partial" action. It
// models a torn write: the caller is expected to emit a deliberately
// truncated frame (then sever the connection), so receivers' corruption
// handling is exercised with real half-written bytes on the wire.
var ErrPartial = errors.New("fault: injected partial write")

// EnvVar is the environment variable parsed at init to arm failpoints.
const EnvVar = "SCALEGNN_FAILPOINTS"
