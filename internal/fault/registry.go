//go:build !nofault

package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether failpoint support is compiled into this binary.
func Enabled() bool { return true }

type action int

const (
	actError action = iota
	actDrop
	actPartial
	actSleep
	actCrash
	actPanic
)

type point struct {
	spec   string // original spec, for the fired log line
	action action
	sleep  time.Duration
	nth    int64 // fire only on this hit (1-based); 0 = every hit
	hits   atomic.Int64
}

var (
	mu     sync.RWMutex
	points = map[string]*point{}
	armed  atomic.Bool // fast-path gate: true iff points is non-empty
)

func init() {
	if env := os.Getenv(EnvVar); env != "" {
		if err := SetFromEnv(env); err != nil {
			// Arming failpoints is always deliberate; a typo silently
			// disabling them would defeat the test that set the variable.
			fmt.Fprintf(os.Stderr, "fault: bad %s: %v\n", EnvVar, err)
			os.Exit(2)
		}
	}
}

// SetFromEnv parses a semicolon-separated list of site=spec bindings (the
// SCALEGNN_FAILPOINTS format) and arms each one.
func SetFromEnv(env string) error {
	for _, binding := range strings.Split(env, ";") {
		binding = strings.TrimSpace(binding)
		if binding == "" {
			continue
		}
		site, spec, ok := strings.Cut(binding, "=")
		if !ok {
			return fmt.Errorf("binding %q is not site=action", binding)
		}
		if err := Set(site, spec); err != nil {
			return err
		}
	}
	return nil
}

// Set arms site with an action spec of the form "action[:arg][@n]".
// See the package comment for the grammar.
func Set(site, spec string) error {
	if site == "" {
		return fmt.Errorf("fault: empty site name")
	}
	p := &point{spec: spec}
	body := spec
	if at := strings.LastIndex(body, "@"); at >= 0 {
		n, err := strconv.ParseInt(body[at+1:], 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("fault: %s: bad hit count in %q", site, spec)
		}
		p.nth = n
		body = body[:at]
	}
	name, arg, hasArg := strings.Cut(body, ":")
	switch name {
	case "error":
		p.action = actError
	case "drop":
		p.action = actDrop
	case "partial":
		p.action = actPartial
	case "sleep", "delay":
		p.action = actSleep
		ms, err := strconv.Atoi(arg)
		if !hasArg || err != nil || ms < 0 {
			return fmt.Errorf("fault: %s: %s needs a millisecond arg, got %q", site, name, spec)
		}
		p.sleep = time.Duration(ms) * time.Millisecond
		hasArg = false
	case "crash":
		p.action = actCrash
	case "panic":
		p.action = actPanic
	default:
		return fmt.Errorf("fault: %s: unknown action %q", site, spec)
	}
	if hasArg {
		return fmt.Errorf("fault: %s: action %s takes no arg, got %q", site, name, spec)
	}
	mu.Lock()
	points[site] = p
	armed.Store(true)
	mu.Unlock()
	return nil
}

// Clear disarms a single site.
func Clear(site string) {
	mu.Lock()
	delete(points, site)
	armed.Store(len(points) > 0)
	mu.Unlock()
}

// Reset disarms every site. Tests call it in cleanup.
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	armed.Store(false)
	mu.Unlock()
}

// Inject evaluates the failpoint at site. With nothing armed it is a
// single atomic load. When the site's action fires, a marker line is
// written to stderr first, so a supervising process (e.g. the kill-9
// crash test) can synchronize on it.
func Inject(site string) error {
	if !armed.Load() {
		return nil
	}
	mu.RLock()
	p := points[site]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	hit := p.hits.Add(1)
	if p.nth != 0 && hit != p.nth {
		return nil
	}
	fmt.Fprintf(os.Stderr, "fault: fired %s=%s (hit %d)\n", site, p.spec, hit)
	switch p.action {
	case actError:
		return fmt.Errorf("%w at %s", ErrInjected, site)
	case actDrop:
		return fmt.Errorf("%w at %s", ErrDrop, site)
	case actPartial:
		return fmt.Errorf("%w at %s", ErrPartial, site)
	case actSleep:
		time.Sleep(p.sleep)
		return nil
	case actCrash:
		os.Exit(137)
	case actPanic:
		panic("fault: injected panic at " + site)
	}
	return nil
}

// Hits reports how many times site has been evaluated while armed.
func Hits(site string) int64 {
	mu.RLock()
	p := points[site]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}
