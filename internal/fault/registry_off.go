//go:build nofault

package fault

import "errors"

// Enabled reports whether failpoint support is compiled into this binary.
func Enabled() bool { return false }

// Inject is a no-op in nofault builds; the inliner erases call sites.
func Inject(string) error { return nil }

// Set always fails in nofault builds: a test arming a failpoint against a
// binary that cannot fire it should find out immediately.
func Set(string, string) error {
	return errors.New("fault: failpoints compiled out (built with -tags nofault)")
}

// SetFromEnv rejects any non-empty binding list, mirroring Set.
func SetFromEnv(env string) error {
	if env == "" {
		return nil
	}
	return errors.New("fault: failpoints compiled out (built with -tags nofault)")
}

// Clear is a no-op in nofault builds.
func Clear(string) {}

// Reset is a no-op in nofault builds.
func Reset() {}

// Hits always reports zero in nofault builds.
func Hits(string) int64 { return 0 }
