//go:build !nofault

package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Inject("nothing.here"); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
}

func TestErrorAndDropActions(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("a", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Set("b", "drop"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("error action: got %v", err)
	}
	if err := Inject("b"); !errors.Is(err, ErrDrop) {
		t.Fatalf("drop action: got %v", err)
	}
	// Unarmed sites pass through even while others are armed.
	if err := Inject("c"); err != nil {
		t.Fatalf("unrelated site: got %v", err)
	}
}

func TestNthHitTrigger(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("s", "error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Inject("s")
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: want nil, got %v", i, err)
		}
	}
	if got := Hits("s"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestSleepAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("s", "sleep:20"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("s"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("sleep returned after %v, want >= 20ms", d)
	}
}

func TestClearDisarms(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("s", "error"); err != nil {
		t.Fatal(err)
	}
	Clear("s")
	if err := Inject("s"); err != nil {
		t.Fatalf("cleared site fired: %v", err)
	}
}

func TestSetFromEnv(t *testing.T) {
	t.Cleanup(Reset)
	if err := SetFromEnv("x=error; y=drop@2 ;;"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("x: got %v", err)
	}
	if err := Inject("y"); err != nil {
		t.Fatalf("y hit 1: got %v", err)
	}
	if err := Inject("y"); !errors.Is(err, ErrDrop) {
		t.Fatalf("y hit 2: got %v", err)
	}
}

func TestBadSpecsRejected(t *testing.T) {
	t.Cleanup(Reset)
	for _, spec := range []string{"", "explode", "sleep", "sleep:abc", "sleep:-1", "error:5", "error@0", "error@x"} {
		if err := Set("s", spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if err := SetFromEnv("justasite"); err == nil {
		t.Error("binding without = accepted")
	}
	if err := Set("", "error"); err == nil {
		t.Error("empty site accepted")
	}
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("s", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("panic action did not panic")
		}
	}()
	_ = Inject("s")
}

func TestConcurrentInject(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("s", "error@50"); err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 4)
	for w := 0; w < 4; w++ {
		//lint:ignore naked-go test exercises registry thread-safety under -race
		go func() {
			fired := 0
			for i := 0; i < 100; i++ {
				if Inject("s") != nil {
					fired++
				}
			}
			done <- fired
		}()
	}
	total := 0
	for w := 0; w < 4; w++ {
		total += <-done
	}
	if total != 1 {
		t.Fatalf("@n trigger fired %d times across goroutines, want exactly 1", total)
	}
}
