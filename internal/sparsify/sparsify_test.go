package sparsify

import (
	"math"
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func testGraph(t *testing.T, seed uint64) *graph.CSR {
	t.Helper()
	return graph.BarabasiAlbert(300, 5, tensor.NewRand(seed))
}

func TestUniformKeepsExpectedFraction(t *testing.T) {
	g := testGraph(t, 1)
	rng := tensor.NewRand(2)
	h, err := Uniform(g, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(h.NumEdges()) / float64(g.NumEdges())
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("kept fraction %v, want ~0.5", frac)
	}
	// Reweighting: each surviving edge has weight 2.
	for _, e := range h.UndirectedEdges() {
		if math.Abs(e.W-2) > 1e-12 {
			t.Fatalf("edge weight %v, want 2", e.W)
		}
	}
}

func TestUniformKeepAllIsIdentity(t *testing.T) {
	g := testGraph(t, 3)
	h, err := Uniform(g, 1, tensor.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Errorf("keep=1 lost edges: %d vs %d", h.NumEdges(), g.NumEdges())
	}
}

func TestUniformValidation(t *testing.T) {
	g := testGraph(t, 5)
	rng := tensor.NewRand(6)
	if _, err := Uniform(g, 0, rng); err == nil {
		t.Error("keep=0 should error")
	}
	if _, err := Uniform(g, 1.5, rng); err == nil {
		t.Error("keep>1 should error")
	}
	b := graph.NewBuilder(2)
	b.Directed = true
	b.AddEdge(0, 1)
	if _, err := Uniform(b.MustBuild(), 0.5, rng); err == nil {
		t.Error("directed graph should error")
	}
}

func TestEffectiveResistancePreservesQuadraticForm(t *testing.T) {
	g := testGraph(t, 7)
	rng := tensor.NewRand(8)
	// Generous sample budget: q = 8·n·log n.
	q := int(8 * float64(g.N) * math.Log(float64(g.N)))
	h, err := EffectiveResistance(g, q, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() >= g.NumEdges() {
		t.Skip("sampled sparsifier not smaller; increase graph size")
	}
	eps := QuadraticFormError(g, h, 20, rng)
	if eps > 0.35 {
		t.Errorf("spectral error %v too large", eps)
	}
}

func TestEffectiveResistanceUnbiasedTotalWeight(t *testing.T) {
	g := testGraph(t, 9)
	rng := tensor.NewRand(10)
	var totalG float64
	for _, e := range g.UndirectedEdges() {
		totalG += e.W
	}
	// Average total weight over several sparsifiers should approach totalG.
	var avg float64
	const reps = 30
	for r := 0; r < reps; r++ {
		h, err := EffectiveResistance(g, 2000, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range h.UndirectedEdges() {
			avg += e.W
		}
	}
	avg /= reps
	if math.Abs(avg-totalG)/totalG > 0.1 {
		t.Errorf("mean total weight %v vs original %v", avg, totalG)
	}
}

func TestEffectiveResistanceValidation(t *testing.T) {
	g := testGraph(t, 11)
	rng := tensor.NewRand(12)
	if _, err := EffectiveResistance(g, 0, rng); err == nil {
		t.Error("q=0 should error")
	}
	empty, _ := graph.FromEdges(5, nil)
	if _, err := EffectiveResistance(empty, 10, rng); err == nil {
		t.Error("empty graph should error")
	}
}

func TestTopKPerNodeDegreeCap(t *testing.T) {
	g := testGraph(t, 13)
	h, err := TopKPerNode(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() >= g.NumEdges() {
		t.Error("top-k should remove edges on a BA graph")
	}
	// Edges survive if EITHER endpoint ranks them, so a hub can exceed k,
	// but every edge must be in some endpoint's top-3.
	for u := 0; u < h.N; u++ {
		if h.Degree(u) == 0 && g.Degree(u) > 0 {
			t.Fatalf("node %d lost all edges", u)
		}
	}
}

func TestTopKPerNodeDeterministic(t *testing.T) {
	g := testGraph(t, 14)
	h1, _ := TopKPerNode(g, 2)
	h2, _ := TopKPerNode(g, 2)
	if h1.NumEdges() != h2.NumEdges() {
		t.Error("TopKPerNode not deterministic")
	}
}

func TestTopKValidation(t *testing.T) {
	g := testGraph(t, 15)
	if _, err := TopKPerNode(g, 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestPruneOperatorThreshold(t *testing.T) {
	g := testGraph(t, 16)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	pruned, st, err := PruneOperator(op, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept+st.Dropped == 0 {
		t.Fatal("no coefficients processed")
	}
	if st.Dropped == 0 {
		t.Skip("threshold dropped nothing; graph too uniform")
	}
	for _, c := range pruned.Coef {
		if c != 0 && math.Abs(c) < 0.05 {
			t.Fatalf("surviving coefficient %v below threshold", c)
		}
	}
	// Self-loops preserved: propagation of a one-hot stays nonzero at the node.
	x := tensor.New(g.N, 1)
	x.Set(0, 0, 1)
	y := pruned.Apply(x)
	if y.At(0, 0) == 0 {
		t.Error("self-loop lost in pruning")
	}
}

func TestPruneOperatorZeroThresholdKeepsAll(t *testing.T) {
	g := testGraph(t, 17)
	op := graph.NewOperator(g, graph.NormSymmetric, false)
	pruned, st, err := PruneOperator(op, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 0 {
		t.Errorf("threshold 0 dropped %d", st.Dropped)
	}
	rng := tensor.NewRand(18)
	x := tensor.RandNormal(g.N, 2, 1, rng)
	if !pruned.Apply(x).Equal(op.Apply(x), 1e-12) {
		t.Error("zero-threshold prune changed the operator")
	}
}

func TestPruneOperatorValidation(t *testing.T) {
	g := testGraph(t, 19)
	op := graph.NewOperator(g, graph.NormSymmetric, false)
	if _, _, err := PruneOperator(op, -1); err == nil {
		t.Error("negative threshold should error")
	}
}

func TestPropagationSpeedup(t *testing.T) {
	g := testGraph(t, 20)
	h, err := TopKPerNode(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := PropagationSpeedup(g, h)
	if s <= 1 {
		t.Errorf("speedup %v, want > 1", s)
	}
	empty, _ := graph.FromEdges(g.N, nil)
	if PropagationSpeedup(g, empty) != 0 {
		t.Error("empty sparsifier should report 0")
	}
}

func TestFeatureSmoothnessErrorOrdering(t *testing.T) {
	// More aggressive pruning must not give lower propagation error.
	g := testGraph(t, 21)
	rng := tensor.NewRand(22)
	mild, err := Uniform(g, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := Uniform(g, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	eMild := FeatureSmoothnessError(g, mild, 8, tensor.NewRand(23))
	eHarsh := FeatureSmoothnessError(g, harsh, 8, tensor.NewRand(23))
	if eMild >= eHarsh {
		t.Errorf("mild prune error %v >= harsh %v", eMild, eHarsh)
	}
}

func BenchmarkEffectiveResistance(b *testing.B) {
	g := graph.BarabasiAlbert(10000, 6, tensor.NewRand(1))
	rng := tensor.NewRand(2)
	q := 4 * g.N
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EffectiveResistance(g, q, rng); err != nil {
			b.Fatal(err)
		}
	}
}
