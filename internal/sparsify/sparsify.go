// Package sparsify implements graph sparsification — tutorial §3.3.1. It
// removes edges (or individual propagation-matrix entries) while preserving
// the properties GNN propagation depends on, trading a controlled amount of
// accuracy for proportionally less propagation work.
//
// Implemented schemes, from coarse to fine:
//
//   - Uniform: keep each edge with probability p, reweighting survivors by
//     1/p (unbiased in expectation; the baseline).
//   - EffectiveResistance: spectral sparsification by importance-sampling
//     edges with probability proportional to (approximate) effective
//     resistance w_e·(1/deg u + 1/deg v), the Spielman-Srivastava recipe
//     with the standard degree proxy. Preserves the Laplacian quadratic
//     form, hence every polynomial spectral filter.
//   - TopKPerNode: rank-based pruning keeping each node's k strongest
//     incident edges (the fine-grained, node-personalized maneuver of
//     ATP/NIGCN-style methods).
//   - PruneOperator: Unifews-style entry-wise thresholding applied directly
//     to a propagation operator's coefficients.
package sparsify

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

// Uniform keeps each undirected edge independently with probability keep,
// scaling surviving weights by 1/keep so the expected adjacency is
// preserved.
func Uniform(g *graph.CSR, keep float64, rng *rand.Rand) (*graph.CSR, error) {
	if keep <= 0 || keep > 1 {
		return nil, fmt.Errorf("sparsify: keep fraction %v outside (0,1]", keep)
	}
	if !g.Undirected() {
		return nil, fmt.Errorf("sparsify: Uniform requires an undirected graph")
	}
	b := graph.NewBuilder(g.N)
	scale := 1 / keep
	for _, e := range g.UndirectedEdges() {
		if rng.Float64() < keep {
			b.AddWeightedEdge(e.U, e.V, e.W*scale)
		}
	}
	return b.Build()
}

// EffectiveResistance sparsifies by drawing q samples from the distribution
// p_e ∝ w_e·(1/deg u + 1/deg v) with replacement and accumulating
// w_e/(q·p_e) per draw, the unbiased Spielman-Srivastava estimator of the
// Laplacian. Typical q ≈ C·n·log n / ε² controls the spectral error ε.
func EffectiveResistance(g *graph.CSR, q int, rng *rand.Rand) (*graph.CSR, error) {
	if q < 1 {
		return nil, fmt.Errorf("sparsify: sample count %d < 1", q)
	}
	if !g.Undirected() {
		return nil, fmt.Errorf("sparsify: EffectiveResistance requires an undirected graph")
	}
	edges := g.UndirectedEdges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("sparsify: empty graph")
	}
	probs := make([]float64, len(edges))
	var total float64
	for i, e := range edges {
		r := e.W * (1/float64(g.Degree(e.U)) + 1/float64(g.Degree(e.V)))
		probs[i] = r
		total += r
	}
	for i := range probs {
		probs[i] /= total
	}
	// Accumulate sampled weight per edge index.
	acc := make(map[int]float64, q)
	cum := cumulative(probs)
	for s := 0; s < q; s++ {
		i := searchCum(cum, rng.Float64())
		acc[i] += edges[i].W / (float64(q) * probs[i])
	}
	b := graph.NewBuilder(g.N)
	for i, w := range acc {
		b.AddWeightedEdge(edges[i].U, edges[i].V, w)
	}
	return b.Build()
}

func cumulative(probs []float64) []float64 {
	cum := make([]float64, len(probs))
	var run float64
	for i, p := range probs {
		run += p
		cum[i] = run
	}
	cum[len(cum)-1] = 1 // guard rounding
	return cum
}

func searchCum(cum []float64, x float64) int {
	return sort.SearchFloat64s(cum, x)
}

// TopKPerNode keeps, for every node, its k incident edges with the largest
// weight (ties by neighbor ID); an edge survives if either endpoint ranks
// it. Deterministic, node-personalized pruning.
func TopKPerNode(g *graph.CSR, k int) (*graph.CSR, error) {
	if k < 1 {
		return nil, fmt.Errorf("sparsify: k %d < 1", k)
	}
	if !g.Undirected() {
		return nil, fmt.Errorf("sparsify: TopKPerNode requires an undirected graph")
	}
	type ranked struct {
		v int32
		w float64
	}
	keep := make(map[int64]struct{})
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(g.N) + int64(v)
	}
	buf := make([]ranked, 0, g.MaxDegree())
	for u := 0; u < g.N; u++ {
		ns := g.Neighbors(u)
		ws := g.NeighborWeights(u)
		buf = buf[:0]
		for i, v := range ns {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			buf = append(buf, ranked{v: v, w: w})
		}
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].w != buf[j].w {
				return buf[i].w > buf[j].w
			}
			return buf[i].v < buf[j].v
		})
		kk := k
		if kk > len(buf) {
			kk = len(buf)
		}
		for _, r := range buf[:kk] {
			keep[key(u, int(r.v))] = struct{}{}
		}
	}
	b := graph.NewBuilder(g.N)
	for _, e := range g.UndirectedEdges() {
		if _, ok := keep[key(e.U, e.V)]; ok {
			b.AddWeightedEdge(e.U, e.V, e.W)
		}
	}
	return b.Build()
}

// PruneStats reports the effect of operator-entry pruning.
type PruneStats struct {
	Kept        int     // surviving coefficients
	Dropped     int     // zeroed coefficients
	DroppedMass float64 // total absolute coefficient mass removed
}

// PruneOperator zeroes every propagation coefficient with |c| < threshold
// (Unifews-style entry-wise sparsification), returning a pruned copy of the
// operator and statistics. Self-loop coefficients are preserved — dropping
// a node's own signal is never useful.
func PruneOperator(op *graph.Operator, threshold float64) (*graph.Operator, PruneStats, error) {
	if threshold < 0 {
		return nil, PruneStats{}, fmt.Errorf("sparsify: negative threshold %v", threshold)
	}
	out := &graph.Operator{
		G:    op.G,
		Norm: op.Norm,
		Coef: append([]float64(nil), op.Coef...),
	}
	var st PruneStats
	for i, c := range out.Coef {
		if c == 0 {
			continue
		}
		if abs(c) < threshold {
			st.Dropped++
			st.DroppedMass += abs(c)
			out.Coef[i] = 0
		} else {
			st.Kept++
		}
	}
	// Copy loop coefficients untouched via re-derivation: graph.Operator
	// does not expose them, so rebuild from a self-looped operator when
	// present. We detect presence by comparing Apply on a basis vector.
	if op.HasSelfLoops() {
		rebuilt := graph.NewOperator(op.G, op.Norm, true)
		// Use rebuilt loop coefficients with our pruned arc coefficients.
		rebuilt.Coef = out.Coef
		out = rebuilt
	}
	return out, st, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// QuadraticFormError measures the relative error of the sparsifier H
// against the original G on Laplacian quadratic forms xᵀLx over `trials`
// random Gaussian vectors — the spectral-sparsification quality metric
// (ε such that x L_H x ∈ (1±ε)·x L_G x on the probes).
func QuadraticFormError(g, h *graph.CSR, trials int, rng *rand.Rand) float64 {
	if g.N != h.N {
		panic("sparsify: node-count mismatch")
	}
	var worst float64
	for t := 0; t < trials; t++ {
		x := make([]float64, g.N)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		qg := laplacianQuadratic(g, x)
		qh := laplacianQuadratic(h, x)
		if qg == 0 {
			continue
		}
		if e := abs(qg-qh) / qg; e > worst {
			worst = e
		}
	}
	return worst
}

// laplacianQuadratic computes xᵀ L x = Σ_{(u,v)∈E} w_uv (x_u − x_v)².
func laplacianQuadratic(g *graph.CSR, x []float64) float64 {
	var s float64
	for _, e := range g.UndirectedEdges() {
		d := x[e.U] - x[e.V]
		s += e.W * d * d
	}
	return s
}

// PropagationSpeedup reports the ratio of arc counts |E_G| / |E_H| — the
// direct propagation-cost saving of a sparsifier, since every propagation
// touches each arc once.
func PropagationSpeedup(g, h *graph.CSR) float64 {
	if h.NumEdges() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(h.NumEdges())
}

// FeatureSmoothnessError measures the relative propagation error
// ‖P_G X − P_H X‖_F / ‖P_G X‖_F for random features — the quantity that
// bounds downstream decoupled-GNN accuracy loss (Unifews' analysis).
func FeatureSmoothnessError(g, h *graph.CSR, cols int, rng *rand.Rand) float64 {
	x := tensor.RandNormal(g.N, cols, 1, rng)
	pg := graph.NewOperator(g, graph.NormSymmetric, true).Apply(x)
	ph := graph.NewOperator(h, graph.NormSymmetric, true).Apply(x)
	ph.Sub(pg)
	denom := pg.FrobeniusNorm()
	if denom == 0 {
		return 0
	}
	return ph.FrobeniusNorm() / denom
}
