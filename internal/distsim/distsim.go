// Package distsim simulates synchronous distributed GNN training costs —
// the §3.4.3 "scalable training schemes and systems" direction, reproduced
// per DESIGN.md's substitution rule: no cluster is available, so the
// per-epoch makespan of data-parallel full-graph training is modeled from
// the partition's measurable properties, the way ADGNN/G3/SANCUS-style
// systems reason about placement.
//
// Model (per epoch, per layer): every worker aggregates over its local
// arcs, applies the dense transform to its local nodes, and exchanges
// boundary node features with other workers.
//
//	compute(w)  = (local arcs · FlopPerEdge + local nodes · FlopPerNode) / WorkerFlops
//	comm(w)     = (boundary features sent+received by w) · BytesPerFeature / Bandwidth
//	makespan    = max over workers of (compute + comm)   [synchronous step]
//
// The absolute constants are arbitrary; the claims under test are the
// *ratios* between partitioners and worker counts.
package distsim

import (
	"fmt"

	"scalegnn/internal/graph"
	"scalegnn/internal/partition"
)

// Config sets the cost-model constants.
type Config struct {
	FeatureDim  int     // feature width exchanged per boundary node
	WorkerGFLO  float64 // worker compute throughput, GFLOP/s
	BandwidthGB float64 // interconnect bandwidth per worker, GB/s
	FlopPerEdge float64 // aggregation FLOPs per arc per layer (≈ 2·FeatureDim)
	FlopPerNode float64 // dense-transform FLOPs per node per layer (≈ 2·FeatureDim²)
	Layers      int
}

// DefaultConfig models a modest CPU cluster on a 100 GbE interconnect.
func DefaultConfig(featureDim int) Config {
	return Config{
		FeatureDim:  featureDim,
		WorkerGFLO:  50,
		BandwidthGB: 12.5, // 100 Gbit/s
		FlopPerEdge: 2 * float64(featureDim),
		FlopPerNode: 2 * float64(featureDim) * float64(featureDim),
		Layers:      2,
	}
}

func (c Config) validate() error {
	if c.FeatureDim < 1 || c.WorkerGFLO <= 0 || c.BandwidthGB <= 0 || c.Layers < 1 || c.FlopPerNode < 0 {
		return fmt.Errorf("distsim: invalid config %+v", c)
	}
	return nil
}

// Report is the simulated per-epoch outcome.
type Report struct {
	// MakespanSec is the synchronous per-epoch time (max over workers).
	MakespanSec float64
	// ComputeSec / CommSec decompose the critical worker's time.
	ComputeSec float64
	CommSec    float64
	// Imbalance is the max worker compute over the mean worker compute
	// (always >= 1; the load-balance quality of the partition).
	Imbalance float64
	// BoundaryNodes is the total feature transfers per layer.
	BoundaryNodes int
}

// Simulate evaluates the cost model for a partition assignment.
func Simulate(g *graph.CSR, a *partition.Assignment, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(a.Parts) != g.N {
		return nil, fmt.Errorf("distsim: assignment covers %d of %d nodes", len(a.Parts), g.N)
	}
	localArcs := make([]float64, a.K)
	localNodes := make([]float64, a.K)
	for _, p := range a.Parts {
		localNodes[p]++
	}
	// sendSet[w] counts distinct (node, remote part) transfers originating
	// from worker w — each boundary node's features go once to each remote
	// part that needs them.
	send := make([]float64, a.K)
	recv := make([]float64, a.K)
	seen := make(map[int]struct{}, a.K)
	for u := 0; u < g.N; u++ {
		pu := a.Parts[u]
		clear(seen)
		for _, v := range g.Neighbors(u) {
			pv := a.Parts[v]
			if pv == pu {
				localArcs[pu]++
				continue
			}
			// Remote arc: v's worker computes u's contribution after
			// receiving u's features once per layer.
			localArcs[pv]++
			if _, dup := seen[pv]; !dup {
				seen[pv] = struct{}{}
				send[pu]++
				recv[pv]++
			}
		}
	}
	bytesPerNode := float64(cfg.FeatureDim) * 8
	var worst, worstCompute, worstComm, totalCompute, maxCompute float64
	var boundary float64
	for w := 0; w < a.K; w++ {
		flops := localArcs[w]*cfg.FlopPerEdge + localNodes[w]*cfg.FlopPerNode
		compute := flops * float64(cfg.Layers) / (cfg.WorkerGFLO * 1e9)
		comm := (send[w] + recv[w]) * bytesPerNode * float64(cfg.Layers) / (cfg.BandwidthGB * 1e9)
		totalCompute += compute
		boundary += send[w]
		if compute > maxCompute {
			maxCompute = compute
		}
		if compute+comm > worst {
			worst = compute + comm
			worstCompute = compute
			worstComm = comm
		}
	}
	rep := &Report{
		MakespanSec:   worst,
		ComputeSec:    worstCompute,
		CommSec:       worstComm,
		BoundaryNodes: int(boundary),
	}
	mean := totalCompute / float64(a.K)
	if mean > 0 {
		rep.Imbalance = maxCompute / mean
	}
	return rep, nil
}

// Speedup returns the simulated speedup of partitioning over a single
// worker running the whole graph (no communication).
func Speedup(g *graph.CSR, a *partition.Assignment, cfg Config) (float64, error) {
	rep, err := Simulate(g, a, cfg)
	if err != nil {
		return 0, err
	}
	single := (float64(g.NumEdges())*cfg.FlopPerEdge + float64(g.N)*cfg.FlopPerNode) *
		float64(cfg.Layers) / (cfg.WorkerGFLO * 1e9)
	if rep.MakespanSec == 0 {
		return 0, nil
	}
	return single / rep.MakespanSec, nil
}
