package distsim

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"scalegnn/internal/fault"
	"scalegnn/internal/graph"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

// exchangeFixture builds a connected-ish random graph, round-robin
// partitioned so every worker has boundary traffic, plus its features.
func exchangeFixture(t *testing.T, n, k int) (*graph.CSR, *partition.Assignment, *tensor.Matrix) {
	t.Helper()
	rng := tensor.NewRand(17)
	g := graph.ErdosRenyi(n, 4*n, rng)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i % k
	}
	x := tensor.RandNormal(n, 6, 1.0, rng)
	return g, &partition.Assignment{Parts: parts, K: k}, x
}

// sequentialAggregate is the single-worker reference: neighbor-sum in CSR
// order, the exact order each Exchange worker uses for its own rows.
func sequentialAggregate(g *graph.CSR, x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	for u := 0; u < g.N; u++ {
		dst := out.Row(u)
		for _, v := range g.Neighbors(u) {
			for j, s := range x.Row(int(v)) {
				dst[j] += s
			}
		}
	}
	return out
}

func assertSameMatrix(t *testing.T, got, want *tensor.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("data[%d] = %v, want %v (not bitwise identical)", i, got.Data[i], want.Data[i])
		}
	}
}

// TestExchangeMatchesSequential: the partition-parallel step with real
// message passing must be bitwise identical to the sequential aggregation.
func TestExchangeMatchesSequential(t *testing.T) {
	for _, k := range []int{1, 2, 4, 7} {
		g, a, x := exchangeFixture(t, 60, k)
		got, err := Exchange(context.Background(), g, a, x, 0)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		assertSameMatrix(t, got, sequentialAggregate(g, x))
	}
}

// TestExchangeFailsLoudlyUnderDrop: a dropped boundary message must turn
// into a prompt, descriptive error on both ends — never a hung step.
func TestExchangeFailsLoudlyUnderDrop(t *testing.T) {
	t.Cleanup(fault.Reset)
	g, a, x := exchangeFixture(t, 60, 4)
	if err := fault.Set("distsim.send", "drop@3"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := Exchange(context.Background(), g, a, x, 150*time.Millisecond)
	if err == nil {
		t.Fatal("exchange with a dropped message reported success")
	}
	msg := err.Error()
	if !strings.Contains(msg, "boundary") {
		t.Fatalf("error does not describe the loss: %v", err)
	}
	// The receiver must give up at its timeout, not hang the step: allow
	// generous slack for a loaded CI box, but nowhere near a deadlock.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("exchange took %v to fail; loss handling is hanging", elapsed)
	}
}

// TestExchangeSendErrorAborts: an injected send error (I/O failure, not
// silent loss) aborts the step with the worker and edge identified.
func TestExchangeSendErrorAborts(t *testing.T) {
	t.Cleanup(fault.Reset)
	g, a, x := exchangeFixture(t, 40, 3)
	if err := fault.Set("distsim.send", "error@1"); err != nil {
		t.Fatal(err)
	}
	_, err := Exchange(context.Background(), g, a, x, 200*time.Millisecond)
	if err == nil {
		t.Fatal("exchange with failing send reported success")
	}
	if !strings.Contains(err.Error(), "send") {
		t.Fatalf("error does not identify the send site: %v", err)
	}
}

// TestExchangeConvergesUnderDelay: delayed (but delivered) messages only
// slow the step down; the result stays bitwise identical.
func TestExchangeConvergesUnderDelay(t *testing.T) {
	t.Cleanup(fault.Reset)
	g, a, x := exchangeFixture(t, 40, 3)
	if err := fault.Set("distsim.send", "sleep:20@2"); err != nil {
		t.Fatal(err)
	}
	got, err := Exchange(context.Background(), g, a, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, got, sequentialAggregate(g, x))
}

// TestExchangeCancelReleasesWorkers: cancelling the context must abort a
// blocked exchange promptly — well before its receive timeout — and release
// every worker goroutine (leak-checked against the pre-call goroutine
// count).
func TestExchangeCancelReleasesWorkers(t *testing.T) {
	t.Cleanup(fault.Reset)
	g, a, x := exchangeFixture(t, 60, 4)
	// Drop every boundary message: without cancellation each worker would
	// block for the full receive timeout.
	if err := fault.Set("distsim.send", "drop"); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	//lint:ignore naked-go timed cancel helper; the cancelled Exchange below synchronizes the test
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Exchange(ctx, g, a, x, 30*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled exchange reported success")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("error does not reflect cancellation: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled exchange took %v; workers ignored ctx", elapsed)
	}
	// Exchange joins its workers before returning, so the goroutine count
	// must settle back to the baseline (poll briefly: the cancel helper
	// goroutine above may still be winding down).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d running, %d before the exchange", n, before)
	}
}
