package distsim

import (
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

func modularGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, _, err := graph.SBM(graph.SBMConfig{
		Nodes: 4000, Blocks: 8, AvgDegree: 12, Homophily: 0.9,
	}, tensor.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimulateBasics(t *testing.T) {
	g := modularGraph(t)
	a, err := partition.Fennel(g, 8, tensor.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(g, a, DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanSec <= 0 || rep.ComputeSec <= 0 {
		t.Fatalf("non-positive times: %+v", rep)
	}
	if rep.MakespanSec < rep.ComputeSec || rep.MakespanSec < rep.CommSec {
		t.Error("makespan must bound its components")
	}
	if rep.Imbalance < 1 {
		t.Errorf("imbalance %v < 1", rep.Imbalance)
	}
	if rep.BoundaryNodes <= 0 {
		t.Error("modular partition should still have some boundary")
	}
}

func TestSinglePartitionNoComm(t *testing.T) {
	g := modularGraph(t)
	a, err := partition.Hash(g, 1, tensor.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(g, a, DefaultConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommSec != 0 || rep.BoundaryNodes != 0 {
		t.Errorf("single worker should have zero communication: %+v", rep)
	}
	sp, err := Speedup(g, a, DefaultConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	if sp < 0.99 || sp > 1.01 {
		t.Errorf("single-worker speedup = %v, want 1", sp)
	}
}

func TestBetterPartitionBetterMakespan(t *testing.T) {
	// On a modular graph, a structure-aware partition must beat hash in
	// simulated makespan at equal worker count — the §3.1.4 claim that
	// partition quality drives distributed training cost.
	g := modularGraph(t)
	cfg := DefaultConfig(64)
	hash, err := partition.Hash(g, 8, tensor.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	fennel, err := partition.Fennel(g, 8, tensor.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Simulate(g, hash, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Simulate(g, fennel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rf.MakespanSec >= rh.MakespanSec {
		t.Errorf("fennel makespan %v not below hash %v", rf.MakespanSec, rh.MakespanSec)
	}
	if rf.BoundaryNodes >= rh.BoundaryNodes {
		t.Errorf("fennel boundary %d not below hash %d", rf.BoundaryNodes, rh.BoundaryNodes)
	}
}

func TestMoreWorkersLessComputeMoreComm(t *testing.T) {
	g := modularGraph(t)
	cfg := DefaultConfig(64)
	var prevCompute float64
	for i, k := range []int{2, 8, 32} {
		a, err := partition.Fennel(g, k, tensor.NewRand(5))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Simulate(g, a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rep.ComputeSec >= prevCompute {
			t.Errorf("k=%d: compute %v did not shrink from %v", k, rep.ComputeSec, prevCompute)
		}
		prevCompute = rep.ComputeSec
	}
}

func TestSimulateValidation(t *testing.T) {
	g := modularGraph(t)
	a, _ := partition.Hash(g, 4, tensor.NewRand(6))
	bad := DefaultConfig(0)
	if _, err := Simulate(g, a, bad); err == nil {
		t.Error("zero feature dim should error")
	}
	short := &partition.Assignment{Parts: []int{0}, K: 1}
	if _, err := Simulate(g, short, DefaultConfig(16)); err == nil {
		t.Error("short assignment should error")
	}
}
